(* Is contention-aware scheduling worth it for your workload?

   Enumerates every distinct flow-to-socket placement of a 12-flow
   combination, measures each, and reports the best/worst spread — the
   paper's Section 5 analysis, reusable for any combination.

   Run with: dune exec examples/scheduling_study.exe *)

open Ppp_core

let combo = Ppp_apps.App.[ (MON, 6); (FW, 6) ]

let () =
  let params = Runner.default_params in
  Printf.printf "combination: %s\n" (Scheduler.combo_name combo);
  let placements = Scheduler.splits ~config:params.Runner.config combo in
  Printf.printf "distinct placements (up to socket symmetry): %d\n%!"
    (List.length placements);
  let evals = Scheduler.evaluate ~params combo in
  let show (e : Scheduler.evaluation) =
    String.concat " | "
      (List.map
         (fun socket ->
           String.concat "," (List.map Ppp_apps.App.name socket))
         e.Scheduler.per_socket)
  in
  List.iter
    (fun (e : Scheduler.evaluation) ->
      Printf.printf "  avg drop %5.2f%%   %s\n" (100.0 *. e.Scheduler.avg_drop)
        (show e))
    (List.sort (fun a b -> compare a.Scheduler.avg_drop b.Scheduler.avg_drop) evals);
  let best = Scheduler.best evals and worst = Scheduler.worst evals in
  Printf.printf
    "\nbest placement:  %s (avg drop %.2f%%)\nworst placement: %s (avg drop \
     %.2f%%)\nscheduling gain: %.2f percentage points\n"
    (show best)
    (100.0 *. best.Scheduler.avg_drop)
    (show worst)
    (100.0 *. worst.Scheduler.avg_drop)
    (100.0 *. Scheduler.gain evals);
  if Scheduler.gain evals < 0.03 then
    print_endline
      "=> as in the paper: contention-aware scheduling buys almost nothing \
       here."
