examples/scheduling_study.ml: List Ppp_apps Ppp_core Printf Runner Scheduler String
