examples/throttle_demo.mli:
