examples/predict_mix.ml: Float List Ppp_apps Ppp_core Ppp_hw Ppp_util Predictor Printf Runner String
