examples/quickstart.ml: List Ppp_apps Ppp_click Ppp_hw Ppp_simmem Ppp_traffic Ppp_util Printf
