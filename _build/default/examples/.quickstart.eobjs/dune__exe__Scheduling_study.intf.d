examples/scheduling_study.mli:
