examples/trace_replay.ml: Bytes Filename List Ppp_apps Ppp_click Ppp_hw Ppp_net Ppp_simmem Ppp_traffic Ppp_util Printf Sys
