examples/quickstart.mli:
