examples/predict_mix.mli:
