examples/throttle_demo.ml: Ppp_experiments Printf
