(* Predicting a production mix before deploying it (the paper's Section 4
   workflow, as an operator would use it):

   1. Profile each flow type offline (solo refs/sec + SYN sensitivity curve).
   2. Predict each flow's contention-induced drop for the planned placement.
   3. Deploy (run) the mix and compare.

   Run with: dune exec examples/predict_mix.exe *)

open Ppp_core

let mix = Ppp_apps.App.[ MON; IP; VPN; RE; FW; MON ]

let () =
  let params = Runner.default_params in
  let kinds = List.sort_uniq compare mix in

  Printf.printf "offline profiling of %d flow types (solo run + SYN ramp)...\n%!"
    (List.length kinds);
  let predictor = Predictor.build ~params ~targets:kinds () in
  List.iter
    (fun k ->
      Printf.printf "  %-4s solo: %8.0f pps, %6.1fM L3 refs/sec\n"
        (Ppp_apps.App.name k)
        (Predictor.solo_throughput predictor k)
        (Predictor.solo_refs_per_sec predictor k /. 1e6))
    kinds;

  Printf.printf "\nplanned placement (one socket): %s\n%!"
    (String.concat ", " (List.map Ppp_apps.App.name mix));
  let predictions =
    List.mapi
      (fun i kind ->
        let competitors = List.filteri (fun j _ -> j <> i) mix in
        Predictor.predict_drop predictor ~target:kind ~competitors)
      mix
  in

  Printf.printf "deploying the mix...\n%!";
  let specs = List.mapi (fun i kind -> Runner.flow_on ~core:i kind) mix in
  let results = Runner.run ~params specs in

  let t =
    Ppp_util.Table.create ~title:"predicted vs measured contention drop"
      [ "flow"; "predicted (%)"; "measured (%)"; "abs error (pp)" ]
  in
  List.iteri
    (fun i kind ->
      let r = List.nth results i in
      let solo = Predictor.solo_throughput predictor kind in
      let measured = (solo -. r.Ppp_hw.Engine.throughput_pps) /. solo in
      let predicted = List.nth predictions i in
      Ppp_util.Table.add_row t
        [
          Ppp_apps.App.name kind;
          Printf.sprintf "%.2f" (100.0 *. predicted);
          Printf.sprintf "%.2f" (100.0 *. measured);
          Printf.sprintf "%.2f" (100.0 *. Float.abs (predicted -. measured));
        ])
    mix;
  Ppp_util.Table.print t
