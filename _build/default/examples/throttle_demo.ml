(* Containing hidden aggressiveness (paper Section 4).

   A co-runner that behaved tamely during offline profiling switches to
   maximum-rate memory scanning at run time, crushing a MON flow. A control
   element throttling the co-runner's reference rate back to its profiled
   budget restores the victim's expected performance.

   Run with: dune exec examples/throttle_demo.exe *)

let () =
  let data = Ppp_experiments.Throttle_exp.measure () in
  print_string (Ppp_experiments.Throttle_exp.render data);
  let d = data in
  let drop x =
    100.0
    *. (d.Ppp_experiments.Throttle_exp.victim_solo_pps -. x)
    /. d.Ppp_experiments.Throttle_exp.victim_solo_pps
  in
  Printf.printf
    "\nsummary: victim drop went %.1f%% (tame) -> %.1f%% (attack) -> %.1f%% \
     (throttled)\n"
    (drop d.Ppp_experiments.Throttle_exp.victim_with_tame_pps)
    (drop d.Ppp_experiments.Throttle_exp.victim_with_loud_pps)
    (drop d.Ppp_experiments.Throttle_exp.victim_with_throttled_pps)
