type t = { node : int; mutable next : int; limit : int }

let line = 64

let create ~node =
  if node < 0 then invalid_arg "Heap.create: negative node";
  let base = Ppp_hw.Topology.node_base node in
  (* Skip the window's first line so address 0 is never handed out. *)
  { node; next = base + line; limit = base + (1 lsl Ppp_hw.Topology.node_window_bits) }

let node t = t.node

let alloc t ~bytes =
  if bytes <= 0 then invalid_arg "Heap.alloc: size must be positive";
  let rounded = (bytes + line - 1) / line * line in
  if t.next + rounded > t.limit then failwith "Heap.alloc: node window exhausted";
  let base = t.next in
  t.next <- t.next + rounded;
  base

let used t = t.next - Ppp_hw.Topology.node_base t.node - line
