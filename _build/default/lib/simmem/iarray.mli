(** Instrumented arrays: real OCaml data placed at simulated addresses.

    Every [get]/[set] both performs the real operation and records the
    corresponding memory reference in the packet's trace builder, so
    applications compute correct results while producing a faithful address
    stream for the hardware model. [elem_bytes] controls spatial locality:
    elements smaller than a cache line share lines, exactly as packed C
    structs would. *)

type 'a t

val create : Heap.t -> elem_bytes:int -> int -> 'a -> 'a t
(** [create heap ~elem_bytes n x] allocates [n] elements initialized to [x].
    [elem_bytes] is the simulated size of one element (>= 1). *)

val init : Heap.t -> elem_bytes:int -> int -> (int -> 'a) -> 'a t
val length : 'a t -> int
val elem_bytes : 'a t -> int
val base : 'a t -> int
val size_bytes : 'a t -> int

val addr_of : 'a t -> int -> int
(** Simulated address of element [i]. *)

val get : 'a t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> int -> 'a
(** Instrumented load: records one read reference (to the element's first
    line) and returns the value. Elements spanning multiple lines record one
    reference per line. *)

val set : 'a t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> int -> 'a -> unit

val peek : 'a t -> int -> 'a
(** Un-instrumented read (verification/tests only — no trace side effect). *)

val poke : 'a t -> int -> 'a -> unit
(** Un-instrumented write (initialization paths that model no traffic). *)
