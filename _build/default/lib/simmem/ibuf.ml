type t = { data : Bytes.t; base : int }

let line = 64

let create heap n =
  if n <= 0 then invalid_arg "Ibuf.create: size must be positive";
  { data = Bytes.make n '\000'; base = Heap.alloc heap ~bytes:n }

let of_region ~base n =
  if n <= 0 then invalid_arg "Ibuf.of_region: size must be positive";
  { data = Bytes.make n '\000'; base }

let length t = Bytes.length t.data
let addr t = t.base
let bytes t = t.data
let addr_at t pos = t.base + pos

let touch t b ~fn ~write ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length t.data then
    invalid_arg "Ibuf.touch: range out of bounds";
  if len > 0 then begin
    let first = (t.base + pos) / line and last = (t.base + pos + len - 1) / line in
    for l = first to last do
      let a = l * line in
      if write then Ppp_hw.Trace.Builder.write b ~fn a
      else Ppp_hw.Trace.Builder.read b ~fn a
    done
  end

let touch_read t b ~fn ~pos ~len = touch t b ~fn ~write:false ~pos ~len
let touch_write t b ~fn ~pos ~len = touch t b ~fn ~write:true ~pos ~len

let lines_covered ~pos ~len =
  if len <= 0 then 0 else ((pos + len - 1) / line) - (pos / line) + 1
