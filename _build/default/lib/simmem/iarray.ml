type 'a t = { data : 'a array; base : int; elem_bytes : int }

let line = 64

let create heap ~elem_bytes n x =
  if elem_bytes < 1 then invalid_arg "Iarray.create: elem_bytes < 1";
  if n < 0 then invalid_arg "Iarray.create: negative length";
  let base = Heap.alloc heap ~bytes:(max 1 (n * elem_bytes)) in
  { data = Array.make n x; base; elem_bytes }

let init heap ~elem_bytes n f =
  if elem_bytes < 1 then invalid_arg "Iarray.init: elem_bytes < 1";
  let base = Heap.alloc heap ~bytes:(max 1 (n * elem_bytes)) in
  { data = Array.init n f; base; elem_bytes }

let length t = Array.length t.data
let elem_bytes t = t.elem_bytes
let base t = t.base
let size_bytes t = Array.length t.data * t.elem_bytes
let addr_of t i = t.base + (i * t.elem_bytes)

let touch t b ~fn ~write i =
  let first = addr_of t i in
  let last = first + t.elem_bytes - 1 in
  let first_line = first / line and last_line = last / line in
  for l = first_line to last_line do
    let addr = l * line in
    if write then Ppp_hw.Trace.Builder.write b ~fn addr
    else Ppp_hw.Trace.Builder.read b ~fn addr
  done

let get t b ~fn i =
  touch t b ~fn ~write:false i;
  t.data.(i)

let set t b ~fn i x =
  touch t b ~fn ~write:true i;
  t.data.(i) <- x

let peek t i = t.data.(i)
let poke t i x = t.data.(i) <- x
