lib/simmem/heap.mli:
