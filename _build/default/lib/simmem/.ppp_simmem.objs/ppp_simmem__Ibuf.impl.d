lib/simmem/ibuf.ml: Bytes Heap Ppp_hw
