lib/simmem/ibuf.mli: Bytes Heap Ppp_hw
