lib/simmem/heap.ml: Ppp_hw
