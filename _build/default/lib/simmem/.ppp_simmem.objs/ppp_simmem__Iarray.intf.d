lib/simmem/iarray.mli: Heap Ppp_hw
