lib/simmem/iarray.ml: Array Heap Ppp_hw
