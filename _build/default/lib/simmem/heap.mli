(** Per-NUMA-node simulated heap.

    Applications allocate their data structures from a node's heap; the
    returned addresses live in that node's physical window, so the hardware
    model routes misses to the right memory controller. This is how the
    paper's NUMA placement policy (Section 2.2) and the Figure 3
    local/remote-data configurations are expressed. *)

type t

val create : node:int -> t
val node : t -> int

val alloc : t -> bytes:int -> int
(** [alloc t ~bytes] reserves a region and returns its base address,
    cache-line (64B) aligned. Raises [Invalid_argument] for non-positive
    sizes, [Failure] if the node window is exhausted. *)

val used : t -> int
(** Bytes allocated so far. *)
