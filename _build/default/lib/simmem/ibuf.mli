(** Instrumented byte buffers (packet payload, packet-store segments).

    Holds a real [Bytes.t] whose simulated placement starts at a fixed
    address; ranges touched by an application record one memory reference per
    cache line covered. *)

type t

val create : Heap.t -> int -> t
val of_region : base:int -> int -> t
(** A buffer at a caller-chosen simulated address (e.g. inside a ring). *)

val length : t -> int
val addr : t -> int
val bytes : t -> Bytes.t
(** The backing store, for real data manipulation. *)

val addr_at : t -> int -> int

val touch_read :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> pos:int -> len:int -> unit
(** Record loads covering [pos, pos+len): one per 64B line. *)

val touch_write :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> pos:int -> len:int -> unit

val lines_covered : pos:int -> len:int -> int
(** Number of 64B lines a range covers (helper for cost accounting). *)
