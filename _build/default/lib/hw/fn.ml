type t = int

let max_tags = 64
let names = Array.make max_tags "?"
let next = ref 0
let by_name : (string, int) Hashtbl.t = Hashtbl.create 32

let register name =
  match Hashtbl.find_opt by_name name with
  | Some tag -> tag
  | None ->
      if !next >= max_tags then failwith "Fn.register: tag registry full";
      let tag = !next in
      incr next;
      names.(tag) <- name;
      Hashtbl.add by_name name tag;
      tag

let name tag = if tag >= 0 && tag < !next then names.(tag) else "?"
let count () = !next
let none = register "-"
