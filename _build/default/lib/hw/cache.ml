type geometry = { size_bytes : int; ways : int; line_bytes : int }

type t = {
  geo : geometry;
  nsets : int;
  line_shift : int;
  tags : int array; (* nsets * ways; -1 = invalid; otherwise the line number *)
  stamp : int array; (* LRU timestamps *)
  dirty_bits : Bytes.t;
  auxs : int array;
  mutable tick : int;
  mutable valid : int;
}

type slot = int (* index into the flat way arrays *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create geo =
  if not (is_pow2 geo.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if geo.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  if geo.size_bytes mod (geo.ways * geo.line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by ways * line_bytes";
  let nsets = geo.size_bytes / (geo.ways * geo.line_bytes) in
  if not (is_pow2 nsets) then
    invalid_arg "Cache.create: set count must be a power of two";
  let n = nsets * geo.ways in
  {
    geo;
    nsets;
    line_shift = log2 geo.line_bytes;
    tags = Array.make n (-1);
    stamp = Array.make n 0;
    dirty_bits = Bytes.make n '\000';
    auxs = Array.make n 0;
    tick = 0;
    valid = 0;
  }

let geometry t = t.geo
let sets t = t.nsets
let lines t = t.nsets * t.geo.ways
let line_of_addr t addr = addr lsr t.line_shift
let set_of_line t line = line land (t.nsets - 1)
let base t line = set_of_line t line * t.geo.ways

let find_way t line =
  let b = base t line in
  let rec go w =
    if w = t.geo.ways then None
    else if t.tags.(b + w) = line then Some (b + w)
    else go (w + 1)
  in
  go 0

let touch t i =
  t.tick <- t.tick + 1;
  t.stamp.(i) <- t.tick

let find t line =
  match find_way t line with
  | Some i ->
      touch t i;
      Some i
  | None -> None

let probe = find_way
let dirty t i = Bytes.get t.dirty_bits i <> '\000'
let set_dirty t i d = Bytes.set t.dirty_bits i (if d then '\001' else '\000')
let aux t i = t.auxs.(i)
let set_aux t i v = t.auxs.(i) <- v

type eviction = { victim_line : int; victim_dirty : bool; victim_aux : int }

let insert t ?(dirty = false) ?(aux = 0) line =
  (match find_way t line with
  | Some _ -> invalid_arg "Cache.insert: line already resident"
  | None -> ());
  let b = base t line in
  (* Pick an invalid way, else the LRU way. *)
  let victim = ref (-1) in
  let lru = ref b in
  for w = 0 to t.geo.ways - 1 do
    let i = b + w in
    if t.tags.(i) = -1 && !victim = -1 then victim := i;
    if t.stamp.(i) < t.stamp.(!lru) then lru := i
  done;
  let i, evicted =
    if !victim >= 0 then (!victim, None)
    else
      ( !lru,
        Some
          {
            victim_line = t.tags.(!lru);
            victim_dirty = Bytes.get t.dirty_bits !lru <> '\000';
            victim_aux = t.auxs.(!lru);
          } )
  in
  if evicted = None then t.valid <- t.valid + 1;
  t.tags.(i) <- line;
  set_dirty t i dirty;
  t.auxs.(i) <- aux;
  touch t i;
  evicted

let invalidate t line =
  match find_way t line with
  | None -> None
  | Some i ->
      let d = dirty t i and a = t.auxs.(i) in
      t.tags.(i) <- -1;
      t.stamp.(i) <- 0;
      set_dirty t i false;
      t.auxs.(i) <- 0;
      t.valid <- t.valid - 1;
      Some (d, a)

let resident t line = find_way t line <> None
let occupancy t = t.valid

let iter_resident t f =
  for i = 0 to Array.length t.tags - 1 do
    if t.tags.(i) <> -1 then
      f t.tags.(i) ~dirty:(dirty t i) ~aux:t.auxs.(i)
  done

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  Bytes.fill t.dirty_bits 0 (Bytes.length t.dirty_bits) '\000';
  Array.fill t.auxs 0 (Array.length t.auxs) 0;
  t.tick <- 0;
  t.valid <- 0
