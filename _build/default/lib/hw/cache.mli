(** A set-associative cache with true-LRU replacement.

    The cache tracks line residency and dirtiness only (simulation is
    timing-directed; data lives in the instrumented OCaml structures). Each
    resident line carries an auxiliary integer usable by the owner: the
    shared L3 stores directory presence bits there, private caches store an
    exclusivity flag. *)

type t

type geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;  (** must be a power of two *)
}

val create : geometry -> t
(** Raises [Invalid_argument] if the geometry is inconsistent (sizes not
    divisible by ways*line, set count not a power of two). *)

val geometry : t -> geometry
val sets : t -> int

val lines : t -> int
(** Total capacity in lines. *)

val line_of_addr : t -> int -> int
(** The line (block) number an address falls in. *)

type slot
(** A handle on a resident line; valid until the next insert/invalidate. *)

val find : t -> int -> slot option
(** [find t line] probes for [line]; on a hit, promotes it to MRU. *)

val probe : t -> int -> slot option
(** Like {!find} but without promoting LRU state (for directory snoops). *)

val dirty : t -> slot -> bool
val set_dirty : t -> slot -> bool -> unit
val aux : t -> slot -> int
val set_aux : t -> slot -> int -> unit

type eviction = { victim_line : int; victim_dirty : bool; victim_aux : int }

val insert : t -> ?dirty:bool -> ?aux:int -> int -> eviction option
(** [insert t line] fills [line] as MRU, evicting the LRU way of its set if
    the set is full. The line must not already be resident (checked). *)

val invalidate : t -> int -> (bool * int) option
(** [invalidate t line] removes [line] if resident, returning its final
    (dirty, aux) state. *)

val resident : t -> int -> bool

val occupancy : t -> int
(** Number of valid lines (for tests: never exceeds {!lines}). *)

val iter_resident : t -> (int -> dirty:bool -> aux:int -> unit) -> unit
val clear : t -> unit
