(** Named machine configurations and construction.

    [westmere] mirrors the paper's dual-socket X5660 platform. [scaled] is a
    uniformly scaled-down version (cache sizes / working sets divided by the
    same factor) used by default so experiments run in seconds while
    preserving the footprint-to-cache ratios that the contention phenomena
    depend on. [tiny] is for unit tests. *)

type config = {
  name : string;
  topology : Topology.t;
  costs : Costs.t;
  geometry : Hierarchy.geometry;
  scale : int;
      (** working-set divisor applications should apply (1 for westmere) *)
}

val westmere : config
val scaled : config
val tiny : config

val by_name : string -> config option
(** Looks up "westmere" | "scaled" | "tiny". *)

val names : string list
val build : config -> Hierarchy.t

val l3_bytes : config -> int
val line_bytes : config -> int
val cores_per_socket : config -> int
