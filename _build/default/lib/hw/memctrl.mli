(** Per-NUMA-node memory controller with a simple occupancy/queueing model.

    Each 64B DRAM transaction occupies the controller for a fixed service
    time; a request arriving while the controller is busy waits. This is the
    mechanism behind the paper's Figure 4(b): co-runners on the other socket
    whose data lives in the target's local memory saturate the target's
    controller and add queueing delay to its misses. *)

type t

val create : service_cycles:int -> t

val demand_access : t -> now:int -> int
(** [demand_access t ~now] enqueues a demand (load) transaction arriving at
    cycle [now]; returns the queueing delay (cycles spent waiting before
    service starts). The caller adds its own DRAM latency on top. *)

val writeback : t -> now:int -> unit
(** A write-back occupies the controller but the issuing core does not wait
    (posted write). *)

val busy_until : t -> int
val transactions : t -> int
val reset : t -> unit
