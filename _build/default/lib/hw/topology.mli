(** Machine shape: sockets, cores, NUMA nodes and the address map.

    One NUMA node per socket (as on the paper's dual-X5660 platform). The
    simulated physical address space is partitioned into per-node windows so
    an address's home node is recoverable from its high bits. *)

type t = { sockets : int; cores_per_socket : int }

val create : sockets:int -> cores_per_socket:int -> t
val cores : t -> int
val socket_of_core : t -> int -> int

val local_index : t -> int -> int
(** Index of a core within its socket, in [0, cores_per_socket). *)

val node_window_bits : int
(** Each node owns a [2^node_window_bits]-byte address window. *)

val node_base : int -> int
(** Base address of a node's window. *)

val node_of_addr : int -> int
(** Home NUMA node of an address. *)

val pp : Format.formatter -> t -> unit
