type item = Packet of Trace.t | Idle of Trace.t
type source = int -> item
type flow = { core : int; label : string; source : source }

type result = {
  core : int;
  label : string;
  packets : int;
  window_cycles : int;
  throughput_pps : float;
  counters : Counters.t;
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  latency : Ppp_util.Histogram.t;
}

type core_state = {
  flow : flow;
  mutable time : int;
  mutable trace : Trace.t;
  mutable is_packet : bool;
  mutable pos : int;
  mutable pkt_start : int;
  mutable packets_done : int;
  latency : Ppp_util.Histogram.t;
  (* Window snapshots. *)
  mutable warm_time : int;
  mutable warm_packets : int;
  mutable warm_counters : Counters.t option;
  mutable end_time : int;
  mutable end_packets : int;
  mutable end_counters : Counters.t option;
}

let fetch st =
  let item = st.flow.source st.time in
  let trace, is_packet =
    match item with Packet t -> (t, true) | Idle t -> (t, false)
  in
  if Trace.length trace = 0 then
    invalid_arg "Engine: source returned an empty trace";
  st.trace <- trace;
  st.is_packet <- is_packet;
  if is_packet then st.pkt_start <- st.time;
  st.pos <- 0

let run hier ~flows ~warmup_cycles ~measure_cycles =
  if flows = [] then invalid_arg "Engine.run: no flows";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : flow) ->
      if Hashtbl.mem seen f.core then
        invalid_arg "Engine.run: two flows on the same core";
      Hashtbl.add seen f.core ())
    flows;
  let costs = Hierarchy.costs hier in
  let states =
    List.map
      (fun (flow : flow) ->
        let st =
          {
            flow;
            time = 0;
            trace = Trace.empty;
            is_packet = false;
            pos = 0;
            pkt_start = 0;
            packets_done = 0;
            latency = Ppp_util.Histogram.create ();
            warm_time = 0;
            warm_packets = 0;
            warm_counters = None;
            end_time = 0;
            end_packets = 0;
            end_counters = None;
          }
        in
        fetch st;
        st)
      flows
    |> Array.of_list
  in
  let n = Array.length states in
  let window_end = warmup_cycles + measure_cycles in
  let snapshot st =
    if st.warm_counters = None && st.time >= warmup_cycles then begin
      st.warm_time <- st.time;
      st.warm_packets <- st.packets_done;
      st.warm_counters <-
        Some (Counters.copy (Hierarchy.counters hier st.flow.core))
    end;
    if st.end_counters = None && st.time >= window_end then begin
      st.end_time <- st.time;
      st.end_packets <- st.packets_done;
      st.end_counters <-
        Some (Counters.copy (Hierarchy.counters hier st.flow.core))
    end
  in
  let step st =
    let k = Trace.kind st.trace st.pos in
    let fn = Trace.fn st.trace st.pos in
    let payload = Trace.payload st.trace st.pos in
    (match k with
    | Trace.Compute ->
        let ctr = Hierarchy.counters hier st.flow.core in
        Counters.add_instructions ctr payload;
        let cycles =
          max 1 (int_of_float (float_of_int payload *. costs.Costs.compute_cpi))
        in
        st.time <- st.time + cycles
    | Trace.Stall -> st.time <- st.time + payload
    | Trace.Dma -> Hierarchy.dma_write hier ~addr:payload ~now:st.time
    | Trace.Read | Trace.Write ->
        let lat =
          Hierarchy.access hier ~core:st.flow.core
            ~write:(k = Trace.Write) ~fn ~addr:payload ~now:st.time
        in
        st.time <- st.time + lat);
    st.pos <- st.pos + 1;
    if st.pos >= Trace.length st.trace then begin
      if st.is_packet then begin
        st.packets_done <- st.packets_done + 1;
        Counters.add_packet (Hierarchy.counters hier st.flow.core);
        (* Latency tracked for packets completing inside the window. *)
        if st.warm_counters <> None && st.end_counters = None then
          Ppp_util.Histogram.record st.latency (st.time - st.pkt_start)
      end;
      snapshot st;
      fetch st
    end
    else snapshot st
  in
  (* Advance the globally least-advanced core until every core has crossed
     the window end. *)
  let rec loop () =
    let min_i = ref 0 in
    for i = 1 to n - 1 do
      if states.(i).time < states.(!min_i).time then min_i := i
    done;
    let st = states.(!min_i) in
    if st.time < window_end then begin
      step st;
      loop ()
    end
  in
  loop ();
  (* Finalize any snapshot not yet taken (time passed end during final op). *)
  Array.iter snapshot states;
  Array.to_list
    (Array.map
       (fun st ->
         let warm =
           match st.warm_counters with
           | Some c -> c
           | None -> assert false
         in
         let finish =
           match st.end_counters with Some c -> c | None -> assert false
         in
         let ctr = Counters.diff finish warm in
         let cycles = max 1 (st.end_time - st.warm_time) in
         let seconds = Costs.cycles_to_seconds costs cycles in
         let packets = st.end_packets - st.warm_packets in
         {
           core = st.flow.core;
           label = st.flow.label;
           packets;
           window_cycles = cycles;
           throughput_pps = float_of_int packets /. seconds;
           counters = ctr;
           l3_refs_per_sec = float_of_int (Counters.l3_refs ctr) /. seconds;
           l3_hits_per_sec = float_of_int (Counters.l3_hits ctr) /. seconds;
           latency = st.latency;
         })
       states)
