lib/hw/trace.mli: Fn
