lib/hw/cache.mli:
