lib/hw/memctrl.mli:
