lib/hw/costs.mli:
