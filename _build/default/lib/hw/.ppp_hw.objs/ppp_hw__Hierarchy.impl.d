lib/hw/hierarchy.ml: Array Cache Costs Counters Memctrl Topology
