lib/hw/machine.mli: Costs Hierarchy Topology
