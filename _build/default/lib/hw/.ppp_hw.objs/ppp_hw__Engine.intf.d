lib/hw/engine.mli: Counters Hierarchy Ppp_util Trace
