lib/hw/fn.mli:
