lib/hw/costs.ml:
