lib/hw/machine.ml: Cache Costs Hierarchy List Topology
