lib/hw/fn.ml: Array Hashtbl
