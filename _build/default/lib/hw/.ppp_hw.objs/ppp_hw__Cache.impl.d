lib/hw/cache.ml: Array Bytes
