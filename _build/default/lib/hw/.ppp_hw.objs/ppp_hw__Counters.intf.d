lib/hw/counters.mli: Fn Format
