lib/hw/trace.ml: Array Fn
