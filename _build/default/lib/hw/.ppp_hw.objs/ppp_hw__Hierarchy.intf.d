lib/hw/hierarchy.mli: Cache Costs Counters Fn Topology
