lib/hw/counters.ml: Array Fn Format
