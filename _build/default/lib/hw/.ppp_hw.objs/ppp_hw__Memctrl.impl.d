lib/hw/memctrl.ml:
