lib/hw/engine.ml: Array Costs Counters Hashtbl Hierarchy List Ppp_util Trace
