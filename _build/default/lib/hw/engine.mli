(** The multicore interleaving engine.

    Each participating core owns a stream of per-packet traces produced by
    its flow. The engine repeatedly advances the core with the smallest local
    clock by one operation, so the reference streams of co-running flows
    interleave in simulated-time order through the shared {!Hierarchy} —
    faithfully reproducing inter-core cache and memory-controller contention.

    Measurements are taken over a window: every core runs through a warmup
    period (caches fill, queues reach steady state), then statistics are the
    counter deltas between the window boundaries. All cores keep executing
    until the slowest one has crossed the window end, so competition is
    present throughout every core's measured interval. *)

type item =
  | Packet of Trace.t  (** work for one packet; completion counts a packet *)
  | Idle of Trace.t  (** stall/bookkeeping ops that do not complete a packet *)

type source = int -> item
(** Called with the core's current cycle whenever the core finished its
    previous item (the cycle argument is how a control element measures its
    own rate, like reading the TSC). Must not return an empty trace (the
    engine raises [Invalid_argument] to avoid a live-lock). *)

type flow = { core : int; label : string; source : source }

type result = {
  core : int;
  label : string;
  packets : int;  (** packets completed within the measurement window *)
  window_cycles : int;
  throughput_pps : float;  (** packets per simulated second *)
  counters : Counters.t;  (** counter delta over the window *)
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  latency : Ppp_util.Histogram.t;
      (** per-packet processing latency (cycles), packets completed within
          the window *)
}

val run :
  Hierarchy.t -> flows:flow list -> warmup_cycles:int -> measure_cycles:int ->
  result list
(** Runs the given flows (each on a distinct core; checked) and returns one
    result per flow, in input order. *)
