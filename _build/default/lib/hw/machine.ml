type config = {
  name : string;
  topology : Topology.t;
  costs : Costs.t;
  geometry : Hierarchy.geometry;
  scale : int;
}

let geo ~l1 ~l2 ~l3 ~l3_ways =
  {
    Hierarchy.l1 = { Cache.size_bytes = l1; ways = 4; line_bytes = 64 };
    l2 = { Cache.size_bytes = l2; ways = 8; line_bytes = 64 };
    l3 = { Cache.size_bytes = l3; ways = l3_ways; line_bytes = 64 };
  }

let westmere =
  {
    name = "westmere";
    topology = Topology.create ~sockets:2 ~cores_per_socket:6;
    costs = Costs.default;
    geometry = geo ~l1:(32 * 1024) ~l2:(256 * 1024) ~l3:(12 * 1024 * 1024) ~l3_ways:12;
    scale = 1;
  }

let scaled =
  {
    name = "scaled";
    topology = Topology.create ~sockets:2 ~cores_per_socket:6;
    costs = Costs.default;
    geometry = geo ~l1:(4 * 1024) ~l2:(32 * 1024) ~l3:(1536 * 1024) ~l3_ways:12;
    scale = 8;
  }

let tiny =
  {
    name = "tiny";
    topology = Topology.create ~sockets:2 ~cores_per_socket:2;
    costs = Costs.default;
    geometry = geo ~l1:1024 ~l2:4096 ~l3:(64 * 1024) ~l3_ways:8;
    scale = 128;
  }

let all = [ westmere; scaled; tiny ]
let by_name n = List.find_opt (fun c -> c.name = n) all
let names = List.map (fun c -> c.name) all
let build c = Hierarchy.create c.topology c.costs c.geometry
let l3_bytes c = c.geometry.Hierarchy.l3.Cache.size_bytes
let line_bytes c = c.geometry.Hierarchy.l3.Cache.line_bytes
let cores_per_socket c = c.topology.Topology.cores_per_socket
