(** Function tags for per-function performance attribution.

    Every traced operation carries a small integer tag identifying the
    packet-processing function that issued it (e.g. [radix_ip_lookup],
    [flow_statistics]); the counters aggregate L3 behaviour per tag, which is
    what Figure 7 of the paper breaks down. *)

type t = int
(** A registered tag, in [0, max_tags). *)

val max_tags : int
(** Upper bound on distinct tags (64). *)

val register : string -> t
(** [register name] returns the tag for [name], allocating one on first use.
    Idempotent. Raises [Failure] if the registry is full. *)

val name : t -> string
(** Name of a registered tag; ["?"] for unregistered values. *)

val count : unit -> int
(** Number of registered tags so far. *)

val none : t
(** The pre-registered catch-all tag (named ["-"], value 0). *)
