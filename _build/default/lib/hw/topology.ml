type t = { sockets : int; cores_per_socket : int }

let create ~sockets ~cores_per_socket =
  if sockets <= 0 || cores_per_socket <= 0 then
    invalid_arg "Topology.create: counts must be positive";
  { sockets; cores_per_socket }

let cores t = t.sockets * t.cores_per_socket

let socket_of_core t core =
  if core < 0 || core >= cores t then invalid_arg "Topology.socket_of_core";
  core / t.cores_per_socket

let local_index t core = core - (socket_of_core t core * t.cores_per_socket)

let node_window_bits = 40
let node_base node = node lsl node_window_bits
let node_of_addr addr = addr lsr node_window_bits

let pp fmt t =
  Format.fprintf fmt "%d socket(s) x %d cores" t.sockets t.cores_per_socket
