type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n";
  if s < 0.0 then invalid_arg "Zipf.create: s";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

let n t = Array.length t.cdf

let sample t rng =
  let u = Ppp_util.Rng.float rng 1.0 in
  (* First index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let expected_mass t k =
  if k <= 0 then 0.0
  else if k >= Array.length t.cdf then 1.0
  else t.cdf.(k - 1)
