(** Zipf-distributed sampling over [0, n), for realistic traffic skew (flow
    and route popularity concentrate on a hot subset, which is what makes
    packet-processing working sets cacheable). *)

type t

val create : n:int -> s:float -> t
(** Rank-frequency exponent [s] (0 = uniform; ~1 = classic Zipf). *)

val n : t -> int
val sample : t -> Ppp_util.Rng.t -> int
val expected_mass : t -> int -> float
(** Probability mass of the top-[k] ranks. *)
