lib/traffic/gen.ml: Ethernet Ipv4 Packet Ppp_net Ppp_util Transport
