lib/traffic/pcap.ml: Array Bytes Char List Ppp_net
