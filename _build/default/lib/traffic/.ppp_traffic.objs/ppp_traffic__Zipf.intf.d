lib/traffic/zipf.mli: Ppp_util
