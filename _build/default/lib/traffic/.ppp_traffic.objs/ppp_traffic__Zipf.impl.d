lib/traffic/zipf.ml: Array Float Ppp_util
