lib/traffic/pcap.mli: Bytes Ppp_net
