lib/traffic/gen.mli: Ppp_net Ppp_util
