let paper_delta = 43.75e-9

let drop ~delta ~kappa ~hits_per_sec =
  if delta < 0.0 || kappa < 0.0 || kappa > 1.0 || hits_per_sec < 0.0 then
    invalid_arg "Equation1.drop";
  let dkh = delta *. kappa *. hits_per_sec in
  if dkh = 0.0 then 0.0 else 1.0 /. (1.0 +. (1.0 /. dkh))

let max_drop ~delta ~hits_per_sec = drop ~delta ~kappa:1.0 ~hits_per_sec

let curve ~delta ~max_hits_per_sec ~samples =
  if samples < 2 then invalid_arg "Equation1.curve: samples";
  Ppp_util.Series.of_points
    (List.init samples (fun i ->
         let h =
           max_hits_per_sec *. float_of_int i /. float_of_int (samples - 1)
         in
         (h, max_drop ~delta ~hits_per_sec:h)))
