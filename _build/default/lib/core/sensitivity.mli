(** Sensitivity curves: a flow's performance drop as a function of the
    competing L3 refs/sec, measured against SYN synthetic competitors
    (Figures 4 and 5 of the paper).

    The three resource configurations of Figure 3 are selected by where the
    competitors' cores and data are placed:
    - [Cache_only]: competitors co-located with the target, their data on the
      remote node (they share the L3 but use the other memory controller);
    - [Memctrl_only]: competitors on the other socket, their data on the
      target's node (they share the controller but not the L3);
    - [Both]: competitors co-located with local data. *)

type resource = Cache_only | Memctrl_only | Both

val resource_name : resource -> string

val placement :
  config:Ppp_hw.Machine.config ->
  resource ->
  n_competitors:int ->
  competitor:Ppp_apps.App.kind ->
  target:Ppp_apps.App.kind ->
  Runner.spec list
(** Target first (core 0, local data), competitors after. *)

val default_syn_levels : Ppp_apps.App.syn_params list
(** A ramp of SYN aggressiveness levels spanning idle to SYN_MAX. *)

type point = {
  competing_refs_per_sec : float;  (** measured during the co-run *)
  drop : float;
  target_hits_per_sec : float;  (** of the target, during the co-run *)
}

type curve = {
  target : Ppp_apps.App.kind;
  resource : resource;
  solo_pps : float;
  points : point list;  (** sorted by competing refs/sec; includes (0,0) *)
}

val measure :
  ?params:Runner.params ->
  ?levels:Ppp_apps.App.syn_params list ->
  ?n_competitors:int ->
  resource:resource ->
  Ppp_apps.App.kind ->
  curve
(** [n_competitors] defaults to min(5, cores_per_socket - 1). *)

val to_series : curve -> Ppp_util.Series.t
(** Piecewise-linear drop(competing refs/sec) — the predictor's input. *)
