(** Contention-aware scheduling study (Section 5).

    Given a combination of flows equal to the machine's core count, evaluate
    every distinct assignment of flows to sockets (flow-to-core placement
    within a socket is symmetric) and report the per-flow and average
    contention-induced drops under each, exposing the best/worst placement
    gap of Figure 10. *)

type combo = (Ppp_apps.App.kind * int) list
(** Multiset of flows, e.g. [[(MON, 6); (FW, 6)]]. Counts must sum to the
    machine's total cores. *)

val combo_name : combo -> string

val splits : config:Ppp_hw.Machine.config -> combo -> Ppp_apps.App.kind list list list
(** All distinct placements, each a per-socket list of flow kinds, deduped
    under socket exchange. *)

type evaluation = {
  per_socket : Ppp_apps.App.kind list list;
  avg_drop : float;  (** mean drop across all flows *)
  per_flow : (Ppp_apps.App.kind * float) list;  (** in placement order *)
}

val evaluate :
  ?params:Runner.params ->
  ?solo:(Ppp_apps.App.kind * float) list ->
  combo ->
  evaluation list
(** Runs every placement. [solo] lets callers share solo baselines across
    combos (pairs of kind and solo pps); missing kinds are measured. *)

val best : evaluation list -> evaluation
(** Placement minimizing average drop. *)

val worst : evaluation list -> evaluation
val gain : evaluation list -> float
(** worst.avg_drop - best.avg_drop: the overall-performance headroom
    contention-aware scheduling could recover. *)

val greedy_placement :
  config:Ppp_hw.Machine.config ->
  aggressiveness:(Ppp_apps.App.kind -> float) ->
  combo ->
  Ppp_apps.App.kind list list
(** The classic contention-aware heuristic [Zhuravlev et al.]: sort flows by
    aggressiveness (e.g. solo L3 refs/sec from a {!Predictor}) and deal them
    across sockets in descending order, balancing the aggregate. Returns a
    per-socket placement evaluable against {!evaluate}'s results. *)
