(** The simple probabilistic cache-sharing model of Appendix A.

    A target flow achieving [ht] hits/sec solo over [w] cacheable chunks
    shares a [c]-line cache with competitors performing [rc] refs/sec. Each
    competing reference evicts a given line with probability 1/c; between two
    target touches of the same chunk, the number of competing references is
    geometric. The resulting hit survival probability is

    P(hit) = pt / (1 - (1 - pev)(1 - pt)),
    pev = 1/c,  pt = (ht/w) / (ht/w + rc).

    The model explains the *shape* of conversion-vs-competition (sharp rise,
    then saturation); it deliberately overestimates the value for flows with
    non-uniform access patterns (Section 3.3). *)

val p_hit :
  cache_lines:int -> chunks:int -> target_hits_per_sec:float ->
  competing_refs_per_sec:float -> float

val conversion_rate :
  cache_lines:int -> chunks:int -> target_hits_per_sec:float ->
  competing_refs_per_sec:float -> float
(** 1 - P(hit). *)

val conversion_curve :
  cache_lines:int -> chunks:int -> target_hits_per_sec:float ->
  max_refs_per_sec:float -> samples:int -> Ppp_util.Series.t

val drop_curve :
  delta:float -> cache_lines:int -> chunks:int -> target_hits_per_sec:float ->
  max_refs_per_sec:float -> samples:int -> Ppp_util.Series.t
(** Conversion plugged into Equation 1: the model's analytic estimate of the
    drop-vs-competition curve. *)
