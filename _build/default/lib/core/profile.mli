(** Offline solo-run profiling — the simulator's version of the paper's
    Oprofile characterization (Table 1). *)

type t = {
  kind : Ppp_apps.App.kind;
  throughput_pps : float;
  cycles_per_instruction : float;
  l3_refs_per_sec : float;  (** millions are printed, raw stored *)
  l3_hits_per_sec : float;
  cycles_per_packet : float;
  l3_refs_per_packet : float;
  l3_misses_per_packet : float;
  l2_hits_per_packet : float;
  l1_hits_per_packet : float;
}

val of_result : Ppp_apps.App.kind -> Ppp_hw.Engine.result -> t

val solo : ?params:Runner.params -> Ppp_apps.App.kind -> t
(** Profile a kind running alone. *)

val table1 : ?params:Runner.params -> Ppp_apps.App.kind list -> t list

val to_table : t list -> Ppp_util.Table.t
(** Rendered with the same columns as the paper's Table 1. *)
