(** The paper's prediction method (Section 4).

    Offline, per flow type: (1) measure the solo L3 refs/sec of every
    possible competitor; (2) measure the target's drop against a SYN ramp
    and keep drop(competing refs/sec) as a curve. Online, to predict the
    drop of target T co-running with competitors C1..Cn: evaluate T's curve
    at the sum of the Ci's *solo* refs/sec.

    The "perfect knowledge" variant evaluates the curve at the competitors'
    refs/sec measured during the actual co-run, isolating the error
    introduced by assuming competitors run at their solo rate. *)

type t

val build :
  ?params:Runner.params ->
  ?levels:Ppp_apps.App.syn_params list ->
  targets:Ppp_apps.App.kind list ->
  unit ->
  t
(** Profiles every kind in [targets]: solo refs/sec, solo throughput, and a
    SYN sensitivity curve in the [Both] configuration. *)

val solo_refs_per_sec : t -> Ppp_apps.App.kind -> float
val solo_throughput : t -> Ppp_apps.App.kind -> float
val curve : t -> Ppp_apps.App.kind -> Ppp_util.Series.t

val predict_drop :
  t -> target:Ppp_apps.App.kind -> competitors:Ppp_apps.App.kind list -> float
(** The paper's 3-step prediction. *)

val predict_drop_at : t -> target:Ppp_apps.App.kind -> refs_per_sec:float -> float
(** Curve evaluation at a known competing rate (perfect knowledge). *)

val predict_throughput :
  t -> target:Ppp_apps.App.kind -> competitors:Ppp_apps.App.kind list -> float

val predict_mix :
  t -> Ppp_apps.App.kind list -> (Ppp_apps.App.kind * float * float) list
(** For a whole one-socket mix: each flow's (kind, predicted drop, predicted
    throughput), treating the other flows in the list as its competitors. *)
