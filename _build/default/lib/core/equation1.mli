(** Equation 1 of the paper: the performance drop implied by a hit-to-miss
    conversion rate.

    A flow achieving [h] cache hits/sec solo, suffering conversion rate
    [kappa], with [delta] extra seconds per converted reference, drops by
    1 / (1 + 1/(delta * kappa * h)). With kappa = 1 this bounds the
    worst-case drop as a function of solo hits/sec only (Figure 6). *)

val drop : delta:float -> kappa:float -> hits_per_sec:float -> float
(** All arguments non-negative; [kappa] in [0,1]. *)

val max_drop : delta:float -> hits_per_sec:float -> float
(** [drop] with kappa = 1. *)

val curve : delta:float -> max_hits_per_sec:float -> samples:int -> Ppp_util.Series.t
(** The Figure 6 curve: worst-case drop vs solo hits/sec. *)

val paper_delta : float
(** 43.75ns, the paper's quoted hit-vs-miss latency difference. *)
