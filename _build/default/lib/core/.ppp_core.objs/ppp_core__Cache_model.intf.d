lib/core/cache_model.mli: Ppp_util
