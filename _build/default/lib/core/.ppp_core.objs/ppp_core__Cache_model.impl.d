lib/core/cache_model.ml: Equation1 List Ppp_util
