lib/core/equation1.mli: Ppp_util
