lib/core/sensitivity.ml: List Ppp_apps Ppp_hw Ppp_util Runner
