lib/core/equation1.ml: List Ppp_util
