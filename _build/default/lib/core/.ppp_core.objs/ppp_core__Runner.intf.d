lib/core/runner.mli: Ppp_apps Ppp_hw
