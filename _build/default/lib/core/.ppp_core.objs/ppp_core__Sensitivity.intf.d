lib/core/sensitivity.mli: Ppp_apps Ppp_hw Ppp_util Runner
