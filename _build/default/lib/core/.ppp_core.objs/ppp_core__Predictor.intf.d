lib/core/predictor.mli: Ppp_apps Ppp_util Runner
