lib/core/throttle.mli: Ppp_click Ppp_hw Ppp_simmem Ppp_util
