lib/core/scheduler.ml: Array Hashtbl List Ppp_apps Ppp_hw Printf Runner String
