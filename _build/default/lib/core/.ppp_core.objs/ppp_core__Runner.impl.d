lib/core/runner.ml: Array List Ppp_apps Ppp_click Ppp_hw Ppp_simmem Ppp_util
