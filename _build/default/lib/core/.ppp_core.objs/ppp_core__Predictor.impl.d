lib/core/predictor.ml: List Ppp_apps Ppp_hw Ppp_util Printf Runner Sensitivity
