lib/core/scheduler.mli: Ppp_apps Ppp_hw Runner
