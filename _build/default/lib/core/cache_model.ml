let check ~cache_lines ~chunks ~target_hits_per_sec ~competing_refs_per_sec =
  if cache_lines <= 0 || chunks <= 0 then invalid_arg "Cache_model: sizes";
  if target_hits_per_sec < 0.0 || competing_refs_per_sec < 0.0 then
    invalid_arg "Cache_model: rates"

let p_hit ~cache_lines ~chunks ~target_hits_per_sec ~competing_refs_per_sec =
  check ~cache_lines ~chunks ~target_hits_per_sec ~competing_refs_per_sec;
  if target_hits_per_sec = 0.0 then 1.0
  else begin
    let pev = 1.0 /. float_of_int cache_lines in
    let per_chunk = target_hits_per_sec /. float_of_int chunks in
    let pt = per_chunk /. (per_chunk +. competing_refs_per_sec) in
    pt /. (1.0 -. ((1.0 -. pev) *. (1.0 -. pt)))
  end

let conversion_rate ~cache_lines ~chunks ~target_hits_per_sec
    ~competing_refs_per_sec =
  1.0
  -. p_hit ~cache_lines ~chunks ~target_hits_per_sec ~competing_refs_per_sec

let sample_curve ~max_refs_per_sec ~samples f =
  if samples < 2 then invalid_arg "Cache_model: samples";
  Ppp_util.Series.of_points
    (List.init samples (fun i ->
         let rc =
           max_refs_per_sec *. float_of_int i /. float_of_int (samples - 1)
         in
         (rc, f rc)))

let conversion_curve ~cache_lines ~chunks ~target_hits_per_sec
    ~max_refs_per_sec ~samples =
  sample_curve ~max_refs_per_sec ~samples (fun rc ->
      conversion_rate ~cache_lines ~chunks ~target_hits_per_sec
        ~competing_refs_per_sec:rc)

let drop_curve ~delta ~cache_lines ~chunks ~target_hits_per_sec
    ~max_refs_per_sec ~samples =
  sample_curve ~max_refs_per_sec ~samples (fun rc ->
      let kappa =
        conversion_rate ~cache_lines ~chunks ~target_hits_per_sec
          ~competing_refs_per_sec:rc
      in
      Equation1.drop ~delta ~kappa ~hits_per_sec:target_hits_per_sec)
