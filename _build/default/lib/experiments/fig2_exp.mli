(** Figure 2: contention-induced drop for every (target, 5 x competitor)
    pair of realistic flow types, plus the per-target averages. *)

type data = {
  pairs : Exp_common.pair_result list;
  averages : (Ppp_apps.App.kind * float) list;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val run : ?params:Ppp_core.Runner.params -> unit -> string
