(** Table 1: solo-run characteristics of each packet-processing type. *)

val run : ?params:Ppp_core.Runner.params -> unit -> string
val profiles : ?params:Ppp_core.Runner.params -> unit -> Ppp_core.Profile.t list
