lib/experiments/exp_common.ml: List Ppp_apps Ppp_core Ppp_hw Printf Runner Sensitivity
