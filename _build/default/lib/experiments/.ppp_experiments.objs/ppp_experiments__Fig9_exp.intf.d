lib/experiments/fig9_exp.mli: Ppp_apps Ppp_core
