lib/experiments/registry.mli: Ppp_core
