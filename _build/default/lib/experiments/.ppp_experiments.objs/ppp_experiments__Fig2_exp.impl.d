lib/experiments/fig2_exp.ml: Exp_common List Ppp_apps Ppp_core Ppp_util Runner Table
