lib/experiments/latency_exp.mli: Ppp_apps Ppp_core
