lib/experiments/ablation_exp.ml: Equation1 Exp_common List Ppp_apps Ppp_core Ppp_hw Ppp_util Printf Runner Sensitivity Table
