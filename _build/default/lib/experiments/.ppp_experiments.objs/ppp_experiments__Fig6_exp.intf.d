lib/experiments/fig6_exp.mli: Ppp_apps Ppp_core
