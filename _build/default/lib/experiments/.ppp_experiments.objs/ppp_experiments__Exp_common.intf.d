lib/experiments/exp_common.mli: Ppp_apps Ppp_core Ppp_hw
