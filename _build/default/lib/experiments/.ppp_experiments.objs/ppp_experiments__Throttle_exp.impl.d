lib/experiments/throttle_exp.ml: Exp_common List Ppp_apps Ppp_click Ppp_core Ppp_hw Ppp_simmem Ppp_util Printf Runner Table Throttle
