lib/experiments/fig5_exp.mli: Ppp_apps Ppp_core
