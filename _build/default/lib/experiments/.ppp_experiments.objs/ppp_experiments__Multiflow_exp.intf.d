lib/experiments/multiflow_exp.mli: Ppp_core
