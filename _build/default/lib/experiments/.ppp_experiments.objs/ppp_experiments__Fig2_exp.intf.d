lib/experiments/fig2_exp.mli: Exp_common Ppp_apps Ppp_core
