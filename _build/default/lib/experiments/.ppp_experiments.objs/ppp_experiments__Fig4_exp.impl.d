lib/experiments/fig4_exp.ml: Buffer Exp_common List Ppp_apps Ppp_core Ppp_util Printf Runner Sensitivity Table
