lib/experiments/ablation_exp.mli: Ppp_apps Ppp_core
