lib/experiments/fig9_exp.ml: Exp_common Float List Ppp_apps Ppp_core Ppp_hw Ppp_util Predictor Printf Runner Table
