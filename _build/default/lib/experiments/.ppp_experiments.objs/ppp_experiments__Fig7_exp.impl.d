lib/experiments/fig7_exp.ml: Cache_model Exp_common Float List Ppp_apps Ppp_core Ppp_hw Ppp_util Printf Runner Sensitivity Table
