lib/experiments/throttle_exp.mli: Ppp_core
