lib/experiments/fig4_exp.mli: Ppp_apps Ppp_core
