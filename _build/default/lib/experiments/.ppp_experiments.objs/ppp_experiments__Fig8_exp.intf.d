lib/experiments/fig8_exp.mli: Ppp_apps Ppp_core
