lib/experiments/table1_exp.mli: Ppp_core
