lib/experiments/multiflow_exp.ml: Float List Ppp_apps Ppp_click Ppp_core Ppp_hw Ppp_simmem Ppp_util Printf Runner Table
