lib/experiments/fig5_exp.ml: Buffer Exp_common Float List Ppp_apps Ppp_core Ppp_util Printf Runner Sensitivity Table
