lib/experiments/fig6_exp.ml: Equation1 Exp_common Float List Ppp_apps Ppp_core Ppp_util Printf Profile Runner Table
