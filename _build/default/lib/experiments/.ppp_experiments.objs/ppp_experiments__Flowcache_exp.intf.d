lib/experiments/flowcache_exp.mli: Ppp_core
