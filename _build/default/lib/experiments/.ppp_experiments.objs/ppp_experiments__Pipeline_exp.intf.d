lib/experiments/pipeline_exp.mli: Ppp_core
