lib/experiments/pipeline_exp.ml: Array List Ppp_apps Ppp_click Ppp_core Ppp_hw Ppp_simmem Ppp_traffic Ppp_util Printf Runner Table
