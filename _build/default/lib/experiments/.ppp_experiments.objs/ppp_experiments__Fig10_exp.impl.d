lib/experiments/fig10_exp.ml: Exp_common Float List Ppp_apps Ppp_core Ppp_hw Ppp_util Printf Runner Scheduler Table
