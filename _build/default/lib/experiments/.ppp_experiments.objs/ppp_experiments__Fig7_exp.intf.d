lib/experiments/fig7_exp.mli: Ppp_apps Ppp_core
