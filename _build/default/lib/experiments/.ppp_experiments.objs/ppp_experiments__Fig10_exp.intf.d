lib/experiments/fig10_exp.mli: Ppp_core
