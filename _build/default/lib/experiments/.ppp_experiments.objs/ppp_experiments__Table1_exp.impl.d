lib/experiments/table1_exp.ml: Ppp_apps Ppp_core Ppp_util Profile Runner
