lib/experiments/latency_exp.ml: List Ppp_apps Ppp_core Ppp_hw Ppp_util Printf Runner Sensitivity Table
