lib/experiments/fig8_exp.ml: Exp_common Float List Ppp_apps Ppp_core Ppp_util Predictor Printf Runner Table
