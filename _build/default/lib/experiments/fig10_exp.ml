open Ppp_core

type combo_result = {
  combo : Scheduler.combo;
  best : Scheduler.evaluation;
  worst : Scheduler.evaluation;
}

type data = { combos : combo_result list; detail : combo_result }

let default_combos =
  Ppp_apps.App.
    [
      [ (MON, 6); (FW, 6) ];
      [ (IP, 6); (FW, 6) ];
      [ (MON, 6); (VPN, 6) ];
      [ (IP, 6); (MON, 6) ];
      [ (RE, 6); (FW, 6) ];
      [ (MON, 4); (RE, 4); (FW, 4) ];
      [ (MON, 12) ];
      [ (syn_max, 6); (FW, 6) ];
    ]

let measure ?(params = Runner.default_params) ?(combos = default_combos) () =
  let solo_cache = ref [] in
  let eval combo =
    (* Collect solo baselines once across combos. *)
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k !solo_cache) then begin
          let r = Runner.solo ~params k in
          solo_cache := (k, r.Ppp_hw.Engine.throughput_pps) :: !solo_cache
        end)
      combo;
    let evals = Scheduler.evaluate ~params ~solo:!solo_cache combo in
    { combo; best = Scheduler.best evals; worst = Scheduler.worst evals }
  in
  let combos = List.map eval combos in
  let detail =
    match
      List.find_opt
        (fun c -> c.combo = Ppp_apps.App.[ (MON, 6); (FW, 6) ])
        combos
    with
    | Some c -> c
    | None -> List.hd combos
  in
  { combos; detail }

let is_realistic combo =
  List.for_all
    (fun (k, _) -> match k with Ppp_apps.App.SYN _ -> false | _ -> true)
    combo

let max_gain data =
  List.fold_left
    (fun acc c ->
      if is_realistic c.combo then
        Float.max acc (c.worst.Scheduler.avg_drop -. c.best.Scheduler.avg_drop)
      else acc)
    0.0 data.combos

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Figure 10(a): average per-flow drop (%) under best and worst \
         placement"
      [ "combination"; "best placement"; "worst placement"; "gain (pp)" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Scheduler.combo_name c.combo;
          Exp_common.pct c.best.Scheduler.avg_drop;
          Exp_common.pct c.worst.Scheduler.avg_drop;
          Exp_common.pct
            (c.worst.Scheduler.avg_drop -. c.best.Scheduler.avg_drop);
        ])
    data.combos;
  let detail =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 10(b): per-flow drop (%%) for %s under best/worst placement"
           (Scheduler.combo_name data.detail.combo))
      [ "flow"; "best placement"; "worst placement" ]
  in
  let summarize (e : Scheduler.evaluation) =
    (* Average drop per kind across the placement's flows. *)
    let kinds = List.sort_uniq compare (List.map fst e.Scheduler.per_flow) in
    List.map
      (fun k ->
        let ds = List.filter_map (fun (k', d) -> if k = k' then Some d else None) e.Scheduler.per_flow in
        (k, List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)))
      kinds
  in
  let best = summarize data.detail.best and worst = summarize data.detail.worst in
  List.iter
    (fun (k, d) ->
      Table.add_row detail
        [
          Ppp_apps.App.name k;
          Exp_common.pct d;
          Exp_common.pct (List.assoc k worst);
        ])
    best;
  Table.to_string t ^ "\n" ^ Table.to_string detail
  ^ Printf.sprintf
      "\nmax overall gain from contention-aware scheduling (realistic \
       combos) = %s%%\n"
      (Exp_common.pct (max_gain data))

let run ?params () = render (measure ?params ())
