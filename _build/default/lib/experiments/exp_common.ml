open Ppp_core

let realistic = Ppp_apps.App.realistic

type pair_result = {
  target : Ppp_apps.App.kind;
  competitor : Ppp_apps.App.kind;
  drop : float;
  competing_refs_per_sec : float;
  target_result : Ppp_hw.Engine.result;
}

let solo_results ~params kinds =
  List.map (fun k -> (k, Runner.solo ~params k)) kinds

let pair_matrix ~params ~solos ?(n_competitors = 5) kinds =
  let pair target competitor =
    let specs =
      Sensitivity.placement ~config:params.Runner.config Sensitivity.Both
        ~n_competitors ~competitor ~target
    in
    match Runner.run ~params specs with
    | t :: competitors ->
        let solo = List.assoc target solos in
        {
          target;
          competitor;
          drop = Runner.drop ~solo ~corun:t;
          competing_refs_per_sec =
            List.fold_left
              (fun acc (r : Ppp_hw.Engine.result) ->
                acc +. r.Ppp_hw.Engine.l3_refs_per_sec)
              0.0 competitors;
          target_result = t;
        }
    | [] -> assert false
  in
  List.concat_map (fun t -> List.map (fun c -> pair t c) kinds) kinds

let find_pair pairs ~target ~competitor =
  List.find
    (fun p -> p.target = target && p.competitor = competitor)
    pairs

let avg_drop_per_target pairs =
  let targets =
    List.sort_uniq compare (List.map (fun p -> p.target) pairs)
  in
  List.map
    (fun t ->
      let drops =
        List.filter_map
          (fun p -> if p.target = t then Some p.drop else None)
          pairs
      in
      ( t,
        List.fold_left ( +. ) 0.0 drops /. float_of_int (List.length drops) ))
    targets

let pct x = Printf.sprintf "%.2f" (100.0 *. x)
let millions x = Printf.sprintf "%.1f" (x /. 1e6)
