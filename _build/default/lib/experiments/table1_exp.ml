open Ppp_core

let profiles ?(params = Runner.default_params) () =
  Profile.table1 ~params (Ppp_apps.App.realistic @ [ Ppp_apps.App.syn_max ])

let run ?params () =
  Ppp_util.Table.to_string (Profile.to_table (profiles ?params ()))
