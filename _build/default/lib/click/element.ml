type verdict = Forward | Drop

type t = {
  kind : string;
  name : string;
  process : Ctx.t -> Ppp_net.Packet.t -> verdict;
}

let make ~kind ?name process =
  { kind; name = (match name with Some n -> n | None -> kind); process }

let rec process_all elements ctx pkt =
  match elements with
  | [] -> Forward
  | e :: rest -> (
      match e.process ctx pkt with
      | Forward -> process_all rest ctx pkt
      | Drop -> Drop)
