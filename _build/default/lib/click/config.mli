(** A tiny Click-style configuration language.

    A flow is written as a chain of element instantiations:

    {v FromDevice(0) -> CheckIPHeader -> RadixIPLookup(16384) ->
       DecIPTTL -> Flowstats(20000) -> ToDevice(0) v}

    Element classes are resolved through a {!Registry} that application
    libraries populate. Arguments are positional strings. *)

type decl = { kind : string; args : string list }

val parse : string -> (decl list, string) result
(** Splits a chain on ["->"], parsing [Kind] or [Kind(a, b, ...)] items.
    Whitespace and newlines are insignificant; [//] starts a line comment. *)

val to_string : decl list -> string

(** Element-class registry. *)
module Registry : sig
  type build_ctx = {
    heap : Ppp_simmem.Heap.t;
    rng : Ppp_util.Rng.t;
    scale : int;  (** machine working-set divisor (Machine.config.scale) *)
  }

  type builder = build_ctx -> string list -> Element.t

  val register : string -> builder -> unit
  (** Re-registering a kind replaces the previous builder. *)

  val known : unit -> string list

  val build : build_ctx -> decl -> (Element.t, string) result
end

val instantiate :
  Registry.build_ctx -> decl list -> (Element.t list, string) result
(** Builds every element in the chain. [FromDevice]/[ToDevice] declarations
    are accepted and skipped (flows provide device endpoints themselves). *)
