(** Running several flows on one core (Section 6 of the paper).

    The paper's prediction method assumes one flow per core; when a core
    multiplexes several flows they additionally contend for the private
    L1/L2 caches, which L3-based profiling cannot see. This combinator
    interleaves flow sources packet-by-packet on a single engine core so
    that scenario can be studied. *)

val round_robin : Ppp_hw.Engine.source list -> Ppp_hw.Engine.source
(** Strict round-robin packet interleaving (the Click task scheduler's
    default). Raises [Invalid_argument] on an empty list. *)

val weighted : (Ppp_hw.Engine.source * int) list -> Ppp_hw.Engine.source
(** [weighted [(s1, w1); (s2, w2)]] serves [w1] packets from [s1], then [w2]
    from [s2], and so on (weights must be positive). *)
