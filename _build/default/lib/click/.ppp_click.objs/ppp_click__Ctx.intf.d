lib/click/ctx.mli: Ppp_hw Ppp_net Ppp_util
