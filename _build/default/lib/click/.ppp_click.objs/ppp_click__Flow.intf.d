lib/click/flow.mli: Element Ppp_hw Ppp_net Ppp_simmem Ppp_util
