lib/click/element.mli: Ctx Ppp_net
