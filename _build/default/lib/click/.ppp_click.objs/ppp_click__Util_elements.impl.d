lib/click/util_elements.ml: Ctx Element Ppp_hw Ppp_net Ppp_simmem
