lib/click/staged.mli: Element Flow Ppp_hw Ppp_simmem Ppp_util
