lib/click/util_elements.mli: Element Ppp_hw Ppp_simmem
