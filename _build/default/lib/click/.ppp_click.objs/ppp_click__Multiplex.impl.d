lib/click/multiplex.ml: Array List
