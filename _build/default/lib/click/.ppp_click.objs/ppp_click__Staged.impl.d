lib/click/staged.ml: Array Builder Ctx Element Flow Heap Iarray List Ppp_hw Ppp_net Ppp_simmem Ppp_util Queue
