lib/click/config.ml: Buffer Element Hashtbl List Ppp_simmem Ppp_util Printf String
