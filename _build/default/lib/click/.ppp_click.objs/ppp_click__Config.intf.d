lib/click/config.mli: Element Ppp_simmem Ppp_util
