lib/click/flow.ml: Builder Ctx Element Heap Iarray Ppp_hw Ppp_net Ppp_simmem
