lib/click/ctx.ml: Ppp_hw Ppp_net Ppp_util
