lib/click/element.ml: Ctx Ppp_net
