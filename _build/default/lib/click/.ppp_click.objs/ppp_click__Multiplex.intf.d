lib/click/multiplex.mli: Ppp_hw
