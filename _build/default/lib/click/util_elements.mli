(** Small utility element classes in the spirit of the Click distribution's
    standard library. *)

val fn_counter : Ppp_hw.Fn.t

type counter_state = { mutable packets : int; mutable bytes : int }

val counter : ?heap:Ppp_simmem.Heap.t -> unit -> Element.t * counter_state
(** Counts packets and bytes, updating one cacheable statistics line per
    packet when a heap is given (as Click's Counter element does). *)

val rated_sampler : every:int -> Element.t
(** Forwards one packet in [every], drops the rest (Click's RatedSampler as
    used by sampled monitoring). [every >= 1]. *)

val tee_counter : label:string -> (string -> int -> unit) -> Element.t
(** Passes every packet through, invoking the callback with the label and
    wire length — glue for custom instrumentation. *)
