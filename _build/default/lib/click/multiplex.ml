let weighted sources =
  if sources = [] then invalid_arg "Multiplex.weighted: empty";
  List.iter
    (fun (_, w) -> if w <= 0 then invalid_arg "Multiplex.weighted: weight")
    sources;
  let arr = Array.of_list sources in
  let idx = ref 0 in
  let served = ref 0 in
  fun now ->
    let source, weight = arr.(!idx) in
    let item = source now in
    incr served;
    if !served >= weight then begin
      served := 0;
      idx := (!idx + 1) mod Array.length arr
    end;
    item

let round_robin sources =
  if sources = [] then invalid_arg "Multiplex.round_robin: empty";
  weighted (List.map (fun s -> (s, 1)) sources)
