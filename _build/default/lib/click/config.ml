type decl = { kind : string; args : string list }

let strip_comments s =
  String.split_on_char '\n' s
  |> List.map (fun row ->
         match String.index_opt row '/' with
         | Some i when i + 1 < String.length row && row.[i + 1] = '/' ->
             String.sub row 0 i
         | _ -> row)
  |> String.concat "\n"

let split_arrows s =
  (* Split on "->" at top level (no nesting in this language). *)
  let parts = ref [] and buf = Buffer.create 32 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '-' && s.[!i + 1] = '>' then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let parse_item raw =
  let s = String.trim raw in
  if s = "" then Error "empty element in chain"
  else
    match String.index_opt s '(' with
    | None ->
        if String.for_all is_ident_char s then Ok { kind = s; args = [] }
        else Error (Printf.sprintf "malformed element %S" s)
    | Some lp ->
        let kind = String.trim (String.sub s 0 lp) in
        if kind = "" || not (String.for_all is_ident_char kind) then
          Error (Printf.sprintf "malformed element name in %S" s)
        else if s.[String.length s - 1] <> ')' then
          Error (Printf.sprintf "missing ')' in %S" s)
        else
          let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
          let args =
            if String.trim inner = "" then []
            else String.split_on_char ',' inner |> List.map String.trim
          in
          if List.exists (fun a -> a = "") args then
            Error (Printf.sprintf "empty argument in %S" s)
          else Ok { kind; args }

let parse s =
  let s = strip_comments s in
  let items = split_arrows s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
        match parse_item item with
        | Ok d -> go (d :: acc) rest
        | Error e -> Error e)
  in
  go [] items

let to_string decls =
  decls
  |> List.map (fun d ->
         if d.args = [] then d.kind
         else Printf.sprintf "%s(%s)" d.kind (String.concat ", " d.args))
  |> String.concat " -> "

module Registry = struct
  type build_ctx = {
    heap : Ppp_simmem.Heap.t;
    rng : Ppp_util.Rng.t;
    scale : int;
  }

  type builder = build_ctx -> string list -> Element.t

  let builders : (string, builder) Hashtbl.t = Hashtbl.create 32
  let register kind f = Hashtbl.replace builders kind f
  let known () = Hashtbl.fold (fun k _ acc -> k :: acc) builders [] |> List.sort compare

  let build ctx decl =
    match Hashtbl.find_opt builders decl.kind with
    | None -> Error (Printf.sprintf "unknown element class %S" decl.kind)
    | Some f -> (
        try Ok (f ctx decl.args)
        with Invalid_argument m | Failure m ->
          Error (Printf.sprintf "%s: %s" decl.kind m))
end

let instantiate ctx decls =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | { kind = "FromDevice" | "ToDevice"; _ } :: rest -> go acc rest
    | d :: rest -> (
        match Registry.build ctx d with
        | Ok e -> go (e :: acc) rest
        | Error e -> Error e)
  in
  go [] decls
