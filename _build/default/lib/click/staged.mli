(** Pipelined parallelization: one flow split across several cores.

    Section 2.2 of the paper compares the "parallel" approach (each packet
    fully processed by one core — {!Flow}) against the "pipeline" approach
    (each packet handled by a chain of cores connected by in-memory handoff
    queues). Handing a packet descriptor from one core to the next makes the
    consumer's reads of descriptor and header lines coherence misses, and
    recycling the buffer back to the receiving core's pool costs further
    shared-line writes — the 10-15 extra misses/packet the paper reports.

    The last stage completes packets; earlier stages contribute work items
    only, so measured throughput is the pipeline's egress rate. *)

type t

val create :
  heap:Ppp_simmem.Heap.t ->
  rng:Ppp_util.Rng.t ->
  label:string ->
  gen:Flow.generator ->
  stages:Element.t list list ->
  ?queue_slots:int ->
  unit ->
  t
(** [stages] must contain at least two stages (otherwise use {!Flow}).
    [queue_slots] (default 32) is each inter-stage ring's capacity. *)

val num_stages : t -> int

val sources : t -> Ppp_hw.Engine.source array
(** One engine source per stage, in pipeline order; place each on the core
    of your choice. *)

val forwarded : t -> int
val dropped : t -> int
