(** A packet-processing flow: the unit the paper schedules onto a core.

    A flow owns an RX descriptor ring with NIC buffers, a chain of elements,
    a TX ring, and a buffer pool with skb recycling — all placed in one NUMA
    node's heap (Section 2.2's local-data policy). Its {!source} yields one
    trace per packet: NIC DMA, FromDevice descriptor/header reads, the
    elements' operations, ToDevice writes, and skb_recycle bookkeeping.

    The input queue is assumed always backlogged (the paper drives each flow
    at saturation to measure maximum throughput). *)

type generator = Ppp_net.Packet.t -> unit
(** Fills a preallocated packet in place with the next input packet. *)

type t

val create :
  heap:Ppp_simmem.Heap.t ->
  rng:Ppp_util.Rng.t ->
  label:string ->
  gen:generator ->
  elements:Element.t list ->
  ?rx_slots:int ->
  ?buf_stride:int ->
  unit ->
  t
(** [rx_slots] (default 64) RX buffers of [buf_stride] (default 2048) bytes. *)

val source : t -> Ppp_hw.Engine.source
val label : t -> string
val forwarded : t -> int
val dropped : t -> int
val elements : t -> Element.t list

val fn_from_device : Ppp_hw.Fn.t
val fn_to_device : Ppp_hw.Fn.t
val fn_skb_recycle : Ppp_hw.Fn.t
