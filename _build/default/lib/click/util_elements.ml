let fn_counter = Ppp_hw.Fn.register "counter"

type counter_state = { mutable packets : int; mutable bytes : int }

let counter ?heap () =
  let state = { packets = 0; bytes = 0 } in
  let stats_line =
    match heap with
    | Some h -> Some (Ppp_simmem.Iarray.create h ~elem_bytes:64 1 0)
    | None -> None
  in
  let el =
    Element.make ~kind:"Counter" (fun ctx pkt ->
        state.packets <- state.packets + 1;
        state.bytes <- state.bytes + pkt.Ppp_net.Packet.len;
        (match stats_line with
        | Some line ->
            Ppp_simmem.Iarray.set line ctx.Ctx.builder ~fn:fn_counter 0
              state.packets
        | None -> ());
        Ctx.compute ctx ~fn:fn_counter 4;
        Element.Forward)
  in
  (el, state)

let rated_sampler ~every =
  if every < 1 then invalid_arg "Util_elements.rated_sampler: every";
  let n = ref 0 in
  Element.make ~kind:"RatedSampler" (fun ctx _pkt ->
      incr n;
      Ctx.compute ctx ~fn:fn_counter 3;
      if !n mod every = 0 then Element.Forward else Element.Drop)

let tee_counter ~label f =
  Element.make ~kind:"TeeCounter" (fun _ctx pkt ->
      f label pkt.Ppp_net.Packet.len;
      Element.Forward)
