(** Rabin-Karp rolling fingerprints over byte windows, as used by
    protocol-independent redundancy elimination (Spring & Wetherall, the
    paper's RE application [26]). *)

val window : int
(** Fingerprint window in bytes (32). *)

type state

val init : Bytes.t -> pos:int -> state
(** Fingerprint of the window starting at [pos] (requires [window] bytes). *)

val roll : state -> Bytes.t -> pos:int -> state
(** [roll st b ~pos] slides the window one byte: [pos] is the new start
    position; byte [pos-1] leaves, byte [pos+window-1] enters. *)

val value : state -> int
(** The current fingerprint (non-negative, < modulus). *)

val fingerprint : Bytes.t -> pos:int -> int
(** One-shot fingerprint (= [value (init b ~pos)]). *)

val is_sample : int -> mask:int -> bool
(** Winnowing: a position is sampled when the fingerprint's low bits under
    [mask] are zero. *)
