(* FIPS 180-4 SHA-256 over 32-bit words (carried in OCaml ints, masked). *)

let mask = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

type state = { h : int array }

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
  }

let compress st block pos =
  let w = Array.make 64 0 in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get block (pos + (4 * i))) lsl 24)
      lor (Char.code (Bytes.get block (pos + (4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get block (pos + (4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get block (pos + (4 * i) + 3))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let a = ref st.h.(0) and b = ref st.h.(1) and c = ref st.h.(2) in
  let d = ref st.h.(3) and e = ref st.h.(4) and f = ref st.h.(5) in
  let g = ref st.h.(6) and hh = ref st.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let temp1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  st.h.(0) <- (st.h.(0) + !a) land mask;
  st.h.(1) <- (st.h.(1) + !b) land mask;
  st.h.(2) <- (st.h.(2) + !c) land mask;
  st.h.(3) <- (st.h.(3) + !d) land mask;
  st.h.(4) <- (st.h.(4) + !e) land mask;
  st.h.(5) <- (st.h.(5) + !f) land mask;
  st.h.(6) <- (st.h.(6) + !g) land mask;
  st.h.(7) <- (st.h.(7) + !hh) land mask

let digest b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha256.digest: range";
  let st = init () in
  (* Full blocks straight from the input. *)
  let full = len / 64 in
  for blk = 0 to full - 1 do
    compress st b (pos + (64 * blk))
  done;
  (* Padding: remainder + 0x80 + zeros + 64-bit bit length. *)
  let rem = len - (full * 64) in
  let tail = Bytes.make (if rem < 56 then 64 else 128) '\000' in
  Bytes.blit b (pos + (full * 64)) tail 0 rem;
  Bytes.set tail rem '\x80';
  let bits = len * 8 in
  let tl = Bytes.length tail in
  for i = 0 to 7 do
    Bytes.set tail (tl - 1 - i) (Char.chr ((bits lsr (8 * i)) land 0xFF))
  done;
  compress st tail 0;
  if tl = 128 then compress st tail 64;
  String.init 32 (fun i ->
      Char.chr ((st.h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xFF))

let digest_string s = digest (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let hex_of d =
  String.concat "" (List.init (String.length d) (fun i -> Printf.sprintf "%02x" (Char.code d.[i])))

let block_size = 64

let hmac ~key b ~pos ~len =
  let key = if String.length key > block_size then digest_string key else key in
  let pad c =
    String.init block_size (fun i ->
        let kb = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (kb lxor c))
  in
  let inner = Bytes.create (block_size + len) in
  Bytes.blit_string (pad 0x36) 0 inner 0 block_size;
  Bytes.blit b pos inner block_size len;
  let ih = digest inner ~pos:0 ~len:(Bytes.length inner) in
  let outer = Bytes.create (block_size + 32) in
  Bytes.blit_string (pad 0x5c) 0 outer 0 block_size;
  Bytes.blit_string ih 0 outer block_size 32;
  digest outer ~pos:0 ~len:(Bytes.length outer)

let hmac_string ~key s =
  hmac ~key (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
