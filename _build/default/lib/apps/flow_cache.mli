(** An exact-match flow cache in front of the longest-prefix-match lookup —
    the classic software fast path (Click's lookup caches, OpenFlow-style
    microflow caches).

    Each entry maps a 5-tuple hash to a next hop; hits skip the trie walk
    entirely. Under cache contention the flow cache's own lines get evicted,
    so its benefit shrinks exactly when the trie walk gets more expensive —
    a nice illustration of why fast paths do not rescue co-run performance. *)

type t

val create : heap:Ppp_simmem.Heap.t -> entries:int -> t
(** Direct-mapped; [entries] rounded up to a power of two, 16 simulated
    bytes each. *)

val capacity : t -> int
val hits : t -> int
val misses : t -> int

val lookup_element :
  t -> trie:Radix_trie.t -> ?hop_table:int Ppp_simmem.Iarray.t -> unit ->
  Ppp_click.Element.t
(** A drop-in replacement for RadixIPLookup: probes the flow cache first,
    falls back to the trie + next-hop table on a miss and fills the cache.
    Semantics identical to {!Ip_elements.radix_ip_lookup} (drops unrouted
    packets, annotates the egress port). *)
