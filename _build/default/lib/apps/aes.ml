(* GF(2^8) arithmetic with the AES polynomial x^8 + x^4 + x^3 + x + 1. *)
let xtime a =
  let a = a lsl 1 in
  if a land 0x100 <> 0 then (a lxor 0x1B) land 0xFF else a

let gmul a b =
  let rec go acc a b =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go acc (xtime a) (b lsr 1)
  in
  go 0 a b

(* S-box built from the multiplicative inverse plus the affine transform. *)
let sbox, inv_sbox =
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gmul a b = 1 then inv.(a) <- b
    done
  done;
  let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xFF in
  let s = Array.make 256 0 and si = Array.make 256 0 in
  for a = 0 to 255 do
    let x = inv.(a) in
    let v = x lxor rotl8 x 1 lxor rotl8 x 2 lxor rotl8 x 3 lxor rotl8 x 4 lxor 0x63 in
    s.(a) <- v;
    si.(v) <- a
  done;
  (s, si)

type key = int array array (* 11 round keys of 16 bytes *)

let expand_key k =
  if String.length k <> 16 then invalid_arg "Aes.expand_key: need 16 bytes";
  let w = Array.make 44 0 in
  (* 32-bit words, big-endian byte order within the word *)
  for i = 0 to 3 do
    w.(i) <-
      (Char.code k.[4 * i] lsl 24)
      lor (Char.code k.[(4 * i) + 1] lsl 16)
      lor (Char.code k.[(4 * i) + 2] lsl 8)
      lor Char.code k.[(4 * i) + 3]
  done;
  let sub_word x =
    (sbox.((x lsr 24) land 0xFF) lsl 24)
    lor (sbox.((x lsr 16) land 0xFF) lsl 16)
    lor (sbox.((x lsr 8) land 0xFF) lsl 8)
    lor sbox.(x land 0xFF)
  in
  let rot_word x = ((x lsl 8) lor (x lsr 24)) land 0xFFFFFFFF in
  let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |] in
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then sub_word (rot_word temp) lxor (rcon.((i / 4) - 1) lsl 24)
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp
  done;
  Array.init 11 (fun r ->
      Array.init 16 (fun b ->
          let word = w.((r * 4) + (b / 4)) in
          (word lsr (8 * (3 - (b mod 4)))) land 0xFF))

let add_round_key st rk =
  for i = 0 to 15 do
    st.(i) <- st.(i) lxor rk.(i)
  done

let sub_bytes st tbl =
  for i = 0 to 15 do
    st.(i) <- tbl.(st.(i))
  done

(* State layout: st.(4*c + r) = column-major as in FIPS-197 input order. *)
let shift_rows st =
  let old = Array.copy st in
  for c = 0 to 3 do
    for r = 1 to 3 do
      st.((4 * c) + r) <- old.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows st =
  let old = Array.copy st in
  for c = 0 to 3 do
    for r = 1 to 3 do
      st.((4 * ((c + r) mod 4)) + r) <- old.((4 * c) + r)
    done
  done

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) in
    let a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    st.((4 * c) + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) in
    let a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    st.((4 * c) + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    st.((4 * c) + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    st.((4 * c) + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let encrypt_state key st =
  add_round_key st key.(0);
  for round = 1 to 9 do
    sub_bytes st sbox;
    shift_rows st;
    mix_columns st;
    add_round_key st key.(round)
  done;
  sub_bytes st sbox;
  shift_rows st;
  add_round_key st key.(10)

let decrypt_state key st =
  add_round_key st key.(10);
  for round = 9 downto 1 do
    inv_shift_rows st;
    sub_bytes st inv_sbox;
    add_round_key st key.(round);
    inv_mix_columns st
  done;
  inv_shift_rows st;
  sub_bytes st inv_sbox;
  add_round_key st key.(0)

let load st b src =
  for i = 0 to 15 do
    st.(i) <- Char.code (Bytes.get b (src + i))
  done

let store st b dst =
  for i = 0 to 15 do
    Bytes.set b (dst + i) (Char.chr st.(i))
  done

let encrypt_block key b ~src ~dst =
  let st = Array.make 16 0 in
  load st b src;
  encrypt_state key st;
  store st b dst

let decrypt_block key b ~src ~dst =
  let st = Array.make 16 0 in
  load st b src;
  decrypt_state key st;
  store st b dst

let blocks_for len = (len + 15) / 16

let ctr_transform key ~nonce ~counter b ~pos ~len =
  if String.length nonce <> 8 then invalid_arg "Aes.ctr_transform: 8-byte nonce";
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Aes.ctr_transform: range";
  let st = Array.make 16 0 in
  let keystream = Array.make 16 0 in
  let nblocks = blocks_for len in
  for blk = 0 to nblocks - 1 do
    for i = 0 to 7 do
      st.(i) <- Char.code nonce.[i]
    done;
    let ctr = counter + blk in
    for i = 0 to 7 do
      st.(8 + i) <- (ctr lsr (8 * (7 - i))) land 0xFF
    done;
    encrypt_state key st;
    Array.blit st 0 keystream 0 16;
    let first = pos + (blk * 16) in
    let last = min (first + 15) (pos + len - 1) in
    for i = first to last do
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor keystream.(i - first)))
    done
  done
