open Ppp_click

let fn_check_ip_header = Ppp_hw.Fn.register "check_ip_header"
let fn_radix_ip_lookup = Ppp_hw.Fn.register "radix_ip_lookup"
let fn_dec_ip_ttl = Ppp_hw.Fn.register "dec_ip_ttl"

let check_ip_header () =
  Element.make ~kind:"CheckIPHeader" (fun ctx pkt ->
      let fn = fn_check_ip_header in
      Ctx.touch_packet ctx pkt ~fn ~write:false ~pos:Ppp_net.Ipv4.header_offset
        ~len:Ppp_net.Ipv4.header_bytes;
      (* Header-sum verification over ten 16-bit words. *)
      Ctx.compute ctx ~fn 45;
      if Ppp_net.Ipv4.valid pkt then Element.Forward else Element.Drop)

let radix_ip_lookup ?hop_table trie =
  Element.make ~kind:"RadixIPLookup" (fun ctx pkt ->
      let fn = fn_radix_ip_lookup in
      let dst = Ppp_net.Ipv4.dst pkt in
      let hop = Radix_trie.lookup trie ctx.Ctx.builder ~fn dst in
      Ctx.compute ctx ~fn 20;
      if hop = 0 then Element.Drop
      else begin
        let port =
          match hop_table with
          | None -> hop land 0xFF
          | Some table ->
              let info =
                Ppp_simmem.Iarray.get table ctx.Ctx.builder ~fn
                  ((hop - 1) mod Ppp_simmem.Iarray.length table)
              in
              info land 0xFF
        in
        (* Record the output port in the frame (MAC annotation). *)
        Ppp_net.Packet.set8 pkt 0 port;
        Ctx.touch_packet ctx pkt ~fn ~write:true ~pos:0 ~len:1;
        Element.Forward
      end)

let dec_ip_ttl () =
  Element.make ~kind:"DecIPTTL" (fun ctx pkt ->
      let fn = fn_dec_ip_ttl in
      if Ppp_net.Ipv4.ttl pkt <= 1 then Element.Drop
      else begin
        Ppp_net.Ipv4.decrement_ttl pkt;
        Ctx.touch_packet ctx pkt ~fn ~write:true
          ~pos:(Ppp_net.Ipv4.header_offset + 8) ~len:4;
        Ctx.compute ctx ~fn 12;
        Element.Forward
      end)

let forwarding_chain ?hop_table trie =
  [ check_ip_header (); radix_ip_lookup ?hop_table trie; dec_ip_ttl () ]
