open Ppp_simmem

type rule = {
  src : int;
  src_mask : int;
  dst : int;
  dst_mask : int;
  sport_lo : int;
  sport_hi : int;
  dport_lo : int;
  dport_hi : int;
  proto : int;
}

let rule_any =
  {
    src = 0;
    src_mask = 0;
    dst = 0;
    dst_mask = 0;
    sport_lo = 0;
    sport_hi = 0xFFFF;
    dport_lo = 0;
    dport_hi = 0xFFFF;
    proto = 0;
  }

type t = { table : rule Iarray.t; count : int }

let create ~heap rules =
  if rules = [] then invalid_arg "Firewall.create: no rules";
  let arr = Array.of_list rules in
  {
    table = Iarray.init heap ~elem_bytes:16 (Array.length arr) (fun i -> arr.(i));
    count = Array.length arr;
  }

let matches r pkt =
  let open Ppp_net in
  Ipv4.src pkt land r.src_mask = r.src land r.src_mask
  && Ipv4.dst pkt land r.dst_mask = r.dst land r.dst_mask
  && (r.proto = 0 || Ipv4.proto pkt = r.proto)
  &&
  let sp = Transport.src_port pkt and dp = Transport.dst_port pkt in
  sp >= r.sport_lo && sp <= r.sport_hi && dp >= r.dport_lo && dp <= r.dport_hi

let per_rule_instrs = 8

let check t b ~fn pkt =
  let rec scan i =
    if i >= t.count then None
    else begin
      let r = Iarray.get t.table b ~fn i in
      Ppp_hw.Trace.Builder.compute b ~fn per_rule_instrs;
      if matches r pkt then Some i else scan (i + 1)
    end
  in
  scan 0

let rules t = t.count
