(** The RE "packet store": a ring of recently observed payload bytes.

    Offsets are virtual (monotonically increasing); a virtual offset is
    readable while it is within the last [capacity] bytes written. The store
    is sized to hold about one second's worth of traffic (Section 2.1), far
    exceeding the L3 — this is why RE barely benefits from caching. *)

type t

val create : heap:Ppp_simmem.Heap.t -> capacity:int -> t
val capacity : t -> int

val head : t -> int
(** Virtual offset one past the newest byte. *)

val append :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Bytes.t -> pos:int ->
  len:int -> int
(** Copies bytes into the store (instrumented line writes) and returns the
    virtual offset of the first byte written. *)

val readable : t -> off:int -> len:int -> bool
(** True when [off, off+len) is still resident. *)

val read :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> off:int -> len:int ->
  Bytes.t -> dst:int -> unit
(** Copies [len] resident bytes at virtual [off] out of the store
    (instrumented line reads). Raises [Invalid_argument] if not
    {!readable}. *)

val byte_at : t -> int -> char
(** Un-instrumented single-byte peek (match extension / tests). Offset must
    be readable. *)
