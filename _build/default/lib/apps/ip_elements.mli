(** Click elements for full IP forwarding (the paper's baseline IP flow:
    header check, longest-prefix-match lookup, TTL decrement and checksum
    update). *)

val fn_check_ip_header : Ppp_hw.Fn.t
val fn_radix_ip_lookup : Ppp_hw.Fn.t
val fn_dec_ip_ttl : Ppp_hw.Fn.t

val check_ip_header : unit -> Ppp_click.Element.t
(** Reads the IP header from the packet buffer and drops packets with a bad
    version, length, TTL or checksum. *)

val radix_ip_lookup :
  ?hop_table:int Ppp_simmem.Iarray.t -> Radix_trie.t -> Ppp_click.Element.t
(** LPM lookup of the destination; the matched route's entry in the
    next-hop information table (gateway/egress-port records, as in Click's
    RadixIPLookup) is then read. Stores the port in the destination MAC's
    first byte and drops packets with no route (hop 0). *)

val dec_ip_ttl : unit -> Ppp_click.Element.t
(** Decrements TTL with an incremental checksum update; drops expired
    packets. *)

val forwarding_chain :
  ?hop_table:int Ppp_simmem.Iarray.t -> Radix_trie.t -> Ppp_click.Element.t list
(** [check_ip_header; radix_ip_lookup; dec_ip_ttl] — full IP forwarding. *)
