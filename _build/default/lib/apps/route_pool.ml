type t = {
  entries : (int * int * int) array;
  zipf : Ppp_traffic.Zipf.t;
}

let host_mask plen = (1 lsl (32 - plen)) - 1

let make ~seed ~n16 ~routes =
  if n16 <= 0 || routes <= 0 then invalid_arg "Route_pool.make";
  let rng = Ppp_util.Rng.create ~seed in
  (* Distinct /16 blocks out of the unicast space. *)
  let blocks =
    Array.init n16 (fun _ ->
        let a = 1 + Ppp_util.Rng.int rng 222 and b = Ppp_util.Rng.int rng 256 in
        (a lsl 24) lor (b lsl 16))
  in
  let entries =
    Array.init routes (fun i ->
        ignore i;
        let block = blocks.(Ppp_util.Rng.int rng n16) in
        let plen =
          (* Mostly /24s (every lookup descends below the root), a few /28s. *)
          if Ppp_util.Rng.int rng 100 < 97 then 24 else 28
        in
        let suffix = Ppp_util.Rng.int rng 65536 land lnot (host_mask plen) in
        let prefix = block lor (suffix land 0xFFFF) in
        let hop = 1 + Ppp_util.Rng.int rng 65535 in
        (prefix, plen, hop))
  in
  { entries; zipf = Ppp_traffic.Zipf.create ~n:routes ~s:0.2 }

let routes t = t.entries

let install t trie =
  Array.iter
    (fun (prefix, plen, hop) -> Radix_trie.add_route trie ~prefix ~plen ~hop)
    t.entries

let suggested_max_nodes ~n16 ~routes = n16 + (routes * 3 / 10) + 128

let pick_dst t idx salt =
  let prefix, plen, _ = t.entries.(idx) in
  prefix lor (salt land host_mask plen)

let random_dst t rng =
  let idx = Ppp_traffic.Zipf.sample t.zipf rng in
  pick_dst t idx (Ppp_util.Rng.int rng (1 lsl 16))

let dst_of_flow t f =
  let h = Ppp_util.Hashes.fnv1a_int f in
  pick_dst t (h mod Array.length t.entries) (h lsr 32)
