open Ppp_click

let fn_flow_statistics = Ppp_hw.Fn.register "flow_statistics"
let fn_firewall = Ppp_hw.Fn.register "firewall"
let fn_re = Ppp_hw.Fn.register "re"
let fn_vpn = Ppp_hw.Fn.register "vpn"
let fn_syn = Ppp_hw.Fn.register "syn"

let flow_statistics table =
  let clock = ref 0 in
  Element.make ~kind:"FlowStats" (fun ctx pkt ->
      incr clock;
      Ctx.touch_packet ctx pkt ~fn:fn_flow_statistics ~write:false
        ~pos:Ppp_net.Transport.header_offset ~len:4;
      (* 5-tuple hash. *)
      Ctx.compute ctx ~fn:fn_flow_statistics 35;
      Netflow.update table ctx.Ctx.builder ~fn:fn_flow_statistics pkt
        ~now:!clock;
      Element.Forward)

let firewall fw =
  Element.make ~kind:"Firewall" (fun ctx pkt ->
      match Firewall.check fw ctx.Ctx.builder ~fn:fn_firewall pkt with
      | Some _ -> Element.Drop
      | None -> Element.Forward)

let re_encode re =
  let out = Bytes.make 4096 '\000' in
  Element.make ~kind:"REEncode" (fun ctx pkt ->
      let fn = fn_re in
      let pos = Ppp_net.Transport.payload_offset pkt in
      let len = pkt.Ppp_net.Packet.len - pos in
      if len <= 0 then Element.Forward
      else begin
        Ctx.touch_packet ctx pkt ~fn ~write:false ~pos ~len;
        let enc_len =
          Re.encode re ctx.Ctx.builder ~fn pkt.Ppp_net.Packet.data ~pos ~len
            ~out
        in
        let new_len = min (pos + enc_len) (Ppp_net.Packet.capacity pkt) in
        Bytes.blit out 0 pkt.Ppp_net.Packet.data pos (new_len - pos);
        Ctx.touch_packet ctx pkt ~fn ~write:true ~pos ~len:(new_len - pos);
        Ppp_net.Packet.resize pkt new_len;
        (* Fix the IP total length so the encoded packet stays well-formed. *)
        Ppp_net.Packet.set16 pkt (Ppp_net.Ipv4.header_offset + 2)
          (new_len - Ppp_net.Ipv4.header_offset);
        Element.Forward
      end)

(* Simulated footprint of the AES tables: 4 T-tables + S-box would be ~5KB;
   we touch a handful of their lines per block and charge the rest of the
   round work as compute, because L1-resident table hits behave like compute
   with respect to L3 contention. *)
let vpn_instrs_per_block = 320
let vpn_table_touches_per_block = 4

let vpn_nonce = "\x00\x01\x02\x03\x04\x05\x06\x07"
let hmac_tag_bytes = 32

(* HMAC-SHA256 compression work, charged as compute: ~5 instructions per
   payload byte (64-round compression per 64-byte block). *)
let hmac_instrs len = 5 * (len + 96)

let vpn_encrypt ?auth_key ~heap ~key () =
  let key = Aes.expand_key key in
  let counter = ref 0 in
  (* 5KB of simulated T-tables / S-box, line-granular. *)
  let tables = Ppp_simmem.Iarray.create heap ~elem_bytes:64 80 0 in
  let table_lines = Ppp_simmem.Iarray.length tables in
  Element.make ~kind:"VPNEncrypt" (fun ctx pkt ->
      let fn = fn_vpn in
      let pos = Ppp_net.Transport.payload_offset pkt in
      let len = pkt.Ppp_net.Packet.len - pos in
      if len <= 0 then Element.Forward
      else begin
        Ctx.touch_packet ctx pkt ~fn ~write:false ~pos ~len;
        let blocks = Aes.blocks_for len in
        for blk = 0 to blocks - 1 do
          Ctx.compute ctx ~fn vpn_instrs_per_block;
          for k = 0 to vpn_table_touches_per_block - 1 do
            let line = (!counter + (blk * 7) + (k * 13)) mod table_lines in
            ignore (Ppp_simmem.Iarray.get tables ctx.Ctx.builder ~fn line : int)
          done
        done;
        Aes.ctr_transform key ~nonce:vpn_nonce ~counter:!counter
          pkt.Ppp_net.Packet.data ~pos ~len;
        counter := !counter + blocks;
        Ctx.touch_packet ctx pkt ~fn ~write:true ~pos ~len;
        (match auth_key with
        | None -> ()
        | Some ak ->
            (* Encrypt-then-MAC: append the tag and fix the IP length. *)
            let tag = Sha256.hmac ~key:ak pkt.Ppp_net.Packet.data ~pos ~len in
            let new_len = pkt.Ppp_net.Packet.len + hmac_tag_bytes in
            if new_len <= Ppp_net.Packet.capacity pkt then begin
              Ppp_net.Packet.resize pkt new_len;
              Ppp_net.Packet.blit_string tag pkt (pos + len);
              Ppp_net.Packet.set16 pkt (Ppp_net.Ipv4.header_offset + 2)
                (new_len - Ppp_net.Ipv4.header_offset);
              Ctx.compute ctx ~fn (hmac_instrs len);
              Ctx.touch_packet ctx pkt ~fn ~write:true ~pos:(pos + len)
                ~len:hmac_tag_bytes
            end);
        Element.Forward
      end)

let vpn_verify ~auth_key ~heap ~key =
  let key = Aes.expand_key key in
  let counter = ref 0 in
  let tables = Ppp_simmem.Iarray.create heap ~elem_bytes:64 80 0 in
  let table_lines = Ppp_simmem.Iarray.length tables in
  Element.make ~kind:"VPNVerify" (fun ctx pkt ->
      let fn = fn_vpn in
      let pos = Ppp_net.Transport.payload_offset pkt in
      let total = pkt.Ppp_net.Packet.len - pos in
      if total < hmac_tag_bytes then Element.Drop
      else begin
        let len = total - hmac_tag_bytes in
        Ctx.touch_packet ctx pkt ~fn ~write:false ~pos ~len:total;
        Ctx.compute ctx ~fn (hmac_instrs len);
        let expected =
          Sha256.hmac ~key:auth_key pkt.Ppp_net.Packet.data ~pos ~len
        in
        let got = Ppp_net.Packet.sub_string pkt ~pos:(pos + len) ~len:hmac_tag_bytes in
        if not (String.equal expected got) then Element.Drop
        else begin
          let blocks = Aes.blocks_for len in
          for blk = 0 to blocks - 1 do
            Ctx.compute ctx ~fn vpn_instrs_per_block;
            for k = 0 to vpn_table_touches_per_block - 1 do
              let line = (!counter + (blk * 7) + (k * 13)) mod table_lines in
              ignore (Ppp_simmem.Iarray.get tables ctx.Ctx.builder ~fn line : int)
            done
          done;
          Aes.ctr_transform key ~nonce:vpn_nonce ~counter:!counter
            pkt.Ppp_net.Packet.data ~pos ~len;
          counter := !counter + blocks;
          let new_len = pkt.Ppp_net.Packet.len - hmac_tag_bytes in
          Ppp_net.Packet.resize pkt new_len;
          Ppp_net.Packet.set16 pkt (Ppp_net.Ipv4.header_offset + 2)
            (new_len - Ppp_net.Ipv4.header_offset);
          Ctx.touch_packet ctx pkt ~fn ~write:true ~pos ~len;
          Element.Forward
        end
      end)

module Syn = struct
  type t = {
    buffer : int Ppp_simmem.Iarray.t;
    rng : Ppp_util.Rng.t;
    reads_per_packet : int;
    instrs_per_packet : int;
  }

  let create ~heap ~rng ~buffer_bytes ~reads_per_packet ~instrs_per_packet =
    if buffer_bytes < 64 then invalid_arg "Syn.create: buffer too small";
    if reads_per_packet < 0 || instrs_per_packet < 0 then
      invalid_arg "Syn.create: negative work";
    {
      buffer = Ppp_simmem.Iarray.create heap ~elem_bytes:64 (buffer_bytes / 64) 0;
      rng;
      reads_per_packet;
      instrs_per_packet;
    }

  let element t =
    let n = Ppp_simmem.Iarray.length t.buffer in
    Element.make ~kind:"Syn" (fun ctx _pkt ->
        Ctx.compute ctx ~fn:fn_syn t.instrs_per_packet;
        for _ = 1 to t.reads_per_packet do
          ignore
            (Ppp_simmem.Iarray.get t.buffer ctx.Ctx.builder ~fn:fn_syn
               (Ppp_util.Rng.int t.rng n)
              : int)
        done;
        Element.Forward)
end
