(** Protocol-independent redundancy elimination (Spring & Wetherall [26]) —
    the paper's RE application.

    An endpoint keeps a {!Packet_store} of recent payload bytes and a
    {!Fingerprint_table} from sampled Rabin fingerprints to store offsets.
    [encode] replaces payload regions already present in the store with
    9-byte tokens; [decode] at the peer endpoint expands tokens from its own
    (synchronized) store. Both sides append the original payload and insert
    its sampled fingerprints, so the two stores evolve identically. *)

type t

val create :
  heap:Ppp_simmem.Heap.t ->
  store_bytes:int ->
  table_entries:int ->
  ?sample_mask:int ->
  unit ->
  t
(** [sample_mask] (default 31) samples fingerprints whose low bits vanish,
    i.e. one position in ~32 on average. *)

type stats = {
  packets : int;
  bytes_in : int;
  bytes_out : int;
  matches : int;
  match_bytes : int;
}

val stats : t -> stats

val encode :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Bytes.t -> pos:int ->
  len:int -> out:Bytes.t -> int
(** Encodes the payload [pos, pos+len) of the input into [out] (from offset
    0), returning the encoded length; updates store and table. [out] must
    hold at least [2 * len + 16] bytes (worst-case escaping). *)

val decode :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Bytes.t -> pos:int ->
  len:int -> out:Bytes.t -> int
(** Decodes an encoded payload, returning the decoded length, and updates
    store/table exactly as the encoder did. Raises [Failure] on a malformed
    stream or a reference to evicted store content. *)
