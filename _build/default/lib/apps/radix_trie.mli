(** Multibit radix trie for IPv4 longest-prefix-match, after Click's
    RadixIPLookup (the paper's IP application, Section 2.1).

    Strides are 16-8-8: a 65536-entry root indexed by the top 16 address
    bits, then 256-entry nodes per level. Prefix expansion fills every entry
    a route covers; each entry stores the best (longest) matching next hop
    seen so far plus a child pointer, so lookups need no backtracking.

    The trie lives in instrumented memory: [lookup] records one memory
    reference per node visited — the address stream that makes IP forwarding
    cache-sensitive. *)

type t

val create :
  heap:Ppp_simmem.Heap.t -> ?max_nodes:int -> default_hop:int -> unit -> t
(** [max_nodes] bounds the number of non-root nodes (default 16384). *)

val add_route : t -> prefix:int -> plen:int -> hop:int -> unit
(** Un-instrumented insertion (tables are built at configuration time, not
    on the data path). [plen] in [0, 32]; [hop] must be positive. Longest
    prefix wins; equal-length later routes overwrite earlier ones. *)

val lookup : t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> int -> int
(** Instrumented lookup of a destination address: the real next hop, with
    one trace reference per visited node entry. *)

val lookup_quiet : t -> int -> int
(** Reference lookup without instrumentation (for tests/oracles). *)

val routes : t -> int
val nodes : t -> int
val footprint_bytes : t -> int
