type t = {
  store : Packet_store.t;
  table : Fingerprint_table.t;
  sample_mask : int;
  scratch : Bytes.t;
  mutable packets : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable matches : int;
  mutable match_bytes : int;
}

type stats = {
  packets : int;
  bytes_in : int;
  bytes_out : int;
  matches : int;
  match_bytes : int;
}

let magic = 0xFE
let esc_literal = 0x00
let esc_token = 0x01
let token_bytes = 9 (* magic, esc_token, 5B offset, 2B length *)
let max_match = 0xFFFF

let create ~heap ~store_bytes ~table_entries ?(sample_mask = 31) () =
  {
    store = Packet_store.create ~heap ~capacity:store_bytes;
    table = Fingerprint_table.create ~heap ~entries:table_entries;
    sample_mask;
    scratch = Bytes.make 128 '\000';
    packets = 0;
    bytes_in = 0;
    bytes_out = 0;
    matches = 0;
    match_bytes = 0;
  }

let stats (t : t) : stats =
  {
    packets = t.packets;
    bytes_in = t.bytes_in;
    bytes_out = t.bytes_out;
    matches = t.matches;
    match_bytes = t.match_bytes;
  }

(* Compare store content at [off] with [b] at [i], up to [max_len] bytes;
   returns the matching prefix length. Reads go through the instrumented
   store in line-sized chunks. *)
let match_length t builder ~fn ~off b ~i ~max_len =
  let matched = ref 0 in
  let continue_ = ref true in
  while !continue_ && !matched < max_len do
    let chunk = min 64 (max_len - !matched) in
    let o = off + !matched in
    if not (Packet_store.readable t.store ~off:o ~len:chunk) then
      continue_ := false
    else begin
      Packet_store.read t.store builder ~fn ~off:o ~len:chunk t.scratch ~dst:0;
      let k = ref 0 in
      while
        !k < chunk
        && Bytes.get t.scratch !k = Bytes.get b (i + !matched + !k)
      do
        incr k
      done;
      matched := !matched + !k;
      if !k < chunk then continue_ := false
    end
  done;
  !matched

(* Find greedy non-overlapping matches in [pos, pos+len). *)
let find_matches t builder ~fn b ~pos ~len =
  let window = Rabin.window in
  let matches = ref [] in
  if len >= window then begin
    let stop = pos + len in
    let i = ref pos in
    let st = ref (Rabin.init b ~pos:!i) in
    let continue_ = ref true in
    while !continue_ && !i + window <= stop do
      let fp = Rabin.value !st in
      let matched =
        if Rabin.is_sample fp ~mask:t.sample_mask then begin
          Ppp_hw.Trace.Builder.compute builder ~fn 20;
          match Fingerprint_table.lookup t.table builder ~fn ~fp with
          | None -> 0
          | Some off ->
              let max_len = min (stop - !i) max_match in
              let m = match_length t builder ~fn ~off b ~i:!i ~max_len in
              if m >= window then begin
                matches := (!i, off, m) :: !matches;
                m
              end
              else 0
        end
        else 0
      in
      if matched > 0 then begin
        i := !i + matched;
        if !i + window <= stop then st := Rabin.init b ~pos:!i
        else continue_ := false
      end
      else begin
        incr i;
        if !i + window <= stop then st := Rabin.roll !st b ~pos:!i
        else continue_ := false
      end
    done
  end;
  List.rev !matches

(* Append payload to the store and index its sampled fingerprints. *)
let absorb t builder ~fn b ~pos ~len =
  let base = Packet_store.append t.store builder ~fn b ~pos ~len in
  let window = Rabin.window in
  if len >= window then begin
    Ppp_hw.Trace.Builder.compute builder ~fn (2 * len);
    let stop = pos + len in
    let st = ref (Rabin.init b ~pos) in
    let i = ref pos in
    let continue_ = ref true in
    while !continue_ do
      let fp = Rabin.value !st in
      if Rabin.is_sample fp ~mask:t.sample_mask then
        Fingerprint_table.insert t.table builder ~fn ~fp ~off:(base + !i - pos);
      incr i;
      if !i + window <= stop then st := Rabin.roll !st b ~pos:!i
      else continue_ := false
    done
  end

let put_token out ~at ~off ~len =
  Bytes.set out at (Char.chr magic);
  Bytes.set out (at + 1) (Char.chr esc_token);
  for k = 0 to 4 do
    Bytes.set out (at + 2 + k) (Char.chr ((off lsr (8 * (4 - k))) land 0xFF))
  done;
  Bytes.set out (at + 7) (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set out (at + 8) (Char.chr (len land 0xFF))

let encode t builder ~fn b ~pos ~len ~out =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Re.encode: range";
  if Bytes.length out < (2 * len) + 16 then invalid_arg "Re.encode: out too small";
  let matches = find_matches t builder ~fn b ~pos ~len in
  Ppp_hw.Trace.Builder.compute builder ~fn (2 * len);
  absorb t builder ~fn b ~pos ~len;
  (* Emit literals with escaping, replacing matched regions by tokens. *)
  let o = ref 0 in
  let i = ref pos in
  let emit_literal_upto stop =
    while !i < stop do
      let c = Char.code (Bytes.get b !i) in
      if c = magic then begin
        Bytes.set out !o (Char.chr magic);
        Bytes.set out (!o + 1) (Char.chr esc_literal);
        o := !o + 2
      end
      else begin
        Bytes.set out !o (Char.chr c);
        incr o
      end;
      incr i
    done
  in
  List.iter
    (fun (mstart, off, mlen) ->
      emit_literal_upto mstart;
      put_token out ~at:!o ~off ~len:mlen;
      o := !o + token_bytes;
      i := mstart + mlen;
      t.matches <- t.matches + 1;
      t.match_bytes <- t.match_bytes + mlen)
    matches;
  emit_literal_upto (pos + len);
  t.packets <- t.packets + 1;
  t.bytes_in <- t.bytes_in + len;
  t.bytes_out <- t.bytes_out + !o;
  !o

let decode t builder ~fn b ~pos ~len ~out =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Re.decode: range";
  let o = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i < stop do
    let c = Char.code (Bytes.get b !i) in
    if c <> magic then begin
      Bytes.set out !o (Char.chr c);
      incr o;
      incr i
    end
    else begin
      if !i + 1 >= stop then failwith "Re.decode: truncated escape";
      match Char.code (Bytes.get b (!i + 1)) with
      | x when x = esc_literal ->
          Bytes.set out !o (Char.chr magic);
          incr o;
          i := !i + 2
      | x when x = esc_token ->
          if !i + token_bytes > stop then failwith "Re.decode: truncated token";
          let off = ref 0 in
          for k = 0 to 4 do
            off := (!off lsl 8) lor Char.code (Bytes.get b (!i + 2 + k))
          done;
          let mlen =
            (Char.code (Bytes.get b (!i + 7)) lsl 8)
            lor Char.code (Bytes.get b (!i + 8))
          in
          if not (Packet_store.readable t.store ~off:!off ~len:mlen) then
            failwith "Re.decode: reference to evicted content";
          Packet_store.read t.store builder ~fn ~off:!off ~len:mlen out ~dst:!o;
          o := !o + mlen;
          i := !i + token_bytes
      | _ -> failwith "Re.decode: bad escape"
    end
  done;
  Ppp_hw.Trace.Builder.compute builder ~fn (2 * !o);
  absorb t builder ~fn out ~pos:0 ~len:!o;
  t.packets <- t.packets + 1;
  !o
