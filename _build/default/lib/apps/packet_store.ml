open Ppp_simmem

type t = { buf : Ibuf.t; mutable head : int }

let create ~heap ~capacity =
  if capacity <= 0 then invalid_arg "Packet_store.create";
  { buf = Ibuf.create heap capacity; head = 0 }

let capacity t = Ibuf.length t.buf
let head t = t.head

let readable t ~off ~len =
  len >= 0 && off >= 0 && off + len <= t.head && off >= t.head - capacity t

(* Split a virtual range into at most two physical chunks (ring wrap). *)
let chunks t ~off ~len f =
  let cap = capacity t in
  let p = off mod cap in
  let first = min len (cap - p) in
  if first > 0 then f ~phys:p ~voff:off ~len:first;
  if len - first > 0 then f ~phys:0 ~voff:(off + first) ~len:(len - first)

let append t b ~fn src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Packet_store.append: range";
  if len > capacity t then invalid_arg "Packet_store.append: larger than store";
  let start = t.head in
  chunks t ~off:start ~len (fun ~phys ~voff ~len ->
      Bytes.blit src (pos + voff - start) (Ibuf.bytes t.buf) phys len;
      Ibuf.touch_write t.buf b ~fn ~pos:phys ~len);
  t.head <- t.head + len;
  start

let read t b ~fn ~off ~len dst ~dst:dpos =
  if not (readable t ~off ~len) then invalid_arg "Packet_store.read: stale";
  if dpos < 0 || dpos + len > Bytes.length dst then
    invalid_arg "Packet_store.read: dst range";
  chunks t ~off ~len (fun ~phys ~voff ~len ->
      Bytes.blit (Ibuf.bytes t.buf) phys dst (dpos + voff - off) len;
      Ibuf.touch_read t.buf b ~fn ~pos:phys ~len)

let byte_at t off =
  if not (readable t ~off ~len:1) then invalid_arg "Packet_store.byte_at";
  Bytes.get (Ibuf.bytes t.buf) (off mod capacity t)
