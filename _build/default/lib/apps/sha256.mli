(** SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104), implemented from
    scratch. Used for the authenticated-VPN extension (encrypt-then-MAC) and
    validated against the NIST test vectors in the test suite. *)

val digest : Bytes.t -> pos:int -> len:int -> string
(** 32-byte digest of a byte range. *)

val digest_string : string -> string

val hex_of : string -> string
(** Lowercase hex of a digest. *)

val hmac : key:string -> Bytes.t -> pos:int -> len:int -> string
(** 32-byte HMAC-SHA256 tag. Keys longer than 64 bytes are hashed first. *)

val hmac_string : key:string -> string -> string
