(** AES-128 (FIPS-197), implemented from scratch.

    Used by the VPN application to really encrypt packet payloads (the
    paper's CPU-intensive flow type). Block encryption/decryption plus CTR
    mode; validated against the FIPS-197 and NIST SP 800-38A vectors in the
    test suite. *)

type key
(** An expanded AES-128 key schedule. *)

val expand_key : string -> key
(** [expand_key k] for a 16-byte key string. *)

val encrypt_block : key -> Bytes.t -> src:int -> dst:int -> unit
(** Encrypts the 16-byte block at offset [src] into offset [dst] (may
    alias). *)

val decrypt_block : key -> Bytes.t -> src:int -> dst:int -> unit

val ctr_transform :
  key -> nonce:string -> counter:int -> Bytes.t -> pos:int -> len:int -> unit
(** CTR-mode encryption/decryption in place over [pos, pos+len): byte [i] is
    XORed with the keystream of block [counter + i/16]. [nonce] is 8 bytes.
    Involutive: applying it twice restores the input. *)

val blocks_for : int -> int
(** Number of 16-byte blocks covering [len] bytes. *)
