(** The RE fingerprint table: maps content fingerprints to packet-store
    offsets. Direct-mapped with tag verification; an insert simply
    overwrites (newest content wins, as in [26]). Sized at millions of
    entries, it is the second large RE structure that defeats caching. *)

type t

val create : heap:Ppp_simmem.Heap.t -> entries:int -> t
(** [entries] rounded up to a power of two; 8 simulated bytes per entry. *)

val capacity : t -> int

val insert :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> fp:int -> off:int -> unit
(** Record that content with fingerprint [fp] lives at store offset [off]. *)

val lookup :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> fp:int -> int option
(** The store offset last recorded for [fp], if the slot's tag matches. *)
