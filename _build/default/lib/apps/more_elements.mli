(** Click elements for the paper's add-on applications: NetFlow statistics
    (MON), sequential firewall (FW), redundancy elimination (RE), AES-128
    VPN encryption (VPN), and the SYN synthetic profiling application. *)

val fn_flow_statistics : Ppp_hw.Fn.t
val fn_firewall : Ppp_hw.Fn.t
val fn_re : Ppp_hw.Fn.t
val fn_vpn : Ppp_hw.Fn.t
val fn_syn : Ppp_hw.Fn.t

val flow_statistics : Netflow.t -> Ppp_click.Element.t
(** NetFlow accounting; the element keeps its own packet counter as the
    timestamp clock. *)

val firewall : Firewall.t -> Ppp_click.Element.t
(** Drops packets matching any rule. *)

val re_encode : Re.t -> Ppp_click.Element.t
(** Encodes the payload in place (the packet shrinks when redundant
    content is found). *)

val vpn_encrypt :
  ?auth_key:string -> heap:Ppp_simmem.Heap.t -> key:string -> unit ->
  Ppp_click.Element.t
(** AES-128-CTR encryption of the payload. The per-block T-table/S-box work
    is charged as compute plus a few table-line touches (the tables are
    L1-resident and act as compute for contention purposes).

    With [auth_key], encrypt-then-MAC: an HMAC-SHA256 tag over the encrypted
    payload is appended (the packet grows by 32 bytes and the IP length is
    fixed up), with the compression work charged as compute. *)

val vpn_verify :
  auth_key:string -> heap:Ppp_simmem.Heap.t -> key:string ->
  Ppp_click.Element.t
(** The receiving end: checks and strips the HMAC tag, then decrypts.
    Packets with a bad tag are dropped. *)

(** The SYN synthetic application (Section 2.1): a configurable number of
    counter increments plus random reads into an L3-sized buffer. *)
module Syn : sig
  type t

  val create :
    heap:Ppp_simmem.Heap.t ->
    rng:Ppp_util.Rng.t ->
    buffer_bytes:int ->
    reads_per_packet:int ->
    instrs_per_packet:int ->
    t

  val element : t -> Ppp_click.Element.t
end
