(** A reproducible set of IPv4 routes plus matching destination traffic.

    The paper drives IP forwarding with random destination addresses over a
    128000-entry table. The pool draws routes from a bounded set of /16
    blocks (as real tables do) so the trie footprint is controlled, and
    generates destinations covered by those routes with Zipf-distributed
    route popularity. *)

type t

val make : seed:int -> n16:int -> routes:int -> t
(** Deterministic in [seed]: the same parameters always give the same routes
    (so separately built generators and tables agree). *)

val routes : t -> (int * int * int) array
(** (prefix, plen, hop) triples; hops are in [1, 255]. *)

val install : t -> Radix_trie.t -> unit

val suggested_max_nodes : n16:int -> routes:int -> int
(** Trie node-pool size sufficient for a pool with these parameters. *)

val random_dst : t -> Ppp_util.Rng.t -> int
(** A destination covered by a Zipf-popular route, random within the
    prefix's host bits. *)

val dst_of_flow : t -> int -> int
(** Deterministic destination for a flow index (stable 5-tuples). *)
