let window = 32

(* Mersenne prime 2^31 - 1: operand products fit in OCaml's 63-bit ints, so
   modular arithmetic needs no splitting. Fingerprints are 31 bits; matches
   are verified byte-for-byte, so collisions only cost a failed probe. *)
let modulus = (1 lsl 31) - 1
let base = 263

let mulmod a b = a * b mod modulus

type state = { fp : int }

(* base^(window-1) mod p, for removing the outgoing byte. *)
let top_coeff =
  let rec go acc n = if n = 0 then acc else go (mulmod acc base) (n - 1) in
  go 1 (window - 1)

let addmod a b =
  let s = a + b in
  if s >= modulus then s - modulus else s

let submod a b = if a >= b then a - b else a + modulus - b

let init b ~pos =
  if pos < 0 || pos + window > Bytes.length b then invalid_arg "Rabin.init";
  let fp = ref 0 in
  for i = pos to pos + window - 1 do
    fp := addmod (mulmod !fp base) (Char.code (Bytes.get b i) + 1)
  done;
  { fp = !fp }

let roll st b ~pos =
  if pos < 1 || pos + window > Bytes.length b then invalid_arg "Rabin.roll";
  let outgoing = Char.code (Bytes.get b (pos - 1)) + 1 in
  let incoming = Char.code (Bytes.get b (pos + window - 1)) + 1 in
  let fp = submod st.fp (mulmod outgoing top_coeff) in
  { fp = addmod (mulmod fp base) incoming }

let value st = st.fp
let fingerprint b ~pos = value (init b ~pos)
let is_sample fp ~mask = fp land mask = 0
