open Ppp_simmem

(* Slot packing: bits 0-39 store offset + 1 (0 = empty), bits 40-61 tag. *)
type t = { slots : int Iarray.t; mask : int }

let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let create ~heap ~entries =
  if entries <= 0 then invalid_arg "Fingerprint_table.create";
  let cap = pow2 entries 16 in
  { slots = Iarray.create heap ~elem_bytes:8 cap 0; mask = cap - 1 }

let capacity t = t.mask + 1
let tag_of fp = (fp lsr 8) land 0x3FFFFF
let index t fp = Ppp_util.Hashes.fnv1a_int fp land t.mask

let insert t b ~fn ~fp ~off =
  if off < 0 || off >= 1 lsl 40 then invalid_arg "Fingerprint_table.insert: off";
  Iarray.set t.slots b ~fn (index t fp) ((tag_of fp lsl 40) lor (off + 1))

let lookup t b ~fn ~fp =
  let v = Iarray.get t.slots b ~fn (index t fp) in
  let off = (v land ((1 lsl 40) - 1)) - 1 in
  if off >= 0 && v lsr 40 = tag_of fp then Some off else None
