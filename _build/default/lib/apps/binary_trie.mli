(** Baseline LPM: a one-bit-per-level binary trie (no path compression),
    after the original Click RadixTrie. Lookups walk up to 32 nodes — many
    more memory references per packet than the multibit {!Radix_trie} — so
    it serves as the memory-hungry baseline in lookup-algorithm ablations.

    Same semantics as {!Radix_trie}: longest prefix wins, equal-length later
    routes overwrite, hop 0 means "no route". *)

type t

val create :
  heap:Ppp_simmem.Heap.t -> ?max_nodes:int -> default_hop:int -> unit -> t
(** [max_nodes] bounds trie nodes (default 262144; one per distinct prefix
    bit-path). *)

val add_route : t -> prefix:int -> plen:int -> hop:int -> unit
val lookup : t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> int -> int
val lookup_quiet : t -> int -> int
val routes : t -> int
val nodes : t -> int
val footprint_bytes : t -> int

val element : t -> Ppp_click.Element.t
(** A RadixIPLookup-compatible element backed by this trie (kind
    "BinaryIPLookup"). *)
