open Ppp_simmem

let fn_nat = Ppp_hw.Fn.register "nat"

(* Translation slot: bits 0-15 public port (0 = empty), 16-47 original
   address, 48-61 original port's low 14 bits... ports need 16 bits, so use
   two parallel entries packed into one 16-byte element instead: the Iarray
   element is a tuple. *)
type entry = { key_addr : int; key_port : int; public_port : int }

type t = {
  table : entry option Iarray.t; (* keyed by hash of (addr, port) *)
  by_port : (int, int * int) Hashtbl.t; (* public port -> original pair *)
  mask : int;
  public_ip : int;
  mutable next_port : int;
  mutable active : int;
  mutable translations : int;
}

let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let create ~heap ~public_ip ?(max_entries = 16384) () =
  if max_entries <= 0 then invalid_arg "Nat.create";
  let cap = pow2 max_entries 16 in
  {
    table = Iarray.create heap ~elem_bytes:16 cap None;
    by_port = Hashtbl.create 256;
    mask = cap - 1;
    public_ip;
    next_port = 1024;
    active = 0;
    translations = 0;
  }

let active t = t.active
let translations t = t.translations

let index t addr port =
  Ppp_util.Hashes.fnv1a_int ((addr lsl 16) lor port) land t.mask

let max_probes = 8

(* Find or allocate the mapping for (addr, port); instrumented probes. *)
let mapping t b addr port =
  let h = index t addr port in
  let rec probe i =
    if i >= max_probes then None
    else
      let idx = (h + i) land t.mask in
      match Iarray.get t.table b ~fn:fn_nat idx with
      | Some e when e.key_addr = addr && e.key_port = port ->
          Some e.public_port
      | Some _ -> probe (i + 1)
      | None ->
          if t.next_port > 0xFFFF then None
          else begin
            let public_port = t.next_port in
            t.next_port <- t.next_port + 1;
            Iarray.set t.table b ~fn:fn_nat idx
              (Some { key_addr = addr; key_port = port; public_port });
            Hashtbl.replace t.by_port public_port (addr, port);
            t.active <- t.active + 1;
            Some public_port
          end
  in
  probe 0

let lookup_reverse t ~public_port = Hashtbl.find_opt t.by_port public_port

let outbound_element t =
  Ppp_click.Element.make ~kind:"SourceNAT" (fun ctx pkt ->
      let open Ppp_net in
      let b = ctx.Ppp_click.Ctx.builder in
      let src = Ipv4.src pkt and sport = Transport.src_port pkt in
      Ppp_click.Ctx.compute ctx ~fn:fn_nat 30;
      match mapping t b src sport with
      | None -> Ppp_click.Element.Drop
      | Some public_port ->
          (* Rewrite source address (incremental checksum fix). *)
          let o = Ipv4.header_offset in
          let fix16 pos new16 =
            let old16 = Packet.get16 pkt pos in
            if old16 <> new16 then begin
              let c =
                Checksum.incremental_update
                  ~old_checksum:(Ipv4.header_checksum pkt) ~old16 ~new16
              in
              Packet.set16 pkt pos new16;
              Packet.set16 pkt (o + 10) c
            end
          in
          fix16 (o + 12) (t.public_ip lsr 16);
          fix16 (o + 14) (t.public_ip land 0xFFFF);
          Packet.set16 pkt Transport.header_offset public_port;
          Ppp_click.Ctx.touch_packet ctx pkt ~fn:fn_nat ~write:true ~pos:(o + 10)
            ~len:8;
          t.translations <- t.translations + 1;
          Ppp_click.Element.Forward)
