open Ppp_simmem

let fn_dpi = Ppp_hw.Fn.register "dpi"

(* Transition entry: next state in bits 0-23, "state has output" in bit 24. *)
let next_of v = v land 0xFFFFFF
let has_output v = v land (1 lsl 24) <> 0

type t = {
  delta : int Iarray.t; (* states * 256 *)
  output : int Iarray.t; (* per-state pattern bitmask *)
  patterns : string array;
  nstates : int;
  mutable matches_seen : int;
}

let create ~heap ?max_states patterns =
  if patterns = [] then invalid_arg "Dpi.create: no patterns";
  if List.length patterns > 62 then invalid_arg "Dpi.create: too many patterns";
  List.iter
    (fun p -> if p = "" then invalid_arg "Dpi.create: empty pattern")
    patterns;
  let pats = Array.of_list patterns in
  let cap =
    match max_states with
    | Some m -> m
    | None -> Array.fold_left (fun acc p -> acc + String.length p) 1 pats
  in
  (* Build goto/fail/output with plain arrays first. *)
  let goto = Array.make_matrix cap 256 (-1) in
  let fail = Array.make cap 0 in
  let out = Array.make cap 0 in
  let nstates = ref 1 in
  Array.iteri
    (fun pi p ->
      let state = ref 0 in
      String.iter
        (fun ch ->
          let c = Char.code ch in
          if goto.(!state).(c) < 0 then begin
            if !nstates >= cap then failwith "Dpi: state pool exhausted";
            goto.(!state).(c) <- !nstates;
            incr nstates
          end;
          state := goto.(!state).(c))
        p;
      out.(!state) <- out.(!state) lor (1 lsl pi))
    pats;
  (* BFS to compute failure links and collapse into a dense delta. *)
  let queue = Queue.create () in
  for c = 0 to 255 do
    if goto.(0).(c) < 0 then goto.(0).(c) <- 0
    else if goto.(0).(c) <> 0 then Queue.push goto.(0).(c) queue
  done;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    for c = 0 to 255 do
      let u = goto.(s).(c) in
      if u >= 0 then begin
        Queue.push u queue;
        fail.(u) <- goto.(fail.(s)).(c);
        out.(u) <- out.(u) lor out.(fail.(u))
      end
      else goto.(s).(c) <- goto.(fail.(s)).(c)
    done
  done;
  let n = !nstates in
  let delta = Iarray.create heap ~elem_bytes:4 (n * 256) 0 in
  let output = Iarray.create heap ~elem_bytes:8 n 0 in
  for s = 0 to n - 1 do
    Iarray.poke output s out.(s);
    for c = 0 to 255 do
      let nx = goto.(s).(c) in
      let v = nx lor (if out.(nx) <> 0 then 1 lsl 24 else 0) in
      Iarray.poke delta ((s * 256) + c) v
    done
  done;
  { delta; output; patterns = pats; nstates = n; matches_seen = 0 }

let patterns t = Array.to_list t.patterns
let states t = t.nstates
let footprint_bytes t = Iarray.size_bytes t.delta + Iarray.size_bytes t.output

let scan_gen t read_delta read_output b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Dpi.scan: range";
  let acc = ref [] in
  let state = ref 0 in
  for i = pos to pos + len - 1 do
    let v = read_delta t.delta ((!state * 256) + Char.code (Bytes.get b i)) in
    state := next_of v;
    if has_output v then begin
      let mask = read_output t.output !state in
      let m = ref mask in
      while !m <> 0 do
        let pi =
          (* Lowest set bit index. *)
          let rec go i v = if v land 1 = 1 then i else go (i + 1) (v lsr 1) in
          go 0 !m
        in
        acc := (pi, i - pos) :: !acc;
        m := !m land (!m - 1)
      done
    end
  done;
  List.rev !acc

let scan t builder ~fn b ~pos ~len =
  scan_gen t
    (fun arr i -> Iarray.get arr builder ~fn i)
    (fun arr i -> Iarray.get arr builder ~fn i)
    b ~pos ~len

let scan_quiet t b ~pos ~len = scan_gen t Iarray.peek Iarray.peek b ~pos ~len

let matches_seen t = t.matches_seen

let element ?(drop_on_match = true) t =
  Ppp_click.Element.make ~kind:"DPI" (fun ctx pkt ->
      let pos = Ppp_net.Transport.payload_offset pkt in
      let len = pkt.Ppp_net.Packet.len - pos in
      if len <= 0 then Ppp_click.Element.Forward
      else begin
        Ppp_click.Ctx.touch_packet ctx pkt ~fn:fn_dpi ~write:false ~pos ~len;
        (* One compare/advance per byte. *)
        Ppp_click.Ctx.compute ctx ~fn:fn_dpi (2 * len);
        let matches =
          scan t ctx.Ppp_click.Ctx.builder ~fn:fn_dpi pkt.Ppp_net.Packet.data
            ~pos ~len
        in
        t.matches_seen <- t.matches_seen + List.length matches;
        if matches <> [] && drop_on_match then Ppp_click.Element.Drop
        else Ppp_click.Element.Forward
      end)
