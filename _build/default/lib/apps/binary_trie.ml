open Ppp_simmem

(* Node packing (one 8-byte element per node):
   bits 0-15 hop, 16-38 left child + 1, 39-61 right child + 1 (0 = none). *)
let hop_of v = v land 0xFFFF
let left_of v = ((v lsr 16) land 0x7FFFFF) - 1
let right_of v = ((v lsr 39) land 0x7FFFFF) - 1

let pack ~hop ~left ~right =
  (hop land 0xFFFF) lor ((left + 1) lsl 16) lor ((right + 1) lsl 39)

type t = {
  pool : int Iarray.t;
  max_nodes : int;
  default_hop : int;
  mutable next : int; (* node 0 is the root *)
  mutable routes : int;
}

let create ~heap ?(max_nodes = 262144) ~default_hop () =
  if max_nodes <= 1 then invalid_arg "Binary_trie.create: max_nodes";
  let t =
    {
      pool = Iarray.create heap ~elem_bytes:8 max_nodes 0;
      max_nodes;
      default_hop;
      next = 1;
      routes = 0;
    }
  in
  Iarray.poke t.pool 0 (pack ~hop:0 ~left:(-1) ~right:(-1));
  t

let alloc t =
  if t.next >= t.max_nodes then failwith "Binary_trie: node pool exhausted";
  let n = t.next in
  t.next <- n + 1;
  Iarray.poke t.pool n (pack ~hop:0 ~left:(-1) ~right:(-1));
  n

let add_route t ~prefix ~plen ~hop =
  if plen < 0 || plen > 32 then invalid_arg "Binary_trie.add_route: plen";
  if hop <= 0 || hop > 0xFFFF then invalid_arg "Binary_trie.add_route: hop";
  let prefix = prefix land 0xFFFFFFFF in
  let node = ref 0 in
  for bit = 0 to plen - 1 do
    let v = Iarray.peek t.pool !node in
    let go_right = (prefix lsr (31 - bit)) land 1 = 1 in
    let child = if go_right then right_of v else left_of v in
    let child =
      if child >= 0 then child
      else begin
        let c = alloc t in
        let v = Iarray.peek t.pool !node in
        let updated =
          if go_right then pack ~hop:(hop_of v) ~left:(left_of v) ~right:c
          else pack ~hop:(hop_of v) ~left:c ~right:(right_of v)
        in
        Iarray.poke t.pool !node updated;
        c
      end
    in
    node := child
  done;
  let v = Iarray.peek t.pool !node in
  Iarray.poke t.pool !node (pack ~hop ~left:(left_of v) ~right:(right_of v));
  t.routes <- t.routes + 1

let lookup_gen t read dst =
  let dst = dst land 0xFFFFFFFF in
  let best = ref t.default_hop in
  let node = ref 0 in
  let bit = ref 0 in
  let continue_ = ref true in
  while !continue_ && !bit <= 32 do
    let v = read t.pool !node in
    if hop_of v > 0 then best := hop_of v;
    if !bit = 32 then continue_ := false
    else begin
      let child =
        if (dst lsr (31 - !bit)) land 1 = 1 then right_of v else left_of v
      in
      if child < 0 then continue_ := false
      else begin
        node := child;
        incr bit
      end
    end
  done;
  !best

let lookup t b ~fn dst = lookup_gen t (fun arr i -> Iarray.get arr b ~fn i) dst
let lookup_quiet t dst = lookup_gen t Iarray.peek dst
let routes t = t.routes
let nodes t = t.next
let footprint_bytes t = t.next * 8

let element t =
  let fn = Ip_elements.fn_radix_ip_lookup in
  Ppp_click.Element.make ~kind:"BinaryIPLookup" (fun ctx pkt ->
      let dst = Ppp_net.Ipv4.dst pkt in
      let hop = lookup t ctx.Ppp_click.Ctx.builder ~fn dst in
      Ppp_click.Ctx.compute ctx ~fn 40;
      if hop = 0 then Ppp_click.Element.Drop
      else begin
        Ppp_net.Packet.set8 pkt 0 (hop land 0xFF);
        Ppp_click.Ctx.touch_packet ctx pkt ~fn ~write:true ~pos:0 ~len:1;
        Ppp_click.Element.Forward
      end)
