(** NetFlow-style per-flow statistics (the paper's MON add-on, Section 2.1).

    A hash table of per-TCP/UDP-flow entries: each packet hashes its 5-tuple,
    probes the table (open addressing, linear probing) and updates a packet
    count, byte count and last-seen timestamp. The table is the cacheable
    data structure that makes MON the paper's most contention-sensitive
    flow type. *)

type t

type entry = {
  key : Ppp_net.Flowid.t;
  packets : int;
  bytes : int;
  last_seen : int;
}

val create : heap:Ppp_simmem.Heap.t -> entries:int -> t
(** [entries] is rounded up to a power of two. Each entry occupies 64
    simulated bytes (one cache line, as a padded C struct would). *)

val update :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Packet.t ->
  now:int -> unit
(** Account one packet: probes instrumented memory and updates (or inserts)
    the flow's entry. When the table is critically full (> 15/16), the probed
    bucket is overwritten (flow eviction, as fixed-size collectors do). *)

val find : t -> Ppp_net.Flowid.t -> entry option
(** Un-instrumented lookup for verification. *)

val active_flows : t -> int
val capacity : t -> int
val evictions : t -> int
