(** Source NAT — the classic middlebox the paper's introduction motivates
    (dynamic middlebox consolidation, Sekar et al. [25]).

    Outbound packets have their (source address, source port) rewritten to
    (public address, allocated port); the translation table is a cacheable
    per-connection structure like NetFlow's, probed once per packet. Header
    rewrites use RFC 1624 incremental checksum updates, so translated
    packets remain valid. A reverse lookup supports translating return
    traffic. *)

type t

val create :
  heap:Ppp_simmem.Heap.t -> public_ip:int -> ?max_entries:int -> unit -> t
(** [max_entries] (default 16384, rounded to a power of two) bounds active
    translations; allocation fails (packet dropped) when full. Ports are
    allocated from 1024 upward. *)

val active : t -> int
val translations : t -> int
(** Total outbound packets translated. *)

val fn_nat : Ppp_hw.Fn.t

val outbound_element : t -> Ppp_click.Element.t
(** Rewrites src address/port, fixing the IP checksum incrementally. Drops
    packets when the port space / table is exhausted. *)

val lookup_reverse : t -> public_port:int -> (int * int) option
(** The (original address, original port) behind an allocated public port —
    what the inbound path would use. *)
