(** Deep packet inspection: multi-pattern search with an Aho-Corasick
    automaton held in instrumented memory.

    DPI is one of the "emerging" packet-processing types the paper's
    Section 6 argues will need several megabytes of frequently accessed
    state; the dense byte-transition automaton here (256 x 4B per state)
    provides exactly that kind of footprint, with one memory reference per
    scanned payload byte. *)

type t

val create : heap:Ppp_simmem.Heap.t -> ?max_states:int -> string list -> t
(** Builds the automaton for the given patterns (non-empty, at most 62 —
    match sets are bitmasks). [max_states] defaults to the sum of pattern
    lengths + 1. Raises [Invalid_argument] on empty patterns or too many. *)

val patterns : t -> string list
val states : t -> int
val footprint_bytes : t -> int

val scan :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Bytes.t -> pos:int ->
  len:int -> (int * int) list
(** All matches in the byte range as (pattern index, end offset) pairs, in
    scan order; overlapping and nested matches are all reported. One
    instrumented transition read per byte. *)

val scan_quiet : t -> Bytes.t -> pos:int -> len:int -> (int * int) list
(** Un-instrumented (tests/oracles). *)

val fn_dpi : Ppp_hw.Fn.t

val element : ?drop_on_match:bool -> t -> Ppp_click.Element.t
(** Scans each packet's payload; with [drop_on_match] (default true) packets
    containing any pattern are dropped (IDS behaviour), otherwise matches
    are only counted. *)

val matches_seen : t -> int
(** Total matches reported through {!element} so far. *)
