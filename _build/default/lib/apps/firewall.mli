(** Sequential-search packet filter (the paper's FW add-on, Section 2.1).

    Each packet is checked against every rule in order until one matches;
    matching packets are dropped. The paper deliberately uses linear search
    over a rule list small enough to stay cache-resident, making FW the
    CPU-bound, contention-insensitive flow type. Rules are 5-tuple masks
    with ranges on ports. *)

type rule = {
  src : int;
  src_mask : int;  (** prefix mask, e.g. 0xFFFFFF00 for /24 *)
  dst : int;
  dst_mask : int;
  sport_lo : int;
  sport_hi : int;
  dport_lo : int;
  dport_hi : int;
  proto : int;  (** 0 = any *)
}

val rule_any : rule
(** A rule matching everything (customize by record update). *)

type t

val create : heap:Ppp_simmem.Heap.t -> rule list -> t
(** Rules occupy 16 simulated bytes each, packed four to a cache line. *)

val matches : rule -> Ppp_net.Packet.t -> bool

val check :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Packet.t ->
  int option
(** Instrumented sequential scan; [Some i] is the index of the first
    matching rule ([None] = accept). Every rule read and the per-rule
    comparison compute are traced. *)

val rules : t -> int
