lib/apps/netflow.ml: Iarray Ppp_net Ppp_simmem
