lib/apps/fingerprint_table.ml: Iarray Ppp_simmem Ppp_util
