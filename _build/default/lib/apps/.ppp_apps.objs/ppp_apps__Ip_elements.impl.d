lib/apps/ip_elements.ml: Ctx Element Ppp_click Ppp_hw Ppp_net Ppp_simmem Radix_trie
