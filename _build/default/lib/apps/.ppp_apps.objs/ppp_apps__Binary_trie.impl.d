lib/apps/binary_trie.ml: Iarray Ip_elements Ppp_click Ppp_net Ppp_simmem
