lib/apps/dpi.mli: Bytes Ppp_click Ppp_hw Ppp_simmem
