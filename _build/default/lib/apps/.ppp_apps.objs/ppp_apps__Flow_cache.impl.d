lib/apps/flow_cache.ml: Iarray Ip_elements Ppp_click Ppp_net Ppp_simmem Radix_trie
