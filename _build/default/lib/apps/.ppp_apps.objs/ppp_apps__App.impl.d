lib/apps/app.ml: Char Config Dpi Element Firewall Flow Hashes Ip_elements List More_elements Nat Netflow Ppp_click Ppp_net Ppp_simmem Ppp_traffic Ppp_util Printf Radix_trie Re Rng Route_pool String
