lib/apps/binary_trie.mli: Ppp_click Ppp_hw Ppp_simmem
