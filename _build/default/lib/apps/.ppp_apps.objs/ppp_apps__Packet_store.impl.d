lib/apps/packet_store.ml: Bytes Ibuf Ppp_simmem
