lib/apps/more_elements.mli: Firewall Netflow Ppp_click Ppp_hw Ppp_simmem Ppp_util Re
