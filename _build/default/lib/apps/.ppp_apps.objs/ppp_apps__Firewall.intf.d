lib/apps/firewall.mli: Ppp_hw Ppp_net Ppp_simmem
