lib/apps/more_elements.ml: Aes Bytes Ctx Element Firewall Netflow Ppp_click Ppp_hw Ppp_net Ppp_simmem Ppp_util Re Sha256 String
