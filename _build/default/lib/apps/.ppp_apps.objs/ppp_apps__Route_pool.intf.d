lib/apps/route_pool.mli: Ppp_util Radix_trie
