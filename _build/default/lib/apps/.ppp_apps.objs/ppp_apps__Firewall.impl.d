lib/apps/firewall.ml: Array Iarray Ipv4 Ppp_hw Ppp_net Ppp_simmem Transport
