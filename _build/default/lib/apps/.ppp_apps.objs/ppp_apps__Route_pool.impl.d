lib/apps/route_pool.ml: Array Ppp_traffic Ppp_util Radix_trie
