lib/apps/nat.ml: Checksum Hashtbl Iarray Ipv4 Packet Ppp_click Ppp_hw Ppp_net Ppp_simmem Ppp_util Transport
