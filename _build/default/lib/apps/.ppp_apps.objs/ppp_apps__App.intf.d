lib/apps/app.mli: Ppp_click Ppp_simmem Ppp_util
