lib/apps/rabin.mli: Bytes
