lib/apps/flow_cache.mli: Ppp_click Ppp_simmem Radix_trie
