lib/apps/dpi.ml: Array Bytes Char Iarray List Ppp_click Ppp_hw Ppp_net Ppp_simmem Queue String
