lib/apps/re.ml: Bytes Char Fingerprint_table List Packet_store Ppp_hw Rabin
