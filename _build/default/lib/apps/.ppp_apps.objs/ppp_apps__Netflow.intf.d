lib/apps/netflow.mli: Ppp_hw Ppp_net Ppp_simmem
