lib/apps/aes.mli: Bytes
