lib/apps/radix_trie.ml: Iarray Ppp_simmem
