lib/apps/packet_store.mli: Bytes Ppp_hw Ppp_simmem
