lib/apps/fingerprint_table.mli: Ppp_hw Ppp_simmem
