lib/apps/rabin.ml: Bytes Char
