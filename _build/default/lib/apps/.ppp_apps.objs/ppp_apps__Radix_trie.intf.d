lib/apps/radix_trie.mli: Ppp_hw Ppp_simmem
