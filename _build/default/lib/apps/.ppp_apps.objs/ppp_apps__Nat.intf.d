lib/apps/nat.mli: Ppp_click Ppp_hw Ppp_simmem
