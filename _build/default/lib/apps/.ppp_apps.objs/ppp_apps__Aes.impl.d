lib/apps/aes.ml: Array Bytes Char String
