lib/apps/ip_elements.mli: Ppp_click Ppp_hw Ppp_simmem Radix_trie
