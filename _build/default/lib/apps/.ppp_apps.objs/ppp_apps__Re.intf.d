lib/apps/re.mli: Bytes Ppp_hw Ppp_simmem
