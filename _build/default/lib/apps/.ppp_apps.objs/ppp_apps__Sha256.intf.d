lib/apps/sha256.mli: Bytes
