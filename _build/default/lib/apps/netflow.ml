open Ppp_simmem

type entry = {
  key : Ppp_net.Flowid.t;
  packets : int;
  bytes : int;
  last_seen : int;
}

type slot = Empty | Full of entry

type t = {
  table : slot Iarray.t;
  mask : int;
  mutable active : int;
  mutable evictions : int;
}

let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let create ~heap ~entries =
  if entries <= 0 then invalid_arg "Netflow.create: entries";
  let cap = pow2 entries 16 in
  {
    table = Iarray.create heap ~elem_bytes:64 cap Empty;
    mask = cap - 1;
    active = 0;
    evictions = 0;
  }

let capacity t = t.mask + 1
let active_flows t = t.active
let evictions t = t.evictions
let max_probes = 8

let update t b ~fn pkt ~now =
  let key = Ppp_net.Flowid.of_packet pkt in
  let h = Ppp_net.Flowid.hash key land t.mask in
  let bytes = pkt.Ppp_net.Packet.len in
  let rec probe i =
    let idx = (h + i) land t.mask in
    match Iarray.get t.table b ~fn idx with
    | Empty ->
        Iarray.set t.table b ~fn idx
          (Full { key; packets = 1; bytes; last_seen = now });
        t.active <- t.active + 1
    | Full e when Ppp_net.Flowid.equal e.key key ->
        Iarray.set t.table b ~fn idx
          (Full
             {
               e with
               packets = e.packets + 1;
               bytes = e.bytes + bytes;
               last_seen = now;
             })
    | Full _ ->
        if i + 1 >= max_probes || t.active > (t.mask + 1) * 15 / 16 then begin
          (* Evict the colliding flow (fixed-size collector behaviour). *)
          Iarray.set t.table b ~fn idx
            (Full { key; packets = 1; bytes; last_seen = now });
          t.evictions <- t.evictions + 1
        end
        else probe (i + 1)
  in
  probe 0

let find t key =
  let h = Ppp_net.Flowid.hash key land t.mask in
  let rec probe i =
    if i >= max_probes then None
    else
      let idx = (h + i) land t.mask in
      match Iarray.peek t.table idx with
      | Empty -> None
      | Full e when Ppp_net.Flowid.equal e.key key -> Some e
      | Full _ -> probe (i + 1)
  in
  probe 0
