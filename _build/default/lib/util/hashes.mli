(** Non-cryptographic hash functions used across the packet-processing
    applications (flow-table indexing, fingerprinting, load spreading). *)

val fnv1a_bytes : Bytes.t -> pos:int -> len:int -> int
(** 64-bit FNV-1a over a byte slice, truncated to a non-negative OCaml int. *)

val fnv1a_int : int -> int
(** FNV-1a over the 8 little-endian bytes of an int. *)

val jenkins_mix : int -> int -> int -> int * int * int
(** One round of the Bob Jenkins mix function, used by {!combine}. *)

val combine : int -> int -> int
(** Mix two hash values into one. *)

val crc32 : Bytes.t -> pos:int -> len:int -> int32
(** CRC-32 (IEEE 802.3 polynomial, reflected), e.g. for integrity checks on
    redundancy-elimination decode paths. *)

val crc32_string : string -> int32

val fold_int : int -> bits:int -> int
(** [fold_int h ~bits] folds a hash down to [bits] bits by xor-folding, for
    indexing power-of-two tables. *)
