(** Sampled (x, y) series with piecewise-linear interpolation.

    The prediction method of Section 4 reads a flow's performance drop off a
    sensitivity curve sampled at discrete competing-refs/sec points; this
    module is that curve abstraction. *)

type t

val of_points : (float * float) list -> t
(** Builds a series from sample points; points are sorted by x. Duplicate x
    values keep the last y. Raises [Invalid_argument] if empty. *)

val points : t -> (float * float) array
(** The sorted sample points. *)

val eval : t -> float -> float
(** [eval t x] interpolates linearly between the two samples bracketing [x];
    clamps to the first/last y outside the sampled range. *)

val map_y : (float -> float) -> t -> t

val monotone_nondecreasing : t -> bool
(** True when y never decreases as x grows (sanity check for sensitivity
    curves). *)

val knee : t -> threshold:float -> float option
(** [knee t ~threshold] returns the smallest sampled x past which the total
    remaining rise of the curve is at most [threshold] (absolute y units) —
    the paper's "turning point" (Section 3.2). [None] if the curve never
    settles, i.e. threshold is larger than the total rise only at the last
    point. *)
