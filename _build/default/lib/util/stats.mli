(** Small summary-statistics helpers for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance. *)

val stdev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. The input need not be sorted. *)

val median : float array -> float
val min_max : float array -> float * float

val mean_ci95 : float array -> float * float
(** Mean and the 95% normal-approximation confidence half-width. *)

type running
(** Online (Welford) accumulator. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_stdev : running -> float
