(** Aligned plain-text tables for experiment output (paper-style rows). *)

type align = Left | Right

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers.
    Columns default to right alignment except the first, which is left. *)

val set_align : t -> int -> align -> unit

val add_row : t -> string list -> unit
(** Row length must match the header length. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** Convenience: format a single string then split on ['|'] into cells. *)

val to_string : t -> string
val print : t -> unit

val cell_f : float -> string
(** Format a float with 2 decimals. *)

val cell_pct : float -> string
(** Format a fraction as a percentage with 2 decimals, e.g. [0.27] -> "27.00". *)

val cell_millions : float -> string
(** Format a count as millions with 2 decimals. *)
