let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stdev xs = sqrt (variance xs)

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (mn, mx) x -> (Float.min mn x, Float.max mx x))
    (xs.(0), xs.(0)) xs

let mean_ci95 xs =
  let m = mean xs in
  let n = float_of_int (Array.length xs) in
  (m, 1.96 *. stdev xs /. sqrt n)

type running = { mutable n : int; mutable m : float; mutable s : float }

let running_create () = { n = 0; m = 0.0; s = 0.0 }

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.m in
  r.m <- r.m +. (delta /. float_of_int r.n);
  r.s <- r.s +. (delta *. (x -. r.m))

let running_count r = r.n
let running_mean r = r.m

let running_stdev r =
  if r.n < 2 then 0.0 else sqrt (r.s /. float_of_int r.n)
