lib/util/hashes.ml: Array Bytes Char Int32 Int64 Lazy String
