lib/util/stats.mli:
