lib/util/hashes.mli: Bytes
