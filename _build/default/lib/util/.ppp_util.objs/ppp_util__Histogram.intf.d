lib/util/histogram.mli:
