lib/util/series.mli:
