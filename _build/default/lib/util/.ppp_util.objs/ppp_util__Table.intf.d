lib/util/table.mli:
