type align = Left | Right

type t = {
  title : string option;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ?title headers =
  let headers = Array.of_list headers in
  if Array.length headers = 0 then invalid_arg "Table.create: no columns";
  let aligns = Array.make (Array.length headers) Right in
  aligns.(0) <- Left;
  { title; headers; aligns; rows = [] }

let set_align t i a = t.aligns.(i) <- a

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let to_string t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    rows;
  let buf = Buffer.create 1024 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let emit_row cells =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cells.(i))
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let total = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (to_string t)
let cell_f x = Printf.sprintf "%.2f" x
let cell_pct x = Printf.sprintf "%.2f" (100.0 *. x)
let cell_millions x = Printf.sprintf "%.2f" (x /. 1e6)
