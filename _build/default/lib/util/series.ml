type t = { xs : float array; ys : float array }

let of_points pts =
  if pts = [] then invalid_arg "Series.of_points: empty";
  let sorted = List.stable_sort (fun (x1, _) (x2, _) -> compare x1 x2) pts in
  (* Keep the last y for duplicate x values. *)
  let dedup =
    List.fold_left
      (fun acc (x, y) ->
        match acc with
        | (x', _) :: rest when x' = x -> (x, y) :: rest
        | _ -> (x, y) :: acc)
      [] sorted
    |> List.rev
  in
  let n = List.length dedup in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  List.iteri
    (fun i (x, y) ->
      xs.(i) <- x;
      ys.(i) <- y)
    dedup;
  { xs; ys }

let points t = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i)))

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    (* Binary search for the bracketing interval. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = t.xs.(!lo) and x1 = t.xs.(!hi) in
    let y0 = t.ys.(!lo) and y1 = t.ys.(!hi) in
    y0 +. ((x -. x0) /. (x1 -. x0) *. (y1 -. y0))
  end

let map_y f t = { xs = Array.copy t.xs; ys = Array.map f t.ys }

let monotone_nondecreasing t =
  let ok = ref true in
  for i = 1 to Array.length t.ys - 1 do
    if t.ys.(i) < t.ys.(i - 1) then ok := false
  done;
  !ok

let knee t ~threshold =
  let n = Array.length t.xs in
  let y_last = t.ys.(n - 1) in
  let rec find i =
    if i >= n then None
    else if Float.abs (y_last -. t.ys.(i)) <= threshold then Some t.xs.(i)
    else find (i + 1)
  in
  find 0
