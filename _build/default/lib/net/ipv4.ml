let header_offset = Ethernet.header_bytes
let header_bytes = 20
let proto_udp = 17
let proto_tcp = 6

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let part x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | _ -> invalid_arg "Ipv4.addr_of_string: bad octet"
      in
      (part a lsl 24) lor (part b lsl 16) lor (part c lsl 8) lor part d
  | _ -> invalid_arg "Ipv4.addr_of_string: expected a.b.c.d"

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

let o = header_offset

let recompute_checksum p =
  Packet.set16 p (o + 10) 0;
  let c = Checksum.checksum p.Packet.data ~pos:o ~len:header_bytes in
  Packet.set16 p (o + 10) c

let set_header p ~src ~dst ~proto ~ttl ~payload_len =
  Packet.set8 p o 0x45;
  Packet.set8 p (o + 1) 0;
  Packet.set16 p (o + 2) (header_bytes + payload_len);
  Packet.set16 p (o + 4) 0;
  (* identification *)
  Packet.set16 p (o + 6) 0x4000;
  (* don't fragment *)
  Packet.set8 p (o + 8) ttl;
  Packet.set8 p (o + 9) proto;
  Packet.set32 p (o + 12) src;
  Packet.set32 p (o + 16) dst;
  recompute_checksum p

let src p = Packet.get32 p (o + 12)
let dst p = Packet.get32 p (o + 16)
let ttl p = Packet.get8 p (o + 8)
let proto p = Packet.get8 p (o + 9)
let total_length p = Packet.get16 p (o + 2)
let header_checksum p = Packet.get16 p (o + 10)
let checksum_ok p = Checksum.is_valid p.Packet.data ~pos:o ~len:header_bytes

let valid p =
  Packet.get8 p o = 0x45
  && p.Packet.len >= o + header_bytes
  && total_length p = p.Packet.len - o
  && ttl p > 0 && checksum_ok p

let decrement_ttl p =
  let old16 = Packet.get16 p (o + 8) in
  let t = ttl p in
  if t = 0 then invalid_arg "Ipv4.decrement_ttl: TTL already zero";
  Packet.set8 p (o + 8) (t - 1);
  let new16 = Packet.get16 p (o + 8) in
  let c =
    Checksum.incremental_update ~old_checksum:(header_checksum p) ~old16 ~new16
  in
  Packet.set16 p (o + 10) c

let set_dst p dst =
  let fix i new16 =
    let old16 = Packet.get16 p i in
    if old16 <> new16 then begin
      let c =
        Checksum.incremental_update ~old_checksum:(header_checksum p) ~old16
          ~new16
      in
      Packet.set16 p i new16;
      Packet.set16 p (o + 10) c
    end
  in
  fix (o + 16) (dst lsr 16);
  fix (o + 18) (dst land 0xFFFF)
