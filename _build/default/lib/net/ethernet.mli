(** Ethernet II framing (14-byte header at offset 0). *)

val header_bytes : int

val set_header : Packet.t -> src:string -> dst:string -> ethertype:int -> unit
(** [src]/[dst] are 6-byte MAC strings. *)

val ethertype : Packet.t -> int
val ethertype_ipv4 : int
val src : Packet.t -> string
val dst : Packet.t -> string
val set_dst : Packet.t -> string -> unit
val mac_of_string : string -> string
(** Parses "aa:bb:cc:dd:ee:ff" into a 6-byte MAC. *)

val mac_to_string : string -> string
