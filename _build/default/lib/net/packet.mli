(** Packets: real bytes plus simulation metadata.

    A packet's wire format is Ethernet / IPv4 / UDP-or-TCP / payload, built
    and parsed by {!Ethernet}, {!Ipv4} and {!Transport}. [buf_addr] is the
    simulated address of the NIC buffer currently holding the packet
    (assigned by the buffer pool on receive); [0] when unplaced. *)

type t = {
  data : Bytes.t;
  mutable len : int;  (** wire length in bytes *)
  mutable buf_addr : int;
}

val create : ?cap:int -> int -> t
(** [create ?cap len] makes a zeroed packet of wire length [len]; capacity
    defaults to 1514. *)

val of_bytes : Bytes.t -> t
val copy : t -> t
val capacity : t -> int

val resize : t -> int -> unit
(** Change wire length (within capacity). *)

val get8 : t -> int -> int
val set8 : t -> int -> int -> unit
val get16 : t -> int -> int
(** Big-endian 16-bit read. *)

val set16 : t -> int -> int -> unit
val get32 : t -> int -> int
(** Big-endian 32-bit read (non-negative int). *)

val set32 : t -> int -> int -> unit
val blit_string : string -> t -> int -> unit
val sub_string : t -> pos:int -> len:int -> string
