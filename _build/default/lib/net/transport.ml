let header_offset = Ipv4.header_offset + Ipv4.header_bytes
let o = header_offset
let src_port p = Packet.get16 p o
let dst_port p = Packet.get16 p (o + 2)

let set_ports p ~src ~dst =
  Packet.set16 p o src;
  Packet.set16 p (o + 2) dst

let udp_header_bytes = 8

let set_udp_header p ~src ~dst ~payload_len =
  set_ports p ~src ~dst;
  Packet.set16 p (o + 4) (udp_header_bytes + payload_len);
  Packet.set16 p (o + 6) 0

let payload_offset p =
  if Ipv4.proto p = Ipv4.proto_tcp then o + 20 else o + udp_header_bytes
