(** IPv4 header construction and parsing (20-byte header, no options),
    located after the Ethernet header. Addresses are ints in [0, 2^32). *)

val header_offset : int
(** Byte offset of the IP header within the packet (14). *)

val header_bytes : int
(** 20. *)

val addr_of_string : string -> int
(** "10.1.2.3" -> address. Raises [Invalid_argument] on malformed input. *)

val addr_to_string : int -> string

val set_header :
  Packet.t ->
  src:int -> dst:int -> proto:int -> ttl:int -> payload_len:int -> unit
(** Writes a full header (version/IHL, total length, TTL, protocol,
    addresses) and a valid checksum. [payload_len] counts bytes after the IP
    header. *)

val src : Packet.t -> int
val dst : Packet.t -> int
val ttl : Packet.t -> int
val proto : Packet.t -> int
val total_length : Packet.t -> int
val header_checksum : Packet.t -> int
val checksum_ok : Packet.t -> bool
val valid : Packet.t -> bool
(** Version, header length, total length and checksum all sane (what the
    paper's [check_ip_header] function verifies). *)

val decrement_ttl : Packet.t -> unit
(** TTL := TTL - 1 with an RFC 1624 incremental checksum update. *)

val set_dst : Packet.t -> int -> unit
(** Rewrite destination and incrementally fix the checksum. *)

val proto_udp : int
val proto_tcp : int
