(** RFC 1071 Internet checksum, with RFC 1624 incremental update.

    IP forwarding (Section 2.1) recomputes / incrementally updates the header
    checksum after the TTL decrement; both paths are provided and tested
    against each other. *)

val ones_sum : Bytes.t -> pos:int -> len:int -> int
(** Raw 16-bit one's-complement sum of a byte range (odd lengths padded). *)

val checksum : Bytes.t -> pos:int -> len:int -> int
(** The Internet checksum of a byte range (the complement of the sum). *)

val is_valid : Bytes.t -> pos:int -> len:int -> bool
(** True when the range (including its embedded checksum field) sums to
    0xFFFF. *)

val incremental_update : old_checksum:int -> old16:int -> new16:int -> int
(** [incremental_update ~old_checksum ~old16 ~new16] is the checksum after a
    16-bit word changed from [old16] to [new16] (RFC 1624 eqn. 3). *)
