let header_bytes = 14
let ethertype_ipv4 = 0x0800

let check_mac m =
  if String.length m <> 6 then invalid_arg "Ethernet: MAC must be 6 bytes"

let set_header p ~src ~dst ~ethertype =
  check_mac src;
  check_mac dst;
  Packet.blit_string dst p 0;
  Packet.blit_string src p 6;
  Packet.set16 p 12 ethertype

let ethertype p = Packet.get16 p 12
let src p = Packet.sub_string p ~pos:6 ~len:6
let dst p = Packet.sub_string p ~pos:0 ~len:6

let set_dst p mac =
  check_mac mac;
  Packet.blit_string mac p 0

let mac_of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
      let byte x = Char.chr (int_of_string ("0x" ^ x)) in
      let buf = Bytes.create 6 in
      List.iteri (fun i x -> Bytes.set buf i (byte x)) [ a; b; c; d; e; f ];
      Bytes.to_string buf
  | _ -> invalid_arg "Ethernet.mac_of_string"

let mac_to_string m =
  check_mac m;
  String.concat ":"
    (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code m.[i])))
