lib/net/flowid.ml: Format Hashes Ipv4 Ppp_util Stdlib Transport
