lib/net/ipv4.mli: Packet
