lib/net/ethernet.ml: Bytes Char List Packet Printf String
