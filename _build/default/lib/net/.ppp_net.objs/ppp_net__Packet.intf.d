lib/net/packet.mli: Bytes
