lib/net/ipv4.ml: Checksum Ethernet Packet Printf String
