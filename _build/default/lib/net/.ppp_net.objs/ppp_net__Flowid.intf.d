lib/net/flowid.mli: Format Packet
