lib/net/transport.mli: Packet
