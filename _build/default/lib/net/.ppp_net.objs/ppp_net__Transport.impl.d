lib/net/transport.ml: Ipv4 Packet
