(** Minimal UDP/TCP header access (ports only — what NetFlow and the firewall
    classify on), located right after the IPv4 header. *)

val header_offset : int
val src_port : Packet.t -> int
val dst_port : Packet.t -> int
val set_ports : Packet.t -> src:int -> dst:int -> unit

val udp_header_bytes : int
val set_udp_header : Packet.t -> src:int -> dst:int -> payload_len:int -> unit
(** Writes a UDP header (ports, length, zero checksum). *)

val payload_offset : Packet.t -> int
(** First byte after the transport header (UDP assumed; TCP uses 20 bytes). *)
