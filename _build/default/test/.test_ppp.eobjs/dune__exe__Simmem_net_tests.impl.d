test/simmem_net_tests.ml: Alcotest Bytes Char Checksum Ethernet Flowid Heap Iarray Ibuf Ipv4 Packet Ppp_hw Ppp_net Ppp_simmem Ppp_traffic QCheck QCheck_alcotest Transport
