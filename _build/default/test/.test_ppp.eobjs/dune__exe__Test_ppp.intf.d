test/test_ppp.mli:
