test/ext_tests.ml: Alcotest Bytes Filename Gen List Ppp_apps Ppp_click Ppp_core Ppp_experiments Ppp_hw Ppp_net Ppp_simmem Ppp_traffic Ppp_util Printf QCheck QCheck_alcotest String Sys
