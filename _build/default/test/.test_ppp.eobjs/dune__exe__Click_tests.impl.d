test/click_tests.ml: Alcotest Array Config Ctx Element Flow List Ppp_apps Ppp_click Ppp_hw Ppp_net Ppp_simmem Ppp_traffic Ppp_util Staged String
