test/hw_tests.ml: Alcotest Array Cache Costs Counters Engine Fn Gen Hierarchy List Machine Memctrl Ppp_hw Ppp_util QCheck QCheck_alcotest Topology Trace
