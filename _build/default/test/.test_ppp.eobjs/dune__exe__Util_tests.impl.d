test/util_tests.ml: Alcotest Array Bytes Float Fun Gen Hashes Int64 List Ppp_util QCheck QCheck_alcotest Rng Series Stats String Table
