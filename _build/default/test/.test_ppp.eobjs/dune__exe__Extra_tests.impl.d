test/extra_tests.ml: Alcotest Array Bytes List Ppp_apps Ppp_click Ppp_core Ppp_hw Ppp_net Ppp_simmem Ppp_traffic Ppp_util String
