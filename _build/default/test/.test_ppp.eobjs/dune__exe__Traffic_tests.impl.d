test/traffic_tests.ml: Alcotest Gen Ppp_net Ppp_traffic Ppp_util QCheck QCheck_alcotest Zipf
