open Ppp_traffic

let test_zipf_bounds () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let rng = Ppp_util.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 100)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~s:1.2 in
  let rng = Ppp_util.Rng.create ~seed:2 in
  let top10 = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Zipf.sample z rng < 10 then incr top10
  done;
  (* With s = 1.2, the top-10 ranks carry far more than 1% of the mass. *)
  Alcotest.(check bool) "head heavy" true (!top10 > n / 5)

let test_zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  Alcotest.(check (float 1e-9)) "uniform mass" 0.5 (Zipf.expected_mass z 5)

let test_zipf_expected_mass_monotone () =
  let z = Zipf.create ~n:50 ~s:0.8 in
  Alcotest.(check bool) "monotone" true
    (Zipf.expected_mass z 10 < Zipf.expected_mass z 20);
  Alcotest.(check (float 1e-9)) "total" 1.0 (Zipf.expected_mass z 50)

let test_gen_builds_valid_frames () =
  let p = Ppp_net.Packet.create 128 in
  Gen.fill_ipv4_udp p ~src:0x0A000001 ~dst:0x0B000002 ~sport:53 ~dport:5353
    ~wire_len:90;
  Alcotest.(check int) "len" 90 p.Ppp_net.Packet.len;
  Alcotest.(check int) "ethertype" Ppp_net.Ethernet.ethertype_ipv4
    (Ppp_net.Ethernet.ethertype p);
  Alcotest.(check bool) "valid IP" true (Ppp_net.Ipv4.valid p);
  Alcotest.(check int) "sport" 53 (Ppp_net.Transport.src_port p)

let test_gen_rejects_short () =
  let p = Ppp_net.Packet.create 128 in
  Alcotest.check_raises "short" (Invalid_argument "Gen.fill_ipv4_udp: too short")
    (fun () ->
      Gen.fill_ipv4_udp p ~src:0 ~dst:0 ~sport:0 ~dport:0 ~wire_len:40)

let test_seeded_payload_deterministic () =
  let p1 = Ppp_net.Packet.create 256 and p2 = Ppp_net.Packet.create 256 in
  Ppp_net.Packet.resize p1 200;
  Ppp_net.Packet.resize p2 200;
  Gen.seeded_payload ~seed:99 p1 ~pos:42 ~len:150;
  Gen.seeded_payload ~seed:99 p2 ~pos:42 ~len:150;
  Alcotest.(check string) "identical"
    (Ppp_net.Packet.sub_string p1 ~pos:42 ~len:150)
    (Ppp_net.Packet.sub_string p2 ~pos:42 ~len:150);
  Gen.seeded_payload ~seed:100 p2 ~pos:42 ~len:150;
  Alcotest.(check bool) "different seed differs" false
    (Ppp_net.Packet.sub_string p1 ~pos:42 ~len:150
    = Ppp_net.Packet.sub_string p2 ~pos:42 ~len:150)

let prop_zipf_in_range =
  QCheck.Test.make ~count:200 ~name:"zipf sample within [0,n)"
    QCheck.(pair (int_range 1 500) (float_bound_inclusive 2.0))
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      let rng = Ppp_util.Rng.create ~seed:(n + int_of_float (s *. 100.0)) in
      let v = Zipf.sample z rng in
      v >= 0 && v < n)

let tests =
  [
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform at s=0" `Quick test_zipf_uniform_when_s0;
    Alcotest.test_case "zipf mass monotone" `Quick test_zipf_expected_mass_monotone;
    Alcotest.test_case "gen valid frames" `Quick test_gen_builds_valid_frames;
    Alcotest.test_case "gen rejects short" `Quick test_gen_rejects_short;
    Alcotest.test_case "seeded payload deterministic" `Quick test_seeded_payload_deterministic;
    QCheck_alcotest.to_alcotest prop_zipf_in_range;
  ]
