open Ppp_simmem
open Ppp_net

(* --- Heap --- *)

let test_heap_alignment () =
  let h = Heap.create ~node:0 in
  let a = Heap.alloc h ~bytes:10 in
  let b = Heap.alloc h ~bytes:100 in
  Alcotest.(check int) "line aligned" 0 (a mod 64);
  Alcotest.(check int) "next aligned" 0 (b mod 64);
  Alcotest.(check bool) "disjoint" true (b >= a + 64)

let test_heap_node_windows () =
  let h0 = Heap.create ~node:0 and h1 = Heap.create ~node:1 in
  let a0 = Heap.alloc h0 ~bytes:64 and a1 = Heap.alloc h1 ~bytes:64 in
  Alcotest.(check int) "node 0" 0 (Ppp_hw.Topology.node_of_addr a0);
  Alcotest.(check int) "node 1" 1 (Ppp_hw.Topology.node_of_addr a1)

let test_heap_never_address_zero () =
  let h = Heap.create ~node:0 in
  Alcotest.(check bool) "nonzero base" true (Heap.alloc h ~bytes:1 > 0)

let test_heap_rejects_nonpositive () =
  let h = Heap.create ~node:0 in
  Alcotest.check_raises "zero alloc"
    (Invalid_argument "Heap.alloc: size must be positive") (fun () ->
      ignore (Heap.alloc h ~bytes:0))

(* --- Iarray --- *)

let fresh_builder () = Ppp_hw.Trace.Builder.create ()

let test_iarray_data_roundtrip () =
  let h = Heap.create ~node:0 in
  let a = Iarray.create h ~elem_bytes:8 16 0 in
  let b = fresh_builder () in
  Iarray.set a b ~fn:Ppp_hw.Fn.none 3 42;
  Alcotest.(check int) "get returns set" 42 (Iarray.get a b ~fn:Ppp_hw.Fn.none 3);
  Alcotest.(check int) "peek agrees" 42 (Iarray.peek a 3)

let test_iarray_emits_refs () =
  let h = Heap.create ~node:0 in
  let a = Iarray.create h ~elem_bytes:8 16 0 in
  let b = fresh_builder () in
  ignore (Iarray.get a b ~fn:Ppp_hw.Fn.none 0 : int);
  Iarray.set a b ~fn:Ppp_hw.Fn.none 1 5;
  let t = Ppp_hw.Trace.Builder.finish b in
  Alcotest.(check int) "two refs" 2 (Ppp_hw.Trace.length t);
  Alcotest.(check bool) "read then write" true
    (Ppp_hw.Trace.kind t 0 = Ppp_hw.Trace.Read
    && Ppp_hw.Trace.kind t 1 = Ppp_hw.Trace.Write)

let test_iarray_addressing () =
  let h = Heap.create ~node:0 in
  let a = Iarray.create h ~elem_bytes:8 16 0 in
  Alcotest.(check int) "stride" 8 (Iarray.addr_of a 1 - Iarray.addr_of a 0);
  (* Elements 0-7 share the first line; one ref per access, same line. *)
  let b = fresh_builder () in
  ignore (Iarray.get a b ~fn:Ppp_hw.Fn.none 0 : int);
  ignore (Iarray.get a b ~fn:Ppp_hw.Fn.none 7 : int);
  let t = Ppp_hw.Trace.Builder.finish b in
  Alcotest.(check int) "same line" (Ppp_hw.Trace.payload t 0) (Ppp_hw.Trace.payload t 1)

let test_iarray_multiline_element () =
  let h = Heap.create ~node:0 in
  let a = Iarray.create h ~elem_bytes:128 4 0 in
  let b = fresh_builder () in
  ignore (Iarray.get a b ~fn:Ppp_hw.Fn.none 0 : int);
  Alcotest.(check int) "two lines touched" 2
    (Ppp_hw.Trace.length (Ppp_hw.Trace.Builder.finish b))

let test_iarray_peek_silent () =
  let h = Heap.create ~node:0 in
  let a = Iarray.create h ~elem_bytes:8 4 9 in
  Alcotest.(check int) "peek" 9 (Iarray.peek a 2);
  Iarray.poke a 2 1;
  Alcotest.(check int) "poke" 1 (Iarray.peek a 2)

(* --- Ibuf --- *)

let test_ibuf_touch_line_counting () =
  let h = Heap.create ~node:0 in
  let buf = Ibuf.create h 1024 in
  let b = fresh_builder () in
  Ibuf.touch_read buf b ~fn:Ppp_hw.Fn.none ~pos:0 ~len:64;
  Ibuf.touch_read buf b ~fn:Ppp_hw.Fn.none ~pos:60 ~len:8;
  let t = Ppp_hw.Trace.Builder.finish b in
  (* 64B at 0 = 1 line; 8B straddling 60..67 = 2 lines. *)
  Alcotest.(check int) "line-granular refs" 3 (Ppp_hw.Trace.length t)

let test_ibuf_bounds () =
  let h = Heap.create ~node:0 in
  let buf = Ibuf.create h 100 in
  let b = fresh_builder () in
  Alcotest.check_raises "oob" (Invalid_argument "Ibuf.touch: range out of bounds")
    (fun () -> Ibuf.touch_read buf b ~fn:Ppp_hw.Fn.none ~pos:90 ~len:20)

let test_ibuf_lines_covered () =
  Alcotest.(check int) "zero len" 0 (Ibuf.lines_covered ~pos:10 ~len:0);
  Alcotest.(check int) "within line" 1 (Ibuf.lines_covered ~pos:10 ~len:10);
  Alcotest.(check int) "straddle" 2 (Ibuf.lines_covered ~pos:60 ~len:8)

(* --- Packet --- *)

let test_packet_endianness () =
  let p = Packet.create 64 in
  Packet.set16 p 0 0xBEEF;
  Alcotest.(check int) "be16" 0xBE (Packet.get8 p 0);
  Alcotest.(check int) "get16" 0xBEEF (Packet.get16 p 0);
  Packet.set32 p 4 0xDEADBEEF;
  Alcotest.(check int) "get32" 0xDEADBEEF (Packet.get32 p 4)

let test_packet_resize_bounds () =
  let p = Packet.create ~cap:100 60 in
  Packet.resize p 100;
  Alcotest.(check int) "resized" 100 p.Packet.len;
  Alcotest.check_raises "too big" (Invalid_argument "Packet.resize") (fun () ->
      Packet.resize p 101)

(* --- Checksum --- *)

let test_checksum_rfc1071_example () =
  (* Classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7,
     one's-complement sum 0xddf2 -> checksum 0x220d. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "sum" 0xddf2 (Checksum.ones_sum b ~pos:0 ~len:8);
  Alcotest.(check int) "checksum" 0x220d (Checksum.checksum b ~pos:0 ~len:8)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\xFF\x00\xAA" in
  (* 0xFF00 + 0xAA00 = 0x1A900 -> fold -> 0xA901 *)
  Alcotest.(check int) "odd sum" 0xA901 (Checksum.ones_sum b ~pos:0 ~len:3)

let test_checksum_validates () =
  let b = Bytes.make 20 '\x00' in
  Bytes.set b 0 '\x45';
  Bytes.set b 9 '\x11';
  let c = Checksum.checksum b ~pos:0 ~len:20 in
  Bytes.set b 10 (Char.chr (c lsr 8));
  Bytes.set b 11 (Char.chr (c land 0xFF));
  Alcotest.(check bool) "valid" true (Checksum.is_valid b ~pos:0 ~len:20)

let test_incremental_update_matches_recompute () =
  let b = Bytes.init 20 (fun i -> Char.chr ((i * 37) land 0xFF)) in
  Bytes.set b 10 '\x00';
  Bytes.set b 11 '\x00';
  let c0 = Checksum.checksum b ~pos:0 ~len:20 in
  Bytes.set b 10 (Char.chr (c0 lsr 8));
  Bytes.set b 11 (Char.chr (c0 land 0xFF));
  (* Change the 16-bit word at offset 8. *)
  let old16 = (Char.code (Bytes.get b 8) lsl 8) lor Char.code (Bytes.get b 9) in
  let new16 = 0x3F07 in
  Bytes.set b 8 (Char.chr (new16 lsr 8));
  Bytes.set b 9 (Char.chr (new16 land 0xFF));
  let incr = Checksum.incremental_update ~old_checksum:c0 ~old16 ~new16 in
  Bytes.set b 10 '\x00';
  Bytes.set b 11 '\x00';
  let full = Checksum.checksum b ~pos:0 ~len:20 in
  Alcotest.(check int) "incremental = full" full incr

(* --- Ethernet / Ipv4 / Transport / Flowid --- *)

let test_mac_string_roundtrip () =
  let m = Ethernet.mac_of_string "02:00:5e:10:00:ff" in
  Alcotest.(check string) "roundtrip" "02:00:5e:10:00:ff" (Ethernet.mac_to_string m)

let test_addr_string_roundtrip () =
  let a = Ipv4.addr_of_string "192.168.3.44" in
  Alcotest.(check string) "roundtrip" "192.168.3.44" (Ipv4.addr_to_string a);
  Alcotest.(check int) "value" ((192 lsl 24) lor (168 lsl 16) lor (3 lsl 8) lor 44) a

let test_addr_string_rejects_garbage () =
  Alcotest.check_raises "bad octet" (Invalid_argument "Ipv4.addr_of_string: bad octet")
    (fun () -> ignore (Ipv4.addr_of_string "1.2.3.999"))

let mk_packet () =
  let p = Packet.create 128 in
  Ppp_traffic.Gen.fill_ipv4_udp p
    ~src:(Ipv4.addr_of_string "10.0.0.1")
    ~dst:(Ipv4.addr_of_string "10.0.0.2")
    ~sport:1234 ~dport:80 ~wire_len:96;
  p

let test_ipv4_header_build_parse () =
  let p = mk_packet () in
  Alcotest.(check string) "src" "10.0.0.1" (Ipv4.addr_to_string (Ipv4.src p));
  Alcotest.(check string) "dst" "10.0.0.2" (Ipv4.addr_to_string (Ipv4.dst p));
  Alcotest.(check int) "ttl" 64 (Ipv4.ttl p);
  Alcotest.(check int) "proto" Ipv4.proto_udp (Ipv4.proto p);
  Alcotest.(check int) "total length" (96 - 14) (Ipv4.total_length p);
  Alcotest.(check bool) "checksum ok" true (Ipv4.checksum_ok p);
  Alcotest.(check bool) "valid" true (Ipv4.valid p)

let test_ipv4_ttl_decrement () =
  let p = mk_packet () in
  Ipv4.decrement_ttl p;
  Alcotest.(check int) "ttl" 63 (Ipv4.ttl p);
  Alcotest.(check bool) "checksum still ok" true (Ipv4.checksum_ok p);
  Alcotest.(check bool) "valid" true (Ipv4.valid p)

let test_ipv4_corruption_detected () =
  let p = mk_packet () in
  Packet.set8 p (Ipv4.header_offset + 12) 0x7F;
  Alcotest.(check bool) "bad checksum detected" false (Ipv4.checksum_ok p)

let test_ipv4_set_dst_incremental () =
  let p = mk_packet () in
  Ipv4.set_dst p (Ipv4.addr_of_string "172.16.5.6");
  Alcotest.(check string) "rewritten" "172.16.5.6"
    (Ipv4.addr_to_string (Ipv4.dst p));
  Alcotest.(check bool) "checksum maintained" true (Ipv4.checksum_ok p)

let test_transport_ports () =
  let p = mk_packet () in
  Alcotest.(check int) "sport" 1234 (Transport.src_port p);
  Alcotest.(check int) "dport" 80 (Transport.dst_port p);
  Alcotest.(check int) "payload offset" (14 + 20 + 8) (Transport.payload_offset p)

let test_flowid_equal_hash () =
  let p1 = mk_packet () and p2 = mk_packet () in
  let f1 = Flowid.of_packet p1 and f2 = Flowid.of_packet p2 in
  Alcotest.(check bool) "equal" true (Flowid.equal f1 f2);
  Alcotest.(check int) "hash equal" (Flowid.hash f1) (Flowid.hash f2);
  Transport.set_ports p2 ~src:9999 ~dst:80;
  let f3 = Flowid.of_packet p2 in
  Alcotest.(check bool) "different flow differs" false (Flowid.equal f1 f3)

let prop_incremental_checksum =
  QCheck.Test.make ~count:300 ~name:"incremental checksum equals recompute"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (old16, new16) ->
      let b = Bytes.make 4 '\x00' in
      Bytes.set b 0 (Char.chr (old16 lsr 8));
      Bytes.set b 1 (Char.chr (old16 land 0xFF));
      let c0 = Checksum.checksum b ~pos:0 ~len:4 in
      Bytes.set b 0 (Char.chr (new16 lsr 8));
      Bytes.set b 1 (Char.chr (new16 land 0xFF));
      let full = Checksum.checksum b ~pos:0 ~len:4 in
      let incr = Checksum.incremental_update ~old_checksum:c0 ~old16 ~new16 in
      (* One's-complement checksums have two zero representations; compare
         by validation semantics. *)
      full = incr || (full lxor incr) land 0xFFFF = 0xFFFF)

let prop_addr_roundtrip =
  QCheck.Test.make ~count:300 ~name:"IPv4 address string roundtrip"
    QCheck.(int_bound 0xFFFFFFFF)
    (fun a -> Ipv4.addr_of_string (Ipv4.addr_to_string a) = a)

let tests =
  [
    Alcotest.test_case "heap alignment" `Quick test_heap_alignment;
    Alcotest.test_case "heap node windows" `Quick test_heap_node_windows;
    Alcotest.test_case "heap nonzero addresses" `Quick test_heap_never_address_zero;
    Alcotest.test_case "heap rejects nonpositive" `Quick test_heap_rejects_nonpositive;
    Alcotest.test_case "iarray data roundtrip" `Quick test_iarray_data_roundtrip;
    Alcotest.test_case "iarray emits refs" `Quick test_iarray_emits_refs;
    Alcotest.test_case "iarray addressing" `Quick test_iarray_addressing;
    Alcotest.test_case "iarray multiline elements" `Quick test_iarray_multiline_element;
    Alcotest.test_case "iarray peek/poke silent" `Quick test_iarray_peek_silent;
    Alcotest.test_case "ibuf line counting" `Quick test_ibuf_touch_line_counting;
    Alcotest.test_case "ibuf bounds" `Quick test_ibuf_bounds;
    Alcotest.test_case "ibuf lines_covered" `Quick test_ibuf_lines_covered;
    Alcotest.test_case "packet endianness" `Quick test_packet_endianness;
    Alcotest.test_case "packet resize bounds" `Quick test_packet_resize_bounds;
    Alcotest.test_case "checksum rfc1071 example" `Quick test_checksum_rfc1071_example;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "checksum validates" `Quick test_checksum_validates;
    Alcotest.test_case "incremental checksum" `Quick test_incremental_update_matches_recompute;
    Alcotest.test_case "mac string roundtrip" `Quick test_mac_string_roundtrip;
    Alcotest.test_case "addr string roundtrip" `Quick test_addr_string_roundtrip;
    Alcotest.test_case "addr rejects garbage" `Quick test_addr_string_rejects_garbage;
    Alcotest.test_case "ipv4 build/parse" `Quick test_ipv4_header_build_parse;
    Alcotest.test_case "ipv4 ttl decrement" `Quick test_ipv4_ttl_decrement;
    Alcotest.test_case "ipv4 corruption detected" `Quick test_ipv4_corruption_detected;
    Alcotest.test_case "ipv4 set_dst incremental" `Quick test_ipv4_set_dst_incremental;
    Alcotest.test_case "transport ports" `Quick test_transport_ports;
    Alcotest.test_case "flowid equal/hash" `Quick test_flowid_equal_hash;
    QCheck_alcotest.to_alcotest prop_incremental_checksum;
    QCheck_alcotest.to_alcotest prop_addr_roundtrip;
  ]
