open Ppp_core

let quick = Runner.quick_params

(* --- Equation 1 --- *)

let test_eq1_zero_cases () =
  Alcotest.(check (float 1e-12)) "no hits" 0.0
    (Equation1.drop ~delta:43.75e-9 ~kappa:1.0 ~hits_per_sec:0.0);
  Alcotest.(check (float 1e-12)) "no conversion" 0.0
    (Equation1.drop ~delta:43.75e-9 ~kappa:0.0 ~hits_per_sec:1e7)

let test_eq1_paper_point () =
  (* The paper: 20M hits/sec at delta = 43.75ns gives at most ~47%. *)
  let d = Equation1.max_drop ~delta:Equation1.paper_delta ~hits_per_sec:20e6 in
  Alcotest.(check bool) "close to 47%" true (d > 0.46 && d < 0.48)

let test_eq1_monotone_in_everything () =
  let d1 = Equation1.drop ~delta:30e-9 ~kappa:0.5 ~hits_per_sec:1e7 in
  let d2 = Equation1.drop ~delta:60e-9 ~kappa:0.5 ~hits_per_sec:1e7 in
  let d3 = Equation1.drop ~delta:30e-9 ~kappa:0.9 ~hits_per_sec:1e7 in
  let d4 = Equation1.drop ~delta:30e-9 ~kappa:0.5 ~hits_per_sec:2e7 in
  Alcotest.(check bool) "delta" true (d2 > d1);
  Alcotest.(check bool) "kappa" true (d3 > d1);
  Alcotest.(check bool) "hits" true (d4 > d1)

let test_eq1_validates () =
  Alcotest.check_raises "kappa > 1" (Invalid_argument "Equation1.drop")
    (fun () -> ignore (Equation1.drop ~delta:1e-9 ~kappa:1.5 ~hits_per_sec:1.0))

let prop_eq1_bounded =
  QCheck.Test.make ~count:300 ~name:"Equation 1 drop in [0,1)"
    QCheck.(
      triple (float_bound_inclusive 1e-7) (float_bound_inclusive 1.0)
        (float_bound_inclusive 1e9))
    (fun (delta, kappa, h) ->
      let d = Equation1.drop ~delta ~kappa ~hits_per_sec:h in
      d >= 0.0 && d < 1.0)

(* --- Cache model --- *)

let test_model_no_competition () =
  Alcotest.(check (float 1e-9)) "p_hit = 1" 1.0
    (Cache_model.p_hit ~cache_lines:1000 ~chunks:100 ~target_hits_per_sec:1e6
       ~competing_refs_per_sec:0.0)

let test_model_conversion_increases () =
  let conv rc =
    Cache_model.conversion_rate ~cache_lines:24576 ~chunks:30000
      ~target_hits_per_sec:1e7 ~competing_refs_per_sec:rc
  in
  Alcotest.(check bool) "monotone" true (conv 1e6 < conv 1e7 && conv 1e7 < conv 1e8)

let test_model_shape_knee () =
  (* The model must show a sharp rise then saturation: the increase from 0
     to 50M must dwarf the one from 50M to 100M (Section 3.3). *)
  let conv rc =
    Cache_model.conversion_rate ~cache_lines:24576 ~chunks:30000
      ~target_hits_per_sec:1e7 ~competing_refs_per_sec:rc
  in
  let rise1 = conv 50e6 -. conv 0.0 in
  let rise2 = conv 100e6 -. conv 50e6 in
  Alcotest.(check bool) "steep then flat" true (rise1 > 4.0 *. rise2)

let test_model_curves_bounded () =
  let c =
    Cache_model.conversion_curve ~cache_lines:1024 ~chunks:2048
      ~target_hits_per_sec:5e6 ~max_refs_per_sec:2e8 ~samples:21
  in
  Array.iter
    (fun (_, y) ->
      Alcotest.(check bool) "in [0,1]" true (y >= 0.0 && y <= 1.0))
    (Ppp_util.Series.points c);
  Alcotest.(check bool) "monotone" true (Ppp_util.Series.monotone_nondecreasing c)

let test_model_drop_curve_consistent () =
  let delta = Equation1.paper_delta in
  let dc =
    Cache_model.drop_curve ~delta ~cache_lines:1024 ~chunks:2048
      ~target_hits_per_sec:5e6 ~max_refs_per_sec:2e8 ~samples:5
  in
  (* Drop is bounded by the kappa=1 Equation-1 value. *)
  let bound = Equation1.max_drop ~delta ~hits_per_sec:5e6 in
  Array.iter
    (fun (_, y) -> Alcotest.(check bool) "below worst case" true (y <= bound +. 1e-9))
    (Ppp_util.Series.points dc)

(* --- Runner --- *)

let test_runner_solo_sane () =
  let r = Runner.solo ~params:quick Ppp_apps.App.IP in
  Alcotest.(check bool) "positive throughput" true (r.Ppp_hw.Engine.throughput_pps > 0.0);
  Alcotest.(check bool) "packets measured" true (r.Ppp_hw.Engine.packets > 0)

let test_runner_determinism () =
  let a = Runner.solo ~params:quick Ppp_apps.App.IP in
  let b = Runner.solo ~params:quick Ppp_apps.App.IP in
  Alcotest.(check int) "same packets" a.Ppp_hw.Engine.packets b.Ppp_hw.Engine.packets

let test_runner_rejects_bad_core () =
  Alcotest.check_raises "core range" (Invalid_argument "Runner.run: core out of range")
    (fun () ->
      ignore (Runner.run ~params:quick [ { Runner.kind = Ppp_apps.App.IP; core = 99; data_node = 0 } ]))

let test_runner_corun_drop_positive () =
  let solo = Runner.solo ~params:quick Ppp_apps.App.MON in
  let specs =
    List.init 2 (fun i -> { Runner.kind = Ppp_apps.App.MON; core = i; data_node = 0 })
  in
  match Runner.run ~params:quick specs with
  | t :: _ ->
      let d = Runner.drop ~solo ~corun:t in
      Alcotest.(check bool) "drop >= 0" true (d >= -0.02)
  | [] -> Alcotest.fail "no results"

let test_competing_refs_sums_others () =
  let specs =
    List.init 2 (fun i -> { Runner.kind = Ppp_apps.App.IP; core = i; data_node = 0 })
  in
  let results = Runner.run ~params:quick specs in
  match results with
  | [ a; b ] ->
      Alcotest.(check (float 1.0)) "sums the other flow"
        b.Ppp_hw.Engine.l3_refs_per_sec
        (Runner.competing_refs_per_sec results ~target:a)
  | _ -> Alcotest.fail "two results"

(* --- Profile --- *)

let test_profile_consistency () =
  let p = Profile.solo ~params:quick Ppp_apps.App.MON in
  Alcotest.(check bool) "cycles/packet positive" true (p.Profile.cycles_per_packet > 0.0);
  Alcotest.(check bool) "refs >= hits" true
    (p.Profile.l3_refs_per_sec >= p.Profile.l3_hits_per_sec);
  Alcotest.(check bool) "refs/packet = hits+misses" true
    (Float.abs
       (p.Profile.l3_refs_per_packet
       -. (p.Profile.l3_misses_per_packet
          +. (p.Profile.l3_refs_per_packet -. p.Profile.l3_misses_per_packet)))
    < 1e-9)

let test_profile_table_renders () =
  let profiles = Profile.table1 ~params:quick [ Ppp_apps.App.IP ] in
  let s = Ppp_util.Table.to_string (Profile.to_table profiles) in
  Alcotest.(check bool) "mentions IP" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "IP"))

(* --- Sensitivity --- *)

let test_placement_shapes () =
  let config = Ppp_hw.Machine.tiny in
  let check resource expected_cores expected_nodes =
    let specs =
      Sensitivity.placement ~config resource ~n_competitors:1
        ~competitor:Ppp_apps.App.syn_max ~target:Ppp_apps.App.MON
    in
    let cores = List.map (fun s -> s.Runner.core) specs in
    let nodes = List.map (fun s -> s.Runner.data_node) specs in
    Alcotest.(check (list int)) "cores" expected_cores cores;
    Alcotest.(check (list int)) "nodes" expected_nodes nodes
  in
  (* tiny: 2 sockets x 2 cores. Target on core 0 node 0. *)
  check Sensitivity.Cache_only [ 0; 1 ] [ 0; 1 ];
  check Sensitivity.Memctrl_only [ 0; 2 ] [ 0; 0 ];
  check Sensitivity.Both [ 0; 1 ] [ 0; 0 ]

let test_placement_rejects_overflow () =
  Alcotest.check_raises "too many"
    (Invalid_argument "Sensitivity.placement: too many co-located competitors")
    (fun () ->
      ignore
        (Sensitivity.placement ~config:Ppp_hw.Machine.tiny Sensitivity.Both
           ~n_competitors:5 ~competitor:Ppp_apps.App.syn_max
           ~target:Ppp_apps.App.MON))

let test_sensitivity_curve_structure () =
  let levels = [ { Ppp_apps.App.reads = 4; instrs = 4000 }; { reads = 64; instrs = 0 } ] in
  let c =
    Sensitivity.measure ~params:quick ~levels ~n_competitors:1
      ~resource:Sensitivity.Both Ppp_apps.App.MON
  in
  Alcotest.(check int) "origin + 2 levels" 3 (List.length c.Sensitivity.points);
  let first = List.hd c.Sensitivity.points in
  Alcotest.(check (float 1e-9)) "origin" 0.0 first.Sensitivity.competing_refs_per_sec;
  let xs = List.map (fun p -> p.Sensitivity.competing_refs_per_sec) c.Sensitivity.points in
  Alcotest.(check bool) "x sorted" true (List.sort compare xs = xs)

(* --- Predictor --- *)

let test_predictor_math () =
  (* Hand-built predictor state via the public API on a tiny machine. *)
  let levels = [ { Ppp_apps.App.reads = 8; instrs = 2000 }; { reads = 64; instrs = 0 } ] in
  let p =
    Predictor.build ~params:quick ~levels ~targets:[ Ppp_apps.App.MON; Ppp_apps.App.FW ] ()
  in
  let refs_fw = Predictor.solo_refs_per_sec p Ppp_apps.App.FW in
  Alcotest.(check bool) "solo refs positive" true (refs_fw > 0.0);
  let d1 = Predictor.predict_drop p ~target:Ppp_apps.App.MON ~competitors:[ Ppp_apps.App.FW ] in
  let d3 =
    Predictor.predict_drop p ~target:Ppp_apps.App.MON
      ~competitors:[ Ppp_apps.App.FW; Ppp_apps.App.FW; Ppp_apps.App.FW ]
  in
  Alcotest.(check bool) "more competitors, no less drop" true (d3 >= d1 -. 1e-9);
  (* predict_drop equals curve evaluated at summed solo refs. *)
  Alcotest.(check (float 1e-9)) "definition"
    (Predictor.predict_drop_at p ~target:Ppp_apps.App.MON ~refs_per_sec:(3.0 *. refs_fw))
    d3

let test_predictor_unknown_kind () =
  let p = Predictor.build ~params:quick ~levels:[ { Ppp_apps.App.reads = 8; instrs = 0 } ]
      ~targets:[ Ppp_apps.App.FW ] ()
  in
  Alcotest.check_raises "unknown" (Invalid_argument "Predictor: kind MON was not profiled")
    (fun () -> ignore (Predictor.solo_refs_per_sec p Ppp_apps.App.MON))

let test_predictor_throughput () =
  let p = Predictor.build ~params:quick ~levels:[ { Ppp_apps.App.reads = 8; instrs = 0 } ]
      ~targets:[ Ppp_apps.App.FW ] ()
  in
  let tput =
    Predictor.predict_throughput p ~target:Ppp_apps.App.FW ~competitors:[ Ppp_apps.App.FW ]
  in
  Alcotest.(check bool) "below solo" true
    (tput <= Predictor.solo_throughput p Ppp_apps.App.FW)

(* --- Scheduler --- *)

let test_scheduler_splits_enumeration () =
  (* tiny machine: 2 sockets x 2 cores, combo 2A + 2B.
     Distinct splits up to socket swap: {AA|BB}, {AB|AB} -> 2. *)
  let combo = [ (Ppp_apps.App.MON, 2); (Ppp_apps.App.FW, 2) ] in
  let splits = Scheduler.splits ~config:Ppp_hw.Machine.tiny combo in
  Alcotest.(check int) "two distinct placements" 2 (List.length splits);
  List.iter
    (fun placement ->
      Alcotest.(check int) "two sockets" 2 (List.length placement);
      List.iter
        (fun socket -> Alcotest.(check int) "socket filled" 2 (List.length socket))
        placement)
    splits

let test_scheduler_splits_homogeneous () =
  let combo = [ (Ppp_apps.App.MON, 4) ] in
  Alcotest.(check int) "single placement" 1
    (List.length (Scheduler.splits ~config:Ppp_hw.Machine.tiny combo))

let test_scheduler_rejects_wrong_total () =
  Alcotest.check_raises "combo size"
    (Invalid_argument "Scheduler.splits: combo must fill every core") (fun () ->
      ignore (Scheduler.splits ~config:Ppp_hw.Machine.tiny [ (Ppp_apps.App.MON, 3) ]))

let test_scheduler_evaluate_and_gain () =
  let combo = [ (Ppp_apps.App.MON, 2); (Ppp_apps.App.FW, 2) ] in
  let evals = Scheduler.evaluate ~params:quick combo in
  Alcotest.(check int) "all splits evaluated" 2 (List.length evals);
  let b = Scheduler.best evals and w = Scheduler.worst evals in
  Alcotest.(check bool) "best <= worst" true
    (b.Scheduler.avg_drop <= w.Scheduler.avg_drop);
  Alcotest.(check bool) "gain = worst - best" true
    (Float.abs (Scheduler.gain evals -. (w.Scheduler.avg_drop -. b.Scheduler.avg_drop)) < 1e-12);
  List.iter
    (fun e ->
      Alcotest.(check int) "four flows" 4 (List.length e.Scheduler.per_flow))
    evals

let test_scheduler_combo_name () =
  Alcotest.(check string) "name" "6 MON + 6 FW"
    (Scheduler.combo_name [ (Ppp_apps.App.MON, 6); (Ppp_apps.App.FW, 6) ])

(* --- Throttle --- *)

let test_throttle_caps_rate () =
  let hier = Ppp_hw.Machine.build Ppp_hw.Machine.tiny in
  let b = Ppp_hw.Trace.Builder.create () in
  (* A greedy source: 32 reads per packet, back to back. *)
  let rng = Ppp_util.Rng.create ~seed:5 in
  let inner _now =
    Ppp_hw.Trace.Builder.clear b;
    for _ = 1 to 32 do
      Ppp_hw.Trace.Builder.read b ~fn:Ppp_hw.Fn.none
        (Ppp_util.Rng.int rng 1024 * 64)
    done;
    Ppp_hw.Engine.Packet (Ppp_hw.Trace.Builder.finish b)
  in
  let freq_hz = Ppp_hw.Machine.tiny.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz in
  let budget = 10e6 in
  let source = Throttle.source ~budget_refs_per_sec:budget ~freq_hz inner in
  let results =
    Ppp_hw.Engine.run hier
      ~flows:[ { Ppp_hw.Engine.core = 0; label = "greedy"; source } ]
      ~warmup_cycles:100_000 ~measure_cycles:1_000_000
  in
  match results with
  | [ r ] ->
      let refs = Ppp_hw.Counters.mem_refs r.Ppp_hw.Engine.counters in
      let secs = float_of_int r.Ppp_hw.Engine.window_cycles /. freq_hz in
      let rate = float_of_int refs /. secs in
      Alcotest.(check bool)
        (Printf.sprintf "rate %.1fM under budget" (rate /. 1e6))
        true
        (rate <= budget *. 1.08)
  | _ -> Alcotest.fail "one result"

let test_throttle_does_not_slow_tame_flows () =
  let hier = Ppp_hw.Machine.build Ppp_hw.Machine.tiny in
  let b = Ppp_hw.Trace.Builder.create () in
  let inner _now =
    Ppp_hw.Trace.Builder.clear b;
    Ppp_hw.Trace.Builder.compute b ~fn:Ppp_hw.Fn.none 1000;
    Ppp_hw.Trace.Builder.read b ~fn:Ppp_hw.Fn.none 64;
    Ppp_hw.Engine.Packet (Ppp_hw.Trace.Builder.finish b)
  in
  let freq_hz = Ppp_hw.Machine.tiny.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz in
  (* Tame flow: ~1 ref per 600 cycles = 4.7M refs/s, budget 100M. *)
  let source = Throttle.source ~budget_refs_per_sec:100e6 ~freq_hz inner in
  let run src =
    match
      Ppp_hw.Engine.run (Ppp_hw.Machine.build Ppp_hw.Machine.tiny)
        ~flows:[ { Ppp_hw.Engine.core = 0; label = "t"; source = src } ]
        ~warmup_cycles:50_000 ~measure_cycles:500_000
    with
    | [ r ] -> r.Ppp_hw.Engine.packets
    | _ -> Alcotest.fail "one result"
  in
  ignore hier;
  let unthrottled = run inner and throttled = run source in
  Alcotest.(check bool) "same packet count (within 1%)" true
    (abs (unthrottled - throttled) <= unthrottled / 100 + 1)

let test_throttle_rejects_bad_budget () =
  Alcotest.check_raises "budget" (Invalid_argument "Throttle: budget must be positive")
    (fun () ->
      ignore
        (Throttle.source ~budget_refs_per_sec:0.0 ~freq_hz:1e9
           (fun _ -> Ppp_hw.Engine.Idle Ppp_hw.Trace.empty)
          : Ppp_hw.Engine.source))

let test_two_faced_switches () =
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:3 in
  let elements =
    Throttle.Two_faced.elements ~heap ~rng ~buffer_bytes:65536 ~quiet_reads:1
      ~loud_reads:64 ~switch_after:3
  in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:4) in
  let p = Ppp_net.Packet.create 64 in
  let refs_of_packet () =
    let before = Ppp_hw.Trace.Builder.length ctx.Ppp_click.Ctx.builder in
    ignore (Ppp_click.Element.process_all elements ctx p);
    Ppp_hw.Trace.Builder.length ctx.Ppp_click.Ctx.builder - before
  in
  let quiet = List.init 3 (fun _ -> refs_of_packet ()) in
  let loud = refs_of_packet () in
  Alcotest.(check bool) "quiet phase small" true (List.for_all (fun r -> r <= 3) quiet);
  Alcotest.(check bool) "loud phase large" true (loud >= 64)

let tests =
  [
    Alcotest.test_case "eq1 zero cases" `Quick test_eq1_zero_cases;
    Alcotest.test_case "eq1 paper point (47% at 20M)" `Quick test_eq1_paper_point;
    Alcotest.test_case "eq1 monotonicity" `Quick test_eq1_monotone_in_everything;
    Alcotest.test_case "eq1 validation" `Quick test_eq1_validates;
    QCheck_alcotest.to_alcotest prop_eq1_bounded;
    Alcotest.test_case "model no competition" `Quick test_model_no_competition;
    Alcotest.test_case "model conversion monotone" `Quick test_model_conversion_increases;
    Alcotest.test_case "model knee shape" `Quick test_model_shape_knee;
    Alcotest.test_case "model curves bounded" `Quick test_model_curves_bounded;
    Alcotest.test_case "model drop vs eq1 bound" `Quick test_model_drop_curve_consistent;
    Alcotest.test_case "runner solo sane" `Quick test_runner_solo_sane;
    Alcotest.test_case "runner deterministic" `Quick test_runner_determinism;
    Alcotest.test_case "runner bad core" `Quick test_runner_rejects_bad_core;
    Alcotest.test_case "runner co-run drop" `Quick test_runner_corun_drop_positive;
    Alcotest.test_case "competing refs sum" `Quick test_competing_refs_sums_others;
    Alcotest.test_case "profile consistency" `Quick test_profile_consistency;
    Alcotest.test_case "profile table renders" `Quick test_profile_table_renders;
    Alcotest.test_case "fig3 placements" `Quick test_placement_shapes;
    Alcotest.test_case "placement overflow" `Quick test_placement_rejects_overflow;
    Alcotest.test_case "sensitivity curve structure" `Quick test_sensitivity_curve_structure;
    Alcotest.test_case "predictor math" `Quick test_predictor_math;
    Alcotest.test_case "predictor unknown kind" `Quick test_predictor_unknown_kind;
    Alcotest.test_case "predictor throughput" `Quick test_predictor_throughput;
    Alcotest.test_case "scheduler split enumeration" `Quick test_scheduler_splits_enumeration;
    Alcotest.test_case "scheduler homogeneous combo" `Quick test_scheduler_splits_homogeneous;
    Alcotest.test_case "scheduler wrong total" `Quick test_scheduler_rejects_wrong_total;
    Alcotest.test_case "scheduler evaluate/gain" `Quick test_scheduler_evaluate_and_gain;
    Alcotest.test_case "scheduler combo name" `Quick test_scheduler_combo_name;
    Alcotest.test_case "throttle caps rate" `Quick test_throttle_caps_rate;
    Alcotest.test_case "throttle transparent when tame" `Quick test_throttle_does_not_slow_tame_flows;
    Alcotest.test_case "throttle bad budget" `Quick test_throttle_rejects_bad_budget;
    Alcotest.test_case "two-faced app switches" `Quick test_two_faced_switches;
  ]
