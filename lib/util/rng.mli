(** Deterministic pseudo-random number generation.

    All simulator randomness flows through explicitly seeded generators so
    that every experiment is exactly reproducible. The implementation is
    splitmix64 (for seeding and streams) layered under xoshiro256**. *)

type t
(** A self-contained PRNG state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each flow / generator its own stream. *)

val copy : t -> t
(** [copy t] duplicates the state (the copy evolves independently). *)

val derive : seed:int -> string -> int
(** [derive ~seed label] deterministically maps a root seed and a stream
    label to a fresh 62-bit seed. A pure function — unlike {!split} it
    involves no shared state, so independent cells of a parallel experiment
    can derive their streams in any order and obtain identical values.
    Distinct labels (or distinct seeds) yield independent streams. *)

val derive_cell : seed:int -> experiment:string -> cell:int -> int
(** [derive_cell ~seed ~experiment ~cell] is [derive] on the canonical
    label ["experiment/cell"]: the per-cell RNG stream of an experiment. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val byte : t -> int
(** Uniform in [\[0, 255\]]. *)

val fill_bytes : t -> Bytes.t -> unit
(** Overwrite a byte buffer with random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)
