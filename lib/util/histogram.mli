(** Fixed-memory log-bucketed histogram for latency-style distributions.

    Values are bucketed geometrically (~4.6% relative resolution), so
    recording is O(1) and percentile queries are approximate within one
    bucket — the standard trade-off for per-packet latency tracking. *)

type t

val create : unit -> t
(** Covers values in [0, 2^62). *)

val record : t -> int -> unit
(** Record a non-negative sample. *)

val count : t -> int
val total : t -> int
(** Sum of all recorded samples. *)

val mean : t -> float
(** Exact mean of the recorded samples ([total / count]); [0.0] — not
    NaN — when nothing has been recorded, so downstream rate arithmetic
    and JSON export never see a non-finite value. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0,100]: an upper bound of the bucket
    containing the p-th percentile sample. 0 when empty. *)

val max_value : t -> int
(** Upper bound of the highest non-empty bucket (0 when empty). *)

val merge_into : src:t -> dst:t -> unit
val clear : t -> unit
