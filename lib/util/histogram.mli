(** Fixed-memory log-bucketed histogram for latency-style distributions.

    Values are bucketed geometrically, so recording is O(1) and percentile
    queries are approximate — the standard trade-off for per-packet latency
    tracking. The error bound is one bucket: values below 64 are exact, and
    beyond that each power of two splits into 16 sub-buckets, so an
    interior percentile overstates the true sample by at most its bucket's
    width (< 1/16 of the value, ~6.7% relative at worst, ~4.6% on average).
    The exact min and max samples are tracked on the side, so the
    distribution endpoints ([percentile 0.] / [percentile 100.]) carry no
    bucketing error at all. *)

type t

val create : unit -> t
(** Covers values in [0, 2^62). *)

val record : t -> int -> unit
(** Record a non-negative sample. *)

val count : t -> int
val total : t -> int
(** Sum of all recorded samples. *)

val mean : t -> float
(** Exact mean of the recorded samples ([total / count]); [0.0] — not
    NaN — when nothing has been recorded, so downstream rate arithmetic
    and JSON export never see a non-finite value. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0,100]: an upper bound of the bucket
    containing the p-th percentile sample, clamped to the exact recorded
    extremes — so [percentile t 0.] is the exact smallest sample,
    [percentile t 100.] the exact largest, and interior results are within
    one bucket (never above the largest sample). Monotone in [p]. 0 when
    empty. *)

val min_value : t -> int
(** Exact smallest recorded sample (0 when empty). *)

val exact_max : t -> int
(** Exact largest recorded sample (0 when empty). *)

val max_value : t -> int
(** Upper bound of the highest non-empty bucket (0 when empty) — the
    pre-existing bucketed readout, kept for callers that report bucket
    bounds; use {!exact_max} or [percentile t 100.] for the exact
    endpoint. *)

val merge_into : src:t -> dst:t -> unit
(** Adds [src]'s samples into [dst], including the exact min/max. *)

val clear : t -> unit
