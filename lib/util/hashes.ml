let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let mask62 = (1 lsl 62) - 1

let fnv1a_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Hashes.fnv1a_bytes: slice out of bounds";
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)))) fnv_prime
  done;
  Int64.to_int !h land mask62

let fnv1a_int x =
  let h = ref fnv_offset in
  for i = 0 to 7 do
    let byte = (x lsr (8 * i)) land 0xFF in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  Int64.to_int !h land mask62

let jenkins_mix a b c =
  let a = (a - b - c) lxor (c lsr 13) in
  let b = (b - c - a) lxor (a lsl 8) in
  let c = (c - a - b) lxor (b lsr 13) in
  let a = (a - b - c) lxor (c lsr 12) in
  let b = (b - c - a) lxor (a lsl 16) in
  let c = (c - a - b) lxor (b lsr 5) in
  (a land mask62, b land mask62, c land mask62)

(* [jenkins_mix] without the result tuple (an allocation per call without
   flambda): only the [c] lane, on the per-packet flow-hash path. Must stay
   bit-identical to [let _, _, c = jenkins_mix h1 h2 0x9E3779B9 in c]. *)
let combine h1 h2 =
  let a = h1 and b = h2 and c = 0x9E3779B9 in
  let a = (a - b - c) lxor (c lsr 13) in
  let b = (b - c - a) lxor (a lsl 8) in
  let c = (c - a - b) lxor (b lsr 13) in
  let a = (a - b - c) lxor (c lsr 12) in
  let b = (b - c - a) lxor (a lsl 16) in
  let c = (c - a - b) lxor (b lsr 5) in
  c land mask62

let crc_table =
  lazy
    (let table = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       table.(n) <- !c
     done;
     table)

let crc32 b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Hashes.crc32: slice out of bounds";
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.unsafe_get b i)))) 0xFFl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let crc32_string s = crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let fold_int h ~bits =
  if bits <= 0 || bits > 62 then invalid_arg "Hashes.fold_int: bits out of range";
  let mask = (1 lsl bits) - 1 in
  let rec go acc v = if v = 0 then acc land mask else go (acc lxor (v land mask)) (v lsr bits) in
  go 0 h
