(** Minimal command-line parsing for the repo's binaries.

    A [t] accumulates option specs ([flag], [int], [string], ...), each of
    which returns a ref that [parse] fills in. Options are matched by any of
    their registered names ([["--jobs"; "-j"]]) and values may be attached
    ([--jobs=4]) or separate ([--jobs 4]). Everything that is not an option
    is collected, in order, as a positional argument.

    [--help] (or [-h]) prints the generated usage text and exits 0.
    Malformed input (unknown option, missing or non-integer value) prints a
    one-line error plus the usage text to stderr and exits 2, mirroring how
    the previous cmdliner-based interface behaved. *)

type t

val create : prog:string -> summary:string -> t
(** [prog] is what the usage line shows (e.g. ["repro run"]). *)

val flag : t -> string list -> doc:string -> bool ref
(** A boolean switch; [!r] is true iff present. *)

val int : t -> string list -> docv:string -> doc:string -> int -> int ref
(** An integer option with a default. *)

val string : t -> string list -> docv:string -> doc:string -> string -> string ref
(** A string option with a default. *)

val opt_string : t -> string list -> docv:string -> doc:string -> string option ref
(** A string option that records whether it was given at all. *)

val usage : t -> string

val parse : t -> ?start:int -> string array -> string list
(** Parse [argv] from index [start] (default 1); returns the positional
    arguments in order. Exits on [--help] or malformed input as described
    above. *)

val die : t -> string -> 'a
(** Print [msg] and the usage text to stderr, exit 2. For the caller's own
    validation (unknown subcommand, bad positional argument, ...). *)
