(* xoshiro256** under splitmix64 seeding, as before — but the generator
   state lives in native ints, two 32-bit halves per 64-bit word. Boxed
   [Int64] arithmetic allocates on every operation without flambda, and the
   old implementation was the packet generators' entire allocation budget
   (~200 B per draw, one draw per packet minimum). The half-word emulation
   below produces bit-identical streams with zero allocation: every seeded
   golden snapshot in the repo pins it. *)

type t = {
  mutable s0l : int;
  mutable s0h : int;
  mutable s1l : int;
  mutable s1h : int;
  mutable s2l : int;
  mutable s2h : int;
  mutable s3l : int;
  mutable s3h : int;
  (* The last output word, left here by [advance] so each consumer can
     extract its bit range without allocating a result pair. *)
  mutable outl : int;
  mutable outh : int;
}

let mask32 = 0xFFFFFFFF
let golden = 0x9E3779B97F4A7C15L

(* Seeding stays in Int64: it runs a handful of times per generator. *)
let splitmix64 state =
  let z = Int64.add !state golden in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let lo64 z = Int64.to_int (Int64.logand z 0xFFFFFFFFL)
let hi64 z = Int64.to_int (Int64.shift_right_logical z 32)

let of_words s0 s1 s2 s3 =
  {
    s0l = lo64 s0;
    s0h = hi64 s0;
    s1l = lo64 s1;
    s1h = hi64 s1;
    s2l = lo64 s2;
    s2h = hi64 s2;
    s3l = lo64 s3;
    s3h = hi64 s3;
    outl = 0;
    outh = 0;
  }

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  of_words s0 s1 s2 s3

(* One xoshiro256** step on 32-bit halves. Multiplications are by the small
   constants 5 and 9, so lo * c stays under 2^36 and the carry is an [lsr];
   rotations by k >= 32 swap halves first. The update order matches the
   Int64 original exactly: s3 mixes the pre-update s1, s1 mixes the already
   updated s2, s0 the already updated s3. *)
let[@inline] advance t =
  let s1l = t.s1l and s1h = t.s1h in
  (* out = rotl(s1 * 5, 7) * 9 *)
  let ml = s1l * 5 in
  let mh = ((s1h * 5) + (ml lsr 32)) land mask32 in
  let ml = ml land mask32 in
  let rl = ((ml lsl 7) lor (mh lsr 25)) land mask32 in
  let rh = ((mh lsl 7) lor (ml lsr 25)) land mask32 in
  let ol = rl * 9 in
  t.outh <- ((rh * 9) + (ol lsr 32)) land mask32;
  t.outl <- ol land mask32;
  (* tmp = s1 << 17 *)
  let t17h = ((s1h lsl 17) lor (s1l lsr 15)) land mask32 in
  let t17l = (s1l lsl 17) land mask32 in
  let s2l = t.s2l lxor t.s0l and s2h = t.s2h lxor t.s0h in
  let s3l = t.s3l lxor s1l and s3h = t.s3h lxor s1h in
  t.s1l <- s1l lxor s2l;
  t.s1h <- s1h lxor s2h;
  t.s0l <- t.s0l lxor s3l;
  t.s0h <- t.s0h lxor s3h;
  t.s2l <- s2l lxor t17l;
  t.s2h <- s2h lxor t17h;
  (* s3 = rotl(s3, 45): rotate by 32 (swap halves), then by 13. *)
  t.s3l <- ((s3h lsl 13) lor (s3l lsr 19)) land mask32;
  t.s3h <- ((s3l lsl 13) lor (s3h lsr 19)) land mask32

let bits64 t =
  advance t;
  Int64.logor (Int64.shift_left (Int64.of_int t.outh) 32) (Int64.of_int t.outl)

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  of_words s0 s1 s2 s3

let copy t =
  {
    s0l = t.s0l;
    s0h = t.s0h;
    s1l = t.s1l;
    s1h = t.s1h;
    s2l = t.s2l;
    s2h = t.s2h;
    s3l = t.s3l;
    s3h = t.s3h;
    outl = t.outl;
    outh = t.outh;
  }

(* FNV-1a over the label folded into the seed through one extra splitmix64
   round. Keeping this a pure function of (seed, label) — rather than
   splitting a shared generator — is what lets experiment cells run in any
   order (or in parallel) and still draw identical streams. *)
let derive ~seed label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  let state = ref (Int64.add (Int64.of_int seed) !h) in
  let z = splitmix64 state in
  Int64.to_int (Int64.logand z Int64.max_int)

let derive_cell ~seed ~experiment ~cell =
  derive ~seed (Printf.sprintf "%s/%d" experiment cell)

(* The top 62 bits of the output word: what [Int64.shift_right_logical r 2]
   used to extract, now one shift and one or away from the halves. *)
let[@inline] nonneg t =
  advance t;
  (t.outh lsl 30) lor (t.outl lsr 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound = nonneg t in
  if n land (n - 1) = 0 then bound land (n - 1)
  else begin
    (* Flat loop: a local [rec sample] capturing [limit] would cost a
       closure allocation per call without flambda. *)
    let limit = max_int - (max_int mod n) in
    let v = ref bound in
    while !v >= limit do
      v := nonneg t
    done;
    !v mod n
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t x =
  advance t;
  (* The top 53 bits, exactly [Int64.to_float (r >>> 11)] of the original. *)
  let mantissa = float_of_int ((t.outh lsl 21) lor (t.outl lsr 11)) in
  x *. (mantissa *. 0x1.0p-53)

let bool t =
  advance t;
  t.outl land 1 = 1

let byte t =
  advance t;
  t.outl land 0xFF

let fill_bytes t b =
  for i = 0 to Bytes.length b - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
