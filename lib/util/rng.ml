type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden = 0x9E3779B97F4A7C15L

let splitmix64 state =
  let z = Int64.add !state golden in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** *)
let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* FNV-1a over the label folded into the seed through one extra splitmix64
   round. Keeping this a pure function of (seed, label) — rather than
   splitting a shared generator — is what lets experiment cells run in any
   order (or in parallel) and still draw identical streams. *)
let derive ~seed label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  let state = ref (Int64.add (Int64.of_int seed) !h) in
  let z = splitmix64 state in
  Int64.to_int (Int64.logand z Int64.max_int)

let derive_cell ~seed ~experiment ~cell =
  derive ~seed (Printf.sprintf "%s/%d" experiment cell)

let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound = nonneg t in
  if n land (n - 1) = 0 then bound land (n - 1)
  else
    let rec go v = if v < 0 then go (nonneg t) else v mod n in
    let limit = max_int - (max_int mod n) in
    let rec sample v = if v >= limit then sample (nonneg t) else v mod n in
    ignore go;
    sample bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t x =
  let mantissa = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (mantissa *. 0x1.0p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L
let byte t = Int64.to_int (Int64.logand (bits64 t) 0xFFL)

let fill_bytes t b =
  for i = 0 to Bytes.length b - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
