(* Buckets: values < 64 are exact; beyond that, 16 sub-buckets per power of
   two. Bucket upper bounds are reconstructible from the index. The exact
   min/max of the recorded samples ride along so the distribution's
   endpoints are reported exactly (and interior percentile estimates never
   overshoot the largest sample). *)

let linear_cutoff = 64
let sub_buckets = 16

type t = {
  buckets : int array;
  mutable count : int;
  mutable total : int;
  mutable vmin : int; (* exact smallest sample; max_int when empty *)
  mutable vmax : int; (* exact largest sample; 0 when empty *)
}

let bucket_count = linear_cutoff + ((62 - 6) * sub_buckets)

let create () =
  {
    buckets = Array.make bucket_count 0;
    count = 0;
    total = 0;
    vmin = max_int;
    vmax = 0;
  }

let index_of v =
  if v < linear_cutoff then v
  else begin
    (* v >= 64: exponent >= 6. *)
    let exp =
      let rec go e x = if x < 2 then e else go (e + 1) (x lsr 1) in
      go 0 v
    in
    let sub = (v lsr (exp - 4)) land (sub_buckets - 1) in
    min (bucket_count - 1) (linear_cutoff + (((exp - 6) * sub_buckets) + sub))
  end

let upper_bound_of idx =
  if idx < linear_cutoff then idx
  else begin
    let rel = idx - linear_cutoff in
    let exp = 6 + (rel / sub_buckets) in
    let sub = rel mod sub_buckets in
    ((1 lsl exp) + ((sub + 1) lsl (exp - 4))) - 1
  end

let record t v =
  if v < 0 then invalid_arg "Histogram.record: negative value";
  t.buckets.(index_of v) <- t.buckets.(index_of v) + 1;
  t.count <- t.count + 1;
  t.total <- t.total + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile";
  if t.count = 0 then 0
  else if p = 0.0 then t.vmin
  else begin
    let rank =
      int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count))
    in
    let rank = max 1 rank in
    let acc = ref 0 and result = ref 0 in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= rank then begin
           result := upper_bound_of i;
           raise Exit
         end
       done
     with Exit -> ());
    (* The bucket upper bound can only overshoot when the rank lands in the
       bucket holding the largest sample; clamping there makes [p = 100]
       exact and keeps percentile monotone through the endpoints. *)
    if !result > t.vmax then t.vmax else !result
  end

let min_value t = if t.count = 0 then 0 else t.vmin
let exact_max t = t.vmax

let max_value t =
  let result = ref 0 in
  for i = 0 to bucket_count - 1 do
    if t.buckets.(i) > 0 then result := upper_bound_of i
  done;
  !result

let merge_into ~src ~dst =
  for i = 0 to bucket_count - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.total <- dst.total + src.total;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax

let clear t =
  Array.fill t.buckets 0 bucket_count 0;
  t.count <- 0;
  t.total <- 0;
  t.vmin <- max_int;
  t.vmax <- 0
