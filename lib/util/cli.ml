type value =
  | Flag of bool ref
  | Int of int ref
  | String of string ref
  | Opt_string of string option ref

type spec = { names : string list; docv : string; doc : string; value : value }
type t = { prog : string; summary : string; mutable specs : spec list }

let create ~prog ~summary = { prog; summary; specs = [] }

let add t names ~docv ~doc value =
  t.specs <- t.specs @ [ { names; docv; doc; value } ]

let flag t names ~doc =
  let r = ref false in
  add t names ~docv:"" ~doc (Flag r);
  r

let int t names ~docv ~doc default =
  let r = ref default in
  add t names ~docv ~doc (Int r);
  r

let string t names ~docv ~doc default =
  let r = ref default in
  add t names ~docv ~doc (String r);
  r

let opt_string t names ~docv ~doc =
  let r = ref None in
  add t names ~docv ~doc (Opt_string r);
  r

let left_col s =
  let names = String.concat ", " s.names in
  if s.docv = "" then names else names ^ " " ^ s.docv

(* Wrap the doc string to keep usage lines readable in an 80-column
   terminal; the left column is padded to the widest option. *)
let wrap ~indent ~width text =
  let buf = Buffer.create (String.length text + 16) in
  let col = ref indent in
  List.iteri
    (fun i word ->
      let w = String.length word in
      if i > 0 && !col + 1 + w > width then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        col := indent
      end
      else if i > 0 then begin
        Buffer.add_char buf ' ';
        incr col
      end;
      Buffer.add_string buf word;
      col := !col + w)
    (String.split_on_char ' ' text |> List.filter (fun w -> w <> ""));
  Buffer.contents buf

let usage t =
  let b = Buffer.create 512 in
  Buffer.add_string b t.summary;
  Buffer.add_char b '\n';
  Buffer.add_string b ("usage: " ^ t.prog ^ "\n");
  if t.specs <> [] then begin
    let pad =
      List.fold_left (fun m s -> max m (String.length (left_col s))) 0 t.specs
    in
    List.iter
      (fun s ->
        let l = left_col s in
        Buffer.add_string b
          (Printf.sprintf "  %-*s  %s\n" pad l
             (wrap ~indent:(pad + 4) ~width:78 s.doc)))
      t.specs
  end;
  Buffer.contents b

let die t msg =
  prerr_endline (t.prog ^ ": " ^ msg);
  prerr_string (usage t);
  exit 2

let find_spec t name = List.find_opt (fun s -> List.mem name s.names) t.specs

let parse t ?(start = 1) argv =
  let n = Array.length argv in
  let positional = ref [] in
  let i = ref start in
  while !i < n do
    let a = argv.(!i) in
    incr i;
    if a = "--help" || a = "-h" then begin
      print_string (usage t);
      exit 0
    end
    else if String.length a > 1 && a.[0] = '-' && a <> "-" then begin
      (* Split --name=value; otherwise the value (if the spec wants one) is
         the next argv entry. *)
      let name, inline =
        match String.index_opt a '=' with
        | Some eq ->
            ( String.sub a 0 eq,
              Some (String.sub a (eq + 1) (String.length a - eq - 1)) )
        | None -> (a, None)
      in
      match find_spec t name with
      | None -> die t (Printf.sprintf "unknown option %s" name)
      | Some s ->
          let value () =
            match inline with
            | Some v -> v
            | None ->
                if !i >= n then
                  die t (Printf.sprintf "option %s needs a value" name)
                else begin
                  let v = argv.(!i) in
                  incr i;
                  v
                end
          in
          (match s.value with
          | Flag r ->
              if inline <> None then
                die t (Printf.sprintf "option %s takes no value" name);
              r := true
          | Int r -> (
              let v = value () in
              match int_of_string_opt v with
              | Some x -> r := x
              | None ->
                  die t
                    (Printf.sprintf "option %s expects an integer, got %S"
                       name v))
          | String r -> r := value ()
          | Opt_string r -> r := Some (value ()))
    end
    else positional := a :: !positional
  done;
  List.rev !positional
