open Ppp_simmem

(* Entry packing: bits 0-15 next hop, 16-21 prefix length of that hop,
   bit 22+ child node index plus one (0 = no child). *)
let hop_of e = e land 0xFFFF
let plen_of e = (e lsr 16) land 0x3F
let child_of e = (e lsr 22) - 1
let pack ~hop ~plen ~child =
  ((child + 1) lsl 22) lor ((plen land 0x3F) lsl 16) lor (hop land 0xFFFF)

type t = {
  root : int Iarray.t; (* 65536 entries *)
  pool : int Iarray.t; (* max_nodes * 256 entries *)
  max_nodes : int;
  default_hop : int;
  mutable next_node : int;
  mutable routes : int;
}

let node_entries = 256

let create ~heap ?(max_nodes = 16384) ~default_hop () =
  if max_nodes <= 0 then invalid_arg "Radix_trie.create: max_nodes";
  {
    root = Iarray.create heap ~elem_bytes:8 65536 0;
    pool = Iarray.create heap ~elem_bytes:8 (max_nodes * node_entries) 0;
    max_nodes;
    default_hop;
    next_node = 0;
    routes = 0;
  }

let alloc_node t =
  if t.next_node >= t.max_nodes then failwith "Radix_trie: node pool exhausted";
  let n = t.next_node in
  t.next_node <- n + 1;
  n

(* Read/update one entry of either the root (node = -1) or a pool node. *)
let peek_entry t ~node ~idx =
  if node < 0 then Iarray.peek t.root idx
  else Iarray.peek t.pool ((node * node_entries) + idx)

let poke_entry t ~node ~idx v =
  if node < 0 then Iarray.poke t.root idx v
  else Iarray.poke t.pool ((node * node_entries) + idx) v

let ensure_child t ~node ~idx =
  let e = peek_entry t ~node ~idx in
  let c = child_of e in
  if c >= 0 then c
  else begin
    let c = alloc_node t in
    poke_entry t ~node ~idx (pack ~hop:(hop_of e) ~plen:(plen_of e) ~child:c);
    c
  end

let fill_entries t ~node ~first ~count ~hop ~plen =
  for idx = first to first + count - 1 do
    let e = peek_entry t ~node ~idx in
    if plen_of e <= plen || hop_of e = 0 then
      poke_entry t ~node ~idx (pack ~hop ~plen ~child:(child_of e))
  done

let add_route t ~prefix ~plen ~hop =
  if plen < 0 || plen > 32 then invalid_arg "Radix_trie.add_route: plen";
  if hop <= 0 || hop > 0xFFFF then invalid_arg "Radix_trie.add_route: hop";
  let prefix = prefix land 0xFFFFFFFF in
  if plen <= 16 then
    let first = (prefix lsr 16) land (lnot ((1 lsl (16 - plen)) - 1) land 0xFFFF) in
    fill_entries t ~node:(-1) ~first ~count:(1 lsl (16 - plen)) ~hop ~plen
  else begin
    let n1 = ensure_child t ~node:(-1) ~idx:(prefix lsr 16) in
    if plen <= 24 then
      let first = (prefix lsr 8) land 0xFF land (lnot ((1 lsl (24 - plen)) - 1) land 0xFF) in
      fill_entries t ~node:n1 ~first ~count:(1 lsl (24 - plen)) ~hop ~plen
    else begin
      let n2 = ensure_child t ~node:n1 ~idx:((prefix lsr 8) land 0xFF) in
      let first = prefix land 0xFF land (lnot ((1 lsl (32 - plen)) - 1) land 0xFF) in
      fill_entries t ~node:n2 ~first ~count:(1 lsl (32 - plen)) ~hop ~plen
    end
  end;
  t.routes <- t.routes + 1

let lookup_gen t read dst =
  let dst = dst land 0xFFFFFFFF in
  let best = ref t.default_hop in
  let e0 = read t.root (dst lsr 16) in
  if hop_of e0 > 0 then best := hop_of e0;
  let c1 = child_of e0 in
  if c1 >= 0 then begin
    (* Each node visit reads the node header line, then the entry. *)
    ignore (read t.pool (c1 * node_entries) : int);
    let e1 = read t.pool ((c1 * node_entries) + ((dst lsr 8) land 0xFF)) in
    if hop_of e1 > 0 then best := hop_of e1;
    let c2 = child_of e1 in
    if c2 >= 0 then begin
      ignore (read t.pool (c2 * node_entries) : int);
      let e2 = read t.pool ((c2 * node_entries) + (dst land 0xFF)) in
      if hop_of e2 > 0 then best := hop_of e2
    end
  end;
  !best

(* The instrumented lookup is specialized rather than going through
   [lookup_gen]: the closure over the builder cost an allocation and an
   indirect call per table read, on every forwarded packet. *)
let lookup t b ~fn dst =
  let dst = dst land 0xFFFFFFFF in
  let best = ref t.default_hop in
  let e0 = Iarray.get t.root b ~fn (dst lsr 16) in
  if hop_of e0 > 0 then best := hop_of e0;
  let c1 = child_of e0 in
  if c1 >= 0 then begin
    ignore (Iarray.get t.pool b ~fn (c1 * node_entries) : int);
    let e1 = Iarray.get t.pool b ~fn ((c1 * node_entries) + ((dst lsr 8) land 0xFF)) in
    if hop_of e1 > 0 then best := hop_of e1;
    let c2 = child_of e1 in
    if c2 >= 0 then begin
      ignore (Iarray.get t.pool b ~fn (c2 * node_entries) : int);
      let e2 = Iarray.get t.pool b ~fn ((c2 * node_entries) + (dst land 0xFF)) in
      if hop_of e2 > 0 then best := hop_of e2
    end
  end;
  !best

let lookup_quiet t dst = lookup_gen t Iarray.peek dst
let routes t = t.routes
let nodes t = t.next_node

let footprint_bytes t =
  Iarray.size_bytes t.root + (t.next_node * node_entries * 8)
