open Ppp_util
open Ppp_click

type syn_params = { reads : int; instrs : int }
type kind = IP | MON | FW | RE | VPN | DPI | SYN of syn_params

let syn_max = SYN { reads = 256; instrs = 0 }
let realistic = [ IP; MON; FW; RE; VPN ]

let name = function
  | IP -> "IP"
  | MON -> "MON"
  | FW -> "FW"
  | RE -> "RE"
  | VPN -> "VPN"
  | DPI -> "DPI"
  | SYN { reads = 256; instrs = 0 } -> "SYN_MAX"
  | SYN { reads; instrs } -> Printf.sprintf "SYN:%d:%d" reads instrs

let of_name s =
  match s with
  | "IP" -> Some IP
  | "MON" -> Some MON
  | "FW" -> Some FW
  | "RE" -> Some RE
  | "VPN" -> Some VPN
  | "DPI" -> Some DPI
  | "SYN_MAX" -> Some syn_max
  | _ -> (
      match String.split_on_char ':' s with
      | [ "SYN"; reads; instrs ] -> (
          match (int_of_string_opt reads, int_of_string_opt instrs) with
          | Some reads, Some instrs when reads >= 0 && instrs >= 0 ->
              Some (SYN { reads; instrs })
          | _ -> None)
      | _ -> None)

(* Paper-scale workload parameters (divided by the machine scale factor). *)
let base_routes = 131072
let base_n16 = 4096
let base_flows = 100000
let fw_rule_count = 1000
let base_store_bytes = 32 * 1024 * 1024
let base_ft_entries = 4 * 1024 * 1024
let base_l3_bytes = 12 * 1024 * 1024
let re_corpus = 4096
let base_dpi_patterns = 1000
let re_redundancy_pct = 60

let wire_len = function
  | IP | MON | FW -> 64
  | RE -> 1024
  | VPN -> 192
  | DPI -> 512
  | SYN _ -> 64

type built = {
  elements : Element.t list;
  source : Ppp_traffic.Source.t;
  config : string;
}

type sizes = { routes : int; n16 : int; flows : int }

let sizes ~scale =
  {
    routes = max 64 (base_routes / scale);
    n16 = max 16 (base_n16 / scale);
    flows = max 64 (base_flows / scale);
  }

let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let working_set_bytes kind ~scale =
  let s = sizes ~scale in
  let trie_hot =
    (* Hot root lines, the level-1 nodes, and the (rarely visited) level-2
       nodes weighted down. *)
    (s.n16 * 64) + (s.n16 * 2048) + (s.routes * 3 / 100 * 2048 / 4)
  in
  let nf = pow2 (s.flows * 5 / 4) 16 * 64 in
  let buffers = 64 * 2048 in
  trie_hot + buffers
  +
  match kind with
  | IP -> 0
  | MON -> nf
  | DPI ->
      (* Dense automaton: ~12 states per pattern, 1KB + 8B per state. *)
      nf + (max 16 (base_dpi_patterns / scale) * 12 * (1024 + 8))
  | FW -> nf + (fw_rule_count * 16)
  | RE ->
      nf
      + max 65536 (base_store_bytes / scale)
      + (max 4096 (base_ft_entries / scale) * 8)
  | VPN -> nf + 5120
  | SYN _ -> max 4096 (base_l3_bytes / scale) - trie_hot - nf


(* The IP forwarding substrate every realistic flow shares. *)
let build_ip ~heap ~rng ~scale =
  let s = sizes ~scale in
  let seed = 0x51CC5EED + (scale * 7919) in
  ignore rng;
  let pool = Route_pool.make ~seed ~n16:s.n16 ~routes:s.routes in
  let trie =
    Radix_trie.create ~heap
      ~max_nodes:(Route_pool.suggested_max_nodes ~n16:s.n16 ~routes:s.routes)
      ~default_hop:0 ()
  in
  Route_pool.install pool trie;
  (* Next-hop information records (gateway, egress port), one per route up
     to 64K entries, read on every forwarded packet. *)
  let hop_table =
    Ppp_simmem.Iarray.init heap ~elem_bytes:16 (min s.routes 65536) (fun i -> i)
  in
  (pool, Ip_elements.forwarding_chain ~hop_table trie)

(* Stable 5-tuple per flow index, uniform flow popularity, as a
   first-class source with per-flow sequence numbers. *)
let tuple_source ~rng ~pool ~flows ~wire ~payload =
  (* The paper drives every application with uniformly random traffic: this
     maximizes the flows' sensitivity to contention (Section 2.1). *)
  let seqs = Array.make flows 0 in
  Ppp_traffic.Source.make ~name:"uniform-tuples"
    ~fill:(fun s pkt ->
      let f = Rng.int rng flows in
      let h = Hashes.fnv1a_int (f lxor 0x5bd1e995) in
      let src = 0x0A000000 lor (h land 0xFFFFFF) in
      let dst = Route_pool.dst_of_flow pool f in
      let sport = 1024 + ((h lsr 24) land 0x3FFF) in
      let dport = 1024 + ((h lsr 40) land 0x3FFF) in
      Ppp_traffic.Gen.fill_ipv4_udp pkt ~src ~dst ~sport ~dport ~wire_len:wire;
      payload pkt;
      let seq = seqs.(f) in
      seqs.(f) <- seq + 1;
      Ppp_traffic.Source.set_meta s ~flow:f ~seq;
      Ppp_traffic.Source.Filled)
    ()

let no_payload (_ : Ppp_net.Packet.t) = ()

(* FW rules live in 192.168/16 while traffic sources live in 10/8, so no
   packet ever matches and every packet scans the full list (Section 2.1). *)
let make_rules ~rng n =
  List.init n (fun _ ->
      {
        Firewall.rule_any with
        Firewall.src = 0xC0A80000 lor Rng.int rng 65536;
        src_mask = 0xFFFFFFFF;
        sport_lo = 0;
        sport_hi = 65535;
        dport_lo = Rng.int rng 30000;
        dport_hi = 30000 + Rng.int rng 30000;
      })

let re_payload ~rng pkt =
  let pos = Ppp_net.Transport.payload_offset pkt in
  let len = pkt.Ppp_net.Packet.len - pos in
  if Rng.int rng 100 < re_redundancy_pct then
    let seed = 0xC0FFEE + Rng.int rng re_corpus in
    Ppp_traffic.Gen.seeded_payload ~seed pkt ~pos ~len
  else Ppp_traffic.Gen.random_payload rng pkt ~pos ~len

let random_key rng =
  String.init 16 (fun _ -> Char.chr (Rng.byte rng))

let build kind ~heap ~rng ~scale =
  if scale <= 0 then invalid_arg "App.build: scale";
  let s = sizes ~scale in
  let wire = wire_len kind in
  match kind with
  | SYN { reads; instrs } ->
      let syn =
        More_elements.Syn.create ~heap ~rng:(Rng.split rng)
          ~buffer_bytes:(max 4096 (base_l3_bytes / scale))
          ~reads_per_packet:reads ~instrs_per_packet:instrs
      in
      let gen pkt =
        Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001 ~dst:0x0A000002
          ~sport:1000 ~dport:2000 ~wire_len:wire
      in
      {
        elements = [ More_elements.Syn.element syn ];
        source = Ppp_traffic.Source.of_gen ~name:"syn-const" gen;
        config =
          Printf.sprintf "FromDevice(0) -> Syn(%d, %d) -> ToDevice(0)" reads
            instrs;
      }
  | _ ->
      let pool, ip_chain = build_ip ~heap ~rng ~scale in
      let gen_rng = Rng.split rng in
      let ip_cfg =
        Printf.sprintf
          "FromDevice(0) -> CheckIPHeader -> RadixIPLookup(%d, %d) -> DecIPTTL"
          s.routes s.n16
      in
      let finish ~extra_elements ~extra_cfg ~payload =
        {
          elements = ip_chain @ extra_elements;
          source = tuple_source ~rng:gen_rng ~pool ~flows:s.flows ~wire ~payload;
          config = ip_cfg ^ extra_cfg ^ " -> ToDevice(0)";
        }
      in
      let flowstats () =
        ( More_elements.flow_statistics
            (Netflow.create ~heap ~entries:(s.flows * 5 / 4)),
          Printf.sprintf " -> FlowStats(%d)" s.flows )
      in
      (match kind with
      | IP -> finish ~extra_elements:[] ~extra_cfg:"" ~payload:no_payload
      | MON ->
          let fs, cfg = flowstats () in
          finish ~extra_elements:[ fs ] ~extra_cfg:cfg ~payload:no_payload
      | FW ->
          let fs, cfg = flowstats () in
          let fw =
            Firewall.create ~heap (make_rules ~rng:(Rng.split rng) fw_rule_count)
          in
          finish
            ~extra_elements:[ fs; More_elements.firewall fw ]
            ~extra_cfg:(cfg ^ Printf.sprintf " -> Firewall(%d)" fw_rule_count)
            ~payload:no_payload
      | RE ->
          let fs, cfg = flowstats () in
          let re =
            Re.create ~heap
              ~store_bytes:(max 65536 (base_store_bytes / scale))
              ~table_entries:(max 4096 (base_ft_entries / scale))
              ()
          in
          let payload = re_payload ~rng:(Rng.split rng) in
          finish
            ~extra_elements:[ fs; More_elements.re_encode re ]
            ~extra_cfg:
              (cfg
              ^ Printf.sprintf " -> REEncode(%d, %d)"
                  (max 65536 (base_store_bytes / scale))
                  (max 4096 (base_ft_entries / scale)))
            ~payload
      | DPI ->
          let fs, cfg = flowstats () in
          let n_patterns = max 16 (base_dpi_patterns / scale) in
          let prng = Rng.create ~seed:0xD191 in
          (* One automaton holds at most 62 patterns (bitmask match sets);
             to keep the footprint proportional to the configured pattern
             count, the per-pattern length grows instead. *)
          let patterns =
            List.init (min 62 n_patterns) (fun _ ->
                String.init
                  (8 + Rng.int prng 8 + (n_patterns / 62))
                  (fun _ -> Char.chr (1 + Rng.int prng 255)))
          in
          let dpi = Dpi.create ~heap patterns in
          finish
            ~extra_elements:[ fs; Dpi.element ~drop_on_match:false dpi ]
            ~extra_cfg:(cfg ^ Printf.sprintf " -> DPI(%d)" (List.length patterns))
            ~payload:(let rng = Rng.split rng in
                      fun pkt ->
                        let pos = Ppp_net.Transport.payload_offset pkt in
                        Ppp_traffic.Gen.random_payload rng pkt ~pos
                          ~len:(pkt.Ppp_net.Packet.len - pos))
      | VPN ->
          let fs, cfg = flowstats () in
          let vpn =
            More_elements.vpn_encrypt ~heap ~key:(random_key (Rng.split rng)) ()
          in
          let payload_rng = Rng.split rng in
          finish
            ~extra_elements:[ fs; vpn ]
            ~extra_cfg:(cfg ^ " -> VPNEncrypt")
            ~payload:(fun pkt ->
              let pos = Ppp_net.Transport.payload_offset pkt in
              Ppp_traffic.Gen.random_payload payload_rng pkt ~pos
                ~len:(pkt.Ppp_net.Packet.len - pos))
      | SYN _ -> assert false)

let flow kind ~heap ~rng ~scale ?label () =
  let b = build kind ~heap ~rng ~scale in
  let label = match label with Some l -> l | None -> name kind in
  Flow.create ~heap ~rng:(Rng.split rng) ~label ~source:b.source
    ~elements:b.elements ()

let registered = ref false

let register_all () =
  if not !registered then begin
    registered := true;
    let module R = Config.Registry in
    let int_arg ~what = function
      | s -> (
          match int_of_string_opt s with
          | Some v when v > 0 -> v
          | _ -> invalid_arg (Printf.sprintf "%s: bad integer %S" what s))
    in
    R.register "CheckIPHeader" (fun _ctx _args -> Ip_elements.check_ip_header ());
    R.register "DecIPTTL" (fun _ctx _args -> Ip_elements.dec_ip_ttl ());
    R.register "RadixIPLookup" (fun ctx args ->
        let routes, n16 =
          match args with
          | [ r ] -> (int_arg ~what:"routes" r, max 16 (base_n16 * int_arg ~what:"routes" r / base_routes))
          | [ r; n ] -> (int_arg ~what:"routes" r, int_arg ~what:"n16" n)
          | _ -> invalid_arg "RadixIPLookup(routes[, n16])"
        in
        let pool = Route_pool.make ~seed:0x51CC5EED ~n16 ~routes in
        let trie =
          Radix_trie.create ~heap:ctx.R.heap
            ~max_nodes:(Route_pool.suggested_max_nodes ~n16 ~routes)
            ~default_hop:0 ()
        in
        Route_pool.install pool trie;
        Ip_elements.radix_ip_lookup trie);
    R.register "FlowStats" (fun ctx args ->
        let flows =
          match args with
          | [ f ] -> int_arg ~what:"flows" f
          | _ -> invalid_arg "FlowStats(flows)"
        in
        More_elements.flow_statistics
          (Netflow.create ~heap:ctx.R.heap ~entries:(2 * flows)));
    R.register "Firewall" (fun ctx args ->
        let rules =
          match args with
          | [ r ] -> int_arg ~what:"rules" r
          | _ -> invalid_arg "Firewall(rules)"
        in
        More_elements.firewall
          (Firewall.create ~heap:ctx.R.heap
             (make_rules ~rng:(Rng.copy ctx.R.rng) rules)));
    R.register "REEncode" (fun ctx args ->
        let store, entries =
          match args with
          | [ s; e ] -> (int_arg ~what:"store" s, int_arg ~what:"entries" e)
          | _ -> invalid_arg "REEncode(store_bytes, table_entries)"
        in
        More_elements.re_encode
          (Re.create ~heap:ctx.R.heap ~store_bytes:store ~table_entries:entries
             ()));
    R.register "VPNEncrypt" (fun ctx _args ->
        More_elements.vpn_encrypt ~heap:ctx.R.heap
          ~key:(random_key (Rng.copy ctx.R.rng)) ());
    R.register "SourceNAT" (fun ctx args ->
        let public_ip =
          match args with
          | [ a ] -> Ppp_net.Ipv4.addr_of_string a
          | _ -> invalid_arg "SourceNAT(public_ip)"
        in
        Nat.outbound_element (Nat.create ~heap:ctx.R.heap ~public_ip ()));
    R.register "DPI" (fun ctx args ->
        let n =
          match args with
          | [ n ] -> int_arg ~what:"patterns" n
          | _ -> invalid_arg "DPI(patterns)"
        in
        let prng = Rng.copy ctx.R.rng in
        let patterns =
          List.init (min 62 n) (fun _ ->
              String.init (8 + Rng.int prng 8) (fun _ ->
                  Char.chr (1 + Rng.int prng 255)))
        in
        Dpi.element ~drop_on_match:false (Dpi.create ~heap:ctx.R.heap patterns));
    R.register "Syn" (fun ctx args ->
        let reads, instrs =
          match args with
          | [ r; i ] -> (
              match (int_of_string_opt r, int_of_string_opt i) with
              | Some r, Some i when r >= 0 && i >= 0 -> (r, i)
              | _ -> invalid_arg "Syn(reads, instrs)")
          | _ -> invalid_arg "Syn(reads, instrs)"
        in
        More_elements.Syn.element
          (More_elements.Syn.create ~heap:ctx.R.heap
             ~rng:(Rng.copy ctx.R.rng)
             ~buffer_bytes:(max 4096 (base_l3_bytes / ctx.R.scale))
             ~reads_per_packet:reads ~instrs_per_packet:instrs))
  end
