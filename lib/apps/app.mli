(** The application catalogue: the paper's five realistic packet-processing
    flow types (Section 2.1) plus the SYN synthetic profiler, each bundled
    with the adversarial traffic generator the paper pairs it with.

    All sizes are the paper's, divided by the machine's [scale] factor so
    footprint-to-cache ratios are preserved on scaled-down configurations:

    - IP: full forwarding over a 131072/scale-route table, random routed
      destinations.
    - MON: IP + NetFlow over 100000/scale flows.
    - FW: MON + 1000-rule sequential firewall; traffic never matches, so
      every packet scans all rules.
    - RE: MON + redundancy elimination (32MB/scale packet store,
      4M/scale-entry fingerprint table), 60%-redundant 1KB packets.
    - VPN: MON + AES-128-CTR encryption of 576-byte packets.
    - DPI (extension): MON + multi-pattern payload inspection over an
      automaton sized like the paper's Section-6 discussion.
    - SYN: configurable compute + random reads over an L3-sized buffer. *)

type syn_params = { reads : int; instrs : int }

type kind =
  | IP
  | MON
  | FW
  | RE
  | VPN
  | DPI  (** extension: MON + Aho-Corasick inspection (Section 6's "emerging"
             deep-packet-inspection type; not part of the paper's five) *)
  | SYN of syn_params

val syn_max : kind
(** The most aggressive synthetic flow: memory accesses at the highest
    possible rate, no other processing. *)

val realistic : kind list
(** [IP; MON; FW; RE; VPN]. *)

val name : kind -> string
val of_name : string -> kind option
(** Recognizes "IP" "MON" "FW" "RE" "VPN" "SYN_MAX" and "SYN:<reads>:<instrs>". *)

type built = {
  elements : Ppp_click.Element.t list;
  source : Ppp_traffic.Source.t;
      (** the workload's traffic source (per-flow sequence numbers for the
          realistic apps; a constant packet for SYN) *)
  config : string;  (** the equivalent Click-language chain *)
}

val build :
  kind -> heap:Ppp_simmem.Heap.t -> rng:Ppp_util.Rng.t -> scale:int -> built
(** Instantiates the application's elements (state allocated on [heap]) and
    its traffic generator. Deterministic given the rng state. *)

val flow :
  kind ->
  heap:Ppp_simmem.Heap.t ->
  rng:Ppp_util.Rng.t ->
  scale:int ->
  ?label:string ->
  unit ->
  Ppp_click.Flow.t
(** Convenience: [build] wrapped into a {!Ppp_click.Flow}. *)

val wire_len : kind -> int
(** The workload's packet size on the wire. *)

val working_set_bytes : kind -> scale:int -> int
(** Rough estimate of the flow's cacheable data footprint (hot trie levels,
    flow table, rules, RE structures, SYN buffer) — the [W] parameter of the
    Appendix-A cache model. *)

val register_all : unit -> unit
(** Registers every element class in {!Ppp_click.Config.Registry}
    (CheckIPHeader, RadixIPLookup, DecIPTTL, FlowStats, Firewall, REEncode,
    VPNEncrypt, Syn). Idempotent. *)
