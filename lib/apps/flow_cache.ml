open Ppp_simmem

(* Slot packing: bits 0-15 hop, bits 16-57 the full 42-bit key (slot value
   0 = empty; keys are never zero). *)
type t = {
  slots : int Iarray.t;
  mask : int;
  mutable hits : int;
  mutable misses : int;
}

let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let create ~heap ~entries =
  if entries <= 0 then invalid_arg "Flow_cache.create";
  let cap = pow2 entries 16 in
  { slots = Iarray.create heap ~elem_bytes:16 cap 0; mask = cap - 1; hits = 0; misses = 0 }

let capacity t = t.mask + 1
let hits t = t.hits
let misses t = t.misses

let key_of pkt =
  let h = Ppp_net.Flowid.hash_of_packet pkt in
  let key = (h lsr 16) land 0x3FFFFFFFFFF in
  (* Never zero: zero marks an empty slot. *)
  if key = 0 then 1 else key

let fn = Ip_elements.fn_radix_ip_lookup

let lookup_element t ~trie ?hop_table () =
  Ppp_click.Element.make ~kind:"CachedIPLookup" (fun ctx pkt ->
      let b = ctx.Ppp_click.Ctx.builder in
      let key = key_of pkt in
      let idx = key land t.mask in
      let slot = Iarray.get t.slots b ~fn idx in
      Ppp_click.Ctx.compute ctx ~fn 12;
      let hop =
        if slot lsr 16 = key && slot <> 0 then begin
          t.hits <- t.hits + 1;
          slot land 0xFFFF
        end
        else begin
          t.misses <- t.misses + 1;
          let hop = Radix_trie.lookup trie b ~fn (Ppp_net.Ipv4.dst pkt) in
          (match hop_table with
          | Some table when hop > 0 ->
              ignore
                (Iarray.get table b ~fn ((hop - 1) mod Iarray.length table)
                  : int)
          | _ -> ());
          if hop > 0 then
            Iarray.set t.slots b ~fn idx ((key lsl 16) lor (hop land 0xFFFF));
          hop
        end
      in
      if hop = 0 then Ppp_click.Element.Drop
      else begin
        Ppp_net.Packet.set8 pkt 0 (hop land 0xFF);
        Ppp_click.Ctx.touch_packet ctx pkt ~fn ~write:true ~pos:0 ~len:1;
        Ppp_click.Element.Forward
      end)
