open Ppp_simmem

type entry = {
  key : Ppp_net.Flowid.t;
  packets : int;
  bytes : int;
  last_seen : int;
}

(* The table the simulated cores see is [slots] — one 64-byte line per
   entry, probed with one instrumented read per step and one instrumented
   write per update, exactly as a padded C struct array would be. The
   entry *contents* are host-side bookkeeping and live in flat int arrays:
   the old [Empty | Full of entry] representation allocated a key record,
   an entry and a constructor per packet on MON's hottest path. *)
type t = {
  slots : int Iarray.t; (* 0 = empty, 1 = occupied; carries the trace ops *)
  k_src : int array;
  k_dst : int array;
  k_ports : int array; (* sport lsl 24 | dport lsl 8 | proto — injective *)
  packets : int array;
  bytes : int array;
  last_seen : int array;
  mask : int;
  mutable active : int;
  mutable evictions : int;
}

let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let create ~heap ~entries =
  if entries <= 0 then invalid_arg "Netflow.create: entries";
  let cap = pow2 entries 16 in
  {
    slots = Iarray.create heap ~elem_bytes:64 cap 0;
    k_src = Array.make cap 0;
    k_dst = Array.make cap 0;
    k_ports = Array.make cap 0;
    packets = Array.make cap 0;
    bytes = Array.make cap 0;
    last_seen = Array.make cap 0;
    mask = cap - 1;
    active = 0;
    evictions = 0;
  }

let capacity t = t.mask + 1
let active_flows t = t.active
let evictions t = t.evictions
let max_probes = 8

let store t idx ~src ~dst ~ports ~pkts ~byts ~now =
  t.k_src.(idx) <- src;
  t.k_dst.(idx) <- dst;
  t.k_ports.(idx) <- ports;
  t.packets.(idx) <- pkts;
  t.bytes.(idx) <- byts;
  t.last_seen.(idx) <- now

let update t b ~fn pkt ~now =
  let src = Ppp_net.Ipv4.src pkt in
  let dst = Ppp_net.Ipv4.dst pkt in
  let sport = Ppp_net.Transport.src_port pkt in
  let dport = Ppp_net.Transport.dst_port pkt in
  let proto = Ppp_net.Ipv4.proto pkt in
  let ports = (sport lsl 24) lor (dport lsl 8) lor proto in
  let h = Ppp_net.Flowid.hash_of_packet pkt land t.mask in
  let bytes = pkt.Ppp_net.Packet.len in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let idx = (h + !i) land t.mask in
    let state = Iarray.get t.slots b ~fn idx in
    if state = 0 then begin
      Iarray.set t.slots b ~fn idx 1;
      store t idx ~src ~dst ~ports ~pkts:1 ~byts:bytes ~now;
      t.active <- t.active + 1;
      continue := false
    end
    else if
      t.k_src.(idx) = src && t.k_dst.(idx) = dst && t.k_ports.(idx) = ports
    then begin
      Iarray.set t.slots b ~fn idx 1;
      t.packets.(idx) <- t.packets.(idx) + 1;
      t.bytes.(idx) <- t.bytes.(idx) + bytes;
      t.last_seen.(idx) <- now;
      continue := false
    end
    else if !i + 1 >= max_probes || t.active > (t.mask + 1) * 15 / 16 then begin
      (* Evict the colliding flow (fixed-size collector behaviour). *)
      Iarray.set t.slots b ~fn idx 1;
      store t idx ~src ~dst ~ports ~pkts:1 ~byts:bytes ~now;
      t.evictions <- t.evictions + 1;
      continue := false
    end
    else incr i
  done

let find t key =
  let open Ppp_net.Flowid in
  let ports = (key.sport lsl 24) lor (key.dport lsl 8) lor key.proto in
  let h = hash key land t.mask in
  let rec probe i =
    if i >= max_probes then None
    else
      let idx = (h + i) land t.mask in
      if Iarray.peek t.slots idx = 0 then None
      else if
        t.k_src.(idx) = key.src && t.k_dst.(idx) = key.dst
        && t.k_ports.(idx) = ports
      then
        Some
          {
            key;
            packets = t.packets.(idx);
            bytes = t.bytes.(idx);
            last_seen = t.last_seen.(idx);
          }
      else probe (i + 1)
  in
  probe 0
