(** Experiment harness: place flows on cores and NUMA nodes, run them to a
    steady state, and report per-flow results.

    This encodes the measurement methodology of Section 3: a run has a warmup
    period and a measurement window; the contention-induced performance drop
    of a flow is (tau_s - tau_c) / tau_s against its solo throughput under
    identical placement. *)

type spec = {
  kind : Ppp_apps.App.kind;
  core : int;
  data_node : int;
      (** NUMA node holding every data structure of this flow. The paper's
          Figure 3 configurations are expressed here: local data =
          socket of [core]; remote data = the other node. *)
}

val flow_on : ?node:int -> core:int -> Ppp_apps.App.kind -> spec
(** [flow_on ~core kind] places data locally; [?node] overrides. *)

type classifier = Tss | Range | All_backends
(** Slow-path backend selection for the [classifier] experiment. *)

val classifier_name : classifier -> string
(** ["tss"] / ["range"] / ["all"]. *)

val classifier_of_name : string -> classifier option

type traffic_model = Heavy_tail | Onoff | Churn | All_models
(** Source-model selection for the [traffic] experiment. *)

val traffic_name : traffic_model -> string
(** ["heavy"] / ["onoff"] / ["churn"] / ["all"]. *)

val traffic_of_name : string -> traffic_model option

type steering = Rss | Flow_director | Both_steerings
(** NIC steering-model selection for the [traffic] experiment. *)

val steering_name : steering -> string
(** ["rss"] / ["fdir"] / ["all"]. *)

val steering_of_name : string -> steering option

type params = {
  config : Ppp_hw.Machine.config;
  seed : int;
  warmup_cycles : int;
  measure_cycles : int;
  batch : int;
      (** Engine burst budget: how many trace ops a scheduled core may retire
          per scheduling decision (see [Engine.run ?batch]). A pure execution
          knob — results are byte-identical for every value >= 1. *)
  cell : string;
      (** Telemetry label of the experiment cell this run belongs to
          (e.g. "pair/IP/MON"); "" for unlabeled ad-hoc runs. Only consumed
          by the telemetry layer — it never influences the simulation. *)
  classifier : classifier;
      (** Backend selection for the [classifier] experiment. Only that
          experiment reads it; every other experiment ignores the field. *)
  traffic : traffic_model;
      (** Source-model selection for the [traffic] experiment; ignored by
          every other experiment. *)
  steering : steering;
      (** Steering-model selection for the [traffic] experiment; ignored by
          every other experiment. *)
  profile : bool;
      (** When true, the run attributes cycles / instructions / L3 events /
          latency to (core, element) and records the per-element profile
          into the {!Ppp_telemetry.Recorder} under [params.cell]. Pure
          observation: results are byte-identical with it on or off. *)
}

val default_params : params
(** scaled machine, seed 42, 3M cycles warmup, 10M measured, batch 32. *)

val quick_params : params
(** Shorter window for tests. *)

(** Builder-style construction: pipe {!Params.default} (or
    {!Params.quick}) through [with_*] setters instead of writing the
    record literal, so adding a knob never breaks existing call sites:

    {[ Runner.Params.(default |> with_batch 8 |> with_classifier Tss) ]} *)
module Params : sig
  type t = params

  val default : t
  val quick : t
  val with_config : Ppp_hw.Machine.config -> t -> t
  val with_seed : int -> t -> t

  val with_windows : warmup:int -> measure:int -> t -> t
  (** Warmup / measurement window lengths, in cycles. *)

  val with_batch : int -> t -> t
  val with_cell : string -> t -> t
  val with_classifier : classifier -> t -> t
  val with_traffic : traffic_model -> t -> t
  val with_steering : steering -> t -> t
  val with_profile : bool -> t -> t
end

val run :
  ?params:params ->
  ?probe:Ppp_hw.Engine.probe ->
  ?wrap:(Ppp_hw.Hierarchy.t -> core:int -> Ppp_hw.Engine.source ->
         Ppp_hw.Engine.source) ->
  spec list ->
  Ppp_hw.Engine.result list
(** Builds a fresh machine, instantiates each spec as a flow, runs, and
    returns results in spec order. When the {!Ppp_telemetry.Recorder} is
    configured, the run additionally feeds it: a per-core simulated-time
    counter series (sampling) and a wall-clock span, both tagged with
    [params.cell].

    [?probe] is teed with the telemetry sampler (the engine takes a single
    probe): both receive every sample. Because the two consumers would
    otherwise disagree about what a slice means, the caller's
    [probe.sample_cycles] must equal the recorder's sampling period when
    telemetry sampling is on ([Invalid_argument] otherwise). This is how the
    contention monitor observes a run without a second simulation.

    [?wrap] transforms each flow's packet source after placement, with access
    to the machine being simulated — the hook used to interpose
    {!Throttle.l3_budget_source} for closed-loop experiments. It runs once
    per flow during setup; identity by default. *)

val cell_params : params -> string -> params
(** [cell_params p label] is [p] with its seed replaced by
    [Rng.derive ~seed:p.seed label] and its telemetry [cell] set to
    [label]: the per-cell parameters of one independent experiment cell.
    Deriving each cell's stream from a label (instead of splitting a shared
    generator) keeps cells order-independent, so {!Parallel.map} over cells
    is byte-identical to a sequential loop. *)

val with_cell : params -> string -> params
(** Sets only the telemetry [cell] label, leaving the seed untouched — for
    cells that predate telemetry and must keep their historical streams
    (changing their seed would invalidate every golden snapshot). *)

val solo : ?params:params -> Ppp_apps.App.kind -> Ppp_hw.Engine.result
(** The kind alone on core 0, data local. Seeded from
    [cell_params params ("solo/" ^ name kind)], making the solo baseline of
    a kind identical wherever it is computed. *)

val drop : solo:Ppp_hw.Engine.result -> corun:Ppp_hw.Engine.result -> float
(** Fractional contention-induced drop, >= -epsilon in practice. *)

val competing_refs_per_sec :
  Ppp_hw.Engine.result list -> target:Ppp_hw.Engine.result -> float
(** Sum of the other flows' measured L3 refs/sec (the paper's "competing
    references"). *)
