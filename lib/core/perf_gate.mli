(** The simulator's own benchmark ("bench --perf-gate"): times fig2-sized
    {!Ppp_hw.Engine.run} workloads — target solo, target + 5 competitors,
    and the same contended run under a [?probe] sampler — and audits the
    cache-hit path for minor-heap allocation. The report serializes to the
    committed [BENCH_engine.json], whose [trajectory] array records one
    point per optimization round so regenerating the file never loses the
    bench history. *)

type measurement = {
  name : string;  (** "solo" | "contended" | "probed" | "profiled" *)
  flows : int;
  runs : int;  (** repetitions; [wall_s] is the best of them *)
  wall_s : float;
  engine_ops : int;  (** trace ops replayed, summed over cores *)
  ops_per_sec : float;
  allocated_bytes_per_op : float;
      (** [Gc.allocated_bytes] delta across the best run, per op *)
  window_packets : int;  (** sanity anchor: must not move with the engine *)
}

type hit_path = {
  accesses : int;
  allocated_bytes : float;
  bytes_per_access : float;
  zero_alloc : bool;
      (** true iff the repeated L1-hit loop allocated nothing beyond the
          constant slack of the measurement itself *)
}

type flow_table = {
  lookups : int;
  entries : int;  (** table capacity the loop probed *)
  hit_fraction : float;  (** of the lookup stream; pinned by construction *)
  ft_wall_s : float;
  lookups_per_sec : float;
  bytes_per_lookup : float;
  ft_zero_alloc : bool;
}
(** The classifier fast path's inner loop: instrumented {!Ppp_classify.Flow_table.find}
    over a pre-built packet pool, three-quarters of it installed. Like the
    cache-hit audit, the loop must not touch the minor heap — the classifier
    experiment runs it once per simulated packet. *)

type source_fill = {
  fills : int;
  sf_wall_s : float;
  fills_per_sec : float;
  bytes_per_fill : float;
  sf_zero_alloc : bool;
}
(** The {!Ppp_traffic.Source.fill} hot path: a heavy-tailed source (the
    most expensive built-in model — size-weighted flow sampling plus full
    frame construction) filling one preallocated packet in a tight loop.
    Every simulated packet of every experiment pays this path; the built-in
    sources promise integer-only sampling, so the loop must not touch the
    minor heap. *)

type report = {
  config : string;
  seed : int;
  quick : bool;
  warmup_cycles : int;
  measure_cycles : int;
  batch : int;  (** engine burst budget the workloads ran with *)
  workloads : measurement list;
  profile_overhead : float;
      (** fraction of contended throughput lost when the same workload runs
          under the per-element profiler ("profiled" vs "contended" ops/s);
          may dip slightly negative under wall-clock noise *)
  hit : hit_path;
  flow_table : flow_table;
  source_fill : source_fill;
}

type trajectory_point = {
  label : string;
  contended_ops_per_sec : float;
  contended_bytes_per_op : float;
  hit_path_bytes_per_access : float;
}

val trajectory : trajectory_point list
(** The recorded bench history (full-length contended workload), one entry
    per optimization round, oldest first. Kept as code so the JSON can be
    regenerated without losing it. *)

val run : ?quick:bool -> ?runs:int -> ?batch:int -> unit -> report
(** [quick] quarters the warmup/measure windows and defaults [runs] to 1
    (CI smoke); the full gate defaults to best-of-3. [batch] sets the
    engine burst budget (default {!Runner.default_params}'s); it changes
    only wall-clock, never simulation results. *)

val to_json : report -> Ppp_telemetry.Json.t

val required_keys : string list
(** Top-level keys every BENCH_engine.json must carry (tested). *)
