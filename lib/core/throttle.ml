let make_stall_item cycles =
  let b = Ppp_hw.Trace.Builder.create ~initial_capacity:4 () in
  Ppp_hw.Trace.Builder.stall b cycles;
  Ppp_hw.Engine.Idle (Ppp_hw.Trace.Builder.finish b)

let max_stall = 50_000

let metered ~budget_per_sec ~freq_hz ~count inner =
  if budget_per_sec <= 0.0 then invalid_arg "Throttle: budget must be positive";
  let start = ref None in
  let consumed = ref 0.0 in
  fun now ->
    let t0 = match !start with
      | Some t -> t
      | None ->
          start := Some now;
          now
    in
    let elapsed = float_of_int (now - t0) in
    (* Cycles the budget requires for the references issued so far. *)
    let required = !consumed *. freq_hz /. budget_per_sec in
    if required > elapsed +. 1.0 then
      make_stall_item (min max_stall (int_of_float (required -. elapsed)))
    else begin
      let item = inner now in
      (match item with
      | Ppp_hw.Engine.Packet trace
      | Ppp_hw.Engine.Idle trace
      | Ppp_hw.Engine.Reordered trace ->
          consumed := !consumed +. count now trace);
      item
    end

let source ~budget_refs_per_sec ~freq_hz inner =
  metered ~budget_per_sec:budget_refs_per_sec ~freq_hz
    ~count:(fun _now trace -> float_of_int (Ppp_hw.Trace.mem_refs trace))
    inner

let l3_budget_source ~budget_l3_refs_per_sec ~hier ~core ~freq_hz inner =
  (* Meter from the hardware counters: charge the L3 refs observed since the
     previous poll (the trace itself is not consulted). *)
  let last = ref 0 in
  metered ~budget_per_sec:budget_l3_refs_per_sec ~freq_hz
    ~count:(fun _now _trace ->
      let refs = Ppp_hw.Counters.l3_refs (Ppp_hw.Hierarchy.counters hier core) in
      let delta = refs - !last in
      last := refs;
      float_of_int delta)
    inner

module Two_faced = struct
  let elements ~heap ~rng ~buffer_bytes ~quiet_reads ~loud_reads ~switch_after =
    let buffer =
      Ppp_simmem.Iarray.create heap ~elem_bytes:64 (max 64 (buffer_bytes / 64)) 0
    in
    let n = Ppp_simmem.Iarray.length buffer in
    let fn = Ppp_apps.More_elements.fn_syn in
    let count = ref 0 in
    [
      Ppp_click.Element.make ~kind:"TwoFacedSyn" (fun ctx _pkt ->
          incr count;
          let loud = !count > switch_after in
          let reads = if loud then loud_reads else quiet_reads in
          Ppp_click.Ctx.compute ctx ~fn (if loud then 0 else 6_000);
          for _ = 1 to reads do
            ignore
              (Ppp_simmem.Iarray.get buffer ctx.Ppp_click.Ctx.builder ~fn
                 (Ppp_util.Rng.int rng n)
                : int)
          done;
          Ppp_click.Element.Forward);
    ]

  let gen pkt =
    Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001 ~dst:0x0A000002
      ~sport:1000 ~dport:2000 ~wire_len:64

  let source () = Ppp_traffic.Source.of_gen ~name:"two-faced" gen
end
