(** Domain-parallel fan-out for independent experiment cells.

    Every registered experiment is a set of independent simulation cells
    (one [Runner.run] per cell), each seeded purely from
    [(experiment, cell, seed)] via {!Ppp_util.Rng.derive}. [map] fans the
    cells out across a bounded pool of OCaml 5 domains and reassembles
    results in input order, so output is byte-identical to a sequential
    run regardless of the job count. *)

val default_jobs : unit -> int
(** The machine's recommended domain count (physical cores). *)

val set_jobs : int -> unit
(** Bound the pool: [set_jobs 0] restores the default (physical cores);
    [set_jobs 1] forces sequential execution. Wired to [--jobs]/[-j]. *)

val configured_jobs : unit -> int
(** The last value passed to {!set_jobs} (0 = auto). *)

val jobs : unit -> int
(** The effective pool size: the configured value, or {!default_jobs}. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, possibly in parallel, and
    returns results in input order. [f] must not share mutable state
    across elements. Calls from inside a worker run sequentially (no
    nested pools). If any [f x] raises, the exception of the lowest
    index is re-raised after the pool drains. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map] with the element's index, e.g. for per-cell seed derivation.

    When {!Ppp_telemetry.Recorder.spans_enabled}, every pooled work item
    additionally records a wall-clock span (queue wait + run time, owning
    domain) into the telemetry recorder. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [map] for effects only. *)
