type combo = (Ppp_apps.App.kind * int) list

let combo_name combo =
  combo
  |> List.map (fun (k, n) -> Printf.sprintf "%d %s" n (Ppp_apps.App.name k))
  |> String.concat " + "

(* Enumerate the number of flows of each kind assigned to socket 0; the rest
   go to socket 1. Only two-socket machines are supported (as the paper's). *)
let splits ~config combo =
  let topo = config.Ppp_hw.Machine.topology in
  if topo.Ppp_hw.Topology.sockets <> 2 then
    invalid_arg "Scheduler.splits: two-socket machines only";
  let cps = topo.Ppp_hw.Topology.cores_per_socket in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 combo in
  if total <> Ppp_hw.Topology.cores topo then
    invalid_arg "Scheduler.splits: combo must fill every core";
  List.iter
    (fun (_, n) -> if n <= 0 then invalid_arg "Scheduler.splits: counts") combo;
  let kinds = Array.of_list combo in
  let nkinds = Array.length kinds in
  let acc = ref [] in
  let counts = Array.make nkinds 0 in
  let rec go i assigned =
    if i = nkinds then begin
      if assigned = cps then begin
        let socket0 =
          List.concat
            (List.init nkinds (fun j ->
                 List.init counts.(j) (fun _ -> fst kinds.(j))))
        in
        let socket1 =
          List.concat
            (List.init nkinds (fun j ->
                 List.init (snd kinds.(j) - counts.(j)) (fun _ -> fst kinds.(j))))
        in
        acc := [ socket0; socket1 ] :: !acc
      end
    end
    else
      for c = 0 to min (snd kinds.(i)) (cps - assigned) do
        counts.(i) <- c;
        go (i + 1) (assigned + c);
        counts.(i) <- 0
      done
  in
  go 0 0;
  (* Dedup under socket exchange. *)
  let canon p =
    let key socket =
      List.map Ppp_apps.App.name socket |> List.sort compare |> String.concat ","
    in
    match p with
    | [ a; b ] ->
        let ka = key a and kb = key b in
        if ka <= kb then ka ^ "|" ^ kb else kb ^ "|" ^ ka
    | _ -> assert false
  in
  let seen = Hashtbl.create 32 in
  List.filter
    (fun p ->
      let k = canon p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    !acc

type evaluation = {
  per_socket : Ppp_apps.App.kind list list;
  avg_drop : float;
  per_flow : (Ppp_apps.App.kind * float) list;
}

let evaluate ?(params = Runner.default_params) ?(solo = []) combo =
  let config = params.Runner.config in
  let cps = Ppp_hw.Machine.cores_per_socket config in
  (* Resolve every solo baseline up front (in parallel for the missing
     ones): the placement cells below must not share mutable state. *)
  let solos =
    List.map fst combo
    |> List.sort_uniq compare
    |> Parallel.map (fun k ->
           match List.assoc_opt k solo with
           | Some pps -> (k, pps)
           | None -> (k, (Runner.solo ~params k).Ppp_hw.Engine.throughput_pps))
  in
  let solo_pps kind = List.assoc kind solos in
  let eval i placement =
    let params =
      Runner.cell_params params
        (Printf.sprintf "sched/%s/%d" (combo_name combo) i)
    in
    let specs =
      List.concat
        (List.mapi
           (fun socket kinds_on_socket ->
             List.mapi
               (fun i kind ->
                 { Runner.kind; core = (socket * cps) + i; data_node = socket })
               kinds_on_socket)
           placement)
    in
    let results = Runner.run ~params specs in
    let per_flow =
      List.map2
        (fun (spec : Runner.spec) r ->
          let ts = solo_pps spec.Runner.kind in
          (spec.Runner.kind, (ts -. r.Ppp_hw.Engine.throughput_pps) /. ts))
        specs results
    in
    let drops = List.map snd per_flow in
    {
      per_socket = placement;
      avg_drop = List.fold_left ( +. ) 0.0 drops /. float_of_int (List.length drops);
      per_flow;
    }
  in
  Parallel.mapi eval (splits ~config combo)

let best evals =
  match evals with
  | [] -> invalid_arg "Scheduler.best: empty"
  | e :: rest ->
      List.fold_left (fun b e -> if e.avg_drop < b.avg_drop then e else b) e rest

let worst evals =
  match evals with
  | [] -> invalid_arg "Scheduler.worst: empty"
  | e :: rest ->
      List.fold_left (fun w e -> if e.avg_drop > w.avg_drop then e else w) e rest

let gain evals = (worst evals).avg_drop -. (best evals).avg_drop

let greedy_placement ~config ~aggressiveness combo =
  let topo = config.Ppp_hw.Machine.topology in
  if topo.Ppp_hw.Topology.sockets <> 2 then
    invalid_arg "Scheduler.greedy_placement: two-socket machines only";
  let cps = topo.Ppp_hw.Topology.cores_per_socket in
  let flows =
    List.concat_map (fun (k, n) -> List.init n (fun _ -> k)) combo
    |> List.map (fun k -> (k, aggressiveness k))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let load = [| 0.0; 0.0 |] and count = [| 0; 0 |] in
  let sockets = [| []; [] |] in
  List.iter
    (fun (k, a) ->
      let s =
        if count.(0) >= cps then 1
        else if count.(1) >= cps then 0
        else if load.(0) <= load.(1) then 0
        else 1
      in
      sockets.(s) <- k :: sockets.(s);
      load.(s) <- load.(s) +. a;
      count.(s) <- count.(s) + 1)
    flows;
  [ List.rev sockets.(0); List.rev sockets.(1) ]
