type resource = Cache_only | Memctrl_only | Both

let resource_name = function
  | Cache_only -> "cache-only"
  | Memctrl_only -> "memctrl-only"
  | Both -> "cache+memctrl"

let placement ~config resource ~n_competitors ~competitor ~target =
  let cps = Ppp_hw.Machine.cores_per_socket config in
  if n_competitors > cps - 1 && resource <> Memctrl_only then
    invalid_arg "Sensitivity.placement: too many co-located competitors";
  if n_competitors > cps && resource = Memctrl_only then
    invalid_arg "Sensitivity.placement: too many remote competitors";
  let target_spec = { Runner.kind = target; core = 0; data_node = 0 } in
  let competitor_spec i =
    match resource with
    | Cache_only -> { Runner.kind = competitor; core = 1 + i; data_node = 1 }
    | Memctrl_only -> { Runner.kind = competitor; core = cps + i; data_node = 0 }
    | Both -> { Runner.kind = competitor; core = 1 + i; data_node = 0 }
  in
  target_spec :: List.init n_competitors competitor_spec

(* Ramp both SYN knobs (the paper's synthetic application has a
   configurable number of CPU operations and of random reads), so that a
   SYN flow's per-packet I/O overhead stays comparable to the realistic
   flows' across the whole range of aggressiveness. *)
let default_syn_levels =
  List.map
    (fun (reads, instrs) -> { Ppp_apps.App.reads; instrs })
    [
      (2, 80_000);
      (4, 40_000);
      (8, 20_000);
      (8, 8_000);
      (16, 6_000);
      (16, 3_000);
      (32, 2_500);
      (32, 1_200);
      (64, 1_000);
      (64, 400);
      (128, 300);
      (256, 0);
    ]

type point = {
  competing_refs_per_sec : float;
  drop : float;
  target_hits_per_sec : float;
}

type curve = {
  target : Ppp_apps.App.kind;
  resource : resource;
  solo_pps : float;
  points : point list;
}

let measure ?(params = Runner.default_params) ?(levels = default_syn_levels)
    ?n_competitors ~resource target =
  let n_competitors =
    match n_competitors with
    | Some n -> n
    | None ->
        (* As many co-located competitors as the socket allows, up to the
           paper's five. *)
        min 5 (Ppp_hw.Machine.cores_per_socket params.Runner.config - 1)
  in
  let solo = Runner.solo ~params target in
  let solo_pps = solo.Ppp_hw.Engine.throughput_pps in
  let run_level i level =
    let params =
      Runner.cell_params params
        (Printf.sprintf "sens/%s/%s/%d" (Ppp_apps.App.name target)
           (resource_name resource) i)
    in
    let specs =
      placement ~config:params.Runner.config resource ~n_competitors
        ~competitor:(Ppp_apps.App.SYN level) ~target
    in
    match Runner.run ~params specs with
    | t :: competitors ->
        {
          competing_refs_per_sec =
            List.fold_left
              (fun acc (r : Ppp_hw.Engine.result) ->
                acc +. r.Ppp_hw.Engine.l3_refs_per_sec)
              0.0 competitors;
          drop = Runner.drop ~solo ~corun:t;
          target_hits_per_sec = t.Ppp_hw.Engine.l3_hits_per_sec;
        }
    | [] -> assert false
  in
  let points = Parallel.mapi run_level levels in
  let origin =
    {
      competing_refs_per_sec = 0.0;
      drop = 0.0;
      target_hits_per_sec = solo.Ppp_hw.Engine.l3_hits_per_sec;
    }
  in
  let sorted =
    List.sort
      (fun a b -> compare a.competing_refs_per_sec b.competing_refs_per_sec)
      (origin :: points)
  in
  { target; resource; solo_pps; points = sorted }

let to_series curve =
  Ppp_util.Series.of_points
    (List.map (fun p -> (p.competing_refs_per_sec, p.drop)) curve.points)
