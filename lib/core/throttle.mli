(** Containing hidden aggressiveness (Section 4).

    A flow might behave tamely during offline profiling and turn aggressive
    in production (e.g. on receiving a crafted packet). The paper's defense:
    monitor each flow's memory-reference rate with hardware counters and,
    when it exceeds the profiled rate, slow the flow down with a control
    element. [source] implements exactly that as a wrapper around a flow's
    engine source: it counts the references the flow issues, compares
    against the budget using the core's cycle counter, and inserts idle time
    until the average rate is back under budget. *)

val source :
  budget_refs_per_sec:float ->
  freq_hz:float ->
  Ppp_hw.Engine.source ->
  Ppp_hw.Engine.source
(** The wrapped flow's long-run memory-reference rate (loads + stores issued,
    of which L3 refs are a subset) never exceeds the budget. *)

val l3_budget_source :
  budget_l3_refs_per_sec:float ->
  hier:Ppp_hw.Hierarchy.t ->
  core:int ->
  freq_hz:float ->
  Ppp_hw.Engine.source ->
  Ppp_hw.Engine.source
(** Like {!source} but meters actual L3 refs/sec read from the core's
    performance counters (the quantity the paper's prediction cares about). *)

(** A flow that switches behaviour mid-run: tame for the first
    [switch_after] packets, then maximally aggressive — the paper's
    adversarial example of a flow that lies to offline profiling. *)
module Two_faced : sig
  val elements :
    heap:Ppp_simmem.Heap.t ->
    rng:Ppp_util.Rng.t ->
    buffer_bytes:int ->
    quiet_reads:int ->
    loud_reads:int ->
    switch_after:int ->
    Ppp_click.Element.t list

  val gen : Ppp_click.Flow.generator

  val source : unit -> Ppp_traffic.Source.t
  (** [gen] wrapped as a fresh single-flow {!Ppp_traffic.Source.t}. *)
end
