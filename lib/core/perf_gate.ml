(* The simulator's own benchmark: fig2-sized Engine.run workloads timed in
   wall-clock, plus an allocation audit of the cache-hit path.

   Every figure of the reproduction funnels through Engine.run, so this is
   the number that bounds how much simulated traffic the repo can afford.
   The gate reports replay throughput (engine ops/sec) and allocation per
   op, and records the bench trajectory: one entry per optimization round,
   kept as code so regenerating BENCH_engine.json never loses history. *)

type measurement = {
  name : string;
  flows : int;
  runs : int;
  wall_s : float;
  engine_ops : int;
  ops_per_sec : float;
  allocated_bytes_per_op : float;
  window_packets : int;
}

type hit_path = {
  accesses : int;
  allocated_bytes : float;
  bytes_per_access : float;
  zero_alloc : bool;
}

type flow_table = {
  lookups : int;
  entries : int;
  hit_fraction : float;
  ft_wall_s : float;
  lookups_per_sec : float;
  bytes_per_lookup : float;
  ft_zero_alloc : bool;
}

type source_fill = {
  fills : int;
  sf_wall_s : float;
  fills_per_sec : float;
  bytes_per_fill : float;
  sf_zero_alloc : bool;
}

type report = {
  config : string;
  seed : int;
  quick : bool;
  warmup_cycles : int;
  measure_cycles : int;
  batch : int;
  workloads : measurement list;
  profile_overhead : float;
  hit : hit_path;
  flow_table : flow_table;
  source_fill : source_fill;
}

type trajectory_point = {
  label : string;
  contended_ops_per_sec : float;
  contended_bytes_per_op : float;
  hit_path_bytes_per_access : float;
}

(* The recorded trajectory: full-length (non-quick) contended workload on
   the scaled machine, measured at commit time on the dev container. CI
   re-measures and only warns on drift (shared runners are noisy); the
   committed numbers are the history that matters. *)
let trajectory =
  [
    {
      label = "pre-heap engine (O(cores) min-scan, option-allocating caches)";
      contended_ops_per_sec = 2.962e6;
      contended_bytes_per_op = 295.9;
      hit_path_bytes_per_access = 79.7;
    };
    {
      label =
        "heap scheduler + sentinel cache probes + hoisted counters + raw \
         trace decode + single-pass victim_slot";
      contended_ops_per_sec = 4.536e6;
      contended_bytes_per_op = 13.2;
      hit_path_bytes_per_access = 1.2e-5;
    };
    {
      (* Wall-clock measured on a noticeably slower container day than the
         previous point (its spin calibration ran ~30% behind); the
         like-for-like wins of this round are the engine window going
         allocation-free (13.2 -> ~0 B/op, the residue is the measurement's
         own float boxing) and the probed workload closing on contended
         (3.74e6 vs 3.74e6 ops/s in the same gate run — the per-op
         sample-deadline check is now folded into the burst bound). *)
      label =
        "burst engine: run-ahead horizon batching, flat two-min scan \
         scheduler, way-predicted cache probes, merged L3 find-or-victim";
      contended_ops_per_sec = 3.87e6;
      contended_bytes_per_op = 0.05;
      hit_path_bytes_per_access = 1.2e-5;
    };
    {
      (* The engine is untouched this round — the ops/s delta vs the
         previous point is container noise again (same-day re-measures of
         the previous binary land in the same 2.4e6 band). What this round
         adds is the classifier fast path: Flow_table.find joins the gate
         as its own loop, entering at 5.2e6 lookups/s with the lookup path
         allocation-free like the cache-hit path before it. *)
      label =
        "classify subsystem: flow-table fast path over dual slow-path \
         backends; engine unchanged, find loop gated zero-alloc";
      contended_ops_per_sec = 2.375e6;
      contended_bytes_per_op = 0.05;
      hit_path_bytes_per_access = 1.2e-5;
    };
    {
      (* Every packet of every workload now goes through Source.fill plus
         the per-flow reordering detector. Keeping contended at 0.05 B/op
         took one redesign: the detector's flow state is a direct-mapped
         tag/mark array, not a hash table, because a 12.5k-flow workload
         inserts a fresh key (one boxed bucket cell) on almost every
         packet of a gate-sized window — measured at +0.85 B/op before
         the rewrite. Source.fill itself joins the gate as its own
         zero-alloc loop (heavy-tailed sampler, ~4.7e6 fills/s). The
         ops/s delta vs the previous point is container noise: a same-day
         HEAD re-measure ran at 4.1e6 ops/s. *)
      label =
        "traffic source layer: Source.fill on every packet path, \
         direct-mapped reorder detector, fill loop gated zero-alloc";
      contended_ops_per_sec = 4.526e6;
      contended_bytes_per_op = 0.05;
      hit_path_bytes_per_access = 1.2e-5;
    };
    {
      (* The profiler round: the engine hot path gains one branch on the
         attribution option per op, free when profiling is off — the
         measured +0.05 B/op vs the previous point is the two new per-core
         in-order/reordered latency histograms built once per window, not a
         per-op allocation (two ~8 KB bucket arrays per core over a 1.9M-op
         window). The new "profiled" workload runs the same contended
         window under the per-element profiler; this round it lands 6%
         behind contended, reported as profile_overhead. *)
      label =
        "per-element attribution profiler: opt-in Attrib counters on the \
         engine hot path, profiling-off window still zero-alloc per op, \
         profiled workload joins the gate";
      contended_ops_per_sec = 3.793e6;
      contended_bytes_per_op = 0.1;
      hit_path_bytes_per_access = 1.2e-5;
    };
  ]

let wall () = Ppp_telemetry.Span.now_s ()

(* Runner.run minus telemetry: rebuild machine and flows outside the timed
   section, so the measured interval is Engine.run alone. [attrib] runs the
   window under the per-element profiler — the attribution arrays are built
   in the rebuild section, so the timed delta is the profiler's steady-state
   cost (counter touches plus lazily created latency histograms). *)
let measure ~(params : Runner.params) ~runs ~probe ?(attrib = false) name specs
    =
  let best = ref infinity in
  let best_alloc = ref 0.0 in
  let ops = ref 0 in
  let packets = ref 0 in
  for _ = 1 to runs do
    (* Rebuild from the same seed each repetition: identical simulation,
       fresh mutable state. *)
    let config = params.Runner.config in
    let topo = config.Ppp_hw.Machine.topology in
    let hier = Ppp_hw.Machine.build config in
    let heaps =
      Array.init topo.Ppp_hw.Topology.sockets (fun node ->
          Ppp_simmem.Heap.create ~node)
    in
    let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
    let flows =
      List.map
        (fun (spec : Runner.spec) ->
          let label = Ppp_apps.App.name spec.Runner.kind in
          let flow =
            Ppp_apps.App.flow spec.Runner.kind
              ~heap:heaps.(spec.Runner.data_node)
              ~rng:(Ppp_util.Rng.split rng)
              ~scale:config.Ppp_hw.Machine.scale ~label ()
          in
          {
            Ppp_hw.Engine.core = spec.Runner.core;
            label;
            source = Ppp_click.Flow.source flow;
          })
        specs
    in
    let probe =
      if not probe then None
      else
        Some
          {
            Ppp_hw.Engine.sample_cycles =
              max 1 (params.Runner.measure_cycles / 20);
            on_sample = (fun (_ : Ppp_hw.Engine.sample) -> ());
          }
    in
    let attrib =
      if not attrib then None
      else Some (Ppp_hw.Attrib.create ~cores:(Ppp_hw.Topology.cores topo))
    in
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    let t0 = wall () in
    let results =
      Ppp_hw.Engine.run ?probe ?attrib ~batch:params.Runner.batch hier ~flows
        ~warmup_cycles:params.Runner.warmup_cycles
        ~measure_cycles:params.Runner.measure_cycles
    in
    let dt = wall () -. t0 in
    let da = Gc.allocated_bytes () -. a0 in
    ops :=
      List.fold_left
        (fun acc (r : Ppp_hw.Engine.result) -> acc + r.Ppp_hw.Engine.engine_ops)
        0 results;
    packets :=
      List.fold_left
        (fun acc (r : Ppp_hw.Engine.result) -> acc + r.Ppp_hw.Engine.packets)
        0 results;
    if dt < !best then begin
      best := dt;
      best_alloc := da
    end
  done;
  {
    name;
    flows = List.length specs;
    runs;
    wall_s = !best;
    engine_ops = !ops;
    ops_per_sec = float_of_int !ops /. !best;
    allocated_bytes_per_op = !best_alloc /. float_of_int (max 1 !ops);
    window_packets = !packets;
  }

(* The allocation audit: repeated L1 hits on one resident line. The engine's
   cache-hit path must not touch the minor heap at all — one Some box per
   access at fig2 rates is hundreds of MB of garbage per experiment. *)
let audit_hit_path ~accesses =
  let hier = Ppp_hw.Machine.build Ppp_hw.Machine.scaled in
  let addr = 4096 in
  (* Warm: first access faults the line in, second hits in L1. *)
  ignore
    (Ppp_hw.Hierarchy.access hier ~core:0 ~write:false ~fn:Ppp_hw.Fn.none ~addr
       ~now:0
      : int);
  ignore
    (Ppp_hw.Hierarchy.access hier ~core:0 ~write:false ~fn:Ppp_hw.Fn.none ~addr
       ~now:10
      : int);
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let sink = ref 0 in
  for i = 1 to accesses do
    sink :=
      !sink
      + Ppp_hw.Hierarchy.access hier ~core:0 ~write:false ~fn:Ppp_hw.Fn.none
          ~addr ~now:(20 + (10 * i))
  done;
  let da = Gc.allocated_bytes () -. a0 in
  ignore (Sys.opaque_identity !sink : int);
  {
    accesses;
    allocated_bytes = da;
    bytes_per_access = da /. float_of_int accesses;
    (* Slack for the float boxed by the Gc.allocated_bytes call itself. *)
    zero_alloc = da <= 256.0;
  }

(* The classifier fast path's inner loop: Flow_table.find over a pool of
   pre-parsed packets, 3/4 of whose flows are installed. The table is sized
   above the pool so the hit fraction is exactly 3/4 by construction (no
   evictions), making the rate comparable across rounds. Like the hit-path
   audit, the loop must be allocation-free: the classifier experiment pays
   it once per simulated packet. *)
let bench_flow_table ~lookups =
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let entries = 4096 in
  let ft = Ppp_classify.Flow_table.create ~heap ~entries () in
  let b = Ppp_hw.Trace.Builder.create () in
  let fn = Ppp_hw.Fn.none in
  let pool = 1024 in
  let pkts =
    Array.init pool (fun i ->
        let pkt = Ppp_net.Packet.create 60 in
        Ppp_traffic.Gen.fill_ipv4_udp pkt
          ~src:(0x0A000000 lor i)
          ~dst:(0x0B000000 lor (i * 131 land 0xFFFF))
          ~sport:(1024 + (i land 511))
          ~dport:443 ~wire_len:64;
        pkt)
  in
  Array.iteri
    (fun i pkt ->
      if i land 3 <> 0 then
        Ppp_classify.Flow_table.install ft b ~fn
          (Ppp_net.Flowid.of_packet pkt)
          (i land 0xFF))
    pkts;
  Ppp_hw.Trace.Builder.clear b;
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let t0 = wall () in
  let sink = ref 0 in
  for i = 0 to lookups - 1 do
    sink := !sink + Ppp_classify.Flow_table.find ft b ~fn pkts.(i land (pool - 1));
    Ppp_hw.Trace.Builder.clear b
  done;
  let dt = wall () -. t0 in
  let da = Gc.allocated_bytes () -. a0 in
  ignore (Sys.opaque_identity !sink : int);
  {
    lookups;
    entries = Ppp_classify.Flow_table.capacity ft;
    hit_fraction =
      float_of_int (Ppp_classify.Flow_table.hits ft) /. float_of_int lookups;
    ft_wall_s = dt;
    lookups_per_sec = float_of_int lookups /. dt;
    bytes_per_lookup = da /. float_of_int lookups;
    ft_zero_alloc = da <= 256.0;
  }

(* The Source.fill hot path: a heavy-tailed source (the worst of the
   built-in models — size-weighted sampling plus full frame construction)
   filling one preallocated packet in a tight loop. Every simulated packet
   of every experiment pays this path, and the built-in sources promise
   integer-only sampling — the audit catches any boxed float or closure
   sneaking into a fill. *)
let audit_source_fill ~fills =
  let ht =
    Ppp_traffic.Heavy_tail.create ~seed:42 ~flows:4096 ~alpha:1.1 ()
  in
  let rng = Ppp_util.Rng.create ~seed:7 in
  let src = Ppp_traffic.Heavy_tail.source ht ~rng () in
  let pkt = Ppp_net.Packet.create 60 in
  let fill_one () =
    match Ppp_traffic.Source.fill src pkt with
    | Ppp_traffic.Source.Filled -> ()
    | Ppp_traffic.Source.Exhausted -> assert false
  in
  (* Warm: fault in the source's arrays before the audited window. *)
  for _ = 1 to 1024 do
    fill_one ()
  done;
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let t0 = wall () in
  for _ = 1 to fills do
    fill_one ()
  done;
  let dt = wall () -. t0 in
  let da = Gc.allocated_bytes () -. a0 in
  {
    fills;
    sf_wall_s = dt;
    fills_per_sec = float_of_int fills /. dt;
    bytes_per_fill = da /. float_of_int fills;
    sf_zero_alloc = da <= 256.0;
  }

let target = Ppp_apps.App.IP
let competitor = Ppp_apps.App.MON

let run ?(quick = false) ?(runs = if quick then 1 else 3)
    ?(batch = Runner.default_params.Runner.batch) () =
  let params =
    let p = { Runner.default_params with Runner.batch = batch } in
    if quick then
      {
        p with
        Runner.warmup_cycles = p.Runner.warmup_cycles / 4;
        measure_cycles = p.Runner.measure_cycles / 4;
      }
    else p
  in
  let config = params.Runner.config in
  let solo = [ Runner.flow_on ~core:0 target ] in
  let contended =
    Sensitivity.placement ~config Sensitivity.Both
      ~n_competitors:(min 5 (Ppp_hw.Machine.cores_per_socket config - 1))
      ~competitor ~target
  in
  let workloads =
    [
      measure ~params ~runs ~probe:false "solo" solo;
      measure ~params ~runs ~probe:false "contended" contended;
      measure ~params ~runs ~probe:true "probed" contended;
      (* The contended workload again, under the per-element profiler: the
         simulation is byte-identical (attribution is pure observation), so
         the ops/s gap against "contended" is the profiler's whole price. *)
      measure ~params ~runs ~probe:false ~attrib:true "profiled" contended;
    ]
  in
  let ops name =
    match List.find_opt (fun m -> m.name = name) workloads with
    | Some m -> m.ops_per_sec
    | None -> 0.0
  in
  {
    config = config.Ppp_hw.Machine.name;
    seed = params.Runner.seed;
    quick;
    warmup_cycles = params.Runner.warmup_cycles;
    measure_cycles = params.Runner.measure_cycles;
    batch = params.Runner.batch;
    workloads;
    (* Fraction of contended throughput lost with profiling on; can dip
       slightly negative under wall-clock noise. *)
    profile_overhead = 1.0 -. (ops "profiled" /. ops "contended");
    hit = audit_hit_path ~accesses:1_000_000;
    flow_table = bench_flow_table ~lookups:1_000_000;
    source_fill = audit_source_fill ~fills:1_000_000;
  }

let json_of_measurement m =
  Ppp_telemetry.Json.Obj
    [
      ("name", Ppp_telemetry.Json.Str m.name);
      ("flows", Ppp_telemetry.Json.Int m.flows);
      ("runs", Ppp_telemetry.Json.Int m.runs);
      ("wall_s", Ppp_telemetry.Json.Float m.wall_s);
      ("engine_ops", Ppp_telemetry.Json.Int m.engine_ops);
      ("ops_per_sec", Ppp_telemetry.Json.Float m.ops_per_sec);
      ( "allocated_bytes_per_op",
        Ppp_telemetry.Json.Float m.allocated_bytes_per_op );
      ("window_packets", Ppp_telemetry.Json.Int m.window_packets);
    ]

let to_json r =
  Ppp_telemetry.Json.Obj
    [
      ("schema", Ppp_telemetry.Json.Str "ppp-bench-engine/5");
      ("tool", Ppp_telemetry.Json.Str "bench --perf-gate");
      ("config", Ppp_telemetry.Json.Str r.config);
      ("seed", Ppp_telemetry.Json.Int r.seed);
      ("quick", Ppp_telemetry.Json.Bool r.quick);
      ("warmup_cycles", Ppp_telemetry.Json.Int r.warmup_cycles);
      ("measure_cycles", Ppp_telemetry.Json.Int r.measure_cycles);
      ("batch", Ppp_telemetry.Json.Int r.batch);
      ("workloads", Ppp_telemetry.Json.Arr (List.map json_of_measurement r.workloads));
      ("profile_overhead", Ppp_telemetry.Json.Float r.profile_overhead);
      ( "hit_path",
        Ppp_telemetry.Json.Obj
          [
            ("accesses", Ppp_telemetry.Json.Int r.hit.accesses);
            ("allocated_bytes", Ppp_telemetry.Json.Float r.hit.allocated_bytes);
            ( "bytes_per_access",
              Ppp_telemetry.Json.Float r.hit.bytes_per_access );
            ("zero_alloc", Ppp_telemetry.Json.Bool r.hit.zero_alloc);
          ] );
      ( "flow_table",
        Ppp_telemetry.Json.Obj
          [
            ("lookups", Ppp_telemetry.Json.Int r.flow_table.lookups);
            ("entries", Ppp_telemetry.Json.Int r.flow_table.entries);
            ( "hit_fraction",
              Ppp_telemetry.Json.Float r.flow_table.hit_fraction );
            ("wall_s", Ppp_telemetry.Json.Float r.flow_table.ft_wall_s);
            ( "lookups_per_sec",
              Ppp_telemetry.Json.Float r.flow_table.lookups_per_sec );
            ( "bytes_per_lookup",
              Ppp_telemetry.Json.Float r.flow_table.bytes_per_lookup );
            ( "zero_alloc",
              Ppp_telemetry.Json.Bool r.flow_table.ft_zero_alloc );
          ] );
      ( "source_fill",
        Ppp_telemetry.Json.Obj
          [
            ("fills", Ppp_telemetry.Json.Int r.source_fill.fills);
            ("wall_s", Ppp_telemetry.Json.Float r.source_fill.sf_wall_s);
            ( "fills_per_sec",
              Ppp_telemetry.Json.Float r.source_fill.fills_per_sec );
            ( "bytes_per_fill",
              Ppp_telemetry.Json.Float r.source_fill.bytes_per_fill );
            ( "zero_alloc",
              Ppp_telemetry.Json.Bool r.source_fill.sf_zero_alloc );
          ] );
      ( "trajectory",
        Ppp_telemetry.Json.Arr
          (List.map
             (fun p ->
               Ppp_telemetry.Json.Obj
                 [
                   ("label", Ppp_telemetry.Json.Str p.label);
                   ( "contended_ops_per_sec",
                     Ppp_telemetry.Json.Float p.contended_ops_per_sec );
                   ( "contended_bytes_per_op",
                     Ppp_telemetry.Json.Float p.contended_bytes_per_op );
                   ( "hit_path_bytes_per_access",
                     Ppp_telemetry.Json.Float p.hit_path_bytes_per_access );
                 ])
             trajectory) );
    ]

let required_keys =
  [
    "schema"; "tool"; "config"; "seed"; "quick"; "warmup_cycles";
    "measure_cycles"; "batch"; "workloads"; "profile_overhead"; "hit_path";
    "flow_table"; "source_fill"; "trajectory";
  ]
