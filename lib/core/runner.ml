type spec = { kind : Ppp_apps.App.kind; core : int; data_node : int }

let flow_on ?node ~core kind =
  let data_node =
    match node with
    | Some n -> n
    | None ->
        let topo = Ppp_hw.Machine.scaled.Ppp_hw.Machine.topology in
        Ppp_hw.Topology.socket_of_core topo core
  in
  { kind; core; data_node }

type classifier = Tss | Range | All_backends

let classifier_name = function
  | Tss -> "tss"
  | Range -> "range"
  | All_backends -> "all"

let classifier_of_name = function
  | "tss" -> Some Tss
  | "range" -> Some Range
  | "all" -> Some All_backends
  | _ -> None

type traffic_model = Heavy_tail | Onoff | Churn | All_models

let traffic_name = function
  | Heavy_tail -> "heavy"
  | Onoff -> "onoff"
  | Churn -> "churn"
  | All_models -> "all"

let traffic_of_name = function
  | "heavy" | "heavy_tail" | "heavy-tail" -> Some Heavy_tail
  | "onoff" | "on-off" -> Some Onoff
  | "churn" -> Some Churn
  | "all" -> Some All_models
  | _ -> None

type steering = Rss | Flow_director | Both_steerings

let steering_name = function
  | Rss -> "rss"
  | Flow_director -> "fdir"
  | Both_steerings -> "all"

let steering_of_name = function
  | "rss" -> Some Rss
  | "fdir" | "flow-director" | "flow_director" -> Some Flow_director
  | "all" -> Some Both_steerings
  | _ -> None

type params = {
  config : Ppp_hw.Machine.config;
  seed : int;
  warmup_cycles : int;
  measure_cycles : int;
  batch : int;
  cell : string;
  classifier : classifier;
  traffic : traffic_model;
  steering : steering;
  profile : bool;
}

let default_params =
  {
    config = Ppp_hw.Machine.scaled;
    seed = 42;
    warmup_cycles = 3_000_000;
    measure_cycles = 10_000_000;
    batch = 32;
    cell = "";
    classifier = All_backends;
    traffic = All_models;
    steering = Both_steerings;
    profile = false;
  }

let quick_params =
  {
    config = Ppp_hw.Machine.tiny;
    seed = 42;
    warmup_cycles = 300_000;
    measure_cycles = 1_000_000;
    batch = 32;
    cell = "";
    classifier = All_backends;
    traffic = All_models;
    steering = Both_steerings;
    profile = false;
  }

module Params = struct
  type t = params

  let default = default_params
  let quick = quick_params
  let with_config config p = { p with config }
  let with_seed seed p = { p with seed }

  let with_windows ~warmup ~measure p =
    { p with warmup_cycles = warmup; measure_cycles = measure }

  let with_batch batch p = { p with batch }
  let with_cell cell p = { p with cell }
  let with_classifier classifier p = { p with classifier }
  let with_traffic traffic p = { p with traffic }
  let with_steering steering p = { p with steering }
  let with_profile profile p = { p with profile }
end

let run ?(params = default_params) ?probe ?wrap specs =
  if specs = [] then invalid_arg "Runner.run: no flows";
  let t_wall = Ppp_telemetry.Span.now_s () in
  let config = params.config in
  let topo = config.Ppp_hw.Machine.topology in
  let hier = Ppp_hw.Machine.build config in
  let heaps =
    Array.init topo.Ppp_hw.Topology.sockets (fun node ->
        Ppp_simmem.Heap.create ~node)
  in
  let rng = Ppp_util.Rng.create ~seed:params.seed in
  let flows =
    List.map
      (fun spec ->
        if spec.core < 0 || spec.core >= Ppp_hw.Topology.cores topo then
          invalid_arg "Runner.run: core out of range";
        if spec.data_node < 0 || spec.data_node >= Array.length heaps then
          invalid_arg "Runner.run: node out of range";
        let label = Ppp_apps.App.name spec.kind in
        let flow =
          Ppp_apps.App.flow spec.kind ~heap:heaps.(spec.data_node)
            ~rng:(Ppp_util.Rng.split rng)
            ~scale:config.Ppp_hw.Machine.scale ~label ()
        in
        let source = Ppp_click.Flow.source flow in
        let source =
          match wrap with
          | Some w -> w hier ~core:spec.core source
          | None -> source
        in
        { Ppp_hw.Engine.core = spec.core; label; source })
      specs
  in
  (* Telemetry is a no-op unless the CLI configured the recorder. The
     sampler observes the cell's counters in simulated time (deterministic);
     the span observes the cell itself in wall-clock time. *)
  let sampler =
    match Ppp_telemetry.Recorder.sampling () with
    | Some sample_cycles ->
        Some (Ppp_telemetry.Sampler.create ~cell:params.cell ~sample_cycles)
    | None -> None
  in
  let sampler_probe = Option.map Ppp_telemetry.Sampler.probe sampler in
  (* Tee the caller's probe with the telemetry sampler. The engine supports a
     single probe, and the two consumers must agree on the slice grid for the
     sample stream to mean the same thing to both. *)
  let probe =
    match (probe, sampler_probe) with
    | None, p | p, None -> p
    | Some a, Some b ->
        if a.Ppp_hw.Engine.sample_cycles <> b.Ppp_hw.Engine.sample_cycles then
          invalid_arg
            "Runner.run: probe sample_cycles must match the telemetry \
             recorder's sampling period";
        Some
          {
            Ppp_hw.Engine.sample_cycles = a.Ppp_hw.Engine.sample_cycles;
            on_sample =
              (fun s ->
                a.Ppp_hw.Engine.on_sample s;
                b.Ppp_hw.Engine.on_sample s);
          }
  in
  (* Attribution accumulators exist only when the caller asked to profile;
     the engine's unprofiled path is the hot one and stays untouched. *)
  let attrib =
    if params.profile then
      Some (Ppp_hw.Attrib.create ~cores:(Ppp_hw.Topology.cores topo))
    else None
  in
  let results =
    Ppp_hw.Engine.run ?probe ?attrib ~batch:params.batch hier ~flows
      ~warmup_cycles:params.warmup_cycles
      ~measure_cycles:params.measure_cycles
  in
  (match attrib with
  | Some at ->
      let label_of_core core =
        match
          List.find_opt
            (fun (f : Ppp_hw.Engine.flow) -> f.Ppp_hw.Engine.core = core)
            flows
        with
        | Some f -> f.Ppp_hw.Engine.label
        | None -> "(idle)"
      in
      Ppp_telemetry.Profile.record at
        ~cell:(if params.cell = "" then "run" else params.cell)
        ~flow:(fun ~core -> label_of_core core)
  | None -> ());
  (match sampler with
  | Some s ->
      Ppp_telemetry.Recorder.add_series
        (Ppp_telemetry.Sampler.series s
           ~experiment:(Ppp_telemetry.Recorder.current_experiment ())
           ~freq_hz:config.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz)
  | None -> ());
  if Ppp_telemetry.Recorder.spans_enabled () then
    Ppp_telemetry.Recorder.add_span
      {
        Ppp_telemetry.Span.name =
          (if params.cell = "" then "runner.run" else params.cell);
        cat = "runner";
        domain = (Domain.self () :> int);
        start_s = t_wall;
        dur_s = Ppp_telemetry.Span.now_s () -. t_wall;
        queue_s = 0.0;
        args =
          [
            ("seed", string_of_int params.seed);
            ("flows", string_of_int (List.length specs));
            ("config", config.Ppp_hw.Machine.name);
          ];
      };
  results

let run ?params ?probe ?wrap specs =
  (* Results come back in input order already (Engine preserves it). *)
  run ?params ?probe ?wrap specs

let cell_params params label =
  { params with seed = Ppp_util.Rng.derive ~seed:params.seed label;
    cell = label }

let with_cell params label = { params with cell = label }

let solo ?(params = default_params) kind =
  (* A pure function of (params, kind): the seed is derived from the kind's
     name, so a solo baseline computed anywhere — any experiment, any cell
     order, any job count — is the same simulation. *)
  let params = cell_params params ("solo/" ^ Ppp_apps.App.name kind) in
  match run ~params [ flow_on ~core:0 kind ] with
  | [ r ] -> r
  | _ -> assert false

let drop ~solo ~corun =
  let ts = solo.Ppp_hw.Engine.throughput_pps in
  (ts -. corun.Ppp_hw.Engine.throughput_pps) /. ts

let competing_refs_per_sec results ~target =
  List.fold_left
    (fun acc (r : Ppp_hw.Engine.result) ->
      if r.Ppp_hw.Engine.core = target.Ppp_hw.Engine.core then acc
      else acc +. r.Ppp_hw.Engine.l3_refs_per_sec)
    0.0 results
