type t = {
  kind : Ppp_apps.App.kind;
  throughput_pps : float;
  cycles_per_instruction : float;
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  cycles_per_packet : float;
  l3_refs_per_packet : float;
  l3_misses_per_packet : float;
  l2_hits_per_packet : float;
  l1_hits_per_packet : float;
}

let of_result kind (r : Ppp_hw.Engine.result) =
  let c = r.Ppp_hw.Engine.counters in
  let packets = float_of_int (max 1 r.Ppp_hw.Engine.packets) in
  let per_packet n = float_of_int n /. packets in
  {
    kind;
    throughput_pps = r.Ppp_hw.Engine.throughput_pps;
    cycles_per_instruction =
      float_of_int r.Ppp_hw.Engine.window_cycles
      /. float_of_int (max 1 (Ppp_hw.Counters.instructions c));
    l3_refs_per_sec = r.Ppp_hw.Engine.l3_refs_per_sec;
    l3_hits_per_sec = r.Ppp_hw.Engine.l3_hits_per_sec;
    cycles_per_packet = float_of_int r.Ppp_hw.Engine.window_cycles /. packets;
    l3_refs_per_packet = per_packet (Ppp_hw.Counters.l3_refs c);
    l3_misses_per_packet = per_packet (Ppp_hw.Counters.l3_misses c);
    l2_hits_per_packet = per_packet (Ppp_hw.Counters.l2_hits c);
    l1_hits_per_packet = per_packet (Ppp_hw.Counters.l1_hits c);
  }

let solo ?params kind = of_result kind (Runner.solo ?params kind)

(* One cell per kind; Runner.solo derives each cell's seed from the kind. *)
let table1 ?params kinds = Parallel.map (solo ?params) kinds

let to_table profiles =
  let open Ppp_util in
  let t =
    Table.create
      ~title:"Table 1: solo-run characteristics of each packet-processing type"
      [
        "Flow";
        "cycles/instr";
        "L3 refs/sec (M)";
        "L3 hits/sec (M)";
        "cycles/packet";
        "L3 refs/packet";
        "L3 misses/packet";
        "L2 hits/packet";
      ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Ppp_apps.App.name p.kind;
          Table.cell_f p.cycles_per_instruction;
          Table.cell_millions p.l3_refs_per_sec;
          Table.cell_millions p.l3_hits_per_sec;
          Printf.sprintf "%.0f" p.cycles_per_packet;
          Table.cell_f p.l3_refs_per_packet;
          Table.cell_f p.l3_misses_per_packet;
          Table.cell_f p.l2_hits_per_packet;
        ])
    profiles;
  t
