type entry = {
  solo_refs : float;
  solo_pps : float;
  series : Ppp_util.Series.t;
}

type t = (Ppp_apps.App.kind * entry) list

let build ?(params = Runner.default_params) ?levels ~targets () =
  Parallel.map
    (fun kind ->
      let curve = Sensitivity.measure ~params ?levels ~resource:Sensitivity.Both kind in
      let solo = Runner.solo ~params kind in
      ( kind,
        {
          solo_refs = solo.Ppp_hw.Engine.l3_refs_per_sec;
          solo_pps = solo.Ppp_hw.Engine.throughput_pps;
          series = Sensitivity.to_series curve;
        } ))
    targets

let find t kind =
  match List.assoc_opt kind t with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Predictor: kind %s was not profiled"
           (Ppp_apps.App.name kind))

let solo_refs_per_sec t kind = (find t kind).solo_refs
let solo_throughput t kind = (find t kind).solo_pps
let curve t kind = (find t kind).series

let predict_drop_at t ~target ~refs_per_sec =
  Ppp_util.Series.eval (find t target).series refs_per_sec

let predict_drop t ~target ~competitors =
  let refs =
    List.fold_left (fun acc c -> acc +. (find t c).solo_refs) 0.0 competitors
  in
  predict_drop_at t ~target ~refs_per_sec:refs

let predict_throughput t ~target ~competitors =
  (find t target).solo_pps *. (1.0 -. predict_drop t ~target ~competitors)

let predict_mix t mix =
  List.mapi
    (fun i target ->
      let competitors = List.filteri (fun j _ -> j <> i) mix in
      let drop = predict_drop t ~target ~competitors in
      (target, drop, (find t target).solo_pps *. (1.0 -. drop)))
    mix
