(* A small fixed worker pool over OCaml 5 domains.

   Experiment cells are pure (each builds its own machine, heaps and RNG
   streams from a derived seed), so fanning them out is safe; results are
   written into per-index slots and reassembled in input order, which is
   what makes parallel output byte-identical to sequential. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* 0 = auto (physical cores). Set once from the CLI; read by every map. *)
let setting = Atomic.make 0

let set_jobs n =
  if n < 0 then invalid_arg "Parallel.set_jobs: negative job count";
  Atomic.set setting n

let configured_jobs () = Atomic.get setting

let jobs () =
  let n = Atomic.get setting in
  if n > 0 then n else default_jobs ()

let sequential_mapi f xs = List.mapi f xs

(* When span collection is on, each work item reports its queue wait (time
   between fan-out and a worker picking it up) and run wall-clock. Purely
   observational: failures skip the span, and the span never touches the
   result. *)
let with_item_span ~t_queue i f =
  if not (Ppp_telemetry.Recorder.spans_enabled ()) then f ()
  else begin
    let t_start = Ppp_telemetry.Span.now_s () in
    let r = f () in
    Ppp_telemetry.Recorder.add_span
      {
        Ppp_telemetry.Span.name = Printf.sprintf "cell[%d]" i;
        cat = "parallel";
        domain = (Domain.self () :> int);
        start_s = t_start;
        dur_s = Ppp_telemetry.Span.now_s () -. t_start;
        queue_s = t_start -. t_queue;
        args = [ ("index", string_of_int i) ];
      };
    r
  end

(* Work-stealing by index from a shared counter. Only the main domain fans
   out: nested calls (a parallel experiment whose cells themselves call a
   parallel helper) degrade to sequential inside workers, bounding the pool
   at [jobs] domains total. *)
let pooled_mapi ~jobs f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let results = Array.make n None in
  let error = Atomic.make None in
  let next = Atomic.make 0 in
  let t_queue = Ppp_telemetry.Span.now_s () in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (match with_item_span ~t_queue i (fun () -> f i input.(i)) with
      | r -> results.(i) <- Some r
      | exception e ->
          (* Keep the lowest-index failure: it is the one a sequential run
             would have raised. *)
          let rec record () =
            match Atomic.get error with
            | Some (j, _) when j < i -> ()
            | cur ->
                if not (Atomic.compare_and_set error cur (Some (i, e))) then
                  record ()
          in
          record ());
      worker ()
    end
  in
  let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  (match Atomic.get error with Some (_, e) -> raise e | None -> ());
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) results)

let mapi ?jobs:j f xs =
  let requested = match j with Some n when n > 0 -> n | _ -> jobs () in
  let n = List.length xs in
  let jobs = min requested n in
  if jobs <= 1 || not (Domain.is_main_domain ()) then sequential_mapi f xs
  else pooled_mapi ~jobs f xs

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs

let iter ?jobs f xs = ignore (map ?jobs f xs : unit list)
