open Ppp_core

type data = {
  pairs : Exp_common.pair_result list;
  averages : (Ppp_apps.App.kind * float) list;
  n_competitors : int;
}

let measure ?(params = Runner.default_params) () =
  let kinds = Exp_common.realistic in
  let n_competitors = Exp_common.default_competitors params.Runner.config in
  let solos = Exp_common.solo_results ~params kinds in
  let pairs = Exp_common.pair_matrix ~params ~solos ~n_competitors kinds in
  { pairs; averages = Exp_common.avg_drop_per_target pairs; n_competitors }

let render data =
  let kinds = Exp_common.realistic in
  let open Ppp_util in
  let n = data.n_competitors in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 2(a): performance drop (%%) of target X against %d \
            co-runner%s of type Y"
           n
           (if n = 1 then "" else "s"))
      ("target \\ co-runners"
      :: List.map (fun k -> Printf.sprintf "%d %s" n (Ppp_apps.App.name k)) kinds)
  in
  List.iter
    (fun target ->
      Table.add_row t
        (Ppp_apps.App.name target
        :: List.map
             (fun competitor ->
               Exp_common.pct
                 (Exp_common.find_pair data.pairs ~target ~competitor).Exp_common.drop)
             kinds))
    kinds;
  let avg =
    Table.create
      ~title:"Figure 2(b): average drop (%) per target type across scenarios"
      [ "target"; "average drop (%)" ]
  in
  List.iter
    (fun k ->
      match List.assoc_opt k data.averages with
      | Some d ->
          Table.add_row avg [ Ppp_apps.App.name k; Exp_common.pct d ]
      | None -> ())
    kinds;
  Table.to_string t ^ "\n" ^ Table.to_string avg

let run ?params () = render (measure ?params ())
