open Ppp_core

type data = {
  pairs : Exp_common.pair_result list;
  averages : (Ppp_apps.App.kind * float) list;
  n_competitors : int;
}

let measure ?(params = Runner.default_params) () =
  let kinds = Exp_common.realistic in
  let n_competitors = Exp_common.default_competitors params.Runner.config in
  let solos = Exp_common.solo_results ~params kinds in
  let pairs = Exp_common.pair_matrix ~params ~solos ~n_competitors kinds in
  { pairs; averages = Exp_common.avg_drop_per_target pairs; n_competitors }

let render data =
  let kinds = Exp_common.realistic in
  let open Ppp_util in
  let n = data.n_competitors in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 2(a): performance drop (%%) of target X against %d \
            co-runner%s of type Y"
           n
           (if n = 1 then "" else "s"))
      ("target \\ co-runners"
      :: List.map (fun k -> Printf.sprintf "%d %s" n (Ppp_apps.App.name k)) kinds)
  in
  List.iter
    (fun target ->
      Table.add_row t
        (Ppp_apps.App.name target
        :: List.map
             (fun competitor ->
               Exp_common.pct
                 (Exp_common.find_pair data.pairs ~target ~competitor).Exp_common.drop)
             kinds))
    kinds;
  let avg =
    Table.create
      ~title:"Figure 2(b): average drop (%) per target type across scenarios"
      [ "target"; "average drop (%)" ]
  in
  List.iter
    (fun k ->
      match List.assoc_opt k data.averages with
      | Some d ->
          Table.add_row avg [ Ppp_apps.App.name k; Exp_common.pct d ]
      | None -> ())
    kinds;
  Table.to_string t ^ "\n" ^ Table.to_string avg

let data_json data =
  let open Output in
  Json.Obj
    [
      ("n_competitors", Json.Int data.n_competitors);
      ( "pairs",
        table
          [
            Col.str "target" (fun (p : Exp_common.pair_result) ->
                Ppp_apps.App.name p.Exp_common.target);
            Col.str "competitor" (fun p ->
                Ppp_apps.App.name p.Exp_common.competitor);
            Col.num "drop" (fun p -> p.Exp_common.drop);
            Col.num "competing_refs_per_sec" (fun p ->
                p.Exp_common.competing_refs_per_sec);
          ]
          data.pairs );
      ( "averages",
        table
          [
            Col.str "target" (fun (k, _) -> Ppp_apps.App.name k);
            Col.num "avg_drop" snd;
          ]
          data.averages );
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
