(** Figure 9: predicted vs measured drop for a mixed workload — 2 MON,
    2 VPN, 1 FW and 1 RE flow sharing one socket. *)

type flow_check = {
  kind : Ppp_apps.App.kind;
  measured_drop : float;
  predicted_drop : float;
}

type data = { flows : flow_check list; max_error : float }

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
