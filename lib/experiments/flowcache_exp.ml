open Ppp_core

type cell = {
  scenario : string;
  plain_pps : float;
  cached_pps : float;
  speedup : float;
  hit_rate : float;
}

type data = { cells : cell list }

(* A smaller flow universe than MON's so the cache converges within the
   measurement window (packets per flow >> 1); a realistic edge-router
   setting where a moderate number of heavy flows dominates. *)
let universe = 2000

(* Build an IP flow whose lookup element is either the plain trie chain or
   the flow-cache fast path; identical trie, traffic and state sizes. *)
let build_flow ~params ~heap ~rng ~cached =
  let config = params.Runner.config in
  let scale = config.Ppp_hw.Machine.scale in
  let s16 = max 16 (4096 / scale) and routes = max 64 (131072 / scale) in
  let pool =
    Ppp_apps.Route_pool.make ~seed:(0x51CC5EED + (scale * 7919)) ~n16:s16
      ~routes
  in
  let trie =
    Ppp_apps.Radix_trie.create ~heap
      ~max_nodes:(Ppp_apps.Route_pool.suggested_max_nodes ~n16:s16 ~routes)
      ~default_hop:0 ()
  in
  Ppp_apps.Route_pool.install pool trie;
  let hop_table =
    Ppp_simmem.Iarray.init heap ~elem_bytes:16 (min routes 65536) (fun i -> i)
  in
  let gen_rng = Ppp_util.Rng.split rng in
  let seqs = Array.make universe 0 in
  let source () =
    Ppp_traffic.Source.make ~name:"uniform-universe"
      ~fill:(fun s pkt ->
        let f = Ppp_util.Rng.int gen_rng universe in
        let h = Ppp_util.Hashes.fnv1a_int (f lxor 0x5bd1e995) in
        Ppp_traffic.Gen.fill_ipv4_udp pkt
          ~src:(0x0A000000 lor (h land 0xFFFFFF))
          ~dst:(Ppp_apps.Route_pool.dst_of_flow pool f)
          ~sport:(1024 + ((h lsr 24) land 0x3FFF))
          ~dport:(1024 + ((h lsr 40) land 0x3FFF))
          ~wire_len:64;
        let seq = seqs.(f) in
        seqs.(f) <- seq + 1;
        Ppp_traffic.Source.set_meta s ~flow:f ~seq;
        Ppp_traffic.Source.Filled)
      ()
  in
  if not cached then
    ( Ppp_click.Flow.create ~heap ~rng ~label:"IP" ~source:(source ())
        ~elements:(Ppp_apps.Ip_elements.forwarding_chain ~hop_table trie)
        (),
      None )
  else begin
    let fc = Ppp_apps.Flow_cache.create ~heap ~entries:(4 * universe) in
    let elements =
      [
        Ppp_apps.Ip_elements.check_ip_header ();
        Ppp_apps.Flow_cache.lookup_element fc ~trie ~hop_table ();
        Ppp_apps.Ip_elements.dec_ip_ttl ();
      ]
    in
    ( Ppp_click.Flow.create ~heap ~rng ~label:"IP+cache" ~source:(source ())
        ~elements (),
      Some fc )
  end

let run_one ~params ~cached ~with_competitors =
  let config = params.Runner.config in
  let hier = Ppp_hw.Machine.build config in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let flow, fc = build_flow ~params ~heap ~rng:(Ppp_util.Rng.split rng) ~cached in
  let target =
    { Ppp_hw.Engine.core = 0; label = "t"; source = Ppp_click.Flow.source flow }
  in
  let competitors =
    if not with_competitors then []
    else
      List.init
        (min 5 (Ppp_hw.Machine.cores_per_socket config - 1))
        (fun i ->
          let f =
            Ppp_apps.App.flow Ppp_apps.App.syn_max ~heap
              ~rng:(Ppp_util.Rng.split rng)
              ~scale:config.Ppp_hw.Machine.scale ()
          in
          {
            Ppp_hw.Engine.core = 1 + i;
            label = "SYN_MAX";
            source = Ppp_click.Flow.source f;
          })
  in
  let results =
    Ppp_hw.Engine.run hier
      ~flows:(target :: competitors)
      ~warmup_cycles:params.Runner.warmup_cycles
      ~measure_cycles:params.Runner.measure_cycles
  in
  let pps = (List.hd results).Ppp_hw.Engine.throughput_pps in
  let hit_rate =
    match fc with
    | None -> 0.0
    | Some fc ->
        let h = Ppp_apps.Flow_cache.hits fc and m = Ppp_apps.Flow_cache.misses fc in
        float_of_int h /. float_of_int (max 1 (h + m))
  in
  (pps, hit_rate)

let measure ?(params = Runner.default_params) () =
  let cell scenario with_competitors =
    let plain, _ = run_one ~params ~cached:false ~with_competitors in
    let cached, hit_rate = run_one ~params ~cached:true ~with_competitors in
    { scenario; plain_pps = plain; cached_pps = cached; speedup = cached /. plain; hit_rate }
  in
  { cells = [ cell "solo" false; cell "vs 5 SYN_MAX" true ] }

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:"Flow-cache fast path: speedup over plain LPM, solo vs contended"
      [ "scenario"; "plain pps"; "cached pps"; "speedup"; "cache hit rate (%)" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.scenario;
          Printf.sprintf "%.0f" c.plain_pps;
          Printf.sprintf "%.0f" c.cached_pps;
          Printf.sprintf "%.2fx" c.speedup;
          Exp_common.pct c.hit_rate;
        ])
    data.cells;
  let solo = List.hd data.cells and contended = List.nth data.cells 1 in
  Table.to_string t
  ^ Printf.sprintf
      "\nthe fast path's advantage moves from %.2fx (solo) to %.2fx under \
       contention: every avoided trie reference is one whose cost \
       contention inflated, so shrinking a flow's reference footprint is a \
       contention-mitigation lever.\n"
      solo.speedup contended.speedup

let data_json data =
  let open Output in
  table
    [
      Col.str "scenario" (fun c -> c.scenario);
      Col.num "plain_pps" (fun c -> c.plain_pps);
      Col.num "cached_pps" (fun c -> c.cached_pps);
      Col.num "speedup" (fun c -> c.speedup);
      Col.num "hit_rate" (fun c -> c.hit_rate);
    ]
    data.cells

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
