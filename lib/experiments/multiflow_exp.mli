(** Section 6: what changes when one core runs several flows.

    The paper restricts its method to one flow per core, noting that
    multiplexed flows additionally compete for the private L1/L2 caches, so
    L3-based profiling would no longer suffice. This experiment quantifies
    that: a DPI and an FW flow run (a) on two separate cores and (b)
    multiplexed on a single core. Alone on a core, the firewall's rules
    live in its L1/L2; multiplexed with DPI (whose automaton streams
    through the private caches between every two FW packets) the rule
    references escalate to the shared L3 — an effect invisible to the
    solo L3 profile. *)

type side = {
  label : string;
  total_pps : float;
  fw_rule_l3_refs_per_fw_packet : float;
      (** firewall-rule references that reached the shared L3, per firewall
          packet — near zero when the rules stay in the private caches *)
  fw_rule_l3_miss_per_fw_packet : float;
}

type data = {
  separate : side;  (** DPI and FW on their own cores *)
  multiplexed : side;  (** both round-robin on one core *)
  escalation : float;
      (** multiplexed / separate rule-refs-at-L3 per packet (>> 1 when
          private-cache contention appears) *)
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
