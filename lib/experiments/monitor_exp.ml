open Ppp_core
module Detector = Ppp_monitor.Detector
module Report = Ppp_monitor.Report

(* A short SYN ramp: the monitor only needs the victim's curve for online
   prediction, not a publication-quality Figure 4. *)
let default_levels =
  List.map
    (fun (reads, instrs) -> { Ppp_apps.App.reads; instrs })
    [ (2, 80_000); (16, 6_000); (32, 1_200); (64, 400); (256, 0) ]

type phase = {
  cell : string;
  victim_pps : float;
  aggressor_l3_refs_per_sec : float;
  n_degraded : int;
  n_aggressor : int;
  n_recovered : int;
  first_aggressor_epoch : int option;
  verdicts : (string * string) list;
  alerts : Output.Json.t;
}

type data = {
  victim_solo_pps : float;
  aggressor_profiled_refs : float;
  sample_cycles : int;
  switch_after : int;
  budget : float option;  (** the detector's own recommendation, once made *)
  tame : phase;
  loud : phase;
  throttled : phase;
}

(* Monitored mix: victim on 0, two-faced aggressor on 1 (same socket on
   every config, so they share the L3), and up to two profiled-tame flows
   behind them. *)
let tame_kinds ~config =
  let cores = Ppp_hw.Topology.cores config.Ppp_hw.Machine.topology in
  List.filteri
    (fun i _ -> 2 + i < cores)
    [ Ppp_apps.App.IP; Ppp_apps.App.FW ]

let aggressor_flow ~params ~switch_after ~heap ~rng =
  let scale = params.Runner.config.Ppp_hw.Machine.scale in
  let elements =
    Throttle.Two_faced.elements ~heap ~rng
      ~buffer_bytes:(12 * 1024 * 1024 / scale)
      ~quiet_reads:4 ~loud_reads:256 ~switch_after
  in
  Ppp_click.Flow.create ~heap ~rng ~label:"two-faced"
    ~source:(Throttle.Two_faced.source ()) ~elements ()

(* The aggressor's offline profile is its tame face: what a solo
   characterization run would have recorded before deployment. *)
let aggressor_solo ~params =
  let params = Runner.cell_params params "monitor/solo-two-faced" in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let flow =
    aggressor_flow ~params ~switch_after:max_int ~heap
      ~rng:(Ppp_util.Rng.split rng)
  in
  let hier = Ppp_hw.Machine.build params.Runner.config in
  match
    Ppp_hw.Engine.run hier
      ~flows:
        [ { Ppp_hw.Engine.core = 0; label = "two-faced";
            source = Ppp_click.Flow.source flow } ]
      ~warmup_cycles:params.Runner.warmup_cycles
      ~measure_cycles:params.Runner.measure_cycles
  with
  | [ r ] -> r
  | _ -> assert false

let run_phase ~params ~cell ~profiles ~config:det_config ~switch_after
    ~throttle_budget =
  let params = Runner.cell_params params cell in
  let config = params.Runner.config in
  let freq_hz = config.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz in
  let hier = Ppp_hw.Machine.build config in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let scale = config.Ppp_hw.Machine.scale in
  let victim =
    Ppp_apps.App.flow Ppp_apps.App.MON ~heap ~rng:(Ppp_util.Rng.split rng)
      ~scale ~label:"MON" ()
  in
  let aggressor =
    aggressor_flow ~params ~switch_after ~heap ~rng:(Ppp_util.Rng.split rng)
  in
  let aggressor_source =
    let source = Ppp_click.Flow.source aggressor in
    match throttle_budget with
    | None -> source
    | Some budget ->
        Throttle.l3_budget_source ~budget_l3_refs_per_sec:budget ~hier ~core:1
          ~freq_hz source
  in
  let tame =
    List.mapi
      (fun i kind ->
        let label = Ppp_apps.App.name kind in
        let flow =
          Ppp_apps.App.flow kind ~heap ~rng:(Ppp_util.Rng.split rng) ~scale
            ~label ()
        in
        { Ppp_hw.Engine.core = 2 + i; label;
          source = Ppp_click.Flow.source flow })
      (tame_kinds ~config)
  in
  let flows =
    { Ppp_hw.Engine.core = 0; label = "MON";
      source = Ppp_click.Flow.source victim }
    :: { Ppp_hw.Engine.core = 1; label = "two-faced";
         source = aggressor_source }
    :: tame
  in
  let det = Detector.create ~config:det_config ~freq_hz profiles in
  let results =
    Ppp_hw.Engine.run ~probe:(Detector.probe det) hier ~flows
      ~warmup_cycles:params.Runner.warmup_cycles
      ~measure_cycles:params.Runner.measure_cycles
  in
  Detector.finalize det;
  if Ppp_telemetry.Recorder.sampling () <> None then
    Ppp_telemetry.Recorder.add_events (Report.to_telemetry_events ~cell det);
  let victim_r = List.hd results in
  let aggressor_r = List.nth results 1 in
  let count k =
    List.length
      (List.filter
         (fun (e : Detector.event) -> Detector.kind_name e.Detector.e_kind = k)
         (Detector.events det))
  in
  let first_aggressor_epoch =
    List.fold_left
      (fun acc (e : Detector.event) ->
        match (acc, e.Detector.e_kind) with
        | None, Detector.Hidden_aggressor _ -> Some e.Detector.e_epoch
        | _ -> acc)
      None (Detector.events det)
  in
  ( det,
    {
      cell;
      victim_pps = victim_r.Ppp_hw.Engine.throughput_pps;
      aggressor_l3_refs_per_sec = aggressor_r.Ppp_hw.Engine.l3_refs_per_sec;
      n_degraded = count "flow_degraded";
      n_aggressor = count "hidden_aggressor";
      n_recovered = count "recovered";
      first_aggressor_epoch;
      verdicts =
        List.map
          (fun ((p : Detector.flow_profile), v) -> (p.Detector.label, v))
          (Report.verdicts det);
      alerts = Report.alerts_json det;
    } )

let sample_cycles_of params = max 1 (params.Runner.measure_cycles / 20)

let measure ?(params = Runner.default_params) () =
  let config = params.Runner.config in
  let freq_hz = config.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz in
  let predictor =
    Predictor.build ~params ~levels:default_levels
      ~targets:[ Ppp_apps.App.MON ] ()
  in
  let victim_solo = Profile.solo ~params Ppp_apps.App.MON in
  let aggr_solo = aggressor_solo ~params in
  let profiles =
    Detector.profile_of ~predictor ~core:0 victim_solo
    :: {
         Detector.label = "two-faced";
         core = 1;
         solo_pps = aggr_solo.Ppp_hw.Engine.throughput_pps;
         solo_l3_refs_per_sec = aggr_solo.Ppp_hw.Engine.l3_refs_per_sec;
         solo_l3_hits_per_sec = aggr_solo.Ppp_hw.Engine.l3_hits_per_sec;
         predict_drop = None;
       }
    :: List.mapi
         (fun i kind ->
           Detector.profile_of ~core:(2 + i) (Profile.solo ~params kind))
         (tame_kinds ~config)
  in
  let det_config =
    Detector.default_config ~sample_cycles:(sample_cycles_of params)
  in
  (* Switch mid-window: the tame-face packet rate tells us how many packets
     the aggressor completes by the middle of the measurement window. *)
  let switch_after =
    int_of_float
      (aggr_solo.Ppp_hw.Engine.throughput_pps
      *. (float_of_int params.Runner.warmup_cycles
         +. (float_of_int params.Runner.measure_cycles /. 2.0))
      /. freq_hz)
  in
  let run_phase = run_phase ~params ~profiles ~config:det_config in
  let _, tame =
    run_phase ~cell:"monitor/tame" ~switch_after:max_int ~throttle_budget:None
  in
  let loud_det, loud =
    run_phase ~cell:"monitor/loud" ~switch_after ~throttle_budget:None
  in
  (* Closed loop: the budget is the detector's own recommendation, not an
     oracle's — what a controller reacting to the alert would apply. *)
  let budget =
    match Detector.recommendations loud_det with
    | r :: _ -> Some r.Detector.r_budget_l3_refs_per_sec
    | [] -> None
  in
  let fallback =
    aggr_solo.Ppp_hw.Engine.l3_refs_per_sec *. 1.05
  in
  let _, throttled =
    run_phase ~cell:"monitor/throttled" ~switch_after
      ~throttle_budget:(Some (Option.value budget ~default:fallback))
  in
  {
    victim_solo_pps = victim_solo.Profile.throughput_pps;
    aggressor_profiled_refs = aggr_solo.Ppp_hw.Engine.l3_refs_per_sec;
    sample_cycles = det_config.Detector.sample_cycles;
    switch_after;
    budget;
    tame;
    loud;
    throttled;
  }

let render d =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Online contention monitor (victim = MON, two-faced aggressor, tame \
         mix)"
      [
        "scenario"; "victim pps"; "drop (%)"; "aggr refs/s (M)"; "degr";
        "aggr"; "recov"; "verdicts";
      ]
  in
  let verdict_cell p =
    String.concat " "
      (List.map (fun (flow, v) -> flow ^ "=" ^ v) p.verdicts)
  in
  let row name p =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.0f" p.victim_pps;
        Exp_common.pct
          ((d.victim_solo_pps -. p.victim_pps) /. d.victim_solo_pps);
        Exp_common.millions p.aggressor_l3_refs_per_sec;
        string_of_int p.n_degraded;
        string_of_int p.n_aggressor;
        string_of_int p.n_recovered;
        verdict_cell p;
      ]
  in
  row "tame mix (as profiled)" d.tame;
  row "aggressor switches mid-run" d.loud;
  row "closed loop: throttled to alert budget" d.throttled;
  Table.to_string t
  ^ Printf.sprintf
      "\naggressor profiled at %.1fM L3 refs/s; switches after %d packets\n"
      (d.aggressor_profiled_refs /. 1e6)
      d.switch_after
  ^ (match (d.loud.first_aggressor_epoch, d.budget) with
    | Some epoch, Some budget ->
        Printf.sprintf
          "hidden aggressor flagged at epoch %d (slice length %d cycles); \
           recommended budget %.1fM refs/s\n"
          epoch d.sample_cycles (budget /. 1e6)
    | _ -> "hidden aggressor was NOT flagged\n")
  ^ Printf.sprintf
      "after throttling: aggressor at %.1fM refs/s, victim back to %.2f of \
       solo\n"
      (d.throttled.aggressor_l3_refs_per_sec /. 1e6)
      (d.throttled.victim_pps /. d.victim_solo_pps)

let phase_json p =
  let open Output in
  Json.Obj
    [
      ("cell", Json.Str p.cell);
      ("victim_pps", Json.Float p.victim_pps);
      ("aggressor_l3_refs_per_sec", Json.Float p.aggressor_l3_refs_per_sec);
      ("flow_degraded", Json.Int p.n_degraded);
      ("hidden_aggressor", Json.Int p.n_aggressor);
      ("recovered", Json.Int p.n_recovered);
      ( "first_aggressor_epoch",
        match p.first_aggressor_epoch with
        | Some e -> Json.Int e
        | None -> Json.Null );
      ( "verdicts",
        Json.Obj (List.map (fun (flow, v) -> (flow, Json.Str v)) p.verdicts) );
      ("alerts", p.alerts);
    ]

let data_json d =
  let open Output in
  Json.Obj
    [
      ("victim_solo_pps", Json.Float d.victim_solo_pps);
      ("aggressor_profiled_refs", Json.Float d.aggressor_profiled_refs);
      ("sample_cycles", Json.Int d.sample_cycles);
      ("switch_after", Json.Int d.switch_after);
      ( "budget",
        match d.budget with Some b -> Json.Float b | None -> Json.Null );
      ("tame", phase_json d.tame);
      ("loud", phase_json d.loud);
      ("throttled", phase_json d.throttled);
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
