(** The online-monitor experiment: Section 4's hidden-aggressor scenario
    replayed under the {!Ppp_monitor} detector.

    Three phases over the same mix (MON victim, a two-faced aggressor
    sharing its L3, up to two profiled-tame co-runners): everyone tame (the
    monitor must stay silent), the aggressor switching to SYN_MAX behaviour
    mid-window (the monitor must raise [Hidden_aggressor] within its
    hysteresis window and recommend a throttle budget), and a closed-loop
    re-run with the recommended budget applied via
    {!Ppp_core.Throttle.l3_budget_source} (the monitor must observe
    recovery). *)

type phase = {
  cell : string;
  victim_pps : float;
  aggressor_l3_refs_per_sec : float;
  n_degraded : int;
  n_aggressor : int;
  n_recovered : int;
  first_aggressor_epoch : int option;
  verdicts : (string * string) list;  (** flow label -> end-of-run verdict *)
  alerts : Output.Json.t;  (** {!Ppp_monitor.Report.alerts_json} of the run *)
}

type data = {
  victim_solo_pps : float;
  aggressor_profiled_refs : float;
  sample_cycles : int;
  switch_after : int;  (** packets until the aggressor turns loud *)
  budget : float option;
      (** the loud run's first recommendation; [None] if never flagged *)
  tame : phase;
  loud : phase;
  throttled : phase;
}

val default_levels : Ppp_apps.App.syn_params list
(** Trimmed SYN ramp used for the online predictor's curves (5 levels —
    enough to interpolate a drop, much cheaper than the Figure 4 ramp). *)

val measure : ?params:Ppp_core.Runner.params -> unit -> data

val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
