(** Figure 8: prediction error for every (target, 5 x competitor) scenario —
    the paper's method and the perfect-knowledge variant, plus per-target
    average absolute errors. *)

type cell = {
  target : Ppp_apps.App.kind;
  competitor : Ppp_apps.App.kind;
  measured_drop : float;
  predicted_drop : float;  (** using competitors' solo refs/sec *)
  perfect_drop : float;  (** using refs/sec measured during the co-run *)
}

type data = {
  cells : cell list;
  avg_error : (Ppp_apps.App.kind * float) list;  (** ours, absolute *)
  avg_error_perfect : (Ppp_apps.App.kind * float) list;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t

val max_abs_error : data -> float
