(** Figure 5: realistic co-runners fall on the SYN sensitivity curve — the
    observation enabling prediction. For each target: its SYN curve (both
    resources contended) and the five realistic-competitor points, with the
    deviation of each point from the curve. *)

type point_check = {
  target : Ppp_apps.App.kind;
  competitor : Ppp_apps.App.kind;
  competing_refs_per_sec : float;
  measured_drop : float;
  curve_drop : float;  (** SYN curve evaluated at the same refs/sec *)
}

type data = {
  curves : (Ppp_apps.App.kind * Ppp_core.Sensitivity.curve) list;
  checks : point_check list;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t

val max_deviation : data -> float
(** Largest |measured - curve| across all realistic points (the paper's
    claim is that this is small). *)
