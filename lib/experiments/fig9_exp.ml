open Ppp_core

type flow_check = {
  kind : Ppp_apps.App.kind;
  measured_drop : float;
  predicted_drop : float;
}

type data = { flows : flow_check list; max_error : float }

let full_mix =
  Ppp_apps.App.[ MON; MON; VPN; VPN; FW; RE ]

(* The paper's 6-flow mix, clamped to what the machine can host one-per-core
   (the tiny config has 4 cores). *)
let mix_for config =
  let cores = Ppp_hw.Topology.cores config.Ppp_hw.Machine.topology in
  List.filteri (fun i _ -> i < cores) full_mix

let measure ?(params = Runner.default_params) () =
  let mix = mix_for params.Runner.config in
  let kinds = List.sort_uniq compare mix in
  let predictor = Predictor.build ~params ~targets:kinds () in
  let specs =
    List.mapi (fun i kind -> { Runner.kind; core = i; data_node = 0 }) mix
  in
  (* Label only — the mix cell's seed predates telemetry and must not
     change (golden snapshots). *)
  let results = Runner.run ~params:(Runner.with_cell params "fig9/mix") specs in
  let solos = Exp_common.solo_results ~params kinds in
  let flows =
    List.map2
      (fun kind (r : Ppp_hw.Engine.result) ->
        let solo = List.assoc kind solos in
        let competitors = List.filteri (fun i _ -> i <> r.Ppp_hw.Engine.core) mix in
        {
          kind;
          measured_drop = Runner.drop ~solo ~corun:r;
          predicted_drop =
            Predictor.predict_drop predictor ~target:kind ~competitors;
        })
      mix results
  in
  let max_error =
    List.fold_left
      (fun acc f -> Float.max acc (Float.abs (f.predicted_drop -. f.measured_drop)))
      0.0 flows
  in
  { flows; max_error }

let render data =
  let open Ppp_util in
  let mix_label =
    let kinds = List.sort_uniq compare (List.map (fun f -> f.kind) data.flows) in
    kinds
    |> List.map (fun k ->
           let n =
             List.length (List.filter (fun f -> f.kind = k) data.flows)
           in
           Printf.sprintf "%d %s" n (Ppp_apps.App.name k))
    |> String.concat ", "
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 9: mixed workload (%s) — measured vs predicted drop"
           mix_label)
      [ "flow"; "measured (%)"; "predicted (%)"; "abs error" ]
  in
  List.iter
    (fun f ->
      Table.add_row t
        [
          Ppp_apps.App.name f.kind;
          Exp_common.pct f.measured_drop;
          Exp_common.pct f.predicted_drop;
          Exp_common.pct (Float.abs (f.predicted_drop -. f.measured_drop));
        ])
    data.flows;
  Table.to_string t
  ^ Printf.sprintf "\nmax |error| = %s%%\n" (Exp_common.pct data.max_error)

let data_json data =
  let open Output in
  Json.Obj
    [
      ( "flows",
        table
          [
            Col.str "flow" (fun f -> Ppp_apps.App.name f.kind);
            Col.num "measured_drop" (fun f -> f.measured_drop);
            Col.num "predicted_drop" (fun f -> f.predicted_drop);
          ]
          data.flows );
      ("max_abs_error", Json.Float data.max_error);
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
