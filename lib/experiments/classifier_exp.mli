(** Extension: the fast-path/slow-path split under contention.

    A flow-table fast path ({!Ppp_classify.Flow_table}) fronts a slow-path
    classifier (tuple-space search or range index) over a structured rule
    set; misses upcall, classify, and install megaflows. The experiment
    sweeps backend × rule-set size × traffic skew and reports the cache
    economics (hit rate, upcalls per packet) together with the fig2-style
    contention story: each configuration's sensitivity (drop vs solo under
    SYN_MAX co-runners) and aggressiveness (its own L3 refs/sec). *)

type cell = {
  backend : string;  (** "tss" | "range" *)
  rules : int;
  skew : float;  (** Zipf exponent of the flow popularity distribution *)
  hit_rate : float;
  upcalls_per_packet : float;
  evictions : int;
  solo_pps : float;
  drop : float;  (** contention-induced drop vs 5 SYN_MAX *)
  l3_refs_per_sec : float;  (** solo aggressiveness *)
}

type data = { cells : cell list }

val backends : params:Ppp_core.Runner.params -> Ppp_classify.Classifier.kind list
(** The backends selected by [params.classifier] ("tss" | "range" | "all");
    raises [Invalid_argument] on anything else. *)

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
