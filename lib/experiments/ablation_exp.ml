open Ppp_core

type bound_check = {
  kind : Ppp_apps.App.kind;
  solo_hits_per_sec : float;
  bound : float;
  measured_worst : float;
}

type delta_point = {
  dram_lat_cycles : int;
  delta_ns : float;
  mon_drop : float;
}

type numa_check = {
  kind : Ppp_apps.App.kind;
  local_pps : float;
  remote_pps : float;
  penalty : float;
}

type mlp_point = {
  mlp : int;
  competing_refs_per_sec : float;
  mon_drop_mlp : float;
}

type data = {
  bounds : bound_check list;
  delta_sweep : delta_point list;
  numa : numa_check list;
  mlp_sweep : mlp_point list;
}

let worst_case_run ?(label = "worst") ~params kind =
  let solo = Runner.solo ~params kind in
  let specs =
    Sensitivity.placement ~config:params.Runner.config Sensitivity.Both
      ~n_competitors:
        (min 5 (Ppp_hw.Machine.cores_per_socket params.Runner.config - 1))
      ~competitor:Ppp_apps.App.syn_max ~target:kind
  in
  let params =
    Runner.with_cell params
      (Printf.sprintf "ablation/%s/%s" label (Ppp_apps.App.name kind))
  in
  match Runner.run ~params specs with
  | t :: competitors ->
      let competing =
        List.fold_left
          (fun acc (r : Ppp_hw.Engine.result) ->
            acc +. r.Ppp_hw.Engine.l3_refs_per_sec)
          0.0 competitors
      in
      (solo, Runner.drop ~solo ~corun:t, competing)
  | [] -> assert false

let worst_case_drop ?label ~params kind =
  let solo, drop, _ = worst_case_run ?label ~params kind in
  (solo, drop)

let measure_bounds ~params =
  let costs = params.Runner.config.Ppp_hw.Machine.costs in
  let delta = Ppp_hw.Costs.delta_seconds costs in
  List.map
    (fun kind ->
      let solo, worst = worst_case_drop ~params kind in
      let h = solo.Ppp_hw.Engine.l3_hits_per_sec in
      {
        kind;
        solo_hits_per_sec = h;
        bound = Equation1.max_drop ~delta ~hits_per_sec:h;
        measured_worst = worst;
      })
    Exp_common.realistic

let measure_delta_sweep ~params =
  List.map
    (fun dram_lat ->
      let config = params.Runner.config in
      let costs = { config.Ppp_hw.Machine.costs with Ppp_hw.Costs.dram_lat } in
      let config = { config with Ppp_hw.Machine.costs = costs } in
      let params = { params with Runner.config = config } in
      let _, drop =
        worst_case_drop
          ~label:(Printf.sprintf "delta-%d" dram_lat)
          ~params Ppp_apps.App.MON
      in
      {
        dram_lat_cycles = dram_lat;
        delta_ns = Ppp_hw.Costs.delta_seconds costs *. 1e9;
        mon_drop = drop;
      })
    [ 61; 122; 244 ]

let measure_numa ~params =
  List.map
    (fun kind ->
      let local = Runner.solo ~params kind in
      let remote =
        let params =
          Runner.with_cell params
            ("ablation/numa/" ^ Ppp_apps.App.name kind)
        in
        match
          Runner.run ~params [ { Runner.kind; core = 0; data_node = 1 } ]
        with
        | [ r ] -> r
        | _ -> assert false
      in
      let lp = local.Ppp_hw.Engine.throughput_pps in
      let rp = remote.Ppp_hw.Engine.throughput_pps in
      { kind; local_pps = lp; remote_pps = rp; penalty = (lp -. rp) /. lp })
    Ppp_apps.App.[ IP; MON; RE ]

let measure_mlp ~params =
  List.map
    (fun mlp ->
      let config = params.Runner.config in
      let costs = { config.Ppp_hw.Machine.costs with Ppp_hw.Costs.mlp } in
      let config = { config with Ppp_hw.Machine.costs = costs } in
      let params = { params with Runner.config = config } in
      let _, drop, competing =
        worst_case_run
          ~label:(Printf.sprintf "mlp-%d" mlp)
          ~params Ppp_apps.App.MON
      in
      { mlp; competing_refs_per_sec = competing; mon_drop_mlp = drop })
    [ 1; 2; 4 ]

let measure ?(params = Runner.default_params) () =
  {
    bounds = measure_bounds ~params;
    delta_sweep = measure_delta_sweep ~params;
    numa = measure_numa ~params;
    mlp_sweep = measure_mlp ~params;
  }

let render data =
  let open Ppp_util in
  let b =
    Table.create
      ~title:
        "Ablation A: Equation-1 worst-case bound vs measured drop under 5 x \
         SYN_MAX"
      [ "flow"; "solo hits/s (M)"; "bound (%)"; "measured (%)"; "within bound" ]
  in
  List.iter
    (fun (c : bound_check) ->
      Table.add_row b
        [
          Ppp_apps.App.name c.kind;
          Exp_common.millions c.solo_hits_per_sec;
          Exp_common.pct c.bound;
          Exp_common.pct c.measured_worst;
          string_of_bool (c.measured_worst <= c.bound +. 0.03);
        ])
    data.bounds;
  let d =
    Table.create
      ~title:"Ablation B: MON drop under 5 x SYN_MAX as the miss penalty varies"
      [ "dram_lat (cycles)"; "delta (ns)"; "MON drop (%)" ]
  in
  List.iter
    (fun p ->
      Table.add_row d
        [
          string_of_int p.dram_lat_cycles;
          Printf.sprintf "%.1f" p.delta_ns;
          Exp_common.pct p.mon_drop;
        ])
    data.delta_sweep;
  let n =
    Table.create
      ~title:"Ablation C: penalty of remote (cross-QPI) data placement, solo"
      [ "flow"; "local pps"; "remote pps"; "penalty (%)" ]
  in
  List.iter
    (fun (c : numa_check) ->
      Table.add_row n
        [
          Ppp_apps.App.name c.kind;
          Printf.sprintf "%.0f" c.local_pps;
          Printf.sprintf "%.0f" c.remote_pps;
          Exp_common.pct c.penalty;
        ])
    data.numa;
  let m =
    Table.create
      ~title:
        "Ablation D: miss-overlap (MLP) factor vs attainable competition \
         (MON vs 5 x SYN_MAX)"
      [ "mlp"; "competing refs/s (M)"; "MON drop (%)" ]
  in
  List.iter
    (fun p ->
      Table.add_row m
        [
          string_of_int p.mlp;
          Exp_common.millions p.competing_refs_per_sec;
          Exp_common.pct p.mon_drop_mlp;
        ])
    data.mlp_sweep;
  Table.to_string b ^ "\n" ^ Table.to_string d ^ "\n" ^ Table.to_string n
  ^ "\n" ^ Table.to_string m

let data_json data =
  let open Output in
  Json.Obj
    [
      ( "bounds",
        table
          [
            Col.str "flow" (fun (c : bound_check) -> Ppp_apps.App.name c.kind);
            Col.num "solo_hits_per_sec" (fun c -> c.solo_hits_per_sec);
            Col.num "bound" (fun c -> c.bound);
            Col.num "measured_worst" (fun c -> c.measured_worst);
            Col.bool "within_bound" (fun c ->
                c.measured_worst <= c.bound +. 0.03);
          ]
          data.bounds );
      ( "delta_sweep",
        table
          [
            Col.int "dram_lat_cycles" (fun p -> p.dram_lat_cycles);
            Col.num "delta_ns" (fun p -> p.delta_ns);
            Col.num "mon_drop" (fun p -> p.mon_drop);
          ]
          data.delta_sweep );
      ( "numa",
        table
          [
            Col.str "flow" (fun (c : numa_check) -> Ppp_apps.App.name c.kind);
            Col.num "local_pps" (fun c -> c.local_pps);
            Col.num "remote_pps" (fun c -> c.remote_pps);
            Col.num "penalty" (fun c -> c.penalty);
          ]
          data.numa );
      ( "mlp_sweep",
        table
          [
            Col.int "mlp" (fun p -> p.mlp);
            Col.num "competing_refs_per_sec" (fun p ->
                p.competing_refs_per_sec);
            Col.num "mon_drop" (fun p -> p.mon_drop_mlp);
          ]
          data.mlp_sweep );
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
