open Ppp_core

type data = (Sensitivity.resource * Sensitivity.curve list) list

let default_levels =
  List.map
    (fun (reads, instrs) -> { Ppp_apps.App.reads; instrs })
    [
      (2, 80_000);
      (8, 20_000);
      (16, 6_000);
      (32, 2_500);
      (32, 1_200);
      (64, 1_000);
      (64, 400);
      (128, 300);
      (256, 0);
    ]

let measure ?(params = Runner.default_params) ?(levels = default_levels)
    ?(targets = Exp_common.realistic) () =
  (* One cell per (resource, target) curve; Sensitivity.measure derives
     per-level seeds itself, so the fan-out stays order-independent. *)
  let resources =
    [ Sensitivity.Cache_only; Sensitivity.Memctrl_only; Sensitivity.Both ]
  in
  let curves =
    Parallel.map
      (fun (resource, k) -> Sensitivity.measure ~params ~levels ~resource k)
      (List.concat_map
         (fun resource -> List.map (fun k -> (resource, k)) targets)
         resources)
  in
  let per_target = List.length targets in
  List.mapi
    (fun i resource ->
      (resource, List.filteri (fun j _ -> j / per_target = i) curves))
    resources

let render data =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (resource, curves) ->
      let open Ppp_util in
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 4 (%s): drop (%%) vs competing L3 refs/sec (M)"
               (Sensitivity.resource_name resource))
          ("competing refs/s (M)"
          :: List.map
               (fun (c : Sensitivity.curve) -> Ppp_apps.App.name c.Sensitivity.target)
               curves)
      in
      (* Rows: the levels of the first curve define the x grid; the other
         curves measured the same levels so indices line up. *)
      (match curves with
      | [] -> ()
      | first :: _ ->
          List.iteri
            (fun i (p : Sensitivity.point) ->
              Table.add_row t
                (Exp_common.millions p.Sensitivity.competing_refs_per_sec
                :: List.map
                     (fun (c : Sensitivity.curve) ->
                       let q = List.nth c.Sensitivity.points i in
                       Exp_common.pct q.Sensitivity.drop)
                     curves))
            first.Sensitivity.points);
      Buffer.add_string buf (Table.to_string t);
      Buffer.add_char buf '\n')
    data;
  Buffer.contents buf

let curve_json (c : Sensitivity.curve) =
  let open Output in
  Json.Obj
    [
      ("target", Json.Str (Ppp_apps.App.name c.Sensitivity.target));
      ("solo_pps", Json.Float c.Sensitivity.solo_pps);
      ( "points",
        table
          [
            Col.num "competing_refs_per_sec" (fun (p : Sensitivity.point) ->
                p.Sensitivity.competing_refs_per_sec);
            Col.num "drop" (fun p -> p.Sensitivity.drop);
            Col.num "target_hits_per_sec" (fun p ->
                p.Sensitivity.target_hits_per_sec);
          ]
          c.Sensitivity.points );
    ]

let data_json data =
  let open Output in
  Json.Arr
    (List.map
       (fun (resource, curves) ->
         Json.Obj
           [
             ("resource", Json.Str (Sensitivity.resource_name resource));
             ("curves", Json.Arr (List.map curve_json curves));
           ])
       data)

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
