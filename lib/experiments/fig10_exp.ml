open Ppp_core

type combo_result = {
  combo : Scheduler.combo;
  best : Scheduler.evaluation;
  worst : Scheduler.evaluation;
}

type data = { combos : combo_result list; detail : combo_result }

(* Spread 2*cores_per_socket flows across the combo's kinds (the paper's
   machine gives the familiar 6+6 and 4+4+4 splits; tiny gives 2+2). *)
let combo_of ~cps kinds =
  let total = 2 * cps in
  let k = List.length kinds in
  let base = total / k and rem = total mod k in
  List.mapi (fun i kind -> (kind, base + if i < rem then 1 else 0)) kinds

let default_combos ~config =
  let cps = Ppp_hw.Machine.cores_per_socket config in
  List.map
    (combo_of ~cps)
    Ppp_apps.App.
      [
        [ MON; FW ];
        [ IP; FW ];
        [ MON; VPN ];
        [ IP; MON ];
        [ RE; FW ];
        [ MON; RE; FW ];
        [ MON ];
        [ syn_max; FW ];
      ]

let measure ?(params = Runner.default_params) ?combos () =
  let config = params.Runner.config in
  let combos =
    match combos with Some c -> c | None -> default_combos ~config
  in
  (* Solo baselines for every kind up front, so the per-combo cells below
     share no mutable cache. *)
  let solos =
    combos
    |> List.concat_map (List.map fst)
    |> List.sort_uniq compare
    |> Parallel.map (fun k ->
           (k, (Runner.solo ~params k).Ppp_hw.Engine.throughput_pps))
  in
  let eval combo =
    let evals = Scheduler.evaluate ~params ~solo:solos combo in
    { combo; best = Scheduler.best evals; worst = Scheduler.worst evals }
  in
  let combos = Parallel.map eval combos in
  let detail =
    let cps = Ppp_hw.Machine.cores_per_socket config in
    let mon_fw = combo_of ~cps Ppp_apps.App.[ MON; FW ] in
    match List.find_opt (fun c -> c.combo = mon_fw) combos with
    | Some c -> c
    | None -> List.hd combos
  in
  { combos; detail }

let is_realistic combo =
  List.for_all
    (fun (k, _) -> match k with Ppp_apps.App.SYN _ -> false | _ -> true)
    combo

let max_gain data =
  List.fold_left
    (fun acc c ->
      if is_realistic c.combo then
        Float.max acc (c.worst.Scheduler.avg_drop -. c.best.Scheduler.avg_drop)
      else acc)
    0.0 data.combos

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Figure 10(a): average per-flow drop (%) under best and worst \
         placement"
      [ "combination"; "best placement"; "worst placement"; "gain (pp)" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Scheduler.combo_name c.combo;
          Exp_common.pct c.best.Scheduler.avg_drop;
          Exp_common.pct c.worst.Scheduler.avg_drop;
          Exp_common.pct
            (c.worst.Scheduler.avg_drop -. c.best.Scheduler.avg_drop);
        ])
    data.combos;
  let detail =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 10(b): per-flow drop (%%) for %s under best/worst placement"
           (Scheduler.combo_name data.detail.combo))
      [ "flow"; "best placement"; "worst placement" ]
  in
  let summarize (e : Scheduler.evaluation) =
    (* Average drop per kind across the placement's flows. *)
    let kinds = List.sort_uniq compare (List.map fst e.Scheduler.per_flow) in
    List.map
      (fun k ->
        let ds = List.filter_map (fun (k', d) -> if k = k' then Some d else None) e.Scheduler.per_flow in
        (k, List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)))
      kinds
  in
  let best = summarize data.detail.best and worst = summarize data.detail.worst in
  List.iter
    (fun (k, d) ->
      Table.add_row detail
        [
          Ppp_apps.App.name k;
          Exp_common.pct d;
          Exp_common.pct (List.assoc k worst);
        ])
    best;
  Table.to_string t ^ "\n" ^ Table.to_string detail
  ^ Printf.sprintf
      "\nmax overall gain from contention-aware scheduling (realistic \
       combos) = %s%%\n"
      (Exp_common.pct (max_gain data))

let data_json data =
  let open Output in
  let eval_json (e : Scheduler.evaluation) =
    Json.Obj
      [
        ("avg_drop", Json.Float e.Scheduler.avg_drop);
        ( "per_flow",
          table
            [
              Col.str "flow" (fun (k, _) -> Ppp_apps.App.name k);
              Col.num "drop" snd;
            ]
            e.Scheduler.per_flow );
      ]
  in
  let combo_json c =
    Json.Obj
      [
        ("combination", Json.Str (Scheduler.combo_name c.combo));
        ("best", eval_json c.best);
        ("worst", eval_json c.worst);
      ]
  in
  Json.Obj
    [
      ("combos", Json.Arr (List.map combo_json data.combos));
      ("detail", combo_json data.detail);
      ("max_gain_realistic", Json.Float (max_gain data));
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
