open Ppp_core

type cell = {
  backend : string;
  rules : int;
  skew : float;
  hit_rate : float;
  upcalls_per_packet : float;
  evictions : int;
  solo_pps : float;
  drop : float;
  l3_refs_per_sec : float;
}

type data = { cells : cell list }

let backends ~(params : Runner.params) =
  match params.Runner.classifier with
  | Runner.All_backends -> Ppp_classify.Classifier.all
  | Runner.Tss -> [ Ppp_classify.Classifier.Tss ]
  | Runner.Range -> [ Ppp_classify.Classifier.Range ]

(* Rule-set sizes and skews of the sweep. Sizes scale down with the machine
   like every other working set in the repo so the tiny config stays fast. *)
let rule_sizes scale = [ max 16 (1024 / scale); max 64 (8192 / scale) ]
let skews = [ 0.0; 1.1 ]

(* Traffic universe: a fixed set of flows, each drawn inside a known rule's
   hypercube, ranked by Zipf popularity. The flow table holds a quarter of
   the universe, so the uniform sweep thrashes it while the skewed one
   concentrates on a cacheable hot set — the knob that moves hit rate. *)
let universe scale = max 256 (16384 / scale)

let build_flow ~(params : Runner.params) ~heap ~rng ~backend ~nrules =
  let config = params.Runner.config in
  let scale = config.Ppp_hw.Machine.scale in
  let u = universe scale in
  let rules = Ppp_classify.Rulegen.make ~rng:(Ppp_util.Rng.split rng) ~n:nrules in
  let fp =
    Ppp_classify.Fastpath.create ~heap ~table_entries:(max 16 (u / 4)) ~backend
      rules
  in
  (* Precompute one concrete flow id per rank. Traffic is UDP (the packet
     generator writes UDP headers), so ranks that land on a TCP-only rule
     use the catch-all instead — every flow still has a known matching
     rule. *)
  let frng = Ppp_util.Rng.split rng in
  let flowids =
    Array.init u (fun i ->
        let r = rules.(Ppp_util.Hashes.fnv1a_int i mod nrules) in
        let r =
          if r.Ppp_classify.Rule.proto = Ppp_net.Ipv4.proto_tcp then
            rules.(nrules - 1)
          else r
        in
        let f = Ppp_classify.Rulegen.flowid_matching ~rng:frng r in
        { f with Ppp_net.Flowid.proto = Ppp_net.Ipv4.proto_udp })
  in
  let zipf = ref (Ppp_traffic.Zipf.create ~n:u ~s:0.0) in
  let gen_rng = Ppp_util.Rng.split rng in
  let seqs = Array.make u 0 in
  let source =
    Ppp_traffic.Source.make ~name:"zipf-rules"
      ~fill:(fun s pkt ->
        let i = Ppp_traffic.Zipf.sample !zipf gen_rng in
        let f = flowids.(i) in
        Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:f.Ppp_net.Flowid.src
          ~dst:f.Ppp_net.Flowid.dst ~sport:f.Ppp_net.Flowid.sport
          ~dport:f.Ppp_net.Flowid.dport ~wire_len:64;
        let seq = seqs.(i) in
        seqs.(i) <- seq + 1;
        Ppp_traffic.Source.set_meta s ~flow:i ~seq;
        Ppp_traffic.Source.Filled)
      ()
  in
  let elements =
    [
      Ppp_apps.Ip_elements.check_ip_header ();
      Ppp_classify.Fastpath.element fp;
      Ppp_apps.Ip_elements.dec_ip_ttl ();
    ]
  in
  let flow =
    Ppp_click.Flow.create ~heap ~rng ~label:"classifier" ~source ~elements ()
  in
  let set_skew s = zipf := Ppp_traffic.Zipf.create ~n:u ~s in
  (flow, fp, set_skew)

(* One engine run: the classification flow on core 0, optionally fronted by
   up to 5 SYN_MAX competitors on the same socket (the fig2 co-run shape).
   Competitors are built after the target from the same stream, so the
   target's simulation is identical in both runs. *)
let run_one ~(params : Runner.params) ~backend ~nrules ~skew ~contended =
  let config = params.Runner.config in
  let hier = Ppp_hw.Machine.build config in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let flow, fp, set_skew =
    build_flow ~params ~heap ~rng:(Ppp_util.Rng.split rng) ~backend ~nrules
  in
  set_skew skew;
  let target =
    { Ppp_hw.Engine.core = 0; label = "classifier"; source = Ppp_click.Flow.source flow }
  in
  let competitors =
    if not contended then []
    else
      List.init
        (min 5 (Ppp_hw.Machine.cores_per_socket config - 1))
        (fun i ->
          let f =
            Ppp_apps.App.flow Ppp_apps.App.syn_max ~heap
              ~rng:(Ppp_util.Rng.split rng)
              ~scale:config.Ppp_hw.Machine.scale ()
          in
          {
            Ppp_hw.Engine.core = 1 + i;
            label = "SYN_MAX";
            source = Ppp_click.Flow.source f;
          })
  in
  let results =
    Ppp_hw.Engine.run ~batch:params.Runner.batch hier
      ~flows:(target :: competitors)
      ~warmup_cycles:params.Runner.warmup_cycles
      ~measure_cycles:params.Runner.measure_cycles
  in
  (List.hd results, fp)

let measure ?(params = Runner.default_params) () =
  let scale = params.Runner.config.Ppp_hw.Machine.scale in
  let cells =
    List.concat_map
      (fun backend ->
        List.concat_map
          (fun nrules ->
            List.map (fun skew -> (backend, nrules, skew)) skews)
          (rule_sizes scale))
      (backends ~params)
  in
  let cell (backend, nrules, skew) =
    let bname = Ppp_classify.Classifier.kind_name backend in
    let label = Printf.sprintf "classifier/%s/%d/%.1f" bname nrules skew in
    let params = Runner.cell_params params label in
    let solo, fp = run_one ~params ~backend ~nrules ~skew ~contended:false in
    let corun, _ = run_one ~params ~backend ~nrules ~skew ~contended:true in
    let table = Ppp_classify.Fastpath.table fp in
    let hits = Ppp_classify.Flow_table.hits table in
    let misses = Ppp_classify.Flow_table.misses table in
    let lookups = hits + misses in
    let packets = solo.Ppp_hw.Engine.packets in
    Ppp_telemetry.Recorder.add_classifier
      {
        Ppp_telemetry.Recorder.cls_cell = label;
        cls_backend = bname;
        cls_rules = nrules;
        cls_lookups = lookups;
        cls_hits = hits;
        cls_upcalls = Ppp_classify.Fastpath.upcalls fp;
        cls_installs = Ppp_classify.Flow_table.installs table;
        cls_evictions = Ppp_classify.Flow_table.evictions table;
      };
    {
      backend = bname;
      rules = nrules;
      skew;
      hit_rate = float_of_int hits /. float_of_int (max 1 lookups);
      upcalls_per_packet =
        float_of_int (Ppp_classify.Fastpath.upcalls fp)
        /. float_of_int (max 1 packets);
      evictions = Ppp_classify.Flow_table.evictions table;
      solo_pps = solo.Ppp_hw.Engine.throughput_pps;
      drop = Runner.drop ~solo ~corun;
      l3_refs_per_sec = solo.Ppp_hw.Engine.l3_refs_per_sec;
    }
  in
  { cells = Parallel.map cell cells }

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Flow classification: fast-path economics and contention, by backend"
      [
        "backend"; "rules"; "skew"; "hit rate (%)"; "upcalls/pkt";
        "solo pps"; "drop vs 5 SYN_MAX (%)"; "L3 refs/s";
      ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.backend;
          string_of_int c.rules;
          Printf.sprintf "%.1f" c.skew;
          Exp_common.pct c.hit_rate;
          Printf.sprintf "%.4f" c.upcalls_per_packet;
          Printf.sprintf "%.0f" c.solo_pps;
          Exp_common.pct c.drop;
          Printf.sprintf "%.3g" c.l3_refs_per_sec;
        ])
    data.cells;
  let by_backend name =
    List.filter (fun c -> c.backend = name) data.cells
  in
  let avg f = function
    | [] -> 0.0
    | cs -> List.fold_left (fun a c -> a +. f c) 0.0 cs /. float_of_int (List.length cs)
  in
  let narrative =
    let tss = by_backend "tss" and range = by_backend "range" in
    if tss <> [] && range <> [] then
      Printf.sprintf
        "\nskew moves the flow table's hit rate, and the backends only \
         matter on the miss path: mean drop %s%% (tss) vs %s%% (range), \
         mean solo aggressiveness %.3g vs %.3g L3 refs/s. The slow path's \
         memory footprint is a contention story only in proportion to the \
         upcall rate — a hot, skewed universe hides either backend.\n"
        (Exp_common.pct (avg (fun c -> c.drop) tss))
        (Exp_common.pct (avg (fun c -> c.drop) range))
        (avg (fun c -> c.l3_refs_per_sec) tss)
        (avg (fun c -> c.l3_refs_per_sec) range)
    else
      Printf.sprintf
        "\nsingle-backend run (%s): skew moves the hit rate; drop and L3 \
         refs/s follow the upcall rate.\n"
        (match data.cells with c :: _ -> c.backend | [] -> "none")
  in
  Table.to_string t ^ narrative

let data_json data =
  let open Output in
  table
    [
      Col.str "backend" (fun c -> c.backend);
      Col.int "rules" (fun c -> c.rules);
      Col.num "skew" (fun c -> c.skew);
      Col.num "hit_rate" (fun c -> c.hit_rate);
      Col.num "upcalls_per_packet" (fun c -> c.upcalls_per_packet);
      Col.int "evictions" (fun c -> c.evictions);
      Col.num "solo_pps" (fun c -> c.solo_pps);
      Col.num "drop" (fun c -> c.drop);
      Col.num "l3_refs_per_sec" (fun c -> c.l3_refs_per_sec);
    ]
    data.cells

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
