(** Ablations over the design choices DESIGN.md calls out — checks that the
    reproduced phenomena are robust consequences of the architecture model
    rather than artifacts of one parameter choice.

    - {b Equation-1 bound}: for each realistic flow, the drop measured under
      the most aggressive competition we can generate (5 x SYN_MAX) must
      stay below the kappa=1 worst-case bound computed from its solo
      hits/sec — the paper's Figure 6 claim, validated empirically.
    - {b delta sweep}: the same co-run measured under different DRAM miss
      penalties; sensitivity must grow with delta as Equation 1 predicts.
    - {b NUMA locality}: a flow placed with remote data loses throughput
      (the Section 2.2 argument for local allocation).
    - {b miss overlap (MLP)}: with the optional out-of-order-style miss
      overlap enabled, SYN competitors reach several times more refs/sec —
      explaining why the paper's competing-refs axis extends to 300M where
      the default in-order model stops near 100M. *)

type bound_check = {
  kind : Ppp_apps.App.kind;
  solo_hits_per_sec : float;
  bound : float;  (** Equation 1, kappa = 1, platform delta *)
  measured_worst : float;  (** drop under 5 x SYN_MAX *)
}

type delta_point = {
  dram_lat_cycles : int;
  delta_ns : float;
  mon_drop : float;  (** MON vs 5 x SYN_MAX at this delta *)
}

type numa_check = {
  kind : Ppp_apps.App.kind;
  local_pps : float;
  remote_pps : float;
  penalty : float;  (** fractional loss from remote data *)
}

type mlp_point = {
  mlp : int;
  competing_refs_per_sec : float;  (** from 5 x SYN_MAX *)
  mon_drop_mlp : float;
}

type data = {
  bounds : bound_check list;
  delta_sweep : delta_point list;
  numa : numa_check list;
  mlp_sweep : mlp_point list;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
