type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : ?params:Ppp_core.Runner.params -> unit -> Output.t;
}

let all =
  [
    {
      id = "table1";
      title = "Solo-run characteristics of each packet-processing type";
      paper_ref = "Table 1";
      run = Table1_exp.run;
    };
    {
      id = "fig2";
      title = "Contention-induced drop for realistic flow pairs";
      paper_ref = "Figure 2";
      run = Fig2_exp.run;
    };
    {
      id = "fig4";
      title = "Drop vs competing refs/sec per contended resource";
      paper_ref = "Figures 3-4";
      run = Fig4_exp.run;
    };
    {
      id = "fig5";
      title = "Realistic competitors fall on the SYN curve";
      paper_ref = "Figure 5";
      run = Fig5_exp.run;
    };
    {
      id = "fig6";
      title = "Worst-case drop bound vs solo hits/sec (Equation 1)";
      paper_ref = "Figure 6";
      run = Fig6_exp.run;
    };
    {
      id = "fig7";
      title = "Hit-to-miss conversion: measured, per-function, model";
      paper_ref = "Figure 7 / Appendix A";
      run = Fig7_exp.run;
    };
    {
      id = "fig8";
      title = "Prediction error across all flow pairs";
      paper_ref = "Figure 8";
      run = Fig8_exp.run;
    };
    {
      id = "fig9";
      title = "Prediction on a mixed workload";
      paper_ref = "Figure 9";
      run = Fig9_exp.run;
    };
    {
      id = "fig10";
      title = "Benefit of contention-aware scheduling";
      paper_ref = "Figure 10";
      run = Fig10_exp.run;
    };
    {
      id = "pipeline";
      title = "Parallel vs pipelined parallelization";
      paper_ref = "Section 2.2";
      run = Pipeline_exp.run;
    };
    {
      id = "flowcache";
      title = "Fast-path flow cache vs contention";
      paper_ref = "extension";
      run = Flowcache_exp.run;
    };
    {
      id = "classifier";
      title = "Flow-table fast path over dual slow-path backends";
      paper_ref = "extension";
      run = Classifier_exp.run;
    };
    {
      id = "latency";
      title = "Per-packet latency tails under contention";
      paper_ref = "extension";
      run = Latency_exp.run;
    };
    {
      id = "multiflow";
      title = "Two flows per core: private-cache contention";
      paper_ref = "Section 6";
      run = Multiflow_exp.run;
    };
    {
      id = "ablation";
      title = "Bound check, delta sweep, NUMA locality penalty";
      paper_ref = "Fig 6 / Sec 2.2 / 3.3";
      run = Ablation_exp.run;
    };
    {
      id = "throttle";
      title = "Containing hidden aggressiveness by throttling";
      paper_ref = "Section 4";
      run = Throttle_exp.run;
    };
    {
      id = "monitor";
      title = "Online contention monitor: detection and closed-loop throttle";
      paper_ref = "Section 4";
      run = Monitor_exp.run;
    };
    {
      id = "traffic";
      title = "Prediction and monitoring under realistic traffic and steering";
      paper_ref = "extension";
      run = Traffic_exp.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

let to_json () =
  Ppp_telemetry.Json.Arr
    (List.map
       (fun e ->
         Ppp_telemetry.Json.Obj
           [
             ("id", Ppp_telemetry.Json.Str e.id);
             ("title", Ppp_telemetry.Json.Str e.title);
             ("paper_ref", Ppp_telemetry.Json.Str e.paper_ref);
           ])
       all)
