(** Section 2.2: parallel vs pipelined parallelization.

    Two experiments: (1) an IP flow run whole on one core (the parallel
    approach) vs split across two cores with a handoff queue (the pipeline
    approach) — the pipeline incurs extra coherence misses per packet and
    delivers less throughput per core; (2) the paper's contrived workload
    (hundreds of random accesses to a structure about twice the L3) where
    splitting the structure across the two sockets' caches lets the
    pipeline win. *)

type side = {
  label : string;
  throughput_pps : float;
  per_core_pps : float;  (** throughput divided by cores used *)
  l3_refs_per_packet : float;
      (** L2 misses per packet — what the paper's Oprofile "cache misses"
          count; handoffs surface here as coherence transfers *)
  l3_misses_per_packet : float;
  cores : int;
}

type data = {
  ip_parallel : side;
  ip_pipeline : side;
  extra_refs_per_packet : float;
      (** pipeline - parallel L3 refs/packet for the IP workload (the
          paper's 10-15 extra misses/packet) *)
  syn_parallel : side;
  syn_pipeline : side;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
