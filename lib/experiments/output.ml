module Json = Ppp_telemetry.Json

type t = { text : string; data : Json.t }

let make ~text ~data = { text; data }
let text_only text = { text; data = Json.Null }

module Col = struct
  type 'row t = { name : string; cell : 'row -> Json.t }

  let str name f = { name; cell = (fun r -> Json.Str (f r)) }
  let int name f = { name; cell = (fun r -> Json.Int (f r)) }
  let num name f = { name; cell = (fun r -> Json.Float (f r)) }
  let bool name f = { name; cell = (fun r -> Json.Bool (f r)) }
end

let row cols r = Json.Obj (List.map (fun c -> (c.Col.name, c.Col.cell r)) cols)

let table ?title cols rs =
  let body = Json.Arr (List.map (row cols) rs) in
  match title with
  | None -> body
  | Some title -> Json.Obj [ ("title", Json.Str title); ("rows", body) ]

let points ?(x = "x") ?(y = "y") pts =
  Json.Arr
    (List.map
       (fun (px, py) -> Json.Obj [ (x, Json.Float px); (y, Json.Float py) ])
       pts)

let series ?x ?y s =
  points ?x ?y (Array.to_list (Ppp_util.Series.points s))
