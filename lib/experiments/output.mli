(** Structured experiment output.

    Every driver returns both its human-readable report and the same result
    as a JSON document, so [repro run --json] and tooling never have to
    re-parse the aligned tables. The [text] is exactly what the golden
    snapshots pin down; [data] is built from the driver's measured record
    (numbers stay numbers — fractions are not pre-formatted into percent
    strings). *)

module Json = Ppp_telemetry.Json

type t = {
  text : string;  (** the rendered report, unchanged from the text-only era *)
  data : Json.t;  (** the measurement behind it, machine-readable *)
}

val make : text:string -> data:Json.t -> t

val text_only : string -> t
(** [data] is [Null] — for reports with nothing structured to expose. *)

(** Typed table builder: declare each column once (name + how to read its
    value out of a row) and apply it to the row list. *)
module Col : sig
  type 'row t

  val str : string -> ('row -> string) -> 'row t
  val int : string -> ('row -> int) -> 'row t
  val num : string -> ('row -> float) -> 'row t
  val bool : string -> ('row -> bool) -> 'row t
end

val row : 'row Col.t list -> 'row -> Json.t
(** One row as an object, keys in column order. *)

val table : ?title:string -> 'row Col.t list -> 'row list -> Json.t
(** Rows as an array of objects; with [?title], wrapped as
    [{"title": ..., "rows": [...]}]. *)

val points : ?x:string -> ?y:string -> (float * float) list -> Json.t
(** Sample points as [{x, y}] objects (key names default to "x"/"y"). *)

val series : ?x:string -> ?y:string -> Ppp_util.Series.t -> Json.t
(** {!points} applied to a {!Ppp_util.Series.t}'s samples. *)
