(** The experiment index: every table/figure of the paper mapped to a
    runnable driver. *)

type t = {
  id : string;  (** e.g. "table1", "fig4" *)
  title : string;
  paper_ref : string;
  run : ?params:Ppp_core.Runner.params -> unit -> Output.t;
      (** [(run ()).text] is the report the goldens pin; [.data] the same
          result as JSON (what [repro run --json] prints). *)
}

val all : t list
val find : string -> t option
val ids : unit -> string list

val to_json : unit -> Ppp_telemetry.Json.t
(** Machine-readable registry (id, title, paper figure) for tooling/CI:
    what [repro list --json] prints. *)
