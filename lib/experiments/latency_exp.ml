open Ppp_core

type row = {
  scenario : string;
  throughput_pps : float;
  mean_cycles : float;
  p50_cycles : int;
  p99_cycles : int;
  max_cycles : int;
}

type data = { target : Ppp_apps.App.kind; rows : row list }

let row_of scenario (r : Ppp_hw.Engine.result) =
  let h = r.Ppp_hw.Engine.latency in
  {
    scenario;
    throughput_pps = r.Ppp_hw.Engine.throughput_pps;
    mean_cycles = Ppp_util.Histogram.mean h;
    p50_cycles = Ppp_util.Histogram.percentile h 50.0;
    p99_cycles = Ppp_util.Histogram.percentile h 99.0;
    max_cycles = Ppp_util.Histogram.max_value h;
  }

let measure ?(params = Runner.default_params) () =
  let target = Ppp_apps.App.MON in
  let solo = Runner.solo ~params target in
  let corun competitor label =
    let specs =
      Sensitivity.placement ~config:params.Runner.config Sensitivity.Both
        ~n_competitors:
          (min 5 (Ppp_hw.Machine.cores_per_socket params.Runner.config - 1))
        ~competitor ~target
    in
    let params =
      Runner.with_cell params ("latency/vs-" ^ Ppp_apps.App.name competitor)
    in
    match Runner.run ~params specs with
    | t :: _ -> row_of label t
    | [] -> assert false
  in
  {
    target;
    rows =
      [
        row_of "solo" solo;
        corun Ppp_apps.App.FW "vs 5 FW (mild)";
        corun Ppp_apps.App.MON "vs 5 MON";
        corun Ppp_apps.App.RE "vs 5 RE (aggressive)";
        corun Ppp_apps.App.syn_max "vs 5 SYN_MAX";
      ];
  }

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Per-packet latency of a %s flow under increasing contention \
            (cycles)"
           (Ppp_apps.App.name data.target))
      [ "scenario"; "pps"; "mean"; "p50"; "p99"; "max" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.scenario;
          Printf.sprintf "%.0f" r.throughput_pps;
          Printf.sprintf "%.0f" r.mean_cycles;
          string_of_int r.p50_cycles;
          string_of_int r.p99_cycles;
          string_of_int r.max_cycles;
        ])
    data.rows;
  let solo = List.hd data.rows in
  let worst = List.nth data.rows (List.length data.rows - 1) in
  Table.to_string t
  ^ Printf.sprintf
      "\ncontention inflated the median %.1fx but the p99 tail %.1fx.\n"
      (float_of_int worst.p50_cycles /. float_of_int (max 1 solo.p50_cycles))
      (float_of_int worst.p99_cycles /. float_of_int (max 1 solo.p99_cycles))

let data_json data =
  let open Output in
  Json.Obj
    [
      ("target", Json.Str (Ppp_apps.App.name data.target));
      ( "rows",
        table
          [
            Col.str "scenario" (fun r -> r.scenario);
            Col.num "throughput_pps" (fun r -> r.throughput_pps);
            Col.num "mean_cycles" (fun r -> r.mean_cycles);
            Col.int "p50_cycles" (fun r -> r.p50_cycles);
            Col.int "p99_cycles" (fun r -> r.p99_cycles);
            Col.int "max_cycles" (fun r -> r.max_cycles);
          ]
          data.rows );
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
