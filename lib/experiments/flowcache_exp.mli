(** Extension: what does an exact-match fast path do under contention?

    A flow cache in front of the LPM trie lets most packets (of a
    convergent flow universe) skip the trie walk. Its own lines live in the
    contended L3, but its footprint is much smaller than the trie's — so
    under aggressive co-runners the fast path's *relative* advantage grows:
    every avoided trie reference is a reference whose cost contention just
    inflated. Shrinking a flow's reference footprint is thus a
    contention-mitigation lever (it also lowers the flow's own
    aggressiveness, cf. Section 4's throttling discussion). *)

type cell = {
  scenario : string;  (** "solo" or "vs 5 SYN_MAX" *)
  plain_pps : float;  (** IP forwarding via the trie *)
  cached_pps : float;  (** IP forwarding via flow cache + trie *)
  speedup : float;  (** cached / plain *)
  hit_rate : float;  (** flow-cache hit rate in the cached run *)
}

type data = { cells : cell list }

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
