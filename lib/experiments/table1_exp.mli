(** Table 1: solo-run characteristics of each packet-processing type. *)

val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
val profiles : ?params:Ppp_core.Runner.params -> unit -> Ppp_core.Profile.t list
val data_json : Ppp_core.Profile.t list -> Output.Json.t
