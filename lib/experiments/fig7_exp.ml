open Ppp_core

type row = {
  competing_refs_per_sec : float;
  measured : float;
  per_fn : (string * float) list;
  model : float;
}

type data = { target : Ppp_apps.App.kind; rows : row list }

let tracked_fns =
  [ "radix_ip_lookup"; "flow_statistics"; "check_ip_header"; "skb_recycle" ]

let hits_per_packet (r : Ppp_hw.Engine.result) fn_name =
  let c = r.Ppp_hw.Engine.counters in
  let packets = float_of_int (max 1 r.Ppp_hw.Engine.packets) in
  let fn = Ppp_hw.Fn.register fn_name in
  float_of_int (Ppp_hw.Counters.fn_l3_hits c fn) /. packets

let overall_hits_per_packet (r : Ppp_hw.Engine.result) =
  let c = r.Ppp_hw.Engine.counters in
  float_of_int (Ppp_hw.Counters.l3_hits c)
  /. float_of_int (max 1 r.Ppp_hw.Engine.packets)

let conversion ~solo ~corun = if solo <= 0.0 then 0.0 else Float.max 0.0 (1.0 -. (corun /. solo))

let measure ?(params = Runner.default_params) () =
  let target = Ppp_apps.App.MON in
  let solo = Runner.solo ~params target in
  let config = params.Runner.config in
  let l3_lines =
    Ppp_hw.Machine.l3_bytes config / Ppp_hw.Machine.line_bytes config
  in
  let chunks =
    Ppp_apps.App.working_set_bytes target ~scale:config.Ppp_hw.Machine.scale / 64
  in
  let n_competitors = Exp_common.default_competitors config in
  let rows =
    Parallel.mapi
      (fun i level ->
        let params =
          Runner.cell_params params (Printf.sprintf "fig7/%d" i)
        in
        let specs =
          Sensitivity.placement ~config Sensitivity.Cache_only ~n_competitors
            ~competitor:(Ppp_apps.App.SYN level) ~target
        in
        match Runner.run ~params specs with
        | t :: competitors ->
            let competing =
              List.fold_left
                (fun acc (r : Ppp_hw.Engine.result) ->
                  acc +. r.Ppp_hw.Engine.l3_refs_per_sec)
                0.0 competitors
            in
            {
              competing_refs_per_sec = competing;
              measured =
                conversion
                  ~solo:(overall_hits_per_packet solo)
                  ~corun:(overall_hits_per_packet t);
              per_fn =
                List.map
                  (fun fn ->
                    ( fn,
                      conversion
                        ~solo:(hits_per_packet solo fn)
                        ~corun:(hits_per_packet t fn) ))
                  tracked_fns;
              model =
                Cache_model.conversion_rate ~cache_lines:l3_lines ~chunks
                  ~target_hits_per_sec:solo.Ppp_hw.Engine.l3_hits_per_sec
                  ~competing_refs_per_sec:competing;
            }
        | [] -> assert false)
      Sensitivity.default_syn_levels
  in
  let rows =
    List.sort (fun a b -> compare a.competing_refs_per_sec b.competing_refs_per_sec) rows
  in
  { target; rows }

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 7: hit-to-miss conversion (%%) of a %s flow vs cache \
            competition"
           (Ppp_apps.App.name data.target))
      ([ "competing refs/s (M)"; "measured"; "model" ] @ tracked_fns)
  in
  List.iter
    (fun r ->
      Table.add_row t
        ([
           Exp_common.millions r.competing_refs_per_sec;
           Exp_common.pct r.measured;
           Exp_common.pct r.model;
         ]
        @ List.map (fun (_, v) -> Exp_common.pct v) r.per_fn))
    data.rows;
  Table.to_string t

let data_json data =
  let open Output in
  Json.Obj
    [
      ("target", Json.Str (Ppp_apps.App.name data.target));
      ( "rows",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ( "competing_refs_per_sec",
                     Json.Float r.competing_refs_per_sec );
                   ("measured", Json.Float r.measured);
                   ("model", Json.Float r.model);
                   ( "per_fn",
                     Json.Obj
                       (List.map (fun (fn, v) -> (fn, Json.Float v)) r.per_fn)
                   );
                 ])
             data.rows) );
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
