(** Figure 2: contention-induced drop for every (target, N x competitor)
    pair of realistic flow types (N = {!Exp_common.default_competitors}),
    plus the per-target averages. *)

type data = {
  pairs : Exp_common.pair_result list;
  averages : (Ppp_apps.App.kind * float) list;
  n_competitors : int;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
