open Ppp_core

type side = {
  label : string;
  throughput_pps : float;
  per_core_pps : float;
  l3_refs_per_packet : float;
  l3_misses_per_packet : float;
  cores : int;
}

type data = {
  ip_parallel : side;
  ip_pipeline : side;
  extra_refs_per_packet : float;
  syn_parallel : side;
  syn_pipeline : side;
}

let side_of_results label results =
  let packets =
    List.fold_left
      (fun acc (r : Ppp_hw.Engine.result) -> acc + r.Ppp_hw.Engine.packets)
      0 results
  in
  let misses =
    List.fold_left
      (fun acc (r : Ppp_hw.Engine.result) ->
        acc + Ppp_hw.Counters.l3_misses r.Ppp_hw.Engine.counters)
      0 results
  in
  let refs =
    List.fold_left
      (fun acc (r : Ppp_hw.Engine.result) ->
        acc + Ppp_hw.Counters.l3_refs r.Ppp_hw.Engine.counters)
      0 results
  in
  let pps =
    List.fold_left
      (fun acc (r : Ppp_hw.Engine.result) ->
        acc +. r.Ppp_hw.Engine.throughput_pps)
      0.0 results
  in
  let cores = List.length results in
  {
    label;
    throughput_pps = pps;
    per_core_pps = pps /. float_of_int cores;
    l3_refs_per_packet = float_of_int refs /. float_of_int (max 1 packets);
    l3_misses_per_packet = float_of_int misses /. float_of_int (max 1 packets);
    cores;
  }

(* Parallel approach: one core performs the whole chain for its flow. *)
let run_parallel ~params ~mk_flow =
  let config = params.Runner.config in
  let hier = Ppp_hw.Machine.build config in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let source = mk_flow ~heap ~rng:(Ppp_util.Rng.split rng) in
  let flows = [ { Ppp_hw.Engine.core = 0; label = "parallel"; source } ] in
  Ppp_hw.Engine.run hier ~flows ~warmup_cycles:params.Runner.warmup_cycles
    ~measure_cycles:params.Runner.measure_cycles

(* Pipeline: one staged flow across two cores. *)
let run_pipeline ~params ~cores ~mk_staged =
  let config = params.Runner.config in
  let hier = Ppp_hw.Machine.build config in
  let heaps =
    Array.init config.Ppp_hw.Machine.topology.Ppp_hw.Topology.sockets
      (fun node -> Ppp_simmem.Heap.create ~node)
  in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let staged = mk_staged ~heaps ~rng in
  let sources = Ppp_click.Staged.sources staged in
  let flows =
    List.mapi
      (fun i core ->
        { Ppp_hw.Engine.core; label = Printf.sprintf "stage%d" i; source = sources.(i) })
      cores
  in
  Ppp_hw.Engine.run hier ~flows ~warmup_cycles:params.Runner.warmup_cycles
    ~measure_cycles:params.Runner.measure_cycles

let measure ?(params = Runner.default_params) () =
  let config = params.Runner.config in
  let scale = config.Ppp_hw.Machine.scale in
  let l3 = Ppp_hw.Machine.l3_bytes config in
  (* --- IP forwarding: parallel wins. --- *)
  let mk_ip_flow ~heap ~rng =
    let b = Ppp_apps.App.build Ppp_apps.App.IP ~heap ~rng ~scale in
    Ppp_click.Flow.source
      (Ppp_click.Flow.create ~heap ~rng ~label:"IP"
         ~source:b.Ppp_apps.App.source ~elements:b.Ppp_apps.App.elements ())
  in
  let ip_par = side_of_results "IP parallel (1 core)" (run_parallel ~params ~mk_flow:mk_ip_flow) in
  let mk_ip_staged ~heaps ~rng =
    let b = Ppp_apps.App.build Ppp_apps.App.IP ~heap:heaps.(0) ~rng ~scale in
    let stage0, stage1 =
      match b.Ppp_apps.App.elements with
      | first :: rest -> ([ first ], rest)
      | [] -> assert false
    in
    Ppp_click.Staged.create ~heap:heaps.(0) ~rng ~label:"IP-pipe"
      ~gen:(Ppp_traffic.Source.to_gen b.Ppp_apps.App.source)
      ~stages:[ stage0; stage1 ] ()
  in
  let ip_pipe =
    side_of_results "IP pipeline (2 cores)"
      (run_pipeline ~params ~cores:[ 0; 1 ] ~mk_staged:mk_ip_staged)
  in
  (* --- Contrived SYN workload: pipeline wins. ---
     Parallel: each core makes many random reads into a structure twice the
     L3. Pipeline: the structure is split in half across the two sockets'
     caches, each stage handling its half. *)
  let reads_total = 200 in
  let syn_buffer = 2 * l3 in
  let mk_syn_flow ~heap ~rng =
    let syn =
      Ppp_apps.More_elements.Syn.create ~heap ~rng ~buffer_bytes:syn_buffer
        ~reads_per_packet:reads_total ~instrs_per_packet:100
    in
    let gen pkt =
      Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001 ~dst:0x0A000002
        ~sport:7 ~dport:7 ~wire_len:64
    in
    Ppp_click.Flow.source
      (Ppp_click.Flow.create_gen ~heap ~rng ~label:"SYN2x" ~gen
         ~elements:[ Ppp_apps.More_elements.Syn.element syn ] ())
  in
  let syn_par =
    side_of_results "SYN-2xL3 parallel (1 core)"
      (run_parallel ~params ~mk_flow:mk_syn_flow)
  in
  let mk_syn_staged ~heaps ~rng =
    let half node =
      Ppp_apps.More_elements.Syn.create ~heap:heaps.(node)
        ~rng:(Ppp_util.Rng.split rng)
        ~buffer_bytes:(l3 * 9 / 10) ~reads_per_packet:(reads_total / 2)
        ~instrs_per_packet:50
    in
    let gen pkt =
      Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001 ~dst:0x0A000002
        ~sport:7 ~dport:7 ~wire_len:64
    in
    Ppp_click.Staged.create ~heap:heaps.(0) ~rng ~label:"SYN-pipe" ~gen
      ~stages:
        [
          [ Ppp_apps.More_elements.Syn.element (half 0) ];
          [ Ppp_apps.More_elements.Syn.element (half 1) ];
        ]
      ()
  in
  let cps = Ppp_hw.Machine.cores_per_socket config in
  let syn_pipe =
    side_of_results "SYN-2xL3 pipeline (2 sockets)"
      (run_pipeline ~params ~cores:[ 0; cps ] ~mk_staged:mk_syn_staged)
  in
  {
    ip_parallel = ip_par;
    ip_pipeline = ip_pipe;
    extra_refs_per_packet =
      ip_pipe.l3_refs_per_packet -. ip_par.l3_refs_per_packet;
    syn_parallel = syn_par;
    syn_pipeline = syn_pipe;
  }

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:"Section 2.2: parallel vs pipelined parallelization"
      [ "configuration"; "cores"; "throughput (pps)"; "pps/core";
        "L3 refs/packet"; "L3 misses/packet" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.label;
          string_of_int s.cores;
          Printf.sprintf "%.0f" s.throughput_pps;
          Printf.sprintf "%.0f" s.per_core_pps;
          Table.cell_f s.l3_refs_per_packet;
          Table.cell_f s.l3_misses_per_packet;
        ])
    [ data.ip_parallel; data.ip_pipeline; data.syn_parallel; data.syn_pipeline ];
  Table.to_string t
  ^ Printf.sprintf
      "\npipelining the IP workload costs %.1f extra L3 refs/packet and %.1f%% \
       of per-core throughput;\nthe contrived 2xL3 workload gains %.1fx \
       per-core from pipelining across sockets.\n"
      data.extra_refs_per_packet
      (100.0
      *. (data.ip_parallel.per_core_pps -. data.ip_pipeline.per_core_pps)
      /. data.ip_parallel.per_core_pps)
      (data.syn_pipeline.per_core_pps /. data.syn_parallel.per_core_pps)

let data_json data =
  let open Output in
  Json.Obj
    [
      ( "sides",
        table
          [
            Col.str "configuration" (fun s -> s.label);
            Col.int "cores" (fun s -> s.cores);
            Col.num "throughput_pps" (fun s -> s.throughput_pps);
            Col.num "per_core_pps" (fun s -> s.per_core_pps);
            Col.num "l3_refs_per_packet" (fun s -> s.l3_refs_per_packet);
            Col.num "l3_misses_per_packet" (fun s -> s.l3_misses_per_packet);
          ]
          [
            data.ip_parallel;
            data.ip_pipeline;
            data.syn_parallel;
            data.syn_pipeline;
          ] );
      ("extra_refs_per_packet", Json.Float data.extra_refs_per_packet);
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
