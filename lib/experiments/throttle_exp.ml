open Ppp_core

type data = {
  victim_solo_pps : float;
  victim_with_tame_pps : float;
  victim_with_loud_pps : float;
  victim_with_throttled_pps : float;
  attacker_refs_budget : float;
  attacker_loud_refs : float;
  attacker_throttled_refs : float;
}

(* The paper's five attackers, clamped so the scenario also fits the tiny
   machine (victim on core 0, attackers on the rest). *)
let n_attackers ~config =
  min 5 (Ppp_hw.Topology.cores config.Ppp_hw.Machine.topology - 1)

let run_scenario ~params ~switch_after ~throttle_budget =
  let config = params.Runner.config in
  let scale = config.Ppp_hw.Machine.scale in
  let hier = Ppp_hw.Machine.build config in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let victim =
    Ppp_apps.App.flow Ppp_apps.App.MON ~heap ~rng:(Ppp_util.Rng.split rng)
      ~scale ~label:"MON" ()
  in
  let freq_hz = config.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz in
  let attackers =
    List.init (n_attackers ~config) (fun i ->
        let elements =
          Throttle.Two_faced.elements ~heap ~rng:(Ppp_util.Rng.split rng)
            ~buffer_bytes:(12 * 1024 * 1024 / scale)
            ~quiet_reads:4 ~loud_reads:256 ~switch_after
        in
        let flow =
          Ppp_click.Flow.create ~heap ~rng:(Ppp_util.Rng.split rng)
            ~label:"two-faced" ~source:(Throttle.Two_faced.source ()) ~elements
            ()
        in
        let source = Ppp_click.Flow.source flow in
        let source =
          match throttle_budget with
          | None -> source
          | Some budget ->
              (* Meter the quantity the paper's prediction uses: L3 refs/sec
                 read from the core's hardware counters. *)
              Throttle.l3_budget_source ~budget_l3_refs_per_sec:budget ~hier
                ~core:(1 + i) ~freq_hz source
        in
        { Ppp_hw.Engine.core = 1 + i; label = "two-faced"; source })
  in
  let flows =
    { Ppp_hw.Engine.core = 0; label = "MON"; source = Ppp_click.Flow.source victim }
    :: attackers
  in
  Ppp_hw.Engine.run hier ~flows ~warmup_cycles:params.Runner.warmup_cycles
    ~measure_cycles:params.Runner.measure_cycles


let measure ?(params = Runner.default_params) () =
  let never = max_int in
  let solo = Runner.solo ~params Ppp_apps.App.MON in
  let tame = run_scenario ~params ~switch_after:never ~throttle_budget:None in
  let loud = run_scenario ~params ~switch_after:0 ~throttle_budget:None in
  let victim_tame = List.hd tame and victim_loud = List.hd loud in
  (* The profiled budget: the tame attackers' observed reference rate. *)
  let budget =
    match tame with
    | _ :: (a : Ppp_hw.Engine.result) :: _ ->
        a.Ppp_hw.Engine.l3_refs_per_sec *. 1.05
    | _ -> assert false
  in
  let throttled =
    run_scenario ~params ~switch_after:0 ~throttle_budget:(Some budget)
  in
  let victim_throttled = List.hd throttled in
  let attacker_rate results =
    match results with
    | _ :: (a : Ppp_hw.Engine.result) :: _ -> a.Ppp_hw.Engine.l3_refs_per_sec
    | _ -> 0.0
  in
  {
    victim_solo_pps = solo.Ppp_hw.Engine.throughput_pps;
    victim_with_tame_pps = victim_tame.Ppp_hw.Engine.throughput_pps;
    victim_with_loud_pps = victim_loud.Ppp_hw.Engine.throughput_pps;
    victim_with_throttled_pps = victim_throttled.Ppp_hw.Engine.throughput_pps;
    attacker_refs_budget = budget;
    attacker_loud_refs = attacker_rate loud;
    attacker_throttled_refs = attacker_rate throttled;
  }

let render d =
  let drop x = Exp_common.pct ((d.victim_solo_pps -. x) /. d.victim_solo_pps) in
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Section 4: containing hidden aggressiveness (victim = MON, 5 \
         two-faced co-runners)"
      [ "scenario"; "victim pps"; "victim drop (%)"; "attacker refs/s (M)" ]
  in
  Table.add_row t
    [ "victim solo"; Printf.sprintf "%.0f" d.victim_solo_pps; "0.00"; "-" ];
  Table.add_row t
    [
      "attackers as profiled (tame)";
      Printf.sprintf "%.0f" d.victim_with_tame_pps;
      drop d.victim_with_tame_pps;
      Exp_common.millions (d.attacker_refs_budget /. 1.05);
    ];
  Table.add_row t
    [
      "attackers switch to SYN_MAX";
      Printf.sprintf "%.0f" d.victim_with_loud_pps;
      drop d.victim_with_loud_pps;
      Exp_common.millions d.attacker_loud_refs;
    ];
  Table.add_row t
    [
      "switched but throttled to profile";
      Printf.sprintf "%.0f" d.victim_with_throttled_pps;
      drop d.victim_with_throttled_pps;
      Exp_common.millions d.attacker_throttled_refs;
    ];
  Table.to_string t
  ^ Printf.sprintf
      "\nthrottle budget %.1fM refs/s; throttled attackers stayed at %.1fM \
       refs/s (within budget: %b)\n"
      (d.attacker_refs_budget /. 1e6)
      (d.attacker_throttled_refs /. 1e6)
      (d.attacker_throttled_refs <= d.attacker_refs_budget *. 1.02)

let data_json d =
  let open Output in
  Json.Obj
    [
      ("victim_solo_pps", Json.Float d.victim_solo_pps);
      ("victim_with_tame_pps", Json.Float d.victim_with_tame_pps);
      ("victim_with_loud_pps", Json.Float d.victim_with_loud_pps);
      ("victim_with_throttled_pps", Json.Float d.victim_with_throttled_pps);
      ("attacker_refs_budget", Json.Float d.attacker_refs_budget);
      ("attacker_loud_refs", Json.Float d.attacker_loud_refs);
      ("attacker_throttled_refs", Json.Float d.attacker_throttled_refs);
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
