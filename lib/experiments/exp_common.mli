(** Shared helpers for the per-figure experiment drivers. *)

val realistic : Ppp_apps.App.kind list

type pair_result = {
  target : Ppp_apps.App.kind;
  competitor : Ppp_apps.App.kind;
  drop : float;
  competing_refs_per_sec : float;
  target_result : Ppp_hw.Engine.result;
}

val solo_results :
  params:Ppp_core.Runner.params ->
  Ppp_apps.App.kind list ->
  (Ppp_apps.App.kind * Ppp_hw.Engine.result) list
(** Solo baselines, one parallel cell per kind. *)

val default_competitors : Ppp_hw.Machine.config -> int
(** The paper's five co-runners, clamped to what one socket can hold. *)

val pair_matrix :
  params:Ppp_core.Runner.params ->
  solos:(Ppp_apps.App.kind * Ppp_hw.Engine.result) list ->
  ?n_competitors:int ->
  Ppp_apps.App.kind list ->
  pair_result list
(** For every ordered pair (X, Y): X co-runs with [n_competitors] (default
    {!default_competitors}) flows of type Y, all on one socket with local
    data — the Figure 2 scenarios. Cells run under {!Ppp_core.Parallel.map},
    each seeded from its (target, competitor) label. *)

val find_pair :
  pair_result list -> target:Ppp_apps.App.kind -> competitor:Ppp_apps.App.kind ->
  pair_result

val avg_drop_per_target :
  pair_result list -> (Ppp_apps.App.kind * float) list

val pct : float -> string
(** "12.34" for 0.1234. *)

val millions : float -> string
