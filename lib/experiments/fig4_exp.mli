(** Figure 4: drop vs competing refs/sec under the three Figure 3
    configurations (cache-only, memory-controller-only, both). *)

type data = (Ppp_core.Sensitivity.resource * Ppp_core.Sensitivity.curve list) list

val measure :
  ?params:Ppp_core.Runner.params ->
  ?levels:Ppp_apps.App.syn_params list ->
  ?targets:Ppp_apps.App.kind list ->
  unit ->
  data

val render : data -> string

val curve_json : Ppp_core.Sensitivity.curve -> Output.Json.t
(** Shared with {!Fig5_exp}: one sensitivity curve as JSON. *)

val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
