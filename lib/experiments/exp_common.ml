open Ppp_core

let realistic = Ppp_apps.App.realistic

type pair_result = {
  target : Ppp_apps.App.kind;
  competitor : Ppp_apps.App.kind;
  drop : float;
  competing_refs_per_sec : float;
  target_result : Ppp_hw.Engine.result;
}

let solo_results ~params kinds =
  (* One cell per kind; Runner.solo derives each cell's seed. *)
  Parallel.map (fun k -> (k, Runner.solo ~params k)) kinds

let default_competitors config =
  min 5 (Ppp_hw.Machine.cores_per_socket config - 1)

let pair_matrix ~params ~solos ?n_competitors kinds =
  let n_competitors =
    match n_competitors with
    | Some n -> n
    | None -> default_competitors params.Runner.config
  in
  let pair (target, competitor) =
    let params =
      Runner.cell_params params
        (Printf.sprintf "pair/%s/%s" (Ppp_apps.App.name target)
           (Ppp_apps.App.name competitor))
    in
    let specs =
      Sensitivity.placement ~config:params.Runner.config Sensitivity.Both
        ~n_competitors ~competitor ~target
    in
    match Runner.run ~params specs with
    | t :: competitors ->
        let solo = List.assoc target solos in
        {
          target;
          competitor;
          drop = Runner.drop ~solo ~corun:t;
          competing_refs_per_sec =
            List.fold_left
              (fun acc (r : Ppp_hw.Engine.result) ->
                acc +. r.Ppp_hw.Engine.l3_refs_per_sec)
              0.0 competitors;
          target_result = t;
        }
    | [] -> assert false
  in
  Parallel.map pair
    (List.concat_map (fun t -> List.map (fun c -> (t, c)) kinds) kinds)

let find_pair pairs ~target ~competitor =
  List.find
    (fun p -> p.target = target && p.competitor = competitor)
    pairs

let avg_drop_per_target pairs =
  let targets =
    List.sort_uniq compare (List.map (fun p -> p.target) pairs)
  in
  List.map
    (fun t ->
      let drops =
        List.filter_map
          (fun p -> if p.target = t then Some p.drop else None)
          pairs
      in
      ( t,
        List.fold_left ( +. ) 0.0 drops /. float_of_int (List.length drops) ))
    targets

let pct x = Printf.sprintf "%.2f" (100.0 *. x)
let millions x = Printf.sprintf "%.1f" (x /. 1e6)
