(** Section 4, "Containing hidden aggressiveness": a flow that profiles
    tame and turns into SYN_MAX mid-run damages a co-running MON flow;
    throttling its memory-reference rate to the profiled budget restores the
    victim's predicted performance. *)

type data = {
  victim_solo_pps : float;
  victim_with_tame_pps : float;  (** two-faced flow before it switches *)
  victim_with_loud_pps : float;  (** after the switch, unthrottled *)
  victim_with_throttled_pps : float;  (** after the switch, throttled *)
  attacker_refs_budget : float;  (** refs/sec allowed by the throttle *)
  attacker_loud_refs : float;  (** refs/sec it reached unthrottled *)
  attacker_throttled_refs : float;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
