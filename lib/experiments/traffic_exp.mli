(** Extension: prediction and monitoring under realistic traffic.

    The paper calibrates a flow's sensitivity curve and the monitor's
    profiles under stationary uniform traffic. This experiment drives a
    classification pipeline with production source models — heavy-tailed
    flow sizes ({!Ppp_traffic.Heavy_tail}), Markov-modulated bursts
    ({!Ppp_traffic.Onoff}) and flow churn ({!Ppp_traffic.Churn}) — behind
    an RSS or Flow-Director steering model ({!Ppp_traffic.Steering}), and
    reports how far the stationary-calibrated prediction drifts
    (|measured - predicted| drop vs 5 SYN_MAX co-runners), how many false
    aggressor alerts the monitor raises with no aggressor present, and the
    reordering each steering model produces (one sequence inversion per
    Flow-Director migration; zero under RSS). [params.traffic] and
    [params.steering] select the sweep's slice. *)

type cell = {
  model : string;  (** "heavy" | "onoff" | "churn" *)
  knob : string;  (** model-specific skew knob, e.g. "alpha=1.1" *)
  steering : string;  (** "rss" | "fdir" *)
  solo_pps : float;
  measured_drop : float;  (** vs 5 SYN_MAX co-runners *)
  predicted_drop : float;  (** stationary twin curve at measured refs *)
  abs_err : float;  (** |measured - predicted| *)
  false_alerts : int;  (** hidden-aggressor alerts; no aggressor exists *)
  reorders : int;  (** victim-observed sequence inversions (co-run) *)
  migrations : int;  (** Flow-Director flow migrations (co-run) *)
  evictions : int;  (** flow-table evictions (co-run) *)
  packets : int;  (** victim packets in the measured window (co-run) *)
  lat_p99_inorder : int;
      (** p99 per-packet latency (cycles) over in-order deliveries (co-run) *)
  lat_p99_reordered : int;
      (** p99 latency over reordered deliveries; 0 when none were reordered
          — every RSS cell, where steering never migrates a flow *)
}

type data = {
  twin_solo_pps : float;
  curve_points : (float * float) list;  (** (competing refs/s, drop) *)
  cells : cell list;
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
