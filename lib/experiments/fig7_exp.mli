(** Figure 7: hit-to-miss conversion rate of a MON flow vs cache competition
    — measured overall, per function (radix_ip_lookup, flow_statistics,
    check_ip_header, skb_recycle), and estimated by the Appendix-A model. *)

type row = {
  competing_refs_per_sec : float;
  measured : float;  (** overall conversion rate *)
  per_fn : (string * float) list;
  model : float;
}

type data = { target : Ppp_apps.App.kind; rows : row list }

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
