open Ppp_core

let profiles ?(params = Runner.default_params) () =
  Profile.table1 ~params (Ppp_apps.App.realistic @ [ Ppp_apps.App.syn_max ])

let data_json ps =
  let open Output in
  table
    [
      Col.str "flow" (fun (p : Profile.t) -> Ppp_apps.App.name p.Profile.kind);
      Col.num "throughput_pps" (fun p -> p.Profile.throughput_pps);
      Col.num "cycles_per_instruction" (fun p ->
          p.Profile.cycles_per_instruction);
      Col.num "l3_refs_per_sec" (fun p -> p.Profile.l3_refs_per_sec);
      Col.num "l3_hits_per_sec" (fun p -> p.Profile.l3_hits_per_sec);
      Col.num "cycles_per_packet" (fun p -> p.Profile.cycles_per_packet);
      Col.num "l3_refs_per_packet" (fun p -> p.Profile.l3_refs_per_packet);
      Col.num "l3_misses_per_packet" (fun p -> p.Profile.l3_misses_per_packet);
      Col.num "l2_hits_per_packet" (fun p -> p.Profile.l2_hits_per_packet);
      Col.num "l1_hits_per_packet" (fun p -> p.Profile.l1_hits_per_packet);
    ]
    ps

let run ?params () =
  let ps = profiles ?params () in
  Output.make
    ~text:(Ppp_util.Table.to_string (Profile.to_table ps))
    ~data:(data_json ps)
