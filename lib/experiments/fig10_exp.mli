(** Figure 10: the (small) benefit of contention-aware scheduling.

    For several 12-flow combinations, every distinct flow-to-socket
    placement is evaluated; the figure reports the average drop under the
    best and worst placements (10a) and the per-flow breakdown for the
    6 MON + 6 FW combination (10b). *)

type combo_result = {
  combo : Ppp_core.Scheduler.combo;
  best : Ppp_core.Scheduler.evaluation;
  worst : Ppp_core.Scheduler.evaluation;
}

type data = {
  combos : combo_result list;
  detail : combo_result;  (** the 6 MON + 6 FW combination *)
}

(** The paper's eight combinations, with per-kind counts scaled so every
    combo fills the machine's 2 * cores_per_socket cores. *)
val default_combos : config:Ppp_hw.Machine.config -> Ppp_core.Scheduler.combo list
val measure : ?params:Ppp_core.Runner.params -> ?combos:Ppp_core.Scheduler.combo list -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t

val max_gain : data -> float
(** Largest best-vs-worst average-drop gap across realistic combos. *)
