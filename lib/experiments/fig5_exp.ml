open Ppp_core

type point_check = {
  target : Ppp_apps.App.kind;
  competitor : Ppp_apps.App.kind;
  competing_refs_per_sec : float;
  measured_drop : float;
  curve_drop : float;
}

type data = {
  curves : (Ppp_apps.App.kind * Sensitivity.curve) list;
  checks : point_check list;
}

let measure ?(params = Runner.default_params) () =
  let kinds = Exp_common.realistic in
  let curves =
    Parallel.map
      (fun k -> (k, Sensitivity.measure ~params ~resource:Sensitivity.Both k))
      kinds
  in
  let solos = Exp_common.solo_results ~params kinds in
  let pairs = Exp_common.pair_matrix ~params ~solos kinds in
  let checks =
    List.map
      (fun (p : Exp_common.pair_result) ->
        let series = Sensitivity.to_series (List.assoc p.Exp_common.target curves) in
        {
          target = p.Exp_common.target;
          competitor = p.Exp_common.competitor;
          competing_refs_per_sec = p.Exp_common.competing_refs_per_sec;
          measured_drop = p.Exp_common.drop;
          curve_drop =
            Ppp_util.Series.eval series p.Exp_common.competing_refs_per_sec;
        })
      pairs
  in
  { curves; checks }

let max_deviation data =
  List.fold_left
    (fun acc c -> Float.max acc (Float.abs (c.measured_drop -. c.curve_drop)))
    0.0 data.checks

let render data =
  let open Ppp_util in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (kind, curve) ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf "Figure 5 — %s(S): SYN sensitivity curve"
               (Ppp_apps.App.name kind))
          [ "competing refs/s (M)"; "drop (%)" ]
      in
      List.iter
        (fun (p : Sensitivity.point) ->
          Table.add_row t
            [
              Exp_common.millions p.Sensitivity.competing_refs_per_sec;
              Exp_common.pct p.Sensitivity.drop;
            ])
        curve.Sensitivity.points;
      Buffer.add_string buf (Table.to_string t);
      Buffer.add_char buf '\n')
    data.curves;
  let t =
    Table.create
      ~title:
        "Figure 5 — realistic points X(R) against the SYN curve at the same \
         competing refs/sec"
      [
        "target";
        "competitors";
        "competing refs/s (M)";
        "measured drop (%)";
        "SYN-curve drop (%)";
        "deviation (pp)";
      ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Ppp_apps.App.name c.target;
          "5 " ^ Ppp_apps.App.name c.competitor;
          Exp_common.millions c.competing_refs_per_sec;
          Exp_common.pct c.measured_drop;
          Exp_common.pct c.curve_drop;
          Exp_common.pct (c.measured_drop -. c.curve_drop);
        ])
    data.checks;
  Buffer.add_string buf (Table.to_string t);
  Printf.bprintf buf "\nmax |deviation| = %s%%\n"
    (Exp_common.pct (max_deviation data));
  Buffer.contents buf

let data_json data =
  let open Output in
  Json.Obj
    [
      ( "curves",
        Json.Arr (List.map (fun (_, c) -> Fig4_exp.curve_json c) data.curves)
      );
      ( "checks",
        table
          [
            Col.str "target" (fun c -> Ppp_apps.App.name c.target);
            Col.str "competitor" (fun c -> Ppp_apps.App.name c.competitor);
            Col.num "competing_refs_per_sec" (fun c ->
                c.competing_refs_per_sec);
            Col.num "measured_drop" (fun c -> c.measured_drop);
            Col.num "curve_drop" (fun c -> c.curve_drop);
          ]
          data.checks );
      ("max_deviation", Json.Float (max_deviation data));
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
