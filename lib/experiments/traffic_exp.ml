open Ppp_core
module Detector = Ppp_monitor.Detector

(* Traffic realism: how far do the paper's stationary prediction and
   monitoring methods degrade when the traffic itself is non-stationary?

   The victim is a classification pipeline (check header -> flow-table fast
   path over a TSS slow path -> TTL) driven by one of three production
   source models — heavy-tailed flow sizes, Markov-modulated ON/OFF bursts,
   flow churn over a live-flow table — behind an RSS or Flow-Director
   steering model. Its sensitivity curve is calibrated the paper's way, on
   a *stationary* uniform twin against a SYN ramp; each cell then measures
   the real drop against 5 SYN_MAX co-runners, evaluates the stationary
   curve at the measured competing refs/sec (perfect-knowledge prediction),
   and lets the online monitor watch the co-run with no actual aggressor in
   the mix — every hidden-aggressor alert it raises is a false positive
   charged to traffic non-stationarity. Flow-Director cells additionally
   surface the steering model's reordering: one sequence inversion per flow
   migration, observed by the victim's per-flow reorder detector. *)

type cell = {
  model : string;  (** "heavy" | "onoff" | "churn" *)
  knob : string;  (** model-specific skew knob, e.g. "alpha=1.1" *)
  steering : string;  (** "rss" | "fdir" *)
  solo_pps : float;
  measured_drop : float;  (** vs 5 SYN_MAX co-runners *)
  predicted_drop : float;  (** stationary twin curve at measured refs *)
  abs_err : float;  (** |measured - predicted| *)
  false_alerts : int;  (** hidden-aggressor alerts; no aggressor exists *)
  reorders : int;  (** victim-observed sequence inversions (co-run) *)
  migrations : int;  (** Flow-Director flow migrations (co-run) *)
  evictions : int;  (** flow-table evictions (co-run) *)
  packets : int;  (** victim packets in the measured window (co-run) *)
  lat_p99_inorder : int;  (** victim p99 latency, in-order packets *)
  lat_p99_reordered : int;
      (** victim p99 latency, reordered packets (0 when none arrived out
          of order in the window — every RSS cell) *)
}

type data = {
  twin_solo_pps : float;
  curve_points : (float * float) list;  (** (competing refs/s, drop) *)
  cells : cell list;
}

(* One knob value per model stresses the method mildly, the other hard:
   alpha 1.9 vs 1.1 (tail weight), mean ON dwell 32 vs 512 packets (burst
   length), churn every 64 vs 8 packets (arrival rate). *)
type model_cfg =
  | Uniform  (** the stationary calibration twin — never a cell *)
  | Heavy of float  (** bounded-Pareto tail index *)
  | Onoff of int  (** mean ON dwell, packets *)
  | Churn of int  (** one departure+arrival per this many packets *)

let model_name = function
  | Uniform -> "uniform"
  | Heavy _ -> "heavy"
  | Onoff _ -> "onoff"
  | Churn _ -> "churn"

let knob_name = function
  | Uniform -> "-"
  | Heavy a -> Printf.sprintf "alpha=%.1f" a
  | Onoff on -> Printf.sprintf "on=%d" on
  | Churn every -> Printf.sprintf "churn=%d" every

(* Live-flow universe and classifier sizing, scaled down with the machine
   like every other working set. The flow table holds a quarter of the
   live set, so churn's never-repeating arrivals evict for real. *)
let universe scale = max 256 (16384 / scale)
let rule_count scale = max 16 (1024 / scale)
let mean_off = 256
let burst_flows = 4
let migrate_every = 256

let curve_levels =
  List.map
    (fun (reads, instrs) -> { Ppp_apps.App.reads; instrs })
    [ (2, 80_000); (16, 6_000); (32, 1_200); (64, 400); (256, 0) ]

let models_of_params (params : Runner.params) =
  let all = [ Heavy 1.9; Heavy 1.1; Onoff 32; Onoff 512; Churn 64; Churn 8 ] in
  match params.Runner.traffic with
  | Runner.All_models -> all
  | Runner.Heavy_tail ->
      List.filter (function Heavy _ -> true | _ -> false) all
  | Runner.Onoff -> List.filter (function Onoff _ -> true | _ -> false) all
  | Runner.Churn -> List.filter (function Churn _ -> true | _ -> false) all

let steerings_of_params (params : Runner.params) =
  match params.Runner.steering with
  | Runner.Both_steerings ->
      [ Ppp_traffic.Steering.Rss; Ppp_traffic.Steering.Flow_director ]
  | Runner.Rss -> [ Ppp_traffic.Steering.Rss ]
  | Runner.Flow_director -> [ Ppp_traffic.Steering.Flow_director ]

let uniform_source ~rng ~flows =
  let seqs = Array.make flows 0 in
  Ppp_traffic.Source.make ~name:"uniform"
    ~fill:(fun s pkt ->
      let f = Ppp_util.Rng.int rng flows in
      Ppp_traffic.Gen.fill_flow pkt ~flow:f ~wire_len:64;
      let seq = seqs.(f) in
      seqs.(f) <- seq + 1;
      Ppp_traffic.Source.set_meta s ~flow:f ~seq;
      Ppp_traffic.Source.Filled)
    ()

let model_source cfg ~u ~seed ~rng =
  match cfg with
  | Uniform -> uniform_source ~rng ~flows:u
  | Heavy alpha ->
      let ht = Ppp_traffic.Heavy_tail.create ~seed ~flows:u ~alpha () in
      Ppp_traffic.Heavy_tail.source ht ~rng ()
  | Onoff mean_on ->
      (* Background is the uniform twin; bursts take ids above it. *)
      let base = uniform_source ~rng ~flows:u in
      let oo =
        Ppp_traffic.Onoff.create ~mean_on ~mean_off ~burst_flows ~flow_base:u
          ()
      in
      Ppp_traffic.Onoff.source oo ~rng ~base ()
  | Churn every ->
      let ch = Ppp_traffic.Churn.create ~live:u ~churn_every:every () in
      Ppp_traffic.Churn.source ch ~rng ()

(* One engine run of the victim pipeline under [cfg]+[steering], optionally
   against co-runners of [competitor] kind (built after the victim from the
   same stream, so the victim's simulation is identical either way). *)
let run_phase ~(params : Runner.params) ~cfg ~steering ?probe ?competitor ()
    =
  let config = params.Runner.config in
  let scale = config.Ppp_hw.Machine.scale in
  let hier = Ppp_hw.Machine.build config in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let u = universe scale in
  let rules =
    Ppp_classify.Rulegen.make ~rng:(Ppp_util.Rng.split rng)
      ~n:(rule_count scale)
  in
  let fp =
    Ppp_classify.Fastpath.create ~heap ~table_entries:(max 16 (u / 4))
      ~backend:Ppp_classify.Classifier.Tss rules
  in
  let inner =
    model_source cfg ~u ~seed:params.Runner.seed ~rng:(Ppp_util.Rng.split rng)
  in
  let st =
    Ppp_traffic.Steering.create ~migrate_every
      ~cores:(Ppp_hw.Machine.cores_per_socket config)
      steering
  in
  let source = Ppp_traffic.Steering.source st inner in
  let elements =
    [
      Ppp_apps.Ip_elements.check_ip_header ();
      Ppp_classify.Fastpath.element fp;
      Ppp_apps.Ip_elements.dec_ip_ttl ();
    ]
  in
  let victim =
    Ppp_click.Flow.create ~heap ~rng:(Ppp_util.Rng.split rng) ~label:"victim"
      ~source ~elements ()
  in
  let competitors =
    match competitor with
    | None -> []
    | Some kind ->
        List.init
          (min 5 (Ppp_hw.Machine.cores_per_socket config - 1))
          (fun i ->
            let f =
              Ppp_apps.App.flow kind ~heap ~rng:(Ppp_util.Rng.split rng)
                ~scale ()
            in
            {
              Ppp_hw.Engine.core = 1 + i;
              label = "SYN";
              source = Ppp_click.Flow.source f;
            })
  in
  let results =
    Ppp_hw.Engine.run ?probe ~batch:params.Runner.batch hier
      ~flows:
        ({
           Ppp_hw.Engine.core = 0;
           label = "victim";
           source = Ppp_click.Flow.source victim;
         }
        :: competitors)
      ~warmup_cycles:params.Runner.warmup_cycles
      ~measure_cycles:params.Runner.measure_cycles
  in
  (List.hd results, results, victim, fp, st)

(* The paper's offline calibration, on the stationary twin: solo baseline,
   then drop vs competing refs/sec along a SYN ramp (5 co-runners per
   level, the same shape the cells face). *)
let stationary_curve ~(params : Runner.params) =
  let solo_p = Runner.cell_params params "traffic/curve/solo" in
  let solo_r, _, _, _, _ =
    run_phase ~params:solo_p ~cfg:Uniform ~steering:Ppp_traffic.Steering.Rss
      ()
  in
  let points =
    List.map
      (fun (level : Ppp_apps.App.syn_params) ->
        let p =
          Runner.cell_params params
            (Printf.sprintf "traffic/curve/%d" level.Ppp_apps.App.reads)
        in
        let r, results, _, _, _ =
          run_phase ~params:p ~cfg:Uniform ~steering:Ppp_traffic.Steering.Rss
            ~competitor:(Ppp_apps.App.SYN level) ()
        in
        ( Runner.competing_refs_per_sec results ~target:r,
          Runner.drop ~solo:solo_r ~corun:r ))
      curve_levels
  in
  (solo_r, Ppp_util.Series.of_points ((0.0, 0.0) :: points))

let sample_cycles_of (params : Runner.params) =
  max 1 (params.Runner.measure_cycles / 20)

let run_cell ~(params : Runner.params) ~curve
    ~(twin_solo : Ppp_hw.Engine.result) ~(syn_solo : Profile.t) ~cfg ~steering
    =
  let mname = model_name cfg in
  let sname = Ppp_traffic.Steering.model_name steering in
  let label = Printf.sprintf "traffic/%s/%s/%s" mname (knob_name cfg) sname in
  let params = Runner.cell_params params label in
  let config = params.Runner.config in
  let freq_hz = config.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz in
  let solo_r, _, _, _, _ = run_phase ~params ~cfg ~steering () in
  (* The monitor watches the co-run the way it would be deployed: the
     victim's profile is the *stationary twin's* lab characterization (the
     paper's offline methodology), and the SYN_MAX co-runners are exactly
     as characterized. Nothing in the mix is an aggressor, so every
     hidden-aggressor alert is a false positive charged to the gap between
     lab traffic and production traffic. *)
  (* Tightened aggressor margin: the default 0.5 was chosen for flows whose
     lab profile matches their production behaviour; a production monitor
     is tuned tighter to catch modest aggressors. 0.25 is the operating
     point where a stationary victim never trips (its refs sit within a
     few percent of profile, see the classifier cells) but a heavy-tailed
     or bursty one can — which is exactly the false-positive exposure this
     experiment quantifies. *)
  let det_config =
    {
      (Detector.default_config ~sample_cycles:(sample_cycles_of params)) with
      Detector.aggressor_margin = 0.25;
    }
  in
  let profiles =
    {
      Detector.label = "victim";
      core = 0;
      solo_pps = twin_solo.Ppp_hw.Engine.throughput_pps;
      solo_l3_refs_per_sec = twin_solo.Ppp_hw.Engine.l3_refs_per_sec;
      solo_l3_hits_per_sec = twin_solo.Ppp_hw.Engine.l3_hits_per_sec;
      predict_drop =
        Some (fun ~refs_per_sec -> Ppp_util.Series.eval curve refs_per_sec);
    }
    :: List.init
         (min 5 (Ppp_hw.Machine.cores_per_socket config - 1))
         (fun i ->
           {
             Detector.label = "SYN";
             core = 1 + i;
             solo_pps = syn_solo.Profile.throughput_pps;
             solo_l3_refs_per_sec = syn_solo.Profile.l3_refs_per_sec;
             solo_l3_hits_per_sec = syn_solo.Profile.l3_hits_per_sec;
             predict_drop = None;
           })
  in
  let det = Detector.create ~config:det_config ~freq_hz profiles in
  let corun_r, results, victim, fp, st =
    run_phase ~params ~cfg ~steering ~probe:(Detector.probe det)
      ~competitor:Ppp_apps.App.syn_max ()
  in
  Detector.finalize det;
  let false_alerts =
    List.length
      (List.filter
         (fun (e : Detector.event) ->
           Detector.kind_name e.Detector.e_kind = "hidden_aggressor")
         (Detector.events det))
  in
  let measured_drop = Runner.drop ~solo:solo_r ~corun:corun_r in
  let predicted_drop =
    Ppp_util.Series.eval curve
      (Runner.competing_refs_per_sec results ~target:corun_r)
  in
  let table = Ppp_classify.Fastpath.table fp in
  let c =
    {
      model = mname;
      knob = knob_name cfg;
      steering = sname;
      solo_pps = solo_r.Ppp_hw.Engine.throughput_pps;
      measured_drop;
      predicted_drop;
      abs_err = Float.abs (measured_drop -. predicted_drop);
      false_alerts;
      reorders = Ppp_click.Flow.reorders victim;
      migrations = Ppp_traffic.Steering.migrations st;
      evictions = Ppp_classify.Flow_table.evictions table;
      packets = corun_r.Ppp_hw.Engine.packets;
      lat_p99_inorder =
        Ppp_util.Histogram.percentile
          corun_r.Ppp_hw.Engine.latency_inorder 99.0;
      lat_p99_reordered =
        Ppp_util.Histogram.percentile
          corun_r.Ppp_hw.Engine.latency_reordered 99.0;
    }
  in
  Ppp_telemetry.Recorder.add_traffic
    {
      Ppp_telemetry.Recorder.tr_cell = label;
      tr_model = mname;
      tr_steering = sname;
      tr_packets = c.packets;
      tr_reorders = c.reorders;
      tr_migrations = c.migrations;
      tr_evictions = c.evictions;
      tr_false_alerts = c.false_alerts;
      tr_predicted_drop = c.predicted_drop;
      tr_measured_drop = c.measured_drop;
    };
  c

let measure ?(params = Runner.default_params) () =
  let twin_solo, curve = stationary_curve ~params in
  let syn_solo = Profile.solo ~params Ppp_apps.App.syn_max in
  let cells =
    List.concat_map
      (fun cfg ->
        List.map (fun steering -> (cfg, steering)) (steerings_of_params params))
      (models_of_params params)
  in
  {
    twin_solo_pps = twin_solo.Ppp_hw.Engine.throughput_pps;
    curve_points = Array.to_list (Ppp_util.Series.points curve);
    cells =
      Parallel.map
        (fun (cfg, steering) ->
          run_cell ~params ~curve ~twin_solo ~syn_solo ~cfg ~steering)
        cells;
  }

let render d =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Traffic realism: stationary-calibrated prediction and monitoring \
         under production source models"
      [
        "model"; "knob"; "steering"; "solo pps"; "drop (%)"; "pred (%)";
        "|err| (pp)"; "false alerts"; "reorders"; "migr"; "evict";
        "p99 in-ord"; "p99 reord";
      ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.model;
          c.knob;
          c.steering;
          Printf.sprintf "%.0f" c.solo_pps;
          Exp_common.pct c.measured_drop;
          Exp_common.pct c.predicted_drop;
          Printf.sprintf "%.1f" (100.0 *. c.abs_err);
          string_of_int c.false_alerts;
          string_of_int c.reorders;
          string_of_int c.migrations;
          string_of_int c.evictions;
          string_of_int c.lat_p99_inorder;
          (if c.lat_p99_reordered = 0 then "-"
           else string_of_int c.lat_p99_reordered);
        ])
    d.cells;
  let by_steering s = List.filter (fun c -> c.steering = s) d.cells in
  let sum f cs = List.fold_left (fun a c -> a + f c) 0 cs in
  let mean_err cs =
    match cs with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun a c -> a +. c.abs_err) 0.0 cs
        /. float_of_int (List.length cs)
  in
  let rss = by_steering "rss" and fdir = by_steering "fdir" in
  Table.to_string t
  ^ Printf.sprintf
      "\nstationary twin solo %.0f pps; curve sampled at %d SYN levels\n"
      d.twin_solo_pps
      (List.length d.curve_points - 1)
  ^ Printf.sprintf
      "steering: Flow-Director cells observed %d reorders across %d \
       migrations (one inversion per migration); RSS cells observed %d \
       (hash steering never reorders a flow)\n"
      (sum (fun c -> c.reorders) fdir)
      (sum (fun c -> c.migrations) fdir)
      (sum (fun c -> c.reorders) rss)
  ^ Printf.sprintf
      "prediction: mean |error| %.1f pp against the stationary curve; \
       monitor raised %d false aggressor alerts with no aggressor in the \
       mix\n"
      (100.0 *. mean_err d.cells)
      (sum (fun c -> c.false_alerts) d.cells)

let data_json d =
  let open Output in
  Json.Obj
    [
      ("twin_solo_pps", Json.Float d.twin_solo_pps);
      ( "curve",
        Json.Arr
          (List.map
             (fun (x, y) -> Json.Arr [ Json.Float x; Json.Float y ])
             d.curve_points) );
      ( "cells",
        table
          [
            Col.str "model" (fun c -> c.model);
            Col.str "knob" (fun c -> c.knob);
            Col.str "steering" (fun c -> c.steering);
            Col.num "solo_pps" (fun c -> c.solo_pps);
            Col.num "measured_drop" (fun c -> c.measured_drop);
            Col.num "predicted_drop" (fun c -> c.predicted_drop);
            Col.num "abs_err" (fun c -> c.abs_err);
            Col.int "false_alerts" (fun c -> c.false_alerts);
            Col.int "reorders" (fun c -> c.reorders);
            Col.int "migrations" (fun c -> c.migrations);
            Col.int "evictions" (fun c -> c.evictions);
            Col.int "packets" (fun c -> c.packets);
            Col.int "lat_p99_inorder" (fun c -> c.lat_p99_inorder);
            Col.int "lat_p99_reordered" (fun c -> c.lat_p99_reordered);
          ]
          d.cells );
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
