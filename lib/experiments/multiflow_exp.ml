open Ppp_core

type side = {
  label : string;
  total_pps : float;
  fw_rule_l3_refs_per_fw_packet : float;
  fw_rule_l3_miss_per_fw_packet : float;
}

type data = { separate : side; multiplexed : side; escalation : float }

let fn_firewall = Ppp_hw.Fn.register "firewall"

let side_of label results ~fw_packets =
  let sum f =
    List.fold_left
      (fun acc (r : Ppp_hw.Engine.result) -> acc + f r.Ppp_hw.Engine.counters)
      0 results
  in
  {
    label;
    total_pps =
      List.fold_left
        (fun acc (r : Ppp_hw.Engine.result) -> acc +. r.Ppp_hw.Engine.throughput_pps)
        0.0 results;
    fw_rule_l3_refs_per_fw_packet =
      float_of_int (sum (fun c -> Ppp_hw.Counters.fn_l3_refs c fn_firewall))
      /. float_of_int (max 1 fw_packets);
    fw_rule_l3_miss_per_fw_packet =
      float_of_int (sum (fun c -> Ppp_hw.Counters.fn_l3_misses c fn_firewall))
      /. float_of_int (max 1 fw_packets);
  }

let mk_sources ~params =
  let config = params.Runner.config in
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed:params.Runner.seed in
  let mk kind =
    Ppp_click.Flow.source
      (Ppp_apps.App.flow kind ~heap ~rng:(Ppp_util.Rng.split rng)
         ~scale:config.Ppp_hw.Machine.scale ())
  in
  (* DPI streams its megabyte-scale automaton through the private caches
     between every two firewall packets. *)
  (mk Ppp_apps.App.DPI, mk Ppp_apps.App.FW)

let measure ?(params = Runner.default_params) () =
  let config = params.Runner.config in
  let run flows =
    Ppp_hw.Engine.run (Ppp_hw.Machine.build config) ~flows
      ~warmup_cycles:params.Runner.warmup_cycles
      ~measure_cycles:params.Runner.measure_cycles
  in
  let dpi, fw = mk_sources ~params in
  let sep_results =
    run
      [
        { Ppp_hw.Engine.core = 0; label = "DPI"; source = dpi };
        { Ppp_hw.Engine.core = 1; label = "FW"; source = fw };
      ]
  in
  let fw_packets_sep =
    (List.nth sep_results 1).Ppp_hw.Engine.packets
  in
  let separate =
    side_of "separate cores (DPI + FW)" sep_results ~fw_packets:fw_packets_sep
  in
  let dpi2, fw2 = mk_sources ~params in
  let mux_results =
    run
      [
        {
          Ppp_hw.Engine.core = 0;
          label = "DPI+FW";
          source = Ppp_click.Multiplex.round_robin [ dpi2; fw2 ];
        };
      ]
  in
  (* Round-robin 1:1 -> half the completed packets are FW packets. *)
  let fw_packets_mux = (List.hd mux_results).Ppp_hw.Engine.packets / 2 in
  let multiplexed =
    side_of "one core, round-robin (DPI + FW)" mux_results
      ~fw_packets:fw_packets_mux
  in
  {
    separate;
    multiplexed;
    escalation =
      multiplexed.fw_rule_l3_refs_per_fw_packet
      /. Float.max 0.01 separate.fw_rule_l3_refs_per_fw_packet;
  }

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Section 6: one flow per core vs two flows multiplexed on one core"
      [
        "configuration"; "total pps"; "FW-rule L3 refs / FW pkt";
        "FW-rule L3 misses / FW pkt";
      ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.label;
          Printf.sprintf "%.0f" s.total_pps;
          Table.cell_f s.fw_rule_l3_refs_per_fw_packet;
          Table.cell_f s.fw_rule_l3_miss_per_fw_packet;
        ])
    [ data.separate; data.multiplexed ];
  Table.to_string t
  ^ Printf.sprintf
      "\nsharing the core multiplies the firewall's rule references that \
       escape the private caches by %.0fx —\nprivate-cache contention that \
       per-flow L3 profiling cannot see, which is why the paper sticks to \
       one flow per core.\n"
      data.escalation

let data_json data =
  let open Output in
  let side_json s =
    Json.Obj
      [
        ("configuration", Json.Str s.label);
        ("total_pps", Json.Float s.total_pps);
        ( "fw_rule_l3_refs_per_fw_packet",
          Json.Float s.fw_rule_l3_refs_per_fw_packet );
        ( "fw_rule_l3_miss_per_fw_packet",
          Json.Float s.fw_rule_l3_miss_per_fw_packet );
      ]
  in
  Json.Obj
    [
      ("separate", side_json data.separate);
      ("multiplexed", side_json data.multiplexed);
      ("escalation", Json.Float data.escalation);
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
