(** Figure 6: Equation-1 worst-case drop vs solo cache hits/sec for several
    values of delta, with each realistic application placed on the curve. *)

type data = {
  deltas : float list;
  curve_samples : (float * float list) list;  (** hits/sec, drop per delta *)
  app_points : (Ppp_apps.App.kind * float * float) list;
      (** kind, solo hits/sec, worst-case drop at the platform delta *)
}

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
