(** Extension: per-packet latency under contention.

    The paper evaluates throughput; operators also care about tails. The
    engine records each packet's processing latency, and this experiment
    shows that cache contention inflates the tail (p99) disproportionately
    to the median — converted misses cluster on unlucky packets. *)

type row = {
  scenario : string;
  throughput_pps : float;
  mean_cycles : float;
  p50_cycles : int;
  p99_cycles : int;
  max_cycles : int;
}

type data = { target : Ppp_apps.App.kind; rows : row list }

val measure : ?params:Ppp_core.Runner.params -> unit -> data
val render : data -> string
val data_json : data -> Output.Json.t
val run : ?params:Ppp_core.Runner.params -> unit -> Output.t
