open Ppp_core

type cell = {
  target : Ppp_apps.App.kind;
  competitor : Ppp_apps.App.kind;
  measured_drop : float;
  predicted_drop : float;
  perfect_drop : float;
}

type data = {
  cells : cell list;
  avg_error : (Ppp_apps.App.kind * float) list;
  avg_error_perfect : (Ppp_apps.App.kind * float) list;
}

let measure ?(params = Runner.default_params) () =
  let kinds = Exp_common.realistic in
  let predictor = Predictor.build ~params ~targets:kinds () in
  let solos = Exp_common.solo_results ~params kinds in
  let pairs = Exp_common.pair_matrix ~params ~solos kinds in
  let cells =
    List.map
      (fun (p : Exp_common.pair_result) ->
        let competitors = List.init 5 (fun _ -> p.Exp_common.competitor) in
        {
          target = p.Exp_common.target;
          competitor = p.Exp_common.competitor;
          measured_drop = p.Exp_common.drop;
          predicted_drop =
            Predictor.predict_drop predictor ~target:p.Exp_common.target
              ~competitors;
          perfect_drop =
            Predictor.predict_drop_at predictor ~target:p.Exp_common.target
              ~refs_per_sec:p.Exp_common.competing_refs_per_sec;
        })
      pairs
  in
  let avg f =
    List.map
      (fun t ->
        let errors =
          List.filter_map
            (fun c -> if c.target = t then Some (Float.abs (f c)) else None)
            cells
        in
        ( t,
          List.fold_left ( +. ) 0.0 errors
          /. float_of_int (List.length errors) ))
      kinds
  in
  {
    cells;
    avg_error = avg (fun c -> c.predicted_drop -. c.measured_drop);
    avg_error_perfect = avg (fun c -> c.perfect_drop -. c.measured_drop);
  }

let max_abs_error data =
  List.fold_left
    (fun acc c -> Float.max acc (Float.abs (c.predicted_drop -. c.measured_drop)))
    0.0 data.cells

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Figure 8(a,b): prediction error (percentage points; positive = \
         overestimated drop)"
      [
        "target";
        "competitors";
        "measured (%)";
        "predicted (%)";
        "error";
        "perfect-knowledge (%)";
        "error (perfect)";
      ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Ppp_apps.App.name c.target;
          "5 " ^ Ppp_apps.App.name c.competitor;
          Exp_common.pct c.measured_drop;
          Exp_common.pct c.predicted_drop;
          Exp_common.pct (c.predicted_drop -. c.measured_drop);
          Exp_common.pct c.perfect_drop;
          Exp_common.pct (c.perfect_drop -. c.measured_drop);
        ])
    data.cells;
  let avg =
    Table.create
      ~title:"Figure 8(c): average absolute prediction error per target"
      [ "target"; "our prediction"; "perfect knowledge" ]
  in
  List.iter
    (fun (k, e) ->
      Table.add_row avg
        [
          Ppp_apps.App.name k;
          Exp_common.pct e;
          Exp_common.pct (List.assoc k data.avg_error_perfect);
        ])
    data.avg_error;
  Table.to_string t ^ "\n" ^ Table.to_string avg
  ^ Printf.sprintf "\nmax |error| = %s%%\n" (Exp_common.pct (max_abs_error data))

let data_json data =
  let open Output in
  let avg name pairs =
    ( name,
      table
        [
          Col.str "target" (fun (k, _) -> Ppp_apps.App.name k);
          Col.num "avg_abs_error" snd;
        ]
        pairs )
  in
  Json.Obj
    [
      ( "cells",
        table
          [
            Col.str "target" (fun c -> Ppp_apps.App.name c.target);
            Col.str "competitor" (fun c -> Ppp_apps.App.name c.competitor);
            Col.num "measured_drop" (fun c -> c.measured_drop);
            Col.num "predicted_drop" (fun c -> c.predicted_drop);
            Col.num "perfect_drop" (fun c -> c.perfect_drop);
          ]
          data.cells );
      avg "avg_error" data.avg_error;
      avg "avg_error_perfect" data.avg_error_perfect;
      ("max_abs_error", Json.Float (max_abs_error data));
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
