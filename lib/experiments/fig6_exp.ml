open Ppp_core

type data = {
  deltas : float list;
  curve_samples : (float * float list) list;
  app_points : (Ppp_apps.App.kind * float * float) list;
}

let deltas = [ 30e-9; Equation1.paper_delta; 60e-9 ]

let measure ?(params = Runner.default_params) () =
  let profiles = Profile.table1 ~params Exp_common.realistic in
  let max_hits =
    List.fold_left
      (fun acc (p : Profile.t) -> Float.max acc p.Profile.l3_hits_per_sec)
      10e6 profiles
    *. 1.5
  in
  let samples = 13 in
  let curve_samples =
    List.init samples (fun i ->
        let h = max_hits *. float_of_int i /. float_of_int (samples - 1) in
        (h, List.map (fun d -> Equation1.max_drop ~delta:d ~hits_per_sec:h) deltas))
  in
  let app_points =
    List.map
      (fun (p : Profile.t) ->
        ( p.Profile.kind,
          p.Profile.l3_hits_per_sec,
          Equation1.max_drop ~delta:Equation1.paper_delta
            ~hits_per_sec:p.Profile.l3_hits_per_sec ))
      profiles
  in
  { deltas; curve_samples; app_points }

let render data =
  let open Ppp_util in
  let t =
    Table.create
      ~title:
        "Figure 6: worst-case drop (%) vs solo cache hits/sec (Equation 1, \
         kappa = 1)"
      ("hits/s (M)"
      :: List.map (fun d -> Printf.sprintf "delta=%.2fns" (d *. 1e9)) data.deltas)
  in
  List.iter
    (fun (h, drops) ->
      Table.add_row t
        (Exp_common.millions h :: List.map Exp_common.pct drops))
    data.curve_samples;
  let pts =
    Table.create
      ~title:
        (Printf.sprintf
           "Application points (delta = %.2fns): worst-case drop bound"
           (Equation1.paper_delta *. 1e9))
      [ "flow"; "solo hits/s (M)"; "max drop (%)" ]
  in
  List.iter
    (fun (k, h, d) ->
      Table.add_row pts
        [ Ppp_apps.App.name k; Exp_common.millions h; Exp_common.pct d ])
    data.app_points;
  Table.to_string t ^ "\n" ^ Table.to_string pts

let data_json data =
  let open Output in
  Json.Obj
    [
      ("deltas_s", Json.Arr (List.map (fun d -> Json.Float d) data.deltas));
      ( "curve",
        Json.Arr
          (List.map
             (fun (h, drops) ->
               Json.Obj
                 [
                   ("hits_per_sec", Json.Float h);
                   ( "max_drop_per_delta",
                     Json.Arr (List.map (fun d -> Json.Float d) drops) );
                 ])
             data.curve_samples) );
      ( "app_points",
        table
          [
            Col.str "flow" (fun (k, _, _) -> Ppp_apps.App.name k);
            Col.num "solo_hits_per_sec" (fun (_, h, _) -> h);
            Col.num "max_drop" (fun (_, _, d) -> d);
          ]
          data.app_points );
    ]

let run ?params () =
  let data = measure ?params () in
  Output.make ~text:(render data) ~data:(data_json data)
