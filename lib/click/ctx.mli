(** Per-packet processing context handed to every element.

    Bundles the trace builder collecting this packet's operations with the
    flow's private RNG (for elements with randomized behaviour). *)

type t = {
  builder : Ppp_hw.Trace.Builder.t;
  rng : Ppp_util.Rng.t;
}

val create : rng:Ppp_util.Rng.t -> t

val set_elem : t -> Ppp_hw.Eid.t -> unit
(** Scope subsequent traced operations to element [e] (until the next call
    or the builder's clear). {!Element.process_all} does this around every
    element; drivers scope their RX/TX/recycle stages the same way. *)

val compute : t -> fn:Ppp_hw.Fn.t -> int -> unit
(** Charge [n] instructions of pure compute to [fn]. *)

val read : t -> fn:Ppp_hw.Fn.t -> int -> unit
val write : t -> fn:Ppp_hw.Fn.t -> int -> unit

val touch_packet :
  t -> Ppp_net.Packet.t -> fn:Ppp_hw.Fn.t -> write:bool -> pos:int -> len:int -> unit
(** Record references to the packet's NIC buffer covering bytes
    [pos, pos+len): one per cache line. No-op when the packet has no
    simulated placement ([buf_addr = 0]). *)
