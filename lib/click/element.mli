(** Packet-processing elements, in the style of the Click modular router.

    An element transforms a packet in place and issues its compute and memory
    operations through the {!Ctx}. Elements are instantiated with their state
    captured in the [process] closure, so one element instance belongs to one
    flow (the paper replicates per-flow state across cores/NUMA domains —
    Section 2.2). *)

type verdict = Forward | Drop

type t = {
  kind : string;  (** the element class name, e.g. "RadixIPLookup" *)
  name : string;  (** instance label *)
  eid : Ppp_hw.Eid.t;
      (** stable element id registered from [name] — what the profiler
          attributes this element's traced operations to *)
  process : Ctx.t -> Ppp_net.Packet.t -> verdict;
}

val make : kind:string -> ?name:string -> (Ctx.t -> Ppp_net.Packet.t -> verdict) -> t
(** Instances sharing a [name] (default: [kind]) share an element id, so
    attribution aggregates across flows the way the paper's per-function
    Oprofile breakdown does. *)

val process_all : t list -> Ctx.t -> Ppp_net.Packet.t -> verdict
(** Push the packet through the chain; stops at the first [Drop]. Scopes
    each element's id over its [process] call ({!Ctx.set_elem}), so the
    trace records the packet's element path op by op. *)
