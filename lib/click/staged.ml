open Ppp_simmem

type queue = {
  ring : int Iarray.t; (* one 64B descriptor slot per entry *)
  fifo : Ppp_net.Packet.t Queue.t;
  slots : int;
  mutable pushed : int;
  mutable popped : int;
}

type stage = {
  elements : Element.t list;
  ctx : Ctx.t;
  index : int;
}

type t = {
  label : string;
  gen : Flow.generator;
  stages : stage array;
  queues : queue array;
  pool : Ppp_net.Packet.t array;
  rx_desc : int Iarray.t;
  free_list : int Iarray.t;
  buf_base : int;
  buf_stride : int;
  rx_slots : int;
  mutable seq : int;
  mutable forwarded : int;
  mutable dropped : int;
}

let stall_cycles = 120
let header_bytes = 54

let create ~heap ~rng ~label ~gen ~stages ?(queue_slots = 32) () =
  let n = List.length stages in
  if n < 2 then invalid_arg "Staged.create: need at least two stages";
  if queue_slots <= 0 then invalid_arg "Staged.create: queue_slots";
  let rx_slots = (queue_slots * (n - 1)) + (4 * n) + 8 in
  let buf_stride = 2048 in
  {
    label;
    gen;
    stages =
      Array.of_list
        (List.mapi
           (fun index elements ->
             { elements; ctx = Ctx.create ~rng:(Ppp_util.Rng.split rng); index })
           stages);
    queues =
      Array.init (n - 1) (fun _ ->
          {
            ring = Iarray.create heap ~elem_bytes:64 queue_slots 0;
            fifo = Queue.create ();
            slots = queue_slots;
            pushed = 0;
            popped = 0;
          });
    pool = Array.init rx_slots (fun _ -> Ppp_net.Packet.create 60);
    rx_desc = Iarray.create heap ~elem_bytes:16 rx_slots 0;
    free_list = Iarray.create heap ~elem_bytes:8 rx_slots 0;
    buf_base = Heap.alloc heap ~bytes:(rx_slots * buf_stride);
    buf_stride;
    rx_slots;
    seq = 0;
    forwarded = 0;
    dropped = 0;
  }

let num_stages t = Array.length t.stages
let forwarded t = t.forwarded
let dropped t = t.dropped

let queue_full q = Queue.length q.fifo >= q.slots

let push_queue t q ctx pkt =
  Ctx.set_elem ctx Flow.eid_to_device;
  let slot = q.pushed mod q.slots in
  q.pushed <- q.pushed + 1;
  Iarray.set q.ring ctx.Ctx.builder ~fn:Flow.fn_to_device slot
    pkt.Ppp_net.Packet.buf_addr;
  Queue.push pkt q.fifo;
  ignore t

let pop_queue t q ctx =
  Ctx.set_elem ctx Flow.eid_from_device;
  let slot = q.popped mod q.slots in
  q.popped <- q.popped + 1;
  let pkt = Queue.pop q.fifo in
  ignore (Iarray.get q.ring ctx.Ctx.builder ~fn:Flow.fn_from_device slot : int);
  (* The consumer re-reads the packet headers written upstream. *)
  Ctx.touch_packet ctx pkt ~fn:Flow.fn_from_device ~write:false ~pos:0
    ~len:(min header_bytes pkt.Ppp_net.Packet.len);
  ignore t;
  pkt

let receive t ctx =
  let open Ppp_hw.Trace in
  let b = ctx.Ctx.builder in
  Ctx.set_elem ctx Flow.eid_from_device;
  let slot = t.seq mod t.rx_slots in
  let pkt = t.pool.(slot) in
  t.seq <- t.seq + 1;
  t.gen pkt;
  pkt.Ppp_net.Packet.buf_addr <- t.buf_base + (slot * t.buf_stride);
  Builder.dma b (Iarray.addr_of t.rx_desc slot);
  let len = pkt.Ppp_net.Packet.len in
  let base = pkt.Ppp_net.Packet.buf_addr in
  let l = ref 0 in
  while !l < len do
    Builder.dma b (base + !l);
    l := !l + 64
  done;
  ignore (Iarray.get t.rx_desc b ~fn:Flow.fn_from_device slot : int);
  Iarray.set t.rx_desc b ~fn:Flow.fn_from_device slot t.seq;
  Ctx.touch_packet ctx pkt ~fn:Flow.fn_from_device ~write:false ~pos:0
    ~len:(min header_bytes len);
  Ctx.compute ctx ~fn:Flow.fn_from_device 40;
  pkt

let transmit t ctx pkt =
  Ctx.set_elem ctx Flow.eid_to_device;
  let slot = (pkt.Ppp_net.Packet.buf_addr - t.buf_base) / t.buf_stride in
  Ctx.touch_packet ctx pkt ~fn:Flow.fn_to_device ~write:true ~pos:0 ~len:12;
  Ctx.compute ctx ~fn:Flow.fn_to_device 25;
  (* Recycle the buffer into the receiving core's pool: shared free-list
     lines written by the transmitting core (the paper's extra
     synchronization cost of pipelining). *)
  let b = ctx.Ctx.builder in
  Ctx.set_elem ctx Flow.eid_skb_recycle;
  ignore (Iarray.get t.free_list b ~fn:Flow.fn_skb_recycle slot : int);
  Iarray.set t.free_list b ~fn:Flow.fn_skb_recycle slot slot;
  Ctx.compute ctx ~fn:Flow.fn_skb_recycle 15

let idle ctx =
  let b = ctx.Ctx.builder in
  Ppp_hw.Trace.Builder.clear b;
  Ppp_hw.Trace.Builder.stall b stall_cycles;
  Ppp_hw.Engine.Idle (Ppp_hw.Trace.Builder.finish b)

let stage_source t stage (_now : int) =
  let b = stage.ctx.Ctx.builder in
  let n = Array.length t.stages in
  let is_first = stage.index = 0 and is_last = stage.index = n - 1 in
  let inq = if is_first then None else Some t.queues.(stage.index - 1) in
  let outq = if is_last then None else Some t.queues.(stage.index) in
  let input_ready = match inq with None -> true | Some q -> not (Queue.is_empty q.fifo) in
  let output_ready = match outq with None -> true | Some q -> not (queue_full q) in
  if not (input_ready && output_ready) then idle stage.ctx
  else begin
    Ppp_hw.Trace.Builder.clear b;
    let pkt =
      match inq with
      | None -> receive t stage.ctx
      | Some q -> pop_queue t q stage.ctx
    in
    match Element.process_all stage.elements stage.ctx pkt with
    | Element.Drop ->
        t.dropped <- t.dropped + 1;
        if is_last then begin
          (* Count drops as completed work items at the egress stage. *)
          Ppp_hw.Engine.Idle (Ppp_hw.Trace.Builder.finish b)
        end
        else Ppp_hw.Engine.Idle (Ppp_hw.Trace.Builder.finish b)
    | Element.Forward ->
        (match outq with
        | Some q -> push_queue t q stage.ctx pkt
        | None -> ());
        if is_last then begin
          transmit t stage.ctx pkt;
          t.forwarded <- t.forwarded + 1;
          Ppp_hw.Engine.Packet (Ppp_hw.Trace.Builder.finish b)
        end
        else Ppp_hw.Engine.Idle (Ppp_hw.Trace.Builder.finish b)
  end

let sources t = Array.map (fun st -> stage_source t st) t.stages
