type verdict = Forward | Drop

type t = {
  kind : string;
  name : string;
  eid : Ppp_hw.Eid.t;
  process : Ctx.t -> Ppp_net.Packet.t -> verdict;
}

let make ~kind ?name process =
  let name = match name with Some n -> n | None -> kind in
  { kind; name; eid = Ppp_hw.Eid.register name; process }

let rec process_all elements ctx pkt =
  match elements with
  | [] -> Forward
  | e :: rest -> (
      Ctx.set_elem ctx e.eid;
      match e.process ctx pkt with
      | Forward -> process_all rest ctx pkt
      | Drop -> Drop)
