type generator = Ppp_net.Packet.t -> unit

let fn_from_device = Ppp_hw.Fn.register "from_device"
let fn_to_device = Ppp_hw.Fn.register "to_device"
let fn_skb_recycle = Ppp_hw.Fn.register "skb_recycle"

(* Driver stages get element ids too, so a profile covers the whole packet
   path — not just the element chain. *)
let eid_from_device = Ppp_hw.Eid.register "from_device"
let eid_to_device = Ppp_hw.Eid.register "to_device"
let eid_skb_recycle = Ppp_hw.Eid.register "skb_recycle"

type t = {
  label : string;
  src : Ppp_traffic.Source.t;
  reorder : Ppp_traffic.Reorder.t;
  elements : Element.t list;
  ctx : Ctx.t;
  pkt : Ppp_net.Packet.t;
  rx_desc : int Ppp_simmem.Iarray.t;
  tx_desc : int Ppp_simmem.Iarray.t;
  free_list : int Ppp_simmem.Iarray.t;
  buf_base : int;
  buf_stride : int;
  rx_slots : int;
  mutable seq : int;
  mutable forwarded : int;
  mutable dropped : int;
  item : Ppp_hw.Engine.item;
      (* [Packet] of the builder's pooled view, built once: [source] returns
         it after refreshing the view, so the steady-state packet cycle
         allocates nothing. *)
  item_idle : Ppp_hw.Engine.item;
      (* [Idle] over the same pooled view, for an exhausted source: the
         flow polls an empty input queue instead of processing a packet. *)
  item_reordered : Ppp_hw.Engine.item;
      (* [Reordered] over the same pooled view, returned when the detector
         flags the arrival as a sequence inversion: the engine routes its
         latency into the reordered histogram column. *)
}

let create ~heap ~rng ~label ~source ~elements ?(rx_slots = 64)
    ?(buf_stride = 2048) () =
  if rx_slots <= 0 then invalid_arg "Flow.create: rx_slots must be positive";
  let open Ppp_simmem in
  let ctx = Ctx.create ~rng in
  {
    label;
    src = source;
    reorder = Ppp_traffic.Reorder.create ();
    elements;
    ctx;
    pkt = Ppp_net.Packet.create 60;
    rx_desc = Iarray.create heap ~elem_bytes:16 rx_slots 0;
    tx_desc = Iarray.create heap ~elem_bytes:16 rx_slots 0;
    free_list = Iarray.create heap ~elem_bytes:8 rx_slots 0;
    buf_base = Heap.alloc heap ~bytes:(rx_slots * buf_stride);
    buf_stride;
    rx_slots;
    seq = 0;
    forwarded = 0;
    dropped = 0;
    item = Ppp_hw.Engine.Packet (Ppp_hw.Trace.Builder.view ctx.Ctx.builder);
    item_idle = Ppp_hw.Engine.Idle (Ppp_hw.Trace.Builder.view ctx.Ctx.builder);
    item_reordered =
      Ppp_hw.Engine.Reordered (Ppp_hw.Trace.Builder.view ctx.Ctx.builder);
  }

let create_gen ~heap ~rng ~label ~gen ~elements ?rx_slots ?buf_stride () =
  create ~heap ~rng ~label
    ~source:(Ppp_traffic.Source.of_gen ~name:label gen)
    ~elements ?rx_slots ?buf_stride ()

let label t = t.label
let forwarded t = t.forwarded
let dropped t = t.dropped
let elements t = t.elements
let packet_source t = t.src
let reorders t = Ppp_traffic.Reorder.reorders t.reorder
let reorder_observed t = Ppp_traffic.Reorder.observed t.reorder

let header_bytes = 54 (* Ethernet + IPv4 + transport ports *)

let receive t =
  let open Ppp_hw.Trace in
  let b = t.ctx.Ctx.builder in
  Ctx.set_elem t.ctx eid_from_device;
  let slot = t.seq mod t.rx_slots in
  t.seq <- t.seq + 1;
  t.pkt.Ppp_net.Packet.buf_addr <- t.buf_base + (slot * t.buf_stride);
  (* NIC DMA: descriptor write-back plus the packet's payload lines. *)
  Builder.dma b (Ppp_simmem.Iarray.addr_of t.rx_desc slot);
  let len = t.pkt.Ppp_net.Packet.len in
  let base = t.pkt.Ppp_net.Packet.buf_addr in
  let l = ref 0 in
  while !l < len do
    Builder.dma b (base + !l);
    l := !l + 64
  done;
  (* Driver: read the descriptor, prime the next one, read the headers. *)
  ignore (Ppp_simmem.Iarray.get t.rx_desc b ~fn:fn_from_device slot : int);
  Ppp_simmem.Iarray.set t.rx_desc b ~fn:fn_from_device slot t.seq;
  Ctx.touch_packet t.ctx t.pkt ~fn:fn_from_device ~write:false ~pos:0
    ~len:(min header_bytes len);
  Ctx.compute t.ctx ~fn:fn_from_device 40;
  slot

let transmit t slot =
  Ctx.set_elem t.ctx eid_to_device;
  Ppp_simmem.Iarray.set t.tx_desc t.ctx.Ctx.builder ~fn:fn_to_device slot
    t.seq;
  (* MAC rewrite on the first buffer line. *)
  Ctx.touch_packet t.ctx t.pkt ~fn:fn_to_device ~write:true ~pos:0 ~len:12;
  Ctx.compute t.ctx ~fn:fn_to_device 25

let recycle t slot =
  let b = t.ctx.Ctx.builder in
  Ctx.set_elem t.ctx eid_skb_recycle;
  ignore (Ppp_simmem.Iarray.get t.free_list b ~fn:fn_skb_recycle slot : int);
  Ppp_simmem.Iarray.set t.free_list b ~fn:fn_skb_recycle slot slot;
  Ctx.compute t.ctx ~fn:fn_skb_recycle 15

let source t (_now : int) =
  let b = t.ctx.Ctx.builder in
  Ppp_hw.Trace.Builder.clear b;
  (* The fill happens before the NIC/driver trace is built: it only writes
     the preallocated packet's bytes, so ordering it ahead of [receive]
     leaves the emitted traces bit-identical to the old generator path. *)
  match Ppp_traffic.Source.fill t.src t.pkt with
  | Ppp_traffic.Source.Exhausted ->
      (* Empty input queue: the flow polls and finds nothing. *)
      Ctx.set_elem t.ctx eid_from_device;
      Ctx.compute t.ctx ~fn:fn_from_device 100;
      let (_ : Ppp_hw.Trace.t) = Ppp_hw.Trace.Builder.view b in
      t.item_idle
  | Ppp_traffic.Source.Filled ->
      let reordered =
        Ppp_traffic.Reorder.observe t.reorder
          ~flow:(Ppp_traffic.Source.last_flow t.src)
          ~seq:(Ppp_traffic.Source.last_seq t.src)
      in
      let slot = receive t in
      (match Element.process_all t.elements t.ctx t.pkt with
      | Element.Forward ->
          transmit t slot;
          t.forwarded <- t.forwarded + 1
      | Element.Drop -> t.dropped <- t.dropped + 1);
      recycle t slot;
      (* [view], not [finish]: the engine replays this trace to completion
         before calling us again, so the builder's buffer can be shared.
         The view is the pooled record inside [t.item] — refreshing it and
         returning the prebuilt item keeps this path allocation-free. *)
      let (_ : Ppp_hw.Trace.t) = Ppp_hw.Trace.Builder.view b in
      if reordered then t.item_reordered else t.item
