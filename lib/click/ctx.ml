type t = { builder : Ppp_hw.Trace.Builder.t; rng : Ppp_util.Rng.t }

let create ~rng = { builder = Ppp_hw.Trace.Builder.create (); rng }
let set_elem t e = Ppp_hw.Trace.Builder.set_elem t.builder e
let compute t ~fn n = Ppp_hw.Trace.Builder.compute t.builder ~fn n
let read t ~fn addr = Ppp_hw.Trace.Builder.read t.builder ~fn addr
let write t ~fn addr = Ppp_hw.Trace.Builder.write t.builder ~fn addr

let line = 64

let touch_packet t pkt ~fn ~write ~pos ~len =
  let base = pkt.Ppp_net.Packet.buf_addr in
  if base <> 0 && len > 0 then begin
    let first = (base + pos) / line and last = (base + pos + len - 1) / line in
    for l = first to last do
      let addr = l * line in
      if write then Ppp_hw.Trace.Builder.write t.builder ~fn addr
      else Ppp_hw.Trace.Builder.read t.builder ~fn addr
    done
  end
