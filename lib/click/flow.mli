(** A packet-processing flow: the unit the paper schedules onto a core.

    A flow owns an RX descriptor ring with NIC buffers, a chain of elements,
    a TX ring, and a buffer pool with skb recycling — all placed in one NUMA
    node's heap (Section 2.2's local-data policy). Its {!source} yields one
    trace per packet: NIC DMA, FromDevice descriptor/header reads, the
    elements' operations, ToDevice writes, and skb_recycle bookkeeping.

    Input packets come from a {!Ppp_traffic.Source.t}. The flow observes
    each packet's flow/sequence metadata through a {!Ppp_traffic.Reorder}
    detector, so per-flow results gain a reorder metric ({!reorders}) —
    nonzero exactly when the source chain includes a reordering stage such
    as Flow-Director steering. A source that reports [Exhausted] (a finite
    capture) turns further cycles into idle polls rather than raising.

    The input queue is otherwise assumed always backlogged (the paper
    drives each flow at saturation to measure maximum throughput). *)

type generator = Ppp_net.Packet.t -> unit
(** Fills a preallocated packet in place with the next input packet — the
    legacy closure shape, accepted via {!create_gen}. *)

type t

val create :
  heap:Ppp_simmem.Heap.t ->
  rng:Ppp_util.Rng.t ->
  label:string ->
  source:Ppp_traffic.Source.t ->
  elements:Element.t list ->
  ?rx_slots:int ->
  ?buf_stride:int ->
  unit ->
  t
(** [rx_slots] (default 64) RX buffers of [buf_stride] (default 2048) bytes. *)

val create_gen :
  heap:Ppp_simmem.Heap.t ->
  rng:Ppp_util.Rng.t ->
  label:string ->
  gen:generator ->
  elements:Element.t list ->
  ?rx_slots:int ->
  ?buf_stride:int ->
  unit ->
  t
(** Compatibility wrapper: [create] over [Ppp_traffic.Source.of_gen gen]. *)

val source : t -> Ppp_hw.Engine.source
val label : t -> string
val forwarded : t -> int
val dropped : t -> int
val elements : t -> Element.t list

val packet_source : t -> Ppp_traffic.Source.t
(** The traffic source feeding this flow. *)

val reorders : t -> int
(** Packets that arrived out of order within their flow (sequence below
    the flow's high-water mark), as observed at the receive path. *)

val reorder_observed : t -> int
(** Packets the reorder detector has observed (= packets received). *)

val fn_from_device : Ppp_hw.Fn.t
val fn_to_device : Ppp_hw.Fn.t
val fn_skb_recycle : Ppp_hw.Fn.t

val eid_from_device : Ppp_hw.Eid.t
(** Element ids for the driver stages (shared by {!Staged} pipelines), so
    profiles attribute RX/TX/recycle work alongside the element chain. *)

val eid_to_device : Ppp_hw.Eid.t
val eid_skb_recycle : Ppp_hw.Eid.t
