type record = { ts_usec : int; pkt : Ppp_net.Packet.t }
type t = { mutable recs : record list (* reversed *); mutable count : int }

let magic = 0xA1B2C3D4
let linktype_ethernet = 1
let snaplen = 65535

let create () = { recs = []; count = 0 }

let append t ?ts_usec pkt =
  let ts =
    match ts_usec with
    | Some ts -> ts
    | None -> ( match t.recs with [] -> 0 | r :: _ -> r.ts_usec + 1)
  in
  t.recs <- { ts_usec = ts; pkt = Ppp_net.Packet.copy pkt } :: t.recs;
  t.count <- t.count + 1

let records t = List.rev t.recs
let length t = t.count

let le32 b pos v =
  for i = 0 to 3 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let rd32 b pos =
  let byte i = Char.code (Bytes.get b (pos + i)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let le16 b pos v =
  Bytes.set b pos (Char.chr (v land 0xFF));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 8) land 0xFF))

let rd16 b pos =
  Char.code (Bytes.get b pos) lor (Char.code (Bytes.get b (pos + 1)) lsl 8)

let to_bytes t =
  let recs = records t in
  let body = List.fold_left (fun acc r -> acc + 16 + r.pkt.Ppp_net.Packet.len) 0 recs in
  let out = Bytes.make (24 + body) '\000' in
  le32 out 0 magic;
  le16 out 4 2;
  le16 out 6 4;
  (* thiszone, sigfigs already 0 *)
  le32 out 16 snaplen;
  le32 out 20 linktype_ethernet;
  let pos = ref 24 in
  List.iter
    (fun r ->
      let len = r.pkt.Ppp_net.Packet.len in
      le32 out !pos (r.ts_usec / 1_000_000);
      le32 out (!pos + 4) (r.ts_usec mod 1_000_000);
      le32 out (!pos + 8) len;
      le32 out (!pos + 12) len;
      Bytes.blit r.pkt.Ppp_net.Packet.data 0 out (!pos + 16) len;
      pos := !pos + 16 + len)
    recs;
  out

let of_bytes b =
  if Bytes.length b < 24 then Error "pcap: truncated global header"
  else if rd32 b 0 <> magic then
    Error "pcap: bad magic (only little-endian v2.4 supported)"
  else if rd16 b 4 <> 2 || rd16 b 6 <> 4 then Error "pcap: unsupported version"
  else if rd32 b 20 <> linktype_ethernet then
    Error "pcap: unsupported link type (expected Ethernet)"
  else begin
    let t = create () in
    let pos = ref 24 in
    let err = ref None in
    while !err = None && !pos < Bytes.length b do
      if !pos + 16 > Bytes.length b then err := Some "pcap: truncated record header"
      else begin
        let sec = rd32 b !pos and usec = rd32 b (!pos + 4) in
        let incl = rd32 b (!pos + 8) in
        if !pos + 16 + incl > Bytes.length b then
          err := Some "pcap: truncated packet data"
        else begin
          let pkt = Ppp_net.Packet.create ~cap:(max incl 60) incl in
          Bytes.blit b (!pos + 16) pkt.Ppp_net.Packet.data 0 incl;
          append t ~ts_usec:((sec * 1_000_000) + usec) pkt;
          pos := !pos + 16 + incl
        end
      end
    done;
    match !err with Some e -> Error e | None -> Ok t
  end

let save t path =
  let oc = open_out_bin path in
  let b = to_bytes t in
  output_bytes oc b;
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  of_bytes b

let replay ?(loop = true) ?(name = "pcap") t =
  if t.count = 0 then invalid_arg "Pcap.replay: empty capture";
  let arr = Array.of_list (records t) in
  (* Flow identity of a captured packet: hash of its first header bytes
     (through the transport ports when present). Precomputed per record so
     the fill path does no byte scanning. *)
  let flow_of r =
    let len = min r.pkt.Ppp_net.Packet.len 42 in
    Ppp_util.Hashes.fnv1a_bytes r.pkt.Ppp_net.Packet.data ~pos:0 ~len
  in
  let fids = Array.map flow_of arr in
  let seqs = Hashtbl.create 64 in
  let i = ref 0 in
  Source.make ~name
    ~fill:(fun src pkt ->
      if !i >= Array.length arr && loop then i := 0;
      if !i >= Array.length arr then Source.Exhausted
      else begin
        let r = arr.(!i) in
        let flow = fids.(!i) in
        incr i;
        let len = r.pkt.Ppp_net.Packet.len in
        let len = min len (Ppp_net.Packet.capacity pkt) in
        Bytes.blit r.pkt.Ppp_net.Packet.data 0 pkt.Ppp_net.Packet.data 0 len;
        Ppp_net.Packet.resize pkt len;
        let seq =
          match Hashtbl.find_opt seqs flow with Some s -> s | None -> 0
        in
        Hashtbl.replace seqs flow (seq + 1);
        Source.set_meta src ~flow ~seq;
        Source.Filled
      end)
    ()
