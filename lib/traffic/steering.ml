(* NIC steering models: RSS hashing vs Flow-Director perfect steering.

   RSS is stateless — core = hash(flow) mod cores — so a flow's packets
   all take the same queue and can never pass each other: zero reordering
   by construction.

   Flow Director pins each flow to a core via an on-NIC table and
   rebalances by migrating flows between cores. Migration is where the
   documented reordering pathology lives ("Why Does Flow Director Cause
   Packet Reordering?"): the in-flight packet sitting in the old core's
   queue is overtaken by the first packet steered to the new core. We
   model exactly that with a sequence swap: when flow f migrates at its
   packet q, that packet is "stranded" (its seq q goes into a pending
   slot) and the delivery is reported as q+1; when f next appears, the
   stranded q drains. The observer therefore sees ... q-1, q+1, q, q+2 ...
   — one inversion per migration, and [migrations] is incremented at drain
   time so the detector-visible reorder count equals the migration count
   exactly (a migration whose stranded packet never drains before the run
   ends is not counted). Packet bytes are untouched — only metadata. *)

type model = Rss | Flow_director

let model_name = function Rss -> "rss" | Flow_director -> "fdir"

let model_of_name = function
  | "rss" -> Some Rss
  | "fdir" | "flow-director" | "flow_director" -> Some Flow_director
  | _ -> None

type t = {
  model : model;
  cores : int;
  migrate_every : int; (* FD: trigger a migration every N deliveries *)
  assign : (int, int) Hashtbl.t; (* FD table: flow -> core *)
  pending : (int, int) Hashtbl.t; (* flow -> stranded sequence number *)
  mutable delivered : int;
  mutable migrations : int;
  mutable next_core : int; (* FD round-robin placement of new flows *)
  mutable last_core : int;
}

let create ?(migrate_every = 0) ~cores model =
  if cores <= 0 then invalid_arg "Steering.create: cores must be positive";
  if migrate_every < 0 then
    invalid_arg "Steering.create: migrate_every must be >= 0";
  {
    model;
    cores;
    migrate_every;
    assign = Hashtbl.create 256;
    pending = Hashtbl.create 16;
    delivered = 0;
    migrations = 0;
    next_core = 0;
    last_core = 0;
  }

let model t = t.model
let cores t = t.cores
let delivered t = t.delivered
let migrations t = t.migrations
let last_core t = t.last_core

let core_of t ~flow =
  match t.model with
  | Rss -> Ppp_util.Hashes.fnv1a_int flow mod t.cores
  | Flow_director -> (
      match Hashtbl.find_opt t.assign flow with
      | Some c -> c
      | None -> t.next_core mod t.cores)

(* Deliver one packet of [flow] carrying sender sequence [seq]; returns the
   receive core and the sequence number the observer sees. *)
let route t ~flow ~seq =
  t.delivered <- t.delivered + 1;
  let core, seq' =
    match t.model with
    | Rss -> (Ppp_util.Hashes.fnv1a_int flow mod t.cores, seq)
    | Flow_director -> (
        let core =
          match Hashtbl.find_opt t.assign flow with
          | Some c -> c
          | None ->
              let c = t.next_core mod t.cores in
              t.next_core <- t.next_core + 1;
              Hashtbl.replace t.assign flow c;
              c
        in
        match Hashtbl.find_opt t.pending flow with
        | Some stranded ->
            (* the packet left on the old core's queue finally drains —
               this is the observable inversion *)
            Hashtbl.remove t.pending flow;
            t.migrations <- t.migrations + 1;
            (core, stranded)
        | None ->
            if
              t.migrate_every > 0
              && t.delivered mod t.migrate_every = 0
              && t.cores > 1
            then begin
              (* rebalance: migrate this flow; its current packet is
                 stranded behind the old queue and overtaken *)
              let core' = (core + 1) mod t.cores in
              Hashtbl.replace t.assign flow core';
              Hashtbl.replace t.pending flow seq;
              (core', seq + 1)
            end
            else (core, seq))
  in
  t.last_core <- core;
  (core, seq')

let source t inner =
  Source.make
    ~name:(Source.name inner ^ "+" ^ model_name t.model)
    ~fill:(fun src pkt ->
      match Source.fill inner pkt with
      | Source.Exhausted -> Source.Exhausted
      | Source.Filled ->
          let flow = Source.last_flow inner in
          let _core, seq =
            route t ~flow ~seq:(Source.last_seq inner)
          in
          Source.set_meta src ~flow ~seq;
          Source.Filled)
    ()
