(* Bounded-Pareto flow sizes with exact integer mass accounting.

   Float arithmetic appears only at [create] time, when each flow's
   realized size in packets is drawn by inverting the bounded-Pareto CDF.
   From then on everything is integers: the per-flow sizes become a prefix
   sum, and [sample] is one bounded [Rng.int] draw plus a binary search —
   allocation-free, so a heavy-tailed source passes the perf gate's
   zero-alloc audit. *)

type t = {
  flows : int;
  alpha : float;
  min_pkts : int;
  max_pkts : int;
  sizes : int array; (* realized size of each flow, in packets *)
  cum : int array; (* cum.(i) = sizes.(0) + .. + sizes.(i) *)
  total : int; (* exact total mass = cum.(flows - 1) *)
  seq : int array; (* per-flow sequence counters for the source *)
}

(* Inverse CDF of the bounded Pareto on [l, h] with tail index alpha:
   x(u) = l / (1 - u * (1 - (l/h)^alpha))^(1/alpha). *)
let quantile ~alpha ~l ~h u =
  let ratio = 1.0 -. ((l /. h) ** alpha) in
  l /. ((1.0 -. (u *. ratio)) ** (1.0 /. alpha))

let create ~seed ~flows ~alpha ?(min_pkts = 1) ?(max_pkts = 100_000) () =
  if flows <= 0 then invalid_arg "Heavy_tail.create: flows must be positive";
  if alpha <= 0.0 then invalid_arg "Heavy_tail.create: alpha must be positive";
  if min_pkts < 1 || max_pkts < min_pkts then
    invalid_arg "Heavy_tail.create: need 1 <= min_pkts <= max_pkts";
  let rng = Ppp_util.Rng.create ~seed in
  let l = float_of_int min_pkts and h = float_of_int max_pkts in
  let sizes =
    Array.init flows (fun _ ->
        let u = Ppp_util.Rng.float rng 1.0 in
        let x = quantile ~alpha ~l ~h u in
        let n = int_of_float x in
        if n < min_pkts then min_pkts else if n > max_pkts then max_pkts else n)
  in
  let cum = Array.make flows 0 in
  let acc = ref 0 in
  for i = 0 to flows - 1 do
    acc := !acc + sizes.(i);
    cum.(i) <- !acc
  done;
  {
    flows;
    alpha;
    min_pkts;
    max_pkts;
    sizes;
    cum;
    total = !acc;
    seq = Array.make flows 0;
  }

let flows t = t.flows
let total_pkts t = t.total
let size t i = t.sizes.(i)

(* First index whose cumulative mass exceeds r — flow i is drawn with
   probability sizes.(i)/total, exactly. Integer-only. *)
let sample t rng =
  let r = Ppp_util.Rng.int rng t.total in
  let lo = ref 0 and hi = ref (t.flows - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > r then hi := mid else lo := mid + 1
  done;
  !lo

let top_mass t ~k =
  if k <= 0 then 0.0
  else begin
    let sorted = Array.copy t.sizes in
    Array.sort (fun a b -> compare b a) sorted;
    let k = min k t.flows in
    let acc = ref 0 in
    for i = 0 to k - 1 do
      acc := !acc + sorted.(i)
    done;
    float_of_int !acc /. float_of_int t.total
  end

(* Expected fraction of total mass held by the k largest of [flows] draws:
   the largest k order statistics occupy (asymptotically) the top k/flows
   quantile band, so the fraction is the integral of the quantile function
   over [1-k/flows, 1] divided by its integral over [0, 1]. Trapezoid rule;
   used by the qcheck property as the analytic reference. *)
let analytic_top_mass ~flows ~alpha ?(min_pkts = 1) ?(max_pkts = 100_000) ~k ()
    =
  if k <= 0 then 0.0
  else if k >= flows then 1.0
  else begin
    let l = float_of_int min_pkts and h = float_of_int max_pkts in
    let steps = 20_000 in
    let integral a b =
      let acc = ref 0.0 in
      let w = (b -. a) /. float_of_int steps in
      for i = 0 to steps - 1 do
        let u0 = a +. (w *. float_of_int i) in
        let u1 = u0 +. w in
        acc :=
          !acc
          +. (w *. 0.5 *. (quantile ~alpha ~l ~h u0 +. quantile ~alpha ~l ~h u1))
      done;
      !acc
    in
    let cut = 1.0 -. (float_of_int k /. float_of_int flows) in
    integral cut 1.0 /. integral 0.0 1.0
  end

let source t ~rng ?(wire_len = 64) ?(flow_base = 0) ?fill () =
  let write =
    match fill with
    | Some f -> f
    | None -> fun pkt flow -> Gen.fill_flow pkt ~flow ~wire_len
  in
  Source.make ~name:"heavy_tail"
    ~fill:(fun src pkt ->
      let f = sample t rng in
      let seq = t.seq.(f) in
      t.seq.(f) <- seq + 1;
      write pkt (flow_base + f);
      Source.set_meta src ~flow:(flow_base + f) ~seq;
      Source.Filled)
    ()
