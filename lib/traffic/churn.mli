(** Flow arrival/departure over a live-flow table.

    [live] slots hold the concurrently-live flows (the table scales to
    millions of slots — storage is two int arrays). Each packet comes from
    a uniform random slot; with probability 1/[churn_every] per packet a
    random slot first departs and a fresh, never-before-seen flow id takes
    its place. Because ids never repeat, every arrival carries a new
    synthetic 5-tuple — the workload that forces [Flow_table] to evict for
    real rather than settle into a fixed working set. *)

type t

val create : live:int -> churn_every:int -> ?flow_base:int -> unit -> t

val live : t -> int
(** Number of concurrently-live flows (the slot count). *)

val arrivals : t -> int
(** Departures+arrivals performed so far. *)

val distinct_flows : t -> int
(** Total distinct flow ids ever live (initial population + arrivals). *)

val source :
  t ->
  rng:Ppp_util.Rng.t ->
  ?wire_len:int ->
  ?fill:(Ppp_net.Packet.t -> int -> unit) ->
  unit ->
  Source.t
(** The churning source; allocation-free fills, per-flow sequence numbers,
    never exhausts. Packets built by [fill pkt flow] (default
    {!Gen.fill_flow} at [wire_len], default 64); ids offset by [flow_base]. *)
