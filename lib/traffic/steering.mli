(** NIC steering models: RSS hashing vs Flow-Director perfect steering.

    RSS computes core = hash(flow) mod cores — stateless, so packets of a
    flow always land on the same queue and are never reordered.

    Flow Director pins flows to cores through an on-NIC table and
    rebalances by migrating flows; each migration strands the flow's
    in-flight packet on the old core's queue, where the first packet
    steered to the new core overtakes it ("Why Does Flow Director Cause
    Packet Reordering?", PAPERS.md). The model reproduces exactly one
    sequence inversion per migration, counted at the moment the stranded
    packet drains — so a downstream {!Reorder} detector observes precisely
    {!migrations} inversions under Flow Director and zero under RSS (the
    qcheck property). Packet bytes are never modified; reordering is
    visible only through sequence metadata. *)

type model = Rss | Flow_director

val model_name : model -> string
(** ["rss"] / ["fdir"]. *)

val model_of_name : string -> model option

type t

val create : ?migrate_every:int -> cores:int -> model -> t
(** [migrate_every] (default 0 = never) triggers a Flow-Director migration
    of the flow being delivered every that-many deliveries; ignored under
    RSS and when [cores = 1]. *)

val model : t -> model
val cores : t -> int

val delivered : t -> int
(** Packets routed so far. *)

val migrations : t -> int
(** Completed Flow-Director migrations (stranded packet drained). Equals
    the reorder count an observer sees. Always 0 under RSS. *)

val last_core : t -> int
(** Receive core of the most recently routed packet. *)

val core_of : t -> flow:int -> int
(** Current core of [flow] without routing a packet. *)

val route : t -> flow:int -> seq:int -> int * int
(** [route t ~flow ~seq] delivers one packet: returns
    [(receive core, observed sequence number)]. Under RSS the sequence
    passes through; under Flow Director a migrating flow's stranded packet
    is swapped behind its successor. *)

val source : t -> Source.t -> Source.t
(** Wraps a source so its flow/sequence metadata passes through the
    steering model (packet bytes untouched). *)
