(** The first-class packet source: the unit of traffic generation.

    A source fills a preallocated packet in place (like the bare
    [Ppp_click.Flow.generator] closure it replaces) but is stateful,
    seeded, and self-describing: after each successful fill it reports the
    flow identity and the per-flow sequence number of the packet it just
    produced. Sequence numbers are what make reordering *observable* — a
    downstream {!Reorder} detector counts the inversions that NIC steering
    models (see {!Steering}) introduce.

    The fill hot path is allocation-free by contract: [status] has constant
    constructors only, and the built-in sources draw integers (never
    floats) from {!Ppp_util.Rng}. The perf gate audits this
    ([source_fill] in BENCH_engine.json). *)

type status =
  | Filled  (** the packet holds the next input frame *)
  | Exhausted
      (** the source has no more packets (a finite capture replayed with
          [loop:false]); the typed replacement for the [Failure] that
          [Pcap.replay] used to raise past the end *)

type t

exception Exhausted_source of string
(** Raised only by {!to_gen} compatibility closures, never by {!fill}. *)

val make : ?name:string -> fill:(t -> Ppp_net.Packet.t -> status) -> unit -> t
(** A source from a fill function. The function receives the source itself
    so it can record flow identity via {!set_meta}; implementations that
    skip [set_meta] report flow 0 with a monotone sequence (never
    reordered). *)

val fill : t -> Ppp_net.Packet.t -> status
(** Fills the packet with the next input frame and updates
    {!last_flow}/{!last_seq}/{!packets}. Allocation-free for the built-in
    sources. *)

val set_meta : t -> flow:int -> seq:int -> unit
(** For fill implementations: record the flow id and per-flow sequence
    number of the packet being produced. *)

val name : t -> string

val last_flow : t -> int
(** Flow id of the most recently filled packet. *)

val last_seq : t -> int
(** Per-flow sequence number of the most recently filled packet. A flow's
    packets leave their sender with consecutive sequence numbers; a
    downstream observer seeing them out of order has witnessed reordering. *)

val packets : t -> int
(** Total packets filled so far. *)

val of_gen : ?name:string -> (Ppp_net.Packet.t -> unit) -> t
(** Compatibility wrapper for the bare generator closures the experiments
    used to pass around: flow 0, sequence = packet count (monotone, so a
    wrapped closure can never appear reordered), never exhausts. *)

val to_gen : t -> Ppp_net.Packet.t -> unit
(** The inverse wrapper, for call sites that still want a closure. Raises
    {!Exhausted_source} if the source dries up — closures have no way to
    return a typed end-of-capture. *)
