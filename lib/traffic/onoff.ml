(* Markov-modulated burstiness: a two-state (ON/OFF) wrapper around a base
   source. In OFF the base source supplies background traffic; in ON one
   burst flow (chosen at burst start) monopolizes the link. State dwell
   times are geometric — before each packet a 1-in-mean draw decides
   whether to flip — so the mean burst length is [mean_on] packets and the
   long-run ON fraction converges to mean_on / (mean_on + mean_off). *)

type t = {
  mean_on : int;
  mean_off : int;
  burst_flows : int;
  flow_base : int;
  seq : int array; (* per-burst-flow sequence counters *)
  mutable on : bool;
  mutable burst : int; (* index of the current burst flow *)
  mutable on_packets : int;
  mutable off_packets : int;
}

let create ~mean_on ~mean_off ~burst_flows ?(flow_base = 0) () =
  if mean_on <= 0 || mean_off <= 0 then
    invalid_arg "Onoff.create: mean durations must be positive";
  if burst_flows <= 0 then
    invalid_arg "Onoff.create: burst_flows must be positive";
  {
    mean_on;
    mean_off;
    burst_flows;
    flow_base;
    seq = Array.make burst_flows 0;
    on = false;
    burst = 0;
    on_packets = 0;
    off_packets = 0;
  }

let on_packets t = t.on_packets
let off_packets t = t.off_packets
let duty_cycle t =
  let total = t.on_packets + t.off_packets in
  if total = 0 then 0.0 else float_of_int t.on_packets /. float_of_int total

let source t ~rng ~base ?(wire_len = 64) ?fill () =
  let write =
    match fill with
    | Some f -> f
    | None -> fun pkt flow -> Gen.fill_flow pkt ~flow ~wire_len
  in
  Source.make ~name:"onoff"
    ~fill:(fun src pkt ->
      (* Geometric dwell: flip with probability 1/mean before each packet. *)
      if t.on then begin
        if Ppp_util.Rng.int rng t.mean_on = 0 then t.on <- false
      end
      else if Ppp_util.Rng.int rng t.mean_off = 0 then begin
        t.on <- true;
        t.burst <- Ppp_util.Rng.int rng t.burst_flows
      end;
      if t.on then begin
        let f = t.burst in
        let seq = t.seq.(f) in
        t.seq.(f) <- seq + 1;
        write pkt (t.flow_base + f);
        Source.set_meta src ~flow:(t.flow_base + f) ~seq;
        t.on_packets <- t.on_packets + 1;
        Source.Filled
      end
      else
        match Source.fill base pkt with
        | Source.Filled ->
            Source.set_meta src ~flow:(Source.last_flow base)
              ~seq:(Source.last_seq base);
            t.off_packets <- t.off_packets + 1;
            Source.Filled
        | Source.Exhausted -> Source.Exhausted)
    ()
