(** Markov-modulated ON/OFF bursty sources.

    A two-state wrapper: OFF forwards packets from a base source
    (background traffic); ON lets a single burst flow — drawn at burst
    start from a dedicated id range — monopolize the link. Dwell times are
    geometric with means [mean_on] / [mean_off] packets, so the long-run
    fraction of burst packets converges to mean_on / (mean_on + mean_off)
    (the qcheck duty-cycle property). Bursts are what stress the monitor:
    a burst flow looks exactly like an emerging aggressor. *)

type t

val create :
  mean_on:int -> mean_off:int -> burst_flows:int -> ?flow_base:int -> unit -> t
(** [burst_flows] ids starting at [flow_base] (default 0) are reserved for
    bursts; keep them disjoint from the base source's ids. *)

val on_packets : t -> int
val off_packets : t -> int

val duty_cycle : t -> float
(** Realized fraction of packets emitted while ON. *)

val source :
  t ->
  rng:Ppp_util.Rng.t ->
  base:Source.t ->
  ?wire_len:int ->
  ?fill:(Ppp_net.Packet.t -> int -> unit) ->
  unit ->
  Source.t
(** The modulated source. OFF packets come from [base] (its flow/seq
    metadata is forwarded); ON packets are built by [fill pkt flow]
    (default {!Gen.fill_flow} at [wire_len], default 64) with per-burst-flow
    sequence numbers. Exhausts when [base] does. *)
