type status = Filled | Exhausted

type t = {
  name : string;
  fill_fn : t -> Ppp_net.Packet.t -> status;
  mutable last_flow : int;
  mutable last_seq : int;
  mutable packets : int;
}

exception Exhausted_source of string

let make ?(name = "source") ~fill () =
  { name; fill_fn = fill; last_flow = 0; last_seq = 0; packets = 0 }

let fill t pkt =
  match t.fill_fn t pkt with
  | Filled ->
      t.packets <- t.packets + 1;
      Filled
  | Exhausted -> Exhausted

let set_meta t ~flow ~seq =
  t.last_flow <- flow;
  t.last_seq <- seq

let name t = t.name
let last_flow t = t.last_flow
let last_seq t = t.last_seq
let packets t = t.packets

let of_gen ?(name = "closure") gen =
  make ~name
    ~fill:(fun t pkt ->
      gen pkt;
      (* Anonymous traffic: one flow whose sequence is the packet count —
         monotone by construction, so wrapped closures never look
         reordered. *)
      t.last_flow <- 0;
      t.last_seq <- t.packets;
      Filled)
    ()

let to_gen t pkt =
  match fill t pkt with
  | Filled -> ()
  | Exhausted -> raise (Exhausted_source t.name)
