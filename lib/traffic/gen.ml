let min_wire_len = 60

let fill_ipv4_udp pkt ~src ~dst ~sport ~dport ~wire_len =
  if wire_len < min_wire_len then invalid_arg "Gen.fill_ipv4_udp: too short";
  let open Ppp_net in
  Packet.resize pkt wire_len;
  Ethernet.set_header pkt ~src:"\x02\x00\x00\x00\x00\x01"
    ~dst:"\x02\x00\x00\x00\x00\x02" ~ethertype:Ethernet.ethertype_ipv4;
  let ip_payload = wire_len - Ipv4.header_offset - Ipv4.header_bytes in
  Ipv4.set_header pkt ~src ~dst ~proto:Ipv4.proto_udp ~ttl:64
    ~payload_len:ip_payload;
  Transport.set_udp_header pkt ~src:sport ~dst:dport
    ~payload_len:(ip_payload - Transport.udp_header_bytes)

(* A stable synthetic 5-tuple per abstract flow id, shared by every source
   model so flow ids form one address space: sources built over disjoint id
   ranges never collide on a tuple. Integer-only (FNV + masks) — the
   source fill path must not allocate. *)
let fill_flow pkt ~flow ~wire_len =
  let h = Ppp_util.Hashes.fnv1a_int (flow lxor 0x9E3779B9) in
  let src = 0x0A000000 lor (h land 0xFFFFFF) in
  let dst = 0x0B000000 lor ((h lsr 16) land 0xFFFFFF) in
  let sport = 1024 + ((h lsr 24) land 0x3FFF) in
  let dport = 1024 + ((h lsr 40) land 0x3FFF) in
  fill_ipv4_udp pkt ~src ~dst ~sport ~dport ~wire_len

let random_payload rng pkt ~pos ~len =
  for i = pos to pos + len - 1 do
    Ppp_net.Packet.set8 pkt i (Ppp_util.Rng.byte rng)
  done

let seeded_payload ~seed pkt ~pos ~len =
  let rng = Ppp_util.Rng.create ~seed in
  for i = pos to pos + len - 1 do
    Ppp_net.Packet.set8 pkt i (Ppp_util.Rng.byte rng)
  done
