(** Classic libpcap capture files (v2.4, microsecond timestamps, Ethernet
    link type): write generated workloads out for inspection with standard
    tools, and replay captured traces through the platform.

    A capture is an in-memory list of timestamped packets; [save]/[load] do
    whole-file I/O. *)

type record = { ts_usec : int; pkt : Ppp_net.Packet.t }
type t

val create : unit -> t
val append : t -> ?ts_usec:int -> Ppp_net.Packet.t -> unit
(** Copies the packet. Default timestamp: previous + 1us. *)

val records : t -> record list
val length : t -> int

val to_bytes : t -> Bytes.t
val of_bytes : Bytes.t -> (t, string) result
(** Accepts standard little-endian v2.4 files with Ethernet link type. *)

val save : t -> string -> unit
val load : string -> (t, string) result

val replay : ?loop:bool -> ?name:string -> t -> Source.t
(** A {!Source.t} cycling through the capture ([loop] defaults true; when
    false, fills return [Exhausted] past the end — the typed replacement
    for the [Failure] the closure API used to raise). Flow identity is a
    hash of each packet's header bytes, with per-flow sequence numbers
    assigned in capture order. Raises [Invalid_argument] on an empty
    capture; call sites that still want a bare closure can use
    {!Source.to_gen}. *)
