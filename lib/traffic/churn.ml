(* Flow arrival/departure over a live-flow table. A fixed number of slots
   hold the currently-live flows; each packet is drawn from a uniform
   random slot, and with probability 1/churn_every the emission is
   preceded by a departure+arrival: a random slot's flow is replaced by a
   fresh, never-before-seen id. Ids grow without bound, so the synthetic
   5-tuples are fresh too — downstream per-flow state (Flow_table) sees a
   working set much larger than its capacity and must evict for real. *)

type t = {
  flow_ids : int array; (* the live-flow table: slot -> flow id *)
  seqs : int array; (* slot -> next sequence number *)
  churn_every : int;
  flow_base : int;
  mutable next_id : int;
  mutable arrivals : int;
}

let create ~live ~churn_every ?(flow_base = 0) () =
  if live <= 0 then invalid_arg "Churn.create: live must be positive";
  if churn_every <= 0 then
    invalid_arg "Churn.create: churn_every must be positive";
  {
    flow_ids = Array.init live (fun i -> i);
    seqs = Array.make live 0;
    churn_every;
    flow_base;
    next_id = live;
    arrivals = 0;
  }

let live t = Array.length t.flow_ids
let arrivals t = t.arrivals

let distinct_flows t = t.next_id
(* every id in [0, next_id) has been live at some point *)

let source t ~rng ?(wire_len = 64) ?fill () =
  let write =
    match fill with
    | Some f -> f
    | None -> fun pkt flow -> Gen.fill_flow pkt ~flow ~wire_len
  in
  let n = Array.length t.flow_ids in
  Source.make ~name:"churn"
    ~fill:(fun src pkt ->
      if Ppp_util.Rng.int rng t.churn_every = 0 then begin
        (* departure + arrival: a random slot is taken over by a fresh
           flow; its sequence restarts at 0 *)
        let slot = Ppp_util.Rng.int rng n in
        t.flow_ids.(slot) <- t.next_id;
        t.seqs.(slot) <- 0;
        t.next_id <- t.next_id + 1;
        t.arrivals <- t.arrivals + 1
      end;
      let slot = Ppp_util.Rng.int rng n in
      let f = t.flow_base + t.flow_ids.(slot) in
      let seq = t.seqs.(slot) in
      t.seqs.(slot) <- seq + 1;
      write pkt f;
      Source.set_meta src ~flow:f ~seq;
      Source.Filled)
    ()
