(** Heavy-tailed flow-size sampler: bounded Pareto elephants and mice.

    [create] draws one realized size (in packets) per flow from a bounded
    Pareto distribution on [[min_pkts, max_pkts]] with tail index [alpha]
    (alpha near 1 = extreme skew, a few elephant flows carry almost all
    bytes; alpha near 2 = milder skew). Mass accounting is exact: the
    realized sizes form an integer prefix-sum, [sample] draws flows with
    probability proportional to their realized size, and {!top_mass}
    reports the exact fraction of total packets held by the k largest
    flows. After [create], the hot path is integer-only and
    allocation-free. *)

type t

val create :
  seed:int ->
  flows:int ->
  alpha:float ->
  ?min_pkts:int ->
  ?max_pkts:int ->
  unit ->
  t
(** Realizes the per-flow sizes. [min_pkts] defaults to 1, [max_pkts] to
    100_000. Equal seeds yield equal size vectors. *)

val flows : t -> int

val total_pkts : t -> int
(** Exact total mass (sum of realized sizes), in packets. *)

val size : t -> int -> int
(** Realized size of flow [i], in packets. *)

val sample : t -> Ppp_util.Rng.t -> int
(** Draws a flow index with probability proportional to its realized size.
    One bounded integer draw + binary search; allocation-free. *)

val top_mass : t -> k:int -> float
(** Exact fraction of total mass held by the [k] largest flows. *)

val analytic_top_mass :
  flows:int ->
  alpha:float ->
  ?min_pkts:int ->
  ?max_pkts:int ->
  k:int ->
  unit ->
  float
(** Expected top-[k] mass fraction under the same distribution, by numeric
    integration of the quantile function — the reference value the qcheck
    property compares {!top_mass} against. *)

val source :
  t ->
  rng:Ppp_util.Rng.t ->
  ?wire_len:int ->
  ?flow_base:int ->
  ?fill:(Ppp_net.Packet.t -> int -> unit) ->
  unit ->
  Source.t
(** A {!Source.t} emitting a size-weighted random flow per fill, with
    per-flow sequence numbers. Flow ids are offset by [flow_base]
    (default 0) so several sources can share one id space. Packets are
    built by [fill pkt flow] (default {!Gen.fill_flow} at [wire_len],
    default 64). Never exhausts. *)
