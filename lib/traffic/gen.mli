(** Packet construction helpers for the workload generators. *)

val fill_ipv4_udp :
  Ppp_net.Packet.t ->
  src:int -> dst:int -> sport:int -> dport:int -> wire_len:int -> unit
(** Builds a complete Ethernet/IPv4/UDP frame of [wire_len] bytes (>= 60)
    with a valid IP checksum; the payload bytes are left as-is. *)

val fill_flow : Ppp_net.Packet.t -> flow:int -> wire_len:int -> unit
(** Builds the frame of an abstract flow id: a stable synthetic 5-tuple
    derived from [flow] by hashing, identical for every source model.
    Allocation-free. *)

val random_payload :
  Ppp_util.Rng.t -> Ppp_net.Packet.t -> pos:int -> len:int -> unit

val seeded_payload : seed:int -> Ppp_net.Packet.t -> pos:int -> len:int -> unit
(** Deterministic payload derived from [seed] — two packets with the same
    seed carry identical bytes (redundant traffic for RE). *)

val min_wire_len : int
