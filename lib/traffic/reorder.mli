(** Per-flow reordering detector.

    Tracks each flow's highest sequence number; a packet arriving with a
    sequence below its flow's high-water mark was overtaken in flight (the
    RFC 4737 reordered-singleton metric). Fed by {!Source.last_flow} /
    {!Source.last_seq} after each fill — {!Ppp_click.Flow} does this for
    every packet, which is how the per-flow latency histograms gain their
    reorder column.

    Flow state lives in a direct-mapped cache indexed by
    [flow land (slots - 1)], so {!observe} never allocates. A collision
    evicts the resident flow and resets its mark, which can only
    under-count: in-order sources report zero reorders unconditionally,
    and counts are exact whenever the observed flow ids span fewer than
    [slots] values (all the built-in generators at experiment sizes). *)

type t

val create : ?slots:int -> unit -> t
(** [slots] (default 16384) must be a positive power of two; raises
    [Invalid_argument] otherwise. *)

val observe : t -> flow:int -> seq:int -> bool
(** Feed one packet; [true] iff this arrival is a reordered singleton
    (below its flow's high-water mark). Callers route the packet's latency
    into the in-order or reordered histogram column accordingly. *)

val observed : t -> int
(** Packets observed. *)

val reorders : t -> int
(** Packets that arrived below their flow's high-water mark. *)

val flows : t -> int
(** Flow arrivals observed: distinct flows, plus re-entries of flows that
    were evicted by an index collision (none below the aliasing point). *)

val rate : t -> float
(** [reorders / observed] (0 when nothing observed). *)
