(* Per-flow reordering detector: track the highest sequence number seen on
   each flow; a packet arriving below its flow's high-water mark has been
   overtaken. This is the standard single-pass reordering metric (RFC 4737
   "reordered" singleton definition).

   [observe] runs once per simulated packet inside the engine hot path, so
   flow state lives in a direct-mapped cache (two int arrays indexed by
   [flow land (slots - 1)]) rather than a hash table: after [create], the
   detector never allocates. On an index collision the newcomer evicts the
   resident flow and starts a fresh high-water mark. Eviction can only
   under-count — a false reorder would need a tag match with another flow's
   mark, and tags are exact — so the zero-reorder guarantee for in-order
   sources is unconditional, and counts are exact whenever live flows fit
   in the table without aliasing (flow ids spanning less than [slots]
   always do). *)

type t = {
  mask : int;
  tags : int array; (* flow id resident in the slot; -1 = empty *)
  marks : int array; (* that flow's highest sequence seen *)
  mutable distinct : int; (* slots ever occupied + evictions = flows seen *)
  mutable observed : int;
  mutable reorders : int;
}

let create ?(slots = 16384) () =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Reorder.create: slots must be a positive power of two";
  {
    mask = slots - 1;
    tags = Array.make slots (-1);
    marks = Array.make slots 0;
    distinct = 0;
    observed = 0;
    reorders = 0;
  }

let observe t ~flow ~seq =
  t.observed <- t.observed + 1;
  let i = flow land t.mask in
  if t.tags.(i) = flow then begin
    if seq > t.marks.(i) then begin
      t.marks.(i) <- seq;
      false
    end
    else if seq < t.marks.(i) then begin
      t.reorders <- t.reorders + 1;
      true
    end
    else false (* equal: duplicate of the high-water mark *)
  end
  else begin
    (* Empty slot or eviction: either way a flow we have no state for. *)
    t.distinct <- t.distinct + 1;
    t.tags.(i) <- flow;
    t.marks.(i) <- seq;
    false
  end

let observed t = t.observed
let reorders t = t.reorders
let flows t = t.distinct

let rate t =
  if t.observed = 0 then 0.0
  else float_of_int t.reorders /. float_of_int t.observed
