(* Structured rule sets: a deterministic mix of the rule classes real ACL /
   OpenFlow tables contain. Addresses are drawn from a handful of /8 blocks
   so prefixes of different lengths genuinely overlap — a uniform 32-bit
   draw would make every rule disjoint and both backends trivially fast. *)

let blocks = [| 0x0A000000; 0x0AC80000; 0xC0A80000; 0xAC100000; 0x08080000 |]

let addr rng =
  let base = blocks.(Ppp_util.Rng.int rng (Array.length blocks)) in
  base lor Ppp_util.Rng.int rng 0x10000

let well_known_ports = [| 22; 53; 80; 123; 443; 8080 |]

let port rng =
  if Ppp_util.Rng.bool rng then
    well_known_ports.(Ppp_util.Rng.int rng (Array.length well_known_ports))
  else Ppp_util.Rng.int_in rng 1024 0xFFFF

let port_range rng =
  if Ppp_util.Rng.int rng 3 = 0 then (0, 0xFFFF)
  else if Ppp_util.Rng.bool rng then
    let p = port rng in
    (p, p)
  else
    let lo = Ppp_util.Rng.int_in rng 0 0xFF00 in
    (lo, lo + Ppp_util.Rng.int_in rng 0 0xFF)

let proto rng =
  match Ppp_util.Rng.int rng 4 with
  | 0 -> 0 (* any *)
  | 1 -> Ppp_net.Ipv4.proto_tcp
  | _ -> Ppp_net.Ipv4.proto_udp

(* The class mix: exact ACL entries, prefix aggregates, service (port-range)
   rules, broad policies. Weights are arbitrary but fixed — they are part of
   the experiment's definition, like the Zipf skew. *)
let rule rng =
  let sport_lo, sport_hi = port_range rng in
  let dport_lo, dport_hi = port_range rng in
  let cls = Ppp_util.Rng.int rng 10 in
  let plen rng =
    match Ppp_util.Rng.int rng 3 with 0 -> 8 | 1 -> 16 | _ -> 24
  in
  let src_plen, dst_plen, sport_lo, sport_hi, dport_lo, dport_hi =
    if cls < 3 then (32, 32, sport_lo, sport_hi, dport_lo, dport_hi)
      (* exact-address ACL *)
    else if cls < 7 then (plen rng, plen rng, 0, 0xFFFF, dport_lo, dport_hi)
      (* prefix aggregate, destination service *)
    else if cls < 9 then (0, plen rng, sport_lo, sport_hi, dport_lo, dport_hi)
      (* any-source policy *)
    else (0, 0, 0, 0xFFFF, dport_lo, dport_hi)
    (* broad port-only rule *)
  in
  {
    Rule.prio = Ppp_util.Rng.int_in rng 1 8;
    src = addr rng;
    src_plen;
    dst = addr rng;
    dst_plen;
    sport_lo;
    sport_hi;
    dport_lo;
    dport_hi;
    proto = proto rng;
    action = Ppp_util.Rng.int_in rng 1 254;
  }

let catch_all rng =
  {
    Rule.prio = 0;
    src = 0;
    src_plen = 0;
    dst = 0;
    dst_plen = 0;
    sport_lo = 0;
    sport_hi = 0xFFFF;
    dport_lo = 0;
    dport_hi = 0xFFFF;
    proto = 0;
    action = Ppp_util.Rng.int_in rng 1 254;
  }

let make ~rng ~n =
  if n <= 0 then invalid_arg "Rulegen.make: n must be positive";
  let rules =
    Array.init n (fun i -> if i = n - 1 then catch_all rng else rule rng)
  in
  Array.iter Rule.validate rules;
  rules

let addr_in rng base plen =
  let mask = Rule.mask_of_plen plen in
  let lo = base land mask in
  lo lor (Ppp_util.Rng.int_in rng 0 (lnot mask land 0xFFFFFFFF))

let flowid_matching ~rng (r : Rule.t) =
  {
    Ppp_net.Flowid.src = addr_in rng r.Rule.src r.Rule.src_plen;
    dst = addr_in rng r.Rule.dst r.Rule.dst_plen;
    sport = Ppp_util.Rng.int_in rng r.Rule.sport_lo r.Rule.sport_hi;
    dport = Ppp_util.Rng.int_in rng r.Rule.dport_lo r.Rule.dport_hi;
    proto =
      (if r.Rule.proto = 0 then
         if Ppp_util.Rng.bool rng then Ppp_net.Ipv4.proto_udp
         else Ppp_net.Ipv4.proto_tcp
       else r.Rule.proto);
  }
