open Ppp_simmem

(* One indexed interval: the rule's destination range and its install
   sequence number. Sorted by [i_lo] within an iSet; non-overlapping. *)
type ival = { i_lo : int; i_hi : int; i_seq : int }

type iset = {
  ivals : ival Iarray.t;
  (* Least-squares fit of position k against start address lo_k, with the
     exact maximum rounding error computed over every start at build time.
     slope >= 0 because the fit is over a sorted sequence. *)
  slope : float;
  intercept : float;
  err : int;
}

type t = {
  rules : Rule.t Iarray.t;
  isets : iset array;
  rest : int Iarray.t;  (* remainder: install seqs in order, linear scan *)
  rest_len : int;
  dir : int Iarray.t;  (* one descriptor line per structure *)
  scratch : Ppp_hw.Trace.Builder.t;
}

let name = "range"
let max_isets = 4

(* Below this many leftover intervals, indexing stops paying for itself;
   they join the remainder scan. *)
let iset_cutoff = 4

let fit (ivals : ival array) =
  let n = Array.length ivals in
  if n <= 1 then (0.0, 0.0)
  else begin
    let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
    for k = 0 to n - 1 do
      let x = float_of_int ivals.(k).i_lo and y = float_of_int k in
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y)
    done;
    let fn = float_of_int n in
    let det = (fn *. !sxx) -. (!sx *. !sx) in
    if det = 0.0 then (0.0, 0.0)
    else
      let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. det in
      let intercept = (!sy -. (slope *. !sx)) /. fn in
      (max 0.0 slope, intercept)
  end

let predict slope intercept n dst =
  let p = int_of_float ((slope *. float_of_int dst) +. intercept +. 0.5) in
  if p < 0 then 0 else if p >= n then n - 1 else p

let build_iset ~heap (ivals : ival array) =
  let n = Array.length ivals in
  let slope, intercept = fit ivals in
  let err = ref 0 in
  for k = 0 to n - 1 do
    let d = abs (predict slope intercept n ivals.(k).i_lo - k) in
    if d > !err then err := d
  done;
  {
    ivals =
      Iarray.init heap ~elem_bytes:16 n (fun k -> ivals.(k));
    slope;
    intercept;
    err = !err;
  }

let create ~heap (rules : Rule.t array) =
  Array.iter Rule.validate rules;
  let nrules = Array.length rules in
  (* Greedy interval scheduling: repeatedly peel a maximal non-overlapping
     subset of destination ranges (earliest-endpoint-first), each becoming
     one iSet, until the iSet budget or the cutoff is hit. *)
  let remaining = ref (List.init nrules (fun i -> i)) in
  let isets = ref [] in
  let continue = ref true in
  while !continue && List.length !isets < max_isets
        && List.length !remaining > iset_cutoff do
    let sorted =
      List.sort
        (fun a b ->
          let la, ha = Rule.dst_range rules.(a) in
          let lb, hb = Rule.dst_range rules.(b) in
          if ha <> hb then compare ha hb
          else if la <> lb then compare la lb
          else compare a b)
        !remaining
    in
    let picked = ref [] and last_hi = ref (-1) and rest = ref [] in
    List.iter
      (fun seq ->
        let lo, hi = Rule.dst_range rules.(seq) in
        if lo > !last_hi then begin
          picked := { i_lo = lo; i_hi = hi; i_seq = seq } :: !picked;
          last_hi := hi
        end
        else rest := seq :: !rest)
      sorted;
    let picked = Array.of_list (List.rev !picked) in
    if Array.length picked <= 1 then continue := false
      (* no parallelism left to exploit: stop peeling *)
    else begin
      isets := build_iset ~heap picked :: !isets;
      remaining := List.sort compare (List.rev !rest)
    end
  done;
  let isets = Array.of_list (List.rev !isets) in
  let rest = !remaining in
  let rest_len = List.length rest in
  let rest_arr = Iarray.create heap ~elem_bytes:8 (max 1 rest_len) 0 in
  List.iteri (fun i seq -> Iarray.poke rest_arr i seq) rest;
  let rules_arr =
    Iarray.init heap ~elem_bytes:40 (max 1 nrules) (fun i ->
        if i < nrules then rules.(i)
        else
          { Rule.prio = 0; src = 0; src_plen = 0; dst = 0; dst_plen = 0;
            sport_lo = 0; sport_hi = 0; dport_lo = 0; dport_hi = 0; proto = 255;
            action = 0 })
  in
  {
    rules = rules_arr;
    isets;
    rest = rest_arr;
    rest_len;
    dir = Iarray.create heap ~elem_bytes:16 (max 1 (Array.length isets + 1)) 0;
    scratch = Ppp_hw.Trace.Builder.create ();
  }

let isets t = Array.length t.isets
let remainder t = t.rest_len

let max_err t =
  Array.fold_left (fun acc s -> max acc s.err) 0 t.isets

(* Last k in [lo_idx, hi_idx] with ivals[k].i_lo <= dst, or -1. Every probe
   is an instrumented read — the binary search's memory behaviour is the
   point of the model (it bounds the number of these). *)
let search_last_le (s : iset) b ~fn ~lo_idx ~hi_idx dst =
  let lo = ref lo_idx and hi = ref hi_idx and ans = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let iv = Iarray.get s.ivals b ~fn mid in
    Ppp_hw.Trace.Builder.compute b ~fn 3;
    if iv.i_lo <= dst then begin
      ans := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !ans

let best_candidate t b ~fn (f : Ppp_net.Flowid.t) seq ~best_prio ~best_seq
    ~best_act =
  let r = Iarray.get t.rules b ~fn seq in
  Ppp_hw.Trace.Builder.compute b ~fn 8;
  if
    Rule.matches r f
    && Rule.better ~prio:r.Rule.prio ~seq ~than_prio:!best_prio
         ~than_seq:!best_seq
  then begin
    best_prio := r.Rule.prio;
    best_seq := seq;
    best_act := r.Rule.action
  end

let lookup t b ~fn (f : Ppp_net.Flowid.t) =
  let dst = f.Ppp_net.Flowid.dst in
  let best_prio = ref min_int in
  let best_seq = ref max_int in
  let best_act = ref Rule.no_match in
  Array.iteri
    (fun si s ->
      ignore (Iarray.get t.dir b ~fn si : int);
      let n = Iarray.length s.ivals in
      (* Model prediction plus bounded fix-up. The window provably contains
         the answer (err is the exact max error over all starts and the fit
         is monotone), but verify the boundary anyway and fall back to the
         full range if the invariant is ever violated. *)
      Ppp_hw.Trace.Builder.compute b ~fn 10;
      let p = predict s.slope s.intercept n dst in
      let lo_idx = max 0 (p - s.err - 1) in
      let hi_idx = min (n - 1) (p + s.err + 1) in
      let k = search_last_le s b ~fn ~lo_idx ~hi_idx dst in
      let k =
        let window_ok =
          (k >= 0 || lo_idx = 0
           || (Iarray.get s.ivals b ~fn lo_idx).i_lo > dst)
          && (k < 0 || k < hi_idx || hi_idx = n - 1
             || (Iarray.get s.ivals b ~fn (hi_idx + 1)).i_lo > dst)
        in
        if window_ok then
          if k >= 0 then k
          else if lo_idx > 0 then search_last_le s b ~fn ~lo_idx:0 ~hi_idx:(lo_idx - 1) dst
          else -1
        else search_last_le s b ~fn ~lo_idx:0 ~hi_idx:(n - 1) dst
      in
      if k >= 0 then begin
        let iv = Iarray.get s.ivals b ~fn k in
        if dst <= iv.i_hi then
          best_candidate t b ~fn f iv.i_seq ~best_prio ~best_seq ~best_act
      end)
    t.isets;
  (* Remainder: the firewall-style linear scan. *)
  ignore (Iarray.get t.dir b ~fn (Array.length t.isets) : int);
  for i = 0 to t.rest_len - 1 do
    let seq = Iarray.get t.rest b ~fn i in
    best_candidate t b ~fn f seq ~best_prio ~best_seq ~best_act
  done;
  !best_act

let lookup_quiet t f =
  Ppp_hw.Trace.Builder.clear t.scratch;
  lookup t t.scratch ~fn:Ppp_hw.Fn.none f
