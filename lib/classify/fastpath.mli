(** The drop-in classification element: flow-table fast path in front of a
    slow-path classifier, with the OVS upcall protocol between them.

    Hit: one table probe, cached action, forward (or drop for a cached
    {!Rule.no_match} megaflow). Miss: charge the upcall's kernel-crossing
    cost, run the slow-path classifier (its memory traffic lands under the
    upcall fn tag), install the result — including negative caching of
    no-match — and proceed as a hit would have.

    This generalizes [Flow_cache.lookup_element], which remains the
    exact-match-only special case over the radix trie. *)

type t

val create :
  heap:Ppp_simmem.Heap.t ->
  ?table_entries:int ->
  ?probe_limit:int ->
  ?upcall_cost:int ->
  backend:Classifier.kind ->
  Rule.t array ->
  t
(** [upcall_cost] is the instruction charge of the fast-path-to-slow-path
    transition itself (context switch, queueing), default 400 — the
    classifier search adds its own references on top. *)

val element : t -> Ppp_click.Element.t
(** Forward with the action written into the packet's first byte, or Drop
    when the winning action is {!Rule.no_match}. *)

val table : t -> Flow_table.t
val backend_name : t -> string

val upcalls : t -> int
(** Number of misses that went to the slow path (= table misses). *)

val fn_fast : Ppp_hw.Fn.t
val fn_upcall : Ppp_hw.Fn.t
