module type S = sig
  type t

  val name : string
  val create : heap:Ppp_simmem.Heap.t -> Rule.t array -> t

  val lookup :
    t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Flowid.t -> int

  val lookup_quiet : t -> Ppp_net.Flowid.t -> int
end

(* Conformance of the concrete backends is checked here, not in their own
   mlis, so the backends stay plain modules with richer interfaces. *)
module Check_tss : S = Tuple_space
module Check_range : S = Range_index

type kind = Tss | Range

let all = [ Tss; Range ]
let kind_name = function Tss -> "tss" | Range -> "range"

let kind_of_name = function
  | "tss" -> Some Tss
  | "range" -> Some Range
  | _ -> None

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let make ~heap kind rules =
  match kind with
  | Tss -> Packed ((module Tuple_space), Tuple_space.create ~heap rules)
  | Range -> Packed ((module Range_index), Range_index.create ~heap rules)

let name (Packed ((module M), _)) = M.name
let lookup (Packed ((module M), c)) b ~fn f = M.lookup c b ~fn f
let lookup_quiet (Packed ((module M), c)) f = M.lookup_quiet c f
