open Ppp_simmem

(* One hash-table entry: the masked key this rule was installed under, the
   rule's install sequence number (= index into [rules]), and the chain
   link. Entries are immutable after build. *)
type entry = { e_src : int; e_dst : int; e_seq : int; e_next : int }

type tuple = {
  smask : int;
  dmask : int;
  max_prio : int;  (* best priority present: the skip bound *)
  hmask : int;
  heads : int Iarray.t;  (* -1 = empty bucket *)
  entries : entry Iarray.t;
}

type t = {
  rules : Rule.t Iarray.t;  (* residual fields, read on candidate check *)
  tuples : tuple array;
  dir : int Iarray.t;  (* one descriptor line per tuple, charged on visit *)
  scratch : Ppp_hw.Trace.Builder.t;  (* sink for lookup_quiet *)
}

let name = "tss"
let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let hash_key msrc mdst mask =
  Ppp_util.Hashes.combine
    (Ppp_util.Hashes.fnv1a_int msrc)
    (Ppp_util.Hashes.fnv1a_int mdst)
  land mask

let build_tuple ~heap ~(rules : Rule.t array) ~src_plen ~dst_plen seqs =
  let smask = Rule.mask_of_plen src_plen in
  let dmask = Rule.mask_of_plen dst_plen in
  let n = List.length seqs in
  let cap = pow2 (2 * n) 4 in
  let hmask = cap - 1 in
  let heads = Iarray.create heap ~elem_bytes:8 cap (-1) in
  let entries =
    Iarray.create heap ~elem_bytes:32 n
      { e_src = 0; e_dst = 0; e_seq = 0; e_next = -1 }
  in
  let max_prio = ref min_int in
  List.iteri
    (fun i seq ->
      let r = rules.(seq) in
      if r.Rule.prio > !max_prio then max_prio := r.Rule.prio;
      let msrc = r.Rule.src land smask and mdst = r.Rule.dst land dmask in
      let h = hash_key msrc mdst hmask in
      Iarray.poke entries i
        { e_src = msrc; e_dst = mdst; e_seq = seq; e_next = Iarray.peek heads h };
      Iarray.poke heads h i)
    seqs;
  { smask; dmask; max_prio = !max_prio; hmask; heads; entries }

let create ~heap (rules : Rule.t array) =
  Array.iter Rule.validate rules;
  (* Group install sequence numbers by mask pair, preserving first-seen
     tuple order (deterministic across runs: array order is install order). *)
  let groups = ref [] in
  Array.iteri
    (fun seq (r : Rule.t) ->
      let key = (r.Rule.src_plen, r.Rule.dst_plen) in
      match List.assoc_opt key !groups with
      | Some cell -> cell := seq :: !cell
      | None -> groups := !groups @ [ (key, ref [ seq ]) ])
    rules;
  let tuples =
    Array.of_list
      (List.map
         (fun ((src_plen, dst_plen), cell) ->
           build_tuple ~heap ~rules ~src_plen ~dst_plen (List.rev !cell))
         !groups)
  in
  let rules_arr =
    Iarray.init heap ~elem_bytes:40 (max 1 (Array.length rules)) (fun i ->
        if i < Array.length rules then rules.(i)
        else
          { Rule.prio = 0; src = 0; src_plen = 0; dst = 0; dst_plen = 0;
            sport_lo = 0; sport_hi = 0; dport_lo = 0; dport_hi = 0; proto = 255;
            action = 0 })
  in
  {
    rules = rules_arr;
    tuples;
    dir = Iarray.create heap ~elem_bytes:16 (max 1 (Array.length tuples)) 0;
    scratch = Ppp_hw.Trace.Builder.create ();
  }

let tuples t = Array.length t.tuples

(* Residual check beyond the masked-address key: ports and protocol. The
   prefix fields are already proven equal by the key comparison. *)
let residual_matches (r : Rule.t) (f : Ppp_net.Flowid.t) =
  f.Ppp_net.Flowid.sport >= r.Rule.sport_lo
  && f.Ppp_net.Flowid.sport <= r.Rule.sport_hi
  && f.Ppp_net.Flowid.dport >= r.Rule.dport_lo
  && f.Ppp_net.Flowid.dport <= r.Rule.dport_hi
  && (r.Rule.proto = 0 || f.Ppp_net.Flowid.proto = r.Rule.proto)

let lookup t b ~fn (f : Ppp_net.Flowid.t) =
  let best_prio = ref min_int in
  let best_seq = ref max_int in
  let best_act = ref Rule.no_match in
  for ti = 0 to Array.length t.tuples - 1 do
    let tp = t.tuples.(ti) in
    ignore (Iarray.get t.dir b ~fn ti : int);
    Ppp_hw.Trace.Builder.compute b ~fn 4;
    (* A tuple whose best priority is strictly below the winner cannot
       improve it; equal priority still can (lower install order). *)
    if tp.max_prio >= !best_prio then begin
      let msrc = f.Ppp_net.Flowid.src land tp.smask in
      let mdst = f.Ppp_net.Flowid.dst land tp.dmask in
      let idx = ref (Iarray.get tp.heads b ~fn (hash_key msrc mdst tp.hmask)) in
      Ppp_hw.Trace.Builder.compute b ~fn 8;
      while !idx >= 0 do
        let e = Iarray.get tp.entries b ~fn !idx in
        Ppp_hw.Trace.Builder.compute b ~fn 4;
        if e.e_src = msrc && e.e_dst = mdst then begin
          let r = Iarray.get t.rules b ~fn e.e_seq in
          Ppp_hw.Trace.Builder.compute b ~fn 6;
          if
            residual_matches r f
            && Rule.better ~prio:r.Rule.prio ~seq:e.e_seq ~than_prio:!best_prio
                 ~than_seq:!best_seq
          then begin
            best_prio := r.Rule.prio;
            best_seq := e.e_seq;
            best_act := r.Rule.action
          end
        end;
        idx := e.e_next
      done
    end
  done;
  !best_act

let lookup_quiet t f =
  Ppp_hw.Trace.Builder.clear t.scratch;
  lookup t t.scratch ~fn:Ppp_hw.Fn.none f
