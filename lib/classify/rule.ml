(* The rule record shared by every slow-path backend and the test oracle.

   Matching semantics are deliberately minimal — prefixes on addresses,
   inclusive ranges on ports, exact-or-any protocol — because the point of
   this subsystem is not expressiveness but the fast-path/slow-path split:
   any semantics rich enough to need priorities and overlap already forces
   the tuple-space / range-index design space. *)

type t = {
  prio : int;
  src : int;
  src_plen : int;
  dst : int;
  dst_plen : int;
  sport_lo : int;
  sport_hi : int;
  dport_lo : int;
  dport_hi : int;
  proto : int;
  action : int;
}

let no_match = -1
let u32 = 0xFFFFFFFF
let mask_of_plen plen = if plen <= 0 then 0 else u32 land (u32 lsl (32 - plen))

let dst_range r =
  let mask = mask_of_plen r.dst_plen in
  let lo = r.dst land mask in
  (lo, lo lor (lnot mask land u32))

let matches r (f : Ppp_net.Flowid.t) =
  let smask = mask_of_plen r.src_plen in
  let dmask = mask_of_plen r.dst_plen in
  f.Ppp_net.Flowid.src land smask = r.src land smask
  && f.Ppp_net.Flowid.dst land dmask = r.dst land dmask
  && f.Ppp_net.Flowid.sport >= r.sport_lo
  && f.Ppp_net.Flowid.sport <= r.sport_hi
  && f.Ppp_net.Flowid.dport >= r.dport_lo
  && f.Ppp_net.Flowid.dport <= r.dport_hi
  && (r.proto = 0 || f.Ppp_net.Flowid.proto = r.proto)

let better ~prio ~seq ~than_prio ~than_seq =
  prio > than_prio || (prio = than_prio && seq < than_seq)

let validate r =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if r.src_plen < 0 || r.src_plen > 32 then
    bad "Rule.validate: src_plen %d out of [0,32]" r.src_plen;
  if r.dst_plen < 0 || r.dst_plen > 32 then
    bad "Rule.validate: dst_plen %d out of [0,32]" r.dst_plen;
  if r.sport_lo < 0 || r.sport_hi > 0xFFFF || r.sport_lo > r.sport_hi then
    bad "Rule.validate: source port range [%d,%d]" r.sport_lo r.sport_hi;
  if r.dport_lo < 0 || r.dport_hi > 0xFFFF || r.dport_lo > r.dport_hi then
    bad "Rule.validate: destination port range [%d,%d]" r.dport_lo r.dport_hi;
  if r.proto < 0 || r.proto > 255 then
    bad "Rule.validate: proto %d out of [0,255]" r.proto;
  if r.action < 0 then bad "Rule.validate: negative action %d" r.action

let pp fmt r =
  Format.fprintf fmt
    "prio=%d src=%08x/%d dst=%08x/%d sport=[%d,%d] dport=[%d,%d] proto=%d -> %d"
    r.prio r.src r.src_plen r.dst r.dst_plen r.sport_lo r.sport_hi r.dport_lo
    r.dport_hi r.proto r.action
