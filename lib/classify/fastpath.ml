let fn_fast = Ppp_hw.Fn.register "flow_classify"
let fn_upcall = Ppp_hw.Fn.register "classifier_upcall"

type t = {
  table : Flow_table.t;
  classifier : Classifier.packed;
  upcall_cost : int;
  mutable upcalls : int;
}

let create ~heap ?(table_entries = 4096) ?probe_limit ?(upcall_cost = 400)
    ~backend rules =
  {
    table = Flow_table.create ~heap ?probe_limit ~entries:table_entries ();
    classifier = Classifier.make ~heap backend rules;
    upcall_cost;
    upcalls = 0;
  }

let table t = t.table
let backend_name t = Classifier.name t.classifier
let upcalls t = t.upcalls

let element t =
  Ppp_click.Element.make ~kind:"FlowClassifier" (fun ctx pkt ->
      let b = ctx.Ppp_click.Ctx.builder in
      (* Parse the 5-tuple out of the headers and probe the table. *)
      Ppp_click.Ctx.touch_packet ctx pkt ~fn:fn_fast ~write:false ~pos:0
        ~len:40;
      Ppp_click.Ctx.compute ctx ~fn:fn_fast 14;
      let action = Flow_table.find t.table b ~fn:fn_fast pkt in
      let action =
        if action <> Flow_table.absent then action
        else begin
          (* Upcall: the fast path hands the packet to the slow path, which
             classifies against the full rule set and installs a megaflow
             (negative results included, so repeat misses stay cached). *)
          t.upcalls <- t.upcalls + 1;
          Ppp_click.Ctx.compute ctx ~fn:fn_upcall t.upcall_cost;
          let fid = Ppp_net.Flowid.of_packet pkt in
          let act = Classifier.lookup t.classifier b ~fn:fn_upcall fid in
          Flow_table.install t.table b ~fn:fn_upcall fid act;
          act
        end
      in
      if action = Rule.no_match then Ppp_click.Element.Drop
      else begin
        Ppp_net.Packet.set8 pkt 0 (action land 0xFF);
        Ppp_click.Ctx.touch_packet ctx pkt ~fn:fn_fast ~write:true ~pos:0
          ~len:1;
        Ppp_click.Element.Forward
      end)
