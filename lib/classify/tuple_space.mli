(** OVS-style tuple-space search.

    Rules are grouped by their (src_plen, dst_plen) mask pair; each group
    ("tuple") is an exact-match hash table keyed on the masked addresses.
    A lookup masks the flow id once per tuple, probes that tuple's hash
    table, finishes the residual port/protocol checks on candidate rules,
    and keeps the best (priority, install order) winner. Tuples whose best
    priority cannot beat the current winner are skipped — the classic TSS
    priority sort optimisation.

    All tables live in instrumented {!Ppp_simmem.Iarray} storage, so a
    lookup emits the same kind of simulated address stream the firewall and
    IP-lookup elements do. *)

type t

val name : string

val create : heap:Ppp_simmem.Heap.t -> Rule.t array -> t
(** Build the tuple space over the rule set; array order is install order. *)

val tuples : t -> int
(** Number of distinct mask pairs (hash tables searched in the worst case). *)

val lookup :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Flowid.t -> int
(** Instrumented search: the action of the best matching rule, or
    {!Rule.no_match}. *)

val lookup_quiet : t -> Ppp_net.Flowid.t -> int
(** Same result, no trace side effects on the caller (tests, upkeep). *)
