open Ppp_simmem

(* One slot: the full 5-tuple key plus the cached action. s_proto = -1 marks
   a never-filled slot; real protocols are >= 0. Simulated size 32 bytes —
   two slots per cache line, like a packed C struct of six ints. *)
type slot = {
  s_src : int;
  s_dst : int;
  s_sport : int;
  s_dport : int;
  s_proto : int;
  s_action : int;
}

let empty_slot =
  { s_src = 0; s_dst = 0; s_sport = 0; s_dport = 0; s_proto = -1; s_action = 0 }

type t = {
  slots : slot Iarray.t;
  mask : int;
  probe_limit : int;
  mutable stamp : int;  (* round-robin victim cursor *)
  mutable hits : int;
  mutable misses : int;
  mutable installs : int;
  mutable evictions : int;
}

let absent = min_int
let rec pow2 n v = if v >= n then v else pow2 n (v * 2)

let create ~heap ?(probe_limit = 8) ~entries () =
  if entries <= 0 then invalid_arg "Flow_table.create";
  if probe_limit <= 0 then invalid_arg "Flow_table.create: probe_limit";
  let cap = pow2 entries 16 in
  {
    slots = Iarray.create heap ~elem_bytes:32 cap empty_slot;
    mask = cap - 1;
    probe_limit = min probe_limit cap;
    stamp = 0;
    hits = 0;
    misses = 0;
    installs = 0;
    evictions = 0;
  }

let capacity t = t.mask + 1
let probe_limit t = t.probe_limit
let hits t = t.hits
let misses t = t.misses
let installs t = t.installs
let evictions t = t.evictions

let home t h = (h lsr 16) land t.mask

let find t b ~fn pkt =
  let src = Ppp_net.Ipv4.src pkt in
  let dst = Ppp_net.Ipv4.dst pkt in
  let proto = Ppp_net.Ipv4.proto pkt in
  let sport = Ppp_net.Transport.src_port pkt in
  let dport = Ppp_net.Transport.dst_port pkt in
  let h = home t (Ppp_net.Flowid.hash_of_packet pkt) in
  let result = ref absent in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < t.probe_limit do
    let s = Iarray.get t.slots b ~fn ((h + !i) land t.mask) in
    if s.s_proto = -1 then stop := true (* never-filled: key cannot be past *)
    else if
      s.s_src = src && s.s_dst = dst && s.s_sport = sport && s.s_dport = dport
      && s.s_proto = proto
    then begin
      result := s.s_action;
      stop := true
    end
    else incr i
  done;
  if !result = absent then t.misses <- t.misses + 1 else t.hits <- t.hits + 1;
  !result

let install t b ~fn (f : Ppp_net.Flowid.t) action =
  if action = absent then invalid_arg "Flow_table.install: absent sentinel";
  let slot =
    {
      s_src = f.Ppp_net.Flowid.src;
      s_dst = f.Ppp_net.Flowid.dst;
      s_sport = f.Ppp_net.Flowid.sport;
      s_dport = f.Ppp_net.Flowid.dport;
      s_proto = f.Ppp_net.Flowid.proto;
      s_action = action;
    }
  in
  let h = home t (Ppp_net.Flowid.hash f) in
  let target = ref (-1) in
  let evict = ref false in
  let i = ref 0 in
  while !target < 0 && !i < t.probe_limit do
    let s = Iarray.get t.slots b ~fn ((h + !i) land t.mask) in
    if
      s.s_proto = -1
      || s.s_src = slot.s_src && s.s_dst = slot.s_dst
         && s.s_sport = slot.s_sport && s.s_dport = slot.s_dport
         && s.s_proto = slot.s_proto
    then target := (h + !i) land t.mask
    else incr i
  done;
  if !target < 0 then begin
    (* Window full: deterministic round-robin victim within the window. *)
    target := (h + (t.stamp mod t.probe_limit)) land t.mask;
    t.stamp <- t.stamp + 1;
    evict := true
  end;
  Iarray.set t.slots b ~fn !target slot;
  t.installs <- t.installs + 1;
  if !evict then t.evictions <- t.evictions + 1

let find_flowid t (f : Ppp_net.Flowid.t) =
  let h = home t (Ppp_net.Flowid.hash f) in
  let result = ref absent in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < t.probe_limit do
    let s = Iarray.peek t.slots ((h + !i) land t.mask) in
    if s.s_proto = -1 then stop := true
    else if
      s.s_src = f.Ppp_net.Flowid.src && s.s_dst = f.Ppp_net.Flowid.dst
      && s.s_sport = f.Ppp_net.Flowid.sport
      && s.s_dport = f.Ppp_net.Flowid.dport
      && s.s_proto = f.Ppp_net.Flowid.proto
    then begin
      result := s.s_action;
      stop := true
    end
    else incr i
  done;
  !result
