(** A classification rule over the 5-tuple: prefix match on the addresses,
    range match on the ports, exact-or-wildcard match on the protocol, with
    a priority and an action.

    This is the OpenFlow/OVS rule shape restricted to the fields the rest of
    the repo already models ({!Ppp_net.Flowid}). Rules are installed once
    per classifier instance; the slow-path backends differ only in how they
    search an identical rule set, and the differential oracle suite holds
    them all to the same answer. *)

type t = {
  prio : int;  (** higher wins; ties broken by install order (lower first) *)
  src : int;
  src_plen : int;  (** source prefix length, 0 (any) .. 32 (exact) *)
  dst : int;
  dst_plen : int;
  sport_lo : int;
  sport_hi : int;  (** inclusive source-port range *)
  dport_lo : int;
  dport_hi : int;
  proto : int;  (** 0 = any *)
  action : int;  (** >= 0; what a matching packet gets (an egress port) *)
}

val no_match : int
(** The action returned when no rule matches (-1). Installed actions must be
    nonnegative, so the two never collide. *)

val mask_of_plen : int -> int
(** 32-bit network mask of a prefix length. *)

val dst_range : t -> int * int
(** The inclusive [lo, hi] interval of destination addresses the rule's
    destination prefix covers — the dimension {!Range_index} indexes. *)

val matches : t -> Ppp_net.Flowid.t -> bool
(** Pure field-by-field match, no instrumentation. Every backend's result
    is defined in terms of this predicate: the winning rule is the matching
    rule with the highest [prio], install order breaking ties. *)

val better : prio:int -> seq:int -> than_prio:int -> than_seq:int -> bool
(** The shared tie-break: does (prio, seq) beat (than_prio, than_seq)?
    Strictly higher priority wins; equal priority falls back to the lower
    install sequence number. Every backend must use exactly this order for
    the differential suite to hold. *)

val validate : t -> unit
(** Raises [Invalid_argument] on malformed rules (bad prefix length,
    inverted port range, negative action). *)

val pp : Format.formatter -> t -> unit
