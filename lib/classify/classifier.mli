(** The slow-path classifier abstraction: what an upcall talks to.

    Both backends implement [S] over the same {!Rule} set and must agree —
    the differential oracle suite in [test/classify_tests.ml] holds them to
    the linear-scan reference bit for bit. *)

module type S = sig
  type t

  val name : string
  val create : heap:Ppp_simmem.Heap.t -> Rule.t array -> t

  val lookup :
    t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Flowid.t -> int
  (** The action of the best matching rule — highest priority, install
      order breaking ties — or {!Rule.no_match}. Instrumented: the search's
      memory references land in the builder under the given fn tag. *)

  val lookup_quiet : t -> Ppp_net.Flowid.t -> int
  (** Identical result with no effect on any caller-visible trace. *)
end

type kind = Tss | Range

val all : kind list
val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Recognizes ["tss"] and ["range"]. *)

type packed
(** A backend instance with its implementation. *)

val make : heap:Ppp_simmem.Heap.t -> kind -> Rule.t array -> packed
val name : packed -> string

val lookup :
  packed -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Flowid.t -> int

val lookup_quiet : packed -> Ppp_net.Flowid.t -> int
