(** Deterministic structured rule-set generator for experiments.

    Real classifier rule sets are not uniform random hypercubes: they mix
    exact-match ACL entries, prefix aggregates at the classic /8 / /16 / /24
    break points, port-range service rules, and a handful of broad
    policies. The generator reproduces that mix from a seeded {!Ppp_util.Rng}
    so every backend sees the identical rule set for a given cell. *)

val make : rng:Ppp_util.Rng.t -> n:int -> Rule.t array
(** [make ~rng ~n] builds [n] valid rules (validated with {!Rule.validate}).
    The last rule is always a lowest-priority catch-all so generated traffic
    never falls through to {!Rule.no_match}. Install order is array order. *)

val flowid_matching : rng:Ppp_util.Rng.t -> Rule.t -> Ppp_net.Flowid.t
(** Sample a concrete flow id inside the rule's hypercube — used to build
    traffic universes where every flow has a known matching rule. *)
