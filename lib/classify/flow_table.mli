(** The exact-match fast path: an open-addressed table from {!Ppp_net.Flowid}
    to a cached action, OVS-microflow style.

    [find] probes a short linear window; the first empty slot terminates the
    probe (slots are never emptied once filled — eviction replaces in
    place, so the invariant that makes early termination sound holds for
    the table's whole lifetime). A full window evicts a deterministic
    round-robin victim. Because the slow path is a pure function of the
    flow id, an evicted entry is re-installed with the identical action on
    its next miss — eviction affects performance, never results. *)

type t

val absent : int
(** Returned by {!find} on a miss. Distinct from any cached action,
    including a cached {!Rule.no_match} (a "drop" megaflow). *)

val create : heap:Ppp_simmem.Heap.t -> ?probe_limit:int -> entries:int -> unit -> t
(** Capacity is rounded up to a power of two, minimum 16.
    Raises [Invalid_argument] if [entries <= 0]. *)

val capacity : t -> int
val probe_limit : t -> int

val find :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Packet.t -> int
(** Instrumented, allocation-free probe keyed on the packet's 5-tuple.
    Counts a hit or a miss. *)

val install :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Flowid.t -> int -> unit
(** Install (or refresh) the action cached for a flow; evicts when the
    probe window is full. Counts an install, and an eviction if one
    happened. The action may be {!Rule.no_match} (a cached drop), never
    {!absent}. *)

val find_flowid : t -> Ppp_net.Flowid.t -> int
(** Quiet exact lookup by flow id (tests; does not touch counters). *)

val hits : t -> int
val misses : t -> int
val installs : t -> int
val evictions : t -> int
