(** NuevoMatchUP-style computational cache over rule ranges.

    The destination-prefix intervals of the rule set are partitioned into a
    few non-overlapping groups (iSets). Each iSet keeps its intervals sorted
    by start address under a tiny linear model fitted at build time; a
    lookup predicts the interval's position from the destination address and
    fixes it up with a bounded local binary search (the model's exact
    maximum error is computed at build, so the window always contains the
    answer). Rules that fit no iSet form a remainder set searched linearly,
    like the firewall's ACL scan. Candidates from all structures are
    validated against the full rule and combined under the shared
    (priority, install order) total order, so the result is identical to
    the oracle's. *)

type t

val name : string
val create : heap:Ppp_simmem.Heap.t -> Rule.t array -> t

val isets : t -> int
(** Number of indexed groups. *)

val remainder : t -> int
(** Rules outside every iSet (linear-scanned on each lookup). *)

val max_err : t -> int
(** Largest model error bound across iSets: the local-search radius. *)

val lookup :
  t -> Ppp_hw.Trace.Builder.t -> fn:Ppp_hw.Fn.t -> Ppp_net.Flowid.t -> int

val lookup_quiet : t -> Ppp_net.Flowid.t -> int
