(** Element ids for per-element performance attribution.

    Every traced operation carries a small integer element id naming the
    Click element (or driver stage) that issued it; the profiler aggregates
    cycles, instructions, L3 behaviour and latency per id — the element
    path through a chain is the profiler's "stack". Ids are registered by
    name and idempotent, like {!Fn} tags, but the registry is
    mutex-protected because elements are instantiated from worker domains.

    Registration order depends on domain scheduling, so raw ids are only
    meaningful within one process run: exporters must key everything by
    {!name}, never by the id itself. *)

type t = int
(** A registered element id, in [0, max_ids). *)

val max_ids : int
(** Upper bound on distinct element ids (128). *)

val register : string -> t
(** [register name] returns the id for [name], allocating one on first use.
    Idempotent; thread-safe. Raises [Failure] if the registry is full. *)

val name : t -> string
(** Name of a registered id; ["?"] for unregistered values. *)

val count : unit -> int
(** Number of registered ids so far (including {!other}). *)

val other : t
(** The pre-registered catch-all id 0, named ["(other)"]: operations traced
    outside any element (builder default) are attributed here. *)
