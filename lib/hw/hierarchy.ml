type geometry = { l1 : Cache.geometry; l2 : Cache.geometry; l3 : Cache.geometry }

type t = {
  topo : Topology.t;
  costs : Costs.t;
  l1s : Cache.t array; (* per core *)
  l2s : Cache.t array; (* per core *)
  l3s : Cache.t array; (* per socket; aux = directory presence bits *)
  memctrls : Memctrl.t array; (* per node *)
  counters : Counters.t array; (* per core *)
  miss_streak : bool array; (* per core: previous access was a DRAM miss *)
}

(* Private-cache aux: bit 0 set when the core holds the line exclusively
   (no other private cache on the socket may hold it). *)
let excl = 1

let create topo costs geo =
  if geo.l1.line_bytes <> geo.l2.line_bytes || geo.l2.line_bytes <> geo.l3.line_bytes
  then invalid_arg "Hierarchy.create: all levels must share a line size";
  let cores = Topology.cores topo in
  {
    topo;
    costs;
    l1s = Array.init cores (fun _ -> Cache.create geo.l1);
    l2s = Array.init cores (fun _ -> Cache.create geo.l2);
    l3s = Array.init topo.Topology.sockets (fun _ -> Cache.create geo.l3);
    memctrls =
      Array.init topo.Topology.sockets (fun _ ->
          Memctrl.create ~service_cycles:costs.Costs.mc_service);
    counters = Array.init cores (fun _ -> Counters.create ());
    miss_streak = Array.make cores false;
  }

let topology t = t.topo
let costs t = t.costs
let counters t core = t.counters.(core)

(* Write a dirty private victim down into L3 (inclusion guarantees presence;
   if violated, fall back to a posted memory write-back). *)
let writeback_to_l3 t ~socket ~line ~now =
  let l3 = t.l3s.(socket) in
  match Cache.probe l3 line with
  | Some slot -> Cache.set_dirty l3 slot true
  | None ->
      (* Inclusion should make this unreachable; keep the model safe anyway. *)
      let node = Topology.node_of_addr (line * (Cache.geometry l3).Cache.line_bytes) in
      Memctrl.writeback t.memctrls.(min node (Array.length t.memctrls - 1)) ~now

(* Insert [line] into a private cache, cascading dirty victims downwards. *)
let fill_private t ~core ~socket ~line ~exclusive ~dirty ~now =
  let aux = if exclusive then excl else 0 in
  let l2 = t.l2s.(core) in
  (match Cache.insert l2 ~dirty:false ~aux line with
  | Some { Cache.victim_line; victim_dirty; _ } when victim_dirty ->
      writeback_to_l3 t ~socket ~line:victim_line ~now
  | Some _ | None -> ());
  let l1 = t.l1s.(core) in
  match Cache.insert l1 ~dirty ~aux line with
  | Some { Cache.victim_line; victim_dirty; _ } when victim_dirty -> (
      (* L1 victim descends into L2 (non-inclusive L2, as on Westmere). *)
      match Cache.find l2 victim_line with
      | Some slot -> Cache.set_dirty l2 slot true
      | None -> (
          match Cache.insert l2 ~dirty:true ~aux:0 victim_line with
          | Some { Cache.victim_line = v2; victim_dirty = d2; _ } when d2 ->
              writeback_to_l3 t ~socket ~line:v2 ~now
          | Some _ | None -> ()))
  | Some _ | None -> ()

(* Remove a line from a core's private caches; true if a dirty copy existed. *)
let invalidate_private t ~core ~line =
  let d1 = match Cache.invalidate t.l1s.(core) line with
    | Some (dirty, _) -> dirty
    | None -> false
  in
  let d2 = match Cache.invalidate t.l2s.(core) line with
    | Some (dirty, _) -> dirty
    | None -> false
  in
  d1 || d2

let iter_holders t ~socket ~bits ~excluding f =
  let base_core = socket * t.topo.Topology.cores_per_socket in
  for li = 0 to t.topo.Topology.cores_per_socket - 1 do
    if li <> excluding && bits land (1 lsl li) <> 0 then f (base_core + li)
  done

(* Invalidate every other holder of [line] per directory [bits]; returns true
   if any dirty copy was found (its data is merged into the L3). *)
let invalidate_other_holders t ~socket ~bits ~self_li ~line =
  let found_dirty = ref false in
  iter_holders t ~socket ~bits ~excluding:self_li (fun core ->
      if invalidate_private t ~core ~line then found_dirty := true);
  !found_dirty

(* Downgrade other holders for a read: dirty copies are flushed to L3 and
   lose exclusivity, but stay resident. *)
let downgrade_other_holders t ~socket ~bits ~self_li ~line =
  let found_dirty = ref false in
  iter_holders t ~socket ~bits ~excluding:self_li (fun core ->
      let demote cache =
        match Cache.probe cache line with
        | Some slot ->
            if Cache.dirty cache slot then found_dirty := true;
            Cache.set_dirty cache slot false;
            Cache.set_aux cache slot 0
        | None -> ()
      in
      demote t.l1s.(core);
      demote t.l2s.(core));
  !found_dirty

(* Ensure exclusivity before a write that hit a non-exclusive private line:
   one round trip to the directory, invalidating peer copies. *)
let upgrade t ~socket ~self_li ~line =
  let l3 = t.l3s.(socket) in
  (match Cache.probe l3 line with
  | Some slot ->
      let bits = Cache.aux l3 slot in
      let self = 1 lsl self_li in
      if invalidate_other_holders t ~socket ~bits ~self_li ~line then
        Cache.set_dirty l3 slot true;
      Cache.set_aux l3 slot self
  | None -> ());
  t.costs.Costs.upgrade_lat

let mark_exclusive cache line =
  match Cache.probe cache line with
  | Some slot -> Cache.set_aux cache slot excl
  | None -> ()

let access t ~core ~write ~fn ~addr ~now =
  let costs = t.costs in
  let socket = Topology.socket_of_core t.topo core in
  let self_li = Topology.local_index t.topo core in
  let self = 1 lsl self_li in
  let ctr = t.counters.(core) in
  if write then Counters.add_write ctr else Counters.add_read ctr;
  Counters.add_instructions ctr 1;
  let l1 = t.l1s.(core) in
  let line = Cache.line_of_addr l1 addr in
  match Cache.find l1 line with
  | Some slot ->
      (* L1 hit. *)
      t.miss_streak.(core) <- false;
      Counters.add_l1_hit ctr fn;
      let extra =
        if write && Cache.aux l1 slot land excl = 0 then begin
          let lat = upgrade t ~socket ~self_li ~line in
          Cache.set_aux l1 slot excl;
          mark_exclusive t.l2s.(core) line;
          lat
        end
        else 0
      in
      if write then Cache.set_dirty l1 slot true;
      costs.Costs.l1_lat + extra
  | None -> (
      let l2 = t.l2s.(core) in
      match Cache.find l2 line with
      | Some slot ->
          (* L2 hit: refill L1. *)
          t.miss_streak.(core) <- false;
          Counters.add_l2_hit ctr fn;
          let exclusive = Cache.aux l2 slot land excl <> 0 in
          let extra =
            if write && not exclusive then upgrade t ~socket ~self_li ~line
            else 0
          in
          let exclusive = exclusive || write in
          let dirty_in_l2 = Cache.dirty l2 slot in
          ignore
            (Cache.invalidate l2 line : (bool * int) option);
          (* Move up to L1 (keeping dirtiness); L2 copy dropped to avoid
             double-tracking dirtiness across the two private levels. *)
          fill_private t ~core ~socket ~line ~exclusive
            ~dirty:(dirty_in_l2 || write) ~now;
          costs.Costs.l2_lat + extra
      | None -> (
          let l3 = t.l3s.(socket) in
          match Cache.find l3 line with
          | Some slot ->
              (* L3 hit. *)
              t.miss_streak.(core) <- false;
              Counters.add_l3_hit ctr fn;
              let bits = Cache.aux l3 slot in
              let others = bits land lnot self in
              let snoop_cost = ref 0 in
              if others <> 0 then
                if write then begin
                  if invalidate_other_holders t ~socket ~bits ~self_li ~line
                  then Cache.set_dirty l3 slot true;
                  Cache.set_aux l3 slot self;
                  snoop_cost := costs.Costs.upgrade_lat
                end
                else begin
                  if downgrade_other_holders t ~socket ~bits ~self_li ~line
                  then begin
                    Cache.set_dirty l3 slot true;
                    snoop_cost := costs.Costs.c2c_lat
                  end;
                  Cache.set_aux l3 slot (bits lor self)
                end
              else Cache.set_aux l3 slot (bits lor self);
              let exclusive = Cache.aux l3 slot = self in
              fill_private t ~core ~socket ~line ~exclusive ~dirty:write ~now;
              costs.Costs.l3_lat + !snoop_cost
          | None ->
              (* L3 miss: go to the home node's memory controller. *)
              Counters.add_l3_miss ctr fn;
              let node = Topology.node_of_addr addr in
              let remote = node <> socket && node < Array.length t.memctrls in
              let mc =
                if node < Array.length t.memctrls then t.memctrls.(node)
                else t.memctrls.(socket)
              in
              let queue_wait = Memctrl.demand_access mc ~now in
              (* Back-to-back misses overlap on an out-of-order core: only
                 1/mlp of the DRAM latency is exposed past the first. *)
              let dram_exposed =
                if t.miss_streak.(core) && costs.Costs.mlp > 1 then
                  costs.Costs.dram_lat / costs.Costs.mlp
                else costs.Costs.dram_lat
              in
              t.miss_streak.(core) <- true;
              (* Fill L3; inclusion: back-invalidate private copies of the
                 victim across the socket. *)
              (match Cache.insert l3 ~dirty:write ~aux:self line with
              | Some { Cache.victim_line; victim_dirty; victim_aux } ->
                  let priv_dirty = ref false in
                  iter_holders t ~socket ~bits:victim_aux ~excluding:(-1)
                    (fun c ->
                      if invalidate_private t ~core:c ~line:victim_line then
                        priv_dirty := true);
                  if victim_dirty || !priv_dirty then begin
                    let vnode =
                      let vaddr = victim_line * Cache.(geometry l3).line_bytes in
                      Topology.node_of_addr vaddr
                    in
                    let vmc =
                      if vnode < Array.length t.memctrls then
                        t.memctrls.(vnode)
                      else mc
                    in
                    Memctrl.writeback vmc ~now
                  end
              | None -> ());
              fill_private t ~core ~socket ~line ~exclusive:true ~dirty:write
                ~now;
              costs.Costs.l3_lat + dram_exposed + queue_wait
              + (if remote then costs.Costs.qpi_lat else 0)))

let dma_write t ~addr ~now =
  let line = Cache.line_of_addr t.l1s.(0) addr in
  Array.iteri
    (fun socket l3 ->
      match Cache.invalidate l3 line with
      | Some (_, bits) ->
          iter_holders t ~socket ~bits ~excluding:(-1) (fun core ->
              ignore (invalidate_private t ~core ~line : bool))
      | None ->
          (* Directory is conservative; sweep private caches anyway. *)
          let base = socket * t.topo.Topology.cores_per_socket in
          for li = 0 to t.topo.Topology.cores_per_socket - 1 do
            ignore (invalidate_private t ~core:(base + li) ~line : bool)
          done)
    t.l3s;
  let node = Topology.node_of_addr addr in
  let mc =
    if node < Array.length t.memctrls then t.memctrls.(node) else t.memctrls.(0)
  in
  Memctrl.writeback mc ~now

let l3_occupancy t ~socket = Cache.occupancy t.l3s.(socket)

let l3_resident t ~socket ~addr =
  let l3 = t.l3s.(socket) in
  Cache.resident l3 (Cache.line_of_addr l3 addr)

let private_resident t ~core ~addr =
  let l1 = t.l1s.(core) in
  let line = Cache.line_of_addr l1 addr in
  Cache.resident l1 line || Cache.resident t.l2s.(core) line

let directory_marks t ~core ~addr =
  let socket = Topology.socket_of_core t.topo core in
  let l3 = t.l3s.(socket) in
  match Cache.probe l3 (Cache.line_of_addr l3 addr) with
  | Some slot -> Cache.aux l3 slot land (1 lsl Topology.local_index t.topo core) <> 0
  | None -> false

let memctrl_transactions t ~node = Memctrl.transactions t.memctrls.(node)
