type geometry = { l1 : Cache.geometry; l2 : Cache.geometry; l3 : Cache.geometry }

type t = {
  topo : Topology.t;
  costs : Costs.t;
  l1s : Cache.t array; (* per core *)
  l2s : Cache.t array; (* per core *)
  l3s : Cache.t array; (* per socket; aux = directory presence bits *)
  memctrls : Memctrl.t array; (* per node *)
  counters : Counters.t array; (* per core *)
  miss_streak : bool array; (* per core: previous access was a DRAM miss *)
  (* Topology.socket_of_core / local_index, precomputed per core: the
     topology functions divide (and bounds-check) on every miss-path call. *)
  socket_of : int array;
  local_ix : int array;
}

(* Private-cache aux: bit 0 set when the core holds the line exclusively
   (no other private cache on the socket may hold it). *)
let excl = 1

let create topo costs geo =
  if geo.l1.line_bytes <> geo.l2.line_bytes || geo.l2.line_bytes <> geo.l3.line_bytes
  then invalid_arg "Hierarchy.create: all levels must share a line size";
  let cores = Topology.cores topo in
  {
    topo;
    costs;
    l1s = Array.init cores (fun _ -> Cache.create geo.l1);
    l2s = Array.init cores (fun _ -> Cache.create geo.l2);
    l3s = Array.init topo.Topology.sockets (fun _ -> Cache.create geo.l3);
    memctrls =
      Array.init topo.Topology.sockets (fun _ ->
          Memctrl.create ~service_cycles:costs.Costs.mc_service);
    counters = Array.init cores (fun _ -> Counters.create ());
    miss_streak = Array.make cores false;
    socket_of = Array.init cores (fun c -> Topology.socket_of_core topo c);
    local_ix = Array.init cores (fun c -> Topology.local_index topo c);
  }

let topology t = t.topo
let costs t = t.costs
let counters t core = t.counters.(core)

(* Write a dirty private victim down into L3 (inclusion guarantees presence;
   if violated, fall back to a posted memory write-back). *)
let writeback_to_l3 t ~socket ~line ~now =
  let l3 = t.l3s.(socket) in
  let slot = Cache.probe l3 line in
  if slot >= 0 then Cache.set_dirty l3 slot true
  else begin
    (* Inclusion should make this unreachable; keep the model safe anyway. *)
    let node = Topology.node_of_addr (line * (Cache.geometry l3).Cache.line_bytes) in
    Memctrl.writeback t.memctrls.(min node (Array.length t.memctrls - 1)) ~now
  end

(* Insert [line] into a private cache, cascading dirty victims downwards.
   Victims are read in place through the two-step victim_slot/fill protocol
   — the victim's identity and dirtiness live in the slot until [fill]
   overwrites them, so no eviction record exists. Victim handling only
   touches *lower* levels, so doing it before the fill is state-identical
   to the old insert-then-handle order. *)
let fill_private t ~core ~socket ~line ~exclusive ~dirty ~now =
  let aux = if exclusive then excl else 0 in
  let l2 = t.l2s.(core) in
  let s2 = Cache.victim_slot l2 line in
  if Cache.slot_valid l2 s2 && Cache.dirty l2 s2 then
    writeback_to_l3 t ~socket ~line:(Cache.line l2 s2) ~now;
  Cache.fill l2 ~slot:s2 ~dirty:false ~aux line;
  let l1 = t.l1s.(core) in
  let s1 = Cache.victim_slot l1 line in
  if Cache.slot_valid l1 s1 && Cache.dirty l1 s1 then begin
    (* L1 victim descends into L2 (non-inclusive L2, as on Westmere). *)
    let victim_line = Cache.line l1 s1 in
    let sv = Cache.find l2 victim_line in
    if sv >= 0 then Cache.set_dirty l2 sv true
    else begin
      let sv = Cache.victim_slot l2 victim_line in
      if Cache.slot_valid l2 sv && Cache.dirty l2 sv then
        writeback_to_l3 t ~socket ~line:(Cache.line l2 sv) ~now;
      Cache.fill l2 ~slot:sv ~dirty:true ~aux:0 victim_line
    end
  end;
  Cache.fill l1 ~slot:s1 ~dirty ~aux line

(* Remove a line from a core's private caches; true if a dirty copy existed.
   The snoop helpers below are written as flat loops over the directory
   bits — closure-per-snoop (the old iter_holders shape) was a measurable
   share of the contended workload's allocation. *)
let invalidate_private t ~core ~line =
  let l1 = t.l1s.(core) in
  let s1 = Cache.probe l1 line in
  let d1 = s1 >= 0 && Cache.dirty l1 s1 in
  if s1 >= 0 then Cache.invalidate_slot l1 s1;
  let l2 = t.l2s.(core) in
  let s2 = Cache.probe l2 line in
  let d2 = s2 >= 0 && Cache.dirty l2 s2 in
  if s2 >= 0 then Cache.invalidate_slot l2 s2;
  d1 || d2

(* Invalidate every holder of [line] per directory [bits] except
   [excluding] (a local index; -1 for none); returns true if any dirty copy
   was found (its data is merged into the L3). *)
let invalidate_holders t ~socket ~bits ~excluding ~line =
  let base_core = socket * t.topo.Topology.cores_per_socket in
  let found_dirty = ref false in
  for li = 0 to t.topo.Topology.cores_per_socket - 1 do
    if li <> excluding && bits land (1 lsl li) <> 0 then
      if invalidate_private t ~core:(base_core + li) ~line then
        found_dirty := true
  done;
  !found_dirty

let invalidate_other_holders t ~socket ~bits ~self_li ~line =
  invalidate_holders t ~socket ~bits ~excluding:self_li ~line

(* Downgrade other holders for a read: dirty copies are flushed to L3 and
   lose exclusivity, but stay resident. *)
let downgrade_other_holders t ~socket ~bits ~self_li ~line =
  let base_core = socket * t.topo.Topology.cores_per_socket in
  let found_dirty = ref false in
  for li = 0 to t.topo.Topology.cores_per_socket - 1 do
    if li <> self_li && bits land (1 lsl li) <> 0 then begin
      let core = base_core + li in
      let l1 = t.l1s.(core) in
      let s1 = Cache.probe l1 line in
      if s1 >= 0 then begin
        if Cache.dirty l1 s1 then found_dirty := true;
        Cache.set_dirty l1 s1 false;
        Cache.set_aux l1 s1 0
      end;
      let l2 = t.l2s.(core) in
      let s2 = Cache.probe l2 line in
      if s2 >= 0 then begin
        if Cache.dirty l2 s2 then found_dirty := true;
        Cache.set_dirty l2 s2 false;
        Cache.set_aux l2 s2 0
      end
    end
  done;
  !found_dirty

(* Ensure exclusivity before a write that hit a non-exclusive private line:
   one round trip to the directory, invalidating peer copies. *)
let upgrade t ~socket ~self_li ~line =
  let l3 = t.l3s.(socket) in
  let slot = Cache.probe l3 line in
  if slot >= 0 then begin
    let bits = Cache.aux l3 slot in
    let self = 1 lsl self_li in
    if invalidate_other_holders t ~socket ~bits ~self_li ~line then
      Cache.set_dirty l3 slot true;
    Cache.set_aux l3 slot self
  end;
  t.costs.Costs.upgrade_lat

let mark_exclusive cache line =
  let slot = Cache.probe cache line in
  if slot >= 0 then Cache.set_aux cache slot excl

let access t ~core ~write ~fn ~addr ~now =
  let costs = t.costs in
  let ctr = Array.unsafe_get t.counters core in
  if write then Counters.add_write ctr else Counters.add_read ctr;
  Counters.add_instructions ctr 1;
  let l1 = Array.unsafe_get t.l1s core in
  let line = Cache.line_of_addr l1 addr in
  let slot = Cache.find l1 line in
  if slot >= 0 then begin
    (* L1 hit — the simulator's common case; nothing here may allocate. *)
    Array.unsafe_set t.miss_streak core false;
    Counters.add_l1_hit ctr fn;
    if write then begin
      if Cache.aux l1 slot land excl = 0 then begin
        let socket = Array.unsafe_get t.socket_of core in
        let self_li = Array.unsafe_get t.local_ix core in
        let lat = upgrade t ~socket ~self_li ~line in
        Cache.set_aux l1 slot excl;
        mark_exclusive t.l2s.(core) line;
        Cache.set_dirty l1 slot true;
        costs.Costs.l1_lat + lat
      end
      else begin
        Cache.set_dirty l1 slot true;
        costs.Costs.l1_lat
      end
    end
    else costs.Costs.l1_lat
  end
  else begin
    let socket = Array.unsafe_get t.socket_of core in
    let self_li = Array.unsafe_get t.local_ix core in
    let self = 1 lsl self_li in
    let l2 = t.l2s.(core) in
    let slot = Cache.find l2 line in
    if slot >= 0 then begin
      (* L2 hit: refill L1. *)
      t.miss_streak.(core) <- false;
      Counters.add_l2_hit ctr fn;
      let exclusive = Cache.aux l2 slot land excl <> 0 in
      let extra =
        if write && not exclusive then upgrade t ~socket ~self_li ~line else 0
      in
      let exclusive = exclusive || write in
      let dirty_in_l2 = Cache.dirty l2 slot in
      Cache.invalidate_slot l2 slot;
      (* Move up to L1 (keeping dirtiness); L2 copy dropped to avoid
         double-tracking dirtiness across the two private levels. *)
      fill_private t ~core ~socket ~line ~exclusive
        ~dirty:(dirty_in_l2 || write) ~now;
      costs.Costs.l2_lat + extra
    end
    else begin
      let l3 = t.l3s.(socket) in
      (* Hit slot or victim slot in one scan of the set — the miss path
         needs the victim anyway, and the two-scan shape paid for it
         twice. *)
      let fv = Cache.find_or_victim l3 line in
      let slot = fv in
      if slot >= 0 then begin
        (* L3 hit. *)
        t.miss_streak.(core) <- false;
        Counters.add_l3_hit ctr fn;
        let bits = Cache.aux l3 slot in
        let others = bits land lnot self in
        let snoop_cost = ref 0 in
        if others <> 0 then
          if write then begin
            if invalidate_other_holders t ~socket ~bits ~self_li ~line then
              Cache.set_dirty l3 slot true;
            Cache.set_aux l3 slot self;
            snoop_cost := costs.Costs.upgrade_lat
          end
          else begin
            if downgrade_other_holders t ~socket ~bits ~self_li ~line then begin
              Cache.set_dirty l3 slot true;
              snoop_cost := costs.Costs.c2c_lat
            end;
            Cache.set_aux l3 slot (bits lor self)
          end
        else Cache.set_aux l3 slot (bits lor self);
        let exclusive = Cache.aux l3 slot = self in
        fill_private t ~core ~socket ~line ~exclusive ~dirty:write ~now;
        costs.Costs.l3_lat + !snoop_cost
      end
      else begin
        (* L3 miss: go to the home node's memory controller. *)
        Counters.add_l3_miss ctr fn;
        let node = Topology.node_of_addr addr in
        let remote = node <> socket && node < Array.length t.memctrls in
        let mc =
          if node < Array.length t.memctrls then t.memctrls.(node)
          else t.memctrls.(socket)
        in
        let queue_wait = Memctrl.demand_access mc ~now in
        (* Back-to-back misses overlap on an out-of-order core: only
           1/mlp of the DRAM latency is exposed past the first. *)
        let dram_exposed =
          if t.miss_streak.(core) && costs.Costs.mlp > 1 then
            costs.Costs.dram_lat / costs.Costs.mlp
          else costs.Costs.dram_lat
        in
        t.miss_streak.(core) <- true;
        (* Fill L3; inclusion: back-invalidate private copies of the victim
           across the socket. Victim state is read in place before the fill
           overwrites the slot. The victim way came out of the combined
           lookup scan above; nothing between the scan and here touches the
           L3, so the choice is the one [victim_slot] would make now. *)
        let vs = -2 - fv in
        if Cache.slot_valid l3 vs then begin
          let victim_line = Cache.line l3 vs in
          let victim_dirty = Cache.dirty l3 vs in
          let victim_aux = Cache.aux l3 vs in
          let priv_dirty =
            invalidate_holders t ~socket ~bits:victim_aux ~excluding:(-1)
              ~line:victim_line
          in
          if victim_dirty || priv_dirty then begin
            let vnode =
              let vaddr = victim_line * Cache.(geometry l3).line_bytes in
              Topology.node_of_addr vaddr
            in
            let vmc =
              if vnode < Array.length t.memctrls then t.memctrls.(vnode)
              else mc
            in
            Memctrl.writeback vmc ~now
          end
        end;
        Cache.fill l3 ~slot:vs ~dirty:write ~aux:self line;
        fill_private t ~core ~socket ~line ~exclusive:true ~dirty:write ~now;
        costs.Costs.l3_lat + dram_exposed + queue_wait
        + (if remote then costs.Costs.qpi_lat else 0)
      end
    end
  end

let dma_write t ~addr ~now =
  let line = Cache.line_of_addr t.l1s.(0) addr in
  for socket = 0 to Array.length t.l3s - 1 do
    let l3 = t.l3s.(socket) in
    let slot = Cache.probe l3 line in
    if slot >= 0 then begin
      let bits = Cache.aux l3 slot in
      Cache.invalidate_slot l3 slot;
      ignore (invalidate_holders t ~socket ~bits ~excluding:(-1) ~line : bool)
    end
    else begin
      (* Directory is conservative; sweep private caches anyway. *)
      let base = socket * t.topo.Topology.cores_per_socket in
      for li = 0 to t.topo.Topology.cores_per_socket - 1 do
        ignore (invalidate_private t ~core:(base + li) ~line : bool)
      done
    end
  done;
  let node = Topology.node_of_addr addr in
  let mc =
    if node < Array.length t.memctrls then t.memctrls.(node) else t.memctrls.(0)
  in
  Memctrl.writeback mc ~now

let l3_occupancy t ~socket = Cache.occupancy t.l3s.(socket)

let l3_resident t ~socket ~addr =
  let l3 = t.l3s.(socket) in
  Cache.resident l3 (Cache.line_of_addr l3 addr)

let private_resident t ~core ~addr =
  let l1 = t.l1s.(core) in
  let line = Cache.line_of_addr l1 addr in
  Cache.resident l1 line || Cache.resident t.l2s.(core) line

let directory_marks t ~core ~addr =
  let socket = Topology.socket_of_core t.topo core in
  let l3 = t.l3s.(socket) in
  let slot = Cache.probe l3 (Cache.line_of_addr l3 addr) in
  slot >= 0
  && Cache.aux l3 slot land (1 lsl Topology.local_index t.topo core) <> 0

let memctrl_transactions t ~node = Memctrl.transactions t.memctrls.(node)
