type t = {
  service_cycles : int;
  mutable free_at : int;
  mutable transactions : int;
}

let create ~service_cycles =
  if service_cycles <= 0 then invalid_arg "Memctrl.create";
  { service_cycles; free_at = 0; transactions = 0 }

let[@inline] occupy t ~now =
  let wait = max 0 (t.free_at - now) in
  t.free_at <- now + wait + t.service_cycles;
  t.transactions <- t.transactions + 1;
  wait

let demand_access t ~now = occupy t ~now

let writeback t ~now =
  let (_ : int) = occupy t ~now in
  ()

let busy_until t = t.free_at
let transactions t = t.transactions

let reset t =
  t.free_at <- 0;
  t.transactions <- 0
