(** The multicore interleaving engine.

    Each participating core owns a stream of per-packet traces produced by
    its flow. The engine repeatedly advances the core with the smallest local
    clock by one operation, so the reference streams of co-running flows
    interleave in simulated-time order through the shared {!Hierarchy} —
    faithfully reproducing inter-core cache and memory-controller contention.

    Measurements are taken over a window: every core runs through a warmup
    period (caches fill, queues reach steady state), then statistics are the
    counter deltas between the window boundaries. All cores keep executing
    until the slowest one has crossed the window end, so competition is
    present throughout every core's measured interval. *)

type item =
  | Packet of Trace.t  (** work for one packet; completion counts a packet *)
  | Idle of Trace.t  (** stall/bookkeeping ops that do not complete a packet *)
  | Reordered of Trace.t
      (** a packet like [Packet], whose arrival the source's reorder
          detector flagged as a sequence inversion: its latency is
          additionally recorded in the [reordered] histogram column *)

type source = int -> item
(** Called with the core's current cycle whenever the core finished its
    previous item (the cycle argument is how a control element measures its
    own rate, like reading the TSC). Must not return an empty trace (the
    engine raises [Invalid_argument] to avoid a live-lock). *)

type flow = { core : int; label : string; source : source }

type sample = {
  s_core : int;  (** core the slice was measured on *)
  s_flow : string;  (** the flow's label *)
  s_start : int;  (** slice start (simulated cycles, absolute) *)
  s_end : int;  (** slice end; slices of one core are contiguous *)
  s_packets : int;  (** packets completed inside the slice *)
  s_delta : Counters.t;  (** counter delta over the slice *)
  s_latency : Ppp_util.Histogram.t;
      (** latency of the packets completing inside the slice *)
}
(** One time slice of a core's measurement window. Successive slices of a
    core telescope: each delta is taken between consecutive snapshots of
    the same counters, so summing every slice of a core reproduces the
    window's {!Counters.diff} (and window packet count) exactly. *)

type probe = {
  sample_cycles : int;
      (** nominal slice length; boundaries sit on the grid
          [warmup + i * sample_cycles] of simulated time. A slice closes at
          the first operation completion at-or-past a boundary, so actual
          ends jitter by at most one operation. Must be >= 1. *)
  on_sample : sample -> unit;
      (** called in deterministic simulated-time order: the engine is a
          sequential interleaving simulation, so for a fixed run the calls
          and their contents never depend on wall-clock or job count. *)
}
(** A time-sliced counter sampler — the simulator's analogue of running
    Oprofile with a sampling period, feeding the telemetry layer. *)

type result = {
  core : int;
  label : string;
  packets : int;  (** packets completed within the measurement window *)
  window_cycles : int;
  throughput_pps : float;  (** packets per simulated second *)
  counters : Counters.t;  (** counter delta over the window *)
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  latency : Ppp_util.Histogram.t;
      (** per-packet processing latency (cycles), packets completed within
          the window *)
  latency_inorder : Ppp_util.Histogram.t;
      (** the subset of [latency] from packets delivered in order *)
  latency_reordered : Ppp_util.Histogram.t;
      (** the subset of [latency] from packets flagged {!Reordered} by the
          source; [latency_inorder] and [latency_reordered] partition
          [latency] exactly *)
  engine_ops : int;
      (** trace operations the engine replayed for this core over the whole
          run, warmup included — the simulator's own work, used by the bench
          perf gate to report replay throughput (ops/sec) *)
}

val run :
  ?probe:probe ->
  ?attrib:Attrib.t ->
  ?batch:int ->
  Hierarchy.t -> flows:flow list -> warmup_cycles:int -> measure_cycles:int ->
  result list
(** Runs the given flows (each on a distinct core; checked) and returns one
    result per flow, in input order. When [probe] is given, every core's
    measurement window is additionally delivered as contiguous time slices
    through [probe.on_sample]; sampling does not perturb the simulation.

    When [attrib] is given, every replayed op's cycles, instructions and L3
    hits/misses are attributed to its {!Trace.elem} element id in the given
    accumulators (window-gated with the exact counter-snapshot boundary
    semantics), and each in-window packet's per-element time is recorded
    into the per-(core, element) latency histograms. Attribution reads the
    simulation but never perturbs it: results are byte-identical with and
    without [attrib], and without it the op path pays a single hoisted
    branch (still allocation-free — the perf gate pins both).

    [batch] (default 32; must be >= 1) caps how many trace operations the
    scheduled core executes per scheduling decision. The engine bursts the
    least-advanced core up to its run-ahead horizon — the first simulated
    time at which any other core would win the (time, index) order — so the
    interleaving is exactly the per-op schedule no matter the cap: every
    result, probe sample and source call is byte-identical for every
    [batch] value. Larger batches only amortize the scheduler and state
    write-back over more ops. *)
