(** Latency/cost model of the simulated platform.

    All latencies are in CPU cycles. The defaults approximate the paper's
    2.8GHz Westmere X5660: L1 4 cycles, L2 11, L3 38, and a DRAM access
    costing the L3 latency plus [delta] — the paper's extra time for a miss
    vs a hit — of 43.75ns (~122 cycles at 2.8GHz). *)

type t = {
  freq_hz : float;  (** core frequency; converts cycles to seconds *)
  l1_lat : int;  (** L1 hit latency *)
  l2_lat : int;  (** L2 hit latency *)
  l3_lat : int;  (** shared L3 hit latency *)
  dram_lat : int;  (** additional latency of a DRAM access past the L3 *)
  qpi_lat : int;  (** extra latency for a remote-socket memory access *)
  mc_service : int;  (** memory-controller occupancy per 64B transaction *)
  c2c_lat : int;  (** cache-to-cache transfer penalty (dirty line in a peer
                      private cache) *)
  upgrade_lat : int;  (** write-upgrade round trip to the directory *)
  compute_cpi : float;  (** cycles per instruction of pure compute *)
  mlp : int;
      (** memory-level parallelism: DRAM latency of back-to-back misses is
          divided by this factor, approximating an out-of-order core's miss
          overlap. 1 (default) = fully serialized in-order misses. *)
}

val default : t
(** Westmere-like parameters. *)

val delta_seconds : t -> float
(** The paper's delta: extra seconds a reference costs when it is a miss
    instead of an L3 hit (Section 3.3 uses 43.75ns). *)

val cycles_to_seconds : t -> int -> float
val seconds_to_cycles : t -> float -> int

val compute_cycles : t -> int -> int
(** [compute_cycles t n] is the core-cycle cost of [n] instructions of pure
    compute: [n * compute_cpi], truncated, never below one cycle. The
    engine's replay loop charges every compute op through this. *)
