(** Per-(core, element) attribution accumulators — the profiler's backing
    store.

    Created by the caller and passed to {!Engine.run} via [?attrib]; the
    engine then attributes every replayed op's cycles, instructions and L3
    events to the element id stamped on the op ({!Trace.elem}), and every
    in-window packet's per-element time to a latency histogram. All hot-path
    state is preallocated flat int arrays indexed [core * Eid.max_ids +
    elem], so profiling adds no allocation to the engine's op path; with no
    [?attrib] the engine skips attribution behind one hoisted branch and
    its hot path is untouched (the perf gate proves 0 B/op either way).

    Window totals follow the engine's snapshot convention exactly (warmup
    crossing op excluded, window-end crossing op included), so for every
    core the per-element sums of instructions / L3 hits / L3 misses equal
    the window {!Counters.diff}, and per-element cycles sum to
    [window_cycles] — the conservation law the test suite pins.

    Raw element ids are registration-order dependent ({!Eid}); consumers
    must aggregate by {!Eid.name}. *)

type t

val create : cores:int -> t
(** Accumulators for cores [0, cores); all counters zero. *)

val none : t
(** Shared placeholder for the profiling-off engine path; never written. *)

(** {2 Engine-side recording} *)

val mem_op :
  t -> core:int -> elem:Eid.t -> cycles:int -> l3_hit:int -> l3_miss:int ->
  in_window:bool -> unit
(** One memory op: [cycles] of latency, plus one instruction and the L3
    hit/miss deltas (each 0 or 1, diffed around the hierarchy access) when
    [in_window]. *)

val compute_op :
  t -> core:int -> elem:Eid.t -> instrs:int -> cycles:int -> in_window:bool ->
  unit

val stall_op :
  t -> core:int -> elem:Eid.t -> cycles:int -> in_window:bool -> unit
(** Stall cycles attribute time but no instructions or cache events. *)

val finish_trace : t -> core:int -> record:bool -> unit
(** End of one source item: when [record], each element touched by the
    trace records its accumulated cycles into its (core, elem) latency
    histogram — summed over elements that reproduces the packet's engine
    latency exactly; either way the per-trace scratch is reset. *)

val set_window : t -> core:int -> start:int -> cycles:int -> unit
(** Filled in by the engine at result construction: the core's measurement
    window placement, denominators for rate and share columns. *)

(** {2 Readouts} *)

val cores : t -> int
val cycles : t -> core:int -> elem:Eid.t -> int
val instructions : t -> core:int -> elem:Eid.t -> int
val l3_hits : t -> core:int -> elem:Eid.t -> int
val l3_misses : t -> core:int -> elem:Eid.t -> int

val latency : t -> core:int -> elem:Eid.t -> Ppp_util.Histogram.t option
(** Per-packet time spent in this element, packets completing in the
    window; [None] when no such packet touched the element. *)

val window_start : t -> core:int -> int
val window_cycles : t -> core:int -> int
