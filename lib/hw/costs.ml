type t = {
  freq_hz : float;
  l1_lat : int;
  l2_lat : int;
  l3_lat : int;
  dram_lat : int;
  qpi_lat : int;
  mc_service : int;
  c2c_lat : int;
  upgrade_lat : int;
  compute_cpi : float;
  mlp : int;
}

let default =
  {
    freq_hz = 2.8e9;
    l1_lat = 4;
    l2_lat = 11;
    l3_lat = 38;
    dram_lat = 122;
    qpi_lat = 30;
    mc_service = 6;
    c2c_lat = 30;
    upgrade_lat = 30;
    compute_cpi = 0.6;
    mlp = 1;
  }

let delta_seconds t = float_of_int t.dram_lat /. t.freq_hz

let[@inline] compute_cycles t n =
  max 1 (int_of_float (float_of_int n *. t.compute_cpi))
let cycles_to_seconds t c = float_of_int c /. t.freq_hz
let seconds_to_cycles t s = int_of_float (s *. t.freq_hz)
