type item = Packet of Trace.t | Idle of Trace.t | Reordered of Trace.t
type source = int -> item
type flow = { core : int; label : string; source : source }

type sample = {
  s_core : int;
  s_flow : string;
  s_start : int;
  s_end : int;
  s_packets : int;
  s_delta : Counters.t;
  s_latency : Ppp_util.Histogram.t;
}

type probe = { sample_cycles : int; on_sample : sample -> unit }

type result = {
  core : int;
  label : string;
  packets : int;
  window_cycles : int;
  throughput_pps : float;
  counters : Counters.t;
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  latency : Ppp_util.Histogram.t;
  latency_inorder : Ppp_util.Histogram.t;
  latency_reordered : Ppp_util.Histogram.t;
  engine_ops : int;
}

type core_state = {
  flow : flow;
  core : int; (* flow.core, cached to spare an indirection per memory op *)
  ctr : Counters.t; (* the core's live counters, resolved once *)
  mutable time : int;
  mutable trace : Trace.t;
  mutable len : int; (* Trace.length trace, cached for the per-op test *)
  mutable is_packet : bool;
  mutable is_reordered : bool; (* current packet arrived out of order *)
  mutable pos : int;
  mutable pkt_start : int;
  mutable packets_done : int;
  mutable ops_done : int;
  (* Counter bumps owned by the engine, hoisted out of the per-op path.
     They flush into [ctr] whenever the counters become observable: before
     any snapshot copy and before any source call (control elements read
     their own live counters to measure their rate). *)
  mutable pend_instr : int;
  mutable pend_packets : int;
  latency : Ppp_util.Histogram.t;
  (* The same window latencies split by arrival order, as flagged by the
     source ([Packet] vs [Reordered]): tail percentiles of reordered
     packets are reported separately by the traffic experiment. *)
  latency_inorder : Ppp_util.Histogram.t;
  latency_reordered : Ppp_util.Histogram.t;
  (* Window snapshots. The [warm_done]/[end_done]/[sampling] flags mirror
     the option fields: [snapshot] runs after every op, and gating it on
     booleans instead of polymorphic [= None] compares keeps two C calls
     out of the per-op path. *)
  mutable warm_done : bool;
  mutable warm_time : int;
  mutable warm_packets : int;
  mutable warm_counters : Counters.t option;
  mutable end_done : bool;
  mutable end_time : int;
  mutable end_packets : int;
  mutable end_counters : Counters.t option;
  (* Time-sliced sampling (active only under a probe, between the warm and
     end snapshots). *)
  mutable sampling : bool;
  mutable samp_time : int;
  mutable samp_packets : int;
  mutable samp_counters : Counters.t option;
  mutable samp_next : int;
  mutable samp_latency : Ppp_util.Histogram.t;
  (* The earliest simulated time at which [snapshot] could have any effect
     — the next pending boundary. Stepping compares against this single
     field instead of re-evaluating the three boundary conditions per op. *)
  mutable next_check : int;
}

let flush st =
  if st.pend_instr > 0 then begin
    Counters.add_instructions st.ctr st.pend_instr;
    st.pend_instr <- 0
  end;
  if st.pend_packets > 0 then begin
    Counters.add_packets st.ctr st.pend_packets;
    st.pend_packets <- 0
  end

let fetch st =
  flush st;
  let item = st.flow.source st.time in
  let trace, is_packet, is_reordered =
    match item with
    | Packet t -> (t, true, false)
    | Reordered t -> (t, true, true)
    | Idle t -> (t, false, false)
  in
  if Trace.length trace = 0 then
    invalid_arg "Engine: source returned an empty trace";
  st.trace <- trace;
  st.len <- Trace.length trace;
  st.is_packet <- is_packet;
  st.is_reordered <- is_reordered;
  if is_packet then st.pkt_start <- st.time;
  st.pos <- 0

let run ?probe ?attrib ?(batch = 32) hier ~flows ~warmup_cycles
    ~measure_cycles =
  if flows = [] then invalid_arg "Engine.run: no flows";
  if batch < 1 then invalid_arg "Engine.run: batch must be >= 1";
  (* Profiling is decided once per run: [prof] is the single hoisted branch
     the op path pays when attribution is off, and [at] is never touched
     behind it. *)
  let prof = match attrib with Some _ -> true | None -> false in
  let at = match attrib with Some a -> a | None -> Attrib.none in
  (match probe with
  | Some p when p.sample_cycles < 1 ->
      invalid_arg "Engine.run: sample_cycles must be >= 1"
  | _ -> ());
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : flow) ->
      if Hashtbl.mem seen f.core then
        invalid_arg "Engine.run: two flows on the same core";
      Hashtbl.add seen f.core ())
    flows;
  let costs = Hierarchy.costs hier in
  let states =
    List.mapi
      (fun _idx (flow : flow) ->
        let st =
          {
            flow;
            core = flow.core;
            ctr = Hierarchy.counters hier flow.core;
            time = 0;
            trace = Trace.empty;
            len = 0;
            is_packet = false;
            is_reordered = false;
            pos = 0;
            pkt_start = 0;
            packets_done = 0;
            ops_done = 0;
            pend_instr = 0;
            pend_packets = 0;
            latency = Ppp_util.Histogram.create ();
            latency_inorder = Ppp_util.Histogram.create ();
            latency_reordered = Ppp_util.Histogram.create ();
            warm_done = false;
            warm_time = 0;
            warm_packets = 0;
            warm_counters = None;
            end_done = false;
            end_time = 0;
            end_packets = 0;
            end_counters = None;
            sampling = false;
            samp_time = 0;
            samp_packets = 0;
            samp_counters = None;
            samp_next = max_int;
            samp_latency = Ppp_util.Histogram.create ();
            next_check = 0;
          }
        in
        fetch st;
        st)
      flows
    |> Array.of_list
  in
  let n = Array.length states in
  let window_end = warmup_cycles + measure_cycles in
  (* Sample boundaries live on the fixed grid warmup + i*K of simulated
     time. Slices telescope — each one's delta is taken between consecutive
     counter snapshots — so per-core slice deltas sum exactly to the
     window's [Counters.diff] no matter where ops land on the grid. *)
  let grid_next time =
    match probe with
    | None -> max_int
    | Some p ->
        let k = p.sample_cycles in
        warmup_cycles + ((((time - warmup_cycles) / k) + 1) * k)
  in
  let emit st ~t_end counters_now =
    match (probe, st.samp_counters) with
    | Some p, Some prev when t_end > st.samp_time ->
        p.on_sample
          {
            s_core = st.flow.core;
            s_flow = st.flow.label;
            s_start = st.samp_time;
            s_end = t_end;
            s_packets = st.packets_done - st.samp_packets;
            s_delta = Counters.diff counters_now prev;
            s_latency = st.samp_latency;
          };
        st.samp_time <- t_end;
        st.samp_packets <- st.packets_done;
        st.samp_counters <- Some counters_now;
        st.samp_latency <- Ppp_util.Histogram.create ()
    | _ -> ()
  in
  let snapshot st =
    if (not st.warm_done) && st.time >= warmup_cycles then begin
      st.warm_done <- true;
      st.warm_time <- st.time;
      st.warm_packets <- st.packets_done;
      flush st;
      let c = Counters.copy st.ctr in
      st.warm_counters <- Some c;
      match probe with
      | Some _ ->
          st.sampling <- true;
          st.samp_time <- st.warm_time;
          st.samp_packets <- st.warm_packets;
          st.samp_counters <- Some c;
          st.samp_next <- grid_next st.warm_time
      | None -> ()
    end;
    if (not st.end_done) && st.time >= window_end then begin
      st.end_done <- true;
      st.end_time <- st.time;
      st.end_packets <- st.packets_done;
      flush st;
      let c = Counters.copy st.ctr in
      st.end_counters <- Some c;
      (* Close the trailing partial slice at the window end and stop. *)
      emit st ~t_end:st.end_time c;
      st.sampling <- false;
      st.samp_counters <- None
    end
    else if (not st.end_done) && st.sampling && st.time >= st.samp_next then begin
      flush st;
      emit st ~t_end:st.time (Counters.copy st.ctr);
      st.samp_next <- grid_next st.time
    end;
    st.next_check <-
      (if not st.warm_done then warmup_cycles
       else if st.end_done then max_int
       else if st.sampling && st.samp_next < window_end then st.samp_next
       else window_end)
  in
  (* One burst: execute a run of the heap root's trace ops entirely on
     locals — no record stores, no heap fix-up, no repeated trace indexing
     — until the root's clock reaches [bound] or [batch] ops have run.
     [bound] is the exclusive time horizon up to which the root is
     guaranteed to remain the globally least-advanced core, so every op
     executed here lands in exactly the slot the per-op scheduler would
     have given it. [batch] only shortens a run whose order is already
     fixed by (time, idx): it can never change an observable result, it
     just tunes how much work amortizes each heap fix-up and write-back.

     The boundary machinery is folded into a single local limit:
     [stop = min bound next_check], so the tight loop spends one compare
     per op on scheduling, snapshots, sampling and window edges combined
     (the per-op engine paid a separate snapshot check here). *)
  let burst st bound =
    let core = st.core in
    let ops = ref (Trace.raw_ops st.trace) in
    let len = ref st.len in
    let pos = ref st.pos in
    let time = ref st.time in
    let pend_instr = ref st.pend_instr in
    let budget = ref batch in
    let stop =
      ref (let nc = st.next_check in if nc < bound then nc else bound)
    in
    (* Whether ops executed now land inside the measurement window. The
       flag flips only at snapshot calls — the inner loop exits before any
       op past [next_check] runs — so refreshing it after each snapshot
       site keeps window attribution exactly aligned with the counter
       copies ([Counters.diff] boundary semantics). Only read when [prof]. *)
    let in_w = ref (st.warm_done && not st.end_done) in
    let running = ref true in
    while !running do
      while !time < !stop && !budget > 0 do
        decr budget;
        let w = Array.unsafe_get !ops !pos in
        let kc = Trace.raw_kind w in
        if kc = Trace.k_read || kc = Trace.k_write then begin
          if prof then begin
            (* Exact L3 attribution by construction: diff the core's own
               counters around the access (only the accessing core's
               counters move, by at most one hit or miss). *)
            let ctr = st.ctr in
            let h0 = Counters.l3_hits ctr and m0 = Counters.l3_misses ctr in
            let lat =
              Hierarchy.access hier ~core ~write:(kc = Trace.k_write)
                ~fn:(Trace.raw_fn w) ~addr:(Trace.raw_payload w) ~now:!time
            in
            Attrib.mem_op at ~core ~elem:(Trace.raw_elem w) ~cycles:lat
              ~l3_hit:(Counters.l3_hits ctr - h0)
              ~l3_miss:(Counters.l3_misses ctr - m0)
              ~in_window:!in_w;
            time := !time + lat
          end
          else begin
            let lat =
              Hierarchy.access hier ~core ~write:(kc = Trace.k_write)
                ~fn:(Trace.raw_fn w) ~addr:(Trace.raw_payload w) ~now:!time
            in
            time := !time + lat
          end
        end
        else if kc = Trace.k_compute then begin
          let payload = Trace.raw_payload w in
          pend_instr := !pend_instr + payload;
          let dt = Costs.compute_cycles costs payload in
          if prof then
            Attrib.compute_op at ~core ~elem:(Trace.raw_elem w)
              ~instrs:payload ~cycles:dt ~in_window:!in_w;
          time := !time + dt
        end
        else if kc = Trace.k_stall then begin
          let dt = Trace.raw_payload w in
          if prof then
            Attrib.stall_op at ~core ~elem:(Trace.raw_elem w) ~cycles:dt
              ~in_window:!in_w;
          time := !time + dt
        end
        else Hierarchy.dma_write hier ~addr:(Trace.raw_payload w) ~now:!time;
        incr pos;
        if !pos >= !len then begin
          (* End of trace. The bookkeeping and the source may read engine
             state (control elements read their own live counters), so the
             locals go back into [st] first; and the snapshot check must
             run before [fetch] — a monitor's probe callback feeds the
             throttle that the source consults (the closed loop). All of
             this is per-packet work, off the per-op path. *)
          st.time <- !time;
          st.pos <- !pos;
          st.pend_instr <- !pend_instr;
          if st.is_packet then begin
            st.packets_done <- st.packets_done + 1;
            st.pend_packets <- st.pend_packets + 1;
            (* Latency tracked for packets completing inside the window. *)
            if st.warm_done && not st.end_done then begin
              Ppp_util.Histogram.record st.latency (!time - st.pkt_start);
              Ppp_util.Histogram.record
                (if st.is_reordered then st.latency_reordered
                 else st.latency_inorder)
                (!time - st.pkt_start);
              (* The packet belongs to the slice that closes at or after
                 this completion time. *)
              if st.sampling then
                Ppp_util.Histogram.record st.samp_latency
                  (!time - st.pkt_start)
            end
          end;
          (* The per-element latency commit uses the same gate as the
             window latency record above, read before the snapshot runs. *)
          if prof then
            Attrib.finish_trace at ~core
              ~record:(st.is_packet && st.warm_done && not st.end_done);
          if !time >= st.next_check then begin
            snapshot st;
            in_w := st.warm_done && not st.end_done
          end;
          fetch st;
          ops := Trace.raw_ops st.trace;
          len := st.len;
          pos := 0;
          pend_instr := st.pend_instr;
          stop := (let nc = st.next_check in if nc < bound then nc else bound)
        end
      done;
      st.time <- !time;
      st.pos <- !pos;
      st.pend_instr <- !pend_instr;
      (* Crossing [next_check] mid-trace snapshots here, after the op that
         crossed and before any other core runs — same instant as the
         per-op engine. The snapshot flushes pending counters, so the
         local accumulator must restart from the flushed field. *)
      if !time >= st.next_check then begin
        snapshot st;
        pend_instr := st.pend_instr;
        in_w := st.warm_done && not st.end_done
      end;
      let nc = st.next_check in
      stop := (if nc < bound then nc else bound);
      if !time >= bound || !budget = 0 then begin
        (* [ops_done] feeds only the final result, so it is settled once
           per burst rather than once per op. *)
        st.ops_done <- st.ops_done + (batch - !budget);
        running := false
      end
    done
  in
  (* Scheduling: a flat array of core clocks in input order, scanned once
     per burst for the minimum and second-minimum. The scan order makes the
     (time, idx) tie-break implicit — a strict [<] keeps the first (lowest
     index) of equal clocks — so the pick is exactly the per-op engine's.
     With bursting, the scan runs once per ~batch of ops; for the core
     counts the simulator models (a machine's worth, not thousands) a scan
     over one cache line of ints beats a pointer-chasing heap, and it
     yields the run-ahead horizon (the second-smallest key) for free. *)
  let times = Array.make n 0 in
  for i = 0 to n - 1 do
    times.(i) <- states.(i).time
  done;
  let continue_ = ref true in
  while !continue_ do
    (* One pass: [m] the scheduled core (first minimum), [st2] the
       second-smallest clock, [s] its index. *)
    let m = ref 0 in
    let mt = ref (Array.unsafe_get times 0) in
    let s = ref 0 in
    let st2 = ref max_int in
    for i = 1 to n - 1 do
      let t = Array.unsafe_get times i in
      if t < !mt then begin
        s := !m;
        st2 := !mt;
        m := i;
        mt := t
      end
      else if t < !st2 then begin
        s := i;
        st2 := t
      end
    done;
    if !mt >= window_end then continue_ := false
    else begin
      let st = Array.unsafe_get states !m in
      (* Run-ahead horizon: the scheduled core stays the global minimum
         while its (time, idx) key is below the runner-up's. When the
         runner-up has the larger index, the scheduled core also wins the
         tie at [st2] itself, extending the horizon one cycle. *)
      let bound =
        if n = 1 then window_end
        else if !m < !s then
          if !st2 >= window_end then window_end
          else if !st2 = max_int then window_end
          else min window_end (!st2 + 1)
        else min window_end !st2
      in
      burst st bound;
      Array.unsafe_set times !m st.time
    end
  done;
  (* Finalize any snapshot not yet taken (time passed end during final op). *)
  Array.iter snapshot states;
  Array.to_list
    (Array.map
       (fun st ->
         let warm =
           match st.warm_counters with
           | Some c -> c
           | None -> assert false
         in
         let finish =
           match st.end_counters with Some c -> c | None -> assert false
         in
         let ctr = Counters.diff finish warm in
         let cycles = max 1 (st.end_time - st.warm_time) in
         let seconds = Costs.cycles_to_seconds costs cycles in
         let packets = st.end_packets - st.warm_packets in
         if prof then
           Attrib.set_window at ~core:st.core ~start:st.warm_time
             ~cycles:(st.end_time - st.warm_time);
         {
           core = st.flow.core;
           label = st.flow.label;
           packets;
           window_cycles = cycles;
           throughput_pps = float_of_int packets /. seconds;
           counters = ctr;
           l3_refs_per_sec = float_of_int (Counters.l3_refs ctr) /. seconds;
           l3_hits_per_sec = float_of_int (Counters.l3_hits ctr) /. seconds;
           latency = st.latency;
           latency_inorder = st.latency_inorder;
           latency_reordered = st.latency_reordered;
           engine_ops = st.ops_done;
         })
       states)
