type item = Packet of Trace.t | Idle of Trace.t
type source = int -> item
type flow = { core : int; label : string; source : source }

type sample = {
  s_core : int;
  s_flow : string;
  s_start : int;
  s_end : int;
  s_packets : int;
  s_delta : Counters.t;
  s_latency : Ppp_util.Histogram.t;
}

type probe = { sample_cycles : int; on_sample : sample -> unit }

type result = {
  core : int;
  label : string;
  packets : int;
  window_cycles : int;
  throughput_pps : float;
  counters : Counters.t;
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  latency : Ppp_util.Histogram.t;
  engine_ops : int;
}

type core_state = {
  flow : flow;
  idx : int; (* position in the input flow list; the heap tie-breaker *)
  core : int; (* flow.core, cached to spare an indirection per memory op *)
  ctr : Counters.t; (* the core's live counters, resolved once *)
  mutable time : int;
  mutable trace : Trace.t;
  mutable len : int; (* Trace.length trace, cached for the per-op test *)
  mutable is_packet : bool;
  mutable pos : int;
  mutable pkt_start : int;
  mutable packets_done : int;
  mutable ops_done : int;
  (* Counter bumps owned by the engine, hoisted out of the per-op path.
     They flush into [ctr] whenever the counters become observable: before
     any snapshot copy and before any source call (control elements read
     their own live counters to measure their rate). *)
  mutable pend_instr : int;
  mutable pend_packets : int;
  latency : Ppp_util.Histogram.t;
  (* Window snapshots. The [warm_done]/[end_done]/[sampling] flags mirror
     the option fields: [snapshot] runs after every op, and gating it on
     booleans instead of polymorphic [= None] compares keeps two C calls
     out of the per-op path. *)
  mutable warm_done : bool;
  mutable warm_time : int;
  mutable warm_packets : int;
  mutable warm_counters : Counters.t option;
  mutable end_done : bool;
  mutable end_time : int;
  mutable end_packets : int;
  mutable end_counters : Counters.t option;
  (* Time-sliced sampling (active only under a probe, between the warm and
     end snapshots). *)
  mutable sampling : bool;
  mutable samp_time : int;
  mutable samp_packets : int;
  mutable samp_counters : Counters.t option;
  mutable samp_next : int;
  mutable samp_latency : Ppp_util.Histogram.t;
  (* The earliest simulated time at which [snapshot] could have any effect
     — the next pending boundary. Stepping compares against this single
     field instead of re-evaluating the three boundary conditions per op. *)
  mutable next_check : int;
}

let flush st =
  if st.pend_instr > 0 then begin
    Counters.add_instructions st.ctr st.pend_instr;
    st.pend_instr <- 0
  end;
  if st.pend_packets > 0 then begin
    Counters.add_packets st.ctr st.pend_packets;
    st.pend_packets <- 0
  end

let fetch st =
  flush st;
  let item = st.flow.source st.time in
  let trace, is_packet =
    match item with Packet t -> (t, true) | Idle t -> (t, false)
  in
  if Trace.length trace = 0 then
    invalid_arg "Engine: source returned an empty trace";
  st.trace <- trace;
  st.len <- Trace.length trace;
  st.is_packet <- is_packet;
  if is_packet then st.pkt_start <- st.time;
  st.pos <- 0

let run ?probe hier ~flows ~warmup_cycles ~measure_cycles =
  if flows = [] then invalid_arg "Engine.run: no flows";
  (match probe with
  | Some p when p.sample_cycles < 1 ->
      invalid_arg "Engine.run: sample_cycles must be >= 1"
  | _ -> ());
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : flow) ->
      if Hashtbl.mem seen f.core then
        invalid_arg "Engine.run: two flows on the same core";
      Hashtbl.add seen f.core ())
    flows;
  let costs = Hierarchy.costs hier in
  let states =
    List.mapi
      (fun idx (flow : flow) ->
        let st =
          {
            flow;
            idx;
            core = flow.core;
            ctr = Hierarchy.counters hier flow.core;
            time = 0;
            trace = Trace.empty;
            len = 0;
            is_packet = false;
            pos = 0;
            pkt_start = 0;
            packets_done = 0;
            ops_done = 0;
            pend_instr = 0;
            pend_packets = 0;
            latency = Ppp_util.Histogram.create ();
            warm_done = false;
            warm_time = 0;
            warm_packets = 0;
            warm_counters = None;
            end_done = false;
            end_time = 0;
            end_packets = 0;
            end_counters = None;
            sampling = false;
            samp_time = 0;
            samp_packets = 0;
            samp_counters = None;
            samp_next = max_int;
            samp_latency = Ppp_util.Histogram.create ();
            next_check = 0;
          }
        in
        fetch st;
        st)
      flows
    |> Array.of_list
  in
  let n = Array.length states in
  let window_end = warmup_cycles + measure_cycles in
  (* Sample boundaries live on the fixed grid warmup + i*K of simulated
     time. Slices telescope — each one's delta is taken between consecutive
     counter snapshots — so per-core slice deltas sum exactly to the
     window's [Counters.diff] no matter where ops land on the grid. *)
  let grid_next time =
    match probe with
    | None -> max_int
    | Some p ->
        let k = p.sample_cycles in
        warmup_cycles + ((((time - warmup_cycles) / k) + 1) * k)
  in
  let emit st ~t_end counters_now =
    match (probe, st.samp_counters) with
    | Some p, Some prev when t_end > st.samp_time ->
        p.on_sample
          {
            s_core = st.flow.core;
            s_flow = st.flow.label;
            s_start = st.samp_time;
            s_end = t_end;
            s_packets = st.packets_done - st.samp_packets;
            s_delta = Counters.diff counters_now prev;
            s_latency = st.samp_latency;
          };
        st.samp_time <- t_end;
        st.samp_packets <- st.packets_done;
        st.samp_counters <- Some counters_now;
        st.samp_latency <- Ppp_util.Histogram.create ()
    | _ -> ()
  in
  let snapshot st =
    if (not st.warm_done) && st.time >= warmup_cycles then begin
      st.warm_done <- true;
      st.warm_time <- st.time;
      st.warm_packets <- st.packets_done;
      flush st;
      let c = Counters.copy st.ctr in
      st.warm_counters <- Some c;
      match probe with
      | Some _ ->
          st.sampling <- true;
          st.samp_time <- st.warm_time;
          st.samp_packets <- st.warm_packets;
          st.samp_counters <- Some c;
          st.samp_next <- grid_next st.warm_time
      | None -> ()
    end;
    if (not st.end_done) && st.time >= window_end then begin
      st.end_done <- true;
      st.end_time <- st.time;
      st.end_packets <- st.packets_done;
      flush st;
      let c = Counters.copy st.ctr in
      st.end_counters <- Some c;
      (* Close the trailing partial slice at the window end and stop. *)
      emit st ~t_end:st.end_time c;
      st.sampling <- false;
      st.samp_counters <- None
    end
    else if (not st.end_done) && st.sampling && st.time >= st.samp_next then begin
      flush st;
      emit st ~t_end:st.time (Counters.copy st.ctr);
      st.samp_next <- grid_next st.time
    end;
    st.next_check <-
      (if not st.warm_done then warmup_cycles
       else if st.end_done then max_int
       else if st.sampling && st.samp_next < window_end then st.samp_next
       else window_end)
  in
  (* One trace operation, decoded straight from the packed word: no variant
     construction, no repeated trace indexing, no allocation. The snapshot
     call at the end is the only non-arithmetic work on the common path,
     and it reduces to three cheap comparisons between boundaries. *)
  let step st =
    st.ops_done <- st.ops_done + 1;
    let w = Trace.raw st.trace st.pos in
    let kc = Trace.raw_kind w in
    if kc = Trace.k_read || kc = Trace.k_write then begin
      let lat =
        Hierarchy.access hier ~core:st.core ~write:(kc = Trace.k_write)
          ~fn:(Trace.raw_fn w) ~addr:(Trace.raw_payload w) ~now:st.time
      in
      st.time <- st.time + lat
    end
    else if kc = Trace.k_compute then begin
      let payload = Trace.raw_payload w in
      st.pend_instr <- st.pend_instr + payload;
      st.time <-
        st.time
        + max 1 (int_of_float (float_of_int payload *. costs.Costs.compute_cpi))
    end
    else if kc = Trace.k_stall then st.time <- st.time + Trace.raw_payload w
    else Hierarchy.dma_write hier ~addr:(Trace.raw_payload w) ~now:st.time;
    st.pos <- st.pos + 1;
    if st.pos >= st.len then begin
      if st.is_packet then begin
        st.packets_done <- st.packets_done + 1;
        st.pend_packets <- st.pend_packets + 1;
        (* Latency tracked for packets completing inside the window. *)
        if st.warm_done && not st.end_done then begin
          Ppp_util.Histogram.record st.latency (st.time - st.pkt_start);
          (* The packet belongs to the slice that closes at or after this
             completion time. *)
          if st.sampling then
            Ppp_util.Histogram.record st.samp_latency (st.time - st.pkt_start)
        end
      end;
      if st.time >= st.next_check then snapshot st;
      fetch st
    end
    else if st.time >= st.next_check then snapshot st
  in
  (* Scheduling: an indexed binary min-heap over core states, keyed on
     (local time, input index). The root is exactly what the old O(cores)
     scan picked — the lowest-index core among those with minimal time —
     so replay order, and with it every golden snapshot, is unchanged.
     Stepping only ever grows the root's key, so one sift-down per op
     restores the invariant: O(log cores) against the scan's O(cores). *)
  let heap = Array.copy states in
  (* Flat loop, not a local recursive function: without flambda a local
     [rec go] capturing the sifted element costs a closure per call — one
     allocation per engine op, by far the hot path's largest. Non-escaping
     refs unbox, and the (time, idx) order is compared inline rather than
     through a closure. Indices stay below [n] by construction. *)
  let sift_down i0 =
    let x = heap.(i0) in
    let xt = x.time and xi = x.idx in
    let i = ref i0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l < n then begin
        let c =
          if l + 1 < n then begin
            let a = Array.unsafe_get heap (l + 1)
            and b = Array.unsafe_get heap l in
            if a.time < b.time || (a.time = b.time && a.idx < b.idx) then l + 1
            else l
          end
          else l
        in
        let cs = Array.unsafe_get heap c in
        if cs.time < xt || (cs.time = xt && cs.idx < xi) then begin
          Array.unsafe_set heap !i cs;
          i := c
        end
        else begin
          Array.unsafe_set heap !i x;
          continue := false
        end
      end
      else begin
        Array.unsafe_set heap !i x;
        continue := false
      end
    done
  in
  for i = (n / 2) - 1 downto 0 do
    sift_down i
  done;
  (* Advance the globally least-advanced core until every core has crossed
     the window end (the root is the global minimum, so when it crosses,
     all have). *)
  let rec loop () =
    let st = Array.unsafe_get heap 0 in
    if st.time < window_end then begin
      step st;
      sift_down 0;
      loop ()
    end
  in
  loop ();
  (* Finalize any snapshot not yet taken (time passed end during final op). *)
  Array.iter snapshot states;
  Array.to_list
    (Array.map
       (fun st ->
         let warm =
           match st.warm_counters with
           | Some c -> c
           | None -> assert false
         in
         let finish =
           match st.end_counters with Some c -> c | None -> assert false
         in
         let ctr = Counters.diff finish warm in
         let cycles = max 1 (st.end_time - st.warm_time) in
         let seconds = Costs.cycles_to_seconds costs cycles in
         let packets = st.end_packets - st.warm_packets in
         {
           core = st.flow.core;
           label = st.flow.label;
           packets;
           window_cycles = cycles;
           throughput_pps = float_of_int packets /. seconds;
           counters = ctr;
           l3_refs_per_sec = float_of_int (Counters.l3_refs ctr) /. seconds;
           l3_hits_per_sec = float_of_int (Counters.l3_hits ctr) /. seconds;
           latency = st.latency;
           engine_ops = st.ops_done;
         })
       states)
