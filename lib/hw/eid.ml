type t = int

let max_ids = 128
let names = Array.make max_ids "?"
let next = ref 1
let by_name : (string, int) Hashtbl.t = Hashtbl.create 32

(* Unlike [Fn], element ids are registered while flows are being built —
   which the experiment runner does from worker domains — so the registry
   is mutex-protected. [name] reads without the lock: a published id's slot
   was written before the id escaped [register]. *)
let lock = Mutex.create ()

let other = 0

let () =
  names.(other) <- "(other)";
  Hashtbl.add by_name "(other)" other

let register n =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt by_name n with
      | Some id -> id
      | None ->
          if !next >= max_ids then failwith "Eid.register: element registry full";
          let id = !next in
          incr next;
          names.(id) <- n;
          Hashtbl.add by_name n id;
          id)

let name id = if id >= 0 && id < max_ids then names.(id) else "?"
let count () = Mutex.protect lock (fun () -> !next)
