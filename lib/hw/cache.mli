(** A set-associative cache with true-LRU replacement.

    The cache tracks line residency and dirtiness only (simulation is
    timing-directed; data lives in the instrumented OCaml structures). Each
    resident line carries an auxiliary integer usable by the owner: the
    shared L3 stores directory presence bits there, private caches store an
    exclusivity flag.

    This is the innermost data structure of the simulator, so its lookup
    surface is allocation-free by design: probes return a plain [int] slot
    or the {!none} sentinel instead of an option, and insertion is a
    two-step [victim_slot]/[fill] protocol instead of an eviction record.
    Slots are transient handles — valid until the next [fill], [invalidate]
    or [clear] on the same cache — and are meaningless across caches. *)

type t

type geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;  (** must be a power of two *)
}

val create : geometry -> t
(** Raises [Invalid_argument] if the geometry is inconsistent (sizes not
    divisible by ways*line, set count not a power of two). *)

val geometry : t -> geometry
val sets : t -> int

val lines : t -> int
(** Total capacity in lines. *)

val line_of_addr : t -> int -> int
(** The line (block) number an address falls in. *)

val none : int
(** The miss sentinel ([-1]): {!find}/{!probe} return it when the line is
    not resident. Every non-negative return is a valid slot. *)

val find : t -> int -> int
(** [find t line] probes for [line]; on a hit, promotes it to MRU and
    returns its slot, else {!none}. Allocation-free. *)

val probe : t -> int -> int
(** Like {!find} but without promoting LRU state (for directory snoops). *)

val dirty : t -> int -> bool
(** Slot accessors are unchecked: passing {!none} or a stale slot is a
    programming error (reads/writes the wrong way's state). *)

val set_dirty : t -> int -> bool -> unit
val aux : t -> int -> int
val set_aux : t -> int -> int -> unit

val line : t -> int -> int
(** The line number resident in a slot ([-1] if the slot is empty) — how
    the owner reads a victim's identity before {!fill} overwrites it. *)

val slot_valid : t -> int -> bool
(** Whether the slot currently holds a line. *)

val victim_slot : t -> int -> int
(** [victim_slot t line] is the slot {!fill} should use to make [line]
    resident: an invalid way of its set if one exists, else the set's LRU
    way. The caller inspects the victim in place ({!slot_valid}, {!line},
    {!dirty}, {!aux}) and performs any writeback before filling. [line]
    must not already be resident (checked). *)

val find_or_victim : t -> int -> int
(** {!find} and {!victim_slot} in a single scan of the set, for paths that
    always need one or the other (the hierarchy's L3 lookup). A hit acts
    exactly like {!find} (LRU promotion) and returns the slot; a miss
    returns [-2 - v] where [v] is the slot {!victim_slot} would pick — the
    line's LRU state is untouched, matching a plain missed {!find}. *)

val fill : t -> slot:int -> dirty:bool -> aux:int -> int -> unit
(** [fill t ~slot ~dirty ~aux line] makes [line] resident in [slot] as MRU,
    overwriting whatever the slot held. [slot] should come from
    {!victim_slot} for [line] (same set; unchecked). *)

val invalidate_slot : t -> int -> unit
(** Empties a slot (no-op if already empty). *)

val invalidate : t -> int -> bool
(** [invalidate t line] removes [line]; [true] if it was resident. Callers
    that need the victim's dirty/aux state probe first and read the slot
    before invalidating it. *)

val resident : t -> int -> bool

val occupancy : t -> int
(** Number of valid lines (for tests: never exceeds {!lines}). *)

val fold_resident :
  t -> init:'a -> ('a -> int -> dirty:bool -> aux:int -> 'a) -> 'a
(** Folds over resident lines in slot order (an internal, deterministic
    order — not recency). *)

val clear : t -> unit
