type op_kind = Compute | Read | Write | Stall | Dma

(* Mutable so [Builder.view] can refresh one pooled record in place instead
   of allocating per packet; [t] is abstract and finished traces are never
   mutated through the public surface. *)
type t = { mutable ops : int array; mutable len : int }

let make_trace ops len = { ops; len }

let kind_bits = 3
let fn_bits = 6
let elem_bits = 7
let elem_shift = kind_bits + fn_bits
let payload_shift = elem_shift + elem_bits
let kind_mask = (1 lsl kind_bits) - 1
let fn_mask = (1 lsl fn_bits) - 1
let elem_mask = (1 lsl elem_bits) - 1
let max_payload = (1 lsl (62 - payload_shift)) - 1

let encode k fn payload =
  if payload < 0 || payload > max_payload then
    invalid_arg "Trace: payload out of range";
  (payload lsl payload_shift) lor ((fn land fn_mask) lsl kind_bits) lor k

let kind_of_int = function
  | 0 -> Compute
  | 1 -> Read
  | 2 -> Write
  | 3 -> Stall
  | _ -> Dma

let length t = t.len
let kind t i = kind_of_int (t.ops.(i) land kind_mask)
let fn t i = (t.ops.(i) lsr kind_bits) land fn_mask
let elem t i = (t.ops.(i) lsr elem_shift) land elem_mask
let payload t i = t.ops.(i) lsr payload_shift

(* Raw decode surface for the engine's hot replay loop: one array load per
   op, integer kind codes, no variant construction. [raw] is unchecked —
   callers iterate [0, length). *)
let k_compute = 0
let k_read = 1
let k_write = 2
let k_stall = 3
let k_dma = 4
let[@inline] raw t i = Array.unsafe_get t.ops i
let[@inline] raw_kind w = w land kind_mask
let[@inline] raw_fn w = (w lsr kind_bits) land fn_mask
let[@inline] raw_elem w = (w lsr elem_shift) land elem_mask
let[@inline] raw_payload w = w lsr payload_shift

(* The whole packed vector, decoded in one step: the engine's burst loop
   grabs the array once per fetched trace and replays straight off it, so
   the per-op path is a single [Array.unsafe_get] with no record
   indirection. Aliases the trace's buffer — read-only, and only indices
   [0, length) hold ops. *)
let[@inline] raw_ops t = t.ops

let iter t f =
  for i = 0 to t.len - 1 do
    f (kind t i) (fn t i) (payload t i)
  done

let empty = { ops = [||]; len = 0 }

let mem_refs t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    let k = t.ops.(i) land kind_mask in
    if k = 1 || k = 2 then incr n
  done;
  !n

let instructions t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    match t.ops.(i) land kind_mask with
    | 0 -> n := !n + (t.ops.(i) lsr payload_shift)
    | 1 | 2 -> incr n
    | _ -> ()
  done;
  !n

module Builder = struct
  type trace = t

  type t = {
    mutable ops : int array;
    mutable len : int;
    mutable cur_elem : int;  (* element id stamped into every pushed op *)
    viewed : trace;  (* pooled record refreshed and returned by [view] *)
  }

  let create ?(initial_capacity = 256) () =
    {
      ops = Array.make (max 16 initial_capacity) 0;
      len = 0;
      cur_elem = 0;
      viewed = make_trace [||] 0;
    }

  let clear b =
    b.len <- 0;
    b.cur_elem <- 0

  let set_elem b e = b.cur_elem <- e land elem_mask

  let push b v =
    if b.len = Array.length b.ops then begin
      let bigger = Array.make (2 * Array.length b.ops) 0 in
      Array.blit b.ops 0 bigger 0 b.len;
      b.ops <- bigger
    end;
    b.ops.(b.len) <- v lor (b.cur_elem lsl elem_shift);
    b.len <- b.len + 1

  let compute b ~fn n = if n > 0 then push b (encode 0 fn n)
  let read b ~fn addr = push b (encode 1 fn addr)
  let write b ~fn addr = push b (encode 2 fn addr)
  let stall b n = if n > 0 then push b (encode 3 Fn.none n)
  let dma b addr = push b (encode 4 Fn.none addr)
  let length b = b.len
  let finish b = make_trace (Array.sub b.ops 0 b.len) b.len

  (* Zero-copy, zero-allocation handoff: the returned trace is one pooled
     record per builder, refreshed in place, and its buffer aliases the
     builder's — both are valid only until the next [clear]/push on [b].
     Flow sources use this: the engine fully replays a flow's trace before
     asking that flow's source (and thus its builder) for the next one. *)
  let view b =
    b.viewed.ops <- b.ops;
    b.viewed.len <- b.len;
    b.viewed
end
