(** Packed per-packet operation traces.

    An application processes a packet by doing real work over instrumented
    data structures; the side product is a trace: the exact sequence of
    compute bursts and memory references the packet incurred. The engine
    replays traces from co-scheduled cores interleaved in simulated time,
    which is what creates cache and memory-controller contention.

    Each op packs into one int: 3 bits of kind, 6 bits of function tag,
    7 bits of element id, and 46 bits of payload (an address for memory
    ops, an instruction count for compute, cycles for stalls). *)

type op_kind = Compute | Read | Write | Stall | Dma

type t
(** An immutable finished trace. *)

val length : t -> int
val kind : t -> int -> op_kind
val fn : t -> int -> Fn.t

val elem : t -> int -> Eid.t
(** Element id stamped on op [i] ({!Eid.other} when the builder had no
    element in scope). *)

val payload : t -> int -> int

val iter : t -> (op_kind -> Fn.t -> int -> unit) -> unit
val empty : t

(** {2 Raw decode}

    The engine's replay loop decodes ops from the packed word directly: one
    (unchecked) array load via [raw], then integer-code dispatch — no variant
    construction, no repeated indexing. Everyone else should use
    {!kind}/{!fn}/{!payload}. *)

val raw : t -> int -> int
(** The packed word of op [i]. Bounds-unchecked: valid only for
    [0 <= i < length t]. *)

val raw_ops : t -> int array
(** The whole packed vector in one decode step, for the engine's burst
    loop: replaying indexes this array directly, sparing the record
    indirection of {!raw} per op. Aliases the trace's buffer — treat as
    read-only; only indices [0, length t) hold ops. *)

val raw_kind : int -> int
(** Kind code of a packed word: one of [k_compute]..[k_dma]. *)

val raw_fn : int -> Fn.t

val raw_elem : int -> Eid.t
(** Element id of a packed word — what the profiling engine attributes the
    op's cycles and cache events to. *)

val raw_payload : int -> int

val k_compute : int
val k_read : int
val k_write : int
val k_stall : int
val k_dma : int

val mem_refs : t -> int
(** Number of Read/Write ops. *)

val instructions : t -> int
(** Total instruction count: compute payloads plus one per memory op. *)

(** Mutable builder reused across packets to avoid allocation churn. *)
module Builder : sig
  type trace = t
  type t

  val create : ?initial_capacity:int -> unit -> t

  val clear : t -> unit
  (** Empties the builder and resets the element scope to {!Eid.other}. *)

  val set_elem : t -> Eid.t -> unit
  (** [set_elem b e] stamps element [e] on every subsequently pushed op,
      until the next [set_elem] or [clear]. Element chains call this as
      control moves between elements, so a finished trace carries the
      packet's element path op by op. *)

  val compute : t -> fn:Fn.t -> int -> unit
  (** [compute b ~fn n] records [n] instructions of pure compute. [n <= 0] is
      ignored. *)

  val read : t -> fn:Fn.t -> int -> unit
  (** [read b ~fn addr] records a load from [addr]. *)

  val write : t -> fn:Fn.t -> int -> unit
  val stall : t -> int -> unit
  (** Idle cycles (e.g. an empty handoff queue); not counted as work. *)

  val dma : t -> int -> unit
  (** A NIC DMA write to the line holding [addr]: executed by the engine as
      a cache invalidation plus a memory-controller transaction, with no
      latency charged to the core. Models RX on a pre-DDIO platform, where
      the first core read of freshly received data is a compulsory miss. *)

  val length : t -> int

  val finish : t -> trace
  (** Snapshot the builder contents as an immutable trace (copies). *)

  val view : t -> trace
  (** Zero-copy [finish]: the returned trace aliases the builder's buffer
      and is invalidated by the next [clear] or append — including its
      identity, which is one pooled record per builder refreshed in place
      (so [view] allocates nothing). For sources that rebuild their trace
      only after the engine has fully replayed the previous one (the
      per-flow packet cycle); use [finish] when the trace must outlive the
      builder. *)
end
