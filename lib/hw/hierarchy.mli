(** The simulated memory hierarchy: private L1/L2 per core, an inclusive
    shared L3 per socket with a presence-bit directory, and per-node memory
    controllers.

    This module turns a single memory reference from one core into a latency,
    mutating shared cache state as a side effect — which is exactly how
    co-running flows damage each other: their interleaved references evict
    each other's L3 lines (Figure 4(a)) and queue behind each other at the
    memory controller (Figure 4(b)). *)

type geometry = {
  l1 : Cache.geometry;
  l2 : Cache.geometry;
  l3 : Cache.geometry;  (** one shared L3 per socket *)
}

type t

val create : Topology.t -> Costs.t -> geometry -> t
val topology : t -> Topology.t
val costs : t -> Costs.t
val counters : t -> int -> Counters.t
(** Per-core counters. *)

val access : t -> core:int -> write:bool -> fn:Fn.t -> addr:int -> now:int -> int
(** [access t ~core ~write ~fn ~addr ~now] performs one load/store and
    returns its latency in cycles. [now] is the core's current cycle (used
    for memory-controller queueing). *)

val dma_write : t -> addr:int -> now:int -> unit
(** A NIC DMA write to the line containing [addr]: the line is discarded
    from every cache (all sockets, all private caches) and one transaction
    is charged to the home node's memory controller. No core waits. *)

val l3_occupancy : t -> socket:int -> int
(** Resident L3 lines on a socket (for tests). *)

val l3_resident : t -> socket:int -> addr:int -> bool
val private_resident : t -> core:int -> addr:int -> bool

val directory_marks : t -> core:int -> addr:int -> bool
(** True when the core's socket L3 holds [addr]'s line and its presence-bit
    directory lists [core] as a (possible) holder. The directory is
    conservative: a line resident in a private cache must be marked, the
    converse need not hold. For inclusion-invariant tests. *)

val memctrl_transactions : t -> node:int -> int
