(* Per-(core, element) attribution accumulators for the profiling engine.

   Layout: every counter is one flat int array indexed [core * stride +
   elem] with [stride = Eid.max_ids], so the engine's profiled op path does
   plain int stores into preallocated rows — no boxing, no hashing, no
   allocation. Latency histograms are the one lazy piece: a (core, elem)
   pair gets its histogram on the first in-window packet that touches it.

   Window totals ([cycles]/[instructions]/[l3_hits]/[l3_misses]) are bumped
   only for ops the engine executes inside the measurement window, with the
   same boundary convention as the counter snapshots (the op crossing the
   warmup boundary lands in the warm baseline and is excluded; the op
   crossing the window end is included) — so per-element sums reproduce the
   window's [Counters.diff] exactly.

   Per-packet element time uses the [pkt_cycles] scratch row plus a touched
   stack: scratch accumulates over the whole in-flight trace regardless of
   window position (a packet's latency spans the boundary it completes
   behind), and [finish_trace] either records each touched element's share
   into its latency histogram (packets completing in-window) or just
   resets the scratch (idle traces, out-of-window packets). Every traced op
   costs at least one cycle, so [pkt_cycles > 0] doubles as the touched
   marker. *)

type t = {
  cores : int;
  stride : int;
  cycles : int array;
  instructions : int array;
  l3_hits : int array;
  l3_misses : int array;
  lat : Ppp_util.Histogram.t option array;
  pkt_cycles : int array; (* scratch: in-flight trace's cycles per elem *)
  touched : int array; (* per-core stack of elems with nonzero scratch *)
  ntouched : int array; (* per core: live entries in [touched] *)
  window_start : int array; (* per core, filled in by the engine *)
  window_cycles : int array;
}

let create ~cores =
  if cores < 1 then invalid_arg "Attrib.create: cores must be >= 1";
  let stride = Eid.max_ids in
  let n = cores * stride in
  {
    cores;
    stride;
    cycles = Array.make n 0;
    instructions = Array.make n 0;
    l3_hits = Array.make n 0;
    l3_misses = Array.make n 0;
    lat = Array.make n None;
    pkt_cycles = Array.make n 0;
    touched = Array.make n 0;
    ntouched = Array.make cores 0;
    window_start = Array.make cores 0;
    window_cycles = Array.make cores 0;
  }

(* Shared placeholder threaded through the engine when profiling is off:
   gated behind the hoisted [prof] flag, it is never written. *)
let none = create ~cores:1

let[@inline] touch t ~core i cyc =
  let c = Array.unsafe_get t.pkt_cycles i in
  if c = 0 then begin
    let n = Array.unsafe_get t.ntouched core in
    Array.unsafe_set t.touched ((core * t.stride) + n) (i - (core * t.stride));
    Array.unsafe_set t.ntouched core (n + 1)
  end;
  Array.unsafe_set t.pkt_cycles i (c + cyc)

let[@inline] mem_op t ~core ~elem ~cycles ~l3_hit ~l3_miss ~in_window =
  let i = (core * t.stride) + elem in
  touch t ~core i cycles;
  if in_window then begin
    Array.unsafe_set t.cycles i (Array.unsafe_get t.cycles i + cycles);
    Array.unsafe_set t.instructions i (Array.unsafe_get t.instructions i + 1);
    Array.unsafe_set t.l3_hits i (Array.unsafe_get t.l3_hits i + l3_hit);
    Array.unsafe_set t.l3_misses i (Array.unsafe_get t.l3_misses i + l3_miss)
  end

let[@inline] compute_op t ~core ~elem ~instrs ~cycles ~in_window =
  let i = (core * t.stride) + elem in
  touch t ~core i cycles;
  if in_window then begin
    Array.unsafe_set t.cycles i (Array.unsafe_get t.cycles i + cycles);
    Array.unsafe_set t.instructions i (Array.unsafe_get t.instructions i + instrs)
  end

let[@inline] stall_op t ~core ~elem ~cycles ~in_window =
  let i = (core * t.stride) + elem in
  touch t ~core i cycles;
  if in_window then
    Array.unsafe_set t.cycles i (Array.unsafe_get t.cycles i + cycles)

let finish_trace t ~core ~record =
  let base = core * t.stride in
  let n = t.ntouched.(core) in
  for s = 0 to n - 1 do
    let e = t.touched.(base + s) in
    let i = base + e in
    if record then begin
      let h =
        match t.lat.(i) with
        | Some h -> h
        | None ->
            let h = Ppp_util.Histogram.create () in
            t.lat.(i) <- Some h;
            h
      in
      Ppp_util.Histogram.record h t.pkt_cycles.(i)
    end;
    t.pkt_cycles.(i) <- 0
  done;
  t.ntouched.(core) <- 0

let set_window t ~core ~start ~cycles =
  t.window_start.(core) <- start;
  t.window_cycles.(core) <- cycles

let cores t = t.cores
let cycles t ~core ~elem = t.cycles.((core * t.stride) + elem)
let instructions t ~core ~elem = t.instructions.((core * t.stride) + elem)
let l3_hits t ~core ~elem = t.l3_hits.((core * t.stride) + elem)
let l3_misses t ~core ~elem = t.l3_misses.((core * t.stride) + elem)
let latency t ~core ~elem = t.lat.((core * t.stride) + elem)
let window_start t ~core = t.window_start.(core)
let window_cycles t ~core = t.window_cycles.(core)
