type t = {
  mutable instructions : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable l3_misses : int;
  mutable reads : int;
  mutable writes : int;
  mutable packets : int;
  fn_refs : int array;
  fn_l3_hits : int array;
  fn_l3_misses : int array;
}

let create () =
  {
    instructions = 0;
    l1_hits = 0;
    l2_hits = 0;
    l3_hits = 0;
    l3_misses = 0;
    reads = 0;
    writes = 0;
    packets = 0;
    fn_refs = Array.make Fn.max_tags 0;
    fn_l3_hits = Array.make Fn.max_tags 0;
    fn_l3_misses = Array.make Fn.max_tags 0;
  }

let copy t =
  {
    t with
    fn_refs = Array.copy t.fn_refs;
    fn_l3_hits = Array.copy t.fn_l3_hits;
    fn_l3_misses = Array.copy t.fn_l3_misses;
  }

let diff later earlier =
  {
    instructions = later.instructions - earlier.instructions;
    l1_hits = later.l1_hits - earlier.l1_hits;
    l2_hits = later.l2_hits - earlier.l2_hits;
    l3_hits = later.l3_hits - earlier.l3_hits;
    l3_misses = later.l3_misses - earlier.l3_misses;
    reads = later.reads - earlier.reads;
    writes = later.writes - earlier.writes;
    packets = later.packets - earlier.packets;
    fn_refs = Array.init Fn.max_tags (fun i -> later.fn_refs.(i) - earlier.fn_refs.(i));
    fn_l3_hits =
      Array.init Fn.max_tags (fun i -> later.fn_l3_hits.(i) - earlier.fn_l3_hits.(i));
    fn_l3_misses =
      Array.init Fn.max_tags (fun i -> later.fn_l3_misses.(i) - earlier.fn_l3_misses.(i));
  }

(* The add functions run once (or more) per simulated memory op, called
   from the hierarchy's hit paths: [@inline] so the classic compiler can
   inline them cross-module, and fn-indexed writes masked into range
   (fn tags are 6-bit by construction) in place of two bounds checks. *)
let[@inline] add_instructions t n = t.instructions <- t.instructions + n

let[@inline] bump a fn =
  let fn = fn land (Fn.max_tags - 1) in
  Array.unsafe_set a fn (Array.unsafe_get a fn + 1)

let[@inline] add_l1_hit t fn =
  t.l1_hits <- t.l1_hits + 1;
  bump t.fn_refs fn

let[@inline] add_l2_hit t fn =
  t.l2_hits <- t.l2_hits + 1;
  bump t.fn_refs fn

let[@inline] add_l3_hit t fn =
  t.l3_hits <- t.l3_hits + 1;
  bump t.fn_refs fn;
  bump t.fn_l3_hits fn

let[@inline] add_l3_miss t fn =
  t.l3_misses <- t.l3_misses + 1;
  bump t.fn_refs fn;
  bump t.fn_l3_misses fn

let[@inline] add_read t = t.reads <- t.reads + 1
let[@inline] add_write t = t.writes <- t.writes + 1
let[@inline] add_packet t = t.packets <- t.packets + 1
let[@inline] add_packets t n = t.packets <- t.packets + n

let instructions t = t.instructions
let l1_hits t = t.l1_hits
let l2_hits t = t.l2_hits
let l3_hits t = t.l3_hits
let l3_misses t = t.l3_misses
let l3_refs t = t.l3_hits + t.l3_misses
let mem_refs t = t.reads + t.writes
let reads t = t.reads
let writes t = t.writes
let packets t = t.packets

let fn_l3_refs t fn = t.fn_l3_hits.(fn) + t.fn_l3_misses.(fn)
let fn_l3_hits t fn = t.fn_l3_hits.(fn)
let fn_l3_misses t fn = t.fn_l3_misses.(fn)
let fn_refs t fn = t.fn_refs.(fn)

let equal a b =
  a.instructions = b.instructions && a.l1_hits = b.l1_hits
  && a.l2_hits = b.l2_hits && a.l3_hits = b.l3_hits
  && a.l3_misses = b.l3_misses && a.reads = b.reads && a.writes = b.writes
  && a.packets = b.packets && a.fn_refs = b.fn_refs
  && a.fn_l3_hits = b.fn_l3_hits && a.fn_l3_misses = b.fn_l3_misses

let pp fmt t =
  Format.fprintf fmt
    "instr=%d l1=%d l2=%d l3h=%d l3m=%d pkts=%d"
    t.instructions t.l1_hits t.l2_hits t.l3_hits t.l3_misses t.packets
