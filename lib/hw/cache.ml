type geometry = { size_bytes : int; ways : int; line_bytes : int }

type t = {
  geo : geometry;
  nsets : int;
  line_shift : int;
  tags : int array; (* nsets * ways; -1 = invalid; otherwise the line number *)
  stamp : int array; (* LRU timestamps *)
  dirty_bits : Bytes.t;
  auxs : int array;
  mru : int array;
      (* per set: the way of the last hit or fill — way prediction for
         [probe]. Purely an accelerator: a stale entry just falls through
         to the full scan, so it never changes what a lookup returns. *)
  mutable tick : int;
  mutable valid : int;
}

let none = -1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create geo =
  if not (is_pow2 geo.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if geo.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  if geo.size_bytes mod (geo.ways * geo.line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by ways * line_bytes";
  let nsets = geo.size_bytes / (geo.ways * geo.line_bytes) in
  if not (is_pow2 nsets) then
    invalid_arg "Cache.create: set count must be a power of two";
  let n = nsets * geo.ways in
  {
    geo;
    nsets;
    line_shift = log2 geo.line_bytes;
    tags = Array.make n (-1);
    stamp = Array.make n 0;
    dirty_bits = Bytes.make n '\000';
    auxs = Array.make n 0;
    mru = Array.make nsets 0;
    tick = 0;
    valid = 0;
  }

let geometry t = t.geo
let sets t = t.nsets
let lines t = t.nsets * t.geo.ways
let line_of_addr t addr = addr lsr t.line_shift
let set_of_line t line = line land (t.nsets - 1)
let base t line = set_of_line t line * t.geo.ways

(* The simulator's innermost loop ends here: every replayed memory op probes
   one to three of these way scans. Sentinel returns (no option box), unsafe
   reads, and a flat while-loop (a local recursive function would cost a
   closure per probe without flambda) keep the hit path allocation-free;
   indices are in range by construction (base + w < nsets * ways).

   The per-set way prediction in [mru] resolves the common re-hit — packet
   processing touches the same handful of lines over and over — in one
   compare instead of a scan. A mispredict falls through to the scan, so
   prediction state can never change a result. *)
let[@inline] probe t line =
  let s = set_of_line t line in
  let b = s * t.geo.ways in
  let p = b + Array.unsafe_get t.mru s in
  if Array.unsafe_get t.tags p = line then p
  else begin
    let last = b + t.geo.ways - 1 in
    let i = ref b in
    while !i <= last && Array.unsafe_get t.tags !i <> line do incr i done;
    if !i <= last then begin
      Array.unsafe_set t.mru s (!i - b);
      !i
    end
    else none
  end

let[@inline] touch t i =
  t.tick <- t.tick + 1;
  Array.unsafe_set t.stamp i t.tick

let[@inline] find t line =
  let i = probe t line in
  if i >= 0 then touch t i;
  i

let[@inline] dirty t i = Bytes.unsafe_get t.dirty_bits i <> '\000'

let[@inline] set_dirty t i d =
  Bytes.unsafe_set t.dirty_bits i (if d then '\001' else '\000')

let[@inline] aux t i = Array.unsafe_get t.auxs i
let[@inline] set_aux t i v = Array.unsafe_set t.auxs i v
let[@inline] line t i = Array.unsafe_get t.tags i
let[@inline] slot_valid t i = Array.unsafe_get t.tags i <> -1

(* Two-step insert protocol: [victim_slot] picks the way [fill] will
   overwrite — an invalid way if the set has one, else its LRU way — so the
   caller reads the victim's line/dirty/aux in place and handles writeback
   before filling. No eviction record is ever allocated. *)
let victim_slot t line =
  let b = base t line in
  let victim = ref (-1) in
  let lru = ref b in
  let lru_stamp = ref (Array.unsafe_get t.stamp b) in
  for w = 0 to t.geo.ways - 1 do
    let i = b + w in
    let tag = Array.unsafe_get t.tags i in
    if tag = line then invalid_arg "Cache.victim_slot: line already resident";
    if tag = -1 && !victim = -1 then victim := i;
    let s = Array.unsafe_get t.stamp i in
    if s < !lru_stamp then begin
      lru := i;
      lru_stamp := s
    end
  done;
  if !victim >= 0 then !victim else !lru

(* [find] and [victim_slot] in one pass over the set, for the L3 miss path
   (which always needs one or the other): a hit behaves exactly like [find]
   (touch, way prediction); a miss returns the way [fill] must overwrite,
   encoded as [-2 - slot] to keep the result an immediate int. The victim
   choice — first invalid way, else first-scanned LRU way — replicates
   [victim_slot] decision for decision. *)
let find_or_victim t line =
  let ways = t.geo.ways in
  let s = set_of_line t line in
  let b = s * ways in
  let p = b + Array.unsafe_get t.mru s in
  if Array.unsafe_get t.tags p = line then begin
    touch t p;
    p
  end
  else begin
    let hit = ref (-1) in
    let invalid = ref (-1) in
    let lru = ref b in
    let lru_stamp = ref (Array.unsafe_get t.stamp b) in
    let w = ref 0 in
    while !hit < 0 && !w < ways do
      let i = b + !w in
      let tag = Array.unsafe_get t.tags i in
      if tag = line then hit := i
      else begin
        if tag = -1 && !invalid = -1 then invalid := i;
        let st = Array.unsafe_get t.stamp i in
        if st < !lru_stamp then begin
          lru := i;
          lru_stamp := st
        end
      end;
      incr w
    done;
    if !hit >= 0 then begin
      Array.unsafe_set t.mru s (!hit - b);
      touch t !hit;
      !hit
    end
    else -2 - (if !invalid >= 0 then !invalid else !lru)
  end

let fill t ~slot ~dirty ~aux line =
  if Array.unsafe_get t.tags slot = -1 then t.valid <- t.valid + 1;
  Array.unsafe_set t.tags slot line;
  set_dirty t slot dirty;
  Array.unsafe_set t.auxs slot aux;
  (* Point the set's way prediction at the freshly inserted line. *)
  let s = slot / t.geo.ways in
  Array.unsafe_set t.mru s (slot - (s * t.geo.ways));
  touch t slot

let invalidate_slot t i =
  if Array.unsafe_get t.tags i <> -1 then begin
    Array.unsafe_set t.tags i (-1);
    Array.unsafe_set t.stamp i 0;
    set_dirty t i false;
    Array.unsafe_set t.auxs i 0;
    t.valid <- t.valid - 1
  end

let invalidate t line =
  let i = probe t line in
  if i >= 0 then begin
    invalidate_slot t i;
    true
  end
  else false

let resident t line = probe t line >= 0
let occupancy t = t.valid

let fold_resident t ~init f =
  let acc = ref init in
  for i = 0 to Array.length t.tags - 1 do
    if t.tags.(i) <> -1 then
      acc := f !acc t.tags.(i) ~dirty:(dirty t i) ~aux:t.auxs.(i)
  done;
  !acc

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  Bytes.fill t.dirty_bits 0 (Bytes.length t.dirty_bits) '\000';
  Array.fill t.auxs 0 (Array.length t.auxs) 0;
  Array.fill t.mru 0 t.nsets 0;
  t.tick <- 0;
  t.valid <- 0
