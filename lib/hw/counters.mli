(** Per-core hardware performance counters (the simulator's Oprofile).

    Tracks the quantities Table 1 of the paper reports — instructions,
    cycles, L2 hits, L3 references/hits/misses — plus per-function L3
    behaviour for the Figure 7 breakdown. Snapshots and diffs support
    measuring over a warm window only. *)

type t

val create : unit -> t
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier] is the counter delta over a window. *)

val equal : t -> t -> bool
(** Structural equality over every counter, including the per-function
    breakdowns (used by the telemetry conservation tests). *)

(* Recording (used by the hierarchy and engine). *)
val add_instructions : t -> int -> unit
val add_l1_hit : t -> Fn.t -> unit
val add_l2_hit : t -> Fn.t -> unit
val add_l3_hit : t -> Fn.t -> unit
val add_l3_miss : t -> Fn.t -> unit
val add_read : t -> unit
val add_write : t -> unit
val add_packet : t -> unit

val add_packets : t -> int -> unit
(** Batched {!add_packet}: how the engine flushes its hoisted per-core
    packet count at slice boundaries. *)

(* Readout. *)
val instructions : t -> int
val l1_hits : t -> int
val l2_hits : t -> int
val l3_hits : t -> int
val l3_misses : t -> int

val l3_refs : t -> int
(** References that reached the L3, i.e. hits + misses. *)

val mem_refs : t -> int
(** All loads + stores issued. *)

val reads : t -> int
val writes : t -> int
val packets : t -> int

val fn_l3_refs : t -> Fn.t -> int
val fn_l3_hits : t -> Fn.t -> int
val fn_l3_misses : t -> Fn.t -> int
val fn_refs : t -> Fn.t -> int

val pp : Format.formatter -> t -> unit
