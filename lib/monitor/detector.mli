(** The online contention monitor (Section 4 operationalized).

    Consumes the engine's deterministic per-slice sample stream and compares
    what each flow is *doing* against what its offline profile says it
    *should* do, in two directions:

    - {b Prediction violation} ([Flow_degraded]): the flow's smoothed drop
      against its solo throughput exceeds the drop the sensitivity curve
      predicts at the competitors' measured aggregate L3 refs/sec by more
      than [drop_margin]. This is the perfect-knowledge prediction
      ({!Ppp_core.Predictor.predict_drop_at}) evaluated online: when it
      fires, the world disagrees with the model, not just with the hope
      that competitors stay tame.
    - {b Hidden aggressor} ([Hidden_aggressor]): the flow's smoothed L3
      refs/sec exceeds its profiled solo rate by more than
      [aggressor_margin] — the paper's tame-in-the-lab, loud-in-production
      flow. Firing one also records a {!recommendation}: the
      {!Ppp_core.Throttle.l3_budget_source} budget that would pin the flow
      back to its profiled behaviour.

    Both alarms carry K-consecutive-slice hysteresis ([hysteresis]) in both
    directions; releasing one emits [Recovered].

    Slices arrive per-core but are compared per-epoch: the i-th slices of
    all flows, which share the engine's boundary grid. The detector queues
    each flow's stream and evaluates an epoch once every flow has reached
    it, so its verdicts are a pure function of the sample stream — and
    therefore byte-deterministic across job counts. *)

type flow_profile = {
  label : string;
  core : int;  (** the core the flow runs on; unique per detector *)
  solo_pps : float;
  solo_l3_refs_per_sec : float;
  solo_l3_hits_per_sec : float;
  predict_drop : (refs_per_sec:float -> float) option;
      (** the flow's sensitivity curve evaluated at a competing rate
          (typically {!Ppp_core.Predictor.predict_drop_at}); [None] disables
          degradation detection for this flow (nothing to violate). *)
}

val profile_of :
  ?predictor:Ppp_core.Predictor.t ->
  core:int ->
  Ppp_core.Profile.t ->
  flow_profile
(** Baseline from an offline solo profile; [?predictor] supplies the curve. *)

type config = {
  sample_cycles : int;  (** slice length; must match the engine probe's *)
  hysteresis : int;  (** K consecutive slices to arm or release an alarm *)
  aggressor_margin : float;
      (** fractional excess over profiled L3 refs/sec that counts as
          aggressive (0.5 = 50% over) *)
  drop_margin : float;
      (** absolute drop excess over the prediction that counts as a
          violation (0.1 = ten points of drop unexplained by the model) *)
  ewma_alpha : float;  (** EWMA weight of the newest slice, in (0, 1] *)
  budget_headroom : float;
      (** throttle recommendations are profiled refs/sec times
          [1 + budget_headroom] *)
}

val default_config : sample_cycles:int -> config
(** hysteresis 3, aggressor_margin 0.5, drop_margin 0.1, ewma_alpha 0.5,
    budget_headroom 0.05. *)

type event_kind =
  | Flow_degraded of { measured_drop : float; predicted_drop : float }
  | Hidden_aggressor of {
      measured_refs_per_sec : float;
      profiled_refs_per_sec : float;
    }
  | Recovered of { condition : string }
      (** [condition] names the alarm that released: ["flow_degraded"] or
          ["hidden_aggressor"] *)

val kind_name : event_kind -> string
(** ["flow_degraded"], ["hidden_aggressor"], or ["recovered"]. *)

type event = {
  e_epoch : int;  (** epoch index (i-th slice of every flow) *)
  e_t_cycles : int;  (** simulated time: the firing flow's slice end *)
  e_flow : string;
  e_core : int;
  e_kind : event_kind;
}

type recommendation = {
  r_flow : string;
  r_core : int;
  r_t_cycles : int;
  r_budget_l3_refs_per_sec : float;
      (** feed to {!Ppp_core.Throttle.l3_budget_source} to contain the flow *)
}

type row = {
  row_epoch : int;
  row_flow : string;
  row_core : int;
  row_rates : Estimator.rates;
  row_competing_refs_per_sec : float;
      (** sum of the other flows' smoothed L3 refs/sec this epoch *)
  row_measured_drop : float;  (** 1 - ewma_pps / solo_pps *)
  row_predicted_drop : float;  (** curve at the competing rate; 0 if none *)
  row_degraded : bool;  (** raw per-epoch condition, before hysteresis *)
  row_aggressor : bool;
}
(** One flow-epoch of the interpreted timeline. *)

type t

val create : config:config -> freq_hz:float -> flow_profile list -> t
(** Flows must cover every core to monitor; samples from other cores are
    ignored (they are invisible to this detector, including in competing
    sums — list every co-runner, with [predict_drop = None] if unjudged). *)

val probe : ?also:Ppp_hw.Engine.probe -> t -> Ppp_hw.Engine.probe
(** The engine probe feeding this detector. [?also] tees another consumer
    into the same stream (its [sample_cycles] must match;
    [Invalid_argument] otherwise) — the engine accepts only one probe. *)

val feed : t -> Ppp_hw.Engine.sample -> unit
(** Direct feed (what {!probe} calls); exposed for replaying samples. *)

val finalize : t -> unit
(** Evaluate any ragged final epochs (flows whose streams ended early are
    frozen at their last rates). Call once, after the run. *)

val config : t -> config
val profiles : t -> flow_profile list
val epochs : t -> int

val rows : t -> row list
(** The interpreted timeline, epoch-major then profile-list order. *)

val events : t -> event list
(** Fired events in emission (simulated-time) order. *)

val recommendations : t -> recommendation list

val alerted : t -> core:int -> bool * bool
(** Current (degraded, aggressor) alarm states of the flow on [core] —
    after [finalize], the end-of-run verdict inputs. *)
