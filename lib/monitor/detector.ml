type flow_profile = {
  label : string;
  core : int;
  solo_pps : float;
  solo_l3_refs_per_sec : float;
  solo_l3_hits_per_sec : float;
  predict_drop : (refs_per_sec:float -> float) option;
}

let profile_of ?predictor ~core (p : Ppp_core.Profile.t) =
  {
    label = Ppp_apps.App.name p.Ppp_core.Profile.kind;
    core;
    solo_pps = p.Ppp_core.Profile.throughput_pps;
    solo_l3_refs_per_sec = p.Ppp_core.Profile.l3_refs_per_sec;
    solo_l3_hits_per_sec = p.Ppp_core.Profile.l3_hits_per_sec;
    predict_drop =
      Option.map
        (fun pred ~refs_per_sec ->
          Ppp_core.Predictor.predict_drop_at pred
            ~target:p.Ppp_core.Profile.kind ~refs_per_sec)
        predictor;
  }

type config = {
  sample_cycles : int;
  hysteresis : int;
  aggressor_margin : float;
  drop_margin : float;
  ewma_alpha : float;
  budget_headroom : float;
}

let default_config ~sample_cycles =
  {
    sample_cycles;
    hysteresis = 3;
    aggressor_margin = 0.5;
    drop_margin = 0.1;
    ewma_alpha = 0.5;
    budget_headroom = 0.05;
  }

type event_kind =
  | Flow_degraded of { measured_drop : float; predicted_drop : float }
  | Hidden_aggressor of {
      measured_refs_per_sec : float;
      profiled_refs_per_sec : float;
    }
  | Recovered of { condition : string }

let kind_name = function
  | Flow_degraded _ -> "flow_degraded"
  | Hidden_aggressor _ -> "hidden_aggressor"
  | Recovered _ -> "recovered"

type event = {
  e_epoch : int;
  e_t_cycles : int;
  e_flow : string;
  e_core : int;
  e_kind : event_kind;
}

type recommendation = {
  r_flow : string;
  r_core : int;
  r_t_cycles : int;
  r_budget_l3_refs_per_sec : float;
}

type row = {
  row_epoch : int;
  row_flow : string;
  row_core : int;
  row_rates : Estimator.rates;
  row_competing_refs_per_sec : float;
  row_measured_drop : float;
  row_predicted_drop : float;
  row_degraded : bool;
  row_aggressor : bool;
}

(* One two-state hysteresis machine: [streak] consecutive epochs with the
   condition true arm it; once alerted, [clear] consecutive epochs with the
   condition false release it. *)
type alarm = { mutable streak : int; mutable clear : int; mutable alerted : bool }

let new_alarm () = { streak = 0; clear = 0; alerted = false }

(* Returns [`Fire] on the epoch the alarm arms, [`Release] on the epoch it
   releases, [`Quiet] otherwise. *)
let step alarm ~hysteresis cond =
  if cond then begin
    alarm.clear <- 0;
    alarm.streak <- alarm.streak + 1;
    if (not alarm.alerted) && alarm.streak >= hysteresis then begin
      alarm.alerted <- true;
      `Fire
    end
    else `Quiet
  end
  else begin
    alarm.streak <- 0;
    if alarm.alerted then begin
      alarm.clear <- alarm.clear + 1;
      if alarm.clear >= hysteresis then begin
        alarm.alerted <- false;
        alarm.clear <- 0;
        `Release
      end
      else `Quiet
    end
    else `Quiet
  end

type flow_state = {
  profile : flow_profile;
  estimator : Estimator.t;
  pending : Estimator.rates Queue.t;
  degraded : alarm;
  aggressor : alarm;
  mutable last : Estimator.rates option;
}

type t = {
  config : config;
  flows : flow_state array;  (* in profile-list order; cores are distinct *)
  mutable epochs : int;
  mutable acc_rows : row list;  (* reversed *)
  mutable acc_events : event list;  (* reversed *)
  mutable acc_recs : recommendation list;  (* reversed *)
}

let create ~config ~freq_hz profiles =
  if profiles = [] then invalid_arg "Detector.create: no flows";
  if config.sample_cycles < 1 then
    invalid_arg "Detector.create: sample_cycles must be >= 1";
  if config.hysteresis < 1 then
    invalid_arg "Detector.create: hysteresis must be >= 1";
  let cores = List.map (fun p -> p.core) profiles in
  if List.length (List.sort_uniq compare cores) <> List.length cores then
    invalid_arg "Detector.create: duplicate core in profiles";
  {
    config;
    flows =
      Array.of_list
        (List.map
           (fun profile ->
             {
               profile;
               estimator =
                 Estimator.create ~alpha:config.ewma_alpha ~freq_hz;
               pending = Queue.create ();
               degraded = new_alarm ();
               aggressor = new_alarm ();
               last = None;
             })
           profiles);
  epochs = 0;
  acc_rows = [];
  acc_events = [];
  acc_recs = [];
  }

let emit t e = t.acc_events <- e :: t.acc_events

(* Evaluate one epoch: [snapshot.(i)] is flow i's rates for this epoch, or
   its last-known rates when the flow's stream ended early (final ragged
   epochs only). Flows with a live slice get a timeline row and alarm
   updates; stale flows only contribute to the competing-rate sums. *)
let eval_epoch t snapshot live =
  let epoch = t.epochs in
  t.epochs <- epoch + 1;
  let c = t.config in
  Array.iteri
    (fun i st ->
      if live.(i) then begin
        let rates : Estimator.rates = snapshot.(i) in
        let competing = ref 0.0 in
        Array.iteri
          (fun j _ ->
            if j <> i then
              competing :=
                !competing +. (snapshot.(j) : Estimator.rates).ewma_l3_refs_per_sec)
          t.flows;
        let competing = !competing in
        let p = st.profile in
        let measured_drop =
          if p.solo_pps > 0.0 then 1.0 -. (rates.ewma_pps /. p.solo_pps)
          else 0.0
        in
        let predicted_drop =
          match p.predict_drop with
          | Some f -> f ~refs_per_sec:competing
          | None -> 0.0
        in
        (* A flow is degraded when it loses more than the model says it
           should at the competitors' *measured* rate: a prediction
           violation, not mere contention. Flows without a curve are not
           judged (no prediction to violate). *)
        let degraded_now =
          p.predict_drop <> None
          && measured_drop > predicted_drop +. c.drop_margin
        in
        let aggressor_now =
          rates.ewma_l3_refs_per_sec
          > p.solo_l3_refs_per_sec *. (1.0 +. c.aggressor_margin)
        in
        t.acc_rows <-
          {
            row_epoch = epoch;
            row_flow = p.label;
            row_core = p.core;
            row_rates = rates;
            row_competing_refs_per_sec = competing;
            row_measured_drop = measured_drop;
            row_predicted_drop = predicted_drop;
            row_degraded = degraded_now;
            row_aggressor = aggressor_now;
          }
          :: t.acc_rows;
        let ev kind =
          {
            e_epoch = epoch;
            e_t_cycles = rates.Estimator.t_end;
            e_flow = p.label;
            e_core = p.core;
            e_kind = kind;
          }
        in
        (match step st.degraded ~hysteresis:c.hysteresis degraded_now with
        | `Fire -> emit t (ev (Flow_degraded { measured_drop; predicted_drop }))
        | `Release -> emit t (ev (Recovered { condition = "flow_degraded" }))
        | `Quiet -> ());
        match step st.aggressor ~hysteresis:c.hysteresis aggressor_now with
        | `Fire ->
            emit t
              (ev
                 (Hidden_aggressor
                    {
                      measured_refs_per_sec = rates.ewma_l3_refs_per_sec;
                      profiled_refs_per_sec = p.solo_l3_refs_per_sec;
                    }));
            t.acc_recs <-
              {
                r_flow = p.label;
                r_core = p.core;
                r_t_cycles = rates.Estimator.t_end;
                r_budget_l3_refs_per_sec =
                  p.solo_l3_refs_per_sec *. (1.0 +. c.budget_headroom);
              }
              :: t.acc_recs
        | `Release -> emit t (ev (Recovered { condition = "hidden_aggressor" }))
        | `Quiet -> ()
      end)
    t.flows

(* Pop one epoch off every queue and evaluate, as long as all flows have one
   queued: epochs align the i-th slice of every flow, which the engine's
   shared boundary grid makes (near-)simultaneous in simulated time. *)
let drain_complete t =
  while Array.for_all (fun st -> not (Queue.is_empty st.pending)) t.flows do
    let snapshot =
      Array.map
        (fun st ->
          let r = Queue.pop st.pending in
          st.last <- Some r;
          r)
        t.flows
    in
    eval_epoch t snapshot (Array.map (fun _ -> true) t.flows)
  done

let feed t (s : Ppp_hw.Engine.sample) =
  match
    Array.find_opt
      (fun st -> st.profile.core = s.Ppp_hw.Engine.s_core)
      t.flows
  with
  | None -> ()
  | Some st ->
      Queue.push (Estimator.push st.estimator s) st.pending;
      drain_complete t

let finalize t =
  (* Ragged tails: if some flows produced a final extra slice, evaluate the
     remaining epochs with the finished flows frozen at their last rates. *)
  let any_pending () =
    Array.exists (fun st -> not (Queue.is_empty st.pending)) t.flows
  in
  while any_pending () do
    let live = Array.map (fun st -> not (Queue.is_empty st.pending)) t.flows in
    let snapshot =
      Array.map
        (fun st ->
          match Queue.take_opt st.pending with
          | Some r ->
              st.last <- Some r;
              r
          | None -> (
              match st.last with
              | Some r -> r
              | None ->
                  (* A flow that never produced a slice contributes nothing. *)
                  {
                    Estimator.t_start = 0;
                    t_end = 0;
                    packets = 0;
                    pps = 0.0;
                    l3_refs_per_sec = 0.0;
                    l3_hits_per_sec = 0.0;
                    mem_refs_per_sec = 0.0;
                    p50_latency = 0;
                    p99_latency = 0;
                    ewma_pps = 0.0;
                    ewma_l3_refs_per_sec = 0.0;
                    ewma_mem_refs_per_sec = 0.0;
                  }))
        t.flows
    in
    eval_epoch t snapshot live
  done

let probe ?also t =
  (match also with
  | Some p when p.Ppp_hw.Engine.sample_cycles <> t.config.sample_cycles ->
      invalid_arg "Detector.probe: ?also sample_cycles mismatch"
  | _ -> ());
  {
    Ppp_hw.Engine.sample_cycles = t.config.sample_cycles;
    on_sample =
      (fun s ->
        feed t s;
        match also with
        | Some p -> p.Ppp_hw.Engine.on_sample s
        | None -> ());
  }

let config t = t.config
let profiles t = Array.to_list (Array.map (fun st -> st.profile) t.flows)
let epochs t = t.epochs
let rows t = List.rev t.acc_rows
let events t = List.rev t.acc_events
let recommendations t = List.rev t.acc_recs

let alerted t ~core =
  match Array.find_opt (fun st -> st.profile.core = core) t.flows with
  | None -> (false, false)
  | Some st -> (st.degraded.alerted, st.aggressor.alerted)
