module Json = Ppp_telemetry.Json
module Csv = Ppp_telemetry.Csv

let schema = "ppp-monitor-alerts/1"

let f v = Json.float_repr v

let timeline_csv det =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Csv.row
       [
         "epoch"; "flow"; "core"; "t_start"; "t_end"; "packets"; "pps";
         "l3_refs_per_s"; "l3_hits_per_s"; "mem_refs_per_s"; "p50_latency";
         "p99_latency"; "ewma_pps"; "ewma_l3_refs_per_s";
         "competing_l3_refs_per_s"; "measured_drop"; "predicted_drop";
         "degraded"; "aggressor";
       ]);
  List.iter
    (fun (r : Detector.row) ->
      let rates = r.Detector.row_rates in
      Buffer.add_string buf
        (Csv.row
           [
             string_of_int r.Detector.row_epoch;
             Csv.field r.Detector.row_flow;
             string_of_int r.Detector.row_core;
             string_of_int rates.Estimator.t_start;
             string_of_int rates.Estimator.t_end;
             string_of_int rates.Estimator.packets;
             f rates.Estimator.pps;
             f rates.Estimator.l3_refs_per_sec;
             f rates.Estimator.l3_hits_per_sec;
             f rates.Estimator.mem_refs_per_sec;
             string_of_int rates.Estimator.p50_latency;
             string_of_int rates.Estimator.p99_latency;
             f rates.Estimator.ewma_pps;
             f rates.Estimator.ewma_l3_refs_per_sec;
             f r.Detector.row_competing_refs_per_sec;
             f r.Detector.row_measured_drop;
             f r.Detector.row_predicted_drop;
             (if r.Detector.row_degraded then "1" else "0");
             (if r.Detector.row_aggressor then "1" else "0");
           ]))
    (Detector.rows det);
  Buffer.contents buf

let flow_events det (p : Detector.flow_profile) =
  List.filter
    (fun (e : Detector.event) -> e.Detector.e_core = p.Detector.core)
    (Detector.events det)

(* End-of-run verdict: an armed alarm wins (aggressor over degraded, the
   cause over the symptom); a flow whose alarms all released is "recovered";
   a flow that never fired is "ok". *)
let verdict det (p : Detector.flow_profile) =
  let degraded, aggressor = Detector.alerted det ~core:p.Detector.core in
  if aggressor then "aggressor"
  else if degraded then "degraded"
  else if flow_events det p <> [] then "recovered"
  else "ok"

let verdicts det =
  List.map (fun p -> (p, verdict det p)) (Detector.profiles det)

let event_json (e : Detector.event) =
  let common =
    [
      ("epoch", Json.Int e.Detector.e_epoch);
      ("t_cycles", Json.Int e.Detector.e_t_cycles);
      ("flow", Json.Str e.Detector.e_flow);
      ("core", Json.Int e.Detector.e_core);
      ("kind", Json.Str (Detector.kind_name e.Detector.e_kind));
    ]
  in
  let detail =
    match e.Detector.e_kind with
    | Detector.Flow_degraded { measured_drop; predicted_drop } ->
        [
          ("measured_drop", Json.Float measured_drop);
          ("predicted_drop", Json.Float predicted_drop);
        ]
    | Detector.Hidden_aggressor { measured_refs_per_sec; profiled_refs_per_sec }
      ->
        [
          ("measured_l3_refs_per_sec", Json.Float measured_refs_per_sec);
          ("profiled_l3_refs_per_sec", Json.Float profiled_refs_per_sec);
        ]
    | Detector.Recovered { condition } -> [ ("condition", Json.Str condition) ]
  in
  Json.Obj (common @ detail)

let alerts_json det =
  let c = Detector.config det in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "config",
        Json.Obj
          [
            ("sample_cycles", Json.Int c.Detector.sample_cycles);
            ("hysteresis", Json.Int c.Detector.hysteresis);
            ("aggressor_margin", Json.Float c.Detector.aggressor_margin);
            ("drop_margin", Json.Float c.Detector.drop_margin);
            ("ewma_alpha", Json.Float c.Detector.ewma_alpha);
            ("budget_headroom", Json.Float c.Detector.budget_headroom);
          ] );
      ("epochs", Json.Int (Detector.epochs det));
      ( "flows",
        Json.Arr
          (List.map
             (fun ((p : Detector.flow_profile), v) ->
               Json.Obj
                 [
                   ("flow", Json.Str p.Detector.label);
                   ("core", Json.Int p.Detector.core);
                   ("solo_pps", Json.Float p.Detector.solo_pps);
                   ( "profiled_l3_refs_per_sec",
                     Json.Float p.Detector.solo_l3_refs_per_sec );
                   ("has_curve", Json.Bool (p.Detector.predict_drop <> None));
                   ("events", Json.Int (List.length (flow_events det p)));
                   ("verdict", Json.Str v);
                 ])
             (verdicts det)) );
      ("events", Json.Arr (List.map event_json (Detector.events det)));
      ( "recommendations",
        Json.Arr
          (List.map
             (fun (r : Detector.recommendation) ->
               Json.Obj
                 [
                   ("flow", Json.Str r.Detector.r_flow);
                   ("core", Json.Int r.Detector.r_core);
                   ("t_cycles", Json.Int r.Detector.r_t_cycles);
                   ( "budget_l3_refs_per_sec",
                     Json.Float r.Detector.r_budget_l3_refs_per_sec );
                 ])
             (Detector.recommendations det)) );
    ]

let verdict_table det =
  let tbl =
    Ppp_util.Table.create
      ~title:"Contention monitor verdicts"
      [
        "Flow"; "Core"; "Solo Mpps"; "EWMA Mpps"; "Drop %"; "Pred %";
        "L3 Mrefs/s"; "Profiled"; "Events"; "Verdict";
      ]
  in
  let last_row core =
    List.fold_left
      (fun acc (r : Detector.row) ->
        if r.Detector.row_core = core then Some r else acc)
      None (Detector.rows det)
  in
  List.iter
    (fun ((p : Detector.flow_profile), v) ->
      let ewma_pps, drop, pred, refs =
        match last_row p.Detector.core with
        | Some r ->
            ( r.Detector.row_rates.Estimator.ewma_pps,
              r.Detector.row_measured_drop,
              r.Detector.row_predicted_drop,
              r.Detector.row_rates.Estimator.ewma_l3_refs_per_sec )
        | None -> (0.0, 0.0, 0.0, 0.0)
      in
      Ppp_util.Table.add_row tbl
        [
          p.Detector.label;
          string_of_int p.Detector.core;
          Ppp_util.Table.cell_millions p.Detector.solo_pps;
          Ppp_util.Table.cell_millions ewma_pps;
          Ppp_util.Table.cell_pct drop;
          Ppp_util.Table.cell_pct pred;
          Ppp_util.Table.cell_millions refs;
          Ppp_util.Table.cell_millions p.Detector.solo_l3_refs_per_sec;
          string_of_int (List.length (flow_events det p));
          v;
        ])
    (verdicts det);
  tbl

let to_telemetry_events ~cell det =
  List.map
    (fun (e : Detector.event) ->
      let args =
        match e.Detector.e_kind with
        | Detector.Flow_degraded { measured_drop; predicted_drop } ->
            [
              ("measured_drop", Json.Float measured_drop);
              ("predicted_drop", Json.Float predicted_drop);
            ]
        | Detector.Hidden_aggressor
            { measured_refs_per_sec; profiled_refs_per_sec } ->
            [
              ("measured_l3_refs_per_sec", Json.Float measured_refs_per_sec);
              ("profiled_l3_refs_per_sec", Json.Float profiled_refs_per_sec);
            ]
        | Detector.Recovered { condition } ->
            [ ("condition", Json.Str condition) ]
      in
      {
        Ppp_telemetry.Event.experiment = "";
        cell;
        t_cycles = e.Detector.e_t_cycles;
        core = e.Detector.e_core;
        flow = e.Detector.e_flow;
        name = "monitor." ^ Detector.kind_name e.Detector.e_kind;
        args;
      })
    (Detector.events det)
