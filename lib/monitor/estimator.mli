(** Streaming per-flow rate estimation from engine samples.

    One estimator per monitored flow turns the raw per-slice counter deltas
    of {!Ppp_hw.Engine.probe} into rates (per simulated second) plus
    exponentially-weighted moving averages — the simulator's version of an
    online profiler reading hardware counters at a fixed period. Everything
    here is a pure function of the sample stream, which the engine delivers
    in deterministic simulated-time order, so estimates are byte-stable
    across job counts. *)

type rates = {
  t_start : int;  (** slice start, simulated cycles *)
  t_end : int;  (** slice end *)
  packets : int;  (** packets completed inside the slice *)
  pps : float;  (** instantaneous packets per simulated second *)
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  mem_refs_per_sec : float;  (** all loads + stores issued *)
  p50_latency : int;  (** median per-packet latency of the slice, cycles *)
  p99_latency : int;
  ewma_pps : float;  (** smoothed rates as of this slice (inclusive) *)
  ewma_l3_refs_per_sec : float;
  ewma_mem_refs_per_sec : float;
}
(** One slice interpreted as rates. The [ewma_*] fields are snapshots of the
    estimator's smoothed state immediately after absorbing this slice. *)

type t

val create : alpha:float -> freq_hz:float -> t
(** [alpha] in (0, 1] is the EWMA weight of the newest slice (1.0 disables
    smoothing); [freq_hz] converts cycle counts to per-second rates. The
    first slice seeds the EWMA at its own value (warm start). *)

val push : t -> Ppp_hw.Engine.sample -> rates
(** Absorb one slice and return it interpreted as rates. Slices of one flow
    must be pushed in time order (the engine's probe guarantees this). *)

val slices : t -> int
(** Number of slices absorbed so far. *)
