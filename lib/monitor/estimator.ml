type rates = {
  t_start : int;
  t_end : int;
  packets : int;
  pps : float;
  l3_refs_per_sec : float;
  l3_hits_per_sec : float;
  mem_refs_per_sec : float;
  p50_latency : int;
  p99_latency : int;
  ewma_pps : float;
  ewma_l3_refs_per_sec : float;
  ewma_mem_refs_per_sec : float;
}

type t = {
  alpha : float;
  freq_hz : float;
  mutable slices : int;
  mutable e_pps : float;
  mutable e_l3 : float;
  mutable e_mem : float;
}

let create ~alpha ~freq_hz =
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Estimator.create: alpha must be in (0, 1]";
  if not (freq_hz > 0.0) then invalid_arg "Estimator.create: freq_hz <= 0";
  { alpha; freq_hz; slices = 0; e_pps = 0.0; e_l3 = 0.0; e_mem = 0.0 }

let slices t = t.slices

let push t (s : Ppp_hw.Engine.sample) =
  let cycles = s.Ppp_hw.Engine.s_end - s.Ppp_hw.Engine.s_start in
  if cycles <= 0 then invalid_arg "Estimator.push: empty slice";
  let per_sec count = float_of_int count /. float_of_int cycles *. t.freq_hz in
  let d = s.Ppp_hw.Engine.s_delta in
  let pps = per_sec s.Ppp_hw.Engine.s_packets in
  let l3 = per_sec (Ppp_hw.Counters.l3_refs d) in
  let mem = per_sec (Ppp_hw.Counters.mem_refs d) in
  (* The first slice seeds the EWMA at its own value: a warm start avoids the
     spurious ramp-up a zero seed would show for 1/alpha slices. *)
  let mix prev v = if t.slices = 0 then v else ((1.0 -. t.alpha) *. prev) +. (t.alpha *. v) in
  t.e_pps <- mix t.e_pps pps;
  t.e_l3 <- mix t.e_l3 l3;
  t.e_mem <- mix t.e_mem mem;
  t.slices <- t.slices + 1;
  let lat = s.Ppp_hw.Engine.s_latency in
  {
    t_start = s.Ppp_hw.Engine.s_start;
    t_end = s.Ppp_hw.Engine.s_end;
    packets = s.Ppp_hw.Engine.s_packets;
    pps;
    l3_refs_per_sec = l3;
    l3_hits_per_sec = per_sec (Ppp_hw.Counters.l3_hits d);
    mem_refs_per_sec = mem;
    p50_latency = Ppp_util.Histogram.percentile lat 50.0;
    p99_latency = Ppp_util.Histogram.percentile lat 99.0;
    ewma_pps = t.e_pps;
    ewma_l3_refs_per_sec = t.e_l3;
    ewma_mem_refs_per_sec = t.e_mem;
  }
