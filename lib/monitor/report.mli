(** Rendering a finished {!Detector} run: CSV timeline, alerts JSON,
    verdict table, telemetry events.

    Everything here is a pure function of the detector's (deterministic)
    state — floats are serialized through {!Ppp_telemetry.Json.float_repr},
    so all outputs are byte-identical across job counts and suitable for
    golden snapshots. Call {!Detector.finalize} first. *)

val schema : string
(** ["ppp-monitor-alerts/1"], the [alerts_json] schema tag. *)

val timeline_csv : Detector.t -> string
(** The interpreted per-slice timeline ([monitor.csv]): one row per
    flow-epoch with instantaneous and EWMA rates, slice latency quantiles,
    competing rate, measured vs predicted drop, and the raw (pre-hysteresis)
    condition flags. *)

val alerts_json : Detector.t -> Ppp_telemetry.Json.t
(** The [alerts.json] document: config echo, per-flow verdicts, the typed
    event stream, and throttle-budget recommendations. *)

val verdict : Detector.t -> Detector.flow_profile -> string
(** ["aggressor"], ["degraded"], ["recovered"], or ["ok"] — armed alarms
    win (aggressor over degraded); released alarms read "recovered". *)

val verdicts : Detector.t -> (Detector.flow_profile * string) list

val verdict_table : Detector.t -> Ppp_util.Table.t
(** One row per flow: solo vs final smoothed rates, drop vs prediction,
    event count, verdict. *)

val to_telemetry_events :
  cell:string -> Detector.t -> Ppp_telemetry.Event.t list
(** Detector events as telemetry events (names [monitor.flow_degraded],
    [monitor.hidden_aggressor], [monitor.recovered]) for
    {!Ppp_telemetry.Recorder.add_events} — they surface as Chrome-trace
    instant events and in the manifest's alerts section. *)
