(** The JSON run manifest: provenance for a batch of experiment runs.

    Replaces the old loose stderr timing lines with structured data a CI
    job or analysis notebook can consume. Keys starting with [wall_] (and
    everything under ["wall_clock"]) are wall-clock measurements and hence
    nondeterministic; everything else is a pure function of the CLI
    invocation and the simulation. *)

type run = {
  tool : string;  (** "repro" or "bench" *)
  machine : string;  (** config name: westmere | scaled | tiny *)
  seed : int;
  warmup_cycles : int;
  measure_cycles : int;
  jobs_configured : int;  (** the [--jobs] value; 0 = auto *)
  jobs_effective : int;  (** the pool size actually used *)
  sample_cycles : int option;  (** slice length when sampling was on *)
}

val json :
  ?events:Event.t list ->
  ?classifier:Recorder.classifier_entry list ->
  ?traffic:Recorder.traffic_entry list ->
  ?profile:Recorder.profile_entry list ->
  run:run ->
  experiments:Recorder.experiment_entry list ->
  series:Timeseries.t list ->
  spans:Span.t list ->
  unit ->
  Json.t
(** Schema "ppp-telemetry/5": a [schema_version] field, an [alerts] section
    summarizing monitor events (count + per-name breakdown), a [classifier]
    section summarizing fast-path/slow-path counters (totals + per-cell
    breakdown), a [traffic] section summarizing the traffic-realism
    cells (reorders, steering migrations, predictor/monitor accuracy), and
    a [profile] section summarizing per-element attribution (totals +
    per-element breakdown with worst-core latency percentiles).
    All four sections are always emitted; with no data they are the
    empty-but-valid shapes ({["events": 0]}, {["cells": 0]},
    {["entries": 0]}), so runs that exercise none of the subsystems stay
    schema-conforming. *)
