(** The JSON run manifest: provenance for a batch of experiment runs.

    Replaces the old loose stderr timing lines with structured data a CI
    job or analysis notebook can consume. Keys starting with [wall_] (and
    everything under ["wall_clock"]) are wall-clock measurements and hence
    nondeterministic; everything else is a pure function of the CLI
    invocation and the simulation. *)

type run = {
  tool : string;  (** "repro" or "bench" *)
  machine : string;  (** config name: westmere | scaled | tiny *)
  seed : int;
  warmup_cycles : int;
  measure_cycles : int;
  jobs_configured : int;  (** the [--jobs] value; 0 = auto *)
  jobs_effective : int;  (** the pool size actually used *)
  sample_cycles : int option;  (** slice length when sampling was on *)
}

val json :
  ?events:Event.t list ->
  run:run ->
  experiments:Recorder.experiment_entry list ->
  series:Timeseries.t list ->
  spans:Span.t list ->
  unit ->
  Json.t
(** Schema "ppp-telemetry/2": adds a [schema_version] field and an [alerts]
    section summarizing monitor events (count + per-name breakdown). The
    section is always emitted; with no events it is the empty-but-valid
    shape ({["events": 0]}), so non-monitor runs stay schema-conforming. *)
