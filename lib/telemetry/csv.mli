(** CSV exporters.

    {!series_csv} serializes the simulated-time counter series and is fully
    deterministic (byte-identical across job counts for a fixed seed and
    machine) — it is covered by golden and determinism tests.
    {!spans_csv} serializes wall-clock spans and is not. *)

val series_csv : Timeseries.t list -> string
(** One row per (cell, core, slice), header included. Rates are derived
    per slice: [pps], [l3_refs_per_s], etc. Pass {!Recorder.series} output
    (already sorted). *)

val spans_csv : Span.t list -> string
(** One row per span: name, category, domain, absolute start, queue wait
    and duration (milliseconds), plus args as [k=v] pairs. *)

val field : string -> string
(** RFC-4180 quoting of one cell (used by layers that render their own
    CSV timelines, e.g. the contention monitor). *)

val row : string list -> string
(** Comma-joined cells plus the terminating newline. Cells must already be
    {!field}-quoted where needed. *)
