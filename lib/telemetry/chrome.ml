let wall_pid = 0

let key_name ~experiment ~cell =
  let cell = if cell = "" then "(unlabeled)" else cell in
  if experiment = "" then cell else experiment ^ "/" ^ cell

let cell_name (s : Timeseries.t) =
  key_name ~experiment:s.Timeseries.experiment ~cell:s.Timeseries.cell

let event_cell_name (e : Event.t) =
  key_name ~experiment:e.Event.experiment ~cell:e.Event.cell

(* Deterministic pid per (experiment, cell), in first-appearance order of
   the (already sorted) series list, then of the (already sorted) event
   list, then of the (already sorted) profile entries — so a trace with no
   events or profile keeps its historical pids byte-for-byte. pid 0 is
   reserved for wall-clock. *)
let assign_pids series events profile =
  let tbl = Hashtbl.create 16 in
  let next = ref 1 in
  let claim key =
    if not (Hashtbl.mem tbl key) then begin
      Hashtbl.add tbl key !next;
      incr next
    end
  in
  List.iter (fun s -> claim (cell_name s)) series;
  List.iter (fun e -> claim (event_cell_name e)) events;
  List.iter
    (fun (p : Recorder.profile_entry) -> claim p.Recorder.pr_cell)
    profile;
  fun key -> Hashtbl.find tbl key

let meta_event ~pid ?tid ~name ~value () =
  let base =
    [ ("name", Json.Str name); ("ph", Json.Str "M"); ("pid", Json.Int pid) ]
  in
  let base =
    match tid with Some t -> base @ [ ("tid", Json.Int t) ] | None -> base
  in
  Json.Obj (base @ [ ("args", Json.Obj [ ("name", Json.Str value) ]) ])

let counter ~pid ~tid ~ts ~name args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "C");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Int ts);
      ("args", Json.Obj args);
    ]

let series_events pid_of (s : Timeseries.t) =
  let pid = pid_of (cell_name s) in
  let tid = s.Timeseries.core + 1 in
  let pre =
    [
      meta_event ~pid ~name:"process_name" ~value:(cell_name s) ();
      meta_event ~pid ~tid ~name:"thread_name"
        ~value:
          (Printf.sprintf "core %d — %s" s.Timeseries.core s.Timeseries.flow)
        ();
    ]
  in
  let c = Printf.sprintf "c%d %s" s.Timeseries.core in
  let per_slice (sl : Timeseries.slice) =
    [
      counter ~pid ~tid ~ts:sl.Timeseries.t_end ~name:(c "L3/s")
        [
          ("hits", Json.Float (Timeseries.rate s sl sl.Timeseries.l3_hits));
          ("misses", Json.Float (Timeseries.rate s sl sl.Timeseries.l3_misses));
        ];
      counter ~pid ~tid ~ts:sl.Timeseries.t_end ~name:(c "pps")
        [ ("pps", Json.Float (Timeseries.pps s sl)) ];
      counter ~pid ~tid ~ts:sl.Timeseries.t_end ~name:(c "latency (cycles)")
        [
          ("p50", Json.Int sl.Timeseries.lat_p50);
          ("p99", Json.Int sl.Timeseries.lat_p99);
        ];
    ]
  in
  pre @ List.concat_map per_slice s.Timeseries.slices

(* Monitor alerts as thread-scoped instant events ("i" phase) on the
   simulated clock, attached to the same (experiment, cell) process and the
   event's core thread, so they line up with the counter tracks. *)
let instant_events pid_of events =
  List.map
    (fun (e : Event.t) ->
      let pid = pid_of (event_cell_name e) in
      Json.Obj
        [
          ("name", Json.Str e.Event.name);
          ("cat", Json.Str "monitor");
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("pid", Json.Int pid);
          ("tid", Json.Int (e.Event.core + 1));
          ("ts", Json.Int e.Event.t_cycles);
          ( "args",
            Json.Obj (("flow", Json.Str e.Event.flow) :: e.Event.args) );
        ])
    events

(* Per-element attribution as complete ("X") events on the simulated clock.
   Attribution has no op-level timestamps — only window totals — so each
   (cell, core)'s elements are laid out sequentially from the core's window
   start, each spanning its attributed cycles: the track reads as "how the
   core's window divides between elements", and the per-event args carry
   the counter and latency detail. *)
let profile_events pid_of (entries : Recorder.profile_entry list) =
  let cursor = Hashtbl.create 16 in
  List.concat_map
    (fun (e : Recorder.profile_entry) ->
      if e.Recorder.pr_cycles = 0 then []
      else begin
        let pid = pid_of e.Recorder.pr_cell in
        let tid = e.Recorder.pr_core + 1 in
        let key = (e.Recorder.pr_cell, e.Recorder.pr_core) in
        let ts =
          Option.value
            (Hashtbl.find_opt cursor key)
            ~default:e.Recorder.pr_window_start
        in
        Hashtbl.replace cursor key (ts + e.Recorder.pr_cycles);
        [
          Json.Obj
            [
              ("name", Json.Str e.Recorder.pr_elem);
              ("cat", Json.Str "profile");
              ("ph", Json.Str "X");
              ("pid", Json.Int pid);
              ("tid", Json.Int tid);
              ("ts", Json.Int ts);
              ("dur", Json.Int e.Recorder.pr_cycles);
              ( "args",
                Json.Obj
                  [
                    ("flow", Json.Str e.Recorder.pr_flow);
                    ("instructions", Json.Int e.Recorder.pr_instructions);
                    ("l3_hits", Json.Int e.Recorder.pr_l3_hits);
                    ("l3_misses", Json.Int e.Recorder.pr_l3_misses);
                    ("packets", Json.Int e.Recorder.pr_packets);
                    ("lat_p50", Json.Int e.Recorder.pr_lat_p50);
                    ("lat_p99", Json.Int e.Recorder.pr_lat_p99);
                    ("lat_p999", Json.Int e.Recorder.pr_lat_p999);
                  ] );
            ];
        ]
      end)
    entries

let span_events spans =
  match spans with
  | [] -> []
  | first :: _ ->
      (* Spans are sorted by start; rebase on the earliest so the wall-clock
         track starts near ts 0 like the simulated tracks. *)
      let t0 = (first : Span.t).Span.start_s in
      let us x = Json.Float (1e6 *. x) in
      meta_event ~pid:wall_pid ~name:"process_name"
        ~value:"wall clock (runner, nondeterministic)" ()
      :: List.map
           (fun (sp : Span.t) ->
             Json.Obj
               [
                 ("name", Json.Str sp.Span.name);
                 ("cat", Json.Str sp.Span.cat);
                 ("ph", Json.Str "X");
                 ("pid", Json.Int wall_pid);
                 ("tid", Json.Int sp.Span.domain);
                 ("ts", us (sp.Span.start_s -. t0));
                 ("dur", us sp.Span.dur_s);
                 ( "args",
                   Json.Obj
                     (("queue_ms", Json.Float (1e3 *. sp.Span.queue_s))
                     :: List.map
                          (fun (k, v) -> (k, Json.Str v))
                          sp.Span.args) );
               ])
           spans

let trace ?(include_wall_clock = true) ?(events = []) ?(profile = []) ~series
    ~spans ~meta () =
  let pid_of = assign_pids series events profile in
  let events =
    List.concat_map (series_events pid_of) series
    @ instant_events pid_of events
    @ profile_events pid_of profile
    @ (if include_wall_clock then span_events spans else [])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          (( "clock_note",
             Json.Str
               "simulated tracks: 1 displayed us = 1 simulated cycle; wall \
                clock track (pid 0) uses real microseconds" )
          :: meta) );
    ]
