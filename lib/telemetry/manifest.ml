type run = {
  tool : string;
  machine : string;
  seed : int;
  warmup_cycles : int;
  measure_cycles : int;
  jobs_configured : int;
  jobs_effective : int;
  sample_cycles : int option;
}

let schema = "ppp-telemetry/5"
let schema_version = 5

(* The alerts section summarizes monitor events. It is always present —
   an empty section (0 events) is the valid shape for non-monitor runs —
   so consumers never have to probe for the key. *)
let alerts_json events =
  let by_name =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.Event.name) events)
    |> List.map (fun name ->
           ( name,
             Json.Int
               (List.length
                  (List.filter
                     (fun (e : Event.t) -> e.Event.name = name)
                     events)) ))
  in
  Json.Obj
    [
      ("events", Json.Int (List.length events));
      ("by_name", Json.Obj by_name);
    ]

(* Schema 3: the classifier section summarizes the fast-path/slow-path
   counters recorded per experiment cell. Like alerts, it is always present;
   an empty section (0 cells) is the valid shape for runs that never
   exercise the classifier. *)
let classifier_json (entries : Recorder.classifier_entry list) =
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 entries in
  Json.Obj
    [
      ("cells", Json.Int (List.length entries));
      ("lookups", Json.Int (sum (fun e -> e.Recorder.cls_lookups)));
      ("hits", Json.Int (sum (fun e -> e.Recorder.cls_hits)));
      ("upcalls", Json.Int (sum (fun e -> e.Recorder.cls_upcalls)));
      ("installs", Json.Int (sum (fun e -> e.Recorder.cls_installs)));
      ("evictions", Json.Int (sum (fun e -> e.Recorder.cls_evictions)));
      ( "by_cell",
        Json.Arr
          (List.map
             (fun (e : Recorder.classifier_entry) ->
               Json.Obj
                 [
                   ("cell", Json.Str e.Recorder.cls_cell);
                   ("backend", Json.Str e.Recorder.cls_backend);
                   ("rules", Json.Int e.Recorder.cls_rules);
                   ("lookups", Json.Int e.Recorder.cls_lookups);
                   ("hits", Json.Int e.Recorder.cls_hits);
                   ("upcalls", Json.Int e.Recorder.cls_upcalls);
                   ("installs", Json.Int e.Recorder.cls_installs);
                   ("evictions", Json.Int e.Recorder.cls_evictions);
                 ])
             entries) );
    ]

(* Schema 4: the traffic section summarizes the traffic-realism experiment
   cells — reordering, steering migrations and predictor/monitor accuracy
   under non-stationary load. Always present like alerts and classifier;
   an empty section (0 cells) is the valid shape for runs that never
   exercise the traffic experiment. *)
let traffic_json (entries : Recorder.traffic_entry list) =
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 entries in
  Json.Obj
    [
      ("cells", Json.Int (List.length entries));
      ("packets", Json.Int (sum (fun e -> e.Recorder.tr_packets)));
      ("reorders", Json.Int (sum (fun e -> e.Recorder.tr_reorders)));
      ("migrations", Json.Int (sum (fun e -> e.Recorder.tr_migrations)));
      ("evictions", Json.Int (sum (fun e -> e.Recorder.tr_evictions)));
      ("false_alerts", Json.Int (sum (fun e -> e.Recorder.tr_false_alerts)));
      ( "by_cell",
        Json.Arr
          (List.map
             (fun (e : Recorder.traffic_entry) ->
               Json.Obj
                 [
                   ("cell", Json.Str e.Recorder.tr_cell);
                   ("model", Json.Str e.Recorder.tr_model);
                   ("steering", Json.Str e.Recorder.tr_steering);
                   ("packets", Json.Int e.Recorder.tr_packets);
                   ("reorders", Json.Int e.Recorder.tr_reorders);
                   ("migrations", Json.Int e.Recorder.tr_migrations);
                   ("evictions", Json.Int e.Recorder.tr_evictions);
                   ("false_alerts", Json.Int e.Recorder.tr_false_alerts);
                   ( "predicted_drop",
                     Json.Float e.Recorder.tr_predicted_drop );
                   ("measured_drop", Json.Float e.Recorder.tr_measured_drop);
                 ])
             entries) );
    ]

(* Schema 5: the profile section summarizes per-element attribution when a
   run was profiled (--profile). Always present like the other sections;
   an empty section (0 entries) is the valid shape for unprofiled runs. *)
let profile_json (entries : Recorder.profile_entry list) =
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 entries in
  Json.Obj
    [
      ("entries", Json.Int (List.length entries));
      ("cycles", Json.Int (sum (fun e -> e.Recorder.pr_cycles)));
      ( "instructions",
        Json.Int (sum (fun e -> e.Recorder.pr_instructions)) );
      ("l3_hits", Json.Int (sum (fun e -> e.Recorder.pr_l3_hits)));
      ("l3_misses", Json.Int (sum (fun e -> e.Recorder.pr_l3_misses)));
      ("packets", Json.Int (sum (fun e -> e.Recorder.pr_packets)));
      ( "window_cycles",
        Json.Int (Profile.window_cycles_total entries) );
      ( "by_element",
        Json.Arr
          (List.map
             (fun (t : Profile.element_total) ->
               Json.Obj
                 [
                   ("element", Json.Str t.Profile.el_name);
                   ("cycles", Json.Int t.Profile.el_cycles);
                   ("instructions", Json.Int t.Profile.el_instructions);
                   ("l3_hits", Json.Int t.Profile.el_l3_hits);
                   ("l3_misses", Json.Int t.Profile.el_l3_misses);
                   ("packets", Json.Int t.Profile.el_packets);
                   ("lat_p50", Json.Int t.Profile.el_lat_p50);
                   ("lat_p90", Json.Int t.Profile.el_lat_p90);
                   ("lat_p99", Json.Int t.Profile.el_lat_p99);
                   ("lat_p999", Json.Int t.Profile.el_lat_p999);
                 ])
             (Profile.by_element entries)) );
    ]

let json ?(events = []) ?(classifier = []) ?(traffic = []) ?(profile = [])
    ~run ~experiments ~series ~spans () =
  let n_slices =
    List.fold_left
      (fun acc (s : Timeseries.t) -> acc + List.length s.Timeseries.slices)
      0 series
  in
  let cells =
    List.sort_uniq compare
      (List.map
         (fun (s : Timeseries.t) ->
           (s.Timeseries.experiment, s.Timeseries.cell))
         series)
  in
  let wall_total =
    List.fold_left
      (fun acc (e : Recorder.experiment_entry) ->
        acc +. e.Recorder.wall_s)
      0.0 experiments
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("schema_version", Json.Int schema_version);
      ( "run",
        Json.Obj
          [
            ("tool", Json.Str run.tool);
            ("machine", Json.Str run.machine);
            ("seed", Json.Int run.seed);
            ("warmup_cycles", Json.Int run.warmup_cycles);
            ("measure_cycles", Json.Int run.measure_cycles);
            ("jobs_configured", Json.Int run.jobs_configured);
            ("jobs_effective", Json.Int run.jobs_effective);
            ( "sample_cycles",
              match run.sample_cycles with
              | Some k -> Json.Int k
              | None -> Json.Null );
          ] );
      ( "experiments",
        Json.Arr
          (List.map
             (fun (e : Recorder.experiment_entry) ->
               Json.Obj
                 [
                   ("id", Json.Str e.Recorder.exp_id);
                   ("title", Json.Str e.Recorder.exp_title);
                   ("paper_ref", Json.Str e.Recorder.exp_paper_ref);
                   ("wall_s", Json.Float e.Recorder.wall_s);
                 ])
             experiments) );
      ( "series",
        Json.Obj
          [
            ("cells", Json.Int (List.length cells));
            ("series", Json.Int (List.length series));
            ("slices", Json.Int n_slices);
          ] );
      ("alerts", alerts_json events);
      ("classifier", classifier_json classifier);
      ("traffic", traffic_json traffic);
      ("profile", profile_json profile);
      ( "wall_clock",
        Json.Obj
          [
            ("experiments_total_s", Json.Float wall_total);
            ("spans", Json.Int (List.length spans));
          ] );
    ]
