(** Deterministic per-core counter time series.

    One series is the sampled measurement window of one core inside one
    experiment cell: contiguous time slices keyed by *simulated* cycles,
    each carrying the counter delta, packet count and latency quantiles of
    that slice. Everything here is a pure function of the simulation, so a
    series is byte-identical across job counts and suitable for golden
    tests; wall-clock never enters this type. *)

type slice = {
  t_start : int;  (** slice start, simulated cycles *)
  t_end : int;  (** slice end; consecutive slices are contiguous *)
  packets : int;
  instructions : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  l3_misses : int;
  reads : int;
  writes : int;
  lat_p50 : int;  (** median packet latency inside the slice, cycles *)
  lat_p99 : int;
}

type t = {
  experiment : string;  (** registry id, or "" outside an experiment *)
  cell : string;  (** experiment cell label, or "" for unlabeled runs *)
  core : int;
  flow : string;  (** flow label, e.g. "MON" *)
  freq_hz : float;  (** converts slice cycles to seconds for rates *)
  slices : slice list;  (** in simulated-time order *)
}

val l3_refs : slice -> int
val cycles : slice -> int

val seconds : t -> slice -> float
(** Slice duration in simulated seconds. *)

val rate : t -> slice -> int -> float
(** [rate t s n] is [n] per simulated second of slice [s]. *)

val pps : t -> slice -> float

val sum_slices : t -> slice
(** The whole-window totals of a series: the telescoped sum of its slices
    (packet and counter fields add; [t_start]/[t_end] span the window;
    latency quantiles are meaningless on the sum and set to 0). *)

val compare : t -> t -> int
(** Total order by (experiment, cell, core, flow, slices) — the export
    order, independent of collection order. *)
