type t = {
  experiment : string;
  cell : string;
  t_cycles : int;
  core : int;
  flow : string;
  name : string;
  args : (string * Json.t) list;
}

(* Field order above is the sort significance order; the record holds only
   ints, strings and Json values (no closures), so the polymorphic compare
   is a safe deterministic total order — same discipline as
   {!Timeseries.compare}. *)
let compare (a : t) (b : t) = Stdlib.compare a b

let json e =
  Json.Obj
    [
      ("experiment", Json.Str e.experiment);
      ("cell", Json.Str e.cell);
      ("t_cycles", Json.Int e.t_cycles);
      ("core", Json.Int e.core);
      ("flow", Json.Str e.flow);
      ("name", Json.Str e.name);
      ("args", Json.Obj e.args);
    ]
