(** Wall-clock spans of the experiment runner itself.

    A span covers one unit of host-side work — an experiment cell inside
    {!Ppp_core.Runner.run}, or one work item of a [Ppp_core.Parallel] pool —
    with its wall-clock start, duration, queue wait and owning domain.

    Everything in this type is wall-clock and therefore nondeterministic:
    exporters keep spans strictly segregated from the simulated-time
    {!Timeseries} data so that golden tests can cover the deterministic
    subset of an export. *)

type t = {
  name : string;  (** cell label, or a synthesized name *)
  cat : string;  (** "runner" | "parallel" *)
  domain : int;  (** OCaml domain id that ran the work *)
  start_s : float;  (** absolute wall-clock (Unix epoch seconds) *)
  dur_s : float;
  queue_s : float;  (** wait between submission and start; 0 if unqueued *)
  args : (string * string) list;  (** extra context, e.g. seed, flow count *)
}

val now_s : unit -> float
(** Wall clock (Unix epoch seconds). The single wall-clock source of the
    telemetry layer. *)
