type t = {
  name : string;
  cat : string;
  domain : int;
  start_s : float;
  dur_s : float;
  queue_s : float;
  args : (string * string) list;
}

let now_s () = Unix.gettimeofday ()
