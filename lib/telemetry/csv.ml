let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let field s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row cells = String.concat "," cells ^ "\n"
let f x = Json.float_repr x

let series_header =
  [
    "experiment"; "cell"; "core"; "flow"; "slice"; "t_start"; "t_end";
    "cycles"; "packets"; "instructions"; "l1_hits"; "l2_hits"; "l3_hits";
    "l3_misses"; "l3_refs"; "reads"; "writes"; "pps"; "l3_refs_per_s";
    "l3_hits_per_s"; "l3_misses_per_s"; "lat_p50_cycles"; "lat_p99_cycles";
  ]

let series_csv series =
  let b = Buffer.create 4096 in
  Buffer.add_string b (row series_header);
  List.iter
    (fun (s : Timeseries.t) ->
      List.iteri
        (fun i (sl : Timeseries.slice) ->
          Buffer.add_string b
            (row
               [
                 field s.Timeseries.experiment;
                 field s.Timeseries.cell;
                 string_of_int s.Timeseries.core;
                 field s.Timeseries.flow;
                 string_of_int i;
                 string_of_int sl.Timeseries.t_start;
                 string_of_int sl.Timeseries.t_end;
                 string_of_int (Timeseries.cycles sl);
                 string_of_int sl.Timeseries.packets;
                 string_of_int sl.Timeseries.instructions;
                 string_of_int sl.Timeseries.l1_hits;
                 string_of_int sl.Timeseries.l2_hits;
                 string_of_int sl.Timeseries.l3_hits;
                 string_of_int sl.Timeseries.l3_misses;
                 string_of_int (Timeseries.l3_refs sl);
                 string_of_int sl.Timeseries.reads;
                 string_of_int sl.Timeseries.writes;
                 f (Timeseries.pps s sl);
                 f (Timeseries.rate s sl (Timeseries.l3_refs sl));
                 f (Timeseries.rate s sl sl.Timeseries.l3_hits);
                 f (Timeseries.rate s sl sl.Timeseries.l3_misses);
                 string_of_int sl.Timeseries.lat_p50;
                 string_of_int sl.Timeseries.lat_p99;
               ]))
        s.Timeseries.slices)
    series;
  Buffer.contents b

let spans_csv spans =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (row
       [
         "name"; "cat"; "domain"; "start_unix_s"; "queue_ms"; "dur_ms";
         "args";
       ]);
  List.iter
    (fun (sp : Span.t) ->
      Buffer.add_string b
        (row
           [
             field sp.Span.name;
             field sp.Span.cat;
             string_of_int sp.Span.domain;
             Printf.sprintf "%.6f" sp.Span.start_s;
             Printf.sprintf "%.3f" (1e3 *. sp.Span.queue_s);
             Printf.sprintf "%.3f" (1e3 *. sp.Span.dur_s);
             field
               (String.concat ";"
                  (List.map (fun (k, v) -> k ^ "=" ^ v) sp.Span.args));
           ]))
    spans;
  Buffer.contents b
