(** File-writing glue over the {!Recorder}: what the CLIs call after a run.

    Layout of a metrics directory:
    - [series.csv] — simulated-time counter series (deterministic)
    - [spans.csv] — wall-clock runner spans (nondeterministic)
    - [manifest.json] — run provenance + per-experiment wall-clock *)

val ensure_dir : string -> unit
(** Creates the directory (and parents) if needed — the shared helper
    behind the CLIs' [--metrics-dir], [--trace] and [--profile-out]
    destinations. Idempotent. *)

val deterministic_trace : meta:(string * Json.t) list -> Json.t
(** The Chrome trace restricted to its deterministic (simulated-time)
    subset: counter series, monitor instant events and profile slices, no
    wall-clock spans. What the golden tests snapshot. *)

val write_trace : path:string -> meta:(string * Json.t) list -> unit
(** Full Chrome trace (simulated tracks + wall-clock spans) to [path]. *)

val write_metrics_dir : dir:string -> run:Manifest.run -> unit
(** Creates [dir] (and parents) if needed and writes the three files. *)

val write_profile_dir : dir:string -> unit
(** Writes the profiler's flamegraph-ready exports from the recorder's
    profile entries into [dir] (created if needed):
    - [profile_cycles.folded] — folded stacks weighted by cycles
    - [profile_l3_misses.folded] — folded stacks weighted by L3 misses
    - [top.txt] — the {!Profile.top} hot-spot report over all cells
    All three are byte-deterministic across job counts. *)

val write_monitor_dir : dir:string -> alerts:Json.t -> timeline_csv:string -> unit
(** Writes a contention-monitor run's interpreted outputs: [alerts.json]
    (the typed event stream + per-flow verdicts, built by
    [Ppp_monitor.Report.alerts_json]) and [monitor.csv] (the per-slice
    interpreted timeline). Both are simulated-time data and therefore
    byte-deterministic across job counts. *)
