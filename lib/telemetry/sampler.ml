type per_core = { flow : string; mutable rev_slices : Timeseries.slice list }

type t = {
  cell : string;
  sample_cycles : int;
  cores : (int, per_core) Hashtbl.t;
}

let create ~cell ~sample_cycles =
  if sample_cycles < 1 then
    invalid_arg "Sampler.create: sample_cycles must be >= 1";
  { cell; sample_cycles; cores = Hashtbl.create 8 }

let slice_of_sample (s : Ppp_hw.Engine.sample) =
  let c = s.Ppp_hw.Engine.s_delta in
  {
    Timeseries.t_start = s.Ppp_hw.Engine.s_start;
    t_end = s.Ppp_hw.Engine.s_end;
    packets = s.Ppp_hw.Engine.s_packets;
    instructions = Ppp_hw.Counters.instructions c;
    l1_hits = Ppp_hw.Counters.l1_hits c;
    l2_hits = Ppp_hw.Counters.l2_hits c;
    l3_hits = Ppp_hw.Counters.l3_hits c;
    l3_misses = Ppp_hw.Counters.l3_misses c;
    reads = Ppp_hw.Counters.reads c;
    writes = Ppp_hw.Counters.writes c;
    lat_p50 = Ppp_util.Histogram.percentile s.Ppp_hw.Engine.s_latency 50.0;
    lat_p99 = Ppp_util.Histogram.percentile s.Ppp_hw.Engine.s_latency 99.0;
  }

let probe t =
  {
    Ppp_hw.Engine.sample_cycles = t.sample_cycles;
    on_sample =
      (fun s ->
        let core = s.Ppp_hw.Engine.s_core in
        let pc =
          match Hashtbl.find_opt t.cores core with
          | Some pc -> pc
          | None ->
              let pc =
                { flow = s.Ppp_hw.Engine.s_flow; rev_slices = [] }
              in
              Hashtbl.add t.cores core pc;
              pc
        in
        pc.rev_slices <- slice_of_sample s :: pc.rev_slices);
  }

let series t ~experiment ~freq_hz =
  Hashtbl.fold
    (fun core pc acc ->
      {
        Timeseries.experiment;
        cell = t.cell;
        core;
        flow = pc.flow;
        freq_hz;
        slices = List.rev pc.rev_slices;
      }
      :: acc)
    t.cores []
  |> List.sort Timeseries.compare
