type experiment_entry = {
  exp_id : string;
  exp_title : string;
  exp_paper_ref : string;
  wall_s : float;
}

type classifier_entry = {
  cls_cell : string;
  cls_backend : string;
  cls_rules : int;
  cls_lookups : int;
  cls_hits : int;
  cls_upcalls : int;
  cls_installs : int;
  cls_evictions : int;
}

type traffic_entry = {
  tr_cell : string;
  tr_model : string;
  tr_steering : string;
  tr_packets : int;
  tr_reorders : int;
  tr_migrations : int;
  tr_evictions : int;
  tr_false_alerts : int;
  tr_predicted_drop : float;
  tr_measured_drop : float;
}

type profile_entry = {
  pr_cell : string;
  pr_core : int;
  pr_flow : string;
  pr_elem : string;
  pr_cycles : int;
  pr_instructions : int;
  pr_l3_hits : int;
  pr_l3_misses : int;
  pr_packets : int;
  pr_lat_p50 : int;
  pr_lat_p90 : int;
  pr_lat_p99 : int;
  pr_lat_p999 : int;
  pr_window_start : int;
  pr_window_cycles : int;
}

(* Sampling config and the current experiment id are read from worker
   domains on the hot-ish path, so they live in atomics; the accumulators
   are mutated under one mutex. *)
let sampling_setting = Atomic.make 0 (* 0 = off *)
let spans_setting = Atomic.make false
let experiment_tag = Atomic.make ""
let lock = Mutex.create ()
let acc_series : Timeseries.t list ref = ref []
let acc_spans : Span.t list ref = ref []
let acc_events : Event.t list ref = ref []
let acc_experiments : experiment_entry list ref = ref []
let acc_classifier : classifier_entry list ref = ref []
let acc_traffic : traffic_entry list ref = ref []
let acc_profile : profile_entry list ref = ref []

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let configure ?sample_cycles ?(spans = false) () =
  (match sample_cycles with
  | Some k when k < 1 ->
      invalid_arg "Recorder.configure: sample_cycles must be >= 1"
  | _ -> ());
  Atomic.set sampling_setting (Option.value sample_cycles ~default:0);
  Atomic.set spans_setting spans

let clear_data () =
  locked (fun () ->
      acc_series := [];
      acc_spans := [];
      acc_events := [];
      acc_experiments := [];
      acc_classifier := [];
      acc_traffic := [];
      acc_profile := [])

let reset () =
  Atomic.set sampling_setting 0;
  Atomic.set spans_setting false;
  Atomic.set experiment_tag "";
  clear_data ()

let sampling () =
  match Atomic.get sampling_setting with 0 -> None | k -> Some k

let spans_enabled () = Atomic.get spans_setting
let set_experiment id = Atomic.set experiment_tag id
let current_experiment () = Atomic.get experiment_tag

let add_series ss =
  let experiment = current_experiment () in
  let ss =
    List.map (fun s -> { s with Timeseries.experiment }) ss
  in
  locked (fun () -> acc_series := List.rev_append ss !acc_series)

let add_span s = locked (fun () -> acc_spans := s :: !acc_spans)

let add_events es =
  let experiment = current_experiment () in
  let es =
    List.map
      (fun (e : Event.t) ->
        if e.Event.experiment = "" then { e with Event.experiment } else e)
      es
  in
  locked (fun () -> acc_events := List.rev_append es !acc_events)

let record_experiment ~id ~title ~paper_ref ~wall_s =
  locked (fun () ->
      acc_experiments :=
        { exp_id = id; exp_title = title; exp_paper_ref = paper_ref; wall_s }
        :: !acc_experiments)

let series () =
  locked (fun () -> List.sort Timeseries.compare !acc_series)

let spans () =
  locked (fun () ->
      List.sort
        (fun (a : Span.t) b ->
          compare (a.Span.start_s, a.Span.name) (b.Span.start_s, b.Span.name))
        !acc_spans)

let events () = locked (fun () -> List.sort Event.compare !acc_events)
let experiments () = locked (fun () -> List.rev !acc_experiments)

let add_classifier e =
  locked (fun () -> acc_classifier := e :: !acc_classifier)

let classifier () =
  locked (fun () ->
      List.sort
        (fun a b ->
          compare (a.cls_cell, a.cls_backend) (b.cls_cell, b.cls_backend))
        !acc_classifier)

let add_traffic e = locked (fun () -> acc_traffic := e :: !acc_traffic)

let traffic () =
  locked (fun () ->
      List.sort
        (fun a b ->
          compare
            (a.tr_cell, a.tr_model, a.tr_steering)
            (b.tr_cell, b.tr_model, b.tr_steering))
        !acc_traffic)

let add_profile es =
  locked (fun () -> acc_profile := List.rev_append es !acc_profile)

let profile () =
  locked (fun () ->
      List.sort
        (fun a b ->
          compare (a.pr_cell, a.pr_core, a.pr_elem)
            (b.pr_cell, b.pr_core, b.pr_elem))
        !acc_profile)
