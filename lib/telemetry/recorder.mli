(** The process-global telemetry collector.

    Instrumentation points ({!Ppp_core.Runner}, [Ppp_core.Parallel], the
    CLIs) are scattered across layers and worker domains, so collection
    goes through one mutex-protected global sink. Telemetry is off by
    default (every hook is a cheap no-op); the CLIs call {!configure} when
    the user asks for [--trace]/[--metrics].

    Reads return deterministically ordered data: series are sorted with
    {!Timeseries.compare} regardless of the (parallel, hence racy)
    insertion order; spans are wall-clock and sorted by start time. *)

type experiment_entry = {
  exp_id : string;
  exp_title : string;
  exp_paper_ref : string;
  wall_s : float;  (** wall-clock duration — nondeterministic *)
}

type classifier_entry = {
  cls_cell : string;  (** experiment cell label, e.g. "classifier/tss/64/0.0" *)
  cls_backend : string;
  cls_rules : int;
  cls_lookups : int;  (** fast-path probes = hits + upcalls *)
  cls_hits : int;
  cls_upcalls : int;
  cls_installs : int;
  cls_evictions : int;
}

type traffic_entry = {
  tr_cell : string;  (** experiment cell label, e.g. "traffic/heavy/1.1/fdir" *)
  tr_model : string;  (** traffic model name: "heavy" | "onoff" | "churn" *)
  tr_steering : string;  (** steering model name: "rss" | "fdir" *)
  tr_packets : int;  (** packets the victim forwarded or dropped *)
  tr_reorders : int;  (** RFC 4737 reordered singletons seen by the victim *)
  tr_migrations : int;  (** Flow-Director core migrations (0 under RSS) *)
  tr_evictions : int;  (** flow-table evictions forced by the source *)
  tr_false_alerts : int;  (** monitor alerts with no real aggressor present *)
  tr_predicted_drop : float;  (** stationary-model predicted drop fraction *)
  tr_measured_drop : float;  (** drop fraction actually measured *)
}

type profile_entry = {
  pr_cell : string;  (** experiment cell label, e.g. "fig2/ip" *)
  pr_core : int;
  pr_flow : string;  (** label of the flow running on [pr_core] *)
  pr_elem : string;  (** element name ({!Ppp_hw.Eid.name}) *)
  pr_cycles : int;  (** cycles retired inside this element (window only) *)
  pr_instructions : int;
  pr_l3_hits : int;
  pr_l3_misses : int;
  pr_packets : int;  (** packets whose latency was attributed here *)
  pr_lat_p50 : int;  (** per-packet cycles spent in this element *)
  pr_lat_p90 : int;
  pr_lat_p99 : int;
  pr_lat_p999 : int;
  pr_window_start : int;  (** core's measurement-window start (cycles) *)
  pr_window_cycles : int;  (** core's measurement-window length (cycles) *)
}

val configure : ?sample_cycles:int -> ?spans:bool -> unit -> unit
(** Turns collection on. [sample_cycles] enables counter sampling at that
    slice length (in simulated cycles); [spans] enables wall-clock span
    collection. Raises [Invalid_argument] on [sample_cycles < 1]. *)

val reset : unit -> unit
(** Back to the disabled state, dropping configuration and all data. *)

val clear_data : unit -> unit
(** Drops collected data but keeps the configuration (between repeated
    runs in tests). *)

val sampling : unit -> int option
(** The configured slice length, when sampling is on. *)

val spans_enabled : unit -> bool

val set_experiment : string -> unit
(** Labels subsequently collected series with this experiment id. Set from
    the main domain between experiment runs; worker domains read it. *)

val current_experiment : unit -> string

val add_series : Timeseries.t list -> unit
(** Thread-safe; tags each series with {!current_experiment}. *)

val add_span : Span.t -> unit
(** Thread-safe. *)

val add_events : Event.t list -> unit
(** Thread-safe; events whose [experiment] field is empty are tagged with
    {!current_experiment}. *)

val record_experiment :
  id:string -> title:string -> paper_ref:string -> wall_s:float -> unit
(** Appends a manifest entry for a completed experiment (always recorded,
    even when telemetry is off — recording a float is free and the CLIs
    decide later whether a manifest is written). *)

val series : unit -> Timeseries.t list
(** Sorted with {!Timeseries.compare} — deterministic for a fixed seed and
    machine regardless of job count. *)

val spans : unit -> Span.t list
(** Sorted by (start, name); wall-clock, nondeterministic. *)

val events : unit -> Event.t list
(** Sorted with {!Event.compare} — simulated-time, deterministic for a
    fixed seed and machine regardless of job count. *)

val experiments : unit -> experiment_entry list
(** In completion order (experiments run sequentially from the main
    domain, so this order is the CLI invocation order). *)

val add_classifier : classifier_entry -> unit
(** Thread-safe; always recorded (like {!record_experiment}) — a handful of
    ints per cell, and the CLIs decide later whether a manifest is
    written. *)

val classifier : unit -> classifier_entry list
(** Sorted by (cell, backend) — deterministic regardless of job count. *)

val add_traffic : traffic_entry -> unit
(** Thread-safe; always recorded (like {!add_classifier}). *)

val traffic : unit -> traffic_entry list
(** Sorted by (cell, model, steering) — deterministic regardless of job
    count. *)

val add_profile : profile_entry list -> unit
(** Thread-safe; always recorded (like {!add_classifier}). *)

val profile : unit -> profile_entry list
(** Sorted by (cell, core, elem). Element names are stable across job
    counts (ids are registered globally by name), so this order — and the
    entries themselves — are deterministic regardless of [--jobs]. *)
