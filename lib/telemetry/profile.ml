(* Attribution profiles: Attrib accumulators -> recorder entries, folded
   flamegraph stacks, and the `top` hot-spot report.

   Raw element ids are registration-order dependent across job counts
   (Ppp_hw.Eid), so everything built here is keyed by element NAME and
   sorted — the rendered exports are byte-identical for any --jobs. *)

open Ppp_hw

let pct h p =
  match h with None -> 0 | Some h -> Ppp_util.Histogram.percentile h p

let entries ~cell ~flow attrib =
  let out = ref [] in
  for core = Attrib.cores attrib - 1 downto 0 do
    let pr_flow = flow ~core in
    for elem = Eid.count () - 1 downto 0 do
      let cycles = Attrib.cycles attrib ~core ~elem in
      let lat = Attrib.latency attrib ~core ~elem in
      (* An element appears if it retired window cycles or recorded packet
         latency; untouched (core, elem) rows are skipped entirely. *)
      if cycles > 0 || lat <> None then
        out :=
          {
            Recorder.pr_cell = cell;
            pr_core = core;
            pr_flow;
            pr_elem = Eid.name elem;
            pr_cycles = cycles;
            pr_instructions = Attrib.instructions attrib ~core ~elem;
            pr_l3_hits = Attrib.l3_hits attrib ~core ~elem;
            pr_l3_misses = Attrib.l3_misses attrib ~core ~elem;
            pr_packets =
              (match lat with
              | None -> 0
              | Some h -> Ppp_util.Histogram.count h);
            pr_lat_p50 = pct lat 50.0;
            pr_lat_p90 = pct lat 90.0;
            pr_lat_p99 = pct lat 99.0;
            pr_lat_p999 = pct lat 99.9;
            pr_window_start = Attrib.window_start attrib ~core;
            pr_window_cycles = Attrib.window_cycles attrib ~core;
          }
          :: !out
    done
  done;
  List.sort
    (fun a b ->
      compare
        (a.Recorder.pr_cell, a.Recorder.pr_core, a.Recorder.pr_elem)
        (b.Recorder.pr_cell, b.Recorder.pr_core, b.Recorder.pr_elem))
    !out

let record ~cell ~flow attrib =
  Recorder.add_profile (entries ~cell ~flow attrib)

(* Folded flamegraph stacks: one "flow;element value" line per stack,
   aggregated over cores and cells, sorted lexicographically. Loadable by
   flamegraph.pl / inferno / speedscope as-is. *)
let folded ~value entries =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Recorder.profile_entry) ->
      let v = value e in
      if v > 0 then begin
        let key = (e.Recorder.pr_flow, e.Recorder.pr_elem) in
        let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0 in
        Hashtbl.replace tbl key (prev + v)
      end)
    entries;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let rows = List.sort compare rows in
  let buf = Buffer.create 256 in
  List.iter
    (fun ((flow, elem), v) -> Printf.bprintf buf "%s;%s %d\n" flow elem v)
    rows;
  Buffer.contents buf

let folded_cycles entries =
  folded ~value:(fun e -> e.Recorder.pr_cycles) entries

let folded_l3_misses entries =
  folded ~value:(fun e -> e.Recorder.pr_l3_misses) entries

type element_total = {
  el_name : string;
  el_cycles : int;
  el_instructions : int;
  el_l3_hits : int;
  el_l3_misses : int;
  el_packets : int;
  el_lat_p50 : int;
  el_lat_p90 : int;
  el_lat_p99 : int;
  el_lat_p999 : int;
}

let by_element entries =
  let tbl : (string, element_total ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Recorder.profile_entry) ->
      let a =
        match Hashtbl.find_opt tbl e.Recorder.pr_elem with
        | Some a -> a
        | None ->
            let a =
              ref
                {
                  el_name = e.Recorder.pr_elem;
                  el_cycles = 0;
                  el_instructions = 0;
                  el_l3_hits = 0;
                  el_l3_misses = 0;
                  el_packets = 0;
                  el_lat_p50 = 0;
                  el_lat_p90 = 0;
                  el_lat_p99 = 0;
                  el_lat_p999 = 0;
                }
            in
            Hashtbl.add tbl e.Recorder.pr_elem a;
            a
      in
      a :=
        {
          !a with
          el_cycles = !a.el_cycles + e.Recorder.pr_cycles;
          el_instructions = !a.el_instructions + e.Recorder.pr_instructions;
          el_l3_hits = !a.el_l3_hits + e.Recorder.pr_l3_hits;
          el_l3_misses = !a.el_l3_misses + e.Recorder.pr_l3_misses;
          el_packets = !a.el_packets + e.Recorder.pr_packets;
          (* Percentiles don't sum across cores; report the worst core. *)
          el_lat_p50 = max !a.el_lat_p50 e.Recorder.pr_lat_p50;
          el_lat_p90 = max !a.el_lat_p90 e.Recorder.pr_lat_p90;
          el_lat_p99 = max !a.el_lat_p99 e.Recorder.pr_lat_p99;
          el_lat_p999 = max !a.el_lat_p999 e.Recorder.pr_lat_p999;
        })
    entries;
  let rows = Hashtbl.fold (fun _ a acc -> !a :: acc) tbl [] in
  List.sort
    (fun a b -> compare (b.el_cycles, a.el_name) (a.el_cycles, b.el_name))
    rows

let window_cycles_total entries =
  (* One window per (cell, core), however many elements it contains. *)
  List.map
    (fun (e : Recorder.profile_entry) ->
      (e.Recorder.pr_cell, e.Recorder.pr_core, e.Recorder.pr_window_cycles))
    entries
  |> List.sort_uniq compare
  |> List.fold_left (fun acc (_, _, w) -> acc + w) 0

let top ?(k = 10) ~title entries =
  let rows = by_element entries in
  let wtotal = window_cycles_total entries in
  let share c =
    if wtotal = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int wtotal
  in
  let miss_rate hits misses =
    let refs = hits + misses in
    if refs = 0 then 0.0 else 100.0 *. float_of_int misses /. float_of_int refs
  in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "profile top: %s\n" title;
  Printf.bprintf buf
    "window cycles (all cores): %d   elements: %d   entries: %d\n" wtotal
    (List.length rows) (List.length entries);
  Printf.bprintf buf "\ntop %d by cycles:\n" k;
  Printf.bprintf buf "  %-16s %12s %6s %12s %10s %6s %8s %8s %8s\n" "element"
    "cycles" "%win" "instrs" "L3refs" "miss%" "lat.p50" "lat.p99" "p99.9";
  List.iter
    (fun a ->
      Printf.bprintf buf
        "  %-16s %12d %5.1f%% %12d %10d %5.1f%% %8d %8d %8d\n" a.el_name
        a.el_cycles (share a.el_cycles) a.el_instructions
        (a.el_l3_hits + a.el_l3_misses)
        (miss_rate a.el_l3_hits a.el_l3_misses)
        a.el_lat_p50 a.el_lat_p99 a.el_lat_p999)
    (take k rows);
  Printf.bprintf buf "\ntop %d by L3 misses:\n" k;
  Printf.bprintf buf "  %-16s %12s %10s %6s %12s %6s\n" "element" "L3misses"
    "L3refs" "miss%" "cycles" "%win";
  let by_misses =
    List.filter (fun a -> a.el_l3_misses > 0) rows
    |> List.sort (fun a b ->
           compare (b.el_l3_misses, a.el_name) (a.el_l3_misses, b.el_name))
  in
  if by_misses = [] then Buffer.add_string buf "  (no L3 misses recorded)\n"
  else
    List.iter
      (fun a ->
        Printf.bprintf buf "  %-16s %12d %10d %5.1f%% %12d %5.1f%%\n"
          a.el_name a.el_l3_misses
          (a.el_l3_hits + a.el_l3_misses)
          (miss_rate a.el_l3_hits a.el_l3_misses)
          a.el_cycles (share a.el_cycles))
      (take k by_misses);
  Buffer.contents buf
