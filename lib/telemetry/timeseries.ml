type slice = {
  t_start : int;
  t_end : int;
  packets : int;
  instructions : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  l3_misses : int;
  reads : int;
  writes : int;
  lat_p50 : int;
  lat_p99 : int;
}

type t = {
  experiment : string;
  cell : string;
  core : int;
  flow : string;
  freq_hz : float;
  slices : slice list;
}

let l3_refs s = s.l3_hits + s.l3_misses
let cycles s = s.t_end - s.t_start
let seconds t s = float_of_int (cycles s) /. t.freq_hz
let rate t s n = float_of_int n /. seconds t s
let pps t s = rate t s s.packets

let sum_slices t =
  match t.slices with
  | [] -> invalid_arg "Timeseries.sum_slices: empty series"
  | first :: _ ->
      List.fold_left
        (fun acc s ->
          {
            acc with
            t_end = s.t_end;
            packets = acc.packets + s.packets;
            instructions = acc.instructions + s.instructions;
            l1_hits = acc.l1_hits + s.l1_hits;
            l2_hits = acc.l2_hits + s.l2_hits;
            l3_hits = acc.l3_hits + s.l3_hits;
            l3_misses = acc.l3_misses + s.l3_misses;
            reads = acc.reads + s.reads;
            writes = acc.writes + s.writes;
          })
        {
          t_start = first.t_start;
          t_end = first.t_start;
          packets = 0;
          instructions = 0;
          l1_hits = 0;
          l2_hits = 0;
          l3_hits = 0;
          l3_misses = 0;
          reads = 0;
          writes = 0;
          lat_p50 = 0;
          lat_p99 = 0;
        }
        t.slices

(* The record holds only ints, floats, strings and lists thereof, so the
   polymorphic compare is a safe total order. *)
let compare (a : t) (b : t) = Stdlib.compare a b
