(** Attribution profiles: converts {!Ppp_hw.Attrib} accumulators into
    recorder entries and renders the profiler's user-facing exports — the
    folded flamegraph stacks and the [top]-style hot-spot report.

    All exports are keyed by element {e name} and sorted: raw
    {!Ppp_hw.Eid} ids depend on domain scheduling, so rendering by name is
    what makes profile output byte-identical across [--jobs] settings. *)

val entries :
  cell:string ->
  flow:(core:int -> string) ->
  Ppp_hw.Attrib.t ->
  Recorder.profile_entry list
(** One entry per (core, element) pair with nonzero attribution. [flow]
    labels the flow pinned to a core. Sorted by (cell, core, element
    name). *)

val record :
  cell:string -> flow:(core:int -> string) -> Ppp_hw.Attrib.t -> unit
(** [entries] pushed into the global {!Recorder}. *)

val folded_cycles : Recorder.profile_entry list -> string
(** Folded flamegraph stacks — one ["flow;element cycles"] line per stack,
    aggregated over cores and cells, lexicographically sorted. Loadable
    directly by flamegraph.pl / inferno / speedscope. *)

val folded_l3_misses : Recorder.profile_entry list -> string
(** Same stacks weighted by L3 misses instead of cycles (lines with zero
    misses are omitted — folded format has no zero-weight stacks). *)

type element_total = {
  el_name : string;
  el_cycles : int;
  el_instructions : int;
  el_l3_hits : int;
  el_l3_misses : int;
  el_packets : int;
  el_lat_p50 : int;  (** worst core — percentiles don't sum *)
  el_lat_p90 : int;
  el_lat_p99 : int;
  el_lat_p999 : int;
}

val by_element : Recorder.profile_entry list -> element_total list
(** Totals aggregated by element name over all cores and cells, sorted by
    descending cycles then name. Latency percentiles are the maximum over
    the aggregated (cell, core) entries — the worst core's tail. *)

val window_cycles_total : Recorder.profile_entry list -> int
(** Sum of measurement-window lengths over distinct (cell, core) pairs —
    the denominator for the report's "% of window" column. *)

val top : ?k:int -> title:string -> Recorder.profile_entry list -> string
(** The [top]-style report: the [k] (default 10) hottest elements by
    window cycles — with window share, instructions, L3 refs, miss rate
    and latency tail — then the top [k] by L3 misses. Deterministic for a
    fixed seed regardless of job count. *)
