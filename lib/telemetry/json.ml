type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

and t_float = float

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_string ?(minify = false) t =
  let b = Buffer.create 4096 in
  let nl level =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * level) ' ')
    end
  in
  let rec go level t =
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_repr v)
    | Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            nl (level + 1);
            go (level + 1) item)
          items;
        nl level;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            nl (level + 1);
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b (if minify then "\":" else "\": ");
            go (level + 1) v)
          fields;
        nl level;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t ^ "\n"))
