(** Discrete observability events on the simulated clock.

    Where {!Timeseries} carries periodic counter slices, an event marks a
    point in simulated time where an interpretation layer (the contention
    monitor) concluded something: a flow degraded beyond its prediction, a
    hidden aggressor crossed its profiled rate, a throttled flow recovered.
    Events are keyed by simulated cycles, so for a fixed seed and machine
    they are byte-deterministic regardless of job count — they export into
    the deterministic subset of the Chrome trace (instant events) and into
    the manifest's [alerts] section. *)

type t = {
  experiment : string;  (** experiment id, "" for ad-hoc runs *)
  cell : string;  (** cell label, e.g. "monitor/loud" *)
  t_cycles : int;  (** simulated time the event fired (slice end) *)
  core : int;  (** core of the flow the event is about *)
  flow : string;  (** the flow's label *)
  name : string;  (** event kind, e.g. "Hidden_aggressor" *)
  args : (string * Json.t) list;  (** structured payload *)
}

val compare : t -> t -> int
(** Total order on (experiment, cell, t_cycles, core, ...): deterministic
    for a fixed simulation regardless of insertion order. *)

val json : t -> Json.t
(** The event as a JSON object (what [alerts.json] serializes). *)
