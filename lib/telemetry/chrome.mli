(** Chrome trace-event (Perfetto / chrome://tracing) export.

    The trace carries two clearly segregated groups of tracks:

    - {b Simulated time} (deterministic): one process per experiment cell,
      one thread per simulated core, counter events ("C" phase) for L3
      hits+misses per second, packets per second and latency quantiles,
      plus thread-scoped instant events ("i" phase) for monitor alerts.
      Timestamps are {e simulated cycles} (the viewer will label them as
      microseconds; 1 displayed us = 1 cycle).
    - {b Wall clock} (nondeterministic, optional): a single process of
      "X"-phase slices, one thread per OCaml domain, showing runner cells
      and parallel-pool work items with their queue wait.

    With [include_wall_clock:false] the output is a pure function of the
    simulation — that subset is what the golden tests snapshot. *)

val trace :
  ?include_wall_clock:bool ->
  ?events:Event.t list ->
  series:Timeseries.t list ->
  spans:Span.t list ->
  meta:(string * Json.t) list ->
  unit ->
  Json.t
(** [include_wall_clock] defaults to [true]; [events] (default []) become
    simulated-clock instant events. [meta] lands in the trace's
    ["otherData"]; keep it deterministic if the trace is to be snapshotted.
    [series] and [events] should already be in {!Timeseries.compare} /
    {!Event.compare} order (as returned by the {!Recorder}). *)
