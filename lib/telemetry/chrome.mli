(** Chrome trace-event (Perfetto / chrome://tracing) export.

    The trace carries two clearly segregated groups of tracks:

    - {b Simulated time} (deterministic): one process per experiment cell,
      one thread per simulated core, counter events ("C" phase) for L3
      hits+misses per second, packets per second and latency quantiles,
      plus thread-scoped instant events ("i" phase) for monitor alerts and
      complete events ("X" phase) for per-element profile attribution
      (each core's window laid out as one slice per element, spanning its
      attributed cycles). Timestamps are {e simulated cycles} (the viewer
      will label them as microseconds; 1 displayed us = 1 cycle).
    - {b Wall clock} (nondeterministic, optional): a single process of
      "X"-phase slices, one thread per OCaml domain, showing runner cells
      and parallel-pool work items with their queue wait.

    With [include_wall_clock:false] the output is a pure function of the
    simulation — that subset is what the golden tests snapshot. *)

val trace :
  ?include_wall_clock:bool ->
  ?events:Event.t list ->
  ?profile:Recorder.profile_entry list ->
  series:Timeseries.t list ->
  spans:Span.t list ->
  meta:(string * Json.t) list ->
  unit ->
  Json.t
(** [include_wall_clock] defaults to [true]; [events] (default []) become
    simulated-clock instant events; [profile] entries (default []) become
    simulated-clock "X" slices. [meta] lands in the trace's ["otherData"];
    keep it deterministic if the trace is to be snapshotted. [series],
    [events] and [profile] should already be in {!Timeseries.compare} /
    {!Event.compare} / (cell, core, elem) order (as returned by the
    {!Recorder}). *)
