(** Minimal JSON document builder and deterministic serializer.

    The repository deliberately carries no JSON dependency; exporters build
    values of this type and serialize them with a fixed, deterministic
    layout (object keys are emitted in construction order, floats with a
    fixed ["%.6g"] format), so golden tests can diff the output
    byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

and t_float = float

val float_repr : float -> string
(** The serialized form of a float: integral values print without an
    exponent ("42"), other finite values as ["%.6g"], and non-finite values
    as ["null"] (JSON has no inf/nan). *)

val to_string : ?minify:bool -> t -> string
(** Serializes with a 2-space indent and one element per line (stable,
    diff-friendly); [~minify:true] drops all whitespace. *)

val write_file : string -> t -> unit
(** [to_string] plus a trailing newline, written atomically-ish (single
    [output_string]) to [path]. *)
