let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The one shared "make sure this output directory exists" entry point: the
   CLIs' --metrics-dir / --trace / --profile-out all funnel through here. *)
let ensure_dir = mkdir_p

let deterministic_trace ~meta =
  Chrome.trace ~include_wall_clock:false ~events:(Recorder.events ())
    ~profile:(Recorder.profile ()) ~series:(Recorder.series ()) ~spans:[]
    ~meta ()

let write_trace ~path ~meta =
  Json.write_file path
    (Chrome.trace ~events:(Recorder.events ())
       ~profile:(Recorder.profile ()) ~series:(Recorder.series ())
       ~spans:(Recorder.spans ()) ~meta ())

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_metrics_dir ~dir ~run =
  ensure_dir dir;
  let series = Recorder.series () in
  let spans = Recorder.spans () in
  let events = Recorder.events () in
  write_string (Filename.concat dir "series.csv") (Csv.series_csv series);
  write_string (Filename.concat dir "spans.csv") (Csv.spans_csv spans);
  Json.write_file
    (Filename.concat dir "manifest.json")
    (Manifest.json ~events
       ~classifier:(Recorder.classifier ())
       ~traffic:(Recorder.traffic ())
       ~profile:(Recorder.profile ())
       ~run
       ~experiments:(Recorder.experiments ())
       ~series ~spans ())

let write_profile_dir ~dir =
  ensure_dir dir;
  let entries = Recorder.profile () in
  write_string
    (Filename.concat dir "profile_cycles.folded")
    (Profile.folded_cycles entries);
  write_string
    (Filename.concat dir "profile_l3_misses.folded")
    (Profile.folded_l3_misses entries);
  write_string (Filename.concat dir "top.txt")
    (Profile.top ~title:"all cells" entries)

let write_monitor_dir ~dir ~alerts ~timeline_csv =
  ensure_dir dir;
  Json.write_file (Filename.concat dir "alerts.json") alerts;
  write_string (Filename.concat dir "monitor.csv") timeline_csv
