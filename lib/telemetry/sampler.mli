(** Adapter between {!Ppp_hw.Engine}'s sampling probe and {!Timeseries}.

    One sampler instruments one [Engine.run] (one experiment cell). The
    engine is a sequential simulation, so a sampler needs no locking; the
    resulting series are deterministic in content and order. *)

type t

val create : cell:string -> sample_cycles:int -> t

val probe : t -> Ppp_hw.Engine.probe
(** The probe to pass to [Engine.run ?probe]. *)

val series : t -> experiment:string -> freq_hz:float -> Timeseries.t list
(** The collected series, one per sampled core, sorted by core. *)
