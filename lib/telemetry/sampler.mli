(** Adapter between {!Ppp_hw.Engine}'s sampling probe and {!Timeseries}.

    One sampler instruments one [Engine.run] (one experiment cell). The
    engine is a sequential simulation, so a sampler needs no locking; the
    resulting series are deterministic in content and order.

    Slice boundaries live on the simulated clock: the engine delivers a
    core's sample at the first op that carries its local time across the
    slice edge, whatever burst budget ([Engine.run ?batch]) the run uses —
    bursts are bounded by the next pending boundary, so batching never
    moves, merges or drops a sample. *)

type t

val create : cell:string -> sample_cycles:int -> t

val probe : t -> Ppp_hw.Engine.probe
(** The probe to pass to [Engine.run ?probe]. *)

val series : t -> experiment:string -> freq_hz:float -> Timeseries.t list
(** The collected series, one per sampled core, sorted by core. *)
