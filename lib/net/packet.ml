type t = { data : Bytes.t; mutable len : int; mutable buf_addr : int }

let create ?(cap = 1514) len =
  if len < 0 || len > cap then invalid_arg "Packet.create: bad length";
  { data = Bytes.make cap '\000'; len; buf_addr = 0 }

let of_bytes b = { data = b; len = Bytes.length b; buf_addr = 0 }
let copy t = { data = Bytes.copy t.data; len = t.len; buf_addr = t.buf_addr }
let capacity t = Bytes.length t.data

let resize t len =
  if len < 0 || len > capacity t then invalid_arg "Packet.resize";
  t.len <- len

(* Byte accessors keep the bounds check (indices come from arbitrary
   callers) but stay branch-free past it: [v land 0xFF] is already a valid
   char, so [Char.unsafe_chr] replaces the checked, raising [Char.chr]. *)
let[@inline] get8 t i = Char.code (Bytes.get t.data i)
let[@inline] set8 t i v = Bytes.set t.data i (Char.unsafe_chr (v land 0xFF))
let[@inline] get16 t i = (get8 t i lsl 8) lor get8 t (i + 1)

let[@inline] set16 t i v =
  set8 t i (v lsr 8);
  set8 t (i + 1) v

let[@inline] get32 t i = (get16 t i lsl 16) lor get16 t (i + 2)

let[@inline] set32 t i v =
  set16 t i (v lsr 16);
  set16 t (i + 2) v

let blit_string s t pos = Bytes.blit_string s 0 t.data pos (String.length s)
let sub_string t ~pos ~len = Bytes.sub_string t.data pos len
