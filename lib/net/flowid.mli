(** Transport 5-tuples, used as NetFlow keys. *)

type t = { src : int; dst : int; sport : int; dport : int; proto : int }

val of_packet : Packet.t -> t
val hash : t -> int
(** FNV-based stable hash (what the NetFlow element indexes its table by). *)

val hash_of_packet : Packet.t -> int
(** [hash_of_packet p = hash (of_packet p)], allocation-free — for
    per-packet fast paths. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
