type t = { src : int; dst : int; sport : int; dport : int; proto : int }

let of_packet p =
  {
    src = Ipv4.src p;
    dst = Ipv4.dst p;
    sport = Transport.src_port p;
    dport = Transport.dst_port p;
    proto = Ipv4.proto p;
  }

let hash t =
  let open Ppp_util in
  let h = Hashes.fnv1a_int t.src in
  let h = Hashes.combine h (Hashes.fnv1a_int t.dst) in
  let h = Hashes.combine h (Hashes.fnv1a_int ((t.sport lsl 20) lor (t.dport lsl 4) lor t.proto)) in
  h

(* [hash (of_packet p)] without materializing the record — the per-packet
   path of the NetFlow and flow-cache elements. Must stay bit-identical to
   [hash]. *)
let hash_of_packet p =
  let open Ppp_util in
  let h = Hashes.fnv1a_int (Ipv4.src p) in
  let h = Hashes.combine h (Hashes.fnv1a_int (Ipv4.dst p)) in
  Hashes.combine h
    (Hashes.fnv1a_int
       ((Transport.src_port p lsl 20)
       lor (Transport.dst_port p lsl 4)
       lor Ipv4.proto p))

let equal a b =
  a.src = b.src && a.dst = b.dst && a.sport = b.sport && a.dport = b.dport
  && a.proto = b.proto

let compare = Stdlib.compare

let pp fmt t =
  Format.fprintf fmt "%s:%d -> %s:%d (%d)" (Ipv4.addr_to_string t.src) t.sport
    (Ipv4.addr_to_string t.dst) t.dport t.proto
