let ones_sum b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.ones_sum: slice out of bounds";
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  (* The slice is bounds-checked above; per-byte checks add nothing. *)
  while !i + 1 < stop do
    sum :=
      !sum
      + ((Char.code (Bytes.unsafe_get b !i) lsl 8)
        lor Char.code (Bytes.unsafe_get b (!i + 1)));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.unsafe_get b !i) lsl 8);
  (* Fold carries. *)
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  !sum

let checksum b ~pos ~len = lnot (ones_sum b ~pos ~len) land 0xFFFF
let is_valid b ~pos ~len = ones_sum b ~pos ~len = 0xFFFF

let incremental_update ~old_checksum ~old16 ~new16 =
  (* RFC 1624: HC' = ~(~HC + ~m + m') *)
  let sum = (lnot old_checksum land 0xFFFF) + (lnot old16 land 0xFFFF) + new16 in
  let sum = ref sum in
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF
