(* The full benchmark harness:

   Part 1 regenerates every table and figure of the paper (the experiment
   drivers of ppp.experiments), printing the same rows/series the paper
   reports. Part 2 runs Bechamel microbenchmarks of the hot simulator and
   application paths, one per subsystem a table/figure leans on.

   Pass --quick for quarter-length measurement windows, --tables-only to
   skip the (wall-clock, hence nondeterministic) microbenchmarks — with it,
   stdout is byte-identical across --jobs values for a given seed.
   --metrics-dir DIR additionally samples per-core counters during Part 1
   and exports series.csv / spans.csv / manifest.json. *)

open Bechamel
open Toolkit
module Cli = Ppp_util.Cli

let cli =
  Cli.create ~prog:"bench [options]"
    ~summary:
      "Regenerate the paper's tables/figures, run microbenchmarks, or (with \
       --perf-gate) measure the engine hot path and write BENCH_engine.json."

let quick =
  Cli.flag cli [ "--quick" ]
    ~doc:"Quarter-length measurement windows (faster, noisier)."

let tables_only =
  Cli.flag cli [ "--tables-only" ]
    ~doc:
      "Skip the (wall-clock, hence nondeterministic) microbenchmarks; \
       stdout is then byte-identical across --jobs values for a given seed."

let jobs =
  Cli.int cli [ "--jobs"; "-j" ] ~docv:"N"
    ~doc:
      "Worker domains for experiment cells (0 = physical cores). Tables \
       are byte-identical for any value."
    0

let batch =
  Cli.int cli [ "--batch" ] ~docv:"N"
    ~doc:
      "Engine burst budget: trace ops a scheduled core may retire per \
       scheduling decision. Output is byte-identical for any value >= 1."
    Ppp_core.Runner.default_params.Ppp_core.Runner.batch

let metrics_dir =
  Cli.opt_string cli [ "--metrics-dir" ] ~docv:"DIR"
    ~doc:
      "Sample per-core counters during Part 1 and export series.csv / \
       spans.csv / manifest.json into DIR."

let profile_flag =
  Cli.flag cli [ "--profile" ]
    ~doc:
      "Attribute cycles / instructions / L3 events to (core, element) \
       during Part 1. Pure observation — tables are byte-identical either \
       way. With --metrics-dir, the manifest gains a populated profile \
       section and the folded flamegraph stacks + top.txt are written \
       alongside it."

let classifier =
  Cli.string cli [ "--classifier" ] ~docv:"BACKEND"
    ~doc:
      "Slow-path backend for the classifier experiment (tss | range | \
       all). Other experiments ignore it."
    "all"

let traffic =
  Cli.string cli [ "--traffic" ] ~docv:"MODEL"
    ~doc:
      "Source model for the traffic experiment (heavy | onoff | churn | \
       all). Other experiments ignore it."
    "all"

let steering =
  Cli.string cli [ "--steering" ] ~docv:"MODEL"
    ~doc:
      "NIC steering model for the traffic experiment (rss | fdir | all). \
       Other experiments ignore it."
    "all"

let perf_gate_flag =
  Cli.flag cli [ "--perf-gate" ]
    ~doc:
      "Instead of the full harness, run the engine-only perf-gate \
       workloads (solo/contended/probed + hit-path allocation audit) and \
       write the JSON report."

let perf_gate_out =
  Cli.string cli [ "--perf-gate-out" ] ~docv:"FILE"
    ~doc:"Where --perf-gate writes its report." "BENCH_engine.json"

let perf_gate_runs =
  Cli.int cli [ "--perf-gate-runs" ] ~docv:"N"
    ~doc:
      "Repetitions per perf-gate workload; the best (least-interrupted) \
       wall time of the N is reported. 0 = the gate's default (3, or 1 \
       with --quick)."
    0

let () =
  (match Cli.parse cli Sys.argv with
  | [] -> ()
  | a :: _ -> Cli.die cli (Printf.sprintf "unexpected argument %S" a));
  if !jobs < 0 then Cli.die cli "--jobs must be >= 0";
  if !batch < 1 then Cli.die cli "--batch must be >= 1";
  if Ppp_core.Runner.classifier_of_name !classifier = None then
    Cli.die cli
      (Printf.sprintf "unknown --classifier backend %S (tss|range|all)"
         !classifier);
  if Ppp_core.Runner.traffic_of_name !traffic = None then
    Cli.die cli
      (Printf.sprintf "unknown --traffic model %S (heavy|onoff|churn|all)"
         !traffic);
  if Ppp_core.Runner.steering_of_name !steering = None then
    Cli.die cli
      (Printf.sprintf "unknown --steering model %S (rss|fdir|all)" !steering);
  Ppp_core.Parallel.set_jobs !jobs

let quick = !quick
let tables_only = !tables_only
let metrics_dir = !metrics_dir
let batch = !batch

let params =
  let p =
    Ppp_core.Runner.Params.(
      default |> with_batch batch
      |> with_profile !profile_flag
      |> with_classifier
           (Option.get (Ppp_core.Runner.classifier_of_name !classifier))
      |> with_traffic (Option.get (Ppp_core.Runner.traffic_of_name !traffic))
      |> with_steering
           (Option.get (Ppp_core.Runner.steering_of_name !steering)))
  in
  if quick then
    Ppp_core.Runner.Params.with_windows
      ~warmup:(p.Ppp_core.Runner.warmup_cycles / 4)
      ~measure:(p.Ppp_core.Runner.measure_cycles / 4)
      p
  else p

(* --- Part 1: reproduce every table and figure --- *)

let reproduce () =
  print_endline "==========================================================";
  print_endline " Part 1: regenerating every table and figure of the paper";
  print_endline "==========================================================";
  (match metrics_dir with
  | Some _ ->
      Ppp_telemetry.Recorder.configure
        ~sample_cycles:
          (max 1 (params.Ppp_core.Runner.measure_cycles / 20))
        ~spans:true ()
  | None -> ());
  List.iter
    (fun e ->
      Printf.printf "\n=== %s (%s): %s ===\n%!" e.Ppp_experiments.Registry.id
        e.Ppp_experiments.Registry.paper_ref e.Ppp_experiments.Registry.title;
      Ppp_telemetry.Recorder.set_experiment e.Ppp_experiments.Registry.id;
      let t0 = Unix.gettimeofday () in
      print_string
        (e.Ppp_experiments.Registry.run ~params ()).Ppp_experiments.Output.text;
      let wall_s = Unix.gettimeofday () -. t0 in
      Ppp_telemetry.Recorder.set_experiment "";
      Ppp_telemetry.Recorder.record_experiment
        ~id:e.Ppp_experiments.Registry.id
        ~title:e.Ppp_experiments.Registry.title
        ~paper_ref:e.Ppp_experiments.Registry.paper_ref ~wall_s;
      (* Wall-clock goes to stderr (and the manifest) so stdout is
         byte-identical across job counts, seeds being equal. *)
      Printf.eprintf "[%s: %.1fs]\n%!" e.Ppp_experiments.Registry.id wall_s)
    Ppp_experiments.Registry.all;
  match metrics_dir with
  | Some dir ->
      Ppp_telemetry.Export.write_metrics_dir ~dir
        ~run:
          {
            Ppp_telemetry.Manifest.tool = "bench";
            machine =
              params.Ppp_core.Runner.config.Ppp_hw.Machine.name;
            seed = params.Ppp_core.Runner.seed;
            warmup_cycles = params.Ppp_core.Runner.warmup_cycles;
            measure_cycles = params.Ppp_core.Runner.measure_cycles;
            jobs_configured = Ppp_core.Parallel.configured_jobs ();
            jobs_effective = Ppp_core.Parallel.jobs ();
            sample_cycles = Ppp_telemetry.Recorder.sampling ();
          };
      Printf.eprintf "wrote series.csv, spans.csv, manifest.json to %s/\n%!"
        dir;
      if !profile_flag then begin
        Ppp_telemetry.Export.write_profile_dir ~dir;
        Printf.eprintf
          "wrote profile_cycles.folded, profile_l3_misses.folded, top.txt \
           to %s/\n\
           %!"
          dir
      end
  | None -> ()

(* --- Part 2: microbenchmarks of the paths each experiment exercises --- *)

let heap () = Ppp_simmem.Heap.create ~node:0

(* table1/fig2/fig4...: everything runs through Hierarchy.access. *)
let bench_cache_access =
  let hier = Ppp_hw.Machine.build Ppp_hw.Machine.scaled in
  let rng = Ppp_util.Rng.create ~seed:1 in
  let now = ref 0 in
  Test.make ~name:"hierarchy_access"
    (Staged.stage (fun () ->
         now := !now + 10;
         Ppp_hw.Hierarchy.access hier ~core:0 ~write:false ~fn:Ppp_hw.Fn.none
           ~addr:(Ppp_util.Rng.int rng 65536 * 64)
           ~now:!now))

(* table1 row IP / fig2 column IP: trie lookups. *)
let bench_trie_lookup =
  let h = heap () in
  let pool = Ppp_apps.Route_pool.make ~seed:3 ~n16:64 ~routes:4096 in
  let trie =
    Ppp_apps.Radix_trie.create ~heap:h
      ~max_nodes:(Ppp_apps.Route_pool.suggested_max_nodes ~n16:64 ~routes:4096)
      ~default_hop:0 ()
  in
  let () = Ppp_apps.Route_pool.install pool trie in
  let rng = Ppp_util.Rng.create ~seed:4 in
  Test.make ~name:"radix_trie_lookup"
    (Staged.stage (fun () ->
         Ppp_apps.Radix_trie.lookup_quiet trie
           (Ppp_apps.Route_pool.random_dst pool rng)))

(* table1 row MON: flow-table updates. *)
let bench_netflow_update =
  let h = heap () in
  let nf = Ppp_apps.Netflow.create ~heap:h ~entries:4096 in
  let b = Ppp_hw.Trace.Builder.create () in
  let rng = Ppp_util.Rng.create ~seed:5 in
  let pkt = Ppp_net.Packet.create 64 in
  Test.make ~name:"netflow_update"
    (Staged.stage (fun () ->
         Ppp_hw.Trace.Builder.clear b;
         Ppp_traffic.Gen.fill_ipv4_udp pkt
           ~src:(Ppp_util.Rng.int rng 0xFFFFFF)
           ~dst:0x0A000001
           ~sport:(Ppp_util.Rng.int rng 60000)
           ~dport:80 ~wire_len:64;
         Ppp_apps.Netflow.update nf b ~fn:Ppp_hw.Fn.none pkt ~now:0))

(* table1 row VPN: AES block encryption. *)
let bench_aes_block =
  let key = Ppp_apps.Aes.expand_key "0123456789abcdef" in
  let block = Bytes.make 16 'x' in
  Test.make ~name:"aes128_block"
    (Staged.stage (fun () -> Ppp_apps.Aes.encrypt_block key block ~src:0 ~dst:0))

(* table1 row RE: redundancy-elimination encode. *)
let bench_re_encode =
  let h = heap () in
  let re = Ppp_apps.Re.create ~heap:h ~store_bytes:262144 ~table_entries:8192 () in
  let b = Ppp_hw.Trace.Builder.create () in
  let rng = Ppp_util.Rng.create ~seed:6 in
  let payload = Bytes.make 512 '\000' in
  let out = Bytes.make 2048 '\000' in
  Test.make ~name:"re_encode_512B"
    (Staged.stage (fun () ->
         Ppp_hw.Trace.Builder.clear b;
         if Ppp_util.Rng.bool rng then Ppp_util.Rng.fill_bytes rng payload;
         ignore
           (Ppp_apps.Re.encode re b ~fn:Ppp_hw.Fn.none payload ~pos:0 ~len:512
              ~out
             : int)))

(* fig2/fig8/fig10: whole-packet simulation rate for an IP flow. *)
let bench_engine_packet =
  let hier = Ppp_hw.Machine.build Ppp_hw.Machine.scaled in
  let h = heap () in
  let rng = Ppp_util.Rng.create ~seed:7 in
  let flow =
    Ppp_apps.App.flow Ppp_apps.App.IP ~heap:h ~rng
      ~scale:Ppp_hw.Machine.scaled.Ppp_hw.Machine.scale ()
  in
  let source = Ppp_click.Flow.source flow in
  let now = ref 0 in
  Test.make ~name:"simulate_ip_packet"
    (Staged.stage (fun () ->
         now := !now + 1000;
         match source !now with
         | Ppp_hw.Engine.Packet t
         | Ppp_hw.Engine.Idle t
         | Ppp_hw.Engine.Reordered t ->
             for i = 0 to Ppp_hw.Trace.length t - 1 do
               match Ppp_hw.Trace.kind t i with
               | Ppp_hw.Trace.Read | Ppp_hw.Trace.Write ->
                   ignore
                     (Ppp_hw.Hierarchy.access hier ~core:0
                        ~write:(Ppp_hw.Trace.kind t i = Ppp_hw.Trace.Write)
                        ~fn:(Ppp_hw.Trace.fn t i)
                        ~addr:(Ppp_hw.Trace.payload t i)
                        ~now:!now
                       : int)
               | Ppp_hw.Trace.Dma ->
                   Ppp_hw.Hierarchy.dma_write hier
                     ~addr:(Ppp_hw.Trace.payload t i) ~now:!now
               | Ppp_hw.Trace.Compute | Ppp_hw.Trace.Stall -> ()
             done))

(* lookup-algorithm baseline: binary trie walks ~3x more nodes. *)
let bench_binary_trie =
  let h = heap () in
  let pool = Ppp_apps.Route_pool.make ~seed:3 ~n16:64 ~routes:4096 in
  let trie = Ppp_apps.Binary_trie.create ~heap:h ~max_nodes:131072 ~default_hop:0 () in
  let () =
    Array.iter
      (fun (prefix, plen, hop) ->
        Ppp_apps.Binary_trie.add_route trie ~prefix ~plen ~hop)
      (Ppp_apps.Route_pool.routes pool)
  in
  let rng = Ppp_util.Rng.create ~seed:8 in
  Test.make ~name:"binary_trie_lookup"
    (Staged.stage (fun () ->
         Ppp_apps.Binary_trie.lookup_quiet trie
           (Ppp_apps.Route_pool.random_dst pool rng)))

(* DPI: Aho-Corasick scan of a 512B payload. *)
let bench_dpi_scan =
  let h = heap () in
  let prng = Ppp_util.Rng.create ~seed:9 in
  let patterns =
    List.init 32 (fun _ ->
        String.init (8 + Ppp_util.Rng.int prng 8) (fun _ ->
            Char.chr (1 + Ppp_util.Rng.int prng 255)))
  in
  let dpi = Ppp_apps.Dpi.create ~heap:h patterns in
  let payload = Bytes.create 512 in
  let rng = Ppp_util.Rng.create ~seed:10 in
  Test.make ~name:"dpi_scan_512B"
    (Staged.stage (fun () ->
         Ppp_util.Rng.fill_bytes rng payload;
         Ppp_apps.Dpi.scan_quiet dpi payload ~pos:0 ~len:512))

(* authenticated VPN: HMAC-SHA256 of a 512B payload. *)
let bench_hmac =
  let payload = Bytes.make 512 'q' in
  Test.make ~name:"hmac_sha256_512B"
    (Staged.stage (fun () ->
         Ppp_apps.Sha256.hmac ~key:"0123456789abcdef" payload ~pos:0 ~len:512))

(* fig7 / appendix A: the analytic model evaluation. *)
let bench_cache_model =
  let rc = ref 0.0 in
  Test.make ~name:"cache_model_eval"
    (Staged.stage (fun () ->
         rc := !rc +. 1e5;
         if !rc > 3e8 then rc := 0.0;
         Ppp_core.Cache_model.conversion_rate ~cache_lines:24576 ~chunks:30000
           ~target_hits_per_sec:1e7 ~competing_refs_per_sec:!rc))

let microbenchmarks () =
  print_endline "";
  print_endline "==========================================================";
  print_endline " Part 2: microbenchmarks of the hot simulator paths";
  print_endline "==========================================================";
  let tests =
    [
      bench_cache_access;
      bench_trie_lookup;
      bench_netflow_update;
      bench_aes_block;
      bench_re_encode;
      bench_binary_trie;
      bench_dpi_scan;
      bench_hmac;
      bench_engine_packet;
      bench_cache_model;
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~stabilize:true ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let t =
    Ppp_util.Table.create ~title:"nanoseconds per operation (OLS estimate)"
      [ "benchmark"; "ns/op"; "r^2" ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:true
              ~responder:(Measure.label Instance.monotonic_clock)
              ~predictors:[| Measure.run |]
              raw.Benchmark.lr
          in
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | _ -> "?"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "?"
          in
          Ppp_util.Table.add_row t [ Test.Elt.name elt; estimate; r2 ])
        (Test.elements test))
    tests;
  Ppp_util.Table.print t

(* --- Perf gate: engine-only workloads, written to BENCH_engine.json --- *)

let perf_gate () =
  let out = !perf_gate_out in
  let report =
    match !perf_gate_runs with
    | n when n > 0 -> Ppp_core.Perf_gate.run ~quick ~runs:n ~batch ()
    | _ -> Ppp_core.Perf_gate.run ~quick ~batch ()
  in
  Ppp_telemetry.Json.write_file out (Ppp_core.Perf_gate.to_json report);
  List.iter
    (fun (m : Ppp_core.Perf_gate.measurement) ->
      Printf.printf "%-10s %d flows  %.3fs  %d ops  %.3e ops/s  %.2f B/op\n"
        m.Ppp_core.Perf_gate.name m.Ppp_core.Perf_gate.flows
        m.Ppp_core.Perf_gate.wall_s m.Ppp_core.Perf_gate.engine_ops
        m.Ppp_core.Perf_gate.ops_per_sec
        m.Ppp_core.Perf_gate.allocated_bytes_per_op)
    report.Ppp_core.Perf_gate.workloads;
  let h = report.Ppp_core.Perf_gate.hit in
  Printf.printf "hit-path   %d accesses  %.0f bytes  %.4f B/access  zero_alloc=%b\n"
    h.Ppp_core.Perf_gate.accesses h.Ppp_core.Perf_gate.allocated_bytes
    h.Ppp_core.Perf_gate.bytes_per_access h.Ppp_core.Perf_gate.zero_alloc;
  let ft = report.Ppp_core.Perf_gate.flow_table in
  Printf.printf
    "flow-table %d lookups  %.0f%% hits  %.3e lookups/s  %.4f B/lookup  \
     zero_alloc=%b\n"
    ft.Ppp_core.Perf_gate.lookups
    (100.0 *. ft.Ppp_core.Perf_gate.hit_fraction)
    ft.Ppp_core.Perf_gate.lookups_per_sec
    ft.Ppp_core.Perf_gate.bytes_per_lookup
    ft.Ppp_core.Perf_gate.ft_zero_alloc;
  let sf = report.Ppp_core.Perf_gate.source_fill in
  Printf.printf
    "source-fill %d fills  %.3e fills/s  %.4f B/fill  zero_alloc=%b\n"
    sf.Ppp_core.Perf_gate.fills sf.Ppp_core.Perf_gate.fills_per_sec
    sf.Ppp_core.Perf_gate.bytes_per_fill sf.Ppp_core.Perf_gate.sf_zero_alloc;
  Printf.printf "wrote %s\n%!" out

let () =
  if !perf_gate_flag then perf_gate ()
  else begin
    reproduce ();
    if not tables_only then microbenchmarks ()
  end
