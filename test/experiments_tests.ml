(* Integration smoke tests for the experiment drivers, on short windows of
   the scaled machine (tiny is too small for meaningful app behavior, but
   these only assert structure and invariants, not magnitudes). *)

open Ppp_core
open Ppp_experiments

let fast =
  Runner.Params.(
    default |> with_windows ~warmup:400_000 ~measure:1_200_000)

let fast_levels =
  [ { Ppp_apps.App.reads = 8; instrs = 4000 }; { reads = 128; instrs = 0 } ]

let test_registry_complete () =
  let ids = Registry.ids () in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " present") true (List.mem id ids))
    [ "table1"; "fig2"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
      "fig10"; "pipeline"; "throttle"; "flowcache"; "classifier" ];
  Alcotest.(check bool) "find works" true (Registry.find "fig2" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "bogus" = None)

let test_table1_structure () =
  let profiles = Table1_exp.profiles ~params:fast () in
  Alcotest.(check int) "six rows" 6 (List.length profiles);
  List.iter
    (fun (p : Profile.t) ->
      Alcotest.(check bool) "positive throughput" true (p.Profile.throughput_pps > 0.0))
    profiles

let test_fig2_pairs_and_averages () =
  let data = Fig2_exp.measure ~params:fast () in
  Alcotest.(check int) "25 pairs" 25 (List.length data.Fig2_exp.pairs);
  Alcotest.(check int) "5 averages" 5 (List.length data.Fig2_exp.averages);
  (* FW must be the least sensitive target. *)
  let avg k = List.assoc k data.Fig2_exp.averages in
  Alcotest.(check bool) "MON most sensitive" true
    (avg Ppp_apps.App.MON >= avg Ppp_apps.App.FW)

let test_fig6_bound_holds () =
  let data = Fig6_exp.measure ~params:fast () in
  List.iter
    (fun (_, h, d) ->
      Alcotest.(check bool) "bound in [0,1)" true (d >= 0.0 && d < 1.0);
      Alcotest.(check bool) "hits nonnegative" true (h >= 0.0))
    data.Fig6_exp.app_points;
  (* Curves must be nondecreasing in hits/sec. *)
  let rec check_rows = function
    | (h1, d1) :: ((h2, d2) :: _ as rest) ->
        Alcotest.(check bool) "x increasing" true (h2 > h1);
        List.iter2
          (fun a b -> Alcotest.(check bool) "drop nondecreasing" true (b >= a))
          d1 d2;
        check_rows rest
    | _ -> ()
  in
  check_rows data.Fig6_exp.curve_samples

let test_fig5_deviation_bounded () =
  (* Structural check on a very small configuration: the realistic points
     must come with curve values, and the deviation metric must be the max. *)
  let params = { fast with Runner.measure_cycles = 800_000 } in
  let data = Fig5_exp.measure ~params () in
  Alcotest.(check int) "25 checks" 25 (List.length data.Fig5_exp.checks);
  let dev = Fig5_exp.max_deviation data in
  List.iter
    (fun c ->
      Alcotest.(check bool) "max is max" true
        (Float.abs (c.Fig5_exp.measured_drop -. c.Fig5_exp.curve_drop) <= dev +. 1e-12))
    data.Fig5_exp.checks

let test_fig9_errors_defined () =
  let data = Fig9_exp.measure ~params:fast () in
  Alcotest.(check int) "six flows" 6 (List.length data.Fig9_exp.flows);
  Alcotest.(check bool) "max error is bound" true
    (List.for_all
       (fun f ->
         Float.abs (f.Fig9_exp.predicted_drop -. f.Fig9_exp.measured_drop)
         <= data.Fig9_exp.max_error +. 1e-12)
       data.Fig9_exp.flows)

let test_fig10_combos () =
  let params = fast in
  let combos = [ Ppp_apps.App.[ (MON, 6); (FW, 6) ] ] in
  let data = Fig10_exp.measure ~params ~combos () in
  Alcotest.(check int) "one combo" 1 (List.length data.Fig10_exp.combos);
  let c = List.hd data.Fig10_exp.combos in
  Alcotest.(check bool) "best <= worst" true
    (c.Fig10_exp.best.Scheduler.avg_drop
    <= c.Fig10_exp.worst.Scheduler.avg_drop)

let test_pipeline_shapes () =
  let data = Pipeline_exp.measure ~params:fast () in
  Alcotest.(check bool) "parallel IP more efficient per core" true
    (data.Pipeline_exp.ip_parallel.Pipeline_exp.per_core_pps
    > data.Pipeline_exp.ip_pipeline.Pipeline_exp.per_core_pps);
  Alcotest.(check bool) "pipelining costs extra cache refs" true
    (data.Pipeline_exp.extra_refs_per_packet > 0.0);
  Alcotest.(check bool) "contrived workload prefers pipeline" true
    (data.Pipeline_exp.syn_pipeline.Pipeline_exp.per_core_pps
    > data.Pipeline_exp.syn_parallel.Pipeline_exp.per_core_pps)

let test_throttle_contains () =
  let data = Throttle_exp.measure ~params:fast () in
  Alcotest.(check bool) "attack hurts the victim" true
    (data.Throttle_exp.victim_with_loud_pps
    < data.Throttle_exp.victim_with_tame_pps);
  Alcotest.(check bool) "throttling restores the victim" true
    (data.Throttle_exp.victim_with_throttled_pps
    > data.Throttle_exp.victim_with_loud_pps);
  Alcotest.(check bool) "attacker rate within budget" true
    (data.Throttle_exp.attacker_throttled_refs
    <= data.Throttle_exp.attacker_refs_budget *. 1.05)

let test_classifier_structure () =
  (* "all" sweeps 2 backends x 2 rule sizes x 2 skews = 8 cells, and within
     each (backend, rules) pair the Zipf-skewed traffic must cache at least
     as well as the uniform traffic. *)
  let data = Classifier_exp.measure ~params:fast () in
  let cells = data.Classifier_exp.cells in
  Alcotest.(check int) "eight cells" 8 (List.length cells);
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b ^ " backend present") true
        (List.exists (fun c -> c.Classifier_exp.backend = b) cells))
    [ "tss"; "range" ];
  List.iter
    (fun (c : Classifier_exp.cell) ->
      Alcotest.(check bool) "hit rate in [0,1]" true
        (c.Classifier_exp.hit_rate >= 0.0 && c.Classifier_exp.hit_rate <= 1.0);
      Alcotest.(check bool) "upcall rate nonnegative" true
        (c.Classifier_exp.upcalls_per_packet >= 0.0);
      Alcotest.(check bool) "positive solo throughput" true
        (c.Classifier_exp.solo_pps > 0.0))
    cells;
  List.iter
    (fun (c : Classifier_exp.cell) ->
      if c.Classifier_exp.skew > 1.0 then
        let uniform =
          List.find
            (fun (u : Classifier_exp.cell) ->
              u.Classifier_exp.backend = c.Classifier_exp.backend
              && u.Classifier_exp.rules = c.Classifier_exp.rules
              && u.Classifier_exp.skew = 0.0)
            cells
        in
        Alcotest.(check bool) "skewed traffic hits at least as often" true
          (c.Classifier_exp.hit_rate >= uniform.Classifier_exp.hit_rate))
    cells;
  (* Backend selection: single-backend params halve the sweep; unknown
     backend names never reach the experiment — parsing rejects them. *)
  let tss_only = Runner.Params.with_classifier Runner.Tss fast in
  Alcotest.(check int) "tss-only selects one backend" 1
    (List.length (Classifier_exp.backends ~params:tss_only));
  Alcotest.(check bool) "unknown backend name rejected at parse" true
    (Runner.classifier_of_name "bogus" = None);
  Alcotest.(check bool) "known names parse" true
    (Runner.classifier_of_name "tss" = Some Runner.Tss
    && Runner.classifier_of_name "range" = Some Runner.Range
    && Runner.classifier_of_name "all" = Some Runner.All_backends)

let test_fig4_monotone_cache_curves () =
  let data =
    Fig4_exp.measure ~params:fast ~levels:fast_levels
      ~targets:[ Ppp_apps.App.MON ] ()
  in
  List.iter
    (fun (resource, curves) ->
      List.iter
        (fun (c : Sensitivity.curve) ->
          let drops = List.map (fun p -> p.Sensitivity.drop) c.Sensitivity.points in
          List.iter
            (fun d -> Alcotest.(check bool) "drop sane" true (d > -0.05 && d < 1.0))
            drops;
          if resource = Sensitivity.Cache_only || resource = Sensitivity.Both
          then
            (* More competition should not massively help the target. *)
            let last = List.nth drops (List.length drops - 1) in
            Alcotest.(check bool) "aggressive SYN hurts" true (last > 0.0))
        curves)
    data

let test_fig7_conversion_bounds () =
  let params = fast in
  let data = Fig7_exp.measure ~params () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "measured in [0,1]" true
        (r.Fig7_exp.measured >= 0.0 && r.Fig7_exp.measured <= 1.0);
      Alcotest.(check bool) "model in [0,1]" true
        (r.Fig7_exp.model >= 0.0 && r.Fig7_exp.model <= 1.0);
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "per-fn in [0,1]" true (v >= 0.0 && v <= 1.0))
        r.Fig7_exp.per_fn)
    data.Fig7_exp.rows

let test_fig8_quick_errors_structurally_sound () =
  (* Use only two kinds to keep this quick: the invariants are structural. *)
  let params = fast in
  let p = Predictor.build ~params ~levels:fast_levels ~targets:[ Ppp_apps.App.FW ] () in
  let drop = Predictor.predict_drop p ~target:Ppp_apps.App.FW ~competitors:[ Ppp_apps.App.FW ] in
  Alcotest.(check bool) "drop in [0,1)" true (drop >= 0.0 && drop < 1.0)

let tests =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "table1 structure" `Slow test_table1_structure;
    Alcotest.test_case "fig2 pairs/averages" `Slow test_fig2_pairs_and_averages;
    Alcotest.test_case "fig4 curves sane" `Slow test_fig4_monotone_cache_curves;
    Alcotest.test_case "fig5 deviations" `Slow test_fig5_deviation_bounded;
    Alcotest.test_case "fig6 bound" `Slow test_fig6_bound_holds;
    Alcotest.test_case "fig7 conversion bounds" `Slow test_fig7_conversion_bounds;
    Alcotest.test_case "fig8 quick prediction" `Slow test_fig8_quick_errors_structurally_sound;
    Alcotest.test_case "fig9 mixed workload" `Slow test_fig9_errors_defined;
    Alcotest.test_case "fig10 combos" `Slow test_fig10_combos;
    Alcotest.test_case "pipeline shapes" `Slow test_pipeline_shapes;
    Alcotest.test_case "throttle contains" `Slow test_throttle_contains;
    Alcotest.test_case "classifier structure" `Slow test_classifier_structure;
  ]
