open Ppp_hw

let geo size ways = { Cache.size_bytes = size; ways; line_bytes = 64 }

(* --- Cache --- *)

(* The two-step victim_slot/fill protocol, folded back into the old
   insert-returning-the-eviction shape the tests are written against. *)
let insert ?(dirty = false) ?(aux = 0) c line =
  let s = Cache.victim_slot c line in
  let victim =
    if Cache.slot_valid c s then
      Some (Cache.line c s, Cache.dirty c s, Cache.aux c s)
    else None
  in
  Cache.fill c ~slot:s ~dirty ~aux line;
  victim

(* Old-style invalidate returning the line's final (dirty, aux) state. *)
let invalidate c line =
  let s = Cache.probe c line in
  if s < 0 then None
  else begin
    let d = Cache.dirty c s and a = Cache.aux c s in
    Cache.invalidate_slot c s;
    Some (d, a)
  end

let test_cache_geometry () =
  let c = Cache.create (geo 4096 4) in
  Alcotest.(check int) "sets" 16 (Cache.sets c);
  Alcotest.(check int) "lines" 64 (Cache.lines c);
  Alcotest.(check int) "line_of_addr" 2 (Cache.line_of_addr c 130)

let test_cache_bad_geometry () =
  Alcotest.check_raises "non-pow2 sets"
    (Invalid_argument "Cache.create: set count must be a power of two")
    (fun () -> ignore (Cache.create (geo (3 * 64 * 4) 4)))

let test_cache_miss_then_hit () =
  let c = Cache.create (geo 4096 4) in
  Alcotest.(check int) "initially absent" Cache.none (Cache.find c 5);
  ignore (insert c 5);
  Alcotest.(check bool) "present" true (Cache.find c 5 >= 0)

let test_cache_lru_eviction () =
  let c = Cache.create (geo (4 * 64) 4) in
  (* one set of 4 ways: lines mapping to set 0 are multiples of 1 (nsets=1) *)
  for line = 0 to 3 do
    ignore (insert c line)
  done;
  (* Touch 0 so line 1 becomes LRU. *)
  ignore (Cache.find c 0);
  match insert c 10 with
  | Some (victim_line, _, _) ->
      Alcotest.(check int) "evicts LRU (1)" 1 victim_line
  | None -> Alcotest.fail "expected an eviction"

let test_cache_insert_prefers_invalid_way () =
  let c = Cache.create (geo (4 * 64) 4) in
  for line = 0 to 3 do
    ignore (insert c line)
  done;
  ignore (invalidate c 2);
  Alcotest.(check bool) "no eviction when a way is free" true
    (insert c 7 = None);
  Alcotest.(check bool) "old lines still resident" true
    (Cache.resident c 0 && Cache.resident c 1 && Cache.resident c 3)

let test_cache_dirty_writeback_state () =
  let c = Cache.create (geo (2 * 64) 2) in
  ignore (insert c ~dirty:true 1);
  (match invalidate c 1 with
  | Some (dirty, _) -> Alcotest.(check bool) "was dirty" true dirty
  | None -> Alcotest.fail "line missing");
  Alcotest.(check bool) "gone" false (Cache.resident c 1)

let test_cache_aux_roundtrip () =
  let c = Cache.create (geo 4096 4) in
  ignore (insert c ~aux:42 9);
  let slot = Cache.find c 9 in
  if slot < 0 then Alcotest.fail "line missing";
  Alcotest.(check int) "aux" 42 (Cache.aux c slot);
  Cache.set_aux c slot 7;
  Alcotest.(check int) "aux updated" 7 (Cache.aux c slot)

let test_cache_double_insert_rejected () =
  let c = Cache.create (geo 4096 4) in
  ignore (insert c 3);
  Alcotest.check_raises "double insert"
    (Invalid_argument "Cache.victim_slot: line already resident") (fun () ->
      ignore (insert c 3))

let test_cache_occupancy_bounded () =
  let c = Cache.create (geo 4096 4) in
  for line = 0 to 499 do
    if not (Cache.resident c line) then ignore (insert c line)
  done;
  Alcotest.(check bool) "occupancy <= capacity" true
    (Cache.occupancy c <= Cache.lines c)

let test_cache_fold_resident () =
  let c = Cache.create (geo 4096 4) in
  ignore (insert c ~dirty:true ~aux:3 1);
  ignore (insert c 2);
  let count, dirty_count, aux_sum =
    Cache.fold_resident c ~init:(0, 0, 0)
      (fun (n, d, a) _line ~dirty ~aux ->
        ((n + 1), (d + if dirty then 1 else 0), a + aux))
  in
  Alcotest.(check int) "resident lines" 2 count;
  Alcotest.(check int) "dirty lines" 1 dirty_count;
  Alcotest.(check int) "aux sum" 3 aux_sum

let prop_cache_occupancy_invariant =
  QCheck.Test.make ~count:100 ~name:"cache occupancy never exceeds capacity"
    QCheck.(list_of_size Gen.(int_range 1 500) (int_bound 1000))
    (fun lines ->
      let c = Cache.create (geo 1024 2) in
      List.iter
        (fun line -> if not (Cache.resident c line) then ignore (insert c line))
        lines;
      Cache.occupancy c <= Cache.lines c)

let prop_cache_find_after_insert =
  QCheck.Test.make ~count:100 ~name:"inserted line findable until evicted"
    QCheck.(int_bound 100_000)
    (fun line ->
      let c = Cache.create (geo 4096 8) in
      ignore (insert c line);
      Cache.resident c line)

(* --- Topology --- *)

let test_topology_mapping () =
  let t = Topology.create ~sockets:2 ~cores_per_socket:6 in
  Alcotest.(check int) "cores" 12 (Topology.cores t);
  Alcotest.(check int) "socket of core 7" 1 (Topology.socket_of_core t 7);
  Alcotest.(check int) "local index of core 7" 1 (Topology.local_index t 7)

let test_topology_address_map () =
  Alcotest.(check int) "node of low addr" 0 (Topology.node_of_addr 12345);
  let base1 = Topology.node_base 1 in
  Alcotest.(check int) "node of node1 addr" 1 (Topology.node_of_addr (base1 + 99))

(* --- Memctrl --- *)

let test_memctrl_no_wait_when_idle () =
  let mc = Memctrl.create ~service_cycles:10 in
  Alcotest.(check int) "idle wait" 0 (Memctrl.demand_access mc ~now:100)

let test_memctrl_queueing () =
  let mc = Memctrl.create ~service_cycles:10 in
  ignore (Memctrl.demand_access mc ~now:0);
  Alcotest.(check int) "second waits" 10 (Memctrl.demand_access mc ~now:0);
  Alcotest.(check int) "third waits more" 20 (Memctrl.demand_access mc ~now:0)

let test_memctrl_drains () =
  let mc = Memctrl.create ~service_cycles:10 in
  ignore (Memctrl.demand_access mc ~now:0);
  Alcotest.(check int) "later request free" 0 (Memctrl.demand_access mc ~now:1000)

let test_memctrl_writeback_occupies () =
  let mc = Memctrl.create ~service_cycles:10 in
  Memctrl.writeback mc ~now:0;
  Alcotest.(check int) "demand queues behind writeback" 10
    (Memctrl.demand_access mc ~now:0);
  Alcotest.(check int) "transactions" 2 (Memctrl.transactions mc)

(* --- Trace --- *)

let test_trace_roundtrip () =
  let b = Trace.Builder.create () in
  let fn = Fn.register "test_fn" in
  Trace.Builder.compute b ~fn 100;
  Trace.Builder.read b ~fn 0x1234C0;
  Trace.Builder.write b ~fn 0x999940;
  Trace.Builder.stall b 7;
  Trace.Builder.dma b 0x40;
  let t = Trace.Builder.finish b in
  Alcotest.(check int) "length" 5 (Trace.length t);
  Alcotest.(check bool) "kinds" true
    (Trace.kind t 0 = Trace.Compute && Trace.kind t 1 = Trace.Read
    && Trace.kind t 2 = Trace.Write && Trace.kind t 3 = Trace.Stall
    && Trace.kind t 4 = Trace.Dma);
  Alcotest.(check int) "compute payload" 100 (Trace.payload t 0);
  Alcotest.(check int) "read addr" 0x1234C0 (Trace.payload t 1);
  Alcotest.(check int) "fn preserved" fn (Trace.fn t 1);
  Alcotest.(check int) "mem refs" 2 (Trace.mem_refs t);
  Alcotest.(check int) "instructions" 102 (Trace.instructions t)

let test_trace_builder_reuse () =
  let b = Trace.Builder.create ~initial_capacity:2 () in
  let fn = Fn.none in
  for i = 1 to 100 do
    Trace.Builder.read b ~fn (i * 64)
  done;
  Alcotest.(check int) "grows" 100 (Trace.Builder.length b);
  Trace.Builder.clear b;
  Alcotest.(check int) "cleared" 0 (Trace.Builder.length b)

let test_trace_zero_compute_dropped () =
  let b = Trace.Builder.create () in
  Trace.Builder.compute b ~fn:Fn.none 0;
  Alcotest.(check int) "no-op compute skipped" 0 (Trace.Builder.length b)

(* --- Fn --- *)

let test_fn_registry () =
  let a = Fn.register "fn_test_alpha" in
  let a' = Fn.register "fn_test_alpha" in
  Alcotest.(check int) "idempotent" a a';
  Alcotest.(check string) "name" "fn_test_alpha" (Fn.name a)

(* --- Counters --- *)

let test_counters_diff () =
  let c = Counters.create () in
  let fn = Fn.register "ctr_fn" in
  Counters.add_l3_hit c fn;
  Counters.add_l3_miss c fn;
  let snap = Counters.copy c in
  Counters.add_l3_hit c fn;
  Counters.add_packet c;
  let d = Counters.diff c snap in
  Alcotest.(check int) "window hits" 1 (Counters.l3_hits d);
  Alcotest.(check int) "window misses" 0 (Counters.l3_misses d);
  Alcotest.(check int) "window packets" 1 (Counters.packets d);
  Alcotest.(check int) "fn refs tracked" 1 (Counters.fn_l3_hits d fn)

(* --- Hierarchy --- *)

let tiny_hier () =
  let topo = Topology.create ~sockets:2 ~cores_per_socket:2 in
  Hierarchy.create topo Costs.default
    { Hierarchy.l1 = geo 1024 2; l2 = geo 4096 4; l3 = geo 65536 8 }

let test_hierarchy_miss_then_hits () =
  let h = tiny_hier () in
  let addr = 0x1000 in
  let lat1 = Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:0 in
  let lat2 = Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:500 in
  Alcotest.(check bool) "first access slower" true (lat1 > lat2);
  Alcotest.(check int) "second is L1 hit" Costs.default.Costs.l1_lat lat2;
  let c = Hierarchy.counters h 0 in
  Alcotest.(check int) "one miss" 1 (Counters.l3_misses c);
  Alcotest.(check int) "one l1 hit" 1 (Counters.l1_hits c)

let test_hierarchy_l3_shared_within_socket () =
  let h = tiny_hier () in
  let addr = 0x2000 in
  ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:0);
  (* Core 1 (same socket) should hit in L3. *)
  ignore (Hierarchy.access h ~core:1 ~write:false ~fn:Fn.none ~addr ~now:100);
  let c1 = Hierarchy.counters h 1 in
  Alcotest.(check int) "l3 hit for peer core" 1 (Counters.l3_hits c1);
  Alcotest.(check int) "no miss for peer core" 0 (Counters.l3_misses c1)

let test_hierarchy_l3_not_shared_across_sockets () =
  let h = tiny_hier () in
  let addr = 0x3000 in
  ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:0);
  (* Core 2 is on the other socket: its own L3 misses. *)
  ignore (Hierarchy.access h ~core:2 ~write:false ~fn:Fn.none ~addr ~now:100);
  let c2 = Hierarchy.counters h 2 in
  Alcotest.(check int) "remote socket misses" 1 (Counters.l3_misses c2)

let test_hierarchy_remote_access_slower () =
  let h = tiny_hier () in
  let local = 0x4000 in
  let remote = Topology.node_base 1 + 0x4000 in
  let lat_local = Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr:local ~now:0 in
  let lat_remote =
    Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr:remote ~now:0
  in
  Alcotest.(check int) "QPI penalty" Costs.default.Costs.qpi_lat
    (lat_remote - lat_local)

let test_hierarchy_write_invalidate () =
  let h = tiny_hier () in
  let addr = 0x5000 in
  (* Both cores of socket 0 read the line. *)
  ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:0);
  ignore (Hierarchy.access h ~core:1 ~write:false ~fn:Fn.none ~addr ~now:10);
  Alcotest.(check bool) "both hold it" true
    (Hierarchy.private_resident h ~core:0 ~addr
    && Hierarchy.private_resident h ~core:1 ~addr);
  (* Core 0 writes: core 1's copy must be invalidated. *)
  ignore (Hierarchy.access h ~core:0 ~write:true ~fn:Fn.none ~addr ~now:20);
  Alcotest.(check bool) "writer keeps it" true
    (Hierarchy.private_resident h ~core:0 ~addr);
  Alcotest.(check bool) "peer copy invalidated" false
    (Hierarchy.private_resident h ~core:1 ~addr)

let test_hierarchy_dirty_transfer () =
  let h = tiny_hier () in
  let addr = 0x6000 in
  ignore (Hierarchy.access h ~core:0 ~write:true ~fn:Fn.none ~addr ~now:0);
  (* Peer read must see a snoop cost (dirty line in core 0's cache). *)
  let lat = Hierarchy.access h ~core:1 ~write:false ~fn:Fn.none ~addr ~now:10 in
  Alcotest.(check int) "L3 hit + cache-to-cache penalty"
    (Costs.default.Costs.l3_lat + Costs.default.Costs.c2c_lat)
    lat

let test_hierarchy_dma_invalidates () =
  let h = tiny_hier () in
  let addr = 0x7000 in
  ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:0);
  Alcotest.(check bool) "cached" true (Hierarchy.l3_resident h ~socket:0 ~addr);
  Hierarchy.dma_write h ~addr ~now:50;
  Alcotest.(check bool) "L3 copy gone" false
    (Hierarchy.l3_resident h ~socket:0 ~addr);
  Alcotest.(check bool) "private copy gone" false
    (Hierarchy.private_resident h ~core:0 ~addr);
  (* The re-read is a compulsory miss. *)
  let before = Counters.l3_misses (Hierarchy.counters h 0) in
  ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:100);
  Alcotest.(check int) "compulsory miss" (before + 1)
    (Counters.l3_misses (Hierarchy.counters h 0))

let test_hierarchy_inclusion_back_invalidation () =
  let h = tiny_hier () in
  (* Fill one L3 set beyond capacity; the victim must leave the L1 too.
     L3: 65536B/8w/64B = 128 sets; lines with the same (line mod 128). *)
  let line0_addr = 0x0 in
  ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr:line0_addr ~now:0);
  Alcotest.(check bool) "in L1 initially" true
    (Hierarchy.private_resident h ~core:0 ~addr:line0_addr);
  for i = 1 to 8 do
    let addr = i * 128 * 64 in
    ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr ~now:(i * 10))
  done;
  Alcotest.(check bool) "victim left L3" false
    (Hierarchy.l3_resident h ~socket:0 ~addr:line0_addr);
  Alcotest.(check bool) "inclusion: also left the private caches" false
    (Hierarchy.private_resident h ~core:0 ~addr:line0_addr)

let test_hierarchy_memctrl_counted () =
  let h = tiny_hier () in
  ignore (Hierarchy.access h ~core:0 ~write:false ~fn:Fn.none ~addr:0x8000 ~now:0);
  Alcotest.(check int) "one transaction on node 0" 1
    (Hierarchy.memctrl_transactions h ~node:0);
  Alcotest.(check int) "none on node 1" 0
    (Hierarchy.memctrl_transactions h ~node:1)

(* --- Engine --- *)

let const_source ops_fn =
  let b = Trace.Builder.create () in
  fun _now ->
    Trace.Builder.clear b;
    ops_fn b;
    Engine.Packet (Trace.Builder.finish b)

let test_engine_throughput_accounting () =
  let h = tiny_hier () in
  (* Each packet = 1000 instructions => 600 cycles at CPI 0.6. *)
  let source = const_source (fun b -> Trace.Builder.compute b ~fn:Fn.none 1000) in
  let results =
    Engine.run h
      ~flows:[ { Engine.core = 0; label = "x"; source } ]
      ~warmup_cycles:10_000 ~measure_cycles:60_000
  in
  match results with
  | [ r ] ->
      let expected = 60_000 / 600 in
      Alcotest.(check bool) "packet count near expected" true
        (abs (r.Engine.packets - expected) <= 2)
  | _ -> Alcotest.fail "one result expected"

let test_engine_contention_slows_flows () =
  (* Two cores hammering random lines over a shared L3-sized region get
     fewer packets than one core alone. *)
  let mk_flows n =
    let rng = Ppp_util.Rng.create ~seed:5 in
    List.init n (fun core ->
        let r = Ppp_util.Rng.split rng in
        let b = Trace.Builder.create () in
        let region_base = core * (1 lsl 24) in
        let source _now =
          Trace.Builder.clear b;
          for _ = 1 to 16 do
            Trace.Builder.read b ~fn:Fn.none
              (region_base + (Ppp_util.Rng.int r 2048 * 64))
          done;
          Engine.Packet (Trace.Builder.finish b)
        in
        { Engine.core; label = "mem"; source })
  in
  let solo =
    match Engine.run (tiny_hier ()) ~flows:(mk_flows 1) ~warmup_cycles:50_000 ~measure_cycles:200_000 with
    | r :: _ -> r.Engine.throughput_pps
    | [] -> assert false
  in
  let corun =
    match Engine.run (tiny_hier ()) ~flows:(mk_flows 2) ~warmup_cycles:50_000 ~measure_cycles:200_000 with
    | r :: _ -> r.Engine.throughput_pps
    | [] -> assert false
  in
  Alcotest.(check bool) "contention reduces throughput" true (corun < solo)

let test_engine_rejects_core_collision () =
  let h = tiny_hier () in
  let source = const_source (fun b -> Trace.Builder.compute b ~fn:Fn.none 10) in
  Alcotest.check_raises "duplicate core"
    (Invalid_argument "Engine.run: two flows on the same core") (fun () ->
      ignore
        (Engine.run h
           ~flows:
             [
               { Engine.core = 0; label = "a"; source };
               { Engine.core = 0; label = "b"; source };
             ]
           ~warmup_cycles:10 ~measure_cycles:100))

let test_engine_rejects_empty_trace () =
  let h = tiny_hier () in
  let source _now = Engine.Packet Trace.empty in
  Alcotest.check_raises "empty trace"
    (Invalid_argument "Engine: source returned an empty trace") (fun () ->
      ignore
        (Engine.run h
           ~flows:[ { Engine.core = 0; label = "a"; source } ]
           ~warmup_cycles:10 ~measure_cycles:100))

let test_engine_idle_items_not_counted () =
  let h = tiny_hier () in
  let toggle = ref false in
  let b = Trace.Builder.create () in
  let source _now =
    Trace.Builder.clear b;
    toggle := not !toggle;
    if !toggle then begin
      Trace.Builder.compute b ~fn:Fn.none 100;
      Engine.Packet (Trace.Builder.finish b)
    end
    else begin
      Trace.Builder.stall b 60;
      Engine.Idle (Trace.Builder.finish b)
    end
  in
  match
    Engine.run h
      ~flows:[ { Engine.core = 0; label = "t"; source } ]
      ~warmup_cycles:1_000 ~measure_cycles:12_000
  with
  | [ r ] ->
      (* Each packet costs 60 cycles compute + 60 stall => ~100/12000. *)
      Alcotest.(check bool) "idle items excluded from packets" true
        (r.Engine.packets <= 110 && r.Engine.packets >= 90)
  | _ -> Alcotest.fail "one result"

(* --- Machine --- *)

let test_machine_configs () =
  Alcotest.(check (list string)) "names" [ "westmere"; "scaled"; "tiny" ]
    Machine.names;
  Alcotest.(check bool) "lookup" true (Machine.by_name "scaled" <> None);
  Alcotest.(check bool) "unknown" true (Machine.by_name "nope" = None);
  let h = Machine.build Machine.tiny in
  Alcotest.(check int) "tiny l3 empty" 0 (Hierarchy.l3_occupancy h ~socket:0)

let test_costs_delta () =
  Alcotest.(check (float 1e-12)) "delta seconds"
    (122.0 /. 2.8e9)
    (Costs.delta_seconds Costs.default)

let tests =
  [
    Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
    Alcotest.test_case "cache bad geometry" `Quick test_cache_bad_geometry;
    Alcotest.test_case "cache miss then hit" `Quick test_cache_miss_then_hit;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache prefers invalid way" `Quick test_cache_insert_prefers_invalid_way;
    Alcotest.test_case "cache dirty state" `Quick test_cache_dirty_writeback_state;
    Alcotest.test_case "cache aux roundtrip" `Quick test_cache_aux_roundtrip;
    Alcotest.test_case "cache double insert" `Quick test_cache_double_insert_rejected;
    Alcotest.test_case "cache occupancy bound" `Quick test_cache_occupancy_bounded;
    Alcotest.test_case "cache fold resident" `Quick test_cache_fold_resident;
    QCheck_alcotest.to_alcotest prop_cache_occupancy_invariant;
    QCheck_alcotest.to_alcotest prop_cache_find_after_insert;
    Alcotest.test_case "topology mapping" `Quick test_topology_mapping;
    Alcotest.test_case "topology address map" `Quick test_topology_address_map;
    Alcotest.test_case "memctrl idle" `Quick test_memctrl_no_wait_when_idle;
    Alcotest.test_case "memctrl queueing" `Quick test_memctrl_queueing;
    Alcotest.test_case "memctrl drains" `Quick test_memctrl_drains;
    Alcotest.test_case "memctrl writeback occupancy" `Quick test_memctrl_writeback_occupies;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace builder reuse" `Quick test_trace_builder_reuse;
    Alcotest.test_case "trace zero compute" `Quick test_trace_zero_compute_dropped;
    Alcotest.test_case "fn registry" `Quick test_fn_registry;
    Alcotest.test_case "counters diff" `Quick test_counters_diff;
    Alcotest.test_case "hierarchy miss then hits" `Quick test_hierarchy_miss_then_hits;
    Alcotest.test_case "L3 shared within socket" `Quick test_hierarchy_l3_shared_within_socket;
    Alcotest.test_case "L3 private across sockets" `Quick test_hierarchy_l3_not_shared_across_sockets;
    Alcotest.test_case "remote access slower" `Quick test_hierarchy_remote_access_slower;
    Alcotest.test_case "write invalidates peers" `Quick test_hierarchy_write_invalidate;
    Alcotest.test_case "dirty cache-to-cache" `Quick test_hierarchy_dirty_transfer;
    Alcotest.test_case "DMA invalidates" `Quick test_hierarchy_dma_invalidates;
    Alcotest.test_case "inclusive back-invalidation" `Quick test_hierarchy_inclusion_back_invalidation;
    Alcotest.test_case "memctrl transactions counted" `Quick test_hierarchy_memctrl_counted;
    Alcotest.test_case "engine throughput accounting" `Quick test_engine_throughput_accounting;
    Alcotest.test_case "engine contention slows flows" `Quick test_engine_contention_slows_flows;
    Alcotest.test_case "engine rejects core collision" `Quick test_engine_rejects_core_collision;
    Alcotest.test_case "engine rejects empty trace" `Quick test_engine_rejects_empty_trace;
    Alcotest.test_case "engine idle items not counted" `Quick test_engine_idle_items_not_counted;
    Alcotest.test_case "machine configs" `Quick test_machine_configs;
    Alcotest.test_case "costs delta" `Quick test_costs_delta;
  ]

(* Reference-model equivalence: the Cache must behave exactly like a naive
   per-set LRU list over any operation sequence. *)
let prop_cache_equals_reference_model =
  let module Ref = struct
    (* set -> most-recent-first list of (line, dirty) *)
    type t = { sets : (int * bool) list array; ways : int }

    let create ~nsets ~ways = { sets = Array.make nsets []; ways }
    let set_of t line = line mod Array.length t.sets

    let find t line =
      let s = set_of t line in
      List.mem_assoc line t.sets.(s)

    let touch t line =
      let s = set_of t line in
      match List.assoc_opt line t.sets.(s) with
      | None -> ()
      | Some d ->
          t.sets.(s) <- (line, d) :: List.remove_assoc line t.sets.(s)

    let insert t line =
      let s = set_of t line in
      let evicted =
        if List.length t.sets.(s) >= t.ways then
          Some (fst (List.nth t.sets.(s) (List.length t.sets.(s) - 1)))
        else None
      in
      let remaining =
        match evicted with
        | Some v -> List.remove_assoc v t.sets.(s)
        | None -> t.sets.(s)
      in
      t.sets.(s) <- (line, false) :: remaining;
      evicted

    let invalidate t line =
      let s = set_of t line in
      t.sets.(s) <- List.remove_assoc line t.sets.(s)
  end in
  QCheck.Test.make ~count:200 ~name:"cache equals naive per-set LRU model"
    QCheck.(list_of_size Gen.(int_range 1 200) (pair (int_bound 2) (int_bound 63)))
    (fun ops ->
      (* 4 sets x 2 ways, lines 0..63. op kinds: 0 access, 1 invalidate,
         2 probe-check. *)
      let c = Cache.create (geo (4 * 2 * 64) 2) in
      let r = Ref.create ~nsets:4 ~ways:2 in
      List.for_all
        (fun (kind, line) ->
          match kind with
          | 0 ->
              (* access: hit -> touch both; miss -> insert both, victims
                 must agree. *)
              let model_hit = Ref.find r line in
              let real_hit = Cache.find c line >= 0 in
              if model_hit <> real_hit then false
              else if model_hit then begin
                Ref.touch r line;
                true
              end
              else begin
                let model_victim = Ref.insert r line in
                let real_victim =
                  match insert c line with
                  | Some (victim_line, _, _) -> Some victim_line
                  | None -> None
                in
                model_victim = real_victim
              end
          | 1 ->
              Ref.invalidate r line;
              ignore (Cache.invalidate c line : bool);
              true
          | _ -> Ref.find r line = Cache.resident c line)
        ops)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_cache_equals_reference_model ]
