let () =
  Alcotest.run "ppp"
    [
      ("util", Util_tests.tests);
      ("hw", Hw_tests.tests);
      ("hw-properties", Hw_prop_tests.tests);
      ("simmem+net", Simmem_net_tests.tests);
      ("click", Click_tests.tests);
      ("apps", Apps_tests.tests);
      ("flow-cache", Flow_cache_tests.tests);
      ("classify", Classify_tests.tests);
      ("traffic", Traffic_tests.tests);
      ("core", Core_tests.tests);
      ("experiments", Experiments_tests.tests);
      ("engine-equiv", Engine_equiv_tests.tests);
      ("perf-gate", Perf_gate_tests.tests);
      ("determinism", Determinism_tests.tests);
      ("profile", Profile_tests.tests);
      ("telemetry", Telemetry_tests.tests);
      ("monitor", Monitor_tests.tests);
      ("extras", Extra_tests.tests);
      ("extensions", Ext_tests.tests);
    ]
