(* Second-wave coverage: element behaviour inside flows, failure paths, and
   cross-module integration details not covered by the per-module suites. *)

let heap () = Ppp_simmem.Heap.create ~node:0
let rng () = Ppp_util.Rng.create ~seed:21
let fn = Ppp_hw.Fn.none

(* --- VPN element really encrypts (and the result is decryptable) --- *)

let test_vpn_element_encrypts () =
  let h = heap () in
  let key = "0123456789abcdef" in
  let vpn = Ppp_apps.More_elements.vpn_encrypt ~heap:h ~key () in
  let ctx = Ppp_click.Ctx.create ~rng:(rng ()) in
  let pkt = Ppp_net.Packet.create 256 in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:1 ~dst:2 ~sport:3 ~dport:4
    ~wire_len:128;
  let pos = Ppp_net.Transport.payload_offset pkt in
  let len = 128 - pos in
  Ppp_traffic.Gen.seeded_payload ~seed:5 pkt ~pos ~len;
  let original = Ppp_net.Packet.sub_string pkt ~pos ~len in
  (match vpn.Ppp_click.Element.process ctx pkt with
  | Ppp_click.Element.Forward -> ()
  | Ppp_click.Element.Drop -> Alcotest.fail "should forward");
  let encrypted = Ppp_net.Packet.sub_string pkt ~pos ~len in
  Alcotest.(check bool) "payload changed" true (encrypted <> original);
  (* CTR is involutive: decrypt with the same keystream (counter 0). *)
  let aes = Ppp_apps.Aes.expand_key key in
  Ppp_apps.Aes.ctr_transform aes ~nonce:"\x00\x01\x02\x03\x04\x05\x06\x07"
    ~counter:0 pkt.Ppp_net.Packet.data ~pos ~len;
  Alcotest.(check string) "decrypts back" original
    (Ppp_net.Packet.sub_string pkt ~pos ~len)

(* --- RE element shrinks redundant packets in place --- *)

let test_re_element_shrinks_packets () =
  let h = heap () in
  let re = Ppp_apps.Re.create ~heap:h ~store_bytes:65536 ~table_entries:4096 () in
  let el = Ppp_apps.More_elements.re_encode re in
  let ctx = Ppp_click.Ctx.create ~rng:(rng ()) in
  let send () =
    let pkt = Ppp_net.Packet.create 1024 in
    Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:1 ~dst:2 ~sport:3 ~dport:4
      ~wire_len:512;
    let pos = Ppp_net.Transport.payload_offset pkt in
    Ppp_traffic.Gen.seeded_payload ~seed:99 pkt ~pos ~len:(512 - pos);
    ignore (el.Ppp_click.Element.process ctx pkt);
    pkt.Ppp_net.Packet.len
  in
  let first = send () in
  let second = send () in
  (* First sighting: no matches; escaping may grow it slightly. *)
  Alcotest.(check bool) "first pass roughly unchanged" true
    (first >= 500 && first <= 540);
  Alcotest.(check bool) "second identical payload shrinks" true (second < 200);
  (* The shrunken packet still has a consistent IP total length. *)
  ()

(* --- Staged flow drop path --- *)

let test_staged_drop_path () =
  let dropper = Ppp_click.Element.make ~kind:"D" (fun _ _ -> Ppp_click.Element.Drop) in
  let gen pkt =
    Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:1 ~dst:2 ~sport:3 ~dport:4 ~wire_len:64
  in
  let staged =
    Ppp_click.Staged.create ~heap:(heap ()) ~rng:(rng ()) ~label:"s" ~gen
      ~stages:[ []; [ dropper ] ] ()
  in
  let sources = Ppp_click.Staged.sources staged in
  ignore (sources.(0) 0);
  (match sources.(1) 1 with
  | Ppp_hw.Engine.Idle _ -> ()
  | Ppp_hw.Engine.Packet _ | Ppp_hw.Engine.Reordered _ ->
      Alcotest.fail "dropped packet must not count");
  Alcotest.(check int) "drop counted" 1 (Ppp_click.Staged.dropped staged);
  Alcotest.(check int) "nothing forwarded" 0 (Ppp_click.Staged.forwarded staged)

(* --- registry idempotency and arg errors --- *)

let test_register_all_idempotent () =
  Ppp_apps.App.register_all ();
  Ppp_apps.App.register_all ();
  let known = Ppp_click.Config.Registry.known () in
  Alcotest.(check bool) "still registered" true (List.mem "Firewall" known)

let test_registry_bad_args () =
  Ppp_apps.App.register_all ();
  let ctx =
    { Ppp_click.Config.Registry.heap = heap (); rng = rng (); scale = 128 }
  in
  match
    Ppp_click.Config.Registry.build ctx
      { Ppp_click.Config.kind = "Firewall"; args = [ "not_a_number" ] }
  with
  | Ok _ -> Alcotest.fail "should reject"
  | Error e -> Alcotest.(check bool) "mentions the element" true
                 (String.length e >= 8 && String.sub e 0 8 = "Firewall")

(* --- cross-socket isolation at the runner level --- *)

let test_cross_socket_flows_isolated () =
  (* Two MON flows on different sockets with local data barely affect each
     other (compare against same-socket placement). *)
  let params = Ppp_core.Runner.quick_params in
  let same =
    Ppp_core.Runner.run ~params
      [
        { Ppp_core.Runner.kind = Ppp_apps.App.MON; core = 0; data_node = 0 };
        { Ppp_core.Runner.kind = Ppp_apps.App.MON; core = 1; data_node = 0 };
      ]
  in
  let cross =
    Ppp_core.Runner.run ~params
      [
        { Ppp_core.Runner.kind = Ppp_apps.App.MON; core = 0; data_node = 0 };
        { Ppp_core.Runner.kind = Ppp_apps.App.MON; core = 2; data_node = 1 };
      ]
  in
  let pps results = (List.hd results).Ppp_hw.Engine.throughput_pps in
  Alcotest.(check bool) "cross-socket placement no slower" true
    (pps cross >= pps same *. 0.98)

(* --- failure paths of RE / store / tables --- *)

let test_re_decode_malformed () =
  let h = heap () in
  let re = Ppp_apps.Re.create ~heap:h ~store_bytes:4096 ~table_entries:1024 () in
  let b = Ppp_hw.Trace.Builder.create () in
  let out = Bytes.make 64 '\x00' in
  (* A token referencing content the store never held. *)
  let bad = Bytes.of_string "\xFE\x01\x00\x00\x00\x00\x40\x00\x20" in
  Alcotest.check_raises "evicted reference"
    (Failure "Re.decode: reference to evicted content") (fun () ->
      ignore (Ppp_apps.Re.decode re b ~fn bad ~pos:0 ~len:9 ~out));
  let truncated = Bytes.of_string "\xFE" in
  Alcotest.check_raises "truncated escape" (Failure "Re.decode: truncated escape")
    (fun () -> ignore (Ppp_apps.Re.decode re b ~fn truncated ~pos:0 ~len:1 ~out))

let test_store_stale_read_raises () =
  let h = heap () in
  let ps = Ppp_apps.Packet_store.create ~heap:h ~capacity:64 in
  let b = Ppp_hw.Trace.Builder.create () in
  let out = Bytes.make 16 '\x00' in
  Alcotest.check_raises "stale" (Invalid_argument "Packet_store.read: stale")
    (fun () -> Ppp_apps.Packet_store.read ps b ~fn ~off:0 ~len:16 out ~dst:0)

let test_trie_pool_exhaustion () =
  let t =
    Ppp_apps.Radix_trie.create ~heap:(heap ()) ~max_nodes:1 ~default_hop:0 ()
  in
  (* First /24 allocates the single node; a /24 under a different /16
     needs a second one. *)
  Ppp_apps.Radix_trie.add_route t ~prefix:(0x0A010200) ~plen:24 ~hop:1;
  Alcotest.check_raises "pool exhausted" (Failure "Radix_trie: node pool exhausted")
    (fun () ->
      Ppp_apps.Radix_trie.add_route t ~prefix:(0x0B010200) ~plen:24 ~hop:2)

(* --- misc small-surface checks --- *)

let test_table_set_align () =
  let t = Ppp_util.Table.create [ "a"; "b" ] in
  Ppp_util.Table.set_align t 1 Ppp_util.Table.Left;
  Ppp_util.Table.add_row t [ "x"; "y" ];
  Alcotest.(check bool) "renders" true (String.length (Ppp_util.Table.to_string t) > 0)

let test_series_knee_none () =
  let s = Ppp_util.Series.of_points [ (0.0, 0.0); (1.0, 1.0) ] in
  Alcotest.(check bool) "no settling before the last point" true
    (Ppp_util.Series.knee s ~threshold:0.0 = Some 1.0)

let test_rng_copy_diverges_from_original () =
  let a = rng () in
  let b = Ppp_util.Rng.copy a in
  Alcotest.(check int64) "same next value" (Ppp_util.Rng.bits64 a)
    (Ppp_util.Rng.bits64 b);
  ignore (Ppp_util.Rng.bits64 a);
  (* The copy does not follow the original's extra draw. *)
  Alcotest.(check bool) "independent state" true
    (Ppp_util.Rng.bits64 a <> Ppp_util.Rng.bits64 b
    || Ppp_util.Rng.bits64 a <> Ppp_util.Rng.bits64 b)

let test_ipv4_invalid_cases () =
  let pkt = Ppp_net.Packet.create 128 in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:1 ~dst:2 ~sport:3 ~dport:4 ~wire_len:96;
  Alcotest.(check bool) "valid baseline" true (Ppp_net.Ipv4.valid pkt);
  (* Wrong version nibble. *)
  Ppp_net.Packet.set8 pkt Ppp_net.Ipv4.header_offset 0x55;
  Alcotest.(check bool) "bad version" false (Ppp_net.Ipv4.valid pkt);
  Ppp_net.Packet.set8 pkt Ppp_net.Ipv4.header_offset 0x45;
  (* Truncated wire length vs IP total length. *)
  Ppp_net.Packet.resize pkt 80;
  Alcotest.(check bool) "length mismatch" false (Ppp_net.Ipv4.valid pkt)

let test_machine_helpers () =
  let c = Ppp_hw.Machine.scaled in
  Alcotest.(check int) "l3 bytes" (1536 * 1024) (Ppp_hw.Machine.l3_bytes c);
  Alcotest.(check int) "line" 64 (Ppp_hw.Machine.line_bytes c);
  Alcotest.(check int) "cps" 6 (Ppp_hw.Machine.cores_per_socket c)

let test_app_syn_zero_params () =
  match Ppp_apps.App.of_name "SYN:0:0" with
  | Some (Ppp_apps.App.SYN { reads = 0; instrs = 0 }) -> ()
  | _ -> Alcotest.fail "SYN:0:0 should parse"

let test_scheduler_three_kind_split_count () =
  (* tiny machine (2x2): 2 MON + 1 FW + 1 RE.
     Socket-0 pairs (multisets of size 2): enumerate and dedup by symmetry. *)
  let combo = Ppp_apps.App.[ (MON, 2); (FW, 1); (RE, 1) ] in
  let splits = Ppp_core.Scheduler.splits ~config:Ppp_hw.Machine.tiny combo in
  (* Socket-0 loads {M,M},{M,F},{M,R},{F,R}; socket exchange identifies
     {M,M}|{F,R} with {F,R}|{M,M} and {M,F}|{M,R} with {M,R}|{M,F}: 2. *)
  Alcotest.(check int) "distinct placements" 2 (List.length splits)

let test_flow_on_defaults_local_node () =
  let s = Ppp_core.Runner.flow_on ~core:7 Ppp_apps.App.IP in
  Alcotest.(check int) "socket of core 7" 1 s.Ppp_core.Runner.data_node

let test_profile_orderings_scaled () =
  (* The Table 1 orderings the paper's analysis rests on, at real windows
     (slow test): MON has the most hits/sec, FW the least among realistic;
     RE has the most refs/packet. *)
  let params = Ppp_core.Runner.default_params in
  let p k = Ppp_core.Profile.solo ~params k in
  let ip = p Ppp_apps.App.IP and mon = p Ppp_apps.App.MON in
  let fw = p Ppp_apps.App.FW and re = p Ppp_apps.App.RE in
  let vpn = p Ppp_apps.App.VPN in
  Alcotest.(check bool) "MON hits/s highest" true
    (mon.Ppp_core.Profile.l3_hits_per_sec >= ip.Ppp_core.Profile.l3_hits_per_sec);
  Alcotest.(check bool) "FW hits/s lowest" true
    (List.for_all
       (fun q -> fw.Ppp_core.Profile.l3_hits_per_sec <= q.Ppp_core.Profile.l3_hits_per_sec)
       [ ip; mon; re; vpn ]);
  Alcotest.(check bool) "RE most refs/packet" true
    (List.for_all
       (fun q ->
         re.Ppp_core.Profile.l3_refs_per_packet >= q.Ppp_core.Profile.l3_refs_per_packet)
       [ ip; mon; fw; vpn ]);
  Alcotest.(check bool) "IP fastest" true
    (List.for_all
       (fun q -> ip.Ppp_core.Profile.cycles_per_packet <= q.Ppp_core.Profile.cycles_per_packet)
       [ mon; fw; re; vpn ])

let tests =
  [
    Alcotest.test_case "VPN element encrypts" `Quick test_vpn_element_encrypts;
    Alcotest.test_case "RE element shrinks packets" `Quick test_re_element_shrinks_packets;
    Alcotest.test_case "staged drop path" `Quick test_staged_drop_path;
    Alcotest.test_case "register_all idempotent" `Quick test_register_all_idempotent;
    Alcotest.test_case "registry bad args" `Quick test_registry_bad_args;
    Alcotest.test_case "cross-socket isolation" `Slow test_cross_socket_flows_isolated;
    Alcotest.test_case "RE decode malformed" `Quick test_re_decode_malformed;
    Alcotest.test_case "store stale read" `Quick test_store_stale_read_raises;
    Alcotest.test_case "trie pool exhaustion" `Quick test_trie_pool_exhaustion;
    Alcotest.test_case "table set_align" `Quick test_table_set_align;
    Alcotest.test_case "series knee edge" `Quick test_series_knee_none;
    Alcotest.test_case "rng copy independence" `Quick test_rng_copy_diverges_from_original;
    Alcotest.test_case "ipv4 invalid cases" `Quick test_ipv4_invalid_cases;
    Alcotest.test_case "machine helpers" `Quick test_machine_helpers;
    Alcotest.test_case "SYN:0:0 parses" `Quick test_app_syn_zero_params;
    Alcotest.test_case "scheduler 3-kind splits" `Quick test_scheduler_three_kind_split_count;
    Alcotest.test_case "flow_on local node" `Quick test_flow_on_defaults_local_node;
    Alcotest.test_case "profile orderings (scaled)" `Slow test_profile_orderings_scaled;
  ]
