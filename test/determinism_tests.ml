(* The parallel experiment engine's contract: for every experiment, the
   rendered output is a pure function of (experiment, seed) — independent of
   the job count, because each cell derives its RNG stream from its label
   rather than from shared generator state. Verified here for table1, fig2
   and fig10 on the tiny machine with short windows. *)

open Ppp_core
open Ppp_experiments

let params ?(batch = 32) ~seed () =
  Runner.Params.(
    quick |> with_seed seed
    |> with_windows ~warmup:100_000 ~measure:300_000
    |> with_batch batch)

let with_jobs n f =
  let prev = Parallel.configured_jobs () in
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs prev) f

let render ?batch id ~seed ~jobs =
  match Registry.find id with
  | None -> Alcotest.failf "experiment %s not registered" id
  | Some e ->
      with_jobs jobs (fun () ->
          (e.Registry.run ~params:(params ?batch ~seed ()) ())
            .Ppp_experiments.Output.text)

let check_experiment id () =
  let sequential = render id ~seed:42 ~jobs:1 in
  let again = render id ~seed:42 ~jobs:1 in
  Alcotest.(check string)
    (id ^ ": same seed, same output") sequential again;
  let parallel = render id ~seed:42 ~jobs:4 in
  Alcotest.(check string)
    (id ^ ": --jobs 4 byte-identical to --jobs 1") sequential parallel;
  let other_seed = render id ~seed:43 ~jobs:4 in
  Alcotest.(check bool)
    (id ^ ": different seed, different output") true
    (not (String.equal sequential other_seed))

(* The two execution knobs together: a parallel batched run must render the
   same bytes as a sequential unbatched one — the golden-equality contract
   behind `repro ... --jobs N --batch M`. *)
let test_jobs_batch_golden_equality () =
  let baseline = render "fig2" ~seed:42 ~jobs:1 ~batch:1 in
  let tuned = render "fig2" ~seed:42 ~jobs:4 ~batch:32 in
  Alcotest.(check string)
    "fig2: --jobs 4 --batch 32 byte-identical to --jobs 1 --batch 1" baseline
    tuned

(* Same contract for the classifier experiment: its cells carry mutable
   per-flow state (flow table, upcall counters, slow-path scratch), all of
   which must be private to the cell for the knobs to stay pure. *)
let test_classifier_jobs_batch_golden_equality () =
  let baseline = render "classifier" ~seed:42 ~jobs:1 ~batch:1 in
  let tuned = render "classifier" ~seed:42 ~jobs:4 ~batch:32 in
  Alcotest.(check string)
    "classifier: --jobs 4 --batch 32 byte-identical to --jobs 1 --batch 1"
    baseline tuned

let test_rng_derivation () =
  (* The seed-derivation function itself: pure, label- and seed-sensitive. *)
  let d = Ppp_util.Rng.derive in
  Alcotest.(check int)
    "derive is pure" (d ~seed:42 "pair/IP/MON") (d ~seed:42 "pair/IP/MON");
  Alcotest.(check bool)
    "distinct labels split" true
    (d ~seed:42 "pair/IP/MON" <> d ~seed:42 "pair/IP/FW");
  Alcotest.(check bool)
    "distinct seeds split" true
    (d ~seed:42 "pair/IP/MON" <> d ~seed:43 "pair/IP/MON");
  Alcotest.(check int)
    "cell helper is derive on experiment/cell"
    (d ~seed:7 "fig2/3")
    (Ppp_util.Rng.derive_cell ~seed:7 ~experiment:"fig2" ~cell:3);
  Alcotest.(check bool)
    "derived seeds are nonnegative" true
    (d ~seed:(-5) "x" >= 0 && d ~seed:max_int "y" >= 0)

let test_parallel_map_order () =
  let xs = List.init 100 Fun.id in
  let doubled = with_jobs 4 (fun () -> Parallel.map (fun x -> 2 * x) xs) in
  Alcotest.(check (list int))
    "results in input order" (List.map (fun x -> 2 * x) xs) doubled;
  let indexed = with_jobs 3 (fun () -> Parallel.mapi (fun i x -> i - x) xs) in
  Alcotest.(check bool)
    "mapi passes matching indices" true (List.for_all (( = ) 0) indexed)

let test_parallel_map_exception () =
  let boom = Failure "cell 17" in
  let attempt jobs =
    match
      with_jobs jobs (fun () ->
          Parallel.map
            (fun x -> if x >= 17 then raise (Failure (Printf.sprintf "cell %d" x)) else x)
            (List.init 40 Fun.id))
    with
    | _ -> None
    | exception e -> Some e
  in
  Alcotest.(check bool)
    "sequential raises lowest-index failure" true (attempt 1 = Some boom);
  Alcotest.(check bool)
    "parallel raises the same failure" true (attempt 4 = Some boom)

(* The traffic experiment adds stateful sources (heavy-tail realizations,
   ON/OFF modulators, churn) and steering state to every cell; all of it
   must be derived from the cell label for the jobs/batch knobs to stay
   pure. *)
let test_traffic_jobs_batch_golden_equality () =
  let baseline = render "traffic" ~seed:42 ~jobs:1 ~batch:1 in
  let tuned = render "traffic" ~seed:42 ~jobs:4 ~batch:32 in
  Alcotest.(check string)
    "traffic: --jobs 4 --batch 32 byte-identical to --jobs 1 --batch 1"
    baseline tuned

let tests =
  [
    Alcotest.test_case "rng seed derivation" `Quick test_rng_derivation;
    Alcotest.test_case "parallel map order" `Quick test_parallel_map_order;
    Alcotest.test_case "parallel map exception" `Quick test_parallel_map_exception;
    Alcotest.test_case "table1 deterministic across jobs" `Slow
      (check_experiment "table1");
    Alcotest.test_case "fig2 deterministic across jobs" `Slow
      (check_experiment "fig2");
    Alcotest.test_case "fig10 deterministic across jobs" `Slow
      (check_experiment "fig10");
    Alcotest.test_case "classifier deterministic across jobs" `Slow
      (check_experiment "classifier");
    Alcotest.test_case "fig2 golden equality across jobs x batch" `Slow
      test_jobs_batch_golden_equality;
    Alcotest.test_case "classifier golden equality across jobs x batch" `Slow
      test_classifier_jobs_batch_golden_equality;
    Alcotest.test_case "traffic deterministic across jobs" `Slow
      (check_experiment "traffic");
    Alcotest.test_case "traffic golden equality across jobs x batch" `Slow
      test_traffic_jobs_batch_golden_equality;
  ]
