(* The perf-gate report behind `bench --perf-gate`: the committed
   BENCH_engine.json must keep its schema (CI parses it), and the recorded
   trajectory must never lose points. *)

module J = Ppp_telemetry.Json
module G = Ppp_core.Perf_gate

let report = lazy (G.run ~quick:true ~runs:1 ())

let top_keys json =
  match json with
  | J.Obj fields -> List.map fst fields
  | _ -> Alcotest.fail "perf-gate report is not a JSON object"

let test_required_keys () =
  (* Pin the contract itself: CI and external consumers parse these keys
     out of BENCH_engine.json, so losing one from required_keys is a
     breaking change even if to_json still emits it. *)
  Alcotest.(check (list string))
    "required keys pinned"
    [
      "schema"; "tool"; "config"; "seed"; "quick"; "warmup_cycles";
      "measure_cycles"; "batch"; "workloads"; "profile_overhead"; "hit_path";
      "flow_table"; "source_fill"; "trajectory";
    ]
    G.required_keys;
  let keys = top_keys (G.to_json (Lazy.force report)) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "key %S present" k) true
        (List.mem k keys))
    G.required_keys

let test_workloads () =
  let r = Lazy.force report in
  Alcotest.(check (list string))
    "the four gated workloads, in order"
    [ "solo"; "contended"; "probed"; "profiled" ]
    (List.map (fun (m : G.measurement) -> m.G.name) r.G.workloads);
  List.iter
    (fun (m : G.measurement) ->
      Alcotest.(check bool) (m.G.name ^ ": ops counted") true
        (m.G.engine_ops > 0);
      Alcotest.(check bool) (m.G.name ^ ": positive rate") true
        (m.G.ops_per_sec > 0.0);
      Alcotest.(check bool) (m.G.name ^ ": packets flowed") true
        (m.G.window_packets > 0))
    r.G.workloads;
  (* Attribution is pure observation: the profiled window must replay the
     contended simulation exactly, ops and packets both. *)
  let find name =
    List.find (fun (m : G.measurement) -> m.G.name = name) r.G.workloads
  in
  Alcotest.(check int)
    "profiled replays contended: same engine ops"
    (find "contended").G.engine_ops (find "profiled").G.engine_ops;
  Alcotest.(check int)
    "profiled replays contended: same packets"
    (find "contended").G.window_packets (find "profiled").G.window_packets

let test_flow_table_loop () =
  let ft = (Lazy.force report).G.flow_table in
  Alcotest.(check bool) "lookups counted" true (ft.G.lookups > 0);
  Alcotest.(check bool) "positive rate" true (ft.G.lookups_per_sec > 0.0);
  (* 3/4 of the pool is installed and the table never evicts at this load,
     so the stream's hit fraction is exact. *)
  Alcotest.(check (float 1e-9)) "hit fraction pinned by construction" 0.75
    ft.G.hit_fraction;
  Alcotest.(check bool) "fast-path lookup loop is allocation-free" true
    ft.G.ft_zero_alloc

let test_source_fill_loop () =
  let sf = (Lazy.force report).G.source_fill in
  Alcotest.(check bool) "fills counted" true (sf.G.fills > 0);
  Alcotest.(check bool) "positive rate" true (sf.G.fills_per_sec > 0.0);
  Alcotest.(check bool) "Source.fill hot path is allocation-free" true
    sf.G.sf_zero_alloc

let test_trajectory () =
  (* The history is append-only: the pre-optimization baseline must always
     be point zero, so regenerating BENCH_engine.json never loses it. *)
  match G.trajectory with
  | [] -> Alcotest.fail "trajectory must keep the pre-optimization baseline"
  | first :: _ ->
      Alcotest.(check bool) "baseline point records the old engine" true
        (first.G.contended_ops_per_sec > 0.0
        && first.G.hit_path_bytes_per_access > 0.0)

let test_json_parses_back () =
  (* write_file output must be valid for json.tool-style consumers: a
     round-trip through the serializer is deterministic. *)
  let j = G.to_json (Lazy.force report) in
  let s = J.to_string j in
  Alcotest.(check string) "serialization deterministic" s (J.to_string j);
  Alcotest.(check bool) "non-trivial" true (String.length s > 200)

let tests =
  [
    Alcotest.test_case "report has required keys" `Quick test_required_keys;
    Alcotest.test_case "workload measurements sane" `Quick test_workloads;
    Alcotest.test_case "flow-table lookup loop" `Quick test_flow_table_loop;
    Alcotest.test_case "source-fill loop" `Quick test_source_fill_loop;
    Alcotest.test_case "trajectory keeps baseline" `Quick test_trajectory;
    Alcotest.test_case "serialization deterministic" `Quick
      test_json_parses_back;
  ]
