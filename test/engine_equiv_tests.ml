(* The optimized engine (heap scheduler, sentinel cache probes, hoisted
   counters, raw trace decode) against the pre-optimization loop kept
   verbatim in Ref_engine: for random flow sets, seeds and probe grids the
   two must produce the same result list — including [engine_ops], the
   count of replayed trace operations — and the same probe samples in the
   same order. This is what licenses every hot-path change behind the perf
   gate: faster, but observationally identical. *)

open Ppp_hw

let kinds = Ppp_apps.App.[ IP; MON; FW; RE; VPN ]

let mk_flows ~config ~seed kind_ixs =
  let heap = Ppp_simmem.Heap.create ~node:0 in
  let rng = Ppp_util.Rng.create ~seed in
  List.mapi
    (fun core ix ->
      let kind = List.nth kinds (ix mod List.length kinds) in
      let label = Printf.sprintf "%s#%d" (Ppp_apps.App.name kind) core in
      let flow =
        Ppp_apps.App.flow kind ~heap ~rng:(Ppp_util.Rng.split rng)
          ~scale:config.Machine.scale ~label ()
      in
      { Engine.core; label; source = Ppp_click.Flow.source flow })
    kind_ixs

(* Everything a result carries, reduced to comparable scalars; histograms
   compare via their extreme percentiles. *)
let result_fingerprint (r : Engine.result) =
  ( ( r.Engine.core,
      r.Engine.label,
      r.Engine.packets,
      r.Engine.window_cycles,
      r.Engine.engine_ops ),
    ( Counters.instructions r.Engine.counters,
      Counters.mem_refs r.Engine.counters,
      Counters.l2_hits r.Engine.counters,
      Counters.l3_hits r.Engine.counters,
      Counters.l3_misses r.Engine.counters,
      Counters.packets r.Engine.counters ),
    ( Ppp_util.Histogram.percentile r.Engine.latency 0.0,
      Ppp_util.Histogram.percentile r.Engine.latency 50.0,
      Ppp_util.Histogram.percentile r.Engine.latency 99.0,
      Ppp_util.Histogram.percentile r.Engine.latency 100.0 ) )

let sample_fingerprint (s : Engine.sample) =
  ( (s.Engine.s_core, s.Engine.s_flow, s.Engine.s_start, s.Engine.s_end),
    ( s.Engine.s_packets,
      Counters.mem_refs s.Engine.s_delta,
      Counters.l3_refs s.Engine.s_delta,
      Ppp_util.Histogram.percentile s.Engine.s_latency 50.0 ) )

let run_once engine ~seed ~kind_ixs ~sample_cycles =
  let config = Machine.tiny in
  let hier = Machine.build config in
  let flows = mk_flows ~config ~seed kind_ixs in
  let samples = ref [] in
  let probe =
    match sample_cycles with
    | None -> None
    | Some k ->
        Some
          {
            Engine.sample_cycles = k;
            on_sample = (fun s -> samples := sample_fingerprint s :: !samples);
          }
  in
  let results =
    engine ?probe hier ~flows ~warmup_cycles:20_000 ~measure_cycles:60_000
  in
  (List.map result_fingerprint results, List.rev !samples)

(* The engine's contract is that [batch] can never be observable: the
   run-ahead horizon fixes the interleaving and the batch size only caps
   burst length. So every batch size — including 1, the degenerate
   op-at-a-time case — must match the reference byte for byte. *)
let batches = [ 1; 2; 7; 32; 256 ]

let batched b ?probe hier ~flows ~warmup_cycles ~measure_cycles =
  Engine.run ?probe ~batch:b hier ~flows ~warmup_cycles ~measure_cycles

let prop_equiv =
  QCheck.Test.make ~count:12
    ~name:
      "batched engine = reference engine, batch in {1,2,7,32,256} (results \
       + probe samples)"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 4) (int_bound 100))
        small_nat
        (option (int_range 1_000 30_000)))
    (fun (kind_ixs, seed, sample_cycles) ->
      let reference =
        run_once Ref_engine.run ~seed ~kind_ixs ~sample_cycles
      in
      List.for_all
        (fun b ->
          run_once (batched b) ~seed ~kind_ixs ~sample_cycles = reference)
        batches)

(* Same check on the one deterministic corner qcheck rarely draws: every
   realistic type at once, filling all four tiny cores. *)
let test_equiv_full_machine () =
  let kind_ixs = [ 0; 1; 2; 3 ] in
  let reference =
    run_once Ref_engine.run ~seed:7 ~kind_ixs ~sample_cycles:(Some 7_500)
  in
  List.iter
    (fun b ->
      let optimized =
        run_once (batched b) ~seed:7 ~kind_ixs ~sample_cycles:(Some 7_500)
      in
      Alcotest.(check bool)
        (Printf.sprintf "4-core co-run identical at batch %d" b)
        true
        (reference = optimized))
    batches

let tests =
  [
    QCheck_alcotest.to_alcotest prop_equiv;
    Alcotest.test_case "full tiny machine co-run" `Quick
      test_equiv_full_machine;
  ]
