(* Tests for the telemetry subsystem: the deterministic JSON serializer,
   the conservation law of time-sliced sampling (per-slice counter deltas
   telescope to the full-window diff), byte-identical exports across job
   counts, and the machine-readable registry/manifest/trace shapes. *)

open Ppp_telemetry

(* Every test restores the recorder's disabled default, even on failure:
   the recorder is process-global and other suites assume it is off. *)
let with_recorder ~sample_cycles f =
  Recorder.reset ();
  Recorder.configure ~sample_cycles ~spans:false ();
  Fun.protect ~finally:Recorder.reset f

let quick =
  Ppp_core.Runner.Params.(
    quick |> with_windows ~warmup:100_000 ~measure:300_000)

(* --- Json --- *)

let test_json_repr () =
  Alcotest.(check string) "integral float" "42" (Json.float_repr 42.0);
  Alcotest.(check string) "fractional float" "0.15" (Json.float_repr 0.15);
  Alcotest.(check string) "nan is null" "null" (Json.float_repr Float.nan);
  Alcotest.(check string)
    "infinity is null" "null"
    (Json.float_repr Float.infinity);
  Alcotest.(check string)
    "minified object" {|{"a":1,"b":[true,null,"x"]}|}
    (Json.to_string ~minify:true
       (Json.Obj
          [
            ("a", Json.Int 1);
            ("b", Json.Arr [ Json.Bool true; Json.Null; Json.Str "x" ]);
          ]))

let test_json_escaping () =
  let s = Json.to_string ~minify:true (Json.Str "a\"b\\c\n\t\x01") in
  Alcotest.(check string) "escaped" {|"a\"b\\c\n\t\u0001"|} s

let test_json_pretty () =
  let s =
    Json.to_string (Json.Obj [ ("k", Json.Arr [ Json.Int 1; Json.Int 2 ]) ])
  in
  Alcotest.(check string) "2-space indent, stable layout"
    "{\n  \"k\": [\n    1,\n    2\n  ]\n}" s

(* --- conservation: slices telescope to the window totals --- *)

let check_series_against (r : Ppp_hw.Engine.result) (s : Timeseries.t) =
  let sum = Timeseries.sum_slices s in
  let c = r.Ppp_hw.Engine.counters in
  Alcotest.(check int) "packets conserved" r.Ppp_hw.Engine.packets
    sum.Timeseries.packets;
  Alcotest.(check int) "instructions conserved"
    (Ppp_hw.Counters.instructions c)
    sum.Timeseries.instructions;
  Alcotest.(check int) "l1 hits conserved" (Ppp_hw.Counters.l1_hits c)
    sum.Timeseries.l1_hits;
  Alcotest.(check int) "l2 hits conserved" (Ppp_hw.Counters.l2_hits c)
    sum.Timeseries.l2_hits;
  Alcotest.(check int) "l3 hits conserved" (Ppp_hw.Counters.l3_hits c)
    sum.Timeseries.l3_hits;
  Alcotest.(check int) "l3 misses conserved" (Ppp_hw.Counters.l3_misses c)
    sum.Timeseries.l3_misses;
  Alcotest.(check int) "reads conserved" (Ppp_hw.Counters.reads c)
    sum.Timeseries.reads;
  Alcotest.(check int) "writes conserved" (Ppp_hw.Counters.writes c)
    sum.Timeseries.writes;
  Alcotest.(check int) "slices span the window" r.Ppp_hw.Engine.window_cycles
    (sum.Timeseries.t_end - sum.Timeseries.t_start);
  (* Contiguity: each slice starts where the previous one ended. *)
  ignore
    (List.fold_left
       (fun prev (sl : Timeseries.slice) ->
         (match prev with
         | Some t -> Alcotest.(check int) "slices contiguous" t sl.t_start
         | None -> ());
         Some sl.Timeseries.t_end)
       None s.Timeseries.slices)

let prop_conservation =
  QCheck.Test.make ~count:30
    ~name:"per-slice deltas sum exactly to the window counters"
    QCheck.(
      triple (int_range 1 500) (int_range 0 3)
        (int_range 17_000 400_000))
    (fun (seed, kind_idx, sample_cycles) ->
      let kind =
        List.nth Ppp_apps.App.[ IP; MON; FW; RE ] kind_idx
      in
      let params = { quick with Ppp_core.Runner.seed; cell = "prop" } in
      with_recorder ~sample_cycles (fun () ->
          let rs =
            Ppp_core.Runner.run ~params
              [
                Ppp_core.Runner.flow_on ~core:0 kind;
                Ppp_core.Runner.flow_on ~core:1 Ppp_apps.App.syn_max;
              ]
          in
          let series = Recorder.series () in
          Alcotest.(check int) "one series per core" (List.length rs)
            (List.length series);
          List.iter
            (fun (r : Ppp_hw.Engine.result) ->
              match
                List.find_opt
                  (fun (s : Timeseries.t) ->
                    s.Timeseries.core = r.Ppp_hw.Engine.core)
                  series
              with
              | Some s -> check_series_against r s
              | None -> Alcotest.fail "missing series for core")
            rs;
          true))

let test_tiny_slice_length () =
  (* sample_cycles = 1: one slice per operation completion — the extreme
     case for boundary jitter; conservation must still hold exactly. *)
  let params =
    {
      quick with
      Ppp_core.Runner.warmup_cycles = 5_000;
      measure_cycles = 10_000;
      cell = "prop";
    }
  in
  with_recorder ~sample_cycles:1 (fun () ->
      let rs =
        Ppp_core.Runner.run ~params
          [ Ppp_core.Runner.flow_on ~core:0 Ppp_apps.App.MON ]
      in
      match (rs, Recorder.series ()) with
      | [ r ], [ s ] -> check_series_against r s
      | _ -> Alcotest.fail "expected one result and one series")

(* --- determinism: exports byte-identical across job counts --- *)

let with_jobs n f =
  let prev = Ppp_core.Parallel.configured_jobs () in
  Ppp_core.Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Ppp_core.Parallel.set_jobs prev) f

let fig2_exports ~jobs =
  with_jobs jobs (fun () ->
      with_recorder ~sample_cycles:100_000 (fun () ->
          Recorder.set_experiment "fig2";
          let rendered =
            (Ppp_experiments.Fig2_exp.run ~params:quick ())
              .Ppp_experiments.Output.text
          in
          let csv = Csv.series_csv (Recorder.series ()) in
          let trace =
            Json.to_string
              (Export.deterministic_trace
                 ~meta:[ ("tool", Json.Str "test") ])
          in
          (rendered, csv, trace)))

let test_jobs_byte_equality () =
  let r1, c1, t1 = fig2_exports ~jobs:1 in
  let r4, c4, t4 = fig2_exports ~jobs:4 in
  Alcotest.(check string) "rendered tables unchanged by telemetry" r1 r4;
  Alcotest.(check string) "series CSV byte-identical --jobs 1 vs 4" c1 c4;
  Alcotest.(check string) "deterministic trace byte-identical" t1 t4;
  Alcotest.(check bool) "CSV is non-trivial" true
    (String.length c1 > 100 && String.split_on_char '\n' c1 |> List.length > 2)

(* --- registry --- *)

let test_registry_json () =
  match Ppp_experiments.Registry.to_json () with
  | Json.Arr entries ->
      let ids =
        List.map
          (function
            | Json.Obj kvs -> (
                match List.assoc_opt "id" kvs with
                | Some (Json.Str id) -> id
                | _ -> Alcotest.fail "entry without string id")
            | _ -> Alcotest.fail "entry is not an object")
          entries
      in
      Alcotest.(check (list string))
        "every registered id, in order"
        (Ppp_experiments.Registry.ids ())
        ids
  | _ -> Alcotest.fail "to_json is not an array"

(* --- manifest + trace shape --- *)

let manifest_run =
  {
    Manifest.tool = "test";
    machine = "tiny";
    seed = 42;
    warmup_cycles = 100_000;
    measure_cycles = 300_000;
    jobs_configured = 1;
    jobs_effective = 1;
    sample_cycles = Some 100_000;
  }

let minified_contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
  go 0

let test_manifest_shape () =
  with_recorder ~sample_cycles:100_000 (fun () ->
      Recorder.record_experiment ~id:"fig2" ~title:"t" ~paper_ref:"Figure 2"
        ~wall_s:1.5;
      let j =
        Manifest.json ~run:manifest_run
          ~experiments:(Recorder.experiments ())
          ~series:(Recorder.series ()) ~spans:(Recorder.spans ()) ()
      in
      let s = Json.to_string ~minify:true j in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "manifest mentions %s" needle)
            true (minified_contains s needle))
        [
          "ppp-telemetry/5"; "\"schema_version\":5"; "\"tool\":\"test\"";
          "\"fig2\""; "wall_clock"; "\"profile\":{\"entries\":0";
        ])

let test_manifest_alerts_shape () =
  (* The alerts section is always present: empty-but-valid with no events,
     a per-name count breakdown with some. *)
  with_recorder ~sample_cycles:100_000 (fun () ->
      let manifest () =
        Json.to_string ~minify:true
          (Manifest.json
             ~events:(Recorder.events ())
             ~run:manifest_run ~experiments:[] ~series:[] ~spans:[] ())
      in
      let empty = manifest () in
      Alcotest.(check bool) "empty alerts section is the valid empty shape"
        true
        (minified_contains empty {|"alerts":{"events":0,"by_name":{}}|});
      Recorder.set_experiment "monitor";
      let ev name =
        {
          Event.experiment = "";
          cell = "monitor/loud";
          t_cycles = 1_000_000;
          core = 1;
          flow = "two-faced";
          name;
          args = [];
        }
      in
      Recorder.add_events
        [ ev "monitor.hidden_aggressor"; ev "monitor.recovered";
          ev "monitor.hidden_aggressor" ];
      Recorder.set_experiment "";
      let s = manifest () in
      Alcotest.(check bool) "per-name counts, names sorted" true
        (minified_contains s
           {|"alerts":{"events":3,"by_name":{"monitor.hidden_aggressor":2,"monitor.recovered":1}}|}))

let test_manifest_classifier_shape () =
  (* Schema 3's classifier section mirrors the alerts contract: always
     present, empty-but-valid without data, per-cell counters with some. *)
  with_recorder ~sample_cycles:100_000 (fun () ->
      let manifest classifier =
        Json.to_string ~minify:true
          (Manifest.json ~classifier ~run:manifest_run ~experiments:[]
             ~series:[] ~spans:[] ())
      in
      let empty = manifest [] in
      Alcotest.(check bool) "empty classifier section is the valid shape" true
        (minified_contains empty
           {|"classifier":{"cells":0,"lookups":0,"hits":0,"upcalls":0,"installs":0,"evictions":0,"by_cell":[]}|});
      let entry =
        {
          Recorder.cls_cell = "classifier/tss/128/0.0";
          cls_backend = "tss";
          cls_rules = 128;
          cls_lookups = 1000;
          cls_hits = 700;
          cls_upcalls = 300;
          cls_installs = 290;
          cls_evictions = 12;
        }
      in
      let s = manifest [ entry ] in
      Alcotest.(check bool) "totals summed over cells" true
        (minified_contains s
           {|"cells":1,"lookups":1000,"hits":700,"upcalls":300,"installs":290,"evictions":12|});
      Alcotest.(check bool) "per-cell entry carries backend and cell label"
        true
        (minified_contains s
           {|{"cell":"classifier/tss/128/0.0","backend":"tss","rules":128,|}))

let test_manifest_traffic_shape () =
  (* Schema 4's traffic section follows the same contract: always present,
     empty-but-valid without data, per-cell counters with some. *)
  with_recorder ~sample_cycles:100_000 (fun () ->
      let manifest traffic =
        Json.to_string ~minify:true
          (Manifest.json ~traffic ~run:manifest_run ~experiments:[] ~series:[]
             ~spans:[] ())
      in
      let empty = manifest [] in
      Alcotest.(check bool) "empty traffic section is the valid shape" true
        (minified_contains empty
           {|"traffic":{"cells":0,"packets":0,"reorders":0,"migrations":0,"evictions":0,"false_alerts":0,"by_cell":[]}|});
      let entry =
        {
          Recorder.tr_cell = "traffic/heavy/1.1/fdir";
          tr_model = "heavy";
          tr_steering = "fdir";
          tr_packets = 5000;
          tr_reorders = 17;
          tr_migrations = 17;
          tr_evictions = 42;
          tr_false_alerts = 1;
          tr_predicted_drop = 0.25;
          tr_measured_drop = 0.31;
        }
      in
      let s = manifest [ entry ] in
      Alcotest.(check bool) "totals summed over cells" true
        (minified_contains s
           {|"cells":1,"packets":5000,"reorders":17,"migrations":17,"evictions":42,"false_alerts":1|});
      Alcotest.(check bool) "per-cell entry carries model and steering" true
        (minified_contains s
           {|{"cell":"traffic/heavy/1.1/fdir","model":"heavy","steering":"fdir",|}))

let test_trace_shape () =
  with_recorder ~sample_cycles:100_000 (fun () ->
      Recorder.set_experiment "fig2";
      ignore
        (Ppp_core.Runner.run
           ~params:{ quick with Ppp_core.Runner.cell = "pair" }
           [ Ppp_core.Runner.flow_on ~core:0 Ppp_apps.App.MON ]
          : Ppp_hw.Engine.result list);
      match Export.deterministic_trace ~meta:[] with
      | Json.Obj kvs ->
          (match List.assoc_opt "traceEvents" kvs with
          | Some (Json.Arr evs) ->
              Alcotest.(check bool) "has events" true (List.length evs > 0);
              let phases =
                List.filter_map
                  (function
                    | Json.Obj e -> (
                        match List.assoc_opt "ph" e with
                        | Some (Json.Str p) -> Some p
                        | _ -> None)
                    | _ -> None)
                  evs
              in
              Alcotest.(check bool) "metadata events present" true
                (List.mem "M" phases);
              Alcotest.(check bool) "counter events present" true
                (List.mem "C" phases);
              Alcotest.(check bool)
                "no wall-clock spans in the deterministic trace" false
                (List.mem "X" phases)
          | _ -> Alcotest.fail "traceEvents missing");
          Alcotest.(check bool) "displayTimeUnit set" true
            (List.mem_assoc "displayTimeUnit" kvs)
      | _ -> Alcotest.fail "trace is not an object")

let test_recorder_validation () =
  Alcotest.check_raises "sample_cycles < 1 rejected"
    (Invalid_argument "Recorder.configure: sample_cycles must be >= 1")
    (fun () -> Recorder.configure ~sample_cycles:0 ());
  Recorder.reset ();
  Alcotest.(check (option int)) "off by default" None (Recorder.sampling ());
  Alcotest.(check bool) "spans off by default" false (Recorder.spans_enabled ())

let tests =
  [
    Alcotest.test_case "json float/int repr" `Quick test_json_repr;
    Alcotest.test_case "json string escaping" `Quick test_json_escaping;
    Alcotest.test_case "json pretty layout" `Quick test_json_pretty;
    QCheck_alcotest.to_alcotest prop_conservation;
    Alcotest.test_case "conservation at slice length 1" `Quick
      test_tiny_slice_length;
    Alcotest.test_case "exports byte-identical across --jobs" `Slow
      test_jobs_byte_equality;
    Alcotest.test_case "registry --json lists every experiment" `Quick
      test_registry_json;
    Alcotest.test_case "manifest shape" `Quick test_manifest_shape;
    Alcotest.test_case "manifest alerts section" `Quick
      test_manifest_alerts_shape;
    Alcotest.test_case "manifest classifier section" `Quick
      test_manifest_classifier_shape;
    Alcotest.test_case "manifest traffic section" `Quick
      test_manifest_traffic_shape;
    Alcotest.test_case "deterministic trace shape" `Quick test_trace_shape;
    Alcotest.test_case "recorder validation and defaults" `Quick
      test_recorder_validation;
  ]
