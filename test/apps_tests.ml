open Ppp_apps

let heap () = Ppp_simmem.Heap.create ~node:0
let builder () = Ppp_hw.Trace.Builder.create ()
let fn = Ppp_hw.Fn.none

(* --- Radix trie --- *)

let ip = Ppp_net.Ipv4.addr_of_string

let test_trie_basic_lpm () =
  let t = Radix_trie.create ~heap:(heap ()) ~default_hop:0 () in
  Radix_trie.add_route t ~prefix:(ip "10.0.0.0") ~plen:8 ~hop:1;
  Radix_trie.add_route t ~prefix:(ip "10.1.0.0") ~plen:16 ~hop:2;
  Radix_trie.add_route t ~prefix:(ip "10.1.2.0") ~plen:24 ~hop:3;
  Radix_trie.add_route t ~prefix:(ip "10.1.2.128") ~plen:25 ~hop:4;
  Alcotest.(check int) "/8" 1 (Radix_trie.lookup_quiet t (ip "10.9.9.9"));
  Alcotest.(check int) "/16" 2 (Radix_trie.lookup_quiet t (ip "10.1.9.9"));
  Alcotest.(check int) "/24" 3 (Radix_trie.lookup_quiet t (ip "10.1.2.9"));
  Alcotest.(check int) "/25" 4 (Radix_trie.lookup_quiet t (ip "10.1.2.200"));
  Alcotest.(check int) "default" 0 (Radix_trie.lookup_quiet t (ip "11.0.0.1"))

let test_trie_host_route () =
  let t = Radix_trie.create ~heap:(heap ()) ~default_hop:99 () in
  Radix_trie.add_route t ~prefix:(ip "1.2.3.4") ~plen:32 ~hop:7;
  Alcotest.(check int) "exact" 7 (Radix_trie.lookup_quiet t (ip "1.2.3.4"));
  Alcotest.(check int) "neighbour -> default" 99
    (Radix_trie.lookup_quiet t (ip "1.2.3.5"))

let test_trie_default_route () =
  let t = Radix_trie.create ~heap:(heap ()) ~default_hop:0 () in
  Radix_trie.add_route t ~prefix:0 ~plen:0 ~hop:5;
  Alcotest.(check int) "/0 matches all" 5
    (Radix_trie.lookup_quiet t (ip "203.0.113.9"))

let test_trie_overwrite_same_plen () =
  let t = Radix_trie.create ~heap:(heap ()) ~default_hop:0 () in
  Radix_trie.add_route t ~prefix:(ip "10.1.2.0") ~plen:24 ~hop:3;
  Radix_trie.add_route t ~prefix:(ip "10.1.2.0") ~plen:24 ~hop:8;
  Alcotest.(check int) "later route wins" 8
    (Radix_trie.lookup_quiet t (ip "10.1.2.1"))

let test_trie_more_specific_preserved_across_order () =
  let t = Radix_trie.create ~heap:(heap ()) ~default_hop:0 () in
  (* Specific inserted first, then covering route: specific must survive. *)
  Radix_trie.add_route t ~prefix:(ip "10.1.2.0") ~plen:24 ~hop:3;
  Radix_trie.add_route t ~prefix:(ip "10.0.0.0") ~plen:8 ~hop:1;
  Alcotest.(check int) "specific survives" 3
    (Radix_trie.lookup_quiet t (ip "10.1.2.77"));
  Alcotest.(check int) "covering applies elsewhere" 1
    (Radix_trie.lookup_quiet t (ip "10.200.0.1"))

let test_trie_instrumented_matches_quiet () =
  let t = Radix_trie.create ~heap:(heap ()) ~default_hop:0 () in
  Radix_trie.add_route t ~prefix:(ip "10.1.2.0") ~plen:24 ~hop:3;
  let b = builder () in
  Alcotest.(check int) "same result" (Radix_trie.lookup_quiet t (ip "10.1.2.9"))
    (Radix_trie.lookup t b ~fn (ip "10.1.2.9"));
  Alcotest.(check bool) "emitted refs" true
    (Ppp_hw.Trace.Builder.length b > 0)

let test_trie_rejects_bad_input () =
  let t = Radix_trie.create ~heap:(heap ()) ~default_hop:0 () in
  Alcotest.check_raises "plen" (Invalid_argument "Radix_trie.add_route: plen")
    (fun () -> Radix_trie.add_route t ~prefix:0 ~plen:33 ~hop:1);
  Alcotest.check_raises "hop" (Invalid_argument "Radix_trie.add_route: hop")
    (fun () -> Radix_trie.add_route t ~prefix:0 ~plen:8 ~hop:0)

(* Oracle comparison: linear scan over the route list. *)
let oracle routes dst =
  let best = ref (0, -1) in
  List.iter
    (fun (prefix, plen, hop) ->
      let shift = 32 - plen in
      let matches =
        plen = 0 || (dst lsr shift) land ((1 lsl plen) - 1) = (prefix lsr shift) land ((1 lsl plen) - 1)
      in
      if matches && plen > snd !best then best := (hop, plen))
    routes;
  fst !best

let prop_trie_matches_oracle =
  QCheck.Test.make ~count:60 ~name:"trie LPM equals linear-scan oracle"
    QCheck.(
      pair
        (list_of_size
           Gen.(int_range 1 40)
           (triple (int_bound 0xFFFFFFFF) (int_range 8 32) (int_range 1 65535)))
        (list_of_size Gen.(int_range 1 40) (int_bound 0xFFFFFFFF)))
    (fun (routes, dsts) ->
      (* Insertion order resolves equal-plen overlaps: later wins in both. *)
      let t = Radix_trie.create ~heap:(heap ()) ~max_nodes:4096 ~default_hop:0 () in
      List.iter
        (fun (prefix, plen, hop) -> Radix_trie.add_route t ~prefix ~plen ~hop)
        routes;
      let oracle_routes =
        (* Deduplicate to the last route per (masked prefix, plen). *)
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (prefix, plen, hop) ->
            let key = (prefix lsr (32 - plen), plen) in
            Hashtbl.replace tbl key (prefix, plen, hop))
          routes;
        Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
      in
      List.for_all
        (fun dst -> Radix_trie.lookup_quiet t dst = oracle oracle_routes dst)
        dsts)

(* --- Netflow --- *)

let mk_packet ?(sport = 1234) ?(dport = 80) () =
  let p = Ppp_net.Packet.create 128 in
  Ppp_traffic.Gen.fill_ipv4_udp p ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2")
    ~sport ~dport ~wire_len:96;
  p

let test_netflow_accounting () =
  let nf = Netflow.create ~heap:(heap ()) ~entries:64 in
  let b = builder () in
  let p = mk_packet () in
  Netflow.update nf b ~fn p ~now:1;
  Netflow.update nf b ~fn p ~now:2;
  let key = Ppp_net.Flowid.of_packet p in
  (match Netflow.find nf key with
  | Some e ->
      Alcotest.(check int) "packets" 2 e.Netflow.packets;
      Alcotest.(check int) "bytes" (2 * 96) e.Netflow.bytes;
      Alcotest.(check int) "last seen" 2 e.Netflow.last_seen
  | None -> Alcotest.fail "flow not found");
  Alcotest.(check int) "one active flow" 1 (Netflow.active_flows nf)

let test_netflow_distinct_flows () =
  let nf = Netflow.create ~heap:(heap ()) ~entries:64 in
  let b = builder () in
  for sport = 1 to 20 do
    Netflow.update nf b ~fn (mk_packet ~sport ()) ~now:sport
  done;
  Alcotest.(check int) "twenty flows" 20 (Netflow.active_flows nf)

let test_netflow_capacity_pow2 () =
  let nf = Netflow.create ~heap:(heap ()) ~entries:100 in
  Alcotest.(check int) "rounded" 128 (Netflow.capacity nf)

let test_netflow_eviction_under_pressure () =
  let nf = Netflow.create ~heap:(heap ()) ~entries:16 in
  let b = builder () in
  for sport = 1 to 200 do
    Netflow.update nf b ~fn (mk_packet ~sport ()) ~now:sport
  done;
  Alcotest.(check bool) "evicted some flows" true (Netflow.evictions nf > 0);
  Alcotest.(check bool) "table did not explode" true
    (Netflow.active_flows nf <= Netflow.capacity nf)

(* --- Firewall --- *)

let test_firewall_match_semantics () =
  let r =
    {
      Firewall.rule_any with
      Firewall.src = ip "10.0.0.0";
      src_mask = 0xFF000000;
      dport_lo = 80;
      dport_hi = 80;
      proto = Ppp_net.Ipv4.proto_udp;
    }
  in
  Alcotest.(check bool) "matches" true (Firewall.matches r (mk_packet ()));
  Alcotest.(check bool) "wrong port" false
    (Firewall.matches r (mk_packet ~dport:81 ()));
  let r_tcp = { r with Firewall.proto = Ppp_net.Ipv4.proto_tcp } in
  Alcotest.(check bool) "wrong proto" false (Firewall.matches r_tcp (mk_packet ()))

let test_firewall_first_match_wins () =
  let pass_rule =
    { Firewall.rule_any with Firewall.src = ip "11.0.0.0"; src_mask = 0xFF000000 }
  in
  let fw = Firewall.create ~heap:(heap ()) [ pass_rule; Firewall.rule_any ] in
  let b = builder () in
  Alcotest.(check (option int)) "second rule matches" (Some 1)
    (Firewall.check fw b ~fn (mk_packet ()))

let test_firewall_no_match_scans_all () =
  let rules =
    List.init 10 (fun _ ->
        { Firewall.rule_any with Firewall.src = ip "11.0.0.0"; src_mask = 0xFFFFFFFF })
  in
  let fw = Firewall.create ~heap:(heap ()) rules in
  let b = builder () in
  Alcotest.(check (option int)) "no match" None (Firewall.check fw b ~fn (mk_packet ()));
  (* One read per rule; 10 rules at 16B pack into 3 distinct lines. *)
  let t = Ppp_hw.Trace.Builder.finish b in
  Alcotest.(check int) "one read per rule" 10 (Ppp_hw.Trace.mem_refs t);
  let lines = Hashtbl.create 8 in
  Ppp_hw.Trace.iter t (fun k _ p ->
      if k = Ppp_hw.Trace.Read then Hashtbl.replace lines (p / 64) ());
  Alcotest.(check int) "three distinct lines" 3 (Hashtbl.length lines)

(* --- AES --- *)

let hex s =
  let n = String.length s / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let test_aes_fips197_vector () =
  (* FIPS-197 Appendix B: key 2b7e151628aed2a6abf7158809cf4f3c,
     plaintext 3243f6a8885a308d313198a2e0370734 ->
     ciphertext 3925841d02dc09fbdc118597196a0b32. *)
  let key = Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let b = Bytes.of_string (hex "3243f6a8885a308d313198a2e0370734") in
  Aes.encrypt_block key b ~src:0 ~dst:0;
  Alcotest.(check string) "fips ciphertext" (hex "3925841d02dc09fbdc118597196a0b32")
    (Bytes.to_string b)

let test_aes_fips197_appendix_c () =
  (* FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff. *)
  let key = Aes.expand_key (hex "000102030405060708090a0b0c0d0e0f") in
  let b = Bytes.of_string (hex "00112233445566778899aabbccddeeff") in
  Aes.encrypt_block key b ~src:0 ~dst:0;
  Alcotest.(check string) "appendix C" (hex "69c4e0d86a7b0430d8cdb78070b4c55a")
    (Bytes.to_string b)

let test_aes_decrypt_inverts () =
  let key = Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let original = hex "00112233445566778899aabbccddeeff" in
  let b = Bytes.of_string original in
  Aes.encrypt_block key b ~src:0 ~dst:0;
  Alcotest.(check bool) "changed" true (Bytes.to_string b <> original);
  Aes.decrypt_block key b ~src:0 ~dst:0;
  Alcotest.(check string) "restored" original (Bytes.to_string b)

let test_aes_ctr_matches_block_cipher () =
  (* CTR keystream for block k must equal E(nonce || counter+k). *)
  let key = Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let nonce = hex "f0f1f2f3f4f5f6f7" in
  let counter = 0x1122334455667 in
  let pt = hex "6bc1bee22e409f96e93d7e117393172a" in
  let b = Bytes.of_string pt in
  Aes.ctr_transform key ~nonce ~counter b ~pos:0 ~len:16;
  let block = Bytes.create 16 in
  String.iteri (fun i c -> Bytes.set block i c) nonce;
  for i = 0 to 7 do
    Bytes.set block (8 + i) (Char.chr ((counter lsr (8 * (7 - i))) land 0xFF))
  done;
  Aes.encrypt_block key block ~src:0 ~dst:0;
  let expected =
    String.init 16 (fun i ->
        Char.chr (Char.code pt.[i] lxor Char.code (Bytes.get block i)))
  in
  Alcotest.(check string) "ctr = pt xor E(ctr-block)" expected (Bytes.to_string b)

let test_aes_ctr_involutive () =
  let key = Aes.expand_key "0123456789abcdef" in
  let original = String.init 100 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let b = Bytes.of_string original in
  Aes.ctr_transform key ~nonce:"\x00\x01\x02\x03\x04\x05\x06\x07" ~counter:5 b
    ~pos:0 ~len:100;
  Aes.ctr_transform key ~nonce:"\x00\x01\x02\x03\x04\x05\x06\x07" ~counter:5 b
    ~pos:0 ~len:100;
  Alcotest.(check string) "double CTR restores" original (Bytes.to_string b)

let prop_aes_roundtrip =
  QCheck.Test.make ~count:50 ~name:"AES decrypt . encrypt = id"
    QCheck.(pair (string_of_size (Gen.return 16)) (string_of_size (Gen.return 16)))
    (fun (k, pt) ->
      let key = Aes.expand_key k in
      let b = Bytes.of_string pt in
      Aes.encrypt_block key b ~src:0 ~dst:0;
      Aes.decrypt_block key b ~src:0 ~dst:0;
      Bytes.to_string b = pt)

(* --- Rabin --- *)

let test_rabin_roll_equals_init () =
  let data = Bytes.init 200 (fun i -> Char.chr ((i * 31 + 7) land 0xFF)) in
  let st = ref (Rabin.init data ~pos:0) in
  for pos = 1 to 200 - Rabin.window do
    st := Rabin.roll !st data ~pos;
    Alcotest.(check int)
      (Printf.sprintf "rolling at %d" pos)
      (Rabin.fingerprint data ~pos) (Rabin.value !st)
  done

let test_rabin_content_determined () =
  let a = Bytes.of_string (String.make 40 'x') in
  let b = Bytes.of_string ("abcd" ^ String.make 40 'x') in
  Alcotest.(check int) "position independent"
    (Rabin.fingerprint a ~pos:0)
    (Rabin.fingerprint b ~pos:4)

let prop_rabin_roll_consistency =
  QCheck.Test.make ~count:100 ~name:"rabin roll = fresh fingerprint"
    QCheck.(pair (string_of_size (Gen.return 64)) (int_range 1 31))
    (fun (s, pos) ->
      let b = Bytes.of_string s in
      let st = Rabin.init b ~pos:(pos - 1) in
      Rabin.value (Rabin.roll st b ~pos) = Rabin.fingerprint b ~pos)

(* --- Packet store --- *)

let test_store_append_read () =
  let ps = Packet_store.create ~heap:(heap ()) ~capacity:256 in
  let b = builder () in
  let data = Bytes.of_string "hello, packet store!" in
  let off = Packet_store.append ps b ~fn data ~pos:0 ~len:20 in
  Alcotest.(check int) "first offset" 0 off;
  let out = Bytes.make 20 '\x00' in
  Packet_store.read ps b ~fn ~off ~len:20 out ~dst:0;
  Alcotest.(check string) "roundtrip" "hello, packet store!" (Bytes.to_string out)

let test_store_wraparound () =
  let ps = Packet_store.create ~heap:(heap ()) ~capacity:64 in
  let b = builder () in
  let chunk = Bytes.of_string (String.init 48 (fun i -> Char.chr (65 + i))) in
  ignore (Packet_store.append ps b ~fn chunk ~pos:0 ~len:48);
  let off2 = Packet_store.append ps b ~fn chunk ~pos:0 ~len:48 in
  (* Second chunk wraps; it must read back intact. *)
  let out = Bytes.make 48 '\x00' in
  Packet_store.read ps b ~fn ~off:off2 ~len:48 out ~dst:0;
  Alcotest.(check string) "wrapped readback" (Bytes.to_string chunk)
    (Bytes.to_string out);
  (* The first chunk is now partially overwritten: stale. *)
  Alcotest.(check bool) "stale content rejected" false
    (Packet_store.readable ps ~off:0 ~len:48)

let test_store_byte_at () =
  let ps = Packet_store.create ~heap:(heap ()) ~capacity:128 in
  let b = builder () in
  ignore (Packet_store.append ps b ~fn (Bytes.of_string "XYZ") ~pos:0 ~len:3);
  Alcotest.(check char) "byte 1" 'Y' (Packet_store.byte_at ps 1)

(* --- Fingerprint table --- *)

let test_ft_insert_lookup () =
  let ft = Fingerprint_table.create ~heap:(heap ()) ~entries:1024 in
  let b = builder () in
  Fingerprint_table.insert ft b ~fn ~fp:123456 ~off:789;
  Alcotest.(check (option int)) "found" (Some 789)
    (Fingerprint_table.lookup ft b ~fn ~fp:123456);
  Alcotest.(check (option int)) "absent" None
    (Fingerprint_table.lookup ft b ~fn ~fp:99)

let test_ft_overwrite () =
  let ft = Fingerprint_table.create ~heap:(heap ()) ~entries:1024 in
  let b = builder () in
  Fingerprint_table.insert ft b ~fn ~fp:42 ~off:1;
  Fingerprint_table.insert ft b ~fn ~fp:42 ~off:2;
  Alcotest.(check (option int)) "newest wins" (Some 2)
    (Fingerprint_table.lookup ft b ~fn ~fp:42)

(* --- RE --- *)

let re_pair () =
  let h = heap () in
  let mk () =
    Re.create ~heap:h ~store_bytes:65536 ~table_entries:4096 ~sample_mask:7 ()
  in
  (mk (), mk ())

let test_re_roundtrip_random () =
  let encoder, decoder = re_pair () in
  let b = builder () in
  let rng = Ppp_util.Rng.create ~seed:77 in
  let out = Bytes.make 4096 '\x00' in
  let dec = Bytes.make 4096 '\x00' in
  for _ = 1 to 50 do
    let len = 100 + Ppp_util.Rng.int rng 900 in
    let payload = Bytes.create len in
    Ppp_util.Rng.fill_bytes rng payload;
    let enc_len = Re.encode encoder b ~fn payload ~pos:0 ~len ~out in
    let dec_len = Re.decode decoder b ~fn out ~pos:0 ~len:enc_len ~out:dec in
    Alcotest.(check int) "length preserved" len dec_len;
    Alcotest.(check string) "content preserved"
      (Bytes.to_string payload)
      (Bytes.sub_string dec 0 dec_len)
  done

let test_re_compresses_redundancy () =
  let encoder, decoder = re_pair () in
  let b = builder () in
  let out = Bytes.make 4096 '\x00' in
  let dec = Bytes.make 4096 '\x00' in
  let payload = Bytes.of_string (String.init 512 (fun i -> Char.chr ((i * 13 + 5) land 0xFF))) in
  (* First sighting: roughly incompressible. *)
  let len1 = Re.encode encoder b ~fn payload ~pos:0 ~len:512 ~out in
  ignore (Re.decode decoder b ~fn out ~pos:0 ~len:len1 ~out:dec);
  (* Second sighting of identical content: strong compression. *)
  let len2 = Re.encode encoder b ~fn payload ~pos:0 ~len:512 ~out in
  Alcotest.(check bool) "second copy much smaller" true (len2 < 512 / 3);
  let dec_len = Re.decode decoder b ~fn out ~pos:0 ~len:len2 ~out:dec in
  Alcotest.(check string) "decoded identical" (Bytes.to_string payload)
    (Bytes.sub_string dec 0 dec_len);
  let stats = Re.stats encoder in
  Alcotest.(check bool) "matches recorded" true (stats.Re.matches > 0)

let test_re_escape_handling () =
  let encoder, decoder = re_pair () in
  let b = builder () in
  let out = Bytes.make 4096 '\x00' in
  let dec = Bytes.make 4096 '\x00' in
  (* Payload full of the escape byte. *)
  let payload = Bytes.make 100 '\xFE' in
  let enc_len = Re.encode encoder b ~fn payload ~pos:0 ~len:100 ~out in
  Alcotest.(check bool) "escaping grows output" true (enc_len > 100);
  let dec_len = Re.decode decoder b ~fn out ~pos:0 ~len:enc_len ~out:dec in
  Alcotest.(check string) "escape roundtrip" (Bytes.to_string payload)
    (Bytes.sub_string dec 0 dec_len)

let prop_re_roundtrip =
  QCheck.Test.make ~count:40 ~name:"RE decode . encode = id (stores in sync)"
    QCheck.(list_of_size Gen.(int_range 1 6) (string_of_size Gen.(int_range 40 400)))
    (fun payloads ->
      let encoder, decoder = re_pair () in
      let b = builder () in
      let out = Bytes.make 8192 '\x00' in
      let dec = Bytes.make 8192 '\x00' in
      List.for_all
        (fun s ->
          let payload = Bytes.of_string s in
          let len = Bytes.length payload in
          let enc_len = Re.encode encoder b ~fn payload ~pos:0 ~len ~out in
          let dec_len = Re.decode decoder b ~fn out ~pos:0 ~len:enc_len ~out:dec in
          dec_len = len && Bytes.sub_string dec 0 len = s)
        payloads)

(* --- Route pool + App --- *)

let test_route_pool_deterministic () =
  let a = Route_pool.make ~seed:9 ~n16:8 ~routes:50 in
  let b = Route_pool.make ~seed:9 ~n16:8 ~routes:50 in
  Alcotest.(check bool) "same routes" true (Route_pool.routes a = Route_pool.routes b)

let test_route_pool_dsts_covered () =
  let pool = Route_pool.make ~seed:10 ~n16:8 ~routes:64 in
  let trie =
    Radix_trie.create ~heap:(heap ())
      ~max_nodes:(Route_pool.suggested_max_nodes ~n16:8 ~routes:64)
      ~default_hop:0 ()
  in
  Route_pool.install pool trie;
  let rng = Ppp_util.Rng.create ~seed:1 in
  for _ = 1 to 200 do
    let dst = Route_pool.random_dst pool rng in
    Alcotest.(check bool) "routed" true (Radix_trie.lookup_quiet trie dst > 0)
  done;
  for f = 0 to 100 do
    Alcotest.(check bool) "flow dst routed" true
      (Radix_trie.lookup_quiet trie (Route_pool.dst_of_flow pool f) > 0)
  done

let test_app_names_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (App.name k ^ " roundtrip")
        true
        (App.of_name (App.name k) = Some k))
    (App.realistic @ [ App.syn_max; App.SYN { reads = 3; instrs = 7 } ])

let test_app_of_name_rejects () =
  Alcotest.(check bool) "garbage" true (App.of_name "NOPE" = None);
  Alcotest.(check bool) "bad syn" true (App.of_name "SYN:x:y" = None)

let test_app_builds_all_kinds () =
  List.iter
    (fun kind ->
      let h = heap () in
      let rng = Ppp_util.Rng.create ~seed:3 in
      let b = App.build kind ~heap:h ~rng ~scale:128 in
      Alcotest.(check bool)
        (App.name kind ^ " has elements")
        true
        (List.length b.App.elements > 0);
      (* The source produces valid packets. *)
      let p = Ppp_net.Packet.create 60 in
      (match Ppp_traffic.Source.fill b.App.source p with
      | Ppp_traffic.Source.Filled -> ()
      | Ppp_traffic.Source.Exhausted ->
          Alcotest.fail (App.name kind ^ ": source exhausted"));
      Alcotest.(check int)
        (App.name kind ^ " wire length")
        (App.wire_len kind) p.Ppp_net.Packet.len)
    (App.realistic @ [ App.syn_max ])

let test_app_config_strings_parse () =
  List.iter
    (fun kind ->
      let h = heap () in
      let rng = Ppp_util.Rng.create ~seed:3 in
      let b = App.build kind ~heap:h ~rng ~scale:128 in
      match Ppp_click.Config.parse b.App.config with
      | Ok decls ->
          Alcotest.(check bool)
            (App.name kind ^ " config nonempty")
            true
            (List.length decls >= 3)
      | Error e -> Alcotest.fail (App.name kind ^ ": " ^ e))
    (App.realistic @ [ App.syn_max ])

let test_app_working_sets_ordered () =
  let ws k = App.working_set_bytes k ~scale:8 in
  Alcotest.(check bool) "RE biggest" true
    (ws App.RE > ws App.MON && ws App.MON > ws App.IP)

let tests =
  [
    Alcotest.test_case "trie basic LPM" `Quick test_trie_basic_lpm;
    Alcotest.test_case "trie host route" `Quick test_trie_host_route;
    Alcotest.test_case "trie default route" `Quick test_trie_default_route;
    Alcotest.test_case "trie same-plen overwrite" `Quick test_trie_overwrite_same_plen;
    Alcotest.test_case "trie specific survives order" `Quick test_trie_more_specific_preserved_across_order;
    Alcotest.test_case "trie instrumented = quiet" `Quick test_trie_instrumented_matches_quiet;
    Alcotest.test_case "trie input validation" `Quick test_trie_rejects_bad_input;
    QCheck_alcotest.to_alcotest prop_trie_matches_oracle;
    Alcotest.test_case "netflow accounting" `Quick test_netflow_accounting;
    Alcotest.test_case "netflow distinct flows" `Quick test_netflow_distinct_flows;
    Alcotest.test_case "netflow capacity pow2" `Quick test_netflow_capacity_pow2;
    Alcotest.test_case "netflow eviction" `Quick test_netflow_eviction_under_pressure;
    Alcotest.test_case "firewall match semantics" `Quick test_firewall_match_semantics;
    Alcotest.test_case "firewall first match" `Quick test_firewall_first_match_wins;
    Alcotest.test_case "firewall full scan" `Quick test_firewall_no_match_scans_all;
    Alcotest.test_case "AES FIPS-197 appendix B" `Quick test_aes_fips197_vector;
    Alcotest.test_case "AES FIPS-197 appendix C" `Quick test_aes_fips197_appendix_c;
    Alcotest.test_case "AES decrypt inverts" `Quick test_aes_decrypt_inverts;
    Alcotest.test_case "AES-CTR matches block cipher" `Quick test_aes_ctr_matches_block_cipher;
    Alcotest.test_case "AES-CTR involutive" `Quick test_aes_ctr_involutive;
    QCheck_alcotest.to_alcotest prop_aes_roundtrip;
    Alcotest.test_case "rabin roll = init" `Quick test_rabin_roll_equals_init;
    Alcotest.test_case "rabin content determined" `Quick test_rabin_content_determined;
    QCheck_alcotest.to_alcotest prop_rabin_roll_consistency;
    Alcotest.test_case "packet store roundtrip" `Quick test_store_append_read;
    Alcotest.test_case "packet store wraparound" `Quick test_store_wraparound;
    Alcotest.test_case "packet store byte_at" `Quick test_store_byte_at;
    Alcotest.test_case "fingerprint table" `Quick test_ft_insert_lookup;
    Alcotest.test_case "fingerprint overwrite" `Quick test_ft_overwrite;
    Alcotest.test_case "RE roundtrip random" `Quick test_re_roundtrip_random;
    Alcotest.test_case "RE compresses redundancy" `Quick test_re_compresses_redundancy;
    Alcotest.test_case "RE escape handling" `Quick test_re_escape_handling;
    QCheck_alcotest.to_alcotest prop_re_roundtrip;
    Alcotest.test_case "route pool deterministic" `Quick test_route_pool_deterministic;
    Alcotest.test_case "route pool coverage" `Quick test_route_pool_dsts_covered;
    Alcotest.test_case "app names roundtrip" `Quick test_app_names_roundtrip;
    Alcotest.test_case "app of_name rejects" `Quick test_app_of_name_rejects;
    Alcotest.test_case "app builds all kinds" `Quick test_app_builds_all_kinds;
    Alcotest.test_case "app config strings parse" `Quick test_app_config_strings_parse;
    Alcotest.test_case "app working sets ordered" `Quick test_app_working_sets_ordered;
  ]
