(* Tests for the online contention monitor: hysteresis on synthetic sample
   streams, silence on solo/tame workloads, guaranteed detection of a
   behaviour-switching aggressor, and byte-determinism of every rendered
   output across job counts. *)

module Detector = Ppp_monitor.Detector
module Estimator = Ppp_monitor.Estimator
module Report = Ppp_monitor.Report

let quick =
  Ppp_core.Runner.Params.(
    quick |> with_windows ~warmup:100_000 ~measure:300_000)

(* --- synthetic sample streams (no engine) --- *)

(* tiny's clock; any fixed value works — rates scale linearly with it. *)
let freq_hz = 2.66e9
let slice = 100_000

(* A slice in which the flow issued [l3_refs] references (half hits) and
   completed [packets] packets. *)
let mk_sample ~core ~flow ~i ~packets ~l3_refs =
  let c = Ppp_hw.Counters.create () in
  for j = 0 to l3_refs - 1 do
    if j land 1 = 0 then Ppp_hw.Counters.add_l3_hit c Ppp_hw.Fn.none
    else Ppp_hw.Counters.add_l3_miss c Ppp_hw.Fn.none
  done;
  let lat = Ppp_util.Histogram.create () in
  for _ = 1 to packets do
    Ppp_util.Histogram.record lat 1000
  done;
  {
    Ppp_hw.Engine.s_core = core;
    s_flow = flow;
    s_start = i * slice;
    s_end = (i + 1) * slice;
    s_packets = packets;
    s_delta = c;
    s_latency = lat;
  }

let refs_per_slice rate = int_of_float (rate *. float_of_int slice /. freq_hz)

let tame_profile ~core ~rate =
  {
    Detector.label = "flow" ^ string_of_int core;
    core;
    solo_pps = 100.0 *. freq_hz /. float_of_int slice;
    solo_l3_refs_per_sec = rate;
    solo_l3_hits_per_sec = rate /. 2.0;
    predict_drop = None;
  }

let feed_epochs det ~cores ~epochs ~rate_of =
  for i = 0 to epochs - 1 do
    List.iter
      (fun core ->
        Detector.feed det
          (mk_sample ~core
             ~flow:("flow" ^ string_of_int core)
             ~i ~packets:100
             ~l3_refs:(refs_per_slice (rate_of ~core ~epoch:i))))
      cores
  done

(* The aggressor alarm fires exactly at the K-th consecutive loud epoch and
   releases exactly after K quiet ones. *)
let test_hysteresis_exact () =
  let rate = 1e7 in
  let config =
    { (Detector.default_config ~sample_cycles:slice) with
      Detector.hysteresis = 3; ewma_alpha = 1.0 }
  in
  let det =
    Detector.create ~config ~freq_hz [ tame_profile ~core:0 ~rate ]
  in
  let switch = 5 and quiet_again = 12 in
  feed_epochs det ~cores:[ 0 ] ~epochs:20 ~rate_of:(fun ~core:_ ~epoch ->
      if epoch >= switch && epoch < quiet_again then 10.0 *. rate else rate);
  Detector.finalize det;
  match Detector.events det with
  | [ fire; release ] ->
      (match fire.Detector.e_kind with
      | Detector.Hidden_aggressor _ -> ()
      | k -> Alcotest.fail ("expected hidden_aggressor, got " ^ Detector.kind_name k));
      Alcotest.(check int) "fires at the K-th loud epoch" (switch + 3 - 1)
        fire.Detector.e_epoch;
      (match release.Detector.e_kind with
      | Detector.Recovered { condition } ->
          Alcotest.(check string) "releases the aggressor alarm"
            "hidden_aggressor" condition
      | k -> Alcotest.fail ("expected recovered, got " ^ Detector.kind_name k));
      Alcotest.(check int) "releases after K quiet epochs" (quiet_again + 3 - 1)
        release.Detector.e_epoch;
      Alcotest.(check int) "one recommendation per firing" 1
        (List.length (Detector.recommendations det))
  | es ->
      Alcotest.fail
        (Printf.sprintf "expected exactly 2 events, got %d" (List.length es))

(* A blip shorter than the hysteresis window never surfaces. *)
let test_hysteresis_suppresses_blips () =
  let rate = 1e7 in
  let config =
    { (Detector.default_config ~sample_cycles:slice) with
      Detector.hysteresis = 3; ewma_alpha = 1.0 }
  in
  let det =
    Detector.create ~config ~freq_hz [ tame_profile ~core:0 ~rate ]
  in
  feed_epochs det ~cores:[ 0 ] ~epochs:20 ~rate_of:(fun ~core:_ ~epoch ->
      if epoch mod 5 = 0 then 10.0 *. rate else rate);
  Detector.finalize det;
  Alcotest.(check int) "no events from 1-epoch blips" 0
    (List.length (Detector.events det))

let prop_switching_aggressor_always_caught =
  QCheck.Test.make ~count:100
    ~name:"switching aggressor raises hidden_aggressor exactly K-1 epochs \
           after the switch"
    QCheck.(
      triple (int_range 1 5) (int_range 0 10) (int_range 1 20))
    (fun (hysteresis, switch, tail) ->
      let rate = 1e7 in
      let epochs = switch + hysteresis + tail in
      let config =
        { (Detector.default_config ~sample_cycles:slice) with
          Detector.hysteresis }
      in
      let det =
        Detector.create ~config ~freq_hz
          [ tame_profile ~core:0 ~rate; tame_profile ~core:1 ~rate ]
      in
      (* Core 1 switches to 20x its profiled rate and stays loud: with the
         default 0.5 EWMA one loud slice already clears the 1.5x margin, so
         the alarm must arm exactly [hysteresis] epochs after the switch. *)
      feed_epochs det ~cores:[ 0; 1 ] ~epochs ~rate_of:(fun ~core ~epoch ->
          if core = 1 && epoch >= switch then 20.0 *. rate else rate);
      Detector.finalize det;
      let aggr =
        List.filter
          (fun (e : Detector.event) ->
            match e.Detector.e_kind with
            | Detector.Hidden_aggressor _ -> true
            | _ -> false)
          (Detector.events det)
      in
      match aggr with
      | [ e ] ->
          e.Detector.e_core = 1
          && e.Detector.e_epoch = switch + hysteresis - 1
      | _ -> false)

(* --- real engine: solo and tame co-runs stay silent --- *)

let profiles_for ~params ?predictor kinds =
  List.mapi
    (fun i kind ->
      Detector.profile_of ?predictor ~core:i
        (Ppp_core.Profile.solo ~params kind))
    kinds

let monitored_run ~params ~cell ?wrap kinds =
  let specs =
    List.mapi (fun i kind -> Ppp_core.Runner.flow_on ~core:i kind) kinds
  in
  let config =
    Detector.default_config
      ~sample_cycles:(max 1 (params.Ppp_core.Runner.measure_cycles / 20))
  in
  let freq_hz =
    params.Ppp_core.Runner.config.Ppp_hw.Machine.costs.Ppp_hw.Costs.freq_hz
  in
  let det =
    Detector.create ~config ~freq_hz (profiles_for ~params kinds)
  in
  let _ =
    Ppp_core.Runner.run
      ~params:(Ppp_core.Runner.with_cell params cell)
      ~probe:(Detector.probe det) ?wrap specs
  in
  Detector.finalize det;
  det

let prop_no_events_on_stationary_mixes =
  (* Stationary flows run as profiled: whatever the contention, the
     aggressor alarm (profiled rate + 50% margin) must stay silent, and solo
     flows must not read as degraded either. *)
  QCheck.Test.make ~count:8
    ~name:"no monitor events on solo runs or stationary mixes"
    QCheck.(pair (int_range 1 1000) (int_range 0 3))
    (fun (seed, mix_idx) ->
      let kinds =
        List.nth
          Ppp_apps.App.
            [ [ IP ]; [ MON ]; [ MON; IP ]; [ FW; IP; IP ] ]
          mix_idx
      in
      let params = { quick with Ppp_core.Runner.seed } in
      let det = monitored_run ~params ~cell:"monitor-test" kinds in
      List.for_all
        (fun ((_ : Detector.flow_profile), v) -> v = "ok")
        (Report.verdicts det)
      && Detector.events det = [])

(* --- end to end: the monitor experiment tells the Section 4 story --- *)

let test_monitor_experiment_story () =
  (* The full quick window (300k warmup / 1M measured): the throttled phase
     needs enough post-switch slices for the throttle's long-run average to
     bite and the alarm to release. *)
  let d =
    Ppp_experiments.Monitor_exp.measure ~params:Ppp_core.Runner.quick_params ()
  in
  Alcotest.(check int) "tame phase: monitor silent" 0
    Ppp_experiments.Monitor_exp.(
      d.tame.n_degraded + d.tame.n_aggressor + d.tame.n_recovered);
  Alcotest.(check bool) "loud phase: hidden aggressor flagged" true
    (d.Ppp_experiments.Monitor_exp.loud.Ppp_experiments.Monitor_exp.n_aggressor
     >= 1);
  (match
     d.Ppp_experiments.Monitor_exp.loud.Ppp_experiments.Monitor_exp
     .first_aggressor_epoch
   with
  | Some epoch ->
      (* The aggressor switches mid-window (epoch ~10 of 20); detection must
         land within the hysteresis window of the switch becoming visible. *)
      Alcotest.(check bool)
        (Printf.sprintf "detection epoch %d is mid-run, not at the end" epoch)
        true
        (epoch >= 5 && epoch <= 16)
  | None -> Alcotest.fail "no detection epoch recorded");
  Alcotest.(check bool) "a throttle budget was recommended" true
    (d.Ppp_experiments.Monitor_exp.budget <> None);
  let aggr_verdict p =
    List.assoc "two-faced" p.Ppp_experiments.Monitor_exp.verdicts
  in
  Alcotest.(check string) "loud phase verdict" "aggressor"
    (aggr_verdict d.Ppp_experiments.Monitor_exp.loud);
  Alcotest.(check bool) "throttled phase: aggressor contained" true
    (List.mem
       (aggr_verdict d.Ppp_experiments.Monitor_exp.throttled)
       [ "ok"; "recovered" ]);
  Alcotest.(check bool) "throttling helped the victim" true
    (d.Ppp_experiments.Monitor_exp.throttled.Ppp_experiments.Monitor_exp
     .victim_pps
    >= d.Ppp_experiments.Monitor_exp.loud.Ppp_experiments.Monitor_exp
       .victim_pps)

(* --- determinism: every rendered output byte-identical across --jobs --- *)

let with_jobs n f =
  let prev = Ppp_core.Parallel.configured_jobs () in
  Ppp_core.Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Ppp_core.Parallel.set_jobs prev) f

let monitor_outputs ~jobs =
  with_jobs jobs (fun () ->
      let out = Ppp_experiments.Monitor_exp.run ~params:quick () in
      let det =
        monitored_run ~params:quick ~cell:"monitor-det"
          Ppp_apps.App.[ MON; IP ]
      in
      ( out.Ppp_experiments.Output.text,
        Ppp_telemetry.Json.to_string out.Ppp_experiments.Output.data,
        Report.timeline_csv det,
        Ppp_telemetry.Json.to_string (Report.alerts_json det) ))

let test_monitor_jobs_determinism () =
  let t1, d1, c1, a1 = monitor_outputs ~jobs:1 in
  let t4, d4, c4, a4 = monitor_outputs ~jobs:4 in
  Alcotest.(check string) "experiment text byte-identical" t1 t4;
  Alcotest.(check string) "experiment data (incl. alerts) byte-identical" d1
    d4;
  Alcotest.(check string) "monitor.csv byte-identical" c1 c4;
  Alcotest.(check string) "alerts.json byte-identical" a1 a4;
  Alcotest.(check bool) "timeline is non-trivial" true
    (String.length c1 > 200)

(* The engine's burst budget is a pure execution knob: the monitor sees the
   same sample stream — hence the same alerts, verdicts and timeline, byte
   for byte — whatever the batch. Catches any batching bug that moves a
   slice boundary or reorders a probe delivery. *)
let test_monitor_batch_determinism () =
  let outputs b =
    let det =
      monitored_run
        ~params:{ quick with Ppp_core.Runner.batch = b }
        ~cell:"monitor-batch"
        Ppp_apps.App.[ MON; IP ]
    in
    ( Report.timeline_csv det,
      Ppp_telemetry.Json.to_string (Report.alerts_json det) )
  in
  let c1, a1 = outputs 1 in
  List.iter
    (fun b ->
      let cb, ab = outputs b in
      Alcotest.(check string)
        (Printf.sprintf "monitor.csv: batch %d = batch 1" b) c1 cb;
      Alcotest.(check string)
        (Printf.sprintf "alerts.json: batch %d = batch 1" b) a1 ab)
    [ 7; 32; 256 ];
  Alcotest.(check bool) "timeline is non-trivial" true (String.length c1 > 200)

let tests =
  [
    Alcotest.test_case "hysteresis arms and releases exactly at K" `Quick
      test_hysteresis_exact;
    Alcotest.test_case "hysteresis suppresses blips" `Quick
      test_hysteresis_suppresses_blips;
    QCheck_alcotest.to_alcotest prop_switching_aggressor_always_caught;
    QCheck_alcotest.to_alcotest prop_no_events_on_stationary_mixes;
    Alcotest.test_case "monitor experiment: Section 4 story" `Slow
      test_monitor_experiment_story;
    Alcotest.test_case "monitor outputs byte-identical across --jobs" `Slow
      test_monitor_jobs_determinism;
    Alcotest.test_case "monitor outputs byte-identical across --batch" `Slow
      test_monitor_batch_determinism;
  ]
