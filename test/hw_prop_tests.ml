(* qcheck properties for the hardware-model invariants the parallel-runner
   refactor must not disturb: LRU eviction order, L3 inclusion (with the
   presence-bit directory), and counter conservation, all under random
   access streams. *)

open Ppp_hw

(* --- LRU eviction order against a reference model --- *)

(* 2 sets x 4 ways; lines from a small universe force evictions. *)
let lru_geo = { Cache.size_bytes = 2 * 4 * 64; ways = 4; line_bytes = 64 }

(* The model: per set, resident lines most-recently-used first. *)
let prop_lru_eviction =
  QCheck.Test.make ~count:300 ~name:"cache evicts the set's LRU line"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 31))
    (fun lines ->
      let c = Cache.create lru_geo in
      let model = Array.make (Cache.sets c) [] in
      List.for_all
        (fun line ->
          let set = line land (Cache.sets c - 1) in
          if Cache.find c line >= 0 then begin
            (* Hit: becomes most-recently-used. *)
            model.(set) <- line :: List.filter (( <> ) line) model.(set);
            true
          end
          else
            let ok =
              (* Two-step insert: read the victim in place, then fill. *)
              let s = Cache.victim_slot c line in
              let victim =
                if Cache.slot_valid c s then Some (Cache.line c s) else None
              in
              Cache.fill c ~slot:s ~dirty:false ~aux:0 line;
              match victim with
              | None -> List.length model.(set) < lru_geo.Cache.ways
              | Some victim_line ->
                  List.length model.(set) = lru_geo.Cache.ways
                  && victim_line = List.nth model.(set) (lru_geo.Cache.ways - 1)
            in
            let without_victim =
              if List.length model.(set) = lru_geo.Cache.ways then
                List.filteri (fun i _ -> i < lru_geo.Cache.ways - 1) model.(set)
              else model.(set)
            in
            model.(set) <- line :: without_victim;
            ok && Cache.resident c line)
        lines)

(* --- random access streams through a full hierarchy --- *)

let tiny_hier () = Machine.build Machine.tiny

let cores = Topology.cores Machine.tiny.Machine.topology

(* (core, line-index, write) triples; line universe larger than the L3 to
   force capacity evictions and back-invalidations. *)
let stream_gen =
  QCheck.(
    list_of_size
      Gen.(int_range 50 400)
      (triple (int_range 0 (cores - 1)) (int_range 0 4095) bool))

let run_stream hier ops =
  List.iteri
    (fun i (core, line, write) ->
      ignore
        (Hierarchy.access hier ~core ~write ~fn:Fn.none ~addr:(line * 64)
           ~now:(i * 10)
          : int))
    ops

let prop_l3_inclusive =
  QCheck.Test.make ~count:100
    ~name:"L1/L2-resident lines are L3-resident and directory-marked"
    stream_gen
    (fun ops ->
      let hier = tiny_hier () in
      run_stream hier ops;
      let touched = List.sort_uniq compare (List.map (fun (_, l, _) -> l) ops) in
      List.for_all
        (fun line ->
          let addr = line * 64 in
          List.for_all
            (fun core ->
              (not (Hierarchy.private_resident hier ~core ~addr))
              || (Hierarchy.l3_resident hier
                    ~socket:
                      (Topology.socket_of_core Machine.tiny.Machine.topology core)
                    ~addr
                 && Hierarchy.directory_marks hier ~core ~addr))
            (List.init cores Fun.id))
        touched)

let prop_counter_conservation =
  QCheck.Test.make ~count:100
    ~name:"refs = hits + misses at every level, per core" stream_gen
    (fun ops ->
      let hier = tiny_hier () in
      run_stream hier ops;
      List.for_all
        (fun core ->
          let c = Hierarchy.counters hier core in
          let refs = Counters.mem_refs c in
          let reads_writes = Counters.reads c + Counters.writes c in
          let by_level =
            Counters.l1_hits c + Counters.l2_hits c + Counters.l3_hits c
            + Counters.l3_misses c
          in
          let l3 = Counters.l3_refs c in
          let by_fn =
            List.fold_left
              (fun acc fn -> acc + Counters.fn_refs c fn)
              0
              (List.init (Fn.count ()) Fun.id)
          in
          refs = reads_writes && refs = by_level
          && l3 = Counters.l3_hits c + Counters.l3_misses c
          && by_fn = refs)
        (List.init cores Fun.id))

let prop_dma_invalidates =
  QCheck.Test.make ~count:100
    ~name:"DMA write leaves the line resident nowhere" stream_gen
    (fun ops ->
      QCheck.assume (ops <> []);
      let hier = tiny_hier () in
      run_stream hier ops;
      let _, line, _ = List.hd ops in
      let addr = line * 64 in
      Hierarchy.dma_write hier ~addr ~now:0;
      List.for_all
        (fun core -> not (Hierarchy.private_resident hier ~core ~addr))
        (List.init cores Fun.id)
      && List.for_all
           (fun socket -> not (Hierarchy.l3_resident hier ~socket ~addr))
           (List.init Machine.tiny.Machine.topology.Topology.sockets Fun.id))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_lru_eviction;
    QCheck_alcotest.to_alcotest prop_l3_inclusive;
    QCheck_alcotest.to_alcotest prop_counter_conservation;
    QCheck_alcotest.to_alcotest prop_dma_invalidates;
  ]
