open Ppp_click

let heap () = Ppp_simmem.Heap.create ~node:0
let rng () = Ppp_util.Rng.create ~seed:11

(* --- Element / pipeline --- *)

let counting_element name hits =
  Element.make ~kind:name (fun _ctx _pkt ->
      incr hits;
      Element.Forward)

let dropping_element () = Element.make ~kind:"Drop" (fun _ _ -> Element.Drop)

let test_chain_runs_in_order () =
  let trace = ref [] in
  let el name =
    Element.make ~kind:name (fun _ _ ->
        trace := name :: !trace;
        Element.Forward)
  in
  let ctx = Ctx.create ~rng:(rng ()) in
  let p = Ppp_net.Packet.create 60 in
  let v = Element.process_all [ el "a"; el "b"; el "c" ] ctx p in
  Alcotest.(check bool) "forwarded" true (v = Element.Forward);
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !trace)

let test_chain_stops_at_drop () =
  let after = ref 0 in
  let ctx = Ctx.create ~rng:(rng ()) in
  let p = Ppp_net.Packet.create 60 in
  let v =
    Element.process_all
      [ dropping_element (); counting_element "x" after ]
      ctx p
  in
  Alcotest.(check bool) "dropped" true (v = Element.Drop);
  Alcotest.(check int) "later elements skipped" 0 !after

let test_ctx_touch_packet_lines () =
  let ctx = Ctx.create ~rng:(rng ()) in
  let p = Ppp_net.Packet.create 200 in
  p.Ppp_net.Packet.buf_addr <- 0x10000;
  Ctx.touch_packet ctx p ~fn:Ppp_hw.Fn.none ~write:false ~pos:0 ~len:130;
  let t = Ppp_hw.Trace.Builder.finish ctx.Ctx.builder in
  Alcotest.(check int) "130B = 3 lines" 3 (Ppp_hw.Trace.length t)

let test_ctx_touch_unplaced_packet_noop () =
  let ctx = Ctx.create ~rng:(rng ()) in
  let p = Ppp_net.Packet.create 200 in
  Ctx.touch_packet ctx p ~fn:Ppp_hw.Fn.none ~write:false ~pos:0 ~len:64;
  Alcotest.(check int) "no refs for unplaced packet" 0
    (Ppp_hw.Trace.Builder.length ctx.Ctx.builder)

(* --- Flow --- *)

let simple_gen pkt =
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001 ~dst:0x0A000002 ~sport:1
    ~dport:2 ~wire_len:64

let test_flow_produces_packet_traces () =
  let hits = ref 0 in
  let flow =
    Flow.create_gen ~heap:(heap ()) ~rng:(rng ()) ~label:"t" ~gen:simple_gen
      ~elements:[ counting_element "c" hits ] ()
  in
  let source = Flow.source flow in
  (match source 0 with
  | Ppp_hw.Engine.Packet t | Ppp_hw.Engine.Reordered t ->
      Alcotest.(check bool) "has DMA ops" true
        (let dmas = ref 0 in
         Ppp_hw.Trace.iter t (fun k _ _ -> if k = Ppp_hw.Trace.Dma then incr dmas);
         !dmas >= 2);
      Alcotest.(check bool) "has refs" true (Ppp_hw.Trace.mem_refs t > 0)
  | Ppp_hw.Engine.Idle _ -> Alcotest.fail "expected a packet item");
  Alcotest.(check int) "element saw the packet" 1 !hits;
  Alcotest.(check int) "forwarded" 1 (Flow.forwarded flow)

let test_flow_counts_drops () =
  let flow =
    Flow.create_gen ~heap:(heap ()) ~rng:(rng ()) ~label:"t" ~gen:simple_gen
      ~elements:[ dropping_element () ] ()
  in
  let source = Flow.source flow in
  ignore (source 0);
  ignore (source 100);
  Alcotest.(check int) "drops counted" 2 (Flow.dropped flow);
  Alcotest.(check int) "nothing forwarded" 0 (Flow.forwarded flow)

let test_flow_buffer_rotation () =
  let flow =
    Flow.create_gen ~heap:(heap ()) ~rng:(rng ()) ~label:"t" ~gen:simple_gen
      ~elements:[] ~rx_slots:4 ()
  in
  let source = Flow.source flow in
  let addr_of item =
    match item with
    | Ppp_hw.Engine.Packet t ->
        (* First DMA op is the descriptor; second is the buffer. *)
        let addrs = ref [] in
        Ppp_hw.Trace.iter t (fun k _ p ->
            if k = Ppp_hw.Trace.Dma then addrs := p :: !addrs);
        List.nth (List.rev !addrs) 1
    | _ -> Alcotest.fail "packet expected"
  in
  let a0 = addr_of (source 0) in
  let a1 = addr_of (source 1) in
  Alcotest.(check bool) "distinct buffers" true (a0 <> a1);
  ignore (source 2);
  ignore (source 3);
  Alcotest.(check int) "wraps to first buffer" a0 (addr_of (source 4))

(* --- Staged --- *)

let test_staged_requires_two_stages () =
  Alcotest.check_raises "one stage"
    (Invalid_argument "Staged.create: need at least two stages") (fun () ->
      ignore
        (Staged.create ~heap:(heap ()) ~rng:(rng ()) ~label:"s" ~gen:simple_gen
           ~stages:[ [] ] ()))

let test_staged_pipeline_flows_packets () =
  let seen0 = ref 0 and seen1 = ref 0 in
  let staged =
    Staged.create ~heap:(heap ()) ~rng:(rng ()) ~label:"s" ~gen:simple_gen
      ~stages:
        [ [ counting_element "s0" seen0 ]; [ counting_element "s1" seen1 ] ]
      ~queue_slots:4 ()
  in
  let sources = Staged.sources staged in
  Alcotest.(check int) "two sources" 2 (Staged.num_stages staged);
  (* Drive by hand: stage1 starves until stage0 pushes. *)
  (match sources.(1) 0 with
  | Ppp_hw.Engine.Idle _ -> ()
  | Ppp_hw.Engine.Packet _ | Ppp_hw.Engine.Reordered _ ->
      Alcotest.fail "consumer should starve");
  ignore (sources.(0) 10);
  (match sources.(1) 20 with
  | Ppp_hw.Engine.Packet _ | Ppp_hw.Engine.Reordered _ -> ()
  | Ppp_hw.Engine.Idle _ -> Alcotest.fail "consumer should have work");
  Alcotest.(check int) "stage0 processed" 1 !seen0;
  Alcotest.(check int) "stage1 processed" 1 !seen1;
  Alcotest.(check int) "egress counted" 1 (Staged.forwarded staged)

let test_staged_backpressure () =
  let staged =
    Staged.create ~heap:(heap ()) ~rng:(rng ()) ~label:"s" ~gen:simple_gen
      ~stages:[ []; [] ] ~queue_slots:2 ()
  in
  let sources = Staged.sources staged in
  ignore (sources.(0) 0);
  ignore (sources.(0) 1);
  (* Queue full: producer must idle. *)
  match sources.(0) 2 with
  | Ppp_hw.Engine.Idle _ -> ()
  | Ppp_hw.Engine.Packet _ | Ppp_hw.Engine.Reordered _ ->
      Alcotest.fail "expected backpressure"

(* --- Config parser --- *)

let test_config_parse_simple () =
  match Config.parse "FromDevice(0) -> CheckIPHeader -> ToDevice(0)" with
  | Ok [ a; b; c ] ->
      Alcotest.(check string) "first" "FromDevice" a.Config.kind;
      Alcotest.(check (list string)) "args" [ "0" ] a.Config.args;
      Alcotest.(check string) "middle" "CheckIPHeader" b.Config.kind;
      Alcotest.(check (list string)) "no args" [] b.Config.args;
      Alcotest.(check string) "last" "ToDevice" c.Config.kind
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e

let test_config_parse_multi_args_and_comments () =
  let src = "RadixIPLookup(16384, 512) // the table\n -> FlowStats(12500)" in
  match Config.parse src with
  | Ok [ a; b ] ->
      Alcotest.(check (list string)) "two args" [ "16384"; "512" ] a.Config.args;
      Alcotest.(check string) "second" "FlowStats" b.Config.kind
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e

let test_config_parse_errors () =
  let bad s =
    match Config.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty element" true (bad "A -> -> B");
  Alcotest.(check bool) "missing paren" true (bad "A(1 -> B");
  Alcotest.(check bool) "bad name" true (bad "A b(1)");
  Alcotest.(check bool) "empty arg" true (bad "A(1,,2)")

let test_config_to_string_roundtrip () =
  let src = "FromDevice(0) -> RadixIPLookup(64, 8) -> ToDevice(0)" in
  match Config.parse src with
  | Ok decls -> (
      Alcotest.(check string) "print form" src (Config.to_string decls);
      match Config.parse (Config.to_string decls) with
      | Ok decls' -> Alcotest.(check bool) "reparse" true (decls = decls')
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let test_config_registry_and_instantiate () =
  Ppp_apps.App.register_all ();
  let ctx =
    {
      Config.Registry.heap = heap ();
      rng = rng ();
      scale = 128;
    }
  in
  let src =
    "FromDevice(0) -> CheckIPHeader -> RadixIPLookup(64, 8) -> DecIPTTL -> \
     FlowStats(100) -> ToDevice(0)"
  in
  match Config.parse src with
  | Error e -> Alcotest.fail e
  | Ok decls -> (
      match Config.instantiate ctx decls with
      | Ok elements ->
          (* FromDevice/ToDevice are skipped. *)
          Alcotest.(check int) "four middle elements" 4 (List.length elements)
      | Error e -> Alcotest.fail e)

let test_config_unknown_element () =
  Ppp_apps.App.register_all ();
  let ctx = { Config.Registry.heap = heap (); rng = rng (); scale = 128 } in
  match Config.instantiate ctx [ { Config.kind = "NoSuchThing"; args = [] } ] with
  | Ok _ -> Alcotest.fail "should not resolve"
  | Error e ->
      Alcotest.(check bool) "mentions the class" true
        (String.length e > 0)

let test_config_known_lists_registered () =
  Ppp_apps.App.register_all ();
  let known = Config.Registry.known () in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " registered") true (List.mem k known))
    [ "CheckIPHeader"; "RadixIPLookup"; "DecIPTTL"; "FlowStats"; "Firewall";
      "REEncode"; "VPNEncrypt"; "Syn" ]

let tests =
  [
    Alcotest.test_case "chain order" `Quick test_chain_runs_in_order;
    Alcotest.test_case "chain stops at drop" `Quick test_chain_stops_at_drop;
    Alcotest.test_case "ctx touch lines" `Quick test_ctx_touch_packet_lines;
    Alcotest.test_case "ctx unplaced noop" `Quick test_ctx_touch_unplaced_packet_noop;
    Alcotest.test_case "flow packet traces" `Quick test_flow_produces_packet_traces;
    Alcotest.test_case "flow counts drops" `Quick test_flow_counts_drops;
    Alcotest.test_case "flow buffer rotation" `Quick test_flow_buffer_rotation;
    Alcotest.test_case "staged needs two stages" `Quick test_staged_requires_two_stages;
    Alcotest.test_case "staged pipeline flow" `Quick test_staged_pipeline_flows_packets;
    Alcotest.test_case "staged backpressure" `Quick test_staged_backpressure;
    Alcotest.test_case "config parse simple" `Quick test_config_parse_simple;
    Alcotest.test_case "config args + comments" `Quick test_config_parse_multi_args_and_comments;
    Alcotest.test_case "config parse errors" `Quick test_config_parse_errors;
    Alcotest.test_case "config to_string roundtrip" `Quick test_config_to_string_roundtrip;
    Alcotest.test_case "config instantiate" `Quick test_config_registry_and_instantiate;
    Alcotest.test_case "config unknown element" `Quick test_config_unknown_element;
    Alcotest.test_case "config registry population" `Quick test_config_known_lists_registered;
  ]
