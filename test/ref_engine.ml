(* The pre-heap interleaving engine, kept verbatim as a reference oracle.

   This is the original Engine.run loop: an O(cores) min-scan over core
   clocks per operation, closure-free but allocating (options on the cache
   paths, per-op counter bumps straight into Counters.t). The optimized
   engine in lib/hw must stay observationally identical to this — same
   result list (including [engine_ops]) and the same probe samples in the
   same order — which the qcheck property in engine_equiv_tests checks on
   random flow sets. Do not "improve" this file; its value is that it does
   not change. *)

open Ppp_hw
open Ppp_hw.Engine

type core_state = {
  flow : flow;
  mutable time : int;
  mutable trace : Trace.t;
  mutable is_packet : bool;
  mutable is_reordered : bool;
  mutable pos : int;
  mutable pkt_start : int;
  mutable packets_done : int;
  mutable ops_done : int;
  latency : Ppp_util.Histogram.t;
  latency_inorder : Ppp_util.Histogram.t;
  latency_reordered : Ppp_util.Histogram.t;
  mutable warm_time : int;
  mutable warm_packets : int;
  mutable warm_counters : Counters.t option;
  mutable end_time : int;
  mutable end_packets : int;
  mutable end_counters : Counters.t option;
  mutable samp_time : int;
  mutable samp_packets : int;
  mutable samp_counters : Counters.t option;
  mutable samp_next : int;
  mutable samp_latency : Ppp_util.Histogram.t;
}

let fetch st =
  let item = st.flow.source st.time in
  let trace, is_packet, is_reordered =
    match item with
    | Packet t -> (t, true, false)
    | Idle t -> (t, false, false)
    | Reordered t -> (t, true, true)
  in
  if Trace.length trace = 0 then
    invalid_arg "Engine: source returned an empty trace";
  st.trace <- trace;
  st.is_packet <- is_packet;
  st.is_reordered <- is_reordered;
  if is_packet then st.pkt_start <- st.time;
  st.pos <- 0

let run ?probe hier ~flows ~warmup_cycles ~measure_cycles =
  if flows = [] then invalid_arg "Engine.run: no flows";
  (match probe with
  | Some p when p.sample_cycles < 1 ->
      invalid_arg "Engine.run: sample_cycles must be >= 1"
  | _ -> ());
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : flow) ->
      if Hashtbl.mem seen f.core then
        invalid_arg "Engine.run: two flows on the same core";
      Hashtbl.add seen f.core ())
    flows;
  let costs = Hierarchy.costs hier in
  let states =
    List.map
      (fun (flow : flow) ->
        let st =
          {
            flow;
            time = 0;
            trace = Trace.empty;
            is_packet = false;
            is_reordered = false;
            pos = 0;
            pkt_start = 0;
            packets_done = 0;
            ops_done = 0;
            latency = Ppp_util.Histogram.create ();
            latency_inorder = Ppp_util.Histogram.create ();
            latency_reordered = Ppp_util.Histogram.create ();
            warm_time = 0;
            warm_packets = 0;
            warm_counters = None;
            end_time = 0;
            end_packets = 0;
            end_counters = None;
            samp_time = 0;
            samp_packets = 0;
            samp_counters = None;
            samp_next = max_int;
            samp_latency = Ppp_util.Histogram.create ();
          }
        in
        fetch st;
        st)
      flows
    |> Array.of_list
  in
  let n = Array.length states in
  let window_end = warmup_cycles + measure_cycles in
  let grid_next time =
    match probe with
    | None -> max_int
    | Some p ->
        let k = p.sample_cycles in
        warmup_cycles + ((((time - warmup_cycles) / k) + 1) * k)
  in
  let emit st ~t_end counters_now =
    match (probe, st.samp_counters) with
    | Some p, Some prev when t_end > st.samp_time ->
        p.on_sample
          {
            s_core = st.flow.core;
            s_flow = st.flow.label;
            s_start = st.samp_time;
            s_end = t_end;
            s_packets = st.packets_done - st.samp_packets;
            s_delta = Counters.diff counters_now prev;
            s_latency = st.samp_latency;
          };
        st.samp_time <- t_end;
        st.samp_packets <- st.packets_done;
        st.samp_counters <- Some counters_now;
        st.samp_latency <- Ppp_util.Histogram.create ()
    | _ -> ()
  in
  let snapshot st =
    if st.warm_counters = None && st.time >= warmup_cycles then begin
      st.warm_time <- st.time;
      st.warm_packets <- st.packets_done;
      let c = Counters.copy (Hierarchy.counters hier st.flow.core) in
      st.warm_counters <- Some c;
      match probe with
      | Some _ ->
          st.samp_time <- st.warm_time;
          st.samp_packets <- st.warm_packets;
          st.samp_counters <- Some c;
          st.samp_next <- grid_next st.warm_time
      | None -> ()
    end;
    if st.end_counters = None && st.time >= window_end then begin
      st.end_time <- st.time;
      st.end_packets <- st.packets_done;
      let c = Counters.copy (Hierarchy.counters hier st.flow.core) in
      st.end_counters <- Some c;
      emit st ~t_end:st.end_time c;
      st.samp_counters <- None
    end
    else if
      st.end_counters = None
      && (match st.samp_counters with Some _ -> true | None -> false)
      && st.time >= st.samp_next
    then begin
      emit st ~t_end:st.time
        (Counters.copy (Hierarchy.counters hier st.flow.core));
      st.samp_next <- grid_next st.time
    end
  in
  let step st =
    st.ops_done <- st.ops_done + 1;
    let k = Trace.kind st.trace st.pos in
    let fn = Trace.fn st.trace st.pos in
    let payload = Trace.payload st.trace st.pos in
    (match k with
    | Trace.Compute ->
        let ctr = Hierarchy.counters hier st.flow.core in
        Counters.add_instructions ctr payload;
        let cycles =
          max 1 (int_of_float (float_of_int payload *. costs.Costs.compute_cpi))
        in
        st.time <- st.time + cycles
    | Trace.Stall -> st.time <- st.time + payload
    | Trace.Dma -> Hierarchy.dma_write hier ~addr:payload ~now:st.time
    | Trace.Read | Trace.Write ->
        let lat =
          Hierarchy.access hier ~core:st.flow.core
            ~write:(k = Trace.Write) ~fn ~addr:payload ~now:st.time
        in
        st.time <- st.time + lat);
    st.pos <- st.pos + 1;
    if st.pos >= Trace.length st.trace then begin
      if st.is_packet then begin
        st.packets_done <- st.packets_done + 1;
        Counters.add_packet (Hierarchy.counters hier st.flow.core);
        if st.warm_counters <> None && st.end_counters = None then begin
          Ppp_util.Histogram.record st.latency (st.time - st.pkt_start);
          Ppp_util.Histogram.record
            (if st.is_reordered then st.latency_reordered
             else st.latency_inorder)
            (st.time - st.pkt_start);
          match st.samp_counters with
          | Some _ ->
              Ppp_util.Histogram.record st.samp_latency
                (st.time - st.pkt_start)
          | None -> ()
        end
      end;
      snapshot st;
      fetch st
    end
    else snapshot st
  in
  let rec loop () =
    let min_i = ref 0 in
    for i = 1 to n - 1 do
      if states.(i).time < states.(!min_i).time then min_i := i
    done;
    let st = states.(!min_i) in
    if st.time < window_end then begin
      step st;
      loop ()
    end
  in
  loop ();
  Array.iter snapshot states;
  Array.to_list
    (Array.map
       (fun st ->
         let warm =
           match st.warm_counters with Some c -> c | None -> assert false
         in
         let finish =
           match st.end_counters with Some c -> c | None -> assert false
         in
         let ctr = Counters.diff finish warm in
         let cycles = max 1 (st.end_time - st.warm_time) in
         let seconds = Costs.cycles_to_seconds costs cycles in
         let packets = st.end_packets - st.warm_packets in
         {
           core = st.flow.core;
           label = st.flow.label;
           packets;
           window_cycles = cycles;
           throughput_pps = float_of_int packets /. seconds;
           counters = ctr;
           l3_refs_per_sec = float_of_int (Counters.l3_refs ctr) /. seconds;
           l3_hits_per_sec = float_of_int (Counters.l3_hits ctr) /. seconds;
           latency = st.latency;
           latency_inorder = st.latency_inorder;
           latency_reordered = st.latency_reordered;
           engine_ops = st.ops_done;
         })
       states)
