(* The differential oracle suite for the fast-path/slow-path classifier.

   The reference is an independent linear-scan priority classifier written
   here, with its own bit-by-bit matching logic (deliberately not
   Rule.matches — a shared bug in the mask arithmetic would otherwise hide
   from the comparison). The properties hold Tuple_space, Range_index, and
   the fast path with its upcall/install/evict machinery to byte-identical
   actions against that oracle on random rule sets and packet streams. *)

open Ppp_classify

(* --- the oracle: linear scan, bit-by-bit prefix comparison --- *)

let prefix_bits_equal a b plen =
  let rec go i =
    i >= plen
    || ((a lsr (31 - i)) land 1 = (b lsr (31 - i)) land 1 && go (i + 1))
  in
  go 0

let oracle_matches (r : Rule.t) (f : Ppp_net.Flowid.t) =
  prefix_bits_equal r.Rule.src f.Ppp_net.Flowid.src r.Rule.src_plen
  && prefix_bits_equal r.Rule.dst f.Ppp_net.Flowid.dst r.Rule.dst_plen
  && r.Rule.sport_lo <= f.Ppp_net.Flowid.sport
  && f.Ppp_net.Flowid.sport <= r.Rule.sport_hi
  && r.Rule.dport_lo <= f.Ppp_net.Flowid.dport
  && f.Ppp_net.Flowid.dport <= r.Rule.dport_hi
  && (r.Rule.proto = 0 || r.Rule.proto = f.Ppp_net.Flowid.proto)

(* First install wins ties: only a strictly higher priority replaces. *)
let oracle (rules : Rule.t array) f =
  let best = ref (-1) in
  Array.iteri
    (fun i r ->
      if oracle_matches r f then
        match !best with
        | -1 -> best := i
        | b -> if rules.(b).Rule.prio < r.Rule.prio then best := i)
    rules;
  if !best = -1 then Rule.no_match else rules.(!best).Rule.action

(* --- qcheck generators --- *)

let plen_gen = QCheck.Gen.oneofl [ 0; 8; 16; 24; 32 ]
let proto_gen = QCheck.Gen.oneofl [ 0; 6; 17 ]
let addr_gen = QCheck.Gen.(map (fun x -> x land 0xFFFFFFFF) (int_bound max_int))

let port_range_gen =
  QCheck.Gen.(
    oneof
      [
        return (0, 0xFFFF);
        map (fun p -> (p, p)) (int_bound 0xFFFF);
        map2
          (fun a b -> (min a b, max a b))
          (int_bound 0xFFFF) (int_bound 0xFFFF);
      ])

let rule_gen =
  QCheck.Gen.(
    map
      (fun ((prio, src, src_plen, dst), (dst_plen, sports, dports, proto, action)) ->
        {
          Rule.prio;
          src;
          src_plen;
          dst;
          dst_plen;
          sport_lo = fst sports;
          sport_hi = snd sports;
          dport_lo = fst dports;
          dport_hi = snd dports;
          proto;
          action;
        })
      (pair
         (quad (int_bound 7) addr_gen plen_gen addr_gen)
         (tup5 plen_gen port_range_gen port_range_gen proto_gen
            (int_range 0 255))))

let rules_gen = QCheck.Gen.(array_size (int_range 1 40) rule_gen)

(* Flow ids biased toward matching: half the time, sample inside a random
   rule's hypercube (wildcarded protocol becomes UDP); otherwise uniform. *)
let flowid_of_rule (r : Rule.t) st =
  let fill base plen st =
    let mask = Rule.mask_of_plen plen in
    base land mask
    lor (QCheck.Gen.generate1 ~rand:st QCheck.Gen.(int_bound 0xFFFFFFF)
         land (lnot mask land 0xFFFFFFFF))
  in
  {
    Ppp_net.Flowid.src = fill r.Rule.src r.Rule.src_plen st;
    dst = fill r.Rule.dst r.Rule.dst_plen st;
    sport =
      QCheck.Gen.generate1 ~rand:st
        QCheck.Gen.(int_range r.Rule.sport_lo r.Rule.sport_hi);
    dport =
      QCheck.Gen.generate1 ~rand:st
        QCheck.Gen.(int_range r.Rule.dport_lo r.Rule.dport_hi);
    proto = (if r.Rule.proto = 0 then 17 else r.Rule.proto);
  }

let uniform_flowid_gen =
  QCheck.Gen.(
    map
      (fun (src, dst, sport, dport, proto) ->
        { Ppp_net.Flowid.src; dst; sport; dport; proto })
      (tup5 addr_gen addr_gen (int_bound 0xFFFF) (int_bound 0xFFFF) proto_gen))

let scenario_gen =
  QCheck.Gen.(
    rules_gen >>= fun rules ->
    list_size (int_range 1 60)
      (fun st ->
        if bool st then
          flowid_of_rule rules.(int_bound (Array.length rules - 1) st) st
        else uniform_flowid_gen st)
    >>= fun flows -> return (rules, flows))

let scenario_arb =
  QCheck.make
    ~print:(fun (rules, flows) ->
      Printf.sprintf "%d rules, %d flows:\n%s\n---\n%s" (Array.length rules)
        (List.length flows)
        (String.concat "\n"
           (Array.to_list
              (Array.map (Format.asprintf "%a" Rule.pp) rules)))
        (String.concat "\n"
           (List.map (Format.asprintf "%a" Ppp_net.Flowid.pp) flows)))
    scenario_gen

let heap () = Ppp_simmem.Heap.create ~node:0

(* --- slow-path backends vs the oracle --- *)

let backend_prop kind =
  QCheck.Test.make ~count:400
    ~name:
      (Printf.sprintf "%s lookup = oracle (and quiet = instrumented)"
         (Classifier.kind_name kind))
    scenario_arb
    (fun (rules, flows) ->
      let c = Classifier.make ~heap:(heap ()) kind rules in
      let b = Ppp_hw.Trace.Builder.create () in
      List.for_all
        (fun f ->
          let expect = oracle rules f in
          Ppp_hw.Trace.Builder.clear b;
          Classifier.lookup c b ~fn:Ppp_hw.Fn.none f = expect
          && Classifier.lookup_quiet c f = expect)
        flows)

(* --- the fast path with upcalls vs the oracle --- *)

(* A deliberately tiny table (capacity 16, short probe window) so the
   random streams exercise install, re-hit, and eviction interleavings;
   every verdict and annotation must still equal the oracle's. *)
let fastpath_prop kind =
  QCheck.Test.make ~count:200
    ~name:
      (Printf.sprintf "fast path over %s = oracle under evictions"
         (Classifier.kind_name kind))
    scenario_arb
    (fun (rules, flows) ->
      let fp =
        Fastpath.create ~heap:(heap ()) ~table_entries:16 ~probe_limit:2
          ~backend:kind rules
      in
      let el = Fastpath.element fp in
      let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:7) in
      let pkt = Ppp_net.Packet.create 60 in
      let packets = ref 0 in
      let ok =
        List.for_all
          (fun (f : Ppp_net.Flowid.t) ->
            Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:f.Ppp_net.Flowid.src
              ~dst:f.Ppp_net.Flowid.dst ~sport:f.Ppp_net.Flowid.sport
              ~dport:f.Ppp_net.Flowid.dport ~wire_len:64;
            (* Traffic is UDP on the wire; hold the oracle to the same
               packet the element saw. *)
            let f = { f with Ppp_net.Flowid.proto = Ppp_net.Ipv4.proto_udp } in
            incr packets;
            let expect = oracle rules f in
            match el.Ppp_click.Element.process ctx pkt with
            | Ppp_click.Element.Drop -> expect = Rule.no_match
            | Ppp_click.Element.Forward ->
                expect >= 0 && Ppp_net.Packet.get8 pkt 0 = expect land 0xFF)
          flows
      in
      let table = Fastpath.table fp in
      ok
      && Flow_table.hits table + Flow_table.misses table = !packets
      && Fastpath.upcalls fp = Flow_table.misses table
      && Flow_table.installs table = Flow_table.misses table)

(* --- unit tests --- *)

let mk ?(prio = 1) ?(src = 0) ?(src_plen = 0) ?(dst = 0) ?(dst_plen = 0)
    ?(sports = (0, 0xFFFF)) ?(dports = (0, 0xFFFF)) ?(proto = 0) action =
  {
    Rule.prio;
    src;
    src_plen;
    dst;
    dst_plen;
    sport_lo = fst sports;
    sport_hi = snd sports;
    dport_lo = fst dports;
    dport_hi = snd dports;
    proto;
    action;
  }

let flow ?(src = 0x0A000001) ?(dst = 0x0A000002) ?(sport = 1000)
    ?(dport = 2000) ?(proto = 17) () =
  { Ppp_net.Flowid.src; dst; sport; dport; proto }

let both f () = List.iter f Classifier.all

let test_tie_break =
  both (fun kind ->
      (* Equal priority: the first-installed rule wins in every backend. *)
      let rules = [| mk ~prio:3 11; mk ~prio:3 22; mk ~prio:2 33 |] in
      let c = Classifier.make ~heap:(heap ()) kind rules in
      Alcotest.(check int)
        (Classifier.kind_name kind ^ " first install wins ties")
        11
        (Classifier.lookup_quiet c (flow ())))

let test_priority_beats_order =
  both (fun kind ->
      let rules = [| mk ~prio:1 11; mk ~prio:5 22 |] in
      let c = Classifier.make ~heap:(heap ()) kind rules in
      Alcotest.(check int)
        (Classifier.kind_name kind ^ " higher prio wins")
        22
        (Classifier.lookup_quiet c (flow ())))

let test_no_match =
  both (fun kind ->
      let rules = [| mk ~dst:0xC0A80000 ~dst_plen:16 9 |] in
      let c = Classifier.make ~heap:(heap ()) kind rules in
      Alcotest.(check int)
        (Classifier.kind_name kind ^ " no match")
        Rule.no_match
        (Classifier.lookup_quiet c (flow ~dst:0x0B000001 ())))

let test_field_specificity =
  both (fun kind ->
      (* Port ranges and protocol are honoured, not just prefixes. *)
      let rules =
        [|
          mk ~prio:5 ~dports:(80, 80) ~proto:6 1;
          mk ~prio:4 ~dports:(80, 443) 2;
          mk ~prio:0 3;
        |]
      in
      let c = Classifier.make ~heap:(heap ()) kind rules in
      let name = Classifier.kind_name kind in
      Alcotest.(check int)
        (name ^ " tcp:80")
        1
        (Classifier.lookup_quiet c (flow ~dport:80 ~proto:6 ()));
      Alcotest.(check int)
        (name ^ " udp:80 skips the tcp rule")
        2
        (Classifier.lookup_quiet c (flow ~dport:80 ~proto:17 ()));
      Alcotest.(check int)
        (name ^ " udp:8080 falls through")
        3
        (Classifier.lookup_quiet c (flow ~dport:8080 ())))

let test_rulegen_valid () =
  let rng = Ppp_util.Rng.create ~seed:99 in
  let rules = Rulegen.make ~rng ~n:200 in
  Alcotest.(check int) "count" 200 (Array.length rules);
  (* Every sampled flow id matches its source rule (the universe builder's
     contract), and the last rule catches everything. *)
  Array.iter
    (fun r ->
      let f = Rulegen.flowid_matching ~rng r in
      Alcotest.(check bool) "flowid_matching inside the rule" true
        (oracle_matches r f))
    rules;
  Alcotest.(check bool) "catch-all" true
    (oracle_matches rules.(199) (flow ~src:0xDEADBEEF ~dst:0x01020304 ()))

let test_range_index_structure () =
  let rng = Ppp_util.Rng.create ~seed:5 in
  let rules = Rulegen.make ~rng ~n:256 in
  let r = Range_index.create ~heap:(heap ()) rules in
  Alcotest.(check bool) "indexes something" true (Range_index.isets r >= 1);
  Alcotest.(check bool) "remainder is a strict subset" true
    (Range_index.remainder r < 256);
  Alcotest.(check bool) "bounded local search" true
    (Range_index.max_err r >= 0)

let test_tuple_space_structure () =
  let rng = Ppp_util.Rng.create ~seed:5 in
  let rules = Rulegen.make ~rng ~n:256 in
  let t = Tuple_space.create ~heap:(heap ()) rules in
  (* The generator only emits plens from {0,8,16,24,32}: at most 25 mask
     pairs, far fewer tables than rules — the point of TSS. *)
  Alcotest.(check bool) "tuple count collapses" true
    (Tuple_space.tuples t >= 1 && Tuple_space.tuples t <= 25)

let test_flow_table_capacity () =
  let h = heap () in
  Alcotest.(check int) "rounds to pow2" 128
    (Flow_table.capacity (Flow_table.create ~heap:h ~entries:100 ()));
  Alcotest.(check int) "min 16" 16
    (Flow_table.capacity (Flow_table.create ~heap:h ~entries:1 ()));
  Alcotest.check_raises "entries=0 rejected"
    (Invalid_argument "Flow_table.create") (fun () ->
      ignore (Flow_table.create ~heap:h ~entries:0 () : Flow_table.t))

let test_flow_table_install_find () =
  let t = Flow_table.create ~heap:(heap ()) ~entries:16 () in
  let b = Ppp_hw.Trace.Builder.create () in
  let f1 = flow () and f2 = flow ~sport:1001 () in
  Alcotest.(check int) "empty" Flow_table.absent (Flow_table.find_flowid t f1);
  Flow_table.install t b ~fn:Ppp_hw.Fn.none f1 7;
  Flow_table.install t b ~fn:Ppp_hw.Fn.none f2 Rule.no_match;
  Alcotest.(check int) "cached action" 7 (Flow_table.find_flowid t f1);
  Alcotest.(check int) "cached drop is not absent" Rule.no_match
    (Flow_table.find_flowid t f2);
  Flow_table.install t b ~fn:Ppp_hw.Fn.none f1 9;
  Alcotest.(check int) "refresh replaces" 9 (Flow_table.find_flowid t f1);
  Alcotest.(check int) "three installs" 3 (Flow_table.installs t);
  Alcotest.(check int) "no evictions yet" 0 (Flow_table.evictions t)

let test_flow_table_eviction () =
  (* Window = whole table: once the 16 slots fill, every further install
     evicts, and the most recent install is always findable. *)
  let t = Flow_table.create ~heap:(heap ()) ~entries:16 ~probe_limit:16 () in
  let b = Ppp_hw.Trace.Builder.create () in
  for i = 0 to 31 do
    Flow_table.install t b ~fn:Ppp_hw.Fn.none (flow ~sport:(100 + i) ()) i;
    Alcotest.(check int) "just-installed entry resident" i
      (Flow_table.find_flowid t (flow ~sport:(100 + i) ()))
  done;
  Alcotest.(check int) "installs" 32 (Flow_table.installs t);
  Alcotest.(check int) "evictions" 16 (Flow_table.evictions t)

let tests =
  [
    Alcotest.test_case "tie-break: install order" `Quick test_tie_break;
    Alcotest.test_case "priority beats order" `Quick test_priority_beats_order;
    Alcotest.test_case "no-match action" `Quick test_no_match;
    Alcotest.test_case "ports and protocol" `Quick test_field_specificity;
    Alcotest.test_case "rulegen validity" `Quick test_rulegen_valid;
    Alcotest.test_case "range index structure" `Quick
      test_range_index_structure;
    Alcotest.test_case "tuple space structure" `Quick
      test_tuple_space_structure;
    Alcotest.test_case "flow table capacity" `Quick test_flow_table_capacity;
    Alcotest.test_case "flow table install/find" `Quick
      test_flow_table_install_find;
    Alcotest.test_case "flow table eviction" `Quick test_flow_table_eviction;
    QCheck_alcotest.to_alcotest (backend_prop Classifier.Tss);
    QCheck_alcotest.to_alcotest (backend_prop Classifier.Range);
    QCheck_alcotest.to_alcotest (fastpath_prop Classifier.Tss);
    QCheck_alcotest.to_alcotest (fastpath_prop Classifier.Range);
  ]
