(* Print one registered experiment's rendered output under the pinned golden
   parameters: tiny machine, seed 42, quick windows, sequential execution.
   The dune rules in this directory diff the output against the committed
   <id>.expected snapshots; `dune promote` updates them. *)

let golden_params = Ppp_core.Runner.Params.quick

(* Slice length for the telemetry snapshots: 4 slices over the 1 M-cycle
   measurement window. *)
let golden_sample_cycles = 250_000

let run_with_telemetry id =
  match Ppp_experiments.Registry.find id with
  | Some e ->
      Ppp_telemetry.Recorder.configure ~sample_cycles:golden_sample_cycles
        ~spans:false ();
      Ppp_telemetry.Recorder.set_experiment id;
      (* The rendered tables are covered by the <id>.expected snapshots;
         here only the collected telemetry is printed. *)
      ignore
        (e.Ppp_experiments.Registry.run ~params:golden_params ()
          : Ppp_experiments.Output.t)
  | None ->
      Printf.eprintf "golden_gen: unknown experiment %S\n" id;
      exit 1

let () =
  (* Snapshots are generated sequentially; the determinism suite separately
     asserts that any job count reproduces them byte-for-byte. *)
  Ppp_core.Parallel.set_jobs 1;
  match Sys.argv with
  | [| _; "trace"; id |] ->
      run_with_telemetry id;
      let meta =
        [
          ("tool", Ppp_telemetry.Json.Str "golden_gen");
          ("machine", Ppp_telemetry.Json.Str "tiny");
          ("seed", Ppp_telemetry.Json.Int golden_params.Ppp_core.Runner.seed);
        ]
      in
      print_string
        (Ppp_telemetry.Json.to_string
           (Ppp_telemetry.Export.deterministic_trace ~meta));
      print_newline ()
  | [| _; "metrics"; id |] ->
      run_with_telemetry id;
      print_string (Ppp_telemetry.Csv.series_csv (Ppp_telemetry.Recorder.series ()))
  | [| _; "alerts"; "monitor" |] ->
      (* The monitor's interpreted alert stream for the loud (aggressor
         switches mid-run) phase: the alerts.json document byte-for-byte. *)
      let d = Ppp_experiments.Monitor_exp.measure ~params:golden_params () in
      print_string
        (Ppp_telemetry.Json.to_string
           d.Ppp_experiments.Monitor_exp.loud.Ppp_experiments.Monitor_exp
             .alerts);
      print_newline ()
  | [| _; "top"; id |] -> (
      (* The `repro top <id>` hot-spot report: the experiment run under the
         per-element profiler, rendered as the top-k table. Attribution is
         simulated-clock only and the report is keyed by element name, so
         the snapshot is stable across job counts. *)
      match Ppp_experiments.Registry.find id with
      | Some e ->
          let params =
            Ppp_core.Runner.Params.with_profile true golden_params
          in
          ignore
            (e.Ppp_experiments.Registry.run ~params ()
              : Ppp_experiments.Output.t);
          print_string
            (Ppp_telemetry.Profile.top ~title:id
               (Ppp_telemetry.Recorder.profile ()))
      | None ->
          Printf.eprintf "golden_gen: unknown experiment %S\n" id;
          exit 1)
  | [| _; "json"; id |] -> (
      (* The `repro run <id> --json` envelope, byte-for-byte: the structured
         result wrapped in {id, title, paper_ref, data}. *)
      match Ppp_experiments.Registry.find id with
      | Some e ->
          let out = e.Ppp_experiments.Registry.run ~params:golden_params () in
          print_string
            (Ppp_telemetry.Json.to_string
               (Ppp_telemetry.Json.Obj
                  [
                    ("id", Ppp_telemetry.Json.Str e.Ppp_experiments.Registry.id);
                    ( "title",
                      Ppp_telemetry.Json.Str e.Ppp_experiments.Registry.title );
                    ( "paper_ref",
                      Ppp_telemetry.Json.Str
                        e.Ppp_experiments.Registry.paper_ref );
                    ("data", out.Ppp_experiments.Output.data);
                  ]));
          print_newline ()
      | None ->
          Printf.eprintf "golden_gen: unknown experiment %S\n" id;
          exit 1)
  | [| _; id |] -> (
      match Ppp_experiments.Registry.find id with
      | Some e ->
          print_string
            (e.Ppp_experiments.Registry.run ~params:golden_params ())
              .Ppp_experiments.Output.text
      | None ->
          Printf.eprintf "golden_gen: unknown experiment %S\n" id;
          exit 1)
  | _ ->
      Printf.eprintf
        "usage: golden_gen [trace|metrics|alerts|json|top] <experiment-id>\n";
      exit 1
