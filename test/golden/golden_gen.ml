(* Print one registered experiment's rendered output under the pinned golden
   parameters: tiny machine, seed 42, quick windows, sequential execution.
   The dune rules in this directory diff the output against the committed
   <id>.expected snapshots; `dune promote` updates them. *)

let golden_params =
  {
    Ppp_core.Runner.config = Ppp_hw.Machine.tiny;
    seed = 42;
    warmup_cycles = 300_000;
    measure_cycles = 1_000_000;
  }

let () =
  (* Snapshots are generated sequentially; the determinism suite separately
     asserts that any job count reproduces them byte-for-byte. *)
  Ppp_core.Parallel.set_jobs 1;
  match Sys.argv with
  | [| _; id |] -> (
      match Ppp_experiments.Registry.find id with
      | Some e -> print_string (e.Ppp_experiments.Registry.run ~params:golden_params ())
      | None ->
          Printf.eprintf "golden_gen: unknown experiment %S\n" id;
          exit 1)
  | _ ->
      Printf.eprintf "usage: golden_gen <experiment-id>\n";
      exit 1
