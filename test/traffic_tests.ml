open Ppp_traffic

let test_zipf_bounds () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let rng = Ppp_util.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 100)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~s:1.2 in
  let rng = Ppp_util.Rng.create ~seed:2 in
  let top10 = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Zipf.sample z rng < 10 then incr top10
  done;
  (* With s = 1.2, the top-10 ranks carry far more than 1% of the mass. *)
  Alcotest.(check bool) "head heavy" true (!top10 > n / 5)

let test_zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  Alcotest.(check (float 1e-9)) "uniform mass" 0.5 (Zipf.expected_mass z 5)

let test_zipf_expected_mass_monotone () =
  let z = Zipf.create ~n:50 ~s:0.8 in
  Alcotest.(check bool) "monotone" true
    (Zipf.expected_mass z 10 < Zipf.expected_mass z 20);
  Alcotest.(check (float 1e-9)) "total" 1.0 (Zipf.expected_mass z 50)

let test_gen_builds_valid_frames () =
  let p = Ppp_net.Packet.create 128 in
  Gen.fill_ipv4_udp p ~src:0x0A000001 ~dst:0x0B000002 ~sport:53 ~dport:5353
    ~wire_len:90;
  Alcotest.(check int) "len" 90 p.Ppp_net.Packet.len;
  Alcotest.(check int) "ethertype" Ppp_net.Ethernet.ethertype_ipv4
    (Ppp_net.Ethernet.ethertype p);
  Alcotest.(check bool) "valid IP" true (Ppp_net.Ipv4.valid p);
  Alcotest.(check int) "sport" 53 (Ppp_net.Transport.src_port p)

let test_gen_rejects_short () =
  let p = Ppp_net.Packet.create 128 in
  Alcotest.check_raises "short" (Invalid_argument "Gen.fill_ipv4_udp: too short")
    (fun () ->
      Gen.fill_ipv4_udp p ~src:0 ~dst:0 ~sport:0 ~dport:0 ~wire_len:40)

let test_seeded_payload_deterministic () =
  let p1 = Ppp_net.Packet.create 256 and p2 = Ppp_net.Packet.create 256 in
  Ppp_net.Packet.resize p1 200;
  Ppp_net.Packet.resize p2 200;
  Gen.seeded_payload ~seed:99 p1 ~pos:42 ~len:150;
  Gen.seeded_payload ~seed:99 p2 ~pos:42 ~len:150;
  Alcotest.(check string) "identical"
    (Ppp_net.Packet.sub_string p1 ~pos:42 ~len:150)
    (Ppp_net.Packet.sub_string p2 ~pos:42 ~len:150);
  Gen.seeded_payload ~seed:100 p2 ~pos:42 ~len:150;
  Alcotest.(check bool) "different seed differs" false
    (Ppp_net.Packet.sub_string p1 ~pos:42 ~len:150
    = Ppp_net.Packet.sub_string p2 ~pos:42 ~len:150)

let prop_zipf_in_range =
  QCheck.Test.make ~count:200 ~name:"zipf sample within [0,n)"
    QCheck.(pair (int_range 1 500) (float_bound_inclusive 2.0))
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      let rng = Ppp_util.Rng.create ~seed:(n + int_of_float (s *. 100.0)) in
      let v = Zipf.sample z rng in
      v >= 0 && v < n)

(* ---- Traffic.Source layer properties -------------------------------- *)

(* Seeds are derived from the sampled parameters, so each property is a
   deterministic function of the qcheck draw: failures replay exactly.
   Parameters are clamped into their domain inside the property because
   qcheck's int_range shrinker can step outside the range while
   minimizing a counterexample. *)
let seed_of a b = 0x9E37 + (a * 7919) + b
let clamp lo hi v = lo + (abs v mod (hi - lo + 1))

let prop_heavy_tail_top_mass =
  (* A single realization's top-k mass swings wildly (one elephant drawn
     near the cap moves the total), so compare the mean over 8 seeds and
     cap sizes at 1000 packets. Empirically the worst mean-deviation over
     the full (flows, alpha) grid is ~0.073 — about 0.04 of it systematic
     (the quantile integration underestimates expected order-statistic
     mass) — so 0.15 is a sound bound with 2x margin. *)
  QCheck.Test.make ~count:60 ~name:"heavy_tail: top-k mass matches analytic"
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let flows = clamp 512 4096 a in
      let alpha = float_of_int (clamp 105 195 b) /. 100.0 in
      let k = max 1 (flows / 20) in
      let reps = 8 in
      let acc = ref 0.0 in
      for r = 0 to reps - 1 do
        let ht =
          Heavy_tail.create
            ~seed:(seed_of flows b + (r * 7919))
            ~flows ~alpha ~max_pkts:1000 ()
        in
        acc := !acc +. Heavy_tail.top_mass ht ~k
      done;
      let mean = !acc /. float_of_int reps in
      let analytic =
        Heavy_tail.analytic_top_mass ~flows ~alpha ~max_pkts:1000 ~k ()
      in
      Float.abs (mean -. analytic) < 0.15)

let prop_heavy_tail_determinism =
  QCheck.Test.make ~count:50 ~name:"heavy_tail: same seed, same realization"
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let flows = clamp 16 2048 a in
      let alpha100 = clamp 105 195 b in
      let alpha = float_of_int alpha100 /. 100.0 in
      let seed = seed_of flows alpha100 in
      let a = Heavy_tail.create ~seed ~flows ~alpha () in
      let b = Heavy_tail.create ~seed ~flows ~alpha () in
      let sizes_equal = ref (Heavy_tail.total_pkts a = Heavy_tail.total_pkts b) in
      for i = 0 to flows - 1 do
        if Heavy_tail.size a i <> Heavy_tail.size b i then sizes_equal := false
      done;
      let ra = Ppp_util.Rng.create ~seed:(seed + 1)
      and rb = Ppp_util.Rng.create ~seed:(seed + 1) in
      let stream_equal = ref true in
      for _ = 1 to 256 do
        if Heavy_tail.sample a ra <> Heavy_tail.sample b rb then
          stream_equal := false
      done;
      !sizes_equal && !stream_equal)

let prop_onoff_duty_cycle =
  QCheck.Test.make ~count:40 ~name:"onoff: duty cycle converges to on/(on+off)"
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let mean_on = clamp 4 192 a and mean_off = clamp 4 192 b in
      let oo = Onoff.create ~mean_on ~mean_off ~burst_flows:4 ~flow_base:1_000_000 () in
      let rng = Ppp_util.Rng.create ~seed:(seed_of mean_on mean_off) in
      let base = Source.of_gen ~name:"null" (fun _ -> ()) in
      let src = Onoff.source oo ~rng ~base () in
      let p = Ppp_net.Packet.create 128 in
      (* Enough packets for ~500 ON/OFF cycles regardless of the means. *)
      let n = 500 * (mean_on + mean_off) in
      for _ = 1 to n do
        ignore (Source.fill src p)
      done;
      let expected =
        float_of_int mean_on /. float_of_int (mean_on + mean_off)
      in
      Float.abs (Onoff.duty_cycle oo -. expected) < 0.05)

let prop_rss_never_reorders =
  QCheck.Test.make ~count:40 ~name:"steering: RSS never reorders within a flow"
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let cores = clamp 1 8 a and flows = clamp 64 2048 b in
      let seed = seed_of cores flows in
      let ht = Heavy_tail.create ~seed ~flows ~alpha:1.3 () in
      let rng = Ppp_util.Rng.create ~seed:(seed + 1) in
      let st = Steering.create ~migrate_every:64 ~cores Steering.Rss in
      let src = Steering.source st (Heavy_tail.source ht ~rng ()) in
      let det = Reorder.create () in
      let p = Ppp_net.Packet.create 128 in
      for _ = 1 to 20_000 do
        ignore (Source.fill src p);
        ignore
          (Reorder.observe det ~flow:(Source.last_flow src)
             ~seq:(Source.last_seq src)
            : bool)
      done;
      Reorder.reorders det = 0)

let prop_fdir_reorders_eq_migrations =
  QCheck.Test.make ~count:40
    ~name:"steering: flow-director reorders == migrations"
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let cores = clamp 2 8 a and migrate_every = clamp 16 512 b in
      let seed = seed_of cores migrate_every in
      let ht = Heavy_tail.create ~seed ~flows:1024 ~alpha:1.3 () in
      let rng = Ppp_util.Rng.create ~seed:(seed + 1) in
      let st = Steering.create ~migrate_every ~cores Steering.Flow_director in
      let src = Steering.source st (Heavy_tail.source ht ~rng ()) in
      let det = Reorder.create () in
      let p = Ppp_net.Packet.create 128 in
      for _ = 1 to 30_000 do
        ignore (Source.fill src p);
        ignore
          (Reorder.observe det ~flow:(Source.last_flow src)
             ~seq:(Source.last_seq src)
            : bool)
      done;
      Steering.migrations st > 0
      && Reorder.reorders det = Steering.migrations st)

let test_reorder_slots_validation () =
  Alcotest.check_raises "non-power-of-two rejected"
    (Invalid_argument "Reorder.create: slots must be a positive power of two")
    (fun () -> ignore (Reorder.create ~slots:100 ()));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Reorder.create: slots must be a positive power of two")
    (fun () -> ignore (Reorder.create ~slots:0 ()))

let test_reorder_eviction_never_false_positive () =
  (* Flows 0 and 8 alias in an 8-slot cache: every observation evicts the
     other flow's state. In-order arrivals must still report zero reorders
     — eviction may only under-count. *)
  let det = Reorder.create ~slots:8 () in
  for seq = 0 to 999 do
    ignore (Reorder.observe det ~flow:0 ~seq : bool);
    ignore (Reorder.observe det ~flow:8 ~seq : bool)
  done;
  Alcotest.(check int) "no false positives under aliasing" 0
    (Reorder.reorders det);
  Alcotest.(check int) "observed all" 2000 (Reorder.observed det);
  (* A genuine inversion on a resident flow is still caught. *)
  Alcotest.(check bool) "observe flags the inversion" true
    (Reorder.observe det ~flow:8 ~seq:0);
  Alcotest.(check int) "real inversion detected" 1 (Reorder.reorders det)

let tests =
  [
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform at s=0" `Quick test_zipf_uniform_when_s0;
    Alcotest.test_case "zipf mass monotone" `Quick test_zipf_expected_mass_monotone;
    Alcotest.test_case "gen valid frames" `Quick test_gen_builds_valid_frames;
    Alcotest.test_case "gen rejects short" `Quick test_gen_rejects_short;
    Alcotest.test_case "seeded payload deterministic" `Quick test_seeded_payload_deterministic;
    QCheck_alcotest.to_alcotest prop_zipf_in_range;
    Alcotest.test_case "reorder slots validation" `Quick
      test_reorder_slots_validation;
    Alcotest.test_case "reorder eviction never false-positive" `Quick
      test_reorder_eviction_never_false_positive;
    QCheck_alcotest.to_alcotest prop_heavy_tail_top_mass;
    QCheck_alcotest.to_alcotest prop_heavy_tail_determinism;
    QCheck_alcotest.to_alcotest prop_onoff_duty_cycle;
    QCheck_alcotest.to_alcotest prop_rss_never_reorders;
    QCheck_alcotest.to_alcotest prop_fdir_reorders_eq_migrations;
  ]
