(* Tests for the extension wave: histogram/latency, binary trie, SHA-256,
   DPI, pcap, multiplexing, utility elements. *)

let heap () = Ppp_simmem.Heap.create ~node:0
let fn = Ppp_hw.Fn.none

(* --- Histogram --- *)

let test_histogram_basics () =
  let h = Ppp_util.Histogram.create () in
  List.iter (Ppp_util.Histogram.record h) [ 1; 2; 3; 4; 100 ];
  Alcotest.(check int) "count" 5 (Ppp_util.Histogram.count h);
  Alcotest.(check int) "total" 110 (Ppp_util.Histogram.total h);
  Alcotest.(check (float 1e-9)) "mean" 22.0 (Ppp_util.Histogram.mean h)

let test_histogram_small_values_exact () =
  let h = Ppp_util.Histogram.create () in
  for v = 0 to 63 do
    Ppp_util.Histogram.record h v
  done;
  Alcotest.(check int) "p50 exact for small values" 31
    (Ppp_util.Histogram.percentile h 50.0);
  Alcotest.(check int) "p100" 63 (Ppp_util.Histogram.percentile h 100.0)

let test_histogram_percentile_accuracy () =
  let h = Ppp_util.Histogram.create () in
  for _ = 1 to 90 do
    Ppp_util.Histogram.record h 1000
  done;
  for _ = 1 to 10 do
    Ppp_util.Histogram.record h 100000
  done;
  let p50 = Ppp_util.Histogram.percentile h 50.0 in
  let p99 = Ppp_util.Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p50 near 1000" true (p50 >= 1000 && p50 < 1100);
  Alcotest.(check bool) "p99 near 100000" true (p99 >= 100000 && p99 < 107000)

let test_histogram_empty () =
  let h = Ppp_util.Histogram.create () in
  Alcotest.(check int) "p99 of empty" 0 (Ppp_util.Histogram.percentile h 99.0);
  Alcotest.(check int) "max of empty" 0 (Ppp_util.Histogram.max_value h)

let test_histogram_merge () =
  let a = Ppp_util.Histogram.create () and b = Ppp_util.Histogram.create () in
  Ppp_util.Histogram.record a 5;
  Ppp_util.Histogram.record b 7;
  Ppp_util.Histogram.merge_into ~src:a ~dst:b;
  Alcotest.(check int) "merged count" 2 (Ppp_util.Histogram.count b);
  Alcotest.(check int) "merged total" 12 (Ppp_util.Histogram.total b)

let prop_histogram_percentile_bounds =
  QCheck.Test.make ~count:100 ~name:"histogram percentile within 5% of max sample"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 1_000_000))
    (fun samples ->
      let h = Ppp_util.Histogram.create () in
      List.iter (Ppp_util.Histogram.record h) samples;
      let mx = List.fold_left max 0 samples in
      let p100 = Ppp_util.Histogram.percentile h 100.0 in
      p100 >= mx && float_of_int p100 <= (float_of_int mx *. 1.07) +. 64.0)

(* --- Engine latency --- *)

let test_engine_latency_recorded () =
  let hier = Ppp_hw.Machine.build Ppp_hw.Machine.tiny in
  let b = Ppp_hw.Trace.Builder.create () in
  let source _now =
    Ppp_hw.Trace.Builder.clear b;
    Ppp_hw.Trace.Builder.compute b ~fn 1000;
    Ppp_hw.Engine.Packet (Ppp_hw.Trace.Builder.finish b)
  in
  match
    Ppp_hw.Engine.run hier
      ~flows:[ { Ppp_hw.Engine.core = 0; label = "l"; source } ]
      ~warmup_cycles:10_000 ~measure_cycles:100_000
  with
  | [ r ] ->
      let h = r.Ppp_hw.Engine.latency in
      Alcotest.(check bool) "latency samples" true (Ppp_util.Histogram.count h > 0);
      (* Each packet is exactly 600 cycles of compute. *)
      let p50 = Ppp_util.Histogram.percentile h 50.0 in
      Alcotest.(check bool) "p50 near 600 cycles" true (p50 >= 590 && p50 <= 640)
  | _ -> Alcotest.fail "one result"

(* --- Binary trie --- *)

let ip = Ppp_net.Ipv4.addr_of_string

let test_binary_trie_lpm () =
  let t = Ppp_apps.Binary_trie.create ~heap:(heap ()) ~default_hop:0 () in
  Ppp_apps.Binary_trie.add_route t ~prefix:(ip "10.0.0.0") ~plen:8 ~hop:1;
  Ppp_apps.Binary_trie.add_route t ~prefix:(ip "10.1.0.0") ~plen:16 ~hop:2;
  Ppp_apps.Binary_trie.add_route t ~prefix:(ip "10.1.2.128") ~plen:25 ~hop:4;
  Alcotest.(check int) "/8" 1 (Ppp_apps.Binary_trie.lookup_quiet t (ip "10.9.9.9"));
  Alcotest.(check int) "/16" 2 (Ppp_apps.Binary_trie.lookup_quiet t (ip "10.1.9.9"));
  Alcotest.(check int) "/25" 4 (Ppp_apps.Binary_trie.lookup_quiet t (ip "10.1.2.200"));
  Alcotest.(check int) "default" 0 (Ppp_apps.Binary_trie.lookup_quiet t (ip "11.0.0.1"))

let prop_binary_trie_matches_radix =
  QCheck.Test.make ~count:40 ~name:"binary trie agrees with multibit radix trie"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 30)
           (triple (int_bound 0xFFFFFFFF) (int_range 8 32) (int_range 1 65535)))
        (list_of_size Gen.(int_range 1 40) (int_bound 0xFFFFFFFF)))
    (fun (routes, dsts) ->
      let h = heap () in
      let bt = Ppp_apps.Binary_trie.create ~heap:h ~max_nodes:8192 ~default_hop:0 () in
      let rt = Ppp_apps.Radix_trie.create ~heap:h ~max_nodes:4096 ~default_hop:0 () in
      List.iter
        (fun (prefix, plen, hop) ->
          Ppp_apps.Binary_trie.add_route bt ~prefix ~plen ~hop;
          Ppp_apps.Radix_trie.add_route rt ~prefix ~plen ~hop)
        routes;
      List.for_all
        (fun dst ->
          Ppp_apps.Binary_trie.lookup_quiet bt dst
          = Ppp_apps.Radix_trie.lookup_quiet rt dst)
        dsts)

let test_binary_trie_more_refs_than_radix () =
  let h = heap () in
  let bt = Ppp_apps.Binary_trie.create ~heap:h ~default_hop:0 () in
  let rt = Ppp_apps.Radix_trie.create ~heap:h ~default_hop:0 () in
  Ppp_apps.Binary_trie.add_route bt ~prefix:(ip "10.1.2.0") ~plen:24 ~hop:3;
  Ppp_apps.Radix_trie.add_route rt ~prefix:(ip "10.1.2.0") ~plen:24 ~hop:3;
  let refs lookup =
    let b = Ppp_hw.Trace.Builder.create () in
    ignore (lookup b (ip "10.1.2.9") : int);
    Ppp_hw.Trace.Builder.length b
  in
  let bt_refs = refs (fun b dst -> Ppp_apps.Binary_trie.lookup bt b ~fn dst) in
  let rt_refs = refs (fun b dst -> Ppp_apps.Radix_trie.lookup rt b ~fn dst) in
  Alcotest.(check bool)
    (Printf.sprintf "binary (%d) walks more nodes than multibit (%d)" bt_refs rt_refs)
    true (bt_refs > rt_refs)

(* --- SHA-256 / HMAC --- *)

let test_sha256_nist_vectors () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Ppp_apps.Sha256.hex_of (Ppp_apps.Sha256.digest_string ""));
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Ppp_apps.Sha256.hex_of (Ppp_apps.Sha256.digest_string "abc"));
  Alcotest.(check string) "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Ppp_apps.Sha256.hex_of
       (Ppp_apps.Sha256.digest_string
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha256_million_a () =
  (* FIPS 180-4 long vector. *)
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Ppp_apps.Sha256.hex_of (Ppp_apps.Sha256.digest_string (String.make 1_000_000 'a')))

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 2. *)
  Alcotest.(check string) "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Ppp_apps.Sha256.hex_of
       (Ppp_apps.Sha256.hmac_string ~key:"Jefe" "what do ya want for nothing?"));
  (* RFC 4231 test case 1: key = 20 x 0x0b, data "Hi There". *)
  Alcotest.(check string) "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Ppp_apps.Sha256.hex_of
       (Ppp_apps.Sha256.hmac_string ~key:(String.make 20 '\x0b') "Hi There"))

let test_hmac_long_key () =
  (* RFC 4231 test case 6: 131-byte key gets hashed first. *)
  Alcotest.(check string) "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Ppp_apps.Sha256.hex_of
       (Ppp_apps.Sha256.hmac_string ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_sha256_slice () =
  let b = Bytes.of_string "xxabcyy" in
  Alcotest.(check string) "slice = standalone"
    (Ppp_apps.Sha256.hex_of (Ppp_apps.Sha256.digest_string "abc"))
    (Ppp_apps.Sha256.hex_of (Ppp_apps.Sha256.digest b ~pos:2 ~len:3))

(* --- DPI --- *)

let test_dpi_finds_patterns () =
  let dpi = Ppp_apps.Dpi.create ~heap:(heap ()) [ "he"; "she"; "his"; "hers" ] in
  let data = Bytes.of_string "ushers" in
  let matches = Ppp_apps.Dpi.scan_quiet dpi data ~pos:0 ~len:6 in
  (* Classic Aho-Corasick example: "she" at 3, "he" at 3, "hers" at 5. *)
  let sorted = List.sort compare matches in
  Alcotest.(check (list (pair int int))) "matches"
    [ (0, 3); (1, 3); (3, 5) ]
    sorted

let test_dpi_overlapping_and_repeats () =
  let dpi = Ppp_apps.Dpi.create ~heap:(heap ()) [ "aa" ] in
  let data = Bytes.of_string "aaaa" in
  Alcotest.(check int) "overlaps all counted" 3
    (List.length (Ppp_apps.Dpi.scan_quiet dpi data ~pos:0 ~len:4))

let test_dpi_no_match () =
  let dpi = Ppp_apps.Dpi.create ~heap:(heap ()) [ "needle" ] in
  let data = Bytes.of_string "haystack without it" in
  Alcotest.(check (list (pair int int))) "empty" []
    (Ppp_apps.Dpi.scan_quiet dpi data ~pos:0 ~len:(Bytes.length data))

let test_dpi_instrumented_matches_quiet () =
  let dpi = Ppp_apps.Dpi.create ~heap:(heap ()) [ "ab"; "bc" ] in
  let data = Bytes.of_string "zababcz" in
  let b = Ppp_hw.Trace.Builder.create () in
  Alcotest.(check (list (pair int int))) "same results"
    (Ppp_apps.Dpi.scan_quiet dpi data ~pos:0 ~len:7)
    (Ppp_apps.Dpi.scan dpi b ~fn data ~pos:0 ~len:7);
  (* One transition read per byte plus output reads. *)
  Alcotest.(check bool) "one ref per byte at least" true
    (Ppp_hw.Trace.Builder.length b >= 7)

let test_dpi_element_drops () =
  let dpi = Ppp_apps.Dpi.create ~heap:(heap ()) [ "EVIL" ] in
  let el = Ppp_apps.Dpi.element dpi in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:1) in
  let mk payload =
    let pkt = Ppp_net.Packet.create 256 in
    Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:1 ~dst:2 ~sport:3 ~dport:4 ~wire_len:128;
    let pos = Ppp_net.Transport.payload_offset pkt in
    Ppp_net.Packet.blit_string payload pkt pos;
    pkt
  in
  Alcotest.(check bool) "clean forwarded" true
    (el.Ppp_click.Element.process ctx (mk "nothing to see") = Ppp_click.Element.Forward);
  Alcotest.(check bool) "malicious dropped" true
    (el.Ppp_click.Element.process ctx (mk "xxEVILxx") = Ppp_click.Element.Drop);
  Alcotest.(check bool) "matches counted" true (Ppp_apps.Dpi.matches_seen dpi >= 1)

let naive_matches patterns data =
  let n = Bytes.length data in
  let acc = ref [] in
  List.iteri
    (fun pi p ->
      let pl = String.length p in
      for i = 0 to n - pl do
        if Bytes.sub_string data i pl = p then acc := (pi, i + pl - 1) :: !acc
      done)
    patterns;
  List.sort compare !acc

let prop_dpi_matches_naive =
  QCheck.Test.make ~count:60 ~name:"DPI equals naive multi-pattern search"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 5)
           (string_gen_of_size Gen.(int_range 1 4) (Gen.char_range 'a' 'd')))
        (string_gen_of_size Gen.(int_range 0 60) (Gen.char_range 'a' 'd')))
    (fun (patterns, text) ->
      let dpi = Ppp_apps.Dpi.create ~heap:(heap ()) patterns in
      let data = Bytes.of_string text in
      let got =
        List.sort compare
          (Ppp_apps.Dpi.scan_quiet dpi data ~pos:0 ~len:(Bytes.length data))
      in
      (* Duplicate patterns share an automaton end state but keep distinct
         bitmask bits; naive search also reports both. *)
      got = naive_matches patterns data)

(* --- Pcap --- *)

let mk_pkt len seed =
  let pkt = Ppp_net.Packet.create ~cap:(max len 60) len in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:seed ~dst:(seed + 1) ~sport:7 ~dport:8
    ~wire_len:len;
  pkt

let test_pcap_roundtrip () =
  let cap = Ppp_traffic.Pcap.create () in
  Ppp_traffic.Pcap.append cap ~ts_usec:1000 (mk_pkt 64 1);
  Ppp_traffic.Pcap.append cap ~ts_usec:2000 (mk_pkt 128 2);
  Ppp_traffic.Pcap.append cap (mk_pkt 256 3);
  let bytes = Ppp_traffic.Pcap.to_bytes cap in
  match Ppp_traffic.Pcap.of_bytes bytes with
  | Error e -> Alcotest.fail e
  | Ok cap' ->
      Alcotest.(check int) "count" 3 (Ppp_traffic.Pcap.length cap');
      List.iter2
        (fun (a : Ppp_traffic.Pcap.record) (b : Ppp_traffic.Pcap.record) ->
          Alcotest.(check int) "ts" a.Ppp_traffic.Pcap.ts_usec b.Ppp_traffic.Pcap.ts_usec;
          Alcotest.(check int) "len" a.Ppp_traffic.Pcap.pkt.Ppp_net.Packet.len
            b.Ppp_traffic.Pcap.pkt.Ppp_net.Packet.len;
          Alcotest.(check bytes) "data"
            (Bytes.sub a.Ppp_traffic.Pcap.pkt.Ppp_net.Packet.data 0
               a.Ppp_traffic.Pcap.pkt.Ppp_net.Packet.len)
            (Bytes.sub b.Ppp_traffic.Pcap.pkt.Ppp_net.Packet.data 0
               b.Ppp_traffic.Pcap.pkt.Ppp_net.Packet.len))
        (Ppp_traffic.Pcap.records cap)
        (Ppp_traffic.Pcap.records cap')

let test_pcap_file_io () =
  let cap = Ppp_traffic.Pcap.create () in
  Ppp_traffic.Pcap.append cap (mk_pkt 64 9);
  let path = Filename.temp_file "ppp" ".pcap" in
  Ppp_traffic.Pcap.save cap path;
  (match Ppp_traffic.Pcap.load path with
  | Ok cap' -> Alcotest.(check int) "loaded" 1 (Ppp_traffic.Pcap.length cap')
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_pcap_rejects_garbage () =
  match Ppp_traffic.Pcap.of_bytes (Bytes.make 30 'x') with
  | Ok _ -> Alcotest.fail "should reject"
  | Error _ -> ()

let test_pcap_replay_cycles () =
  let cap = Ppp_traffic.Pcap.create () in
  Ppp_traffic.Pcap.append cap (mk_pkt 64 1);
  Ppp_traffic.Pcap.append cap (mk_pkt 96 2);
  let src = Ppp_traffic.Pcap.replay cap in
  let gen = Ppp_traffic.Source.to_gen src in
  let p = Ppp_net.Packet.create ~cap:2048 60 in
  gen p;
  Alcotest.(check int) "first" 64 p.Ppp_net.Packet.len;
  gen p;
  Alcotest.(check int) "second" 96 p.Ppp_net.Packet.len;
  gen p;
  Alcotest.(check int) "loops" 64 p.Ppp_net.Packet.len;
  Alcotest.(check int) "packets counted" 3 (Ppp_traffic.Source.packets src)

(* --- Multiplex --- *)

let test_multiplex_round_robin_order () =
  let b = Ppp_hw.Trace.Builder.create () in
  let src tag _now =
    Ppp_hw.Trace.Builder.clear b;
    Ppp_hw.Trace.Builder.compute b ~fn tag;
    Ppp_hw.Engine.Packet (Ppp_hw.Trace.Builder.finish b)
  in
  let mux = Ppp_click.Multiplex.round_robin [ src 11; src 22 ] in
  let payload_of item =
    match item with
    | Ppp_hw.Engine.Packet t | Ppp_hw.Engine.Idle t
    | Ppp_hw.Engine.Reordered t ->
        Ppp_hw.Trace.payload t 0
  in
  Alcotest.(check (list int)) "alternates" [ 11; 22; 11; 22 ]
    (List.map (fun i -> payload_of (mux i)) [ 0; 1; 2; 3 ])

let test_multiplex_weighted () =
  let b = Ppp_hw.Trace.Builder.create () in
  let src tag _now =
    Ppp_hw.Trace.Builder.clear b;
    Ppp_hw.Trace.Builder.compute b ~fn tag;
    Ppp_hw.Engine.Packet (Ppp_hw.Trace.Builder.finish b)
  in
  let mux = Ppp_click.Multiplex.weighted [ (src 1, 2); (src 2, 1) ] in
  let payload_of item =
    match item with
    | Ppp_hw.Engine.Packet t | Ppp_hw.Engine.Idle t
    | Ppp_hw.Engine.Reordered t ->
        Ppp_hw.Trace.payload t 0
  in
  Alcotest.(check (list int)) "2:1 pattern" [ 1; 1; 2; 1; 1; 2 ]
    (List.map (fun i -> payload_of (mux i)) [ 0; 1; 2; 3; 4; 5 ])

let test_multiplex_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Multiplex.round_robin: empty")
    (fun () ->
      ignore (Ppp_click.Multiplex.round_robin [] : Ppp_hw.Engine.source))

(* --- Utility elements --- *)

let test_counter_element () =
  let el, state = Ppp_click.Util_elements.counter ~heap:(heap ()) () in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:2) in
  let pkt = mk_pkt 100 1 in
  ignore (el.Ppp_click.Element.process ctx pkt);
  ignore (el.Ppp_click.Element.process ctx pkt);
  Alcotest.(check int) "packets" 2 state.Ppp_click.Util_elements.packets;
  Alcotest.(check int) "bytes" 200 state.Ppp_click.Util_elements.bytes

let test_rated_sampler () =
  let el = Ppp_click.Util_elements.rated_sampler ~every:3 in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:2) in
  let pkt = mk_pkt 64 1 in
  let verdicts = List.init 6 (fun _ -> el.Ppp_click.Element.process ctx pkt) in
  let forwards =
    List.length (List.filter (fun v -> v = Ppp_click.Element.Forward) verdicts)
  in
  Alcotest.(check int) "1 in 3 forwarded" 2 forwards

(* --- DPI app kind integration --- *)

let test_dpi_app_kind () =
  Alcotest.(check bool) "of_name" true (Ppp_apps.App.of_name "DPI" = Some Ppp_apps.App.DPI);
  let b =
    Ppp_apps.App.build Ppp_apps.App.DPI ~heap:(heap ())
      ~rng:(Ppp_util.Rng.create ~seed:3) ~scale:128
  in
  Alcotest.(check bool) "has elements" true (List.length b.Ppp_apps.App.elements >= 5);
  let r = Ppp_core.Runner.solo ~params:Ppp_core.Runner.quick_params Ppp_apps.App.DPI in
  Alcotest.(check bool) "runs" true (r.Ppp_hw.Engine.throughput_pps > 0.0)

(* --- multiflow experiment --- *)

let test_multiflow_escalation () =
  let params =
    {
      Ppp_core.Runner.default_params with
      Ppp_core.Runner.warmup_cycles = 400_000;
      measure_cycles = 1_200_000;
    }
  in
  let data = Ppp_experiments.Multiflow_exp.measure ~params () in
  Alcotest.(check bool) "rule refs escalate when sharing the core" true
    (data.Ppp_experiments.Multiflow_exp.multiplexed
       .Ppp_experiments.Multiflow_exp.fw_rule_l3_refs_per_fw_packet
    > data.Ppp_experiments.Multiflow_exp.separate
        .Ppp_experiments.Multiflow_exp.fw_rule_l3_refs_per_fw_packet
      *. 5.0)

let tests =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram small exact" `Quick test_histogram_small_values_exact;
    Alcotest.test_case "histogram percentile accuracy" `Quick test_histogram_percentile_accuracy;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_bounds;
    Alcotest.test_case "engine latency recorded" `Quick test_engine_latency_recorded;
    Alcotest.test_case "binary trie LPM" `Quick test_binary_trie_lpm;
    QCheck_alcotest.to_alcotest prop_binary_trie_matches_radix;
    Alcotest.test_case "binary trie walks more" `Quick test_binary_trie_more_refs_than_radix;
    Alcotest.test_case "SHA-256 NIST vectors" `Quick test_sha256_nist_vectors;
    Alcotest.test_case "SHA-256 million a" `Slow test_sha256_million_a;
    Alcotest.test_case "HMAC RFC 4231" `Quick test_hmac_rfc4231;
    Alcotest.test_case "HMAC long key" `Quick test_hmac_long_key;
    Alcotest.test_case "SHA-256 slice" `Quick test_sha256_slice;
    Alcotest.test_case "DPI ushers example" `Quick test_dpi_finds_patterns;
    Alcotest.test_case "DPI overlaps" `Quick test_dpi_overlapping_and_repeats;
    Alcotest.test_case "DPI no match" `Quick test_dpi_no_match;
    Alcotest.test_case "DPI instrumented = quiet" `Quick test_dpi_instrumented_matches_quiet;
    Alcotest.test_case "DPI element drops" `Quick test_dpi_element_drops;
    QCheck_alcotest.to_alcotest prop_dpi_matches_naive;
    Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap file io" `Quick test_pcap_file_io;
    Alcotest.test_case "pcap rejects garbage" `Quick test_pcap_rejects_garbage;
    Alcotest.test_case "pcap replay cycles" `Quick test_pcap_replay_cycles;
    Alcotest.test_case "multiplex round robin" `Quick test_multiplex_round_robin_order;
    Alcotest.test_case "multiplex weighted" `Quick test_multiplex_weighted;
    Alcotest.test_case "multiplex rejects empty" `Quick test_multiplex_rejects_empty;
    Alcotest.test_case "counter element" `Quick test_counter_element;
    Alcotest.test_case "rated sampler" `Quick test_rated_sampler;
    Alcotest.test_case "DPI app kind" `Quick test_dpi_app_kind;
    Alcotest.test_case "multiflow escalation" `Slow test_multiflow_escalation;
  ]

(* --- Authenticated VPN (encrypt-then-MAC) --- *)

let mk_vpn_packet () =
  let pkt = Ppp_net.Packet.create 512 in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:1 ~dst:2 ~sport:3 ~dport:4 ~wire_len:192;
  let pos = Ppp_net.Transport.payload_offset pkt in
  Ppp_traffic.Gen.seeded_payload ~seed:11 pkt ~pos ~len:(192 - pos);
  pkt

let vpn_tests_key = "0123456789abcdef"
let vpn_tests_auth = "super secret mac key"

let test_vpn_auth_roundtrip () =
  let h = heap () in
  let enc =
    Ppp_apps.More_elements.vpn_encrypt ~auth_key:vpn_tests_auth ~heap:h
      ~key:vpn_tests_key ()
  in
  let dec =
    Ppp_apps.More_elements.vpn_verify ~auth_key:vpn_tests_auth ~heap:h
      ~key:vpn_tests_key
  in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:4) in
  let pkt = mk_vpn_packet () in
  let pos = Ppp_net.Transport.payload_offset pkt in
  let original = Ppp_net.Packet.sub_string pkt ~pos ~len:(192 - pos) in
  Alcotest.(check bool) "encrypt forwards" true
    (enc.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Forward);
  Alcotest.(check int) "tag appended" (192 + 32) pkt.Ppp_net.Packet.len;
  Alcotest.(check int) "IP length fixed" (192 + 32 - 14)
    (Ppp_net.Ipv4.total_length pkt);
  Alcotest.(check bool) "verify forwards" true
    (dec.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Forward);
  Alcotest.(check int) "tag stripped" 192 pkt.Ppp_net.Packet.len;
  Alcotest.(check string) "payload restored" original
    (Ppp_net.Packet.sub_string pkt ~pos ~len:(192 - pos))

let test_vpn_auth_detects_tampering () =
  let h = heap () in
  let enc =
    Ppp_apps.More_elements.vpn_encrypt ~auth_key:vpn_tests_auth ~heap:h
      ~key:vpn_tests_key ()
  in
  let dec =
    Ppp_apps.More_elements.vpn_verify ~auth_key:vpn_tests_auth ~heap:h
      ~key:vpn_tests_key
  in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:4) in
  let pkt = mk_vpn_packet () in
  ignore (enc.Ppp_click.Element.process ctx pkt);
  (* Flip one ciphertext byte. *)
  let pos = Ppp_net.Transport.payload_offset pkt in
  Ppp_net.Packet.set8 pkt (pos + 5) (Ppp_net.Packet.get8 pkt (pos + 5) lxor 0x01);
  Alcotest.(check bool) "tampered packet dropped" true
    (dec.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Drop)

let test_vpn_auth_wrong_key_rejected () =
  let h = heap () in
  let enc =
    Ppp_apps.More_elements.vpn_encrypt ~auth_key:vpn_tests_auth ~heap:h
      ~key:vpn_tests_key ()
  in
  let dec =
    Ppp_apps.More_elements.vpn_verify ~auth_key:"a different mac key" ~heap:h
      ~key:vpn_tests_key
  in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:4) in
  let pkt = mk_vpn_packet () in
  ignore (enc.Ppp_click.Element.process ctx pkt);
  Alcotest.(check bool) "wrong key dropped" true
    (dec.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Drop)

let tests =
  tests
  @ [
      Alcotest.test_case "VPN auth roundtrip" `Quick test_vpn_auth_roundtrip;
      Alcotest.test_case "VPN auth tamper detection" `Quick test_vpn_auth_detects_tampering;
      Alcotest.test_case "VPN auth wrong key" `Quick test_vpn_auth_wrong_key_rejected;
    ]

(* --- Flow cache --- *)

let test_flow_cache_fast_path () =
  let h = heap () in
  let pool = Ppp_apps.Route_pool.make ~seed:5 ~n16:8 ~routes:64 in
  let trie =
    Ppp_apps.Radix_trie.create ~heap:h
      ~max_nodes:(Ppp_apps.Route_pool.suggested_max_nodes ~n16:8 ~routes:64)
      ~default_hop:0 ()
  in
  Ppp_apps.Route_pool.install pool trie;
  let fc = Ppp_apps.Flow_cache.create ~heap:h ~entries:1024 in
  let el = Ppp_apps.Flow_cache.lookup_element fc ~trie () in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:6) in
  let pkt = Ppp_net.Packet.create 128 in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001
    ~dst:(Ppp_apps.Route_pool.dst_of_flow pool 3)
    ~sport:1000 ~dport:2000 ~wire_len:64;
  (* First packet misses and fills; second hits; both must forward with the
     same egress annotation as the raw trie element. *)
  Alcotest.(check bool) "first forwards" true
    (el.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Forward);
  let port1 = Ppp_net.Packet.get8 pkt 0 in
  Alcotest.(check int) "miss recorded" 1 (Ppp_apps.Flow_cache.misses fc);
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:0x0A000001
    ~dst:(Ppp_apps.Route_pool.dst_of_flow pool 3)
    ~sport:1000 ~dport:2000 ~wire_len:64;
  Alcotest.(check bool) "second forwards" true
    (el.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Forward);
  Alcotest.(check int) "hit recorded" 1 (Ppp_apps.Flow_cache.hits fc);
  Alcotest.(check int) "same egress" port1 (Ppp_net.Packet.get8 pkt 0);
  (* And it must agree with the raw trie's hop (mod 256). *)
  let expected =
    Ppp_apps.Radix_trie.lookup_quiet trie (Ppp_apps.Route_pool.dst_of_flow pool 3)
  in
  Alcotest.(check int) "agrees with trie" (expected land 0xFF) port1

let test_flow_cache_unrouted_drops () =
  let h = heap () in
  let trie = Ppp_apps.Radix_trie.create ~heap:h ~default_hop:0 () in
  let fc = Ppp_apps.Flow_cache.create ~heap:h ~entries:64 in
  let el = Ppp_apps.Flow_cache.lookup_element fc ~trie () in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:6) in
  let pkt = Ppp_net.Packet.create 128 in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:1 ~dst:2 ~sport:3 ~dport:4 ~wire_len:64;
  Alcotest.(check bool) "unrouted dropped" true
    (el.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Drop);
  (* Negative results are not cached. *)
  Alcotest.(check int) "no fill on drop" 0 (Ppp_apps.Flow_cache.hits fc)

(* --- Greedy scheduler heuristic --- *)

let test_greedy_placement_balances () =
  let aggressiveness = function
    | Ppp_apps.App.MON -> 100.0
    | Ppp_apps.App.FW -> 1.0
    | _ -> 10.0
  in
  let placement =
    Ppp_core.Scheduler.greedy_placement ~config:Ppp_hw.Machine.tiny
      ~aggressiveness
      [ (Ppp_apps.App.MON, 2); (Ppp_apps.App.FW, 2) ]
  in
  match placement with
  | [ s0; s1 ] ->
      Alcotest.(check int) "socket 0 filled" 2 (List.length s0);
      Alcotest.(check int) "socket 1 filled" 2 (List.length s1);
      (* The two aggressive MON flows must land on different sockets. *)
      let mons socket =
        List.length (List.filter (fun k -> k = Ppp_apps.App.MON) socket)
      in
      Alcotest.(check int) "MONs split" 1 (mons s0);
      Alcotest.(check int) "MONs split" 1 (mons s1)
  | _ -> Alcotest.fail "two sockets"

let test_greedy_near_best_placement () =
  (* The greedy heuristic's placement must come close to the exhaustive
     best (the paper's point: placements barely differ, so a heuristic is
     as good as a search). *)
  let params = Ppp_core.Runner.quick_params in
  let combo = [ (Ppp_apps.App.MON, 2); (Ppp_apps.App.FW, 2) ] in
  let evals = Ppp_core.Scheduler.evaluate ~params combo in
  let best = Ppp_core.Scheduler.best evals in
  let greedy =
    Ppp_core.Scheduler.greedy_placement ~config:Ppp_hw.Machine.tiny
      ~aggressiveness:(function Ppp_apps.App.MON -> 10.0 | _ -> 1.0)
      combo
  in
  let key p =
    List.map (fun s -> List.sort compare (List.map Ppp_apps.App.name s)) p
    |> List.sort compare
  in
  let greedy_eval =
    List.find
      (fun (e : Ppp_core.Scheduler.evaluation) ->
        key e.Ppp_core.Scheduler.per_socket = key greedy)
      evals
  in
  Alcotest.(check bool) "greedy within 4pp of exhaustive best" true
    (greedy_eval.Ppp_core.Scheduler.avg_drop
    <= best.Ppp_core.Scheduler.avg_drop +. 0.04)

(* --- predict_mix --- *)

let test_predict_mix_consistency () =
  let params = Ppp_core.Runner.quick_params in
  let levels = [ { Ppp_apps.App.reads = 8; instrs = 1000 } ] in
  let p =
    Ppp_core.Predictor.build ~params ~levels ~targets:[ Ppp_apps.App.FW ] ()
  in
  match Ppp_core.Predictor.predict_mix p [ Ppp_apps.App.FW; Ppp_apps.App.FW ] with
  | [ (_, d1, t1); (_, d2, t2) ] ->
      Alcotest.(check (float 1e-9)) "symmetric drops" d1 d2;
      Alcotest.(check (float 1e-6)) "symmetric throughputs" t1 t2;
      Alcotest.(check (float 1e-9)) "matches pairwise API"
        (Ppp_core.Predictor.predict_drop p ~target:Ppp_apps.App.FW
           ~competitors:[ Ppp_apps.App.FW ])
        d1
  | _ -> Alcotest.fail "two predictions"

let tests =
  tests
  @ [
      Alcotest.test_case "flow cache fast path" `Quick test_flow_cache_fast_path;
      Alcotest.test_case "flow cache unrouted" `Quick test_flow_cache_unrouted_drops;
      Alcotest.test_case "greedy placement balances" `Quick test_greedy_placement_balances;
      Alcotest.test_case "greedy near best" `Slow test_greedy_near_best_placement;
      Alcotest.test_case "predict_mix consistency" `Quick test_predict_mix_consistency;
    ]

(* --- small-surface extension checks --- *)

let test_ibuf_of_region () =
  let buf = Ppp_simmem.Ibuf.of_region ~base:0x40000 256 in
  Alcotest.(check int) "addr" 0x40000 (Ppp_simmem.Ibuf.addr buf);
  Alcotest.(check int) "addr_at" 0x40040 (Ppp_simmem.Ibuf.addr_at buf 64);
  let b = Ppp_hw.Trace.Builder.create () in
  Ppp_simmem.Ibuf.touch_read buf b ~fn ~pos:0 ~len:256;
  Alcotest.(check int) "4 lines" 4 (Ppp_hw.Trace.Builder.length b)

let test_tee_counter_callback () =
  let seen = ref [] in
  let el =
    Ppp_click.Util_elements.tee_counter ~label:"t" (fun l n -> seen := (l, n) :: !seen)
  in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:1) in
  let pkt = mk_pkt 90 1 in
  Alcotest.(check bool) "forwards" true
    (el.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Forward);
  Alcotest.(check (list (pair string int))) "callback" [ ("t", 90) ] !seen

let test_histogram_clear () =
  let h = Ppp_util.Histogram.create () in
  Ppp_util.Histogram.record h 42;
  Ppp_util.Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Ppp_util.Histogram.count h);
  Alcotest.(check int) "total" 0 (Ppp_util.Histogram.total h)

let test_pcap_empty_replay_rejected () =
  let cap = Ppp_traffic.Pcap.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Pcap.replay: empty capture")
    (fun () -> ignore (Ppp_traffic.Pcap.replay cap : Ppp_traffic.Source.t))

let test_pcap_no_loop_exhausts () =
  let cap = Ppp_traffic.Pcap.create () in
  Ppp_traffic.Pcap.append cap (mk_pkt 64 1);
  let src = Ppp_traffic.Pcap.replay ~loop:false cap in
  let p = Ppp_net.Packet.create ~cap:2048 60 in
  Alcotest.(check bool) "first fill ok" true
    (Ppp_traffic.Source.fill src p = Ppp_traffic.Source.Filled);
  (* Typed end-of-capture instead of an exception, and it stays exhausted. *)
  Alcotest.(check bool) "second fill exhausted" true
    (Ppp_traffic.Source.fill src p = Ppp_traffic.Source.Exhausted);
  Alcotest.(check bool) "sticky" true
    (Ppp_traffic.Source.fill src p = Ppp_traffic.Source.Exhausted);
  (* The closure compatibility wrapper converts the typed status back into
     an exception for legacy call sites. *)
  Alcotest.check_raises "to_gen raises"
    (Ppp_traffic.Source.Exhausted_source "pcap") (fun () ->
      Ppp_traffic.Source.to_gen src p)

let test_series_map_y () =
  let s = Ppp_util.Series.of_points [ (0.0, 1.0); (2.0, 3.0) ] in
  let doubled = Ppp_util.Series.map_y (fun y -> 2.0 *. y) s in
  Alcotest.(check (float 1e-9)) "mapped" 4.0 (Ppp_util.Series.eval doubled 1.0)

let test_dpi_rejects_bad_input () =
  Alcotest.check_raises "empty patterns" (Invalid_argument "Dpi.create: no patterns")
    (fun () -> ignore (Ppp_apps.Dpi.create ~heap:(heap ()) [] : Ppp_apps.Dpi.t));
  Alcotest.check_raises "empty pattern" (Invalid_argument "Dpi.create: empty pattern")
    (fun () -> ignore (Ppp_apps.Dpi.create ~heap:(heap ()) [ "ok"; "" ] : Ppp_apps.Dpi.t))

let test_binary_trie_rejects_bad_input () =
  let t = Ppp_apps.Binary_trie.create ~heap:(heap ()) ~default_hop:0 () in
  Alcotest.check_raises "plen" (Invalid_argument "Binary_trie.add_route: plen")
    (fun () -> Ppp_apps.Binary_trie.add_route t ~prefix:0 ~plen:40 ~hop:1);
  Alcotest.check_raises "hop" (Invalid_argument "Binary_trie.add_route: hop")
    (fun () -> Ppp_apps.Binary_trie.add_route t ~prefix:0 ~plen:8 ~hop:0)

let test_mlp_reduces_miss_latency () =
  (* Two back-to-back misses: with mlp=4 the second's exposed latency is
     smaller. *)
  let topo = Ppp_hw.Topology.create ~sockets:1 ~cores_per_socket:1 in
  let geo l1 l2 l3 =
    {
      Ppp_hw.Hierarchy.l1 = { Ppp_hw.Cache.size_bytes = l1; ways = 2; line_bytes = 64 };
      l2 = { Ppp_hw.Cache.size_bytes = l2; ways = 4; line_bytes = 64 };
      l3 = { Ppp_hw.Cache.size_bytes = l3; ways = 8; line_bytes = 64 };
    }
  in
  let run mlp =
    let costs = { Ppp_hw.Costs.default with Ppp_hw.Costs.mlp } in
    let h = Ppp_hw.Hierarchy.create topo costs (geo 1024 4096 65536) in
    ignore (Ppp_hw.Hierarchy.access h ~core:0 ~write:false ~fn ~addr:0x1000 ~now:0 : int);
    Ppp_hw.Hierarchy.access h ~core:0 ~write:false ~fn ~addr:0x9000 ~now:200
  in
  Alcotest.(check bool) "mlp shortens 2nd miss" true (run 4 < run 1)

let tests =
  tests
  @ [
      Alcotest.test_case "ibuf of_region" `Quick test_ibuf_of_region;
      Alcotest.test_case "tee counter" `Quick test_tee_counter_callback;
      Alcotest.test_case "histogram clear" `Quick test_histogram_clear;
      Alcotest.test_case "pcap empty replay" `Quick test_pcap_empty_replay_rejected;
      Alcotest.test_case "pcap no-loop exhausts" `Quick test_pcap_no_loop_exhausts;
      Alcotest.test_case "series map_y" `Quick test_series_map_y;
      Alcotest.test_case "dpi input validation" `Quick test_dpi_rejects_bad_input;
      Alcotest.test_case "binary trie validation" `Quick test_binary_trie_rejects_bad_input;
      Alcotest.test_case "mlp shortens misses" `Quick test_mlp_reduces_miss_latency;
    ]

(* --- NAT --- *)

let test_nat_rewrites_and_stays_valid () =
  let h = heap () in
  let nat =
    Ppp_apps.Nat.create ~heap:h ~public_ip:(ip "198.51.100.1") ()
  in
  let el = Ppp_apps.Nat.outbound_element nat in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:1) in
  let pkt = Ppp_net.Packet.create 128 in
  Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:(ip "10.0.0.7") ~dst:(ip "8.8.8.8")
    ~sport:5555 ~dport:53 ~wire_len:96;
  Alcotest.(check bool) "forwarded" true
    (el.Ppp_click.Element.process ctx pkt = Ppp_click.Element.Forward);
  Alcotest.(check string) "src rewritten" "198.51.100.1"
    (Ppp_net.Ipv4.addr_to_string (Ppp_net.Ipv4.src pkt));
  Alcotest.(check int) "sport rewritten" 1024 (Ppp_net.Transport.src_port pkt);
  Alcotest.(check bool) "checksum still valid" true (Ppp_net.Ipv4.checksum_ok pkt);
  Alcotest.(check string) "dst untouched" "8.8.8.8"
    (Ppp_net.Ipv4.addr_to_string (Ppp_net.Ipv4.dst pkt))

let test_nat_mapping_stable_and_reverse () =
  let h = heap () in
  let nat = Ppp_apps.Nat.create ~heap:h ~public_ip:(ip "198.51.100.1") () in
  let el = Ppp_apps.Nat.outbound_element nat in
  let ctx = Ppp_click.Ctx.create ~rng:(Ppp_util.Rng.create ~seed:1) in
  let send src sport =
    let pkt = Ppp_net.Packet.create 128 in
    Ppp_traffic.Gen.fill_ipv4_udp pkt ~src:(ip src) ~dst:(ip "8.8.8.8")
      ~sport ~dport:53 ~wire_len:96;
    ignore (el.Ppp_click.Element.process ctx pkt);
    Ppp_net.Transport.src_port pkt
  in
  let p1 = send "10.0.0.7" 5555 in
  let p2 = send "10.0.0.8" 5555 in
  let p1' = send "10.0.0.7" 5555 in
  Alcotest.(check int) "same connection keeps its port" p1 p1';
  Alcotest.(check bool) "different hosts differ" true (p1 <> p2);
  Alcotest.(check (option (pair int int))) "reverse lookup"
    (Some (ip "10.0.0.7", 5555))
    (Ppp_apps.Nat.lookup_reverse nat ~public_port:p1);
  Alcotest.(check int) "two active mappings" 2 (Ppp_apps.Nat.active nat);
  Alcotest.(check int) "three translations" 3 (Ppp_apps.Nat.translations nat)

let tests =
  tests
  @ [
      Alcotest.test_case "NAT rewrite validity" `Quick test_nat_rewrites_and_stays_valid;
      Alcotest.test_case "NAT mapping stability" `Quick test_nat_mapping_stable_and_reverse;
    ]
